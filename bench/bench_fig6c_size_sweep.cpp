// Reproduces paper Figure 6(c): parallel running time of UNION and BUILD
// across input sizes. For UNION one input is fixed at n and the other
// sweeps 1e2..n (the paper fixes 1e8 and sweeps 1e2..1e8): small inputs
// show the sub-linear O(m log(n/m + 1)) regime and limited parallelism,
// large inputs scale well.
#include <cstdio>
#include <vector>

#include "apps/range_sum.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_fig6c_size_sweep",
               "Figure 6(c): UNION and BUILD parallel time vs input size");

  const size_t n = scaled_size(4000000);
  range_sum_map big(kv_entries(n, 1));

  std::printf("\n%-12s %14s %14s\n", "m", "union(n,m) s", "build(m) s");
  for (size_t m = 100; m <= n; m *= 10) {
    auto em = kv_entries(m, 2 + m);
    range_sum_map small(em);
    double t_union = timed_best(m <= 100000 ? 3 : 1, [&] {
      auto u = range_sum_map::map_union(big, small);
    });
    double t_build = timed_best(m <= 100000 ? 3 : 1, [&] { range_sum_map b(em); });
    std::printf("%-12zu %14.6f %14.6f\n", m, t_union, t_build);
    bench_json("bench_fig6c_size_sweep", "m=" + std::to_string(m), "union_s", t_union);
    bench_json("bench_fig6c_size_sweep", "m=" + std::to_string(m), "build_s", t_build);
  }

  std::printf("\nShape checks vs paper Fig 6(c):\n");
  std::printf(" * union time grows sub-linearly in m while m << n\n");
  std::printf(" * both curves flatten at small m (insufficient parallelism),\n");
  std::printf("   scale cleanly once m >= ~1e6\n");
  return 0;
}
