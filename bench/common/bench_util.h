// Shared benchmark harness: timing, paper-style table printing, workload
// generators, and thread sweeps.
//
// Conventions (see EXPERIMENTS.md):
//  * every binary prints the machine configuration and the active scale;
//  * default sizes are laptop-scale versions of the paper's workloads and
//    keep the paper's *ratios* (e.g. m << n unions); PAM_BENCH_SCALE
//    multiplies them back up;
//  * "T1" runs the same parallel code on one worker, "Tp" on all workers,
//    matching the paper's T1 / T144 columns.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "parallel/parallel.h"
#include "util/env.h"
#include "util/random.h"
#include "util/timer.h"

namespace pam::bench {

// Name of the running bench binary, registered by print_header so the
// table-row helpers can tag their JSON lines without threading it through.
inline std::string& current_bench() {
  static std::string name = "bench";
  return name;
}

inline void print_header(const char* experiment, const char* paper_ref) {
  current_bench() = experiment;
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("workers=%d  PAM_BENCH_SCALE=%.3g  (hardware threads: %u)\n",
              num_workers(), env_double("PAM_BENCH_SCALE", 1.0),
              std::thread::hardware_concurrency());
  std::printf("==================================================================\n");
}

// Time one run of f (seconds). For bulk operations a single run is stable
// enough; use timed_best for microsecond-scale work.
template <typename F>
double timed(const F& f) {
  timer t;
  f();
  return t.elapsed();
}

// Best of `reps` runs.
template <typename F>
double timed_best(int reps, const F& f) {
  double best = 1e100;
  for (int i = 0; i < reps; i++) {
    double s = timed(f);
    if (s < best) best = s;
  }
  return best;
}

// `warmup` untimed runs, then the median of `reps` timed runs (seconds).
// The right tool for microsecond-scale regions, where a single-shot `timed`
// is dominated by cold caches and scheduler jitter.
template <typename F>
double timed_median(int warmup, int reps, const F& f) {
  for (int i = 0; i < warmup; i++) f();
  std::vector<double> ts(static_cast<size_t>(reps));
  for (int i = 0; i < reps; i++) ts[static_cast<size_t>(i)] = timed(f);
  std::sort(ts.begin(), ts.end());
  return ts[ts.size() / 2];
}

// ---------------------------------------------- machine-readable results --
// PAM_BENCH_JSON=<path>: every bench binary appends one JSON line per
// reported metric, {"bench":…,"config":…,"metric":…,"value":…}, so a sweep
// accumulates into one file (the CI perf-smoke job uploads it as the perf
// trajectory artifact). Silent no-op when the variable is unset.
inline void bench_json(const char* bench, const std::string& config,
                       const char* metric, double value) {
  const char* path = std::getenv("PAM_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"config\":\"%s\",\"metric\":\"%s\",\"value\":%.17g}\n",
               bench, config.c_str(), metric, value);
  std::fclose(f);
}

// Run f on 1 worker then on all workers; returns {t1, tp}. Restores the
// worker count afterwards.
template <typename F>
std::pair<double, double> seq_vs_par(const F& f) {
  int p = num_workers();
  set_num_workers(1);
  double t1 = timed(f);
  set_num_workers(p);
  double tp = timed(f);
  return {t1, tp};
}

inline void row(const char* name, size_t n, size_t m, double t1, double tp) {
  if (tp > 0) {
    std::printf("%-28s n=%-11zu m=%-11zu T1=%9.4fs  Tp=%9.4fs  spd=%5.1f\n", name,
                n, m, t1, tp, t1 / tp);
  } else {
    std::printf("%-28s n=%-11zu m=%-11zu T1=%9.4fs  Tp=      -    spd=    -\n",
                name, n, m, t1);
  }
  std::string cfg = std::string(name) + "_n=" + std::to_string(n) + "_m=" +
                    std::to_string(m);
  bench_json(current_bench().c_str(), cfg, "t1_s", t1);
  if (tp > 0) bench_json(current_bench().c_str(), cfg, "tp_s", tp);
}

inline void row_seq(const char* name, size_t n, size_t m, double t1) {
  std::printf("%-28s n=%-11zu m=%-11zu T1=%9.4fs  (sequential baseline)\n", name,
              n, m, t1);
  bench_json(current_bench().c_str(),
             std::string(name) + "_n=" + std::to_string(n) + "_m=" + std::to_string(m),
             "t1_s", t1);
}

// Thread counts for scaling sweeps: 1, 2, 4, ... up to the hardware limit.
inline std::vector<int> sweep_threads() {
  int max = num_workers();
  std::vector<int> ps;
  for (int p = 1; p < max; p *= 2) ps.push_back(p);
  ps.push_back(max);
  return ps;
}

// ------------------------------------------------------------ workloads --

inline std::vector<std::pair<uint64_t, uint64_t>> kv_entries(size_t n, uint64_t seed,
                                                             uint64_t range = 0) {
  if (range == 0) range = ~0ull;
  std::vector<std::pair<uint64_t, uint64_t>> v(n);
  parallel_for(0, n, [&](size_t i) {
    v[i] = {hash64(seed * 0x10001 + i) % range, hash64(seed * 0x20003 + i) % 1000};
  });
  return v;
}

inline std::vector<uint64_t> keys_only(size_t n, uint64_t seed, uint64_t range = 0) {
  if (range == 0) range = ~0ull;
  std::vector<uint64_t> v(n);
  parallel_for(0, n, [&](size_t i) { v[i] = hash64(seed * 0x30005 + i) % range; });
  return v;
}

}  // namespace pam::bench
