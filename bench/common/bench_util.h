// Shared benchmark harness: timing, paper-style table printing, workload
// generators, and thread sweeps.
//
// Conventions (see EXPERIMENTS.md):
//  * every binary prints the machine configuration and the active scale;
//  * default sizes are laptop-scale versions of the paper's workloads and
//    keep the paper's *ratios* (e.g. m << n unions); PAM_BENCH_SCALE
//    multiplies them back up;
//  * "T1" runs the same parallel code on one worker, "Tp" on all workers,
//    matching the paper's T1 / T144 columns.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "util/env.h"
#include "util/random.h"
#include "util/timer.h"

namespace pam::bench {

// Name of the running bench binary, registered by print_header so the
// table-row helpers can tag their JSON lines without threading it through.
inline std::string& current_bench() {
  static std::string name = "bench";
  return name;
}

inline void emit_env_provenance();  // defined with the JSON helpers below

inline void print_header(const char* experiment, const char* paper_ref) {
  current_bench() = experiment;
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("workers=%d  PAM_BENCH_SCALE=%.3g  (hardware threads: %u)\n",
              num_workers(), env_double("PAM_BENCH_SCALE", 1.0),
              std::thread::hardware_concurrency());
  std::printf("==================================================================\n");
  emit_env_provenance();
}

// Time one run of f (seconds). For bulk operations a single run is stable
// enough; use timed_best for microsecond-scale work.
template <typename F>
double timed(const F& f) {
  timer t;
  f();
  return t.elapsed();
}

// Best of `reps` runs.
template <typename F>
double timed_best(int reps, const F& f) {
  double best = 1e100;
  for (int i = 0; i < reps; i++) {
    double s = timed(f);
    if (s < best) best = s;
  }
  return best;
}

// `warmup` untimed runs, then the median of `reps` timed runs (seconds).
// The right tool for microsecond-scale regions, where a single-shot `timed`
// is dominated by cold caches and scheduler jitter.
template <typename F>
double timed_median(int warmup, int reps, const F& f) {
  for (int i = 0; i < warmup; i++) f();
  std::vector<double> ts(static_cast<size_t>(reps));
  for (int i = 0; i < reps; i++) ts[static_cast<size_t>(i)] = timed(f);
  std::sort(ts.begin(), ts.end());
  return ts[ts.size() / 2];
}

// Distribution of per-iteration times (seconds). The perf gates keep
// asserting on `median` — the stable statistic — while p99/max surface tail
// behavior in the JSON trajectory without being load-bearing.
struct run_stats {
  double min = 0;
  double median = 0;  // p50
  double p99 = 0;
  double max = 0;
};

// Nearest-rank percentile over an already-sorted sample.
inline double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(rank + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

// timed_median's bigger sibling: same warmup/reps protocol, whole
// distribution back. run_stats.median is bit-identical to what
// timed_median(warmup, reps, f) would return for the same runs.
template <typename F>
run_stats timed_stats(int warmup, int reps, const F& f) {
  for (int i = 0; i < warmup; i++) f();
  std::vector<double> ts(static_cast<size_t>(reps));
  for (int i = 0; i < reps; i++) ts[static_cast<size_t>(i)] = timed(f);
  std::sort(ts.begin(), ts.end());
  run_stats st;
  st.min = ts.front();
  st.median = ts[ts.size() / 2];
  st.p99 = percentile_sorted(ts, 0.99);
  st.max = ts.back();
  return st;
}

// ---------------------------------------------- machine-readable results --
// PAM_BENCH_JSON=<path>: every bench binary appends one JSON line per
// reported metric, {"bench":…,"config":…,"metric":…,"value":…}, so a sweep
// accumulates into one file (the CI perf-smoke job uploads it as the perf
// trajectory artifact). Silent no-op when the variable is unset.
inline void bench_json(const char* bench, const std::string& config,
                       const char* metric, double value) {
  const char* path = std::getenv("PAM_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"config\":\"%s\",\"metric\":\"%s\",\"value\":%.17g}\n",
               bench, config.c_str(), metric, value);
  std::fclose(f);
}

// Config provenance: one JSON line with every PAM_* knob's effective
// setting, so a BENCH trajectory row can always be traced back to the
// config that produced it. Appended (once per process, by print_header) to
// the same PAM_BENCH_JSON stream the metric rows go to.
inline void emit_env_provenance() {
  const char* path = std::getenv("PAM_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\":\"%s\",\"env\":{", current_bench().c_str());
  bool first = true;
  for (const env_knob& k : env_knobs()) {
    std::fprintf(f, "%s\"%s\":\"%s\"", first ? "" : ",", k.name,
                 env_knob_value(k).c_str());
    first = false;
  }
  std::fprintf(f, "}}\n");
  std::fclose(f);
}

// Observability artifacts at bench exit: PAM_METRICS_DUMP=<path> writes the
// Prometheus-text scrape, PAM_TRACE_JSON=<path> writes the Chrome-trace
// dump (spans exist only if PAM_TRACE=1 enabled recording). Call at the end
// of main, after the workload; silent no-ops when the variables are unset.
inline void dump_observability() {
  if (const char* p = std::getenv("PAM_METRICS_DUMP");
      p != nullptr && *p != '\0') {
    std::ofstream os(p);
    if (os) obs::prometheus_text(obs::registry::get().scrape(), os);
  }
  if (const char* p = std::getenv("PAM_TRACE_JSON");
      p != nullptr && *p != '\0') {
    std::ofstream os(p);
    if (os) obs::dump_chrome_json(os);
  }
}

// Run f on 1 worker then on all workers; returns {t1, tp}. Restores the
// worker count afterwards.
template <typename F>
std::pair<double, double> seq_vs_par(const F& f) {
  int p = num_workers();
  set_num_workers(1);
  double t1 = timed(f);
  set_num_workers(p);
  double tp = timed(f);
  return {t1, tp};
}

inline void row(const char* name, size_t n, size_t m, double t1, double tp) {
  if (tp > 0) {
    std::printf("%-28s n=%-11zu m=%-11zu T1=%9.4fs  Tp=%9.4fs  spd=%5.1f\n", name,
                n, m, t1, tp, t1 / tp);
  } else {
    std::printf("%-28s n=%-11zu m=%-11zu T1=%9.4fs  Tp=      -    spd=    -\n",
                name, n, m, t1);
  }
  std::string cfg = std::string(name) + "_n=" + std::to_string(n) + "_m=" +
                    std::to_string(m);
  bench_json(current_bench().c_str(), cfg, "t1_s", t1);
  if (tp > 0) bench_json(current_bench().c_str(), cfg, "tp_s", tp);
}

inline void row_seq(const char* name, size_t n, size_t m, double t1) {
  std::printf("%-28s n=%-11zu m=%-11zu T1=%9.4fs  (sequential baseline)\n", name,
              n, m, t1);
  bench_json(current_bench().c_str(),
             std::string(name) + "_n=" + std::to_string(n) + "_m=" + std::to_string(m),
             "t1_s", t1);
}

// Thread counts for scaling sweeps: 1, 2, 4, ... up to the hardware limit.
inline std::vector<int> sweep_threads() {
  int max = num_workers();
  std::vector<int> ps;
  for (int p = 1; p < max; p *= 2) ps.push_back(p);
  ps.push_back(max);
  return ps;
}

// ------------------------------------------------------------ workloads --

inline std::vector<std::pair<uint64_t, uint64_t>> kv_entries(size_t n, uint64_t seed,
                                                             uint64_t range = 0) {
  if (range == 0) range = ~0ull;
  std::vector<std::pair<uint64_t, uint64_t>> v(n);
  parallel_for(0, n, [&](size_t i) {
    v[i] = {hash64(seed * 0x10001 + i) % range, hash64(seed * 0x20003 + i) % 1000};
  });
  return v;
}

inline std::vector<uint64_t> keys_only(size_t n, uint64_t seed, uint64_t range = 0) {
  if (range == 0) range = ~0ull;
  std::vector<uint64_t> v(n);
  parallel_for(0, n, [&](size_t i) { v[i] = hash64(seed * 0x30005 + i) % range; });
  return v;
}

}  // namespace pam::bench
