// Reproduces paper Table 1: construction and query times (sequential,
// parallel, speedup) for the four applications built on PAM:
// the augmented sum (range sum), interval trees, 2D range trees, and the
// weighted inverted index.
//
// Paper sizes (1e8..1e10 on a 72-core, 1TB machine) are scaled to laptop
// defaults with the same query:size ratios; PAM_BENCH_SCALE grows them.
#include <cstdio>
#include <vector>

#include "apps/corpus.h"
#include "apps/interval_map.h"
#include "apps/inverted_index.h"
#include "apps/range_sum.h"
#include "apps/range_tree.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_table1_summary", "Table 1 (4 applications: construct + query)");

  // ---------------------------------------------------------- range sum --
  {
    size_t n = scaled_size(4000000);
    size_t q = n / 4;
    auto es = kv_entries(n, 1);
    auto qs = keys_only(q, 2);
    auto [bt1, btp] = seq_vs_par([&] { range_sum_map m(es); });
    row("RangeSum construct", n, 0, bt1, btp);
    range_sum_map m(es);
    std::vector<uint64_t> sink(q);
    auto [qt1, qtp] = seq_vs_par([&] {
      parallel_for(0, q, [&](size_t i) {
        sink[i] = m.aug_range(qs[i], qs[i] + (~0ull / 4));
      });
    });
    row("RangeSum query(augRange)", n, q, qt1, qtp);
  }

  // -------------------------------------------------------- interval tree --
  {
    size_t n = scaled_size(2000000);
    size_t q = n;
    std::vector<interval_map<double>::interval> xs(n);
    parallel_for(0, n, [&](size_t i) {
      double l = static_cast<double>(hash64(i * 3 + 1) % 1000000);
      xs[i] = {l, l + static_cast<double>(hash64(i * 7 + 2) % 100)};
    });
    auto [bt1, btp] = seq_vs_par([&] { interval_map<double> im(xs); });
    row("Interval construct", n, 0, bt1, btp);
    interval_map<double> im(xs);
    std::vector<uint64_t> hits(q);
    auto [qt1, qtp] = seq_vs_par([&] {
      parallel_for(0, q, [&](size_t i) {
        double p = static_cast<double>(hash64(i + 77) % 1000000);
        hits[i] = im.stab(p) ? 1 : 0;
      });
    });
    row("Interval query(stab)", n, q, qt1, qtp);
  }

  // -------------------------------------------------------- 2d range tree --
  {
    size_t n = scaled_size(200000);
    size_t q = std::max<size_t>(1, n / 20);
    using rt = range_tree<double, int64_t>;
    std::vector<rt::point> ps(n);
    parallel_for(0, n, [&](size_t i) {
      ps[i] = {static_cast<double>(hash64(i * 5 + 1)) / 1e13,
               static_cast<double>(hash64(i * 11 + 2)) / 1e13,
               static_cast<int64_t>(hash64(i) % 100)};
    });
    auto [bt1, btp] = seq_vs_par([&] { rt t(ps); });
    row("RangeTree construct", n, 0, bt1, btp);
    rt t(ps);
    double span = 1844.6;  // ~2^64 / 1e13
    std::vector<int64_t> sink(q);
    auto [qt1, qtp] = seq_vs_par([&] {
      parallel_for(0, q, [&](size_t i) {
        double x = static_cast<double>(hash64(i * 13 + 5)) / 1e13 * 0.9;
        double y = static_cast<double>(hash64(i * 17 + 7)) / 1e13 * 0.9;
        sink[i] = t.query_sum(x, x + span * 0.1, y, y + span * 0.1);
      }, 16);
    });
    row("RangeTree query(sum)", n, q, qt1, qtp);
  }

  // ------------------------------------------------------- inverted index --
  {
    corpus_params cp;
    cp.vocabulary = scaled_size(100000);
    cp.num_docs = scaled_size(20000);
    cp.words_per_doc = 100;
    auto c = make_corpus(cp);
    size_t words = c.triples.size();
    auto [bt1, btp] = seq_vs_par([&] { inverted_index idx(c.triples); });
    row("Index construct(words)", words, 0, bt1, btp);
    inverted_index idx(c.triples);
    size_t q = scaled_size(20000);
    std::vector<size_t> sink(q);
    auto [qt1, qtp] = seq_vs_par([&] {
      parallel_for(0, q, [&](size_t i) {
        // Zipf-biased term pairs, like real query loads.
        auto w1 = corpus_word(hash64(i * 2 + 1) % 100 % cp.vocabulary);
        auto w2 = corpus_word(hash64(i * 2 + 2) % 1000 % cp.vocabulary);
        auto res = idx.query_and(w1, w2);
        auto top = inverted_index::top_k(res, 10);
        sink[i] = top.size();
      }, 16);
    });
    row("Index query(and+top10)", words, q, qt1, qtp);
  }

  std::printf("\nShape checks vs paper Table 1:\n");
  std::printf(" * all four constructions and queries parallelize\n");
  std::printf(" * query speedups >= construction speedups (reads scale best)\n");
  return 0;
}
