// Reproduces paper Table 4: space accounting.
//  (a) per-node overhead of augmentation (node bytes, % overhead);
//  (b) node sharing of the persistent UNION: live nodes after union with
//      both inputs kept, vs the no-sharing theoretical count
//      nodes(a) + nodes(b) + size(union) — the paper reports ~1% saving for
//      m = n and ~49% for m = n/1000;
//  (c) node sharing across the range tree's nested inner trees vs the
//      no-sharing count n * log2(n) (paper: 13.8% saving).
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/range_sum.h"
#include "apps/range_tree.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;

void union_sharing(size_t n, size_t m) {
  using aug_t = range_sum_map;
  int64_t before = aug_t::used_nodes();
  aug_t a(kv_entries(n, 11));
  aug_t b(kv_entries(m, 12));
  int64_t inputs = aug_t::used_nodes() - before;
  aug_t u = aug_t::map_union(a, b);  // copies: inputs stay alive
  int64_t actual = aug_t::used_nodes() - before;
  int64_t theory = inputs + static_cast<int64_t>(u.size());
  double saving = 1.0 - static_cast<double>(actual) / static_cast<double>(theory);
  std::printf("Union  n=%-10zu m=%-10zu theory=%-11lld actual=%-11lld saving=%5.1f%%\n",
              n, m, static_cast<long long>(theory), static_cast<long long>(actual),
              100 * saving);
}
}  // namespace

int main() {
  print_header("bench_table4_space", "Table 4 (augmentation overhead + node sharing)");

  std::printf("\n--- per-node space overhead of augmentation ---\n");
  std::printf("map type                 node bytes\n");
  std::printf("plain (K,V = 64-bit)     %zu\n", plain_sum_map::node_bytes());
  std::printf("augmented sum            %zu\n", range_sum_map::node_bytes());
  double overhead = 100.0 *
                    (static_cast<double>(range_sum_map::node_bytes()) /
                         static_cast<double>(plain_sum_map::node_bytes()) -
                     1.0);
  std::printf("augmentation overhead    %.1f%%  (paper: 20%%, +8B on 40B)\n", overhead);

  std::printf("\n--- node sharing from persistent UNION (inputs kept alive) ---\n");
  size_t n = scaled_size(2000000);
  union_sharing(n, n);
  union_sharing(n, std::max<size_t>(1, n / 1000));

  std::printf("\n--- range tree: inner-tree node sharing ---\n");
  {
    using rt = range_tree<double, int64_t>;
    size_t rn = scaled_size(100000);
    int64_t outer_before = rt::outer_nodes_used();
    int64_t inner_before = rt::inner_nodes_used();
    std::vector<rt::point> ps(rn);
    parallel_for(0, rn, [&](size_t i) {
      ps[i] = {static_cast<double>(hash64(i * 3 + 1)) / 1e15,
               static_cast<double>(hash64(i * 5 + 2)) / 1e15,
               static_cast<int64_t>(hash64(i) % 100)};
    });
    rt t(ps);
    int64_t outer_used = rt::outer_nodes_used() - outer_before;
    int64_t inner_used = rt::inner_nodes_used() - inner_before;
    double logn = std::log2(static_cast<double>(rn));
    int64_t inner_theory = static_cast<int64_t>(static_cast<double>(rn) * logn);
    double saving =
        1.0 - static_cast<double>(inner_used) / static_cast<double>(inner_theory);
    std::printf("outer nodes: n=%zu used=%lld (1 per point, no sharing possible)\n", rn,
                static_cast<long long>(outer_used));
    std::printf("inner nodes: theory(n*log2 n)=%lld actual=%lld saving=%.1f%%"
                "  (paper: 13.8%%)\n",
                static_cast<long long>(inner_theory),
                static_cast<long long>(inner_used), 100 * saving);
    std::printf("inner node bytes=%zu outer node bytes=%zu\n",
                rt::inner_map::node_bytes(), rt::outer_map::node_bytes());
  }

  std::printf("\nShape checks vs paper Table 4:\n");
  std::printf(" * union sharing: ~0-5%% for m=n, large (tens of %%) for m<<n\n");
  std::printf(" * range-tree inner sharing ~10-20%%\n");
  return 0;
}
