// Reproduces paper Table 4: space accounting.
//  (a) per-node overhead of augmentation (node bytes, % overhead);
//  (b) node sharing of the persistent UNION: live nodes after union with
//      both inputs kept, vs the no-sharing theoretical count
//      nodes(a) + nodes(b) + size(union) — the paper reports ~1% saving for
//      m = n and ~49% for m = n/1000;
//  (c) node sharing across the range tree's nested inner trees vs the
//      no-sharing count n * log2(n) (paper: 13.8% saving).
//  (d) blocked leaves (PaC-tree layout) vs the classic layout: live bytes
//      per entry for the same map, both layouts built in-process. The
//      blocked layout must be >= 2x denser; with PAM_PERF_GATE=1 the gate
//      is enforced by exit code (the CI perf-smoke job).
//
// Sections (b) and (c) pin the unblocked layout: the sharing percentages
// are properties of one-node-per-entry path copying.
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/range_sum.h"
#include "apps/range_tree.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;

void union_sharing(size_t n, size_t m) {
  using aug_t = range_sum_map;
  int64_t before = aug_t::used_nodes();
  aug_t a(kv_entries(n, 11));
  aug_t b(kv_entries(m, 12));
  int64_t inputs = aug_t::used_nodes() - before;
  aug_t u = aug_t::map_union(a, b);  // copies: inputs stay alive
  int64_t actual = aug_t::used_nodes() - before;
  int64_t theory = inputs + static_cast<int64_t>(u.size());
  double saving = 1.0 - static_cast<double>(actual) / static_cast<double>(theory);
  std::printf("Union  n=%-10zu m=%-10zu theory=%-11lld actual=%-11lld saving=%5.1f%%\n",
              n, m, static_cast<long long>(theory), static_cast<long long>(actual),
              100 * saving);
  bench_json("bench_table4_space", "union_sharing_m=" + std::to_string(m),
             "saving_frac", saving);
}

// Live bytes per entry for one freshly built map under the current layout.
double bytes_per_entry(const std::vector<std::pair<uint64_t, uint64_t>>& es) {
  int64_t nodes0 = range_sum_map::used_nodes();
  int64_t bytes0 = range_sum_map::used_bytes();
  range_sum_map m(es);
  double bpe = static_cast<double>(range_sum_map::used_bytes() - bytes0) /
               static_cast<double>(m.size());
  (void)nodes0;
  return bpe;
}
}  // namespace

int main() {
  print_header("bench_table4_space", "Table 4 (augmentation overhead + node sharing)");

  std::printf("\n--- per-node space overhead of augmentation ---\n");
  std::printf("map type                 node bytes\n");
  std::printf("plain (K,V = 64-bit)     %zu\n", plain_sum_map::node_bytes());
  std::printf("augmented sum            %zu\n", range_sum_map::node_bytes());
  double overhead = 100.0 *
                    (static_cast<double>(range_sum_map::node_bytes()) /
                         static_cast<double>(plain_sum_map::node_bytes()) -
                     1.0);
  std::printf("augmentation overhead    %.1f%%  (paper: 20%%, +8B on 40B)\n", overhead);
  bench_json("bench_table4_space", "node_bytes", "augmented",
             static_cast<double>(range_sum_map::node_bytes()));

  // Sections (b)/(c): the paper's sharing percentages assume one node per
  // entry; pin the unblocked layout for them.
  size_t saved_b = leaf_block_size();
  set_leaf_block_size(0);

  std::printf("\n--- node sharing from persistent UNION (inputs kept alive) ---\n");
  size_t n = scaled_size(2000000);
  union_sharing(n, n);
  union_sharing(n, std::max<size_t>(1, n / 1000));

  std::printf("\n--- range tree: inner-tree node sharing ---\n");
  {
    using rt = range_tree<double, int64_t>;
    size_t rn = scaled_size(100000);
    int64_t outer_before = rt::outer_nodes_used();
    int64_t inner_before = rt::inner_nodes_used();
    std::vector<rt::point> ps(rn);
    parallel_for(0, rn, [&](size_t i) {
      ps[i] = {static_cast<double>(hash64(i * 3 + 1)) / 1e15,
               static_cast<double>(hash64(i * 5 + 2)) / 1e15,
               static_cast<int64_t>(hash64(i) % 100)};
    });
    rt t(ps);
    int64_t outer_used = rt::outer_nodes_used() - outer_before;
    int64_t inner_used = rt::inner_nodes_used() - inner_before;
    double logn = std::log2(static_cast<double>(rn));
    int64_t inner_theory = static_cast<int64_t>(static_cast<double>(rn) * logn);
    double saving =
        1.0 - static_cast<double>(inner_used) / static_cast<double>(inner_theory);
    std::printf("outer nodes: n=%zu used=%lld (1 per point, no sharing possible)\n", rn,
                static_cast<long long>(outer_used));
    std::printf("inner nodes: theory(n*log2 n)=%lld actual=%lld saving=%.1f%%"
                "  (paper: 13.8%%)\n",
                static_cast<long long>(inner_theory),
                static_cast<long long>(inner_used), 100 * saving);
    std::printf("inner node bytes=%zu outer node bytes=%zu\n",
                rt::inner_map::node_bytes(), rt::outer_map::node_bytes());
    bench_json("bench_table4_space", "range_tree_inner", "saving_frac", saving);
  }

  // ------------------------- (d) blocked vs unblocked bytes per entry ----
  std::printf("\n--- blocked leaves vs classic layout (bytes per live entry) ---\n");
  double ratio;
  {
    size_t sn = scaled_size(2000000);
    auto es = kv_entries(sn, 21);

    set_leaf_block_size(0);
    double unblocked_bpe = bytes_per_entry(es);

    size_t b = 32;  // the PAM_LEAF_BLOCK default
    set_leaf_block_size(b);
    double blocked_bpe = bytes_per_entry(es);

    ratio = unblocked_bpe / blocked_bpe;
    std::printf("layout        B    bytes/entry\n");
    std::printf("classic       -    %10.2f\n", unblocked_bpe);
    std::printf("blocked       %-4zu %10.2f\n", b, blocked_bpe);
    std::printf("space ratio (classic / blocked): %.2fx  (gate: >= 2x)\n", ratio);
    bench_json("bench_table4_space", "unblocked", "bytes_per_entry", unblocked_bpe);
    bench_json("bench_table4_space", "blocked_B=32", "bytes_per_entry", blocked_bpe);
    bench_json("bench_table4_space", "blocked_vs_unblocked", "space_ratio", ratio);
  }
  set_leaf_block_size(saved_b);

  std::printf("\nShape checks vs paper Table 4:\n");
  std::printf(" * union sharing: ~0-5%% for m=n, large (tens of %%) for m<<n\n");
  std::printf(" * range-tree inner sharing ~10-20%%\n");
  std::printf(" * blocked leaves >= 2x denser than the classic layout\n");

  if (env_long("PAM_PERF_GATE", 0) != 0 && ratio < 2.0) {
    std::printf("\nFAIL: blocked-leaf space ratio %.2fx below the 2x gate\n", ratio);
    return 1;
  }
  return 0;
}
