// YCSB-style mixed read/write throughput for the serving layer
// (src/server/): T client threads issue point ops against a preloaded
// store, Zipf-distributed keys, under three workload mixes
// (write-only, 50/50 "YCSB-A", 95/5 reads "YCSB-B").
//
// Two serving configurations are compared:
//   * single-box     one snapshot_box<Map>; every write commits alone
//                    through update() (per-op O(log n) + full writer
//                    serialization) — the paper's §4 kernel used naively;
//   * sharded+wc     sharded_map (S shards) fed through write_combiner:
//                    point writes coalesce into per-shard multi_insert /
//                    multi_delete batches, the paper's O(m log(n/m + 1))
//                    bulk path, with writers of distinct shards running in
//                    parallel.
//
// Acceptance gate (ISSUE 2): with >= 8 client threads the write-combining
// sharded path must sustain >= 5x the single-box write throughput. The
// final line prints the measured ratio.
//
// Read-mostly reader scaling (ISSUE 5): a fourth scenario replays 95/5
// YCSB-B streams on R in {1, 8} clients while a dedicated writer commits
// batches nonstop. Reads acquire a shard snapshot per op on the lock-free
// epoch-protected path (no reader mutex), so aggregate read throughput must
// scale with the reader count under continuous writer churn — acceptance
// target >= 4x at 8 readers vs 1 on >= 9 hardware threads, enforced by exit
// code (PAM_READ_GATE overrides; auto-derated on smaller machines, where
// wall-clock scaling is capped by the core count).
//
// Skew sweep (ISSUE 10): zipfian rank keys at theta in {0.8, 0.99, 1.2}
// issued DIRECTLY (unhashed — rank 0 is the hottest key and hot ranks are
// adjacent, so the hot set is spatially clustered onto few shards; the
// mixes above deliberately hash ranks to scatter them). Direct per-op
// sharded_map writes, 8 clients, static directory vs a background
// maybe_rebalance policy thread. Reported per theta: throughput, p50/p99,
// and the traffic imbalance ratio (hottest shard's share of ops over the
// per-shard mean, under each config's final directory). Acceptance gate at
// theta=0.99: rebalanced throughput >= 1.4x static on big machines
// (PAM_REBALANCE_GATE overrides; derated below 9 hardware threads, where
// spreading load across shards cannot add parallel throughput).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "pam/pam.h"
#include "server/kv_store.h"
#include "util/zipf.h"

namespace {
using namespace pam;
using namespace pam::bench;

using K = uint64_t;
using V = uint64_t;
using map_t = pam_map<map_entry<K, V>>;
using entry_t = map_t::entry_t;

struct mix_result {
  double ops_per_sec;
  double write_ops_per_sec;
  double p50_ns;  // sampled per-op latency percentiles (reads and writes)
  double p99_ns;
};

// One pre-generated request: read k, or write (k, v).
struct request {
  K key;
  V value;
  bool is_read;
};

// Pre-generate each client's request stream (YCSB practice: the generator's
// cost must not be billed to the store). Keys are Zipf ranks scattered over
// the universe with the same hash used to preload, so hot keys hit existing
// entries spread across the whole key space (and thus across shards).
std::vector<std::vector<request>> make_streams(int threads,
                                               size_t ops_per_thread,
                                               int read_pct, size_t universe) {
  std::vector<std::vector<request>> streams(threads);
  for (int c = 0; c < threads; c++) {
    zipf_generator zipf(universe, 0.99, 1000 + c);
    random_gen g(500 + c);
    streams[c].reserve(ops_per_thread);
    for (size_t i = 0; i < ops_per_thread; i++) {
      K k = hash64(zipf()) % universe;
      streams[c].push_back(
          {k, g.next() % 1000, int(g.next() % 100) < read_pct});
    }
  }
  return streams;
}

// Replay the streams on `threads` clients against one serving path.
// do_read(k) / do_write(k, v) define the path; `barrier` commits
// outstanding buffered writes before the clock stops. Req is any struct
// with key/value/is_read — u64 `request` and the string-key variant below.
template <typename Req, typename Read, typename Write, typename Barrier>
mix_result run_mix(const std::vector<std::vector<Req>>& streams,
                   int read_pct, const Read& do_read, const Write& do_write,
                   const Barrier& barrier) {
  // Per-op latency is sampled 1-in-8 per client: two clock reads on a
  // sampled op only, so the tail percentiles come out of the same run the
  // throughput gates assert on without distorting it.
  constexpr size_t kSampleEvery = 8;
  std::atomic<size_t> sink{0};
  std::vector<std::thread> clients;
  std::vector<std::vector<double>> samples(streams.size());
  timer t;
  for (size_t ci = 0; ci < streams.size(); ci++) {
    clients.emplace_back([&, ci] {
      const auto& stream = streams[ci];
      auto& lat = samples[ci];
      lat.reserve(stream.size() / kSampleEvery + 1);
      size_t hits = 0;
      size_t i = 0;
      for (const Req& r : stream) {
        bool sampled = (i++ % kSampleEvery) == 0;
        uint64_t t0 = sampled ? obs::now_ns() : 0;
        if (r.is_read) {
          if (do_read(r.key)) hits++;
        } else {
          do_write(r.key, r.value);
        }
        if (sampled) lat.push_back(double(obs::now_ns() - t0));
      }
      sink.fetch_add(hits);
    });
  }
  for (auto& c : clients) c.join();
  barrier();
  double secs = t.elapsed();
  double total = 0;
  for (const auto& s : streams) total += double(s.size());
  double writes = total * (100 - read_pct) / 100.0;
  std::vector<double> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  return {total / secs, writes / secs, percentile_sorted(all, 0.5),
          percentile_sorted(all, 0.99)};
}

}  // namespace

int main() {
  print_header("bench_server_ycsb",
               "serving layer: write-combining sharded ingest vs single "
               "snapshot_box (paper SS4 concurrency, Table 2 bulk bounds)");

  const size_t n = scaled_size(200000);   // preloaded entries
  const size_t universe = n * 2;          // half the ops miss / insert fresh
  const int threads = std::max(8, num_workers());
  const size_t ops = scaled_size(40000);  // per client thread
  const size_t shards = 16;

  std::printf("preload n=%zu  universe=%zu  clients=%d  ops/client=%zu  "
              "shards=%zu  zipf s=0.99\n\n",
              n, universe, threads, ops, shards);

  auto preload = kv_entries(n, 11, universe);
  double gate_ratio = 0.0;

  std::printf("%-12s %-14s %12s %12s %14s\n", "mix", "path", "ops/s", "writes/s",
              "write-speedup");
  for (int read_pct : {0, 50, 95}) {
    auto streams = make_streams(threads, ops, read_pct, universe);

    // --- single snapshot_box, per-op commits --------------------------------
    snapshot_box<map_t> box(map_t{std::vector<entry_t>(preload)});
    auto single = run_mix(
        streams, read_pct,
        [&](K k) { return box.snapshot().find(k).has_value(); },
        [&](K k, V v) {
          box.update([&](map_t m) { return map_t::insert(std::move(m), k, v); });
        },
        [] {});

    // --- sharded_map + write_combiner ---------------------------------------
    kv_store<map_t> store(map_t{std::vector<entry_t>(preload)},
                          {.num_shards = shards,
                           .combiner = {.batch_size = 8192,
                                        .flush_interval =
                                            std::chrono::milliseconds(2)}});
    auto combined = run_mix(
        streams, read_pct,
        [&](K k) { return store.get(k).has_value(); },
        [&](K k, V v) { store.put(k, v); },
        [&] { store.flush(); });

    const char* label = read_pct == 0 ? "write-only"
                        : read_pct == 50 ? "50/50 (A)" : "95/5 (B)";
    double ratio = read_pct == 100 ? 0.0
                   : combined.write_ops_per_sec / single.write_ops_per_sec;
    std::printf("%-12s %-14s %12.0f %12.0f %14s\n", label, "single-box",
                single.ops_per_sec, single.write_ops_per_sec, "1.0x");
    std::printf("%-12s %-14s %12.0f %12.0f %13.1fx\n", label, "sharded+wc",
                combined.ops_per_sec, combined.write_ops_per_sec, ratio);
    if (read_pct == 0) gate_ratio = ratio;
    bench_json("bench_server_ycsb", std::string(label) + "_single_box", "ops_per_s",
               single.ops_per_sec);
    bench_json("bench_server_ycsb", std::string(label) + "_sharded_wc", "ops_per_s",
               combined.ops_per_sec);
    bench_json("bench_server_ycsb", std::string(label) + "_sharded_wc",
               "write_speedup", ratio);
    bench_json("bench_server_ycsb", std::string(label) + "_single_box",
               "p50_ns", single.p50_ns);
    bench_json("bench_server_ycsb", std::string(label) + "_single_box",
               "p99_ns", single.p99_ns);
    bench_json("bench_server_ycsb", std::string(label) + "_sharded_wc",
               "p50_ns", combined.p50_ns);
    bench_json("bench_server_ycsb", std::string(label) + "_sharded_wc",
               "p99_ns", combined.p99_ns);
    std::printf("%-12s %-14s p50=%.0fns p99=%.0fns | p50=%.0fns p99=%.0fns\n",
                "", "  latency", single.p50_ns, single.p99_ns,
                combined.p50_ns, combined.p99_ns);

    auto st = store.ingest_stats();
    std::printf("%-12s %-14s enqueued=%llu committed=%llu batches=%llu "
                "(avg batch %.0f)\n\n",
                "", "  ingest",
                (unsigned long long)st.ops_enqueued,
                (unsigned long long)st.ops_committed,
                (unsigned long long)st.batches_flushed,
                st.batches_flushed ? double(st.ops_committed) / double(st.batches_flushed)
                                   : 0.0);
  }

  // --- read-mostly (95/5) reader scaling under a continuous writer ---------
  // Aggregate read throughput of R clients, each replaying a 95/5 stream:
  // 95% shard-snapshot acquisitions + lookup (the lock-free read path), 5%
  // buffered puts. One dedicated writer thread commits multi_insert batches
  // the whole time, so every snapshot acquisition races root publication.
  auto reader_scale = [&](int readers) {
    auto streams = make_streams(readers, ops, 95, universe);
    kv_store<map_t> store(map_t{std::vector<entry_t>(preload)},
                          {.num_shards = shards,
                           .combiner = {.batch_size = 8192,
                                        .flush_interval =
                                            std::chrono::milliseconds(2)}});
    std::atomic<bool> stop{false};
    std::thread churn([&] {
      random_gen g(99);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<entry_t> batch(256);
        for (auto& e : batch)
          e = {hash64(g.next()) % universe, g.next() % 1000};
        store.put_batch(std::move(batch));
      }
    });
    const auto& sm = store.shards();
    auto mixed = run_mix(
        streams, 95,
        [&](K k) {
          map_t snap = sm.snapshot_shard(sm.shard_of(k));
          return snap.find(k).has_value();
        },
        [&](K k, V v) { store.put(k, v); },
        [&] { store.flush(); });
    stop.store(true);
    churn.join();
    return mixed.ops_per_sec * 0.95;  // the read share of the 95/5 mix
  };

  std::printf("read-mostly (95/5) reader scaling, continuous writer churn:\n");
  double reads1 = reader_scale(1);
  double reads8 = reader_scale(8);
  double scale_ratio = reads8 / reads1;
  std::printf("%-12s %-14s %12.0f reads/s\n", "95/5 scale", "1 reader", reads1);
  std::printf("%-12s %-14s %12.0f reads/s  (%.1fx)\n\n", "95/5 scale",
              "8 readers", reads8, scale_ratio);
  bench_json("bench_server_ycsb", "read_mostly_95_5_r1", "reads_per_s", reads1);
  bench_json("bench_server_ycsb", "read_mostly_95_5_r8", "reads_per_s", reads8);
  bench_json("bench_server_ycsb", "read_scale_gate", "read_speedup", scale_ratio);

  // --- string keys: YCSB-B over front-coded leaf blocks --------------------
  // The same 95/5 serving stack with std::string keys ("user" + padded rank,
  // the classic YCSB key shape) over the front-coded leaf layout: shard
  // splitters, the write combiner's batch grouping, and the lock-free
  // snapshot read path all run on the coded blocks. Reported for the perf
  // trajectory; the space and in-block-search gates live in
  // bench_leaf_encodings.
  {
    using str_map_t = pam_map<str_map_entry<V>>;
    using str_entry_t = str_map_t::entry_t;
    struct str_request {
      std::string key;
      V value;
      bool is_read;
    };
    auto str_key = [](uint64_t x) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "user%010llu",
                    static_cast<unsigned long long>(x));
      return std::string(buf);
    };
    std::vector<str_entry_t> str_preload(preload.size());
    for (size_t i = 0; i < preload.size(); i++)
      str_preload[i] = {str_key(preload[i].first), preload[i].second};

    auto base = make_streams(threads, ops, 95, universe);
    std::vector<std::vector<str_request>> str_streams(base.size());
    for (size_t c = 0; c < base.size(); c++) {
      str_streams[c].reserve(base[c].size());
      for (const request& r : base[c])
        str_streams[c].push_back({str_key(r.key), r.value, r.is_read});
    }

    kv_store<str_map_t> store(str_map_t{std::move(str_preload)},
                              {.num_shards = shards,
                               .combiner = {.batch_size = 8192,
                                            .flush_interval =
                                                std::chrono::milliseconds(2)}});
    auto res = run_mix(
        str_streams, 95,
        [&](const std::string& k) { return store.get(k).has_value(); },
        [&](const std::string& k, V v) { store.put(k, v); },
        [&] { store.flush(); });
    std::printf("string keys (front-coded leaves), 95/5 sharded+wc: "
                "%12.0f ops/s  p50=%.0fns p99=%.0fns\n\n",
                res.ops_per_sec, res.p50_ns, res.p99_ns);
    bench_json("bench_server_ycsb", "str_95_5_sharded_wc", "ops_per_s",
               res.ops_per_sec);
    bench_json("bench_server_ycsb", "str_95_5_sharded_wc", "p50_ns",
               res.p50_ns);
    bench_json("bench_server_ycsb", "str_95_5_sharded_wc", "p99_ns",
               res.p99_ns);
  }

  // --- skew sweep: zipfian rank keys, static vs rebalanced directory -------
  // Preload is dense ranks [0, n) so every zipf rank hits an existing key;
  // equal-entry initial splitters then concentrate hot low ranks on the
  // first shards. 50/50 mix (writes drive the policy's load counters).
  double rebalance_ratio = 0.0;
  double static_imbalance = 0.0;
  double rebalanced_imbalance = 0.0;
  {
    const int skew_clients = 8;
    // Deliberately NOT scaled below a floor: the policy cuts load-weighted
    // splitters from 2048-op windows, so a PAM_BENCH_SCALE-shrunk stream
    // would measure its warm-up (one coarse install) instead of the
    // converged directory the gate is about.
    const size_t skew_n = std::max(n, size_t(100000));
    const size_t skew_ops = std::max(ops, size_t(20000));
    std::vector<entry_t> rank_preload(skew_n);
    for (size_t i = 0; i < skew_n; i++) rank_preload[i] = {K(i), i % 1000};

    auto make_skew_streams = [&](double theta) {
      std::vector<std::vector<request>> streams(skew_clients);
      for (int c = 0; c < skew_clients; c++) {
        zipf_generator zipf(skew_n, theta, 7000 + 17 * c);
        random_gen g(900 + c);
        streams[c].reserve(skew_ops);
        for (size_t i = 0; i < skew_ops; i++) {
          streams[c].push_back(
              {K(zipf()), g.next() % 1000, int(g.next() % 100) < 50});
        }
      }
      return streams;
    };

    struct skew_run {
      mix_result mix;
      double imbalance;   // hottest shard's traffic / per-shard mean
      uint64_t installs;  // directories installed by the policy
    };
    auto run_skew = [&](const std::vector<std::vector<request>>& streams,
                        bool rebalance) {
      sharded_map<map_t> sm(map_t{std::vector<entry_t>(rank_preload)}, shards);
      std::atomic<bool> stop{false};
      std::thread policy;
      if (rebalance) {
        policy = std::thread([&] {
          while (!stop.load(std::memory_order_relaxed)) {
            sm.maybe_rebalance(/*hot_ratio=*/1.5, /*min_ops=*/2048);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        });
      }
      auto mixed = run_mix(
          streams, 50, [&](K k) { return sm.find(k).has_value(); },
          [&](K k, V v) { sm.insert(k, v); }, [] {});
      stop.store(true);
      if (policy.joinable()) policy.join();
      // Traffic imbalance under the directory each config ends with: replay
      // the key stream through shard_of. (The live write_ops counters are
      // consumed by every policy window, so they cannot compare configs.)
      std::vector<uint64_t> per(sm.num_shards(), 0);
      uint64_t total = 0;
      for (const auto& s : streams)
        for (const request& r : s) {
          per[sm.shard_of(r.key)]++;
          total++;
        }
      uint64_t hottest = *std::max_element(per.begin(), per.end());
      double mean = double(total) / double(per.size());
      return skew_run{mixed, mean > 0 ? double(hottest) / mean : 0.0,
                      sm.directory_gen() - 1};
    };

    std::printf("zipfian skew sweep: rank keys (unhashed), %d clients, 50/50, "
                "per-op sharded_map:\n",
                skew_clients);
    std::printf("%-10s %-12s %12s %10s %10s %10s %9s\n", "theta", "directory",
                "ops/s", "p50_ns", "p99_ns", "imbalance", "installs");
    for (double theta : {0.8, 0.99, 1.2}) {
      auto streams = make_skew_streams(theta);
      auto stat = run_skew(streams, false);
      auto reb = run_skew(streams, true);
      double ratio = stat.mix.ops_per_sec > 0
                         ? reb.mix.ops_per_sec / stat.mix.ops_per_sec
                         : 0.0;
      std::printf("%-10.2f %-12s %12.0f %10.0f %10.0f %9.1fx %9s\n", theta,
                  "static", stat.mix.ops_per_sec, stat.mix.p50_ns,
                  stat.mix.p99_ns, stat.imbalance, "-");
      std::printf("%-10s %-12s %12.0f %10.0f %10.0f %9.1fx %9llu  (%.2fx)\n",
                  "", "rebalanced", reb.mix.ops_per_sec, reb.mix.p50_ns,
                  reb.mix.p99_ns, reb.imbalance,
                  (unsigned long long)reb.installs, ratio);
      std::string tag = "skew_theta=" + std::to_string(theta).substr(0, 4);
      bench_json("bench_server_ycsb", tag + "_static", "ops_per_s",
                 stat.mix.ops_per_sec);
      bench_json("bench_server_ycsb", tag + "_static", "p50_ns",
                 stat.mix.p50_ns);
      bench_json("bench_server_ycsb", tag + "_static", "p99_ns",
                 stat.mix.p99_ns);
      bench_json("bench_server_ycsb", tag + "_static", "imbalance",
                 stat.imbalance);
      bench_json("bench_server_ycsb", tag + "_rebalanced", "ops_per_s",
                 reb.mix.ops_per_sec);
      bench_json("bench_server_ycsb", tag + "_rebalanced", "p50_ns",
                 reb.mix.p50_ns);
      bench_json("bench_server_ycsb", tag + "_rebalanced", "p99_ns",
                 reb.mix.p99_ns);
      bench_json("bench_server_ycsb", tag + "_rebalanced", "imbalance",
                 reb.imbalance);
      bench_json("bench_server_ycsb", tag + "_rebalanced", "installs",
                 double(reb.installs));
      bench_json("bench_server_ycsb", tag + "_rebalanced", "speedup_vs_static",
                 ratio);
      if (theta == 0.99) {
        rebalance_ratio = ratio;
        static_imbalance = stat.imbalance;
        rebalanced_imbalance = reb.imbalance;
      }
    }
    std::printf("\n");
  }

  // The acceptance target on dedicated hardware is 5x; PAM_YCSB_GATE lets
  // shared CI runners enforce a tolerant floor instead of flaking.
  double gate = env_double("PAM_YCSB_GATE", 5.0);
  std::printf("write-combining speedup at %d client threads (write-only): "
              "%.1fx  [acceptance target >= 5x, enforcing >= %.1fx]\n",
              threads, gate_ratio, gate);
  bench_json("bench_server_ycsb", "write_only_gate", "write_speedup", gate_ratio);

  // Snapshot-acquisition scaling gate: 4x at 8 readers needs 9+ hardware
  // threads (8 readers + the churn writer); with fewer cores wall-clock
  // scaling is physically capped, so the default floor derates and says so.
  unsigned hw = std::thread::hardware_concurrency();
  double default_read_gate =
      hw >= 9 ? 4.0 : std::max(0.5, 0.45 * double(std::min(8u, hw)));
  double read_gate = env_double("PAM_READ_GATE", default_read_gate);
  if (hw < 9) {
    std::printf("note: %u hardware threads < 9; default read-scaling floor "
                "derated to %.2fx\n", hw, default_read_gate);
  }
  std::printf("read-mostly aggregate read speedup at 8 readers vs 1 (writer "
              "churning): %.1fx  [acceptance target >= 4x, enforcing >= "
              "%.2fx]\n",
              scale_ratio, read_gate);

  // Skew-rebalance gate: spreading a hot key range over more shards only
  // buys wall-clock throughput when the 8 clients actually run in parallel.
  // Below 9 hardware threads install pauses cost real time with nothing to
  // reclaim, so the default throughput floor derates to a no-collapse 0.70x
  // and the gate additionally asserts the machine-independent property the
  // rebalancer exists for: final traffic imbalance at theta=0.99 at most
  // half of the static directory's.
  double default_reb_gate = hw >= 9 ? 1.4 : 0.70;
  double reb_gate = env_double("PAM_REBALANCE_GATE", default_reb_gate);
  if (hw < 9) {
    std::printf("note: %u hardware threads < 9; default rebalance floor "
                "derated to %.2fx\n", hw, default_reb_gate);
  }
  bool imbalance_halved =
      static_imbalance <= 0.0 || rebalanced_imbalance <= 0.5 * static_imbalance;
  std::printf("skew rebalance at theta=0.99, 8 clients: speedup %.2fx "
              "[acceptance target >= 1.4x, enforcing >= %.2fx], imbalance "
              "%.1fx -> %.1fx [enforcing <= 0.5x of static]\n",
              rebalance_ratio, reb_gate, static_imbalance,
              rebalanced_imbalance);
  bench_json("bench_server_ycsb", "rebalance_gate", "speedup_vs_static",
             rebalance_ratio);
  bench_json("bench_server_ycsb", "rebalance_gate", "static_imbalance",
             static_imbalance);
  bench_json("bench_server_ycsb", "rebalance_gate", "rebalanced_imbalance",
             rebalanced_imbalance);
  dump_observability();  // PAM_METRICS_DUMP / PAM_TRACE_JSON artifacts
  return (gate_ratio >= gate && scale_ratio >= read_gate &&
          rebalance_ratio >= reb_gate && imbalance_halved)
             ? 0
             : 1;
}
