// Reproduces paper Figure 6(a): insertion throughput (millions of elements
// per second) versus thread count, comparing PAM's parallel MULTIINSERT
// against concurrent data structures (skiplist, B+-tree, hash map) doing
// fully concurrent single-element inserts.
//
// As in the paper, PAM's multi-insert is a batched bulk operation — less
// general than the others' concurrent inserts, but the shape to reproduce
// is: PAM's bulk insertion throughput beats element-wise concurrent
// insertion into ordered structures and scales with threads.
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/range_sum.h"
#include "baselines/concurrent_bptree.h"
#include "baselines/concurrent_hashmap.h"
#include "baselines/concurrent_skiplist.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;

// Run `body(t)` on p OS threads and return elapsed seconds.
template <typename F>
double threaded(int p, const F& body) {
  timer tm;
  std::vector<std::thread> ts;
  ts.reserve(p);
  for (int t = 0; t < p; t++) ts.emplace_back([&, t] { body(t); });
  for (auto& t : ts) t.join();
  return tm.elapsed();
}
}  // namespace

int main() {
  print_header("bench_fig6a_insert_scaling",
               "Figure 6(a): insert throughput (M/s) vs threads");

  const size_t n = scaled_size(4000000);
  auto entries = kv_entries(n, 1);
  const int maxp = num_workers();

  std::printf("\n%-8s %12s %12s %12s %12s\n", "threads", "PAM(multi)", "skiplist",
              "B+tree", "hashmap");
  for (int p : sweep_threads()) {
    // PAM: one bulk multi-insert into an empty map on p workers.
    set_num_workers(p);
    double t_pam = timed([&] {
      auto m = range_sum_map::multi_insert(range_sum_map(), entries);
    });
    set_num_workers(maxp);

    size_t per = n / static_cast<size_t>(p);
    baselines::concurrent_skiplist sl;
    double t_sl = threaded(p, [&](int t) {
      size_t lo = static_cast<size_t>(t) * per, hi = (t + 1 == p) ? n : lo + per;
      for (size_t i = lo; i < hi; i++) sl.insert(entries[i].first, entries[i].second);
    });
    baselines::concurrent_bptree bt;
    double t_bt = threaded(p, [&](int t) {
      size_t lo = static_cast<size_t>(t) * per, hi = (t + 1 == p) ? n : lo + per;
      for (size_t i = lo; i < hi; i++) bt.insert(entries[i].first, entries[i].second);
    });
    baselines::concurrent_hashmap hm(n);
    double t_hm = threaded(p, [&](int t) {
      size_t lo = static_cast<size_t>(t) * per, hi = (t + 1 == p) ? n : lo + per;
      for (size_t i = lo; i < hi; i++) hm.insert(entries[i].first, entries[i].second + 1);
    });

    double mn = static_cast<double>(n) / 1e6;
    std::printf("%-8d %12.2f %12.2f %12.2f %12.2f\n", p, mn / t_pam, mn / t_sl,
                mn / t_bt, mn / t_hm);
    bench_json("bench_fig6a_insert_scaling", "multi_insert_p=" + std::to_string(p),
               "minserts_per_s", mn / t_pam);
  }

  std::printf("\nShape checks vs paper Fig 6(a):\n");
  std::printf(" * PAM multi-insert outperforms the ordered concurrent structures\n");
  std::printf(" * all curves rise with threads; hashmap (unordered) is fastest overall\n");
  return 0;
}
