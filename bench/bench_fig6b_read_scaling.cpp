// Reproduces paper Figure 6(b): concurrent read (find) throughput versus
// thread count on pre-built structures of n elements, PAM vs skiplist,
// B+-tree and hash map (the paper's YCSB-C read-only microbenchmark).
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/range_sum.h"
#include "baselines/concurrent_bptree.h"
#include "baselines/concurrent_hashmap.h"
#include "baselines/concurrent_skiplist.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;

template <typename F>
double threaded(int p, const F& body) {
  timer tm;
  std::vector<std::thread> ts;
  ts.reserve(p);
  for (int t = 0; t < p; t++) ts.emplace_back([&, t] { body(t); });
  for (auto& t : ts) t.join();
  return tm.elapsed();
}
}  // namespace

int main() {
  print_header("bench_fig6b_read_scaling",
               "Figure 6(b): concurrent read throughput (M/s) vs threads");

  const size_t n = scaled_size(4000000);
  const size_t reads = scaled_size(4000000);
  auto entries = kv_entries(n, 1);
  auto queries = keys_only(reads, 2);
  const int maxp = num_workers();

  // Pre-build all structures once.
  range_sum_map pam_map(entries);
  baselines::concurrent_skiplist sl;
  baselines::concurrent_bptree bt;
  baselines::concurrent_hashmap hm(n);
  for (auto& [k, v] : entries) {
    sl.insert(k, v);
    bt.insert(k, v);
    hm.insert(k, v + 1);
  }

  std::printf("\n%-8s %12s %12s %12s %12s\n", "threads", "PAM", "skiplist", "B+tree",
              "hashmap");
  for (int p : sweep_threads()) {
    set_num_workers(p);
    double t_pam = timed([&] {
      parallel_for(0, reads, [&](size_t i) {
        volatile bool hit = pam_map.contains(queries[i]);
        (void)hit;
      }, 256);
    });
    set_num_workers(maxp);

    size_t per = reads / static_cast<size_t>(p);
    auto reader = [&](auto& ds) {
      return threaded(p, [&](int t) {
        size_t lo = static_cast<size_t>(t) * per,
               hi = (t + 1 == p) ? reads : lo + per;
        uint64_t v = 0;
        uint64_t acc = 0;
        for (size_t i = lo; i < hi; i++) acc += ds.find(queries[i], v) ? 1 : 0;
        if (acc == 0xdeadbeefull) std::printf("!");
      });
    };
    double t_sl = reader(sl);
    double t_bt = reader(bt);
    double t_hm = reader(hm);

    double mr = static_cast<double>(reads) / 1e6;
    std::printf("%-8d %12.2f %12.2f %12.2f %12.2f\n", p, mr / t_pam, mr / t_sl,
                mr / t_bt, mr / t_hm);
    bench_json("bench_fig6b_read_scaling", "find_p=" + std::to_string(p),
               "mreads_per_s", mr / t_pam);
  }

  // Range reads, the path the lazy view API exists for: extracting a
  // subrange with range() path-copies O(log n) nodes per query, while a
  // view answers the same sum/scan straight off the shared tree. Each
  // region is microsecond-scale per query, so the medians come from
  // warmed repeat runs.
  {
    const size_t ranges = reads / 16;
    auto los = keys_only(ranges, 3);
    const uint64_t span = (~0ull / n) * 64;  // ~64 entries per range
    std::vector<uint64_t> sink(ranges);
    double t_copy = timed_median(1, 3, [&] {
      parallel_for(0, ranges, [&](size_t i) {
        auto r = range_sum_map::range(pam_map, los[i], los[i] + span);
        sink[i] = r.aug_val();
      }, 64);
    });
    double t_view = timed_median(1, 3, [&] {
      parallel_for(0, ranges, [&](size_t i) {
        sink[i] += pam_map.view(los[i], los[i] + span).aug_val();
      }, 64);
    });
    double t_scan = timed_median(1, 3, [&] {
      parallel_for(0, ranges, [&](size_t i) {
        uint64_t acc = 0;
        pam_map.view(los[i], los[i] + span)
            .for_each([&](uint64_t, uint64_t v) { acc += v; });
        sink[i] += acc;
      }, 64);
    });
    // view() costs one atomic refcount bump on the shared root per query
    // (the price of its snapshot guarantee, and a contended cache line at
    // high worker counts); a bare aug_range is the no-snapshot floor.
    double t_aug = timed_median(1, 3, [&] {
      parallel_for(0, ranges, [&](size_t i) {
        sink[i] += pam_map.aug_range(los[i], los[i] + span);
      }, 64);
    });
    double mq = static_cast<double>(ranges) / 1e6;
    std::printf("\nRange reads (~64 entries each, %d workers, M/s):\n", maxp);
    std::printf("  %-24s %10.2f\n", "range() + aug_val", mq / t_copy);
    std::printf("  %-24s %10.2f\n", "view().aug_val (lazy)", mq / t_view);
    std::printf("  %-24s %10.2f\n", "view().for_each scan", mq / t_scan);
    std::printf("  %-24s %10.2f\n", "aug_range (no snapshot)", mq / t_aug);
    bench_json("bench_fig6b_read_scaling", "range_reads", "view_scan_mq_per_s",
               mq / t_scan);
    bench_json("bench_fig6b_read_scaling", "range_reads", "aug_range_mq_per_s",
               mq / t_aug);
  }

  // Blocked leaves vs classic layout: the same entries built under both
  // layouts in-process, read with the traversal-heavy paths the blocked
  // layout targets (full in-order scans and ~64-entry range scans). The
  // blocked layout must win the scan by >= 1.5x; PAM_PERF_GATE=1 enforces
  // the gate by exit code (the CI perf-smoke job).
  double scan_ratio;
  {
    // Big enough to spill the last-level cache even at small bench scales —
    // the regime the leaf layout is about.
    const size_t bn = std::max(n, size_t{2000000});
    auto bentries = kv_entries(bn, 17);
    size_t saved_b = leaf_block_size();

    set_leaf_block_size(0);
    range_sum_map classic(bentries);
    set_leaf_block_size(32);
    range_sum_map blocked(bentries);
    set_leaf_block_size(saved_b);

    auto full_scan = [](const range_sum_map& m) {
      uint64_t acc = 0;
      m.view_all().for_each([&](uint64_t, uint64_t v) { acc += v; });
      return acc;
    };
    volatile uint64_t guard = 0;
    double t_scan_classic = timed_median(1, 5, [&] { guard = guard + full_scan(classic); });
    double t_scan_blocked = timed_median(1, 5, [&] { guard = guard + full_scan(blocked); });

    const size_t ranges = std::max<size_t>(1, bn / 64);
    auto los = keys_only(ranges, 23);
    const uint64_t span = (~0ull / bn) * 64;
    std::vector<uint64_t> sink(ranges);
    auto range_scan = [&](const range_sum_map& m) {
      parallel_for(0, ranges, [&](size_t i) {
        uint64_t acc = 0;
        m.view(los[i], los[i] + span).for_each([&](uint64_t, uint64_t v) { acc += v; });
        sink[i] = acc;
      }, 64);
    };
    double t_rng_classic = timed_median(1, 5, [&] { range_scan(classic); });
    double t_rng_blocked = timed_median(1, 5, [&] { range_scan(blocked); });

    double me = static_cast<double>(bn) / 1e6;
    scan_ratio = t_scan_classic / t_scan_blocked;
    double range_ratio = t_rng_classic / t_rng_blocked;
    std::printf("\nBlocked vs classic layout (n=%zu, M entries/s):\n", bn);
    std::printf("  %-28s %10.2f\n", "full scan, classic", me / t_scan_classic);
    std::printf("  %-28s %10.2f\n", "full scan, blocked B=32", me / t_scan_blocked);
    std::printf("  %-28s %10.2f\n", "range scans, classic", me / t_rng_classic);
    std::printf("  %-28s %10.2f\n", "range scans, blocked B=32", me / t_rng_blocked);
    std::printf("  scan speedup blocked/classic: full %.2fx, ranges %.2fx"
                "  (gate: full >= 1.5x)\n",
                scan_ratio, range_ratio);
    bench_json("bench_fig6b_read_scaling", "layout_classic", "scan_mentries_per_s",
               me / t_scan_classic);
    bench_json("bench_fig6b_read_scaling", "layout_blocked_B=32",
               "scan_mentries_per_s", me / t_scan_blocked);
    bench_json("bench_fig6b_read_scaling", "blocked_vs_classic", "scan_speedup",
               scan_ratio);
    bench_json("bench_fig6b_read_scaling", "blocked_vs_classic", "range_scan_speedup",
               range_ratio);
  }

  std::printf("\nShape checks vs paper Fig 6(b):\n");
  std::printf(" * every structure's read throughput scales near-linearly\n");
  std::printf(" * PAM is competitive with B+-tree/skiplist reads (paper: similar,\n");
  std::printf("   PAM ahead at the full machine); hashmap leads (unordered)\n");
  std::printf(" * blocked leaves >= 1.5x faster on in-order scans\n");

  if (env_long("PAM_PERF_GATE", 0) != 0 && scan_ratio < 1.5) {
    std::printf("\nFAIL: blocked-leaf scan speedup %.2fx below the 1.5x gate\n",
                scan_ratio);
    return 1;
  }
  return 0;
}
