// Reproduces paper Figure 6(b): concurrent read (find) throughput versus
// thread count on pre-built structures of n elements, PAM vs skiplist,
// B+-tree and hash map (the paper's YCSB-C read-only microbenchmark).
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/range_sum.h"
#include "baselines/concurrent_bptree.h"
#include "baselines/concurrent_hashmap.h"
#include "baselines/concurrent_skiplist.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;

template <typename F>
double threaded(int p, const F& body) {
  timer tm;
  std::vector<std::thread> ts;
  ts.reserve(p);
  for (int t = 0; t < p; t++) ts.emplace_back([&, t] { body(t); });
  for (auto& t : ts) t.join();
  return tm.elapsed();
}
}  // namespace

int main() {
  print_header("bench_fig6b_read_scaling",
               "Figure 6(b): concurrent read throughput (M/s) vs threads");

  const size_t n = scaled_size(4000000);
  const size_t reads = scaled_size(4000000);
  auto entries = kv_entries(n, 1);
  auto queries = keys_only(reads, 2);
  const int maxp = num_workers();

  // Pre-build all structures once.
  range_sum_map pam_map(entries);
  baselines::concurrent_skiplist sl;
  baselines::concurrent_bptree bt;
  baselines::concurrent_hashmap hm(n);
  for (auto& [k, v] : entries) {
    sl.insert(k, v);
    bt.insert(k, v);
    hm.insert(k, v + 1);
  }

  std::printf("\n%-8s %12s %12s %12s %12s\n", "threads", "PAM", "skiplist", "B+tree",
              "hashmap");
  for (int p : sweep_threads()) {
    set_num_workers(p);
    double t_pam = timed([&] {
      parallel_for(0, reads, [&](size_t i) {
        volatile bool hit = pam_map.contains(queries[i]);
        (void)hit;
      }, 256);
    });
    set_num_workers(maxp);

    size_t per = reads / static_cast<size_t>(p);
    auto reader = [&](auto& ds) {
      return threaded(p, [&](int t) {
        size_t lo = static_cast<size_t>(t) * per,
               hi = (t + 1 == p) ? reads : lo + per;
        uint64_t v = 0;
        uint64_t acc = 0;
        for (size_t i = lo; i < hi; i++) acc += ds.find(queries[i], v) ? 1 : 0;
        if (acc == 0xdeadbeefull) std::printf("!");
      });
    };
    double t_sl = reader(sl);
    double t_bt = reader(bt);
    double t_hm = reader(hm);

    double mr = static_cast<double>(reads) / 1e6;
    std::printf("%-8d %12.2f %12.2f %12.2f %12.2f\n", p, mr / t_pam, mr / t_sl,
                mr / t_bt, mr / t_hm);
  }

  // Range reads, the path the lazy view API exists for: extracting a
  // subrange with range() path-copies O(log n) nodes per query, while a
  // view answers the same sum/scan straight off the shared tree.
  {
    const size_t ranges = reads / 16;
    auto los = keys_only(ranges, 3);
    const uint64_t span = (~0ull / n) * 64;  // ~64 entries per range
    std::vector<uint64_t> sink(ranges);
    double t_copy = timed([&] {
      parallel_for(0, ranges, [&](size_t i) {
        auto r = range_sum_map::range(pam_map, los[i], los[i] + span);
        sink[i] = r.aug_val();
      }, 64);
    });
    double t_view = timed([&] {
      parallel_for(0, ranges, [&](size_t i) {
        sink[i] += pam_map.view(los[i], los[i] + span).aug_val();
      }, 64);
    });
    double t_scan = timed([&] {
      parallel_for(0, ranges, [&](size_t i) {
        uint64_t acc = 0;
        pam_map.view(los[i], los[i] + span)
            .for_each([&](uint64_t, uint64_t v) { acc += v; });
        sink[i] += acc;
      }, 64);
    });
    // view() costs one atomic refcount bump on the shared root per query
    // (the price of its snapshot guarantee, and a contended cache line at
    // high worker counts); a bare aug_range is the no-snapshot floor.
    double t_aug = timed([&] {
      parallel_for(0, ranges, [&](size_t i) {
        sink[i] += pam_map.aug_range(los[i], los[i] + span);
      }, 64);
    });
    double mq = static_cast<double>(ranges) / 1e6;
    std::printf("\nRange reads (~64 entries each, %d workers, M/s):\n", maxp);
    std::printf("  %-24s %10.2f\n", "range() + aug_val", mq / t_copy);
    std::printf("  %-24s %10.2f\n", "view().aug_val (lazy)", mq / t_view);
    std::printf("  %-24s %10.2f\n", "view().for_each scan", mq / t_scan);
    std::printf("  %-24s %10.2f\n", "aug_range (no snapshot)", mq / t_aug);
  }

  std::printf("\nShape checks vs paper Fig 6(b):\n");
  std::printf(" * every structure's read throughput scales near-linearly\n");
  std::printf(" * PAM is competitive with B+-tree/skiplist reads (paper: similar,\n");
  std::printf("   PAM ahead at the full machine); hashmap leads (unordered)\n");
  return 0;
}
