// Reproduces paper Figure 6(e): sequential range-tree construction time
// versus number of points, PAM vs the static sequential range tree standing
// in for CGAL. The paper shows PAM beating CGAL at every size (both curves
// ~n log n); the shape to verify is two parallel straight lines on log-log
// axes with PAM below or near the baseline.
#include <cstdio>
#include <vector>

#include "apps/range_tree.h"
#include "baselines/static_range_tree.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_fig6e_rangetree_build",
               "Figure 6(e): sequential range-tree build time vs n (PAM vs CGAL-like)");

  using rt = range_tree<double, int64_t>;
  using srt = baselines::static_range_tree<double, int64_t>;
  const int maxp = num_workers();

  std::printf("\n%-12s %16s %16s %16s\n", "n", "PAM seq (s)", "static seq (s)",
              "PAM par (s)");
  size_t base = scaled_size(200000);
  for (size_t n : {base / 16, base / 8, base / 4, base / 2, base}) {
    std::vector<rt::point> ps(n);
    std::vector<srt::point> sps(n);
    parallel_for(0, n, [&](size_t i) {
      double x = static_cast<double>(hash64(i * 5 + 1) % 10000000);
      double y = static_cast<double>(hash64(i * 11 + 2) % 10000000);
      auto w = static_cast<int64_t>(hash64(i) % 100);
      ps[i] = {x, y, w};
      sps[i] = {x, y, w};
    });
    set_num_workers(1);
    double t_pam_seq = timed([&] { rt t(ps); });
    set_num_workers(maxp);
    double t_static = timed([&] { srt s(sps); });
    double t_pam_par = timed([&] { rt t(ps); });
    std::printf("%-12zu %16.4f %16.4f %16.4f\n", n, t_pam_seq, t_static, t_pam_par);
    bench_json("bench_fig6e_rangetree_build", "n=" + std::to_string(n), "pam_seq_s",
               t_pam_seq);
    bench_json("bench_fig6e_rangetree_build", "n=" + std::to_string(n), "pam_par_s",
               t_pam_par);
  }

  std::printf("\nShape checks vs paper Fig 6(e):\n");
  std::printf(" * both sequential curves grow ~n log n (straight, parallel on log-log)\n");
  std::printf(" * PAM sequential is comparable to the static structure, and its\n");
  std::printf("   parallel build wins by a wide margin (CGAL cannot parallelize)\n");
  return 0;
}
