// Reproduces paper Figure 6(d): speedup of interval-tree construction and
// stabbing queries versus thread count (the paper shows near-linear scaling
// to 72 cores, queries scaling better than construction).
#include <cstdio>
#include <vector>

#include "apps/interval_map.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_fig6d_interval_speedup",
               "Figure 6(d): interval tree build/query speedup vs threads");

  const size_t n = scaled_size(2000000);
  const size_t q = n;
  const int maxp = num_workers();

  std::vector<interval_map<double>::interval> xs(n);
  parallel_for(0, n, [&](size_t i) {
    double l = static_cast<double>(hash64(i * 3 + 1) % 10000000);
    xs[i] = {l, l + static_cast<double>(hash64(i * 7 + 2) % 1000)};
  });
  interval_map<double> im(xs);
  std::vector<uint8_t> sink(q);

  auto build_once = [&] { interval_map<double> tmp(xs); };
  auto query_once = [&] {
    parallel_for(0, q, [&](size_t i) {
      sink[i] = im.stab(static_cast<double>(hash64(i + 13) % 10000000)) ? 1 : 0;
    });
  };

  auto thread_counts = sweep_threads();  // capture before dropping to 1 worker
  set_num_workers(1);
  double build_t1 = timed(build_once);
  double query_t1 = timed(query_once);

  std::printf("\n%-8s %12s %12s %12s %12s\n", "threads", "build(s)", "build spd",
              "query(s)", "query spd");
  std::printf("%-8d %12.4f %12.2f %12.4f %12.2f\n", 1, build_t1, 1.0, query_t1, 1.0);
  for (int p : thread_counts) {
    if (p == 1) continue;
    set_num_workers(p);
    double bt = timed(build_once);
    double qt = timed(query_once);
    std::printf("%-8d %12.4f %12.2f %12.4f %12.2f\n", p, bt, build_t1 / bt, qt,
                query_t1 / qt);
    bench_json("bench_fig6d_interval_speedup", "p=" + std::to_string(p),
               "build_speedup", build_t1 / bt);
    bench_json("bench_fig6d_interval_speedup", "p=" + std::to_string(p),
               "query_speedup", query_t1 / qt);
  }
  set_num_workers(maxp);

  std::printf("\nShape checks vs paper Fig 6(d):\n");
  std::printf(" * both curves rise with threads; query speedup >= build speedup\n");
  return 0;
}
