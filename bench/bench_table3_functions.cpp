// Reproduces paper Table 3: timings for PAM functions with and without
// augmentation, against the STL (union-tree / union-array / insert) and a
// bulk-parallel sorted-array map standing in for MCSTL multi-insert.
//
// Paper workloads: n = m = 1e8 and (n = 1e8, m = 1e5); here scaled to
// laptop size with the same n:m ratios (PAM_BENCH_SCALE restores larger
// sizes). "T1" is the parallel code on one worker; "Tp" on all workers.
#include <atomic>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/range_sum.h"
#include "baselines/sorted_array_map.h"
#include "baselines/stl_map_baseline.h"
#include "common/bench_util.h"
#include "pam/pam.h"

namespace {

using namespace pam;
using namespace pam::bench;

using aug_t = range_sum_map;                                  // sum-augmented
using plain_t = plain_sum_map;                                // no augmentation
using maxm_t = aug_map<max_entry<uint64_t, uint64_t>>;        // for aug_filter

// "Augmented functions" on a NON-augmented tree: a range sum must scan
// every entry in the range (paper Section 6.1). Walks read-only cursors.
uint64_t scan_range_sum(plain_t::cursor t, uint64_t lo, uint64_t hi) {
  if (t.empty()) return 0;
  if (t.key() < lo) return scan_range_sum(t.right(), lo, hi);
  if (t.key() > hi) return scan_range_sum(t.left(), lo, hi);
  return scan_range_sum(t.left(), lo, hi) + t.value() + scan_range_sum(t.right(), lo, hi);
}

}  // namespace

int main() {
  print_header("bench_table3_functions", "Table 3 (PAM vs STL vs MCSTL-style bulk)");

  const size_t n = scaled_size(4000000);
  const size_t m_small = n / 1000 == 0 ? 1 : n / 1000;  // the paper's 1e8 : 1e5
  const size_t queries = n / 4;

  auto ea = kv_entries(n, 1);
  auto eb = kv_entries(n, 2);
  auto eb_small = kv_entries(m_small, 3);
  aug_t A(ea), B(eb), Bs(eb_small);
  plain_t PA(ea), PB(eb), PBs(eb_small);

  std::printf("\n--- PAM (with augmentation) ---\n");
  {
    auto [t1, tp] = seq_vs_par([&] {
      auto u = aug_t::map_union(A, B, [](uint64_t a, uint64_t b) { return a + b; });
    });
    row("Union", n, n, t1, tp);
  }
  {
    auto [t1, tp] = seq_vs_par([&] {
      auto u = aug_t::map_union(A, Bs, [](uint64_t a, uint64_t b) { return a + b; });
    });
    row("Union", n, m_small, t1, tp);
  }
  {
    auto qs = keys_only(queries, 4);
    std::vector<uint64_t> sink(queries);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, queries, [&](size_t i) {
        auto v = A.find(qs[i]);
        sink[i] = v.has_value() ? *v : 0;
      });
    });
    row("Find", n, queries, t1, tp);
  }
  {
    size_t ni = n / 4;  // insert is sequential: keep the loop affordable
    auto es = kv_entries(ni, 5);
    double t1 = timed([&] {
      aug_t m;
      for (auto& [k, v] : es) m.insert_inplace(k, v);
    });
    row("Insert", ni, 0, t1, 0);
  }
  {
    auto [t1, tp] = seq_vs_par([&] { aug_t built(ea); });
    row("Build", n, 0, t1, tp);
  }
  {
    auto [t1, tp] = seq_vs_par([&] {
      auto f = aug_t::filter(A, [](uint64_t k, uint64_t) { return k % 2 == 0; });
    });
    row("Filter", n, 0, t1, tp);
  }
  {
    auto [t1, tp] = seq_vs_par([&] {
      auto mi = aug_t::multi_insert(A, eb, [](uint64_t a, uint64_t b) { return a + b; });
    });
    row("Multi-Insert", n, n, t1, tp);
  }
  {
    auto [t1, tp] = seq_vs_par([&] {
      auto mi = aug_t::multi_insert(A, eb_small,
                                    [](uint64_t a, uint64_t b) { return a + b; });
    });
    row("Multi-Insert", n, m_small, t1, tp);
  }
  {
    // m range extractions (each O(log n + out) via path copying).
    size_t m = queries / 4;
    auto los = keys_only(m, 6);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, m, [&](size_t i) {
        auto r = aug_t::range(A, los[i], los[i] + (~0ull / n));
      }, 64);
    });
    row("Range", n, m, t1, tp);
  }
  {
    // The lazy alternative: a range_view allocates no nodes; its size() is
    // two rank queries against the shared tree.
    size_t m = queries / 4;
    auto los = keys_only(m, 6);
    std::vector<uint64_t> sink(m);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, m, [&](size_t i) {
        sink[i] = A.view(los[i], los[i] + (~0ull / n)).size();
      }, 64);
    });
    row("Range(view)", n, m, t1, tp);
  }
  {
    auto qs = keys_only(queries, 7);
    std::vector<uint64_t> sink(queries);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, queries, [&](size_t i) { sink[i] = A.aug_left(qs[i]); });
    });
    row("AugLeft", n, queries, t1, tp);
  }
  {
    auto qs = keys_only(queries, 8);
    std::vector<uint64_t> sink(queries);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, queries, [&](size_t i) {
        sink[i] = A.aug_range(qs[i], qs[i] + (~0ull / 4));
      });
    });
    row("AugRange", n, queries, t1, tp);
  }
  {
    // aug_filter with max augmentation; thresholds chosen for the paper's
    // two output sizes (~n/100 and ~n/1000). Values are uniform in [0,1000).
    maxm_t M(ea);
    for (auto [frac, label] : {std::pair<double, const char*>{0.01, "AugFilter(k~n/100)"},
                               {0.001, "AugFilter(k~n/1000)"}}) {
      uint64_t theta = static_cast<uint64_t>(1000 * (1.0 - frac));
      auto [t1, tp] = seq_vs_par([&] {
        auto f = maxm_t::aug_filter(M, [=](uint64_t mx) { return mx > theta; });
      });
      row(label, n, static_cast<size_t>(static_cast<double>(n) * frac), t1, tp);
    }
  }

  std::printf("\n--- Non-augmented PAM (general map functions) ---\n");
  {
    auto [t1, tp] = seq_vs_par([&] {
      auto u = plain_t::map_union(PA, PB, [](uint64_t a, uint64_t b) { return a + b; });
    });
    row("Union", n, n, t1, tp);
  }
  {
    size_t ni = n / 4;
    auto es = kv_entries(ni, 5);
    double t1 = timed([&] {
      plain_t m;
      for (auto& [k, v] : es) m.insert_inplace(k, v);
    });
    row("Insert", ni, 0, t1, 0);
  }
  {
    auto [t1, tp] = seq_vs_par([&] { plain_t built(ea); });
    row("Build", n, 0, t1, tp);
  }
  {
    size_t m = queries / 4;
    auto los = keys_only(m, 6);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, m, [&](size_t i) {
        auto r = plain_t::range(PA, los[i], los[i] + (~0ull / n));
      }, 64);
    });
    row("Range", n, m, t1, tp);
  }

  std::printf("\n--- Non-augmented PAM (augmented functions by scanning) ---\n");
  {
    // Each "range sum" must scan all entries in the range: queries are far
    // fewer (paper: 1e4 vs 1e8) because each costs O(entries in range).
    size_t m = std::max<size_t>(16, n / 2000);
    auto qs = keys_only(m, 9);
    std::vector<uint64_t> sink(m);
    auto [t1, tp] = seq_vs_par([&] {
      parallel_for(0, m, [&](size_t i) {
        sink[i] = scan_range_sum(PA.root_cursor(), qs[i], qs[i] + (~0ull / 4));
      }, 1);
    });
    row("AugRange(scan)", n, m, t1, tp);
  }
  {
    for (auto [frac, label] :
         {std::pair<double, const char*>{0.01, "AugFilter(plain,k~n/100)"},
          {0.001, "AugFilter(plain,k~n/1000)"}}) {
      uint64_t theta = static_cast<uint64_t>(1000 * (1.0 - frac));
      auto [t1, tp] = seq_vs_par([&] {
        auto f = plain_t::filter(PA, [=](uint64_t, uint64_t v) { return v > theta; });
      });
      row(label, n, static_cast<size_t>(static_cast<double>(n) * frac), t1, tp);
    }
  }

  std::printf("\n--- STL (sequential) ---\n");
  {
    std::map<uint64_t, uint64_t> sa(ea.begin(), ea.end()), sb(eb.begin(), eb.end()),
        sbs(eb_small.begin(), eb_small.end());
    std::vector<std::pair<uint64_t, uint64_t>> va(sa.begin(), sa.end()),
        vb(sb.begin(), sb.end()), vbs(sbs.begin(), sbs.end());
    row_seq("Union-Tree", n, n, timed([&] { auto u = baselines::stl_union_tree(sa, sb); }));
    row_seq("Union-Tree", n, m_small,
            timed([&] { auto u = baselines::stl_union_tree(sa, sbs); }));
    row_seq("Union-Array", n, n,
            timed([&] { auto u = baselines::stl_union_array(va, vb); }));
    row_seq("Union-Array", n, m_small,
            timed([&] { auto u = baselines::stl_union_array(va, vbs); }));
    size_t ni = n / 4;
    auto es = kv_entries(ni, 5);
    row_seq("Insert", ni, 0, timed([&] { auto m = baselines::stl_insert_n(es); }));
  }

  std::printf("\n--- MCSTL-style bulk sorted-array map ---\n");
  {
    auto [t1, tp] = seq_vs_par([&] {
      baselines::sorted_array_map<uint64_t, uint64_t> m(ea);
      m.multi_insert(eb);
    });
    row("Multi-Insert(array)", n, n, t1, tp);
  }
  {
    auto [t1, tp] = seq_vs_par([&] {
      baselines::sorted_array_map<uint64_t, uint64_t> m(ea);
      m.multi_insert(eb_small);
    });
    row("Multi-Insert(array)", n, m_small, t1, tp);
  }

  std::printf("\nShape checks vs paper Table 3:\n");
  std::printf(" * PAM union/build/multi-insert should speed up substantially with workers\n");
  std::printf(" * PAM union(n,m<<n) should beat Union-Array (O(m log(n/m)) vs O(n+m))\n");
  std::printf(" * augmented AugRange >> faster than scanning; AugFilter >> plain filter\n");
  std::printf(" * PAM insert within ~2x of STL insert (paper: 17%% slower)\n");
  return 0;
}
