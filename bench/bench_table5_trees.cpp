// Reproduces paper Table 5: interval tree and 2D range tree, PAM vs the
// static sequential range tree standing in for CGAL (and a naive linear
// interval store standing in for the Python intervaltree comparison).
//
//  * PAM interval tree:  build (T1/Tp), m stabbing queries (T1/Tp)
//  * PAM range tree:     build (T1/Tp), m Q-Sum queries, m Q-All queries
//  * CGAL stand-in:      build (seq), Q-All (seq)   [report-only, like CGAL]
//  * naive intervals:    stab queries (seq)         [the asymptotic gap]
#include <cstdio>
#include <vector>

#include "apps/interval_map.h"
#include "apps/range_tree.h"
#include "baselines/naive_interval.h"
#include "baselines/static_range_tree.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_table5_trees", "Table 5 (interval tree + range tree vs CGAL)");

  // ----------------------------------------------------- interval trees --
  {
    size_t n = scaled_size(2000000);
    size_t q = n;
    std::vector<interval_map<double>::interval> xs(n);
    parallel_for(0, n, [&](size_t i) {
      double l = static_cast<double>(hash64(i * 3 + 1) % 10000000);
      xs[i] = {l, l + static_cast<double>(hash64(i * 7 + 2) % 1000)};
    });
    std::printf("\n--- PAM interval tree ---\n");
    auto [bt1, btp] = seq_vs_par([&] { interval_map<double> im(xs); });
    row("Interval Build", n, 0, bt1, btp);
    interval_map<double> im(xs);
    std::vector<uint8_t> sink(q);
    auto [qt1, qtp] = seq_vs_par([&] {
      parallel_for(0, q, [&](size_t i) {
        sink[i] = im.stab(static_cast<double>(hash64(i + 9) % 10000000)) ? 1 : 0;
      });
    });
    row("Interval Query(stab)", n, q, qt1, qtp);

    std::printf("\n--- naive linear interval store (Python-library stand-in) ---\n");
    baselines::naive_interval_store<double> naive(xs);
    size_t nq = std::max<size_t>(4, q / 100000);  // linear scans: few queries
    double nt = timed([&] {
      volatile int acc = 0;
      for (size_t i = 0; i < nq; i++) {
        acc = acc + (naive.stab(static_cast<double>(hash64(i + 9) % 10000000)) ? 1 : 0);
      }
    });
    row_seq("Naive Query(stab)", n, nq, nt);
    std::printf("  per-query: PAM %.3f us vs naive %.3f us (x%.0f)\n",
                1e6 * qt1 / static_cast<double>(q), 1e6 * nt / static_cast<double>(nq),
                (nt / static_cast<double>(nq)) / (qt1 / static_cast<double>(q)));
  }

  // -------------------------------------------------------- range trees --
  {
    size_t n = scaled_size(200000);
    size_t qsum = std::max<size_t>(1, n / 20);
    size_t qall = std::max<size_t>(1, n / 200);
    using rt = range_tree<double, int64_t>;
    using srt = baselines::static_range_tree<double, int64_t>;
    std::vector<rt::point> ps(n);
    std::vector<srt::point> sps(n);
    parallel_for(0, n, [&](size_t i) {
      double x = static_cast<double>(hash64(i * 5 + 1) % 1000000);
      double y = static_cast<double>(hash64(i * 11 + 2) % 1000000);
      auto w = static_cast<int64_t>(hash64(i) % 100);
      ps[i] = {x, y, w};
      sps[i] = {x, y, w};
    });
    // Rectangles sized for ~1% of the points each (paper: output ~1e6 of 1e8).
    auto rect = [&](size_t i, double& xlo, double& xhi, double& ylo, double& yhi) {
      xlo = static_cast<double>(hash64(i * 13 + 5) % 900000);
      ylo = static_cast<double>(hash64(i * 17 + 7) % 900000);
      xhi = xlo + 100000;  // 10% of x-span
      yhi = ylo + 100000;  // x 10% of y-span = ~1% of points
    };

    std::printf("\n--- PAM range tree ---\n");
    auto [bt1, btp] = seq_vs_par([&] { rt t(ps); });
    row("RangeTree Build", n, 0, bt1, btp);
    rt t(ps);
    {
      std::vector<int64_t> sink(qsum);
      auto [t1, tp] = seq_vs_par([&] {
        parallel_for(0, qsum, [&](size_t i) {
          double xlo, xhi, ylo, yhi;
          rect(i, xlo, xhi, ylo, yhi);
          sink[i] = t.query_sum(xlo, xhi, ylo, yhi);
        }, 16);
      });
      row("RangeTree Q-Sum", n, qsum, t1, tp);
    }
    {
      std::vector<size_t> sink(qall);
      auto [t1, tp] = seq_vs_par([&] {
        parallel_for(0, qall, [&](size_t i) {
          double xlo, xhi, ylo, yhi;
          rect(i, xlo, xhi, ylo, yhi);
          sink[i] = t.query_points(xlo, xhi, ylo, yhi).size();
        }, 4);
      });
      row("RangeTree Q-All", n, qall, t1, tp);
    }

    std::printf("\n--- static sequential range tree (CGAL stand-in) ---\n");
    double sbt = timed([&] { srt s(sps); });
    row_seq("Static Build", n, 0, sbt);
    srt s(sps);
    double sqt = timed([&] {
      size_t acc = 0;
      for (size_t i = 0; i < qall; i++) {
        double xlo, xhi, ylo, yhi;
        rect(i, xlo, xhi, ylo, yhi);
        acc += s.query_report(xlo, xhi, ylo, yhi).size();
      }
      if (acc == 0xdeadbeef) std::printf("!");
    });
    row_seq("Static Q-All", n, qall, sqt);
    std::printf("  build: PAM seq %.2fs vs static %.2fs  (paper: PAM < half of CGAL"
                " — see EXPERIMENTS.md for discussion)\n",
                bt1, sbt);
  }
  return 0;
}
