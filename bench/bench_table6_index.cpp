// Reproduces paper Table 6: building and querying the weighted inverted
// index. The paper builds from the 2016 Wikipedia dump (1.96e9 words,
// 5.09e6 distinct, 8.13e6 docs) and runs 1e5 and-then-top-10 queries; we
// build from the synthetic Zipf corpus (DESIGN.md section 3) at laptop
// scale, reporting the same columns: time, Melts/sec, speedup.
#include <cstdio>
#include <vector>

#include "apps/corpus.h"
#include "apps/inverted_index.h"
#include "common/bench_util.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_table6_index", "Table 6 (inverted index build + queries)");

  corpus_params cp;
  cp.vocabulary = scaled_size(200000);
  cp.num_docs = scaled_size(40000);
  cp.words_per_doc = 100;
  auto c = make_corpus(cp);
  size_t words = c.triples.size();
  std::printf("corpus: %zu words, vocab %zu, docs %zu (Zipf s=%.2f)\n\n", words,
              cp.vocabulary, cp.num_docs, cp.zipf_s);

  // ----------------------------------------------------------- building --
  auto [bt1, btp] = seq_vs_par([&] { inverted_index idx(c.triples); });
  std::printf("Build   %zu words   T1=%8.3fs (%6.2f Melts/s)   Tp=%8.3fs"
              " (%6.2f Melts/s)   spd=%5.1f\n",
              words, bt1, static_cast<double>(words) / bt1 / 1e6, btp,
              static_cast<double>(words) / btp / 1e6, bt1 / btp);
  bench_json("bench_table6_index", "build", "melts_per_s",
             static_cast<double>(words) / btp / 1e6);

  // ------------------------------------------------------------ queries --
  inverted_index idx(c.triples);
  size_t nq = scaled_size(100000);
  // Zipf-biased random term pairs: frequent terms dominate, like real loads.
  std::vector<std::pair<std::string, std::string>> qs(nq);
  parallel_for(0, nq, [&](size_t i) {
    qs[i] = {corpus_word(hash64(i * 2 + 1) % 64 % cp.vocabulary),
             corpus_word(hash64(i * 2 + 2) % 4096 % cp.vocabulary)};
  });
  // Total documents touched across queries ~ the paper's "177e9 docs".
  std::vector<uint64_t> docs_touched(nq);
  auto run_queries = [&] {
    parallel_for(0, nq, [&](size_t i) {
      auto res = idx.query_and(qs[i].first, qs[i].second);
      auto top = inverted_index::top_k(res, 10);
      docs_touched[i] = res.size() + top.size();
    }, 16);
  };
  auto [qt1, qtp] = seq_vs_par(run_queries);
  uint64_t total_docs = 0;
  for (auto d : docs_touched) total_docs += d;
  std::printf("Queries %zu and+top10   T1=%8.3fs   Tp=%8.3fs   spd=%5.1f"
              "   (%.2f Gelts result docs total %.3fG)\n",
              nq, qt1, qtp, qt1 / qtp,
              static_cast<double>(total_docs) / qtp / 1e9,
              static_cast<double>(total_docs) / 1e9);
  bench_json("bench_table6_index", "queries_and_top10", "speedup", qt1 / qtp);

  std::printf("\nShape checks vs paper Table 6:\n");
  std::printf(" * build achieves strong speedup (paper: 82x on 72 cores)\n");
  std::printf(" * concurrent queries achieve strong speedup (paper: 78x)\n");
  return 0;
}
