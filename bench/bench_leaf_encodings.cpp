// Leaf-encoding microbenchmarks: the two CI gates for the variable-length
// key stack.
//
//  (a) space — shared-prefix string keys stored front-coded (sealed coded
//      blocks, byte-class pools) vs the same entries in flat
//      std::pair<std::string, V> leaf slots. Keys are SSO-sized, so the
//      flat side has no untracked heap and the comparison is exact. Gate:
//      flat/coded leaf-bytes ratio >= 1.5x (PAM_PERF_GATE=1).
//
//  (b) in-block search — the branch-free counting lower-bound (the
//      PAM_SIMD_SEARCH path; vectorizable, AVX2-accelerated under
//      PAM_NATIVE) vs the classic binary search, on B=32 blocks of u64
//      keys: the hot loop of every blocked-leaf descent. Gate: >= 1.3x
//      find throughput at B=32 (PAM_PERF_GATE=1).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "pam/pam.h"

namespace {
using namespace pam;
using namespace pam::bench;

// n sorted unique SSO-sized keys: "k/" + 8 digits (10 chars total), one
// long shared-prefix family — the serving-workload shape front coding is
// built for.
std::vector<std::pair<std::string, uint64_t>> str_entries(size_t n) {
  std::vector<std::pair<std::string, uint64_t>> es(n);
  for (size_t i = 0; i < n; i++) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "k/%08zu", i);
    es[i] = {buf, i};
  }
  return es;
}
}  // namespace

int main() {
  print_header("bench_leaf_encodings",
               "leaf-encoding gates: front-coded space + in-block search");

  size_t saved_b = leaf_block_size();
  set_leaf_block_size(32);

  // ------------------------------- (a) front-coded vs flat string slots --
  std::printf("\n--- string keys: flat pair slots vs front-coded blocks ---\n");
  double space_ratio;
  {
    using flat_map = aug_map<map_entry<std::string, uint64_t>>;
    using coded_map = aug_map<str_map_entry<uint64_t>>;
    size_t n = scaled_size(1000000);
    auto es = str_entries(n);

    int64_t flat0 = flat_map::used_leaf_bytes();
    flat_map fm = flat_map::from_sorted(es);
    int64_t flat_bytes = flat_map::used_leaf_bytes() - flat0;

    int64_t coded0 = coded_map::used_leaf_bytes();
    coded_map cm = coded_map::from_sorted(es);
    int64_t coded_bytes = coded_map::used_leaf_bytes() - coded0;

    // Honesty spot checks: both maps serve the same entries.
    if (fm.size() != n || cm.size() != n ||
        *fm.find(es[n / 2].first) != es[n / 2].second ||
        *cm.find(std::string_view(es[n / 2].first)) != es[n / 2].second) {
      std::printf("FAIL: layout disagreement on lookups\n");
      return 1;
    }

    double flat_bpe = static_cast<double>(flat_bytes) / static_cast<double>(n);
    double coded_bpe = static_cast<double>(coded_bytes) / static_cast<double>(n);
    space_ratio = flat_bpe / coded_bpe;
    std::printf("layout        bytes/entry\n");
    std::printf("flat pairs    %10.2f\n", flat_bpe);
    std::printf("front-coded   %10.2f\n", coded_bpe);
    std::printf("space ratio (flat / coded): %.2fx  (gate: >= 1.5x)\n",
                space_ratio);
    bench_json("bench_leaf_encodings", "flat_str", "bytes_per_entry", flat_bpe);
    bench_json("bench_leaf_encodings", "coded_str", "bytes_per_entry", coded_bpe);
    bench_json("bench_leaf_encodings", "str_space", "flat_over_coded",
               space_ratio);
  }

  // ----------------------- (b) in-block search: branch-free vs classic --
  std::printf("\n--- in-block lower-bound at B=32, u64 keys ---\n");
  double find_ratio;
  {
    using E = map_entry<uint64_t, uint64_t>;
    constexpr size_t kB = 32;
    std::vector<std::pair<uint64_t, uint64_t>> block(kB);
    for (size_t i = 0; i < kB; i++) block[i] = {i * 977, i};

    size_t q = scaled_size(4000000);
    std::vector<uint64_t> queries = keys_only(q, 7, kB * 977 + 500);

    uint64_t sink = 0;
    auto sweep = [&] {
      uint64_t acc = 0;
      for (uint64_t k : queries) acc += block_lower_idx<E>(block.data(), kB, k);
      sink += acc;
    };

    set_simd_search_enabled(false);
    double t_classic = timed_median(1, 5, sweep);
    set_simd_search_enabled(true);
    double t_vec = timed_median(1, 5, sweep);
    if (sink == 0) std::printf("(unreachable sink)\n");

    double mq_classic = static_cast<double>(q) / t_classic / 1e6;
    double mq_vec = static_cast<double>(q) / t_vec / 1e6;
    find_ratio = t_classic / t_vec;
    std::printf("search            Mops/s\n");
    std::printf("binary search   %8.1f\n", mq_classic);
    std::printf("branch-free     %8.1f\n", mq_vec);
    std::printf("find speedup (classic / branch-free): %.2fx  (gate: >= 1.3x)\n",
                find_ratio);
    bench_json("bench_leaf_encodings", "block_find_B=32", "classic_mops",
               mq_classic);
    bench_json("bench_leaf_encodings", "block_find_B=32", "branchfree_mops",
               mq_vec);
    bench_json("bench_leaf_encodings", "block_find_B=32", "speedup",
               find_ratio);
  }

  set_leaf_block_size(saved_b);

  if (env_long("PAM_PERF_GATE", 0) != 0) {
    bool fail = false;
    if (space_ratio < 1.5) {
      std::printf("\nFAIL: string space ratio %.2fx below the 1.5x gate\n",
                  space_ratio);
      fail = true;
    }
    if (find_ratio < 1.3) {
      std::printf("\nFAIL: in-block find speedup %.2fx below the 1.3x gate\n",
                  find_ratio);
      fail = true;
    }
    if (fail) return 1;
  }
  return 0;
}
