// Leaf-encoding microbenchmarks: the two CI gates for the variable-length
// key stack.
//
//  (a) space — shared-prefix string keys stored front-coded (sealed coded
//      blocks, byte-class pools) vs the same entries in flat
//      std::pair<std::string, V> leaf slots. Keys are SSO-sized, so the
//      flat side has no untracked heap and the comparison is exact. Gate:
//      flat/coded leaf-bytes ratio >= 1.5x (PAM_PERF_GATE=1).
//
//  (b) in-block search — the branch-free counting lower-bound (the
//      PAM_SIMD_SEARCH path; vectorizable, AVX2-accelerated under
//      PAM_NATIVE) vs the classic binary search, on B=32 blocks of u64
//      keys: the hot loop of every blocked-leaf descent. Gate: >= 1.3x
//      find throughput at B=32 (PAM_PERF_GATE=1).
//
//  (c) delta space — integer keys stored delta-coded (zigzag-varint
//      successor differences + varint value stream, pam/delta_block.h) vs
//      the same entries in flat u64 pair slots, at 1M mixed keys (dense
//      runs interleaved with sparse gaps — the id-space shape real key
//      allocators produce). Gate: flat/delta leaf-bytes ratio >= 1.5x
//      (PAM_PERF_GATE=1).
//
//  (d) SIMD fold — the reassociating fast fold (grouped + AVX2 value-lane
//      kernel, PAM_SIMD_FOLD, pam/block_fold.h) vs the strict per-entry
//      policy-order fold, on B=32 blocks of (u64, u64) sum entries: the
//      hot loop of every block seal and boundary aug query. Gate: >= 1.3x
//      fold throughput (PAM_PERF_GATE=1).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "pam/pam.h"

namespace {
using namespace pam;
using namespace pam::bench;

// n sorted unique SSO-sized keys: "k/" + 8 digits (10 chars total), one
// long shared-prefix family — the serving-workload shape front coding is
// built for.
std::vector<std::pair<std::string, uint64_t>> str_entries(size_t n) {
  std::vector<std::pair<std::string, uint64_t>> es(n);
  for (size_t i = 0; i < n; i++) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "k/%08zu", i);
    es[i] = {buf, i};
  }
  return es;
}

// n sorted unique u64 keys in the mixed shape real id allocators produce:
// dense runs (sequential allocation) interleaved with sparse jumps
// (partition/time prefixes). Values are small counters — the varint value
// stream's best case, which is the honest pairing for a layout whose point
// is exploiting exactly this structure.
std::vector<std::pair<uint64_t, uint64_t>> mixed_int_entries(size_t n) {
  std::vector<std::pair<uint64_t, uint64_t>> es;
  es.reserve(n);
  uint64_t k = 1'000'000;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  while (es.size() < n) {
    // One dense run of 32..287 consecutive keys...
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    size_t run = 32 + (x & 0xff);
    for (size_t i = 0; i < run && es.size() < n; i++) {
      es.emplace_back(k++, es.size() & 0x3ff);
    }
    // ...then one sparse jump of up to ~1M.
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    k += 1 + (x & 0xfffff);
  }
  return es;
}
}  // namespace

int main() {
  print_header("bench_leaf_encodings",
               "leaf-encoding gates: front-coded space + in-block search");

  size_t saved_b = leaf_block_size();
  set_leaf_block_size(32);

  // ------------------------------- (a) front-coded vs flat string slots --
  std::printf("\n--- string keys: flat pair slots vs front-coded blocks ---\n");
  double space_ratio;
  {
    using flat_map = aug_map<map_entry<std::string, uint64_t>>;
    using coded_map = aug_map<str_map_entry<uint64_t>>;
    size_t n = scaled_size(1000000);
    auto es = str_entries(n);

    int64_t flat0 = flat_map::used_leaf_bytes();
    flat_map fm = flat_map::from_sorted(es);
    int64_t flat_bytes = flat_map::used_leaf_bytes() - flat0;

    int64_t coded0 = coded_map::used_leaf_bytes();
    coded_map cm = coded_map::from_sorted(es);
    int64_t coded_bytes = coded_map::used_leaf_bytes() - coded0;

    // Honesty spot checks: both maps serve the same entries.
    if (fm.size() != n || cm.size() != n ||
        *fm.find(es[n / 2].first) != es[n / 2].second ||
        *cm.find(std::string_view(es[n / 2].first)) != es[n / 2].second) {
      std::printf("FAIL: layout disagreement on lookups\n");
      return 1;
    }

    double flat_bpe = static_cast<double>(flat_bytes) / static_cast<double>(n);
    double coded_bpe = static_cast<double>(coded_bytes) / static_cast<double>(n);
    space_ratio = flat_bpe / coded_bpe;
    std::printf("layout        bytes/entry\n");
    std::printf("flat pairs    %10.2f\n", flat_bpe);
    std::printf("front-coded   %10.2f\n", coded_bpe);
    std::printf("space ratio (flat / coded): %.2fx  (gate: >= 1.5x)\n",
                space_ratio);
    bench_json("bench_leaf_encodings", "flat_str", "bytes_per_entry", flat_bpe);
    bench_json("bench_leaf_encodings", "coded_str", "bytes_per_entry", coded_bpe);
    bench_json("bench_leaf_encodings", "str_space", "flat_over_coded",
               space_ratio);
  }

  // ----------------------- (b) in-block search: branch-free vs classic --
  std::printf("\n--- in-block lower-bound at B=32, u64 keys ---\n");
  double find_ratio;
  {
    using E = map_entry<uint64_t, uint64_t>;
    constexpr size_t kB = 32;
    std::vector<std::pair<uint64_t, uint64_t>> block(kB);
    for (size_t i = 0; i < kB; i++) block[i] = {i * 977, i};

    size_t q = scaled_size(4000000);
    std::vector<uint64_t> queries = keys_only(q, 7, kB * 977 + 500);

    uint64_t sink = 0;
    auto sweep = [&] {
      uint64_t acc = 0;
      for (uint64_t k : queries) acc += block_lower_idx<E>(block.data(), kB, k);
      sink += acc;
    };

    set_simd_search_enabled(false);
    double t_classic = timed_median(1, 5, sweep);
    set_simd_search_enabled(true);
    double t_vec = timed_median(1, 5, sweep);
    if (sink == 0) std::printf("(unreachable sink)\n");

    double mq_classic = static_cast<double>(q) / t_classic / 1e6;
    double mq_vec = static_cast<double>(q) / t_vec / 1e6;
    find_ratio = t_classic / t_vec;
    std::printf("search            Mops/s\n");
    std::printf("binary search   %8.1f\n", mq_classic);
    std::printf("branch-free     %8.1f\n", mq_vec);
    std::printf("find speedup (classic / branch-free): %.2fx  (gate: >= 1.3x)\n",
                find_ratio);
    bench_json("bench_leaf_encodings", "block_find_B=32", "classic_mops",
               mq_classic);
    bench_json("bench_leaf_encodings", "block_find_B=32", "branchfree_mops",
               mq_vec);
    bench_json("bench_leaf_encodings", "block_find_B=32", "speedup",
               find_ratio);
  }

  // --------------------------- (c) delta-coded vs flat integer entries --
  std::printf("\n--- integer keys: flat pair slots vs delta-coded blocks ---\n");
  double delta_ratio;
  {
    using flat_map = aug_map<sum_entry<uint64_t, uint64_t>>;
    using delta_map = aug_map<delta_sum_entry<uint64_t, uint64_t>>;
    size_t n = scaled_size(1000000);
    auto es = mixed_int_entries(n);

    int64_t flat0 = flat_map::used_leaf_bytes();
    flat_map fm = flat_map::from_sorted(es);
    int64_t flat_bytes = flat_map::used_leaf_bytes() - flat0;

    int64_t delta0 = delta_map::used_leaf_bytes();
    delta_map dm = delta_map::from_sorted(es);
    int64_t delta_bytes = delta_map::used_leaf_bytes() - delta0;

    // Honesty spot checks: both layouts serve the same entries and agree
    // on the whole-map aug sum.
    if (fm.size() != n || dm.size() != n ||
        *fm.find(es[n / 2].first) != es[n / 2].second ||
        *dm.find(es[n / 2].first) != es[n / 2].second ||
        fm.aug_val() != dm.aug_val()) {
      std::printf("FAIL: layout disagreement on lookups/aug\n");
      return 1;
    }

    double flat_bpe = static_cast<double>(flat_bytes) / static_cast<double>(n);
    double delta_bpe =
        static_cast<double>(delta_bytes) / static_cast<double>(n);
    delta_ratio = flat_bpe / delta_bpe;
    std::printf("layout        bytes/entry\n");
    std::printf("flat pairs    %10.2f\n", flat_bpe);
    std::printf("delta-coded   %10.2f\n", delta_bpe);
    std::printf("space ratio (flat / delta): %.2fx  (gate: >= 1.5x)\n",
                delta_ratio);
    bench_json("bench_leaf_encodings", "flat_u64", "bytes_per_entry", flat_bpe);
    bench_json("bench_leaf_encodings", "delta_u64", "bytes_per_entry",
               delta_bpe);
    bench_json("bench_leaf_encodings", "delta_space", "flat_over_delta",
               delta_ratio);
  }

  // ----------------------------- (d) SIMD fold vs strict scalar fold --
  // Baseline is the strict per-entry fold in policy order — what a generic
  // aug fold does without reassociation. The shipped fast path (grouped
  // fold + AVX2 value-lane kernel, pam/block_fold.h) is allowed to
  // reassociate; that licence is the optimization, so the A/B must not
  // hand it to the baseline too. The grouped scalar fold is also reported:
  // the compiler auto-vectorizes it under -march=native, so on AVX2
  // machines it lands at parity with the intrinsics kernel (which then
  // mainly serves non-auto-vectorizing builds and the runtime kill switch).
  std::printf("\n--- block aug fold at B=32, (u64,u64) sum entries ---\n");
  double fold_ratio;
  {
    using E = sum_entry<uint64_t, uint64_t>;
    using traits = entry_traits<E>;
    constexpr size_t kB = 32;
    // Many distinct blocks so whole-block folds cannot be hoisted or
    // value-numbered away; every fold covers the full B=32 window.
    constexpr size_t kBlocks = 1024;
    std::vector<std::pair<uint64_t, uint64_t>> blocks(kBlocks * kB);
    for (size_t i = 0; i < blocks.size(); i++)
      blocks[i] = {i * 977, i * 31 + 1};

    size_t folds = scaled_size(4000000);
    uint64_t sink = 0;
    auto strict_sweep = [&] {
      uint64_t acc = 0;
      for (size_t i = 0; i < folds; i++) {
        const auto* blk = blocks.data() + (i % kBlocks) * kB;
        uint64_t f = traits::identity();
        for (size_t j = 0; j < kB; j++) {
          f = traits::combine(f, traits::base(blk[j].first, blk[j].second));
          // Pin the loop-carried accumulator so the compiler cannot
          // reassociate the strict fold into the very vector kernel it
          // is the baseline for.
          asm volatile("" : "+r"(f));
        }
        acc += f;
      }
      sink += acc;
    };
    auto fast_sweep = [&] {
      uint64_t acc = 0;
      for (size_t i = 0; i < folds; i++) {
        const auto* blk = blocks.data() + (i % kBlocks) * kB;
        acc += fold_entries_fast<traits, E>(blk, 0, kB);
      }
      sink += acc;
    };

    double t_strict = timed_median(1, 5, strict_sweep);
    set_simd_fold_enabled(false);
    double t_grouped = timed_median(1, 5, fast_sweep);
    set_simd_fold_enabled(true);
    double t_vec = timed_median(1, 5, fast_sweep);
    if (sink == 0) std::printf("(unreachable sink)\n");

    double mf_strict = static_cast<double>(folds) / t_strict / 1e6;
    double mf_grouped = static_cast<double>(folds) / t_grouped / 1e6;
    double mf_vec = static_cast<double>(folds) / t_vec / 1e6;
    fold_ratio = t_strict / t_vec;
    std::printf("fold                Mops/s\n");
    std::printf("strict scalar     %8.1f\n", mf_strict);
    std::printf("grouped scalar    %8.1f\n", mf_grouped);
    std::printf("vectorized        %8.1f\n", mf_vec);
    std::printf(
        "fold speedup (strict scalar / vectorized): %.2fx  (gate: >= 1.3x)\n",
        fold_ratio);
    bench_json("bench_leaf_encodings", "block_fold_B=32", "strict_mops",
               mf_strict);
    bench_json("bench_leaf_encodings", "block_fold_B=32", "grouped_mops",
               mf_grouped);
    bench_json("bench_leaf_encodings", "block_fold_B=32", "simd_mops", mf_vec);
    bench_json("bench_leaf_encodings", "block_fold_B=32", "speedup",
               fold_ratio);
  }

  set_leaf_block_size(saved_b);

  if (env_long("PAM_PERF_GATE", 0) != 0) {
    bool fail = false;
    if (space_ratio < 1.5) {
      std::printf("\nFAIL: string space ratio %.2fx below the 1.5x gate\n",
                  space_ratio);
      fail = true;
    }
    if (find_ratio < 1.3) {
      std::printf("\nFAIL: in-block find speedup %.2fx below the 1.3x gate\n",
                  find_ratio);
      fail = true;
    }
    if (delta_ratio < 1.5) {
      std::printf("\nFAIL: delta space ratio %.2fx below the 1.5x gate\n",
                  delta_ratio);
      fail = true;
    }
    if (fold_ratio < 1.3) {
      std::printf("\nFAIL: SIMD fold speedup %.2fx below the 1.3x gate\n",
                  fold_ratio);
      fail = true;
    }
    if (fail) return 1;
  }
  return 0;
}
