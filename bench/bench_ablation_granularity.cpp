// Ablation: the fork-join granularity cutoff (DESIGN.md section 5).
//
// All bulk tree recursions stop forking below `par_cutoff()` nodes (the
// paper: "we have a granularity set so parallelism is not used on very
// small trees"). This bench sweeps the cutoff across three bulk operations
// to show the tradeoff the default (512) sits on: too small drowns in task
// overhead, too large starves the workers.
#include <cstdio>
#include <vector>

#include "apps/range_sum.h"
#include "common/bench_util.h"
#include "pam/pam.h"

namespace {
using namespace pam;
using namespace pam::bench;
}  // namespace

int main() {
  print_header("bench_ablation_granularity",
               "ablation: sequential cutoff for bulk tree recursion (default 512)");

  const size_t n = scaled_size(2000000);
  auto ea = kv_entries(n, 1);
  auto eb = kv_entries(n, 2);
  auto qkeys = keys_only(n / 4, 3);
  range_sum_map A(ea), B(eb);
  size_t saved = par_cutoff();

  std::printf("\n%-10s %14s %14s %14s %14s\n", "cutoff", "union(n,n) s",
              "build(n) s", "filter(n) s", "mfind(n/4) s");
  for (size_t cutoff : {size_t{16}, size_t{64}, size_t{256}, size_t{512},
                        size_t{2048}, size_t{16384}, size_t{1} << 20}) {
    set_par_cutoff(cutoff);
    double t_union = timed_median(1, 3, [&] {
      auto u = range_sum_map::map_union(A, B,
                                        [](uint64_t a, uint64_t b) { return a + b; });
    });
    double t_build = timed_median(1, 3, [&] { range_sum_map m(ea); });
    double t_filter = timed_median(1, 3, [&] {
      auto f = range_sum_map::filter(A, [](uint64_t k, uint64_t) { return k & 1; });
    });
    double t_mfind = timed_median(1, 3, [&] { auto r = A.multi_find(qkeys); });
    std::printf("%-10zu %14.4f %14.4f %14.4f %14.4f\n", cutoff, t_union, t_build,
                t_filter, t_mfind);
    std::string cfg = "cutoff=" + std::to_string(cutoff);
    bench_json("bench_ablation_granularity", cfg, "union_s", t_union);
    bench_json("bench_ablation_granularity", cfg, "build_s", t_build);
    bench_json("bench_ablation_granularity", cfg, "filter_s", t_filter);
    bench_json("bench_ablation_granularity", cfg, "mfind_s", t_mfind);
  }
  set_par_cutoff(saved);

  // The GC cutoff from the same knob family: subtrees below gc_par_cutoff()
  // are reference-count-collected sequentially. Build a private version of
  // the map (path-copied via map_values, so A itself stays alive) and time
  // its destruction at each cutoff.
  std::printf("\n%-10s %14s\n", "gc-cutoff", "destroy(n) s");
  size_t gc_saved = gc_par_cutoff();
  for (size_t cutoff : {size_t{256}, size_t{1} << 12, size_t{1} << 16,
                        size_t{1} << 24}) {
    set_gc_par_cutoff(cutoff);
    // Each rep rebuilds a private version untimed (path-copied via
    // map_values, so A stays alive) and times only its destruction — a
    // full-tree parallel GC at this cutoff.
    std::vector<double> ts;
    for (int rep = 0; rep < 4; rep++) {
      auto dup = range_sum_map::map_values(A, [](uint64_t, uint64_t v) { return v; });
      ts.push_back(timed([&] { dup = range_sum_map(); }));
    }
    std::sort(ts.begin(), ts.end());
    double t_destroy = ts[ts.size() / 2];
    std::printf("%-10zu %14.4f\n", cutoff, t_destroy);
    bench_json("bench_ablation_granularity",
               "gc_cutoff=" + std::to_string(cutoff), "destroy_s", t_destroy);
  }
  set_gc_par_cutoff(gc_saved);

  std::printf("\nShape checks:\n");
  std::printf(" * a wide flat basin around the default 512 (work dominates overhead)\n");
  std::printf(" * cutoff >= n degrades toward sequential time (no parallelism)\n");
  std::printf(" * gc cutoff: sequential collection only hurts once the cutoff\n");
  std::printf("   approaches the tree size\n");
  return 0;
}
