// Incremental view maintenance via snapshot diff vs full recomputation.
//
// Workload: a sharded store of N keys (default 10M, scaled by
// PAM_BENCH_SCALE) retained in a version_store; one churn round touches
// CHURN = 1% of N keys (90% upserts over existing key space, 10% deletes).
// Measured per refresh strategy, at the same post-churn version:
//
//   * diff kernel     the stitched change stream between the two retained
//                     versions (version_store::diff), against the brute
//                     force baseline (materialize both versions' entries +
//                     two-pointer merge) — the O(d log(n/d+1)) vs O(n) gap;
//   * sum aggregate   group_aggregate_policy refresh vs rebuild;
//   * value index     value_index_policy (top-k secondary index) refresh vs
//                     rebuild — the expensive O(n log n) recompute the diff
//                     turns into O(d log n).
//
// Acceptance gate (ISSUE 4): incremental refresh of the value-index view
// must be >= 5x faster than its full rebuild at 1% churn. PAM_PERF_GATE=1
// enforces it by exit code; PAM_DIFF_GATE overrides the floor for noisy
// shared runners.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/range_sum.h"
#include "common/bench_util.h"
#include "pam/pam.h"
#include "server/materialized_view.h"
#include "server/version_store.h"

namespace {
using namespace pam;
using namespace pam::bench;

using K = uint64_t;
using V = uint64_t;
using map_t = aug_map<sum_entry<K, V>>;
using entry_t = map_t::entry_t;
using change_t = map_change<map_t>;

// Brute-force change stream: materialize both versions, two-pointer merge.
size_t brute_force_diff(const sharded_snapshot<map_t>& a,
                        const sharded_snapshot<map_t>& b) {
  auto ea = a.entries();
  auto eb = b.entries();
  size_t changes = 0, i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].first < eb[j].first) {
      changes++;
      i++;
    } else if (eb[j].first < ea[i].first) {
      changes++;
      j++;
    } else {
      if (ea[i].second != eb[j].second) changes++;
      i++;
      j++;
    }
  }
  changes += (ea.size() - i) + (eb.size() - j);
  return changes;
}

}  // namespace

int main() {
  print_header("bench_diff_incremental",
               "version-history subsystem: diff + incremental views (ISSUE 4)");
  double scale = env_double("PAM_BENCH_SCALE", 1.0);
  const size_t n = static_cast<size_t>(10'000'000 * scale);
  const size_t churn = std::max<size_t>(n / 100, 1);  // 1%
  const uint64_t universe = 2 * n;
  std::printf("n=%zu  churn=%zu (1%%)  shards=16\n\n", n, churn);

  // Preload and retain version A.
  sharded_map<map_t> sm(map_t(kv_entries(n, 1, universe)), 16);
  version_store<map_t> vs(sm, {.max_versions = 8});
  uint64_t va = vs.capture();

  // Views built at version A.
  auto sum_policy = make_group_aggregate<map_t, uint64_t>(
      [](K, V v) { return v; }, [](uint64_t a, uint64_t b) { return a + b; },
      [](uint64_t a, uint64_t b) { return a - b; }, uint64_t{0});
  materialized_view<map_t, decltype(sum_policy)> sum_view(vs, sum_policy);
  materialized_view<map_t, value_index_policy<map_t>> index_view(vs);
  sum_view.rebuild();
  index_view.rebuild();

  // ------------------------------------------------------- diff kernel --
  // First churn round: compare the pruned diff against brute force.
  {
    auto upserts = kv_entries(churn * 9 / 10, 2, universe);
    std::vector<K> deletes = keys_only(churn / 10, 1, universe);
    sm.multi_insert(std::move(upserts));
    sm.multi_delete(std::move(deletes));
  }
  uint64_t vb = vs.capture();
  auto snap_b = *vs.snapshot_at(vb);
  std::vector<change_t> stream;
  double t_diff = timed_median(1, 5, [&] {
    stream = *vs.diff(va, vb);
  });
  size_t brute_changes = 0;
  double t_brute = timed_median(0, 3, [&] {
    brute_changes = brute_force_diff(*vs.snapshot_at(va), snap_b);
  });
  if (stream.size() != brute_changes) {
    std::printf("ERROR: diff stream %zu != brute-force %zu\n", stream.size(),
                brute_changes);
    return 2;
  }
  double diff_ratio = t_diff > 0 ? t_brute / t_diff : 0.0;
  std::printf("%-26s %10.4fs   (%zu changes)\n", "diff (pruned, parallel)",
              t_diff, stream.size());
  std::printf("%-26s %10.4fs   speedup %.1fx\n\n", "diff (brute force)",
              t_brute, diff_ratio);
  bench_json("bench_diff_incremental", "diff_n=" + std::to_string(n), "t_s",
             t_diff);
  bench_json("bench_diff_incremental", "diff_brute_n=" + std::to_string(n),
             "t_s", t_brute);
  bench_json("bench_diff_incremental", "diff_n=" + std::to_string(n),
             "speedup_vs_brute", diff_ratio);

  // --------------------------------------------- steady-state refreshes --
  // What a live deployment pays per churn round: refresh() drains the
  // round's delta (diff + one bulk multi_delete/multi_insert, with the
  // refcount-1 in-place reuse a view that owns its state gets) vs
  // recomputing the view from the latest snapshot. Medians over rounds.
  sum_view.refresh();
  index_view.refresh();
  const int kRounds = 5;
  std::vector<double> sum_rebuilds, sum_refreshes, idx_rebuilds, idx_refreshes;
  for (int r = 0; r < kRounds; r++) {
    {
      auto upserts = kv_entries(churn * 9 / 10, 100 + r, universe);
      std::vector<K> deletes = keys_only(churn / 10, 200 + r, universe);
      sm.multi_insert(std::move(upserts));
      sm.multi_delete(std::move(deletes));
    }
    uint64_t v_prev = vs.latest_version();
    uint64_t v = vs.capture();
    auto snap = *vs.snapshot_at(v);
    auto snap_prev = *vs.snapshot_at(v_prev);

    idx_rebuilds.push_back(timed([&] { (void)index_view.policy().build(snap); }));
    idx_refreshes.push_back(timed([&] { index_view.refresh(); }));
    if (index_view.version() != v ||
        index_view.state().size() != snap.size()) {
      std::printf("ERROR: refreshed index view out of sync at round %d\n", r);
      return 2;
    }

    sum_rebuilds.push_back(timed([&] { (void)sum_policy.build(snap); }));
    // The group aggregate's leanest incremental form skips even the change
    // stream: diff_fold (apps/range_sum.h::sum_delta) folds the sum monoid
    // over only the changed regions, allocation-free.
    uint64_t incr_total = 0;
    sum_refreshes.push_back(timed([&] {
      uint64_t total = sum_view.state();
      for (size_t s = 0; s < snap.num_shards(); s++) {
        auto [gone, came] = sum_delta(snap_prev.shard(s), snap.shard(s));
        total = total - gone + came;
      }
      incr_total = total;
    }));
    sum_view.refresh();  // keep the driven view in lockstep
    if (incr_total != sum_view.state()) {
      std::printf("ERROR: diff_fold sum disagrees with refresh at round %d\n", r);
      return 2;
    }
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double t_sum_rebuild = median(sum_rebuilds);
  double t_sum_refresh = median(sum_refreshes);
  double sum_ratio = t_sum_refresh > 0 ? t_sum_rebuild / t_sum_refresh : 0.0;
  double t_idx_rebuild = median(idx_rebuilds);
  double t_idx_refresh = median(idx_refreshes);
  double idx_ratio = t_idx_refresh > 0 ? t_idx_rebuild / t_idx_refresh : 0.0;
  std::printf("%-26s %10.4fs\n", "sum view: full rebuild", t_sum_rebuild);
  std::printf("%-26s %10.4fs   speedup %.1fx   (diff_fold, allocation-free)\n",
              "sum view: incremental", t_sum_refresh, sum_ratio);
  std::printf("%-26s %10.4fs\n", "index view: full rebuild", t_idx_rebuild);
  std::printf("%-26s %10.4fs   speedup %.1fx   (refresh: diff + bulk apply)\n\n",
              "index view: incremental", t_idx_refresh, idx_ratio);
  bench_json("bench_diff_incremental", "sum_view_n=" + std::to_string(n),
             "rebuild_t_s", t_sum_rebuild);
  bench_json("bench_diff_incremental", "sum_view_n=" + std::to_string(n),
             "incremental_t_s", t_sum_refresh);
  bench_json("bench_diff_incremental", "sum_view_n=" + std::to_string(n),
             "refresh_speedup", sum_ratio);
  bench_json("bench_diff_incremental", "index_view_n=" + std::to_string(n),
             "rebuild_t_s", t_idx_rebuild);
  bench_json("bench_diff_incremental", "index_view_n=" + std::to_string(n),
             "incremental_t_s", t_idx_refresh);
  bench_json("bench_diff_incremental", "index_view_n=" + std::to_string(n),
             "refresh_speedup", idx_ratio);

  // The acceptance target is 5x on dedicated hardware; PAM_DIFF_GATE lets
  // shared CI runners enforce a tolerant floor instead of flaking.
  double gate = env_double("PAM_DIFF_GATE", 5.0);
  std::printf("incremental refresh speedup at 1%% churn: %.1fx (index view)  "
              "[acceptance target >= 5x, enforcing >= %.1fx]\n",
              idx_ratio, gate);
  bench_json("bench_diff_incremental", "gate", "refresh_speedup", idx_ratio);
  if (env_long("PAM_PERF_GATE", 0) != 0 && idx_ratio < gate) {
    std::printf("PERF GATE FAILED: %.2fx < %.2fx\n", idx_ratio, gate);
    return 1;
  }
  return 0;
}
