// Micro/ablation benchmarks (google-benchmark):
//  * single-op insert/find latency across all four balancing schemes
//    (the paper: balancing scheme is a template parameter, WB default);
//  * PAM join-based insert vs std::map insert (paper §6.1: ~17% slower);
//  * augmentation maintenance overhead on insert/build (paper: <= ~10%);
//  * the refcount==1 reuse optimization on vs off;
//  * aug_filter vs plain filter at several selectivities (pruning ablation).
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "common/bench_util.h"
#include "pam/pam.h"
#include "util/random.h"

namespace {

using namespace pam;

constexpr size_t kN = 100000;

std::vector<std::pair<uint64_t, uint64_t>> entries(size_t n, uint64_t seed) {
  std::vector<std::pair<uint64_t, uint64_t>> v(n);
  random_gen g(seed);
  for (auto& e : v) e = {g.next(), g.next() % 1000};
  return v;
}

template <typename Balance>
void BM_insert_scheme(benchmark::State& state) {
  using map_t = aug_map<sum_entry<uint64_t, uint64_t>, Balance>;
  auto es = entries(kN, 1);
  for (auto _ : state) {
    map_t m;
    for (auto& [k, v] : es) m.insert_inplace(k, v);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
BENCHMARK_TEMPLATE(BM_insert_scheme, weight_balanced)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_insert_scheme, avl_tree)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_insert_scheme, red_black)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_insert_scheme, treap)->Unit(benchmark::kMillisecond);

void BM_insert_stl(benchmark::State& state) {
  auto es = entries(kN, 1);
  for (auto _ : state) {
    std::map<uint64_t, uint64_t> m;
    for (auto& [k, v] : es) m.insert_or_assign(k, v);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_insert_stl)->Unit(benchmark::kMillisecond);

template <typename Balance>
void BM_find_scheme(benchmark::State& state) {
  using map_t = aug_map<sum_entry<uint64_t, uint64_t>, Balance>;
  map_t m(entries(kN, 2));
  auto qs = entries(kN, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(qs[i % kN].first));
    i++;
  }
}
BENCHMARK_TEMPLATE(BM_find_scheme, weight_balanced);
BENCHMARK_TEMPLATE(BM_find_scheme, avl_tree);
BENCHMARK_TEMPLATE(BM_find_scheme, red_black);
BENCHMARK_TEMPLATE(BM_find_scheme, treap);

template <typename Balance>
void BM_union_scheme(benchmark::State& state) {
  using map_t = aug_map<sum_entry<uint64_t, uint64_t>, Balance>;
  map_t a(entries(kN, 4)), b(entries(kN, 5));
  for (auto _ : state) {
    auto u = map_t::map_union(a, b);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 2 * kN));
}
BENCHMARK_TEMPLATE(BM_union_scheme, weight_balanced)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_union_scheme, avl_tree)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_union_scheme, red_black)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_union_scheme, treap)->Unit(benchmark::kMillisecond);

// Augmentation overhead: the same insert loop on augmented vs plain maps
// (paper: within ~10%).
void BM_insert_augmented(benchmark::State& state) {
  auto es = entries(kN, 6);
  for (auto _ : state) {
    aug_map<sum_entry<uint64_t, uint64_t>> m;
    for (auto& [k, v] : es) m.insert_inplace(k, v);
    benchmark::DoNotOptimize(m.aug_val());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
void BM_insert_plain(benchmark::State& state) {
  auto es = entries(kN, 6);
  for (auto _ : state) {
    pam_map<map_entry<uint64_t, uint64_t>> m;
    for (auto& [k, v] : es) m.insert_inplace(k, v);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_insert_augmented)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_insert_plain)->Unit(benchmark::kMillisecond);

// Reuse optimization ablation: repeated inserts into a uniquely-owned map
// with in-place reuse on vs off (off = full path copying every time).
void BM_insert_reuse_on(benchmark::State& state) {
  auto es = entries(kN, 7);
  set_reuse_enabled(true);
  for (auto _ : state) {
    aug_map<sum_entry<uint64_t, uint64_t>> m;
    for (auto& [k, v] : es) m.insert_inplace(k, v);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
void BM_insert_reuse_off(benchmark::State& state) {
  auto es = entries(kN, 7);
  set_reuse_enabled(false);
  for (auto _ : state) {
    aug_map<sum_entry<uint64_t, uint64_t>> m;
    for (auto& [k, v] : es) m.insert_inplace(k, v);
    benchmark::DoNotOptimize(m.size());
  }
  set_reuse_enabled(true);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_insert_reuse_on)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_insert_reuse_off)->Unit(benchmark::kMillisecond);

// Pruned aug_filter vs plain filter at varying selectivity k/n.
void BM_aug_filter(benchmark::State& state) {
  using max_map = aug_map<max_entry<uint64_t, uint64_t>>;
  max_map m(entries(kN, 8));
  uint64_t theta = 1000 - static_cast<uint64_t>(state.range(0));  // values < 1000
  for (auto _ : state) {
    auto f = max_map::aug_filter(m, [=](uint64_t mx) { return mx > theta; });
    benchmark::DoNotOptimize(f.size());
  }
}
void BM_plain_filter(benchmark::State& state) {
  using max_map = aug_map<max_entry<uint64_t, uint64_t>>;
  max_map m(entries(kN, 8));
  uint64_t theta = 1000 - static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto f = max_map::filter(m, [=](uint64_t, uint64_t v) { return v > theta; });
    benchmark::DoNotOptimize(f.size());
  }
}
BENCHMARK(BM_aug_filter)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_plain_filter)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

// aug_range vs a full range extraction + mapReduce (what it replaces).
void BM_aug_range(benchmark::State& state) {
  using map_t = aug_map<sum_entry<uint64_t, uint64_t>>;
  map_t m(entries(kN, 9));
  random_gen g(10);
  for (auto _ : state) {
    uint64_t lo = g.next();
    benchmark::DoNotOptimize(m.aug_range(lo, lo + (~0ull / 4)));
  }
}
void BM_range_then_reduce(benchmark::State& state) {
  using map_t = aug_map<sum_entry<uint64_t, uint64_t>>;
  map_t m(entries(kN, 9));
  random_gen g(10);
  for (auto _ : state) {
    uint64_t lo = g.next();
    auto r = map_t::range(m, lo, lo + (~0ull / 4));
    benchmark::DoNotOptimize(r.template map_reduce<uint64_t>(
        [](uint64_t, uint64_t v) { return v; },
        [](uint64_t a, uint64_t b) { return a + b; }, 0));
  }
}
BENCHMARK(BM_aug_range)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_range_then_reduce)->Unit(benchmark::kMicrosecond);

}  // namespace

// Like BENCHMARK_MAIN(), but mirrors every result into the shared
// PAM_BENCH_JSON trajectory file (google-benchmark's own --benchmark_out
// remains available for its richer native format).
class json_line_reporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      pam::bench::bench_json("bench_micro_gbench", r.benchmark_name(),
                             "real_time_ns", r.GetAdjustedRealTime());
    }
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  json_line_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
