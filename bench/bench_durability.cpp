// Durability layer costs: checkpoint bandwidth, incremental footprint, WAL
// append throughput and recovery replay rate (ISSUE 8).
//
// Workload: a sharded u64 store of N keys (default 2M, scaled by
// PAM_BENCH_SCALE). Measured:
//
//   * full checkpoint    serialize a consistent cut through the sealed-leaf
//                        raw-region path and page it out — MB/s;
//   * incremental        churn 1% of keys, checkpoint again — the delta is
//                        diff-driven, so its byte footprint must track the
//                        churn, not the map (the ratio is the gated metric);
//   * WAL append         group-commit throughput (sync_every=16) in ops/s;
//   * recovery           load checkpoint chain + replay the WAL tail — wall
//                        time and replayed ops/s, verified against the
//                        expected final contents.
//
// Acceptance gate (ISSUE 8): the incremental checkpoint after 1% churn must
// persist only changed blocks — its bytes must be <= PAM_DURABILITY_GATE
// (default 0.30, target 0.10) of the full checkpoint. PAM_PERF_GATE=1
// enforces it by exit code.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/bench_util.h"
#include "pam/pam.h"
#include "server/sharded_map.h"
#include "store/durability.h"

namespace {
using namespace pam;
using namespace pam::bench;

using K = uint64_t;
using map_t = aug_map<sum_entry<K, uint64_t>>;
using entry_t = map_t::entry_t;
using durability_t = store::durability<map_t>;

struct temp_dir {
  std::string path;
  temp_dir() {
    path = "/tmp/pam_bench_durability_" + std::to_string(::getpid());
    std::string cmd = "rm -rf " + path;
    (void)std::system(cmd.c_str());
  }
  ~temp_dir() {
    std::string cmd = "rm -rf " + path;
    (void)std::system(cmd.c_str());
  }
};

}  // namespace

int main() {
  print_header("bench_durability",
               "durability layer: checkpoint + WAL + recovery (ISSUE 8)");
  double scale = env_double("PAM_BENCH_SCALE", 1.0);
  const size_t n = static_cast<size_t>(2'000'000 * scale);
  const size_t churn = std::max<size_t>(n / 100, 1);  // 1%
  const uint64_t universe = 2 * n;
  std::printf("n=%zu  churn=%zu (1%%)\n\n", n, churn);

  temp_dir td;
  store::durability_options opts;
  opts.dir = td.path;
  opts.wal.sync_every = 16;  // group commit; PAM_WAL_SYNC_EVERY=1 for strict

  std::vector<K> splitters = {universe / 4, universe / 2, 3 * universe / 4};
  sharded_map<map_t> shards(splitters);
  durability_t d(opts, shards.snapshot_all());

  // ------------------------------------------------------ full checkpoint --
  shards.multi_insert(kv_entries(n, 1, universe));
  durability_t::ckpt_result full;
  double t_full = timed([&] {
    full = d.save_checkpoint(shards.snapshot_all(), d.durable_seq());
  });
  if (!full.full) {
    std::printf("ERROR: first checkpoint of %zu fresh keys was not full\n", n);
    return 2;
  }
  double full_mb = double(full.bytes) / 1e6;
  double full_mb_s = t_full > 0 ? full_mb / t_full : 0.0;
  std::printf("%-26s %10.4fs   %8.1f MB   %8.1f MB/s\n", "full checkpoint",
              t_full, full_mb, full_mb_s);
  bench_json("bench_durability", "full_n=" + std::to_string(n), "t_s", t_full);
  bench_json("bench_durability", "full_n=" + std::to_string(n), "bytes",
             double(full.bytes));
  bench_json("bench_durability", "full_n=" + std::to_string(n), "mb_s",
             full_mb_s);

  // --------------------------------------------- incremental checkpoint --
  shards.multi_insert(kv_entries(churn, 2, universe));
  durability_t::ckpt_result delta;
  double t_delta = timed([&] {
    delta = d.save_checkpoint(shards.snapshot_all(), d.durable_seq());
  });
  if (delta.full) {
    std::printf("ERROR: 1%% churn checkpoint escalated to full\n");
    return 2;
  }
  double ratio = full.bytes > 0 ? double(delta.bytes) / double(full.bytes) : 1.0;
  std::printf("%-26s %10.4fs   %8.1f MB   ratio %.4f of full\n",
              "incremental (1% churn)", t_delta, double(delta.bytes) / 1e6,
              ratio);
  bench_json("bench_durability", "delta_n=" + std::to_string(n), "t_s",
             t_delta);
  bench_json("bench_durability", "delta_n=" + std::to_string(n), "bytes",
             double(delta.bytes));
  bench_json("bench_durability", "delta_n=" + std::to_string(n),
             "ratio_vs_full", ratio);

  // ------------------------------------------------------- WAL appends --
  constexpr size_t kBatches = 256;
  constexpr size_t kBatchOps = 500;
  std::vector<std::vector<entry_t>> batches(kBatches);
  for (size_t b = 0; b < kBatches; b++) {
    batches[b].reserve(kBatchOps);
    for (size_t i = 0; i < kBatchOps; i++) {
      // Fresh key space above the universe: replay lands ops the
      // checkpoint chain does not already contain.
      batches[b].emplace_back(universe + b * kBatchOps + i, b);
    }
  }
  const std::vector<K> no_dels;
  std::vector<double> batch_lat_ns;
  batch_lat_ns.reserve(kBatches);
  double t_append = timed([&] {
    for (size_t b = 0; b < kBatches; b++) {
      uint64_t t0 = obs::now_ns();
      if (d.log_batch(~uint32_t{0}, batches[b], no_dels) == 0) {
        std::printf("ERROR: WAL writer died mid-bench\n");
        std::exit(2);
      }
      batch_lat_ns.push_back(double(obs::now_ns() - t0));
    }
    d.sync_wal();
  });
  const size_t wal_ops = kBatches * kBatchOps;
  double append_ops_s = t_append > 0 ? double(wal_ops) / t_append : 0.0;
  std::sort(batch_lat_ns.begin(), batch_lat_ns.end());
  double append_p50 = percentile_sorted(batch_lat_ns, 0.5);
  double append_p99 = percentile_sorted(batch_lat_ns, 0.99);
  std::printf("%-26s %10.4fs   %8zu ops  %10.0f ops/s  (sync_every=16, "
              "batch p50=%.0fns p99=%.0fns)\n",
              "WAL append", t_append, wal_ops, append_ops_s, append_p50,
              append_p99);
  bench_json("bench_durability", "wal_ops=" + std::to_string(wal_ops), "t_s",
             t_append);
  bench_json("bench_durability", "wal_ops=" + std::to_string(wal_ops),
             "append_ops_s", append_ops_s);
  bench_json("bench_durability", "wal_ops=" + std::to_string(wal_ops),
             "p50_ns", append_p50);
  bench_json("bench_durability", "wal_ops=" + std::to_string(wal_ops),
             "p99_ns", append_p99);

  // --------------------------------------------------------- recovery --
  // Load the full+delta chain, then replay the WAL tail; verified against
  // the expected contents (checkpointed keys + every WAL op).
  std::optional<durability_t::recovered_t> rec;
  double t_recover = timed([&] { rec = durability_t::recover(opts); });
  // Checkpointed keys plus every WAL op (disjoint key space above universe).
  const size_t expect = shards.snapshot_all().size() + wal_ops;
  if (!rec.has_value() || rec->contents.size() != expect) {
    std::printf("ERROR: recovery mismatch: got %zu want %zu\n",
                rec.has_value() ? rec->contents.size() : 0, expect);
    return 2;
  }
  double replay_ops_s = t_recover > 0 ? double(wal_ops) / t_recover : 0.0;
  std::printf("%-26s %10.4fs   %8zu rec  %10.0f ops/s  (incl. ckpt load)\n\n",
              "recovery", t_recover, size_t(rec->wal_records), replay_ops_s);
  bench_json("bench_durability", "recover_n=" + std::to_string(n), "t_s",
             t_recover);
  bench_json("bench_durability", "recover_n=" + std::to_string(n),
             "replay_ops_s", replay_ops_s);
  bench_json("bench_durability", "recover_n=" + std::to_string(n),
             "wal_records", double(rec->wal_records));

  // The acceptance target is 0.10 on dedicated hardware; PAM_DURABILITY_GATE
  // lets shared CI runners enforce a tolerant floor instead of flaking.
  double gate = env_double("PAM_DURABILITY_GATE", 0.30);
  std::printf("incremental checkpoint ratio at 1%% churn: %.4f  "
              "[acceptance target <= 0.10, enforcing <= %.2f]\n",
              ratio, gate);
  bench_json("bench_durability", "gate", "incr_ratio", ratio);
  dump_observability();  // PAM_METRICS_DUMP / PAM_TRACE_JSON artifacts
  if (env_long("PAM_PERF_GATE", 0) != 0 && ratio > gate) {
    std::printf("PERF GATE FAILED: %.4f > %.2f\n", ratio, gate);
    return 1;
  }
  return 0;
}
