// Application 4: a weighted inverted index with ranked and/or queries
// (paper Section 5.3).
//
//   M_I = AM(doc id, <, weight, weight, (k,v) -> v, max, 0)   posting lists
//   M_O = M(term, <, M_I)                                     the index
//
// Each term maps to a posting map from document id to weight, augmented by
// the maximum weight. Conjunctive (AND) queries intersect posting maps,
// disjunctive (OR) queries union them, combining weights; both run in
// O(m log(n/m + 1)) — much less than the output size for skewed lists. The
// max augmentation then lets top-k selection explore only the heaviest
// O(k log n) subtrees instead of scanning the whole result.
//
// Queries are snapshot-safe: they operate on O(1) copies of the shared
// posting maps, which is the concurrency pattern the paper measures
// ("each query does its own intersection over the shared posting lists").
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "apps/corpus.h"
#include "pam/pam.h"
#include "parallel/merge_sort.h"
#include "parallel/parallel.h"
#include "parallel/sequence_ops.h"

namespace pam {

class inverted_index {
 public:
  using doc_id = uint32_t;
  using weight = float;

  struct posting_entry {
    using key_t = doc_id;
    using val_t = weight;
    using aug_t = weight;
    static bool comp(doc_id a, doc_id b) { return a < b; }
    static aug_t identity() { return 0.0f; }
    static aug_t base(doc_id, weight v) { return v; }
    static aug_t combine(weight a, weight b) { return a > b ? a : b; }
  };
  using posting_map = aug_map<posting_entry>;

  struct index_entry {
    using key_t = std::string;
    using val_t = posting_map;
    static bool comp(const std::string& a, const std::string& b) { return a < b; }
    // Posting maps are immutable snapshots: two values denote the same
    // postings iff they share a root. This is the val_equal hook pam/diff.h
    // dispatches to, so diffing two index versions prunes every untouched
    // term in O(1) instead of descending into its posting map.
    static bool val_equal(const posting_map& a, const posting_map& b) {
      return a.same_root(b);
    }
  };
  using index_map = pam_map<index_entry>;
  using index_diff = map_diff<index_map>;

  inverted_index() = default;

  // Parallel group-by build from (word, doc, weight) occurrences: sort by
  // (word, doc), build each term's posting map from its run in parallel
  // (duplicate (word, doc) pairs keep the max weight), then build the outer
  // index over the distinct terms.
  explicit inverted_index(std::vector<posting> triples) {
    size_t n = triples.size();
    parallel_sort(triples.data(), n, [](const posting& a, const posting& b) {
      if (a.word != b.word) return a.word < b.word;
      return a.doc < b.doc;
    });
    std::vector<size_t> starts = run_boundaries(
        triples, [](const posting& p) { return p.word; },
        [](uint32_t a, uint32_t b) { return a < b; });
    size_t terms = starts.size();
    std::vector<typename index_map::entry_t> outer(terms);
    parallel_for(0, terms, [&](size_t j) {
      size_t lo = starts[j];
      size_t hi = (j + 1 < terms) ? starts[j + 1] : n;
      std::vector<typename posting_map::entry_t> docs;
      docs.reserve(hi - lo);
      for (size_t i = lo; i < hi; i++) {
        if (!docs.empty() && docs.back().first == triples[i].doc) {
          docs.back().second = std::max(docs.back().second, triples[i].weight);
        } else {
          docs.emplace_back(triples[i].doc, triples[i].weight);
        }
      }
      outer[j] = {corpus_word(triples[lo].word), from_sorted_docs(docs)};
    }, 1);
    index_ = index_map(std::move(outer));
  }

  size_t num_terms() const { return index_.size(); }

  // The posting map of one term (empty map if absent). O(log |vocab|) plus
  // an O(1) snapshot copy.
  posting_map postings(const std::string& term) const {
    auto v = index_.find(term);
    return v.has_value() ? *v : posting_map();
  }

  // AND query: documents containing both terms; weights are added.
  posting_map query_and(const std::string& t1, const std::string& t2) const {
    return posting_map::map_intersect(postings(t1), postings(t2),
                                      [](weight a, weight b) { return a + b; });
  }

  // OR query: documents containing either term; weights are added.
  posting_map query_or(const std::string& t1, const std::string& t2) const {
    return posting_map::map_union(postings(t1), postings(t2),
                                  [](weight a, weight b) { return a + b; });
  }

  // Multi-term conjunction, smallest posting list first.
  posting_map query_and_all(std::vector<std::string> terms) const {
    if (terms.empty()) return {};
    std::vector<posting_map> ps;
    ps.reserve(terms.size());
    for (auto& t : terms) ps.push_back(postings(t));
    std::sort(ps.begin(), ps.end(),
              [](const posting_map& a, const posting_map& b) { return a.size() < b.size(); });
    posting_map acc = ps[0];
    for (size_t i = 1; i < ps.size(); i++) {
      acc = posting_map::map_intersect(std::move(acc), std::move(ps[i]),
                                       [](weight a, weight b) { return a + b; });
    }
    return acc;
  }

  // The k heaviest (doc, weight) pairs of a result map, heaviest first.
  // Best-first search over the max augmentation: a subtree is only expanded
  // if its cached maximum still beats the current frontier, so the search
  // touches O(k log n) nodes instead of all n. Traverses the tree through
  // read-only cursors — no raw node access, no copies.
  static std::vector<std::pair<doc_id, weight>> top_k(const posting_map& m, size_t k) {
    using cursor = typename posting_map::cursor;
    struct item {
      weight w;
      cursor subtree;  // empty => settled entry
      doc_id doc;
      weight doc_w;
      bool operator<(const item& o) const { return w < o.w; }
    };
    std::priority_queue<item> pq;
    if (cursor root = m.root_cursor()) pq.push({root.aug(), root, 0, 0});
    std::vector<std::pair<doc_id, weight>> out;
    while (!pq.empty() && out.size() < k) {
      item it = pq.top();
      pq.pop();
      if (it.subtree.empty()) {
        out.emplace_back(it.doc, it.doc_w);
        continue;
      }
      // Expand: settle every entry stored at the subtree root (one for a
      // plain node, the whole block for a blocked leaf) and re-queue the
      // children under their cached maxima.
      cursor t = it.subtree;
      for (size_t i = 0; i < t.entry_count(); i++) {
        pq.push({t.value(i), cursor(), t.key(i), t.value(i)});
      }
      if (cursor l = t.left()) pq.push({l.aug(), l, 0, 0});
      if (cursor r = t.right()) pq.push({r.aug(), r, 0, 0});
    }
    return out;
  }

  // All documents of a result with weight above a threshold, via the pruned
  // aug_filter (the alternative top-k strategy the paper mentions).
  static posting_map filter_above(posting_map m, weight threshold) {
    return posting_map::aug_filter(std::move(m),
                                   [=](weight w) { return w > threshold; });
  }

  // ------------------------------------------------- incremental updates --

  // A new index version with `additions` merged in (duplicate (term, doc)
  // pairs keep the max weight, matching the builder). Posting maps of
  // untouched terms are shared by root pointer with this version — which is
  // exactly what makes changed_terms() between the two versions cheap.
  inverted_index updated(std::vector<posting> additions) const {
    inverted_index delta(std::move(additions));
    inverted_index out;
    out.index_ = index_map::map_union(
        index_, delta.index_, [](const posting_map& a, const posting_map& b) {
          return posting_map::map_union(
              a, b, [](weight x, weight y) { return x > y ? x : y; });
        });
    return out;
  }

  // The terms whose posting maps changed between two index versions, in
  // term order, with before/after posting maps. O(changed terms) thanks to
  // the root-identity val_equal prune.
  static std::vector<map_change<index_map>> changed_terms(
      const inverted_index& from, const inverted_index& to) {
    return index_map::diff_changes(from.index_, to.index_);
  }

  const index_map& index() const { return index_; }

 private:
  static posting_map from_sorted_docs(const std::vector<typename posting_map::entry_t>& docs) {
    return posting_map::from_sorted(docs);
  }

  index_map index_;
};

}  // namespace pam
