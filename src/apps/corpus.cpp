#include "apps/corpus.h"

#include <cstdio>

#include "parallel/parallel.h"
#include "util/zipf.h"

namespace pam {

std::string corpus_word(size_t rank) {
  // Compact deterministic "word": base-26 encoding of the rank. Frequent
  // words get short strings, like real vocabularies.
  std::string w;
  size_t r = rank;
  do {
    w.push_back(static_cast<char>('a' + r % 26));
    r /= 26;
  } while (r != 0);
  return w;
}

corpus make_corpus(const corpus_params& params) {
  corpus c;
  c.vocabulary = params.vocabulary;
  c.num_docs = params.num_docs;
  size_t total = params.num_docs * params.words_per_doc;
  c.triples.resize(total);

  // Each document samples its words from an independent Zipf stream so the
  // generation parallelizes over documents.
  parallel_for(0, params.num_docs, [&](size_t d) {
    zipf_generator zipf(params.vocabulary, params.zipf_s,
                        hash64(params.seed + d));
    random_gen wrng(hash64(params.seed * 3 + d));
    for (size_t j = 0; j < params.words_per_doc; j++) {
      posting& p = c.triples[d * params.words_per_doc + j];
      p.word = static_cast<uint32_t>(zipf());
      p.doc = static_cast<uint32_t>(d);
      p.weight = static_cast<float>(wrng.next_double());
    }
  }, 1);
  return c;
}

}  // namespace pam
