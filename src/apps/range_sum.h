// Application 1: the augmented sum map (paper Equation 1).
//
//   AM(Z, <, Z, Z, (k,v) -> v, +, 0)
//
// An ordered map from integer keys to integer values whose augmented value
// is the sum of all values; range sums over any key interval run in
// O(log n). This is the structure all of Table 3 is measured on.
#pragma once

#include <cstdint>

#include "pam/pam.h"

namespace pam {

// The paper's benchmark instantiation: 64-bit keys and values.
using range_sum_map = aug_map<sum_entry<uint64_t, uint64_t>>;

// The same map without augmentation, used to measure the overhead of
// maintaining augmented values (Table 3, "Non-augmented PAM").
using plain_sum_map = pam_map<map_entry<uint64_t, uint64_t>>;

}  // namespace pam
