// Application 1: the augmented sum map (paper Equation 1).
//
//   AM(Z, <, Z, Z, (k,v) -> v, +, 0)
//
// An ordered map from integer keys to integer values whose augmented value
// is the sum of all values; range sums over any key interval run in
// O(log n). This is the structure all of Table 3 is measured on.
#pragma once

#include <cstdint>
#include <utility>

#include "pam/pam.h"

namespace pam {

// The paper's benchmark instantiation: 64-bit keys and values.
using range_sum_map = aug_map<sum_entry<uint64_t, uint64_t>>;

// The same map without augmentation, used to measure the overhead of
// maintaining augmented values (Table 3, "Non-augmented PAM").
using plain_sum_map = pam_map<map_entry<uint64_t, uint64_t>>;

// The sum monoid folded over only the regions that changed between two
// versions (pam/diff.h): {sum of removed/overwritten old values, sum of
// added/new values}, in O(d log(n/d + 1)) for d changes. An aggregate
// maintained as new_total = old_total - first + second never rescans the
// map — the incremental form of the Equation 1 augmentation.
inline std::pair<uint64_t, uint64_t> sum_delta(const range_sum_map& from,
                                               const range_sum_map& to) {
  return range_sum_map::diff_fold(
      from, to, [](uint64_t, uint64_t v) { return v; },
      [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0});
}

}  // namespace pam
