// Application 2: interval trees (paper Section 5.1, Figure 3).
//
// Maintains a dynamic set of closed intervals [l, r] on the line and
// answers stabbing queries in O(log n): a point p is covered iff the
// maximum right endpoint among intervals with left endpoint <= p is >= p.
// The structure is just an augmented map
//
//   I = AM(left endpoint, <, right endpoint, right endpoint,
//          (k, v) -> v, max, -inf)
//
// We key by the (left, right) pair rather than the left endpoint alone so
// that multiple intervals sharing a left endpoint coexist; the asymptotics
// are unchanged. report_all uses the pruned aug_filter: a subtree whose
// maximum right endpoint is < p cannot contain a covering interval, giving
// O(k log(n/k + 1)) work for k results.
#pragma once

#include <limits>
#include <utility>
#include <vector>

#include "pam/pam.h"

namespace pam {

template <typename P = double>
class interval_map {
 public:
  using point = P;
  using interval = std::pair<P, P>;  // closed [first, second]

  struct entry {
    using key_t = interval;
    using val_t = P;
    using aug_t = P;
    static bool comp(const key_t& a, const key_t& b) { return a < b; }
    static aug_t identity() { return std::numeric_limits<P>::lowest(); }
    static aug_t base(const key_t&, const val_t& v) { return v; }
    static aug_t combine(const aug_t& a, const aug_t& b) { return a > b ? a : b; }
  };
  using amap = aug_map<entry>;

  interval_map() = default;

  // Parallel O(n log n) construction from n intervals.
  interval_map(const interval* a, size_t n) {
    std::vector<typename amap::entry_t> es;
    es.reserve(n);
    for (size_t i = 0; i < n; i++) es.emplace_back(a[i], a[i].second);
    m_ = amap(std::move(es));
  }

  explicit interval_map(const std::vector<interval>& xs)
      : interval_map(xs.data(), xs.size()) {}

  size_t size() const { return m_.size(); }

  // Persistent single-interval updates (O(log n)).
  void insert(const interval& x) { m_.insert_inplace(x, x.second); }
  void remove(const interval& x) { m_.remove_inplace(x); }

  // Is p covered by any interval? O(log n).
  bool stab(P p) const { return m_.aug_left(upper_key(p)) >= p; }

  // All intervals containing p: a pruned read-only traversal. Subtrees
  // whose max right endpoint is < p cannot contain a covering interval and
  // are skipped; subtrees whose least left endpoint is > p are never
  // entered. O(k log(n/k + 1)) work for k results, with zero node
  // allocation (the old implementation materialized up_to + aug_filter
  // intermediate maps).
  std::vector<interval> report_all(P p) const {
    std::vector<interval> out;
    stab_visit(m_.root_cursor(), p, [&](const interval& x) { out.push_back(x); });
    return out;
  }

  // Number of intervals containing p (same pruned search, counted).
  size_t count_stab(P p) const {
    size_t n = 0;
    stab_visit(m_.root_cursor(), p, [&](const interval&) { n++; });
    return n;
  }

  const amap& map() const { return m_; }
  bool check_valid() const { return m_.check_valid(); }

 private:
  using cursor = typename amap::cursor;

  // The largest key whose left endpoint is <= p.
  static interval upper_key(P p) { return {p, std::numeric_limits<P>::max()}; }

  // Pruned stabbing traversal: t.aug() < p prunes the whole subtree (no
  // interval in it reaches p); an entry with left endpoint > p excludes
  // itself, the entries after it, and the right subtree (keys there start
  // even later). A subtree root carries 1..B entries (a whole leaf block in
  // the blocked layout), scanned flat. Calls visit(interval) for every
  // interval containing p, in key order.
  template <typename Visit>
  static void stab_visit(cursor t, P p, const Visit& visit) {
    if (t.empty() || t.aug() < p) return;
    stab_visit(t.left(), p, visit);
    for (size_t i = 0; i < t.entry_count(); i++) {
      if (t.key(i).first > p) return;
      if (t.value(i) >= p) visit(t.key(i));
    }
    stab_visit(t.right(), p, visit);
  }

  amap m_;
};

}  // namespace pam
