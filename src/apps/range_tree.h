// Application 3: 2D range trees (paper Section 5.2, Figure 5).
//
// A two-level nested augmented map:
//
//   R_I = AM(point-by-y, <_y, weight, weight, (k,v) -> v, +, 0)
//   R_O = AM(point-by-x, <_x, weight, R_I, singleton, union, empty)
//
// The outer map orders points by x; the augmented value of every outer
// subtree is an *inner augmented map* of the same points ordered by y,
// augmented by the sum of weights. Because PAM's trees are persistent, the
// UNION combine builds each inner map sharing nodes with its children's
// inner maps without disturbing them — the property the paper calls out as
// essential for correctness.
//
//   query_sum   O(log^2 n): aug_project over x, aug_range over y.
//   query_count same, counting points.
//   query_points O(log^2 n + k): canonical-subtree traversal, reporting.
//
// Construction is O(n log n) work by bottom-up unions.
#pragma once

#include <limits>
#include <utility>
#include <vector>

#include "pam/pam.h"

namespace pam {

template <typename Coord = double, typename W = int64_t>
class range_tree {
 public:
  struct point {
    Coord x, y;
    W w;
  };
  using xy = std::pair<Coord, Coord>;

  // Inner map: key (y, x), value/augmentation = weight sum.
  struct inner_entry {
    using key_t = xy;  // (y, x)
    using val_t = W;
    using aug_t = W;
    static bool comp(const key_t& a, const key_t& b) { return a < b; }
    static aug_t identity() { return W{}; }
    static aug_t base(const key_t&, const val_t& v) { return v; }
    static aug_t combine(const aug_t& a, const aug_t& b) { return a + b; }
  };
  using inner_map = aug_map<inner_entry>;

  // Outer map: key (x, y), augmented value = inner map of the subtree.
  struct outer_entry {
    using key_t = xy;  // (x, y)
    using val_t = W;
    using aug_t = inner_map;
    static bool comp(const key_t& a, const key_t& b) { return a < b; }
    static aug_t identity() { return inner_map(); }
    static aug_t base(const key_t& k, const val_t& v) {
      return inner_map::singleton({k.second, k.first}, v);
    }
    static aug_t combine(const aug_t& a, const aug_t& b) {
      return inner_map::map_union(a, b, [](const W& x, const W& y) { return x + y; });
    }
  };
  using outer_map = aug_map<outer_entry>;

  range_tree() = default;

  // Parallel O(n log n) construction. Points must have distinct (x, y).
  range_tree(const point* pts, size_t n) {
    std::vector<typename outer_map::entry_t> es;
    es.reserve(n);
    for (size_t i = 0; i < n; i++) es.push_back({{pts[i].x, pts[i].y}, pts[i].w});
    outer_ = outer_map(std::move(es));
  }

  explicit range_tree(const std::vector<point>& pts)
      : range_tree(pts.data(), pts.size()) {}

  size_t size() const { return outer_.size(); }

  // Sum of weights of points with xlo <= x <= xhi and ylo <= y <= yhi.
  // O(log^2 n): aug_project sums g2 = (inner aug_range over y) with f2 = +
  // over the O(log n) canonical x-subtrees — valid because
  // range_y(a) + range_y(b) == range_y(union(a, b)) for disjoint a, b.
  W query_sum(Coord xlo, Coord xhi, Coord ylo, Coord yhi) const {
    auto g2 = [&](const inner_map& im) { return im.aug_range(ylo_key(ylo), yhi_key(yhi)); };
    auto f2 = [](const W& a, const W& b) { return a + b; };
    return outer_.template aug_project<W>(g2, f2, W{}, xlo_key(xlo), xhi_key(xhi));
  }

  // Number of points in the rectangle (same search, counting entries).
  size_t query_count(Coord xlo, Coord xhi, Coord ylo, Coord yhi) const {
    auto g2 = [&](const inner_map& im) {
      return inner_map::range(im, ylo_key(ylo), yhi_key(yhi)).size();
    };
    auto f2 = [](size_t a, size_t b) { return a + b; };
    return outer_.template aug_project<size_t>(g2, f2, size_t{0}, xlo_key(xlo),
                                               xhi_key(xhi));
  }

  // All points in the rectangle, in x order within canonical groups.
  // O(log^2 n + k) for k results.
  std::vector<point> query_points(Coord xlo, Coord xhi, Coord ylo, Coord yhi) const {
    std::vector<point> out;
    collect(outer_.root_cursor(), xlo_key(xlo), xhi_key(xhi), ylo, yhi, out);
    return out;
  }

  const outer_map& outer() const { return outer_; }

  // Node accounting for the space experiment (paper Table 4).
  static int64_t outer_nodes_used() { return outer_map::used_nodes(); }
  static int64_t inner_nodes_used() { return inner_map::used_nodes(); }

  bool check_valid() const {
    return outer_.check_valid() && check_outer(outer_.root_cursor());
  }

 private:
  using ocursor = typename outer_map::cursor;

  static bool xless(const xy& a, const xy& b) { return outer_entry::comp(a, b); }

  static xy xlo_key(Coord x) { return {x, std::numeric_limits<Coord>::lowest()}; }
  static xy xhi_key(Coord x) { return {x, std::numeric_limits<Coord>::max()}; }
  static xy ylo_key(Coord y) { return {y, std::numeric_limits<Coord>::lowest()}; }
  static xy yhi_key(Coord y) { return {y, std::numeric_limits<Coord>::max()}; }

  // Report an entry of the cursor node if its y lies in [ylo, yhi].
  void report_entry(const ocursor& t, size_t i, Coord ylo, Coord yhi,
                    std::vector<point>& out) const {
    if (t.key(i).second >= ylo && t.key(i).second <= yhi)
      out.push_back({t.key(i).first, t.key(i).second, t.value(i)});
  }

  // Standard range-tree reporting: decompose the x-range into canonical
  // subtrees (via read-only cursors), query each subtree's inner map by y.
  // A subtree root carries 1..B sorted entries (a whole leaf block in the
  // blocked layout); the left subtree sits below the first of them, the
  // right above the last, so the classical three-way case analysis applies
  // to the entry *run* instead of a single key.
  void collect(ocursor t, const xy& lo, const xy& hi, Coord ylo, Coord yhi,
               std::vector<point>& out) const {
    if (t.empty()) return;
    size_t c = t.entry_count();
    if (xless(t.key(c - 1), lo)) {  // run (and left subtree) below the range
      collect(t.right(), lo, hi, ylo, yhi, out);
      return;
    }
    if (xless(hi, t.key(0))) {  // run (and right subtree) above the range
      collect(t.left(), lo, hi, ylo, yhi, out);
      return;
    }
    // The run straddles the x-range: each side needs only one-sided x
    // filtering, and a side whose nearest run key is already outside the
    // range cannot contain a hit at all.
    if (!xless(t.key(0), lo)) collect_geq(t.left(), lo, ylo, yhi, out);
    for (size_t i = 0; i < c; i++) {
      if (xless(t.key(i), lo) || xless(hi, t.key(i))) continue;
      report_entry(t, i, ylo, yhi, out);
    }
    if (!xless(hi, t.key(c - 1))) collect_leq(t.right(), hi, ylo, yhi, out);
  }

  // Report points with x-key >= lo (whole right subtrees are canonical).
  void collect_geq(ocursor t, const xy& lo, Coord ylo, Coord yhi,
                   std::vector<point>& out) const {
    if (t.empty()) return;
    size_t c = t.entry_count();
    if (xless(t.key(c - 1), lo)) {
      collect_geq(t.right(), lo, ylo, yhi, out);
      return;
    }
    if (!xless(t.key(0), lo)) collect_geq(t.left(), lo, ylo, yhi, out);
    for (size_t i = 0; i < c; i++) {
      if (!xless(t.key(i), lo)) report_entry(t, i, ylo, yhi, out);
    }
    report_inner(t.right(), ylo, yhi, out);
  }

  // Report points with x-key <= hi.
  void collect_leq(ocursor t, const xy& hi, Coord ylo, Coord yhi,
                   std::vector<point>& out) const {
    if (t.empty()) return;
    size_t c = t.entry_count();
    if (xless(hi, t.key(0))) {
      collect_leq(t.left(), hi, ylo, yhi, out);
      return;
    }
    report_inner(t.left(), ylo, yhi, out);
    for (size_t i = 0; i < c; i++) {
      if (!xless(hi, t.key(i))) report_entry(t, i, ylo, yhi, out);
    }
    if (!xless(hi, t.key(c - 1))) collect_leq(t.right(), hi, ylo, yhi, out);
  }

  // Query one canonical subtree's inner map by y and append the hits. A
  // lazy view over the inner map: no range_copy, no node allocation.
  void report_inner(ocursor t, Coord ylo, Coord yhi,
                    std::vector<point>& out) const {
    if (t.empty()) return;
    t.aug().view(ylo_key(ylo), yhi_key(yhi)).for_each([&](const xy& k, const W& w) {
      out.push_back({k.second, k.first, w});  // inner key is (y, x)
    });
  }

  // Validation: every outer subtree's inner map holds exactly its points.
  bool check_outer(ocursor t) const {
    if (t.empty()) return true;
    if (t.size() != t.aug().size()) return false;
    return check_outer(t.left()) && check_outer(t.right());
  }

  outer_map outer_;
};

}  // namespace pam
