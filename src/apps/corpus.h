// Synthetic text corpus generator.
//
// The paper builds its inverted index from the 2016 English Wikipedia dump:
// 1.96e9 words, 5.09e6 distinct words, 8.13e6 documents, with a random
// weight per (word, document) pair. The dump is not available offline, so
// this module generates a corpus with the property that actually matters for
// index performance: a Zipfian word-frequency distribution, which reproduces
// the posting-list length skew of natural language. Document ids are dense,
// weights are uniform random (the paper notes weight values do not affect
// running time). See DESIGN.md section 3 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pam {

// One (word, document, weight) occurrence, the unit the index is built from.
struct posting {
  uint32_t word;   // vocabulary rank; 0 is the most frequent word
  uint32_t doc;    // document id
  float weight;    // relevance weight
};

struct corpus_params {
  size_t vocabulary = 100000;   // distinct words
  size_t num_docs = 10000;      // documents
  size_t words_per_doc = 200;   // words per document
  double zipf_s = 1.0;          // Zipf exponent (~1.0 for natural language)
  uint64_t seed = 42;
};

struct corpus {
  std::vector<posting> triples;
  size_t vocabulary = 0;
  size_t num_docs = 0;
};

// The printable word for a vocabulary rank (deterministic, short for
// frequent ranks).
std::string corpus_word(size_t rank);

corpus make_corpus(const corpus_params& params);

}  // namespace pam
