// Public fork-join interface: par_do / par_do_if / parallel_for.
//
// These are the only parallel control primitives the rest of the library
// uses, mirroring how PAM uses only cilk_spawn/cilk_sync and cilk_for.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

#include "parallel/scheduler.h"

namespace pam {

// ------------------------------------------------- granularity knob family --
// Runtime-tunable sequential cutoffs, grouped here so every layer (the bulk
// tree recursions in map_ops, the reference-counting GC in node.h) draws
// from one knob family and the granularity ablation can sweep them all.

// Bulk tree recursions (union, build, filter, multi_*): trees smaller than
// this run sequentially (the paper: "parallelism is not used on very small
// trees"). The read is one relaxed load, negligible against the subtree
// work it gates.
inline std::atomic<size_t>& par_cutoff_knob() {
  static std::atomic<size_t> cutoff{512};
  return cutoff;
}
inline size_t par_cutoff() { return par_cutoff_knob().load(std::memory_order_relaxed); }
inline void set_par_cutoff(size_t c) { par_cutoff_knob().store(c); }

// Reference-counting GC (node.h::dec): subtrees smaller than this are
// collected sequentially instead of forking.
inline std::atomic<size_t>& gc_par_cutoff_knob() {
  static std::atomic<size_t> cutoff{size_t{1} << 12};
  return cutoff;
}
inline size_t gc_par_cutoff() {
  return gc_par_cutoff_knob().load(std::memory_order_relaxed);
}
inline void set_gc_par_cutoff(size_t c) { gc_par_cutoff_knob().store(c); }

// Number of scheduler workers (= the paper's "threads").
inline int num_workers() { return internal::scheduler::get().num_workers(); }

// Resize the worker pool; only valid at quiescent points (see scheduler.h).
inline void set_num_workers(int p) { internal::scheduler::get().set_num_workers(p); }

// Worker id of the calling thread in [0, num_workers()), or -1.
inline int worker_id() { return internal::scheduler::worker_id(); }

// Run `left` and `right` as a parallel pair; returns when both are done.
template <typename L, typename R>
void par_do(L&& left, R&& right) {
  internal::scheduler::get().par_do(std::forward<L>(left), std::forward<R>(right));
}

// par_do when `parallel` is true, otherwise run sequentially (left; right).
// Callers use this to impose a granularity cutoff on tree recursions.
template <typename L, typename R>
void par_do_if(bool parallel, L&& left, R&& right) {
  if (parallel) {
    par_do(std::forward<L>(left), std::forward<R>(right));
  } else {
    left();
    right();
  }
}

namespace internal {
template <typename F>
void parallel_for_rec(size_t lo, size_t hi, const F& f, size_t granularity) {
  if (hi - lo <= granularity) {
    for (size_t i = lo; i < hi; i++) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  scheduler::get().par_do([&] { parallel_for_rec(lo, mid, f, granularity); },
                          [&] { parallel_for_rec(mid, hi, f, granularity); });
}
}  // namespace internal

// Apply f(i) for i in [lo, hi), in parallel. `granularity` is the largest
// block that runs sequentially; 0 picks a heuristic based on the range and
// worker count (fine for cheap loop bodies; pass 1 for expensive bodies).
template <typename F>
void parallel_for(size_t lo, size_t hi, const F& f, size_t granularity = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (granularity == 0) {
    size_t chunks = static_cast<size_t>(num_workers()) * 8;
    granularity = n / chunks + 1;
    if (granularity > 4096) granularity = 4096;
  }
  if (n <= granularity) {
    for (size_t i = lo; i < hi; i++) f(i);
    return;
  }
  internal::parallel_for_rec(lo, hi, f, granularity);
}

}  // namespace pam
