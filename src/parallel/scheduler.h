// A from-scratch fork-join work-stealing scheduler.
//
// The paper runs PAM on the Cilk Plus runtime (cilk_spawn / cilk_sync).
// This module provides the same programming model — binary fork-join with
// nested parallelism — on plain std::thread:
//
//   * one worker per hardware thread, each owning a Chase-Lev work-stealing
//     deque (the memory-model-correct formulation of Le, Pop, Cohen &
//     Zappa Nardelli, PPoPP 2013);
//   * `par_do(left, right)` pushes the right task onto the local deque, runs
//     the left task inline, then either pops the right task back (the common,
//     synchronization-cheap case) or, if it was stolen, helps by running
//     other stolen tasks until the thief finishes ("helping" join, as in
//     Cilk's work-first principle);
//   * idle workers steal from uniformly random victims, backing off to
//     short sleeps so an idle pool costs ~nothing.
//
// Scheduling bounds: this is a greedy work-stealing scheduler, so a
// computation with work W and span S runs in O(W/P + S) expected time
// (Blumofe & Leiserson), which is the model under which all asymptotic
// claims in the paper (and in DESIGN.md) are stated.
//
// The pool can be resized at a quiescent point with `set_num_workers`, which
// is how the thread-sweep benchmarks (Figure 6) vary P within one process.
//
// Threads that are not scheduler workers (e.g. user threads in the snapshot
// tests) may call par_do; they simply run both branches inline. Tasks must
// not throw: an exception escaping a stolen task terminates the program,
// matching the Cilk runtime's behavior.
//
// Concurrency contract: the scheduler is deliberately mutex-free — every
// shared word (deque top/bottom, fork_item::done, shutdown_) is a
// std::atomic with orderings given inline, so there are no capabilities to
// annotate (DESIGN.md, "lock-free" rows). set_num_workers is the one
// quiescence-required member; that requirement is temporal, not lock-based,
// and is covered by the TSan job rather than the static analysis.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace pam {
namespace internal {

// Fork/steal instrumentation (PR 9). Global and immortal like the scheduler
// itself; obs/metrics.h deliberately has no scheduler dependency, so this
// include direction is acyclic.
struct sched_metrics_t {
  obs::counter forks{"pam_sched_forks_total"};
  obs::counter steals{"pam_sched_steals_total"};
};

inline sched_metrics_t& sched_metrics() {
  // pam-lint: allow(naked-new) — immortal process-wide metric block, same
  // lifetime rule as scheduler::get.
  static sched_metrics_t* m = new sched_metrics_t();
  return *m;
}

// A type-erased task. The concrete fork_item lives on the forking thread's
// stack; it stays alive until par_do returns, so raw pointers are safe.
struct work_item {
  void (*execute)(work_item*);
};

template <typename F>
struct fork_item final : work_item {
  F& func;
  std::atomic<bool> done{false};

  explicit fork_item(F& f) : work_item{&fork_item::run}, func(f) {}

  static void run(work_item* base) {
    auto* self = static_cast<fork_item*>(base);
    self->func();
    self->done.store(true, std::memory_order_release);
  }
};

// Chase-Lev work-stealing deque, fixed capacity. The owner pushes and pops
// at the bottom without synchronization in the common case; thieves CAS the
// top. Memory orderings follow Le et al. (PPoPP 2013) exactly.
//
// On overflow push_bottom returns false and the caller runs the task inline,
// which is always a correct (if unparallel) fallback.
class ws_deque {
 public:
  // pam-lint: allow(naked-new) — the deque buffer, owned by unique_ptr;
  // deques live exactly as long as the (immortal) scheduler.
  ws_deque() : buffer_(new std::atomic<work_item*>[kCapacity]) {}

  bool push_bottom(work_item* w) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= kCapacity - 1) return false;  // full
    buffer_[b & kMask].store(w, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  // Owner-side pop. Returns nullptr if the deque was empty or the single
  // remaining task was won by a thief.
  work_item* pop_bottom() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    work_item* w = nullptr;
    if (t <= b) {
      w = buffer_[b & kMask].load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          w = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return w;
  }

  // Thief-side steal from the top. Returns nullptr on empty or lost race.
  work_item* steal() {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      work_item* w = buffer_[t & kMask].load(std::memory_order_relaxed);
      if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        return w;
      }
    }
    return nullptr;
  }

 private:
  static constexpr int64_t kCapacity = int64_t{1} << 13;
  static constexpr int64_t kMask = kCapacity - 1;

  alignas(64) std::atomic<int64_t> top_{1};
  alignas(64) std::atomic<int64_t> bottom_{1};
  std::unique_ptr<std::atomic<work_item*>[]> buffer_;
};

class scheduler {
 public:
  // The process-wide scheduler, created on first use and intentionally never
  // destroyed (worker threads outlive static destruction; at exit they are
  // parked in the idle loop touching only this immortal object).
  static scheduler& get();

  int num_workers() const noexcept { return num_workers_; }

  // Worker id of the calling thread, or -1 for foreign (non-pool) threads.
  // The thread that first touched the scheduler is worker 0. Stored as a
  // function-local thread_local: some toolchains mis-resolve class-static
  // TLS across static-library boundaries.
  static int& tl_worker_id() noexcept {
    static thread_local int id = -1;
    return id;
  }
  static int worker_id() noexcept { return tl_worker_id(); }

  // Resize the pool. Must be called at a quiescent point (no parallel work
  // in flight) from the thread that owns worker id 0.
  void set_num_workers(int p);

  template <typename L, typename R>
  void par_do(L&& left, R&& right) {
    int id = tl_worker_id();
    if (id < 0 || num_workers_ == 1) {  // foreign thread or sequential mode
      left();
      right();
      return;
    }
    using Rf = std::remove_reference_t<R>;
    fork_item<Rf> item(right);
    if (!deques_[id]->push_bottom(&item)) {  // deque full: degrade gracefully
      left();
      right();
      return;
    }
    sched_metrics().forks.inc();
    left();
    work_item* popped = deques_[id]->pop_bottom();
    if (popped != nullptr) {
      assert(popped == &item);  // strict fork-join: bottom is ours
      right();
      return;
    }
    // Our task was stolen; help run other work until the thief finishes it.
    wait_until_done(item.done, id);
  }

 private:
  scheduler();
  ~scheduler() = delete;  // immortal by design

  void spawn_workers(int p);
  void stop_workers();
  void worker_loop(int id);
  work_item* try_steal(int self, uint64_t& rng_state);
  void wait_until_done(std::atomic<bool>& flag, int self);

  std::vector<std::unique_ptr<ws_deque>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  int num_workers_ = 1;
};

}  // namespace internal
}  // namespace pam
