// Blocked parallel sequence primitives: reduce, exclusive scan, pack/filter,
// tabulate. These are the work-efficient building blocks underneath sorting,
// build(), and the benchmark generators.
//
// All functions take associative combine functions; results are computed
// block-by-block in left-to-right order so they are deterministic even for
// combines that are associative but not commutative.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "parallel/parallel.h"

namespace pam {

namespace internal {
inline size_t num_blocks(size_t n, size_t block) { return (n + block - 1) / block; }
inline constexpr size_t kSeqBase = 4096;  // below this, run sequentially
}  // namespace internal

// reduce: f(id, a[0], a[1], ..., a[n-1]) for associative f.
template <typename T, typename F>
T reduce(const T* a, size_t n, const F& f, T identity) {
  if (n == 0) return identity;
  if (n <= internal::kSeqBase) {
    T acc = identity;
    for (size_t i = 0; i < n; i++) acc = f(acc, a[i]);
    return acc;
  }
  size_t block = internal::kSeqBase;
  size_t nb = internal::num_blocks(n, block);
  std::vector<T> partial(nb, identity);
  parallel_for(0, nb, [&](size_t b) {
    size_t lo = b * block, hi = std::min(lo + block, n);
    T acc = identity;
    for (size_t i = lo; i < hi; i++) acc = f(acc, a[i]);
    partial[b] = acc;
  }, 1);
  T acc = identity;
  for (size_t b = 0; b < nb; b++) acc = f(acc, partial[b]);
  return acc;
}

// Exclusive in-place scan: a[i] becomes f(id, a[0..i)); returns the total.
// Two-pass blocked algorithm: O(n) work, O(sqrt-ish) span in practice.
template <typename T, typename F>
T scan_exclusive(T* a, size_t n, const F& f, T identity) {
  if (n == 0) return identity;
  if (n <= internal::kSeqBase) {
    T acc = identity;
    for (size_t i = 0; i < n; i++) {
      T next = f(acc, a[i]);
      a[i] = acc;
      acc = next;
    }
    return acc;
  }
  size_t block = internal::kSeqBase;
  size_t nb = internal::num_blocks(n, block);
  std::vector<T> offsets(nb, identity);
  parallel_for(0, nb, [&](size_t b) {
    size_t lo = b * block, hi = std::min(lo + block, n);
    T acc = identity;
    for (size_t i = lo; i < hi; i++) acc = f(acc, a[i]);
    offsets[b] = acc;
  }, 1);
  T total = identity;
  for (size_t b = 0; b < nb; b++) {
    T next = f(total, offsets[b]);
    offsets[b] = total;
    total = next;
  }
  parallel_for(0, nb, [&](size_t b) {
    size_t lo = b * block, hi = std::min(lo + block, n);
    T acc = offsets[b];
    for (size_t i = lo; i < hi; i++) {
      T next = f(acc, a[i]);
      a[i] = acc;
      acc = next;
    }
  }, 1);
  return total;
}

// tabulate: out[i] = f(i) for i in [0, n).
template <typename T, typename F>
std::vector<T> tabulate(size_t n, const F& f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](size_t i) { out[i] = f(i); });
  return out;
}

// pack: the elements a[i] with flags[i] set, in order.
template <typename T>
std::vector<T> pack(const T* a, const unsigned char* flags, size_t n) {
  std::vector<size_t> pos(n);
  parallel_for(0, n, [&](size_t i) { pos[i] = flags[i] ? 1 : 0; });
  size_t total = scan_exclusive(pos.data(), n, [](size_t x, size_t y) { return x + y; },
                                size_t{0});
  std::vector<T> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flags[i]) out[pos[i]] = a[i];
  });
  return out;
}

// filter: the elements satisfying pred, in order.
template <typename T, typename P>
std::vector<T> filter_seq(const T* a, size_t n, const P& pred) {
  std::vector<unsigned char> flags(n);
  parallel_for(0, n, [&](size_t i) { flags[i] = pred(a[i]) ? 1 : 0; });
  return pack(a, flags.data(), n);
}

// The indices i in [0, n) with flags[i] set, in order.
inline std::vector<size_t> pack_indices(const unsigned char* flags, size_t n) {
  std::vector<size_t> pos(n);
  parallel_for(0, n, [&](size_t i) { pos[i] = flags[i] ? 1 : 0; });
  size_t total = scan_exclusive(pos.data(), n, [](size_t x, size_t y) { return x + y; },
                                size_t{0});
  std::vector<size_t> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flags[i]) out[pos[i]] = i;
  });
  return out;
}

}  // namespace pam
