// Stable parallel merge sort with a parallel divide-and-conquer merge.
//
// This is the comparison sort used by build(), multi_insert and the
// benchmark generators. Work O(n log n), span O(log^3 n) (binary-search
// splits in the merge), stable — stability matters because build() combines
// duplicate keys left-to-right with a user function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "parallel/parallel.h"

namespace pam {
namespace internal {

inline constexpr size_t kSortBase = 8192;   // std::stable_sort below this
inline constexpr size_t kMergeBase = 8192;  // std::merge below this

// Stable merge of sorted a[0,na) and b[0,nb) into out. Ties take from `a`
// first. The parallel case splits on the median of the larger side.
template <typename T, typename Comp>
void parallel_merge(T* a, size_t na, T* b, size_t nb, T* out, const Comp& comp) {
  if (na + nb <= kMergeBase) {
    std::merge(std::make_move_iterator(a), std::make_move_iterator(a + na),
               std::make_move_iterator(b), std::make_move_iterator(b + nb), out, comp);
    return;
  }
  if (na >= nb) {
    // Pivot from a: b-elements equal to the pivot stay on the right, which
    // keeps all-of-a-before-b order for ties.
    size_t ma = na / 2;
    size_t mb = std::lower_bound(b, b + nb, a[ma], comp) - b;
    par_do([&] { parallel_merge(a, ma, b, mb, out, comp); },
           [&] { parallel_merge(a + ma, na - ma, b + mb, nb - mb, out + ma + mb, comp); });
  } else {
    // Pivot from b: a-elements equal to the pivot go left (before b's pivot).
    size_t mb = nb / 2;
    size_t ma = std::upper_bound(a, a + na, b[mb], comp) - a;
    par_do([&] { parallel_merge(a, ma, b, mb, out, comp); },
           [&] { parallel_merge(a + ma, na - ma, b + mb, nb - mb, out + ma + mb, comp); });
  }
}

// Sorts in[0,n). If out_in_tmp, the sorted result lands in tmp, else in `in`.
template <typename T, typename Comp>
void merge_sort_rec(T* in, T* tmp, size_t n, const Comp& comp, bool out_in_tmp) {
  if (n <= kSortBase) {
    std::stable_sort(in, in + n, comp);
    if (out_in_tmp) std::move(in, in + n, tmp);
    return;
  }
  size_t mid = n / 2;
  par_do([&] { merge_sort_rec(in, tmp, mid, comp, !out_in_tmp); },
         [&] { merge_sort_rec(in + mid, tmp + mid, n - mid, comp, !out_in_tmp); });
  if (out_in_tmp) {
    parallel_merge(in, mid, in + mid, n - mid, tmp, comp);
  } else {
    parallel_merge(tmp, mid, tmp + mid, n - mid, in, comp);
  }
}

}  // namespace internal

// Stable parallel sort of a[0, n) in place.
template <typename T, typename Comp>
void parallel_sort(T* a, size_t n, const Comp& comp) {
  if (n <= internal::kSortBase) {
    std::stable_sort(a, a + n, comp);
    return;
  }
  std::vector<T> tmp(n);
  internal::merge_sort_rec(a, tmp.data(), n, comp, /*out_in_tmp=*/false);
}

template <typename T, typename Comp>
void parallel_sort(std::vector<T>& v, const Comp& comp) {
  parallel_sort(v.data(), v.size(), comp);
}

}  // namespace pam
