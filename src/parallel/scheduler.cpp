#include "parallel/scheduler.h"

#include <chrono>

#include "util/env.h"
#include "util/random.h"

namespace pam {
namespace internal {

scheduler& scheduler::get() {
  // Leaked on purpose: workers may still be parked in their idle loop while
  // static destructors run, so the scheduler must outlive all of them.
  // pam-lint: allow(naked-new) — immortal process-wide singleton.
  static scheduler* instance = new scheduler();
  return *instance;
}

scheduler::scheduler() {
  long p = env_long("PAM_NUM_WORKERS", 0);
  if (p <= 0) p = static_cast<long>(std::thread::hardware_concurrency());
  if (p <= 0) p = 1;
  tl_worker_id() = 0;  // the constructing thread is worker 0
  spawn_workers(static_cast<int>(p));
}

void scheduler::spawn_workers(int p) {
  num_workers_ = p;
  deques_.clear();
  deques_.reserve(p);
  for (int i = 0; i < p; i++) deques_.push_back(std::make_unique<ws_deque>());
  shutdown_.store(false, std::memory_order_relaxed);
  threads_.reserve(p - 1);
  for (int i = 1; i < p; i++) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void scheduler::stop_workers() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void scheduler::set_num_workers(int p) {
  if (p < 1) p = 1;
  if (p == num_workers_) return;
  stop_workers();
  spawn_workers(p);
}

void scheduler::worker_loop(int id) {
  tl_worker_id() = id;
  uint64_t rng_state = hash64(0x9e1ull * (id + 1));
  int failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    work_item* w = try_steal(id, rng_state);
    if (w != nullptr) {
      w->execute(w);
      failures = 0;
    } else if (++failures >= 64) {
      if (failures >= 2048) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        failures = 2048;  // keep sleeping until work shows up
      } else {
        std::this_thread::yield();
      }
    }
  }
}

work_item* scheduler::try_steal(int self, uint64_t& rng_state) {
  int p = num_workers_;
  if (p <= 1) return nullptr;
  rng_state = hash64(rng_state);
  int victim = static_cast<int>(rng_state % static_cast<uint64_t>(p));
  if (victim == self) victim = (victim + 1) % p;
  work_item* w = deques_[victim]->steal();
  if (w != nullptr) sched_metrics().steals.inc();
  return w;
}

void scheduler::wait_until_done(std::atomic<bool>& flag, int self) {
  uint64_t rng_state = hash64(0xabcdULL + self);
  int failures = 0;
  while (!flag.load(std::memory_order_acquire)) {
    work_item* w = try_steal(self, rng_state);
    if (w != nullptr) {
      w->execute(w);
      failures = 0;
    } else if (++failures >= 128) {
      std::this_thread::yield();
      failures = 0;
    }
  }
}

}  // namespace internal
}  // namespace pam
