// Higher-level sequence operations built from the primitives:
//  * combine_sorted_runs - collapse runs of equal keys with a combine
//    function (the duplicate-removal step of build(), paper Figure 2);
//  * run_boundaries - start indices of equal-key runs (used by the
//    inverted-index group-by build).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "parallel/primitives.h"

namespace pam {

// Given a *sorted* sequence, collapses each maximal run of elements with
// equal keys into one element whose value is the left-to-right fold of the
// run's values under `comb`. Equality is derived from the strict order
// `less`. Stable: the surviving element keeps the first key of the run.
template <typename KV, typename Less, typename Comb>
std::vector<KV> combine_sorted_runs(const std::vector<KV>& a, const Less& less,
                                    const Comb& comb) {
  size_t n = a.size();
  if (n == 0) return {};
  std::vector<unsigned char> starts(n);
  parallel_for(0, n, [&](size_t i) {
    starts[i] = (i == 0 || less(a[i - 1].first, a[i].first)) ? 1 : 0;
  });
  std::vector<size_t> idx = pack_indices(starts.data(), n);
  size_t m = idx.size();
  std::vector<KV> out(m);
  parallel_for(0, m, [&](size_t j) {
    size_t lo = idx[j];
    size_t hi = (j + 1 < m) ? idx[j + 1] : n;
    KV acc = a[lo];
    for (size_t i = lo + 1; i < hi; i++) acc.second = comb(acc.second, a[i].second);
    out[j] = std::move(acc);
  }, 1);
  return out;
}

// Start indices of maximal runs under the equivalence !less(a,b) && !less(b,a)
// of key projections. `key_of(elem)` extracts the grouping key.
template <typename T, typename KeyOf, typename Less>
std::vector<size_t> run_boundaries(const std::vector<T>& a, const KeyOf& key_of,
                                   const Less& less) {
  size_t n = a.size();
  if (n == 0) return {};
  std::vector<unsigned char> starts(n);
  parallel_for(0, n, [&](size_t i) {
    starts[i] = (i == 0 || less(key_of(a[i - 1]), key_of(a[i]))) ? 1 : 0;
  });
  return pack_indices(starts.data(), n);
}

}  // namespace pam
