// In-block search over the sorted entry run of a sealed leaf block.
//
// Post-blocking (PR 3), the per-block binary search *is* the hot comparison
// loop of every point operation: a find on a B=32 tree does a handful of
// node descents and then one 32-entry search. A branchy binary search takes
// ~log2(B) dependent, poorly-predicted branches; on a sorted run the same
// answer is a *count* — lower_bound(k) == |{i : e[i].key < k}| — which is a
// branch-free reduction of independent comparisons that the compiler turns
// into cmov/setcc chains, and (for 64-bit keys under the default ordering)
// an explicit AVX2 compare+popcount when the build enables it.
//
// Dispatch: integral keys on runs up to kBranchFreeCutoff use the counting
// kernel when the runtime knob allows (PAM_SIMD_SEARCH, default on; the
// ablation benches toggle it to measure the branchy baseline); everything
// else — long runs, non-integral keys, custom comparators on the vector
// path — falls back to the classic binary search through Entry::comp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "util/env.h"

namespace pam {

// Runtime toggle for the branch-free/SIMD in-block search. Toggle only while
// quiescent (it is a process-wide knob read per search, like reuse_flag).
inline std::atomic<bool>& simd_search_flag() {
  static std::atomic<bool> f{env_long("PAM_SIMD_SEARCH", 1) != 0};
  return f;
}
inline bool simd_search_enabled() {
  return simd_search_flag().load(std::memory_order_relaxed);
}
inline void set_simd_search_enabled(bool on) { simd_search_flag().store(on); }

// Runs at most this long take the counting kernel: B comparisons with full
// ILP beat log2(B) dependent mispredictable branches up to roughly a cache
// line's worth of entries; past that the binary search's O(log B) wins back.
inline constexpr size_t kBranchFreeCutoff = 64;

namespace detail {

// Entry policies built on std::less declare `default_compare = true`
// (entries.h); only then may the vector kernel compare raw key bits instead
// of calling Entry::comp.
template <typename Entry, typename = void>
struct uses_default_less : std::false_type {};
template <typename Entry>
struct uses_default_less<Entry, std::void_t<decltype(Entry::default_compare)>>
    : std::bool_constant<Entry::default_compare> {};

#if defined(__AVX2__)
// |{i : key_i < k}| over n strided uint64 keys. AVX2 has only a *signed*
// 64-bit compare, so both sides are biased by 2^63 (sign flip), which maps
// unsigned order onto signed order. The count ignores element ORDER, so the
// wide loops never shuffle keys back into position: stride 8 (packed keys)
// compares straight loads, stride 16 (the ubiquitous pair<u64, u64> leaf
// slot) merges the low qwords of two entry loads with unpacklo — scalar
// set_epi64x gathers here cost more than the branchy search they replace.
inline size_t avx2_count_less_u64(const char* base, size_t stride, size_t n,
                                  uint64_t k) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
  const __m256i kv = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(k)), bias);
  auto count_lt = [&](__m256i keys) {
    keys = _mm256_xor_si256(keys, bias);
    // keys < k  ==  k > keys
    __m256i lt = _mm256_cmpgt_epi64(kv, keys);
    return static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(lt)))));
  };
  size_t cnt = 0;
  size_t i = 0;
  if (stride == sizeof(uint64_t)) {
    for (; i + 4 <= n; i += 4) {
      cnt += count_lt(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + i * sizeof(uint64_t))));
    }
  } else if (stride == 2 * sizeof(uint64_t)) {
    for (; i + 4 <= n; i += 4) {
      __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + i * stride));
      __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + (i + 2) * stride));
      // [k_i, k_{i+2}, k_{i+1}, k_{i+3}] — permuted, which a count allows.
      cnt += count_lt(_mm256_unpacklo_epi64(a, b));
    }
  }
  for (; i < n; i++) {
    uint64_t v;
    std::memcpy(&v, base + i * stride, sizeof(v));
    cnt += static_cast<size_t>(v < k);
  }
  return cnt;
}
#endif  // __AVX2__

}  // namespace detail

// First index i in the sorted run es[0, n) with !(es[i].first < k), i.e.
// std::lower_bound by Entry::comp. ET is any struct with the key in `first`
// (leaf-block slots and materialized entry vectors both qualify).
template <typename Entry, typename ET, typename Key>
size_t block_lower_idx(const ET* es, size_t n, const Key& k) {
  using K = typename Entry::key_t;
  if constexpr (std::is_integral_v<K>) {
    if (n <= kBranchFreeCutoff && simd_search_enabled()) {
#if defined(__AVX2__)
      if constexpr (std::is_same_v<K, uint64_t> &&
                    detail::uses_default_less<Entry>::value) {
        return detail::avx2_count_less_u64(
            reinterpret_cast<const char*>(&es[0].first), sizeof(ET), n,
            static_cast<uint64_t>(k));
      }
#endif
      // Sortedness makes lower_bound a count; the loop is branch-free.
      size_t cnt = 0;
      for (size_t i = 0; i < n; i++) {
        cnt += static_cast<size_t>(Entry::comp(es[i].first, k));
      }
      return cnt;
    }
  }
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (Entry::comp(es[mid].first, k)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First index i in es[0, n) with k < es[i].first (std::upper_bound).
template <typename Entry, typename ET, typename Key>
size_t block_upper_idx(const ET* es, size_t n, const Key& k) {
  using K = typename Entry::key_t;
  if constexpr (std::is_integral_v<K>) {
    if (n <= kBranchFreeCutoff && simd_search_enabled()) {
#if defined(__AVX2__)
      if constexpr (std::is_same_v<K, uint64_t> &&
                    detail::uses_default_less<Entry>::value) {
        // upper_bound(k) == count of keys < k+1 for integer keys, except at
        // the wrap point where every key <= k anyway.
        uint64_t kk = static_cast<uint64_t>(k);
        if (kk != ~0ull) {
          return detail::avx2_count_less_u64(
              reinterpret_cast<const char*>(&es[0].first), sizeof(ET), n,
              kk + 1);
        }
        return n;
      }
#endif
      size_t cnt = 0;
      for (size_t i = 0; i < n; i++) {
        cnt += static_cast<size_t>(!Entry::comp(k, es[i].first));
      }
      return cnt;
    }
  }
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (Entry::comp(k, es[mid].first)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace pam
