// Byte-exact map serialization: the kernel half of the durability layer.
//
// map_codec<Map> turns a map into a self-framing record stream and back:
//
//   [ u32 magic | u8 layout | u8 byte_order | u16 entry_abi |
//     u64 total_entries | u32 record_count | records... ]
//
//   record := u8 kind | u32 count | u32 payload_len | payload
//
// Three record kinds, chosen per tree region during an in-order walk:
//
//   kRun       per-field encoded entries (wire::field_codec) — inline nodes
//              between chunks, and any layout whose entries cannot travel
//              raw (std::string keys forced flat at B = 0);
//   kFlatRaw   a sealed flat leaf block as one memcpy of its entry array
//              (the near-memcpy checkpoint path; trivially copyable
//              entries only);
//   kCodedRaw  a sealed front-coded or delta-coded block as its raw encoded
//              region ({u32 bytes, u32 val_off} + the layout's byte
//              streams); the u8 layout stamp in the header (the numeric
//              key_layout value) keeps the two coded layouts from misreading
//              each other's streams.
//
// Deserialization rebuilds each record into a map piece (blocks through the
// stores' from_payload hooks, runs through from_sorted_unique) and folds
// the pieces left-to-right with join2, checking key ordering at every
// boundary. The augmented values of rebuilt blocks are recomputed, never
// read from the payload. Integrity of the bytes themselves is the caller's
// contract: the durability layer (src/store/) wraps these streams in
// CRC32C-checked pages, and deserialize throws pam::wire::error on any
// framing it cannot prove consistent (truncation, bad counts, out-of-order
// keys, undecodable blocks).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "pam/augmented_map.h"
#include "pam/node.h"

namespace pam {

// ------------------------------------------------------------------ wire --
// Plain-data framing helpers shared by the map codec and the store layer's
// WAL/manifest formats (reached through pam/pam.h). Multi-byte fields
// travel in the writing host's NATIVE byte order (put_pod/reader::pod are
// memcpys, and CRCs are seeded over in-memory values), so on-disk files
// are not portable across hosts of different endianness. The map codec
// stamps kHostByteOrder in its header so a cross-endian load fails loudly
// there; manifest and page CRCs fail closed before anything else is
// interpreted.

namespace wire {

// 1 = little-endian, 2 = big-endian: the byte-order stamp written into
// every map_codec stream header and checked on deserialize.
inline constexpr uint8_t kHostByteOrder =
#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) && \
    (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
    2;
#else
    1;
#endif

class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline void put_bytes(std::vector<char>& out, const void* p, size_t n) {
  const char* c = static_cast<const char*>(p);
  out.insert(out.end(), c, c + n);
}

template <typename T>
void put_pod(std::vector<char>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &v, sizeof(T));
}

inline void put_u8(std::vector<char>& out, uint8_t v) { put_pod(out, v); }
inline void put_u16(std::vector<char>& out, uint16_t v) { put_pod(out, v); }
inline void put_u32(std::vector<char>& out, uint32_t v) { put_pod(out, v); }
inline void put_u64(std::vector<char>& out, uint64_t v) { put_pod(out, v); }

// Bounds-checked sequential reader over a byte range; every primitive
// throws wire::error instead of reading past `end`.
struct reader {
  const char* p;
  const char* end;

  reader(const char* data, size_t n) : p(data), end(data + n) {}

  size_t remaining() const { return static_cast<size_t>(end - p); }

  void require(size_t n) const {
    if (remaining() < n) throw error("pam::wire: truncated input");
  }

  const char* skip(size_t n) {
    require(n);
    const char* at = p;
    p += n;
    return at;
  }

  void read_bytes(void* dst, size_t n) { std::memcpy(dst, skip(n), n); }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read_bytes(&v, sizeof(T));
    return v;
  }

  uint8_t u8() { return pod<uint8_t>(); }
  uint16_t u16() { return pod<uint16_t>(); }
  uint32_t u32() { return pod<uint32_t>(); }
  uint64_t u64() { return pod<uint64_t>(); }
};

// Per-field value codec: trivially copyable types travel raw; std::string
// as u32 length + bytes; pairs member-wise. This is the encoding of kRun
// records and of the store layer's WAL batch payloads.
template <typename T, typename = void>
struct field_codec {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire::field_codec: provide a specialization for "
                "non-trivially-copyable fields");
  static void write(const T& v, std::vector<char>& out) { put_pod(out, v); }
  static T read(reader& r) { return r.template pod<T>(); }
};

template <>
struct field_codec<std::string> {
  static void write(const std::string& s, std::vector<char>& out) {
    put_u32(out, static_cast<uint32_t>(s.size()));
    put_bytes(out, s.data(), s.size());
  }
  static std::string read(reader& r) {
    uint32_t n = r.u32();
    const char* at = r.skip(n);
    return std::string(at, n);
  }
};

template <typename A, typename B>
struct field_codec<std::pair<A, B>> {
  static void write(const std::pair<A, B>& v, std::vector<char>& out) {
    field_codec<A>::write(v.first, out);
    field_codec<B>::write(v.second, out);
  }
  static std::pair<A, B> read(reader& r) {
    // Braced init pins left-to-right evaluation of the two reads.
    return {field_codec<A>::read(r), field_codec<B>::read(r)};
  }
};

}  // namespace wire

// ------------------------------------------------------------- map codec --

template <typename Map>
struct map_codec {
  using ops = typename Map::ops;
  using node = typename Map::node;
  using K = typename Map::K;
  using V = typename Map::V;
  using entry_t = typename Map::entry_t;
  using lstore = typename ops::lstore;
  using lblock = typename ops::lblock;

  static constexpr uint32_t kMagic = 0x314D4150;  // "PAM1"
  static constexpr uint8_t kRun = 1;
  static constexpr uint8_t kFlatRaw = 2;
  static constexpr uint8_t kCodedRaw = 3;
  // Inline-node runs flush at this many entries so one record never grows
  // unbounded (the store layer re-chunks streams into fixed-size pages).
  static constexpr size_t kRunFlush = 4096;

  static constexpr bool flat = ops::flat_layout;
  // Can this layout's sealed blocks travel as raw payloads?
  static constexpr bool raw_blocks = [] {
    if constexpr (flat) {
      return lstore::raw_payload;
    } else {
      return true;  // coded blocks are raw by construction
    }
  }();
  // The ABI stamp pins sizeof(entry_t) wherever kFlatRaw records can occur,
  // so a stream written by one build cannot be misread by another.
  static constexpr uint16_t entry_abi =
      flat && raw_blocks ? static_cast<uint16_t>(sizeof(entry_t)) : 0;

  // ------------------------------------------------------------ writing --

  static void serialize(const Map& m, std::vector<char>& out) {
    wire::put_u32(out, kMagic);
    wire::put_u8(out, static_cast<uint8_t>(ops::layout));
    wire::put_u8(out, wire::kHostByteOrder);
    wire::put_u16(out, entry_abi);
    wire::put_u64(out, static_cast<uint64_t>(m.size()));
    size_t count_at = out.size();
    wire::put_u32(out, 0);  // record_count, patched below

    state s{&out, {}, 0};
    walk(m.root_, s);
    flush_run(s);

    uint32_t records = s.records;
    std::memcpy(out.data() + count_at, &records, sizeof(records));
  }

  // ------------------------------------------------------------ reading --

  static Map deserialize(const char* data, size_t n) {
    wire::reader r(data, n);
    if (r.u32() != kMagic) throw wire::error("map_codec: bad magic");
    uint8_t layout = r.u8();
    if (layout != static_cast<uint8_t>(ops::layout)) {
      throw wire::error("map_codec: layout mismatch");
    }
    if (r.u8() != wire::kHostByteOrder) {
      throw wire::error(
          "map_codec: byte-order mismatch — stream written on a host of "
          "different endianness");
    }
    if (r.u16() != entry_abi) {
      throw wire::error("map_codec: entry ABI mismatch");
    }
    uint64_t total = r.u64();
    uint32_t records = r.u32();

    node* acc = nullptr;
    bool have_last = false;
    K last_key{};
    try {
      for (uint32_t i = 0; i < records; i++) {
        uint8_t kind = r.u8();
        uint32_t count = r.u32();
        uint32_t len = r.u32();
        const char* payload = r.skip(len);
        K first{}, last{};
        node* piece = read_record(kind, count, payload, len, first, last);
        if (have_last && !ops::less(last_key, first)) {
          ops::dec(piece);
          throw wire::error("map_codec: records out of key order");
        }
        last_key = std::move(last);
        have_last = true;
        acc = ops::join2(acc, piece);
      }
    } catch (...) {
      ops::dec(acc);
      throw;
    }
    if (ops::size(acc) != total) {
      ops::dec(acc);
      throw wire::error("map_codec: entry count mismatch");
    }
    return Map(acc);
  }

 private:
  struct state {
    std::vector<char>* out;
    std::vector<entry_t> run;
    uint32_t records;
  };

  static void put_record_header(state& s, uint8_t kind, uint32_t count,
                                uint32_t len) {
    wire::put_u8(*s.out, kind);
    wire::put_u32(*s.out, count);
    wire::put_u32(*s.out, len);
    s.records++;
  }

  static void flush_run(state& s) {
    if (s.run.empty()) return;
    std::vector<char> payload;
    for (const entry_t& e : s.run) {
      wire::field_codec<entry_t>::write(e, payload);
    }
    put_record_header(s, kRun, static_cast<uint32_t>(s.run.size()),
                      static_cast<uint32_t>(payload.size()));
    wire::put_bytes(*s.out, payload.data(), payload.size());
    s.run.clear();
  }

  static void emit_chunk(const lblock* b, state& s) {
    if constexpr (flat) {
      flush_run(s);
      size_t len = lstore::payload_bytes(b);
      put_record_header(s, kFlatRaw, b->count, static_cast<uint32_t>(len));
      size_t at = s.out->size();
      s.out->resize(at + len);
      lstore::write_payload(b, s.out->data() + at);
    } else {
      flush_run(s);
      size_t len = lstore::payload_bytes(b);
      put_record_header(s, kCodedRaw, b->count,
                        static_cast<uint32_t>(len + 2 * sizeof(uint32_t)));
      wire::put_u32(*s.out, b->bytes);
      wire::put_u32(*s.out, b->val_off);
      size_t at = s.out->size();
      s.out->resize(at + len);
      lstore::write_payload(b, s.out->data() + at);
    }
  }

  static void walk(const node* t, state& s) {
    if (t == nullptr) return;
    walk(t->left, s);
    if (ops::is_chunk(t)) {
      if constexpr (raw_blocks) {
        emit_chunk(t->blk, s);
      } else {
        // std::string keys forced flat: decode and ride the encoded run.
        auto bv = ops::read_block(t->blk);
        for (size_t i = 0; i < bv.size(); i++) {
          s.run.push_back(bv.data()[i]);
          if (s.run.size() >= kRunFlush) flush_run(s);
        }
      }
    } else {
      s.run.emplace_back(t->key, t->value);
      if (s.run.size() >= kRunFlush) flush_run(s);
    }
    walk(t->right, s);
  }

  // Rebuild one record into an owned map piece; reports the piece's first
  // and last key for the cross-record ordering check.
  static node* read_record(uint8_t kind, uint32_t count, const char* payload,
                           uint32_t len, K& first, K& last) {
    if (count == 0) throw wire::error("map_codec: empty record");
    switch (kind) {
      case kRun: {
        wire::reader pr(payload, len);
        std::vector<entry_t> es;
        es.reserve(count);
        for (uint32_t i = 0; i < count; i++) {
          entry_t e = wire::field_codec<entry_t>::read(pr);
          if (i != 0 && !ops::less(es.back().first, e.first)) {
            throw wire::error("map_codec: run entries out of key order");
          }
          es.push_back(std::move(e));
        }
        if (pr.remaining() != 0) {
          throw wire::error("map_codec: run payload length mismatch");
        }
        first = es.front().first;
        last = es.back().first;
        return ops::from_sorted_unique(es.data(), es.size());
      }
      case kFlatRaw: {
        if constexpr (flat && raw_blocks) {
          if (count > kMaxLeafBlock ||
              size_t{len} != size_t{count} * sizeof(entry_t)) {
            throw wire::error("map_codec: bad flat block frame");
          }
          lblock* b = lstore::from_payload(payload, count);
          const entry_t* es = b->entries();
          for (uint32_t i = 1; i < count; i++) {
            if (!ops::less(es[i - 1].first, es[i].first)) {
              lstore::release(b);
              throw wire::error("map_codec: block entries out of key order");
            }
          }
          first = es[0].first;
          last = es[count - 1].first;
          return ops::make_chunk(b);
        } else {
          throw wire::error("map_codec: flat block in non-flat stream");
        }
      }
      case kCodedRaw: {
        if constexpr (!flat) {
          if (count > kMaxLeafBlock || len < 2 * sizeof(uint32_t)) {
            throw wire::error("map_codec: bad coded block frame");
          }
          wire::reader pr(payload, len);
          uint32_t bytes = pr.u32();
          uint32_t val_off = pr.u32();
          if (pr.remaining() !=
              size_t{bytes} - lblock::dir_offset()) {
            throw wire::error("map_codec: coded block length mismatch");
          }
          lblock* b = lstore::from_payload(pr.p, count, bytes, val_off);
          if (b == nullptr) {
            throw wire::error("map_codec: inconsistent coded block");
          }
          // Decoded keys are checked for order; the decode itself is
          // bounds-safe after from_payload's directory validation.
          std::vector<entry_t> es;
          es.reserve(count);
          lstore::decode_all(b, es);
          for (uint32_t i = 1; i < count; i++) {
            if (!ops::less(es[i - 1].first, es[i].first)) {
              lstore::release(b);
              throw wire::error("map_codec: block entries out of key order");
            }
          }
          first = es.front().first;
          last = es.back().first;
          return ops::make_chunk(b);
        } else {
          throw wire::error("map_codec: coded block in flat stream");
        }
      }
      default:
        throw wire::error("map_codec: unknown record kind");
    }
  }
};

}  // namespace pam
