// Operations specific to augmented maps (below the dashed line of the
// paper's Figure 1): constant-time whole-map sums, logarithmic prefix and
// range sums, pruned filtering, and projected range sums. These are the
// functions whose efficiency the augmentation exists for (paper Table 2).
//
// Blocked leaves: a chunk node contributes its block's cached augmented
// value when the whole block is inside the query; only the (at most two)
// boundary blocks are partially folded entry-by-entry, so the O(log n)
// bounds become O(log n + B) with a tiny constant.
#pragma once

#include <cstddef>

#include "pam/map_ops.h"

namespace pam {

template <typename Entry, typename Balance>
struct aug_ops : map_ops<Entry, Balance> {
  using MO = map_ops<Entry, Balance>;
  using NM = typename MO::NM;
  using node = typename MO::node;
  using K = typename MO::K;
  using A = typename MO::A;
  using traits = typename MO::traits;
  using entry_t = typename MO::entry_t;

  using MO::aug_of;
  using MO::dec;
  using MO::expose_own;
  using MO::is_chunk;
  using MO::is_chunk_leaf;
  using MO::join;
  using MO::join2;
  using MO::less;
  using MO::lower_idx;
  using MO::upper_idx;

  static_assert(true, "instantiating any member requires an augmented Entry");

  // AUGVAL(t) = A(t): the augmented value of the whole map, O(1) because it
  // is cached at the root.
  static A aug_val(const node* t) { return aug_of(t); }

  // Fold g over es[a, b) (the partial-block boundary case): vectorized over
  // the value lanes for hinted integer monoids (pam/block_fold.h), a plain
  // base/combine loop otherwise.
  static A fold_entries(const entry_t* es, size_t a, size_t b) {
    return fold_entries_fast<traits, Entry>(es, a, b);
  }

  // AUGLEFT(t, k): augmented value of all entries with key <= k
  // (paper Figure 2; its code includes the boundary key). O(log n).
  static A aug_left(const node* t, const K& k) {
    if (t == nullptr) return traits::identity();
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(k, es[0].first)) return aug_left(t->left, k);
      size_t pos = upper_idx(es, c, k);  // entries [0, pos) are <= k
      A own = pos == c ? t->blk->aug : fold_entries(es, 0, pos);
      A acc = traits::combine(aug_of(t->left), own);
      if (pos == c) acc = traits::combine(acc, aug_left(t->right, k));
      return acc;
    }
    if (less(k, t->key)) return aug_left(t->left, k);
    return traits::combine(
        aug_of(t->left),
        traits::combine(traits::base(t->key, t->value), aug_left(t->right, k)));
  }

  // Augmented value of all entries with key >= k. O(log n).
  static A aug_right(const node* t, const K& k) {
    if (t == nullptr) return traits::identity();
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(es[c - 1].first, k)) return aug_right(t->right, k);
      size_t pos = lower_idx(es, c, k);  // entries [pos, c) are >= k
      A own = pos == 0 ? t->blk->aug : fold_entries(es, pos, c);
      A acc = traits::combine(own, aug_of(t->right));
      if (pos == 0) acc = traits::combine(aug_right(t->left, k), acc);
      return acc;
    }
    if (less(t->key, k)) return aug_right(t->right, k);
    return traits::combine(
        aug_right(t->left, k),
        traits::combine(traits::base(t->key, t->value), aug_of(t->right)));
  }

  // AUGRANGE(t, lo, hi): augmented value of entries with lo <= key <= hi,
  // equivalent to aug_val(range(t, lo, hi)) but O(log n) and allocation-free.
  static A aug_range(const node* t, const K& lo, const K& hi) {
    if (t == nullptr) return traits::identity();
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(es[c - 1].first, lo)) return aug_range(t->right, lo, hi);
      if (less(hi, es[0].first)) return aug_range(t->left, lo, hi);
      size_t i = lower_idx(es, c, lo);
      size_t j = upper_idx(es, c, hi);
      A mid = (i == 0 && j == c) ? t->blk->aug : fold_entries(es, i, j);
      A acc = i == 0 ? traits::combine(aug_right(t->left, lo), mid) : mid;
      if (j == c) acc = traits::combine(acc, aug_left(t->right, hi));
      return acc;
    }
    if (less(t->key, lo)) return aug_range(t->right, lo, hi);
    if (less(hi, t->key)) return aug_range(t->left, lo, hi);
    return traits::combine(
        aug_right(t->left, lo),
        traits::combine(traits::base(t->key, t->value), aug_left(t->right, hi)));
  }

  // AUGFILTER(t, h): equivalent to filter with h(g(k, v)) as the predicate,
  // valid when h(a) || h(b) == h(f(a, b)); whole subtrees whose augmented
  // value fails h are pruned without being visited. Consumes t.
  // Work O(k log(n/k + 1)) for k survivors, span O(log^2 n).
  template <typename Pred>
  static node* aug_filter(node* t, const Pred& h) {
    if (t == nullptr) return nullptr;
    if (!h(t->aug)) {
      dec(t);
      return nullptr;
    }
    if (is_chunk_leaf(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      std::vector<entry_t> keep;
      for (size_t i = 0; i < bv.size(); i++) {
        if (h(traits::base(es[i].first, es[i].second))) keep.push_back(es[i]);
      }
      node* r = MO::build_sorted_seq(keep.data(), keep.size());
      dec(t);
      return r;
    }
    size_t n = t->size;
    node *l, *m, *r;
    expose_own(t, l, m, r);
    node* l2 = nullptr;
    node* r2 = nullptr;
    par_do_if(
        n >= par_cutoff(), [&] { l2 = aug_filter(l, h); },
        [&] { r2 = aug_filter(r, h); });
    if (h(traits::base(m->key, m->value))) return join(l2, m, r2);
    dec(m);
    return join2(l2, r2);
  }

  // AUGPROJECT(g2, f2, t, lo, hi) = g2(aug_range(t, lo, hi)), computed as the
  // f2-sum of g2 over the O(log n) canonical subtrees covering [lo, hi].
  // Requires f2(g2(a), g2(b)) == g2(f(a, b)) (paper Section 3); the point is
  // that g2 may project a large A (e.g. an inner map) down to a small B
  // without materializing f over inner structures.
  template <typename G2, typename F2, typename B>
  static B aug_project(const node* t, const G2& g2, const F2& f2, const B& id,
                       const K& lo, const K& hi) {
    if (t == nullptr) return id;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(es[c - 1].first, lo)) return aug_project(t->right, g2, f2, id, lo, hi);
      if (less(hi, es[0].first)) return aug_project(t->left, g2, f2, id, lo, hi);
      size_t i = lower_idx(es, c, lo);
      size_t j = upper_idx(es, c, hi);
      B left = i == 0 ? project_right(t->left, g2, f2, id, lo) : id;
      B mid = fold_projected(es, i, j, g2, f2, id);
      B right = j == c ? project_left(t->right, g2, f2, id, hi) : id;
      return f2(f2(left, mid), right);
    }
    if (less(t->key, lo)) return aug_project(t->right, g2, f2, id, lo, hi);
    if (less(hi, t->key)) return aug_project(t->left, g2, f2, id, lo, hi);
    B left = project_right(t->left, g2, f2, id, lo);
    B mid = g2(traits::base(t->key, t->value));
    B right = project_left(t->right, g2, f2, id, hi);
    return f2(f2(left, mid), right);
  }

 private:
  template <typename G2, typename F2, typename B>
  static B fold_projected(const entry_t* es, size_t a, size_t b, const G2& g2,
                          const F2& f2, const B& id) {
    B acc = id;
    for (size_t i = a; i < b; i++) {
      acc = f2(acc, g2(traits::base(es[i].first, es[i].second)));
    }
    return acc;
  }

  // g2-projected sum over keys >= k.
  template <typename G2, typename F2, typename B>
  static B project_right(const node* t, const G2& g2, const F2& f2, const B& id,
                         const K& k) {
    if (t == nullptr) return id;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(es[c - 1].first, k)) return project_right(t->right, g2, f2, id, k);
      size_t pos = lower_idx(es, c, k);
      B left = pos == 0 ? project_right(t->left, g2, f2, id, k) : id;
      B mid = fold_projected(es, pos, c, g2, f2, id);
      B right = t->right == nullptr ? id : g2(t->right->aug);
      return f2(f2(left, mid), right);
    }
    if (less(t->key, k)) return project_right(t->right, g2, f2, id, k);
    B left = project_right(t->left, g2, f2, id, k);
    B mid = g2(traits::base(t->key, t->value));
    B right = t->right == nullptr ? id : g2(t->right->aug);
    return f2(f2(left, mid), right);
  }

  // g2-projected sum over keys <= k.
  template <typename G2, typename F2, typename B>
  static B project_left(const node* t, const G2& g2, const F2& f2, const B& id,
                        const K& k) {
    if (t == nullptr) return id;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(k, es[0].first)) return project_left(t->left, g2, f2, id, k);
      size_t pos = upper_idx(es, c, k);  // entries [0, pos) are <= k
      B left = t->left == nullptr ? id : g2(t->left->aug);
      B mid = fold_projected(es, 0, pos, g2, f2, id);
      B right = pos == c ? project_left(t->right, g2, f2, id, k) : id;
      return f2(f2(left, mid), right);
    }
    if (less(k, t->key)) return project_left(t->left, g2, f2, id, k);
    B left = t->left == nullptr ? id : g2(t->left->aug);
    B mid = g2(traits::base(t->key, t->value));
    B right = project_left(t->right, g2, f2, id, k);
    return f2(f2(left, mid), right);
  }
};

}  // namespace pam
