// Operations specific to augmented maps (below the dashed line of the
// paper's Figure 1): constant-time whole-map sums, logarithmic prefix and
// range sums, pruned filtering, and projected range sums. These are the
// functions whose efficiency the augmentation exists for (paper Table 2).
#pragma once

#include <cstddef>

#include "pam/map_ops.h"

namespace pam {

template <typename Entry, typename Balance>
struct aug_ops : map_ops<Entry, Balance> {
  using MO = map_ops<Entry, Balance>;
  using node = typename MO::node;
  using K = typename MO::K;
  using A = typename MO::A;
  using traits = typename MO::traits;

  using MO::aug_of;
  using MO::dec;
  using MO::expose_own;
  using MO::join;
  using MO::join2;
  using MO::less;

  static_assert(true, "instantiating any member requires an augmented Entry");

  // AUGVAL(t) = A(t): the augmented value of the whole map, O(1) because it
  // is cached at the root.
  static A aug_val(const node* t) { return aug_of(t); }

  // AUGLEFT(t, k): augmented value of all entries with key <= k
  // (paper Figure 2; its code includes the boundary key). O(log n).
  static A aug_left(const node* t, const K& k) {
    if (t == nullptr) return traits::identity();
    if (less(k, t->key)) return aug_left(t->left, k);
    return traits::combine(
        aug_of(t->left),
        traits::combine(traits::base(t->key, t->value), aug_left(t->right, k)));
  }

  // Augmented value of all entries with key >= k. O(log n).
  static A aug_right(const node* t, const K& k) {
    if (t == nullptr) return traits::identity();
    if (less(t->key, k)) return aug_right(t->right, k);
    return traits::combine(
        aug_right(t->left, k),
        traits::combine(traits::base(t->key, t->value), aug_of(t->right)));
  }

  // AUGRANGE(t, lo, hi): augmented value of entries with lo <= key <= hi,
  // equivalent to aug_val(range(t, lo, hi)) but O(log n) and allocation-free.
  static A aug_range(const node* t, const K& lo, const K& hi) {
    if (t == nullptr) return traits::identity();
    if (less(t->key, lo)) return aug_range(t->right, lo, hi);
    if (less(hi, t->key)) return aug_range(t->left, lo, hi);
    return traits::combine(
        aug_right(t->left, lo),
        traits::combine(traits::base(t->key, t->value), aug_left(t->right, hi)));
  }

  // AUGFILTER(t, h): equivalent to filter with h(g(k, v)) as the predicate,
  // valid when h(a) || h(b) == h(f(a, b)); whole subtrees whose augmented
  // value fails h are pruned without being visited. Consumes t.
  // Work O(k log(n/k + 1)) for k survivors, span O(log^2 n).
  template <typename Pred>
  static node* aug_filter(node* t, const Pred& h) {
    if (t == nullptr) return nullptr;
    if (!h(t->aug)) {
      dec(t);
      return nullptr;
    }
    size_t n = t->size;
    node *l, *m, *r;
    expose_own(t, l, m, r);
    node* l2 = nullptr;
    node* r2 = nullptr;
    par_do_if(
        n >= par_cutoff(), [&] { l2 = aug_filter(l, h); },
        [&] { r2 = aug_filter(r, h); });
    if (h(traits::base(m->key, m->value))) return join(l2, m, r2);
    dec(m);
    return join2(l2, r2);
  }

  // AUGPROJECT(g2, f2, t, lo, hi) = g2(aug_range(t, lo, hi)), computed as the
  // f2-sum of g2 over the O(log n) canonical subtrees covering [lo, hi].
  // Requires f2(g2(a), g2(b)) == g2(f(a, b)) (paper Section 3); the point is
  // that g2 may project a large A (e.g. an inner map) down to a small B
  // without materializing f over inner structures.
  template <typename G2, typename F2, typename B>
  static B aug_project(const node* t, const G2& g2, const F2& f2, const B& id,
                       const K& lo, const K& hi) {
    if (t == nullptr) return id;
    if (less(t->key, lo)) return aug_project(t->right, g2, f2, id, lo, hi);
    if (less(hi, t->key)) return aug_project(t->left, g2, f2, id, lo, hi);
    B left = project_right(t->left, g2, f2, id, lo);
    B mid = g2(traits::base(t->key, t->value));
    B right = project_left(t->right, g2, f2, id, hi);
    return f2(f2(left, mid), right);
  }

 private:
  // g2-projected sum over keys >= k.
  template <typename G2, typename F2, typename B>
  static B project_right(const node* t, const G2& g2, const F2& f2, const B& id,
                         const K& k) {
    if (t == nullptr) return id;
    if (less(t->key, k)) return project_right(t->right, g2, f2, id, k);
    B left = project_right(t->left, g2, f2, id, k);
    B mid = g2(traits::base(t->key, t->value));
    B right = t->right == nullptr ? id : g2(t->right->aug);
    return f2(f2(left, mid), right);
  }

  // g2-projected sum over keys <= k.
  template <typename G2, typename F2, typename B>
  static B project_left(const node* t, const G2& g2, const F2& f2, const B& id,
                        const K& k) {
    if (t == nullptr) return id;
    if (less(k, t->key)) return project_left(t->left, g2, f2, id, k);
    B left = t->left == nullptr ? id : g2(t->left->aug);
    B mid = g2(traits::base(t->key, t->value));
    B right = project_left(t->right, g2, f2, id, k);
    return f2(f2(left, mid), right);
  }
};

}  // namespace pam
