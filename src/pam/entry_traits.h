// Entry-policy introspection shared by every layer below the public maps:
// the normalized view of an Entry (entry_traits), the key-layout trait that
// selects a leaf-block encoding per policy, and the associativity-only block
// fold. This header sits below both node.h and the block encoders
// (coded_block.h), which is why it exists as its own file.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>

namespace pam {

// Empty placeholder for "no value" (sets) and "no augmentation" (plain maps).
struct unit {
  friend constexpr bool operator==(unit, unit) { return true; }
};

// Normalized view of an Entry policy. An Entry always provides:
//   key_t, val_t, static bool comp(key_t, key_t)
// and, for augmented maps, additionally (paper Section 3):
//   aug_t                                  the augmented value type A
//   static aug_t identity()                I, the identity of f
//   static aug_t base(key_t, val_t)        g, entry -> augmented value
//   static aug_t combine(aug_t, aug_t)     f, associative combine
template <typename Entry, typename = void>
struct entry_traits {
  static constexpr bool has_aug = false;
  using aug_t = unit;
  static unit identity() { return {}; }
  template <typename K, typename V>
  static unit base(const K&, const V&) {
    return {};
  }
  static unit combine(unit, unit) { return {}; }
};

template <typename Entry>
struct entry_traits<Entry, std::void_t<typename Entry::aug_t>> {
  static constexpr bool has_aug = true;
  using aug_t = typename Entry::aug_t;
  static aug_t identity() { return Entry::identity(); }
  template <typename K, typename V>
  static aug_t base(const K& k, const V& v) {
    return Entry::base(k, v);
  }
  static aug_t combine(const aug_t& a, const aug_t& b) { return Entry::combine(a, b); }
};

// ------------------------------------------------------------ key layout --

// How an Entry's keys are stored inside sealed leaf blocks:
//   flat         a sorted array of entry_t — fixed-width keys, zero-copy
//                reads, SIMD/branch-free in-block search;
//   front_coded  variable-length string keys, each stored as a shared-prefix
//                length plus suffix bytes behind a small offset directory
//                (PaC-tree-style difference encoding);
//   delta        integral keys stored as a full base key plus zigzag-varint
//                successor differences, with integral values varint-packed in
//                a trailing stream (PaC-tree difference encoding for the
//                fixed-width case; see pam/delta_block.h).
enum class key_layout { flat, front_coded, delta };

// Entry policies opt in by declaring `static constexpr key_layout layout`;
// everything written before this trait existed defaults to flat and compiles
// unchanged.
template <typename Entry, typename = void>
struct entry_layout {
  static constexpr key_layout value = key_layout::flat;
};

template <typename Entry>
struct entry_layout<Entry, std::void_t<decltype(Entry::layout)>> {
  static constexpr key_layout value = Entry::layout;
};

template <typename Entry>
inline constexpr key_layout entry_layout_v = entry_layout<Entry>::value;

// ------------------------------------------------------------- fold hints --

// Optional self-description of an Entry's combine: policies whose `combine`
// is exactly the named integer monoid may declare
//   static constexpr aug_fold_kind fold_hint = aug_fold_kind::sum;
// which licenses the vectorized block fold (pam/block_fold.h) to replace the
// grouped fold_entries_assoc with a data-parallel reduction. Only *exactly
// associative* monoids qualify — float sums change value under regrouping,
// so they must never declare a hint. Everything without the declaration
// keeps the scalar grouped fold.
enum class aug_fold_kind { none, sum, max, min };

template <typename Entry, typename = void>
struct entry_fold_hint {
  static constexpr aug_fold_kind value = aug_fold_kind::none;
};

template <typename Entry>
struct entry_fold_hint<Entry, std::void_t<decltype(Entry::fold_hint)>> {
  static constexpr aug_fold_kind value = Entry::fold_hint;
};

template <typename Entry>
inline constexpr aug_fold_kind entry_fold_hint_v = entry_fold_hint<Entry>::value;

// ------------------------------------------------------------ block fold --

// Monoid fold over es[a, b) in left-to-right order, combining adjacent pairs
// and then pairs-of-pairs per group of four. The grouping relies only on
// associativity of `combine` (the Figure 3 contract — no commutativity), but
// breaks the single serial dependency chain of a naive loop into independent
// sub-folds, which lets simple numeric monoids (sum/min/max) vectorize and
// gives the rest instruction-level parallelism.
template <typename Traits, typename ET>
typename Traits::aug_t fold_entries_assoc(const ET* es, size_t a, size_t b) {
  using A = typename Traits::aug_t;
  if (a >= b) return Traits::identity();
  const size_t n = b - a;
  const ET* e = es + a;
  size_t i = 0;
  A acc = Traits::identity();
  for (; i + 4 <= n; i += 4) {
    A g01 = Traits::combine(Traits::base(e[i].first, e[i].second),
                            Traits::base(e[i + 1].first, e[i + 1].second));
    A g23 = Traits::combine(Traits::base(e[i + 2].first, e[i + 2].second),
                            Traits::base(e[i + 3].first, e[i + 3].second));
    acc = Traits::combine(acc, Traits::combine(std::move(g01), std::move(g23)));
  }
  for (; i < n; i++) {
    acc = Traits::combine(acc, Traits::base(e[i].first, e[i].second));
  }
  return acc;
}

}  // namespace pam
