// Parallel structural diff between two versions of a map.
//
// Path-copying persistence means two versions of one map share every
// unchanged subtree by pointer (and, with blocked leaves, share sealed leaf
// blocks across re-packs). The diff walks both roots with the same
// split/expose recursion as union, but prunes the moment the two sides
// share storage (`tree_ops::shares_storage`, O(1)), so the work is
// proportional to the *difference* between the versions — O(d log(n/d + 1))
// for d changed entries — not to the map size. This is the observation
// PaC-trees' versioned collections are built on (Dhulipala & Blelloch,
// PLDI 2022) and the substrate for version stores, change feeds, and
// incrementally maintained views (src/server/).
//
// Two products, both parallelized with the fork-join cutoff family:
//
//   * diff(a, b)       -> two trees: `before` holds every entry of a that
//                         is absent from b or overwritten in b (with a's
//                         values); `after` holds every entry of b that is
//                         absent from a or differs from a (with b's
//                         values). A key in neither is unchanged; a key in
//                         both was updated. The trees share subtrees with
//                         their inputs (one-sided regions transfer whole).
//   * diff_fold(a,b,…) -> the same partition folded through an arbitrary
//                         aug-style monoid (g2 per entry, associative f2)
//                         without materializing any tree — the right shape
//                         for group-like aggregates (new = old - fold(before)
//                         + fold(after)).
//
// Value equality: an entry present under the same key in both versions is
// a change only if its values differ. `val_equal` uses, in order: the
// Entry's own `static bool val_equal(V, V)` (e.g. O(1) root identity for
// map-valued entries), then `operator==`, else it conservatively reports
// every same-key pair as updated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "pam/aug_ops.h"
#include "parallel/parallel.h"

namespace pam {

template <typename Entry, typename Balance>
struct diff_ops : aug_ops<Entry, Balance> {
  using AO = aug_ops<Entry, Balance>;
  using MO = typename AO::MO;
  using TO = typename MO::TO;
  using NM = typename TO::NM;
  using node = typename AO::node;
  using K = typename AO::K;
  using V = typename MO::V;
  using entry_t = typename AO::entry_t;

  using MO::dec;
  using MO::expose_own;
  using MO::inc;
  using MO::is_chunk_leaf;
  using MO::join;
  using MO::join2;
  using MO::less;
  using MO::size;
  using MO::split;

  static bool val_equal(const V& x, const V& y) {
    if constexpr (requires {
                    { Entry::val_equal(x, y) } -> std::convertible_to<bool>;
                  }) {
      return Entry::val_equal(x, y);
    } else if constexpr (requires {
                           { x == y } -> std::convertible_to<bool>;
                         }) {
      return x == y;
    } else {
      return false;
    }
  }

  struct diff_trees {
    node* before = nullptr;  // entries of a removed or overwritten in b
    node* after = nullptr;   // entries of b added or changed relative to a
  };

  // Structural diff of two owned trees (consumes both references). The
  // recursion mirrors union_: expose b, split a at b's root key, recurse on
  // the halves in parallel — except that shared storage prunes in O(1) and
  // a one-sided region transfers whole (one refcount move, no rebuild).
  static diff_trees diff(node* a, node* b) {
    if (TO::shares_storage(a, b)) {
      dec(a);
      dec(b);
      return {};
    }
    if (a == nullptr) return {nullptr, b};
    if (b == nullptr) return {a, nullptr};
    if (is_chunk_leaf(a) && is_chunk_leaf(b)) return diff_blocks(a, b);
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    diff_trees lo, hi;
    par_do_if(
        total >= par_cutoff(), [&] { lo = diff(sp.left, l2); },
        [&] { hi = diff(sp.right, r2); });
    node* bmid = nullptr;
    node* amid = nullptr;
    if (sp.mid != nullptr && val_equal(sp.mid->value, m2->value)) {
      dec(sp.mid);
      dec(m2);
    } else {
      bmid = sp.mid;  // may be null: key only in b
      amid = m2;
    }
    diff_trees out;
    out.before = bmid != nullptr ? join(lo.before, bmid, hi.before)
                                 : join2(lo.before, hi.before);
    out.after = amid != nullptr ? join(lo.after, amid, hi.after)
                                : join2(lo.after, hi.after);
    return out;
  }

  // Base case: two distinct leaf blocks, one two-pointer merge.
  static diff_trees diff_blocks(node* a, node* b) {
    auto av = NM::read_block(a->blk);
    auto bv = NM::read_block(b->blk);
    std::vector<entry_t> before, after;
    MO::merge_runs(
        av.data(), av.size(), bv.data(), bv.size(),
        MO::entry_key, [&](const entry_t& e) { before.push_back(e); },
        [&](const entry_t& e) { after.push_back(e); },
        [&](const entry_t& ea, const entry_t& eb) {
          if (val_equal(ea.second, eb.second)) return;
          before.push_back(ea);
          after.push_back(eb);
        });
    diff_trees out;
    out.before = TO::build_sorted_seq(before.data(), before.size());
    out.after = TO::build_sorted_seq(after.data(), after.size());
    dec(a);
    dec(b);
    return out;
  }

  // Fold an aug-style monoid (g2 per entry, associative f2 with identity
  // id) over exactly the changed regions, without building any tree:
  // returns {fold over the before-side, fold over the after-side} of the
  // same partition diff() produces. One-sided regions fold with map_reduce
  // (O(region) — every such entry *is* a change). Consumes both references.
  template <typename G2, typename F2, typename B>
  static std::pair<B, B> diff_fold(node* a, node* b, const G2& g2,
                                   const F2& f2, const B& id) {
    if (TO::shares_storage(a, b)) {
      dec(a);
      dec(b);
      return {id, id};
    }
    if (a == nullptr) {
      B bf = MO::map_reduce(b, g2, f2, id);
      dec(b);
      return {id, bf};
    }
    if (b == nullptr) {
      B af = MO::map_reduce(a, g2, f2, id);
      dec(a);
      return {af, id};
    }
    if (is_chunk_leaf(a) && is_chunk_leaf(b)) {
      auto av = NM::read_block(a->blk);
      auto bv = NM::read_block(b->blk);
      std::pair<B, B> out{id, id};
      MO::merge_runs(
          av.data(), av.size(), bv.data(), bv.size(), MO::entry_key,
          [&](const entry_t& e) { out.first = f2(out.first, g2(e.first, e.second)); },
          [&](const entry_t& e) { out.second = f2(out.second, g2(e.first, e.second)); },
          [&](const entry_t& ea, const entry_t& eb) {
            if (val_equal(ea.second, eb.second)) return;
            out.first = f2(out.first, g2(ea.first, ea.second));
            out.second = f2(out.second, g2(eb.first, eb.second));
          });
      dec(a);
      dec(b);
      return out;
    }
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    std::pair<B, B> lo{id, id}, hi{id, id};
    par_do_if(
        total >= par_cutoff(),
        [&] { lo = diff_fold(sp.left, l2, g2, f2, id); },
        [&] { hi = diff_fold(sp.right, r2, g2, f2, id); });
    std::pair<B, B> out{f2(lo.first, hi.first), f2(lo.second, hi.second)};
    if (sp.mid != nullptr && val_equal(sp.mid->value, m2->value)) {
      // unchanged entry: contributes to neither side
    } else {
      if (sp.mid != nullptr)
        out.first = f2(out.first, g2(sp.mid->key, sp.mid->value));
      out.second = f2(out.second, g2(m2->key, m2->value));
    }
    if (sp.mid != nullptr) dec(sp.mid);
    dec(m2);
    return out;
  }
};

// ------------------------------------------------- map-level diff records --

// How one key changed between two versions.
enum class change_kind : uint8_t { added, removed, updated };

inline const char* change_kind_name(change_kind k) {
  switch (k) {
    case change_kind::added: return "added";
    case change_kind::removed: return "removed";
    default: return "updated";
  }
}

// One entry of an ordered change stream between two versions of Map.
template <typename Map>
struct map_change {
  using K = typename Map::K;
  using V = typename Map::V;

  K key;
  change_kind kind;
  std::optional<V> before;  // value in the from-version (removed / updated)
  std::optional<V> after;   // value in the to-version (added / updated)

  friend bool operator==(const map_change& a, const map_change& b) {
    return a.key == b.key && a.kind == b.kind && a.before == b.before &&
           a.after == b.after;
  }
};

// The result of Map::diff(from, to): two maps partitioning the difference.
// A key present in `before` only was removed; in `after` only, added; in
// both, updated (before holds the old value, after the new). Both are
// ordinary maps — every query (aug_val, views, set algebra) applies.
template <typename Map>
struct map_diff {
  Map before;
  Map after;

  bool empty() const { return before.empty() && after.empty(); }

  // Number of distinct changed keys: a two-pointer merge over the two
  // sorted key sequences (no tree allocation, unlike an intersection).
  size_t size() const {
    auto bs = before.entries();
    auto as = after.entries();
    size_t count = 0, i = 0, j = 0;
    while (i < bs.size() && j < as.size()) {
      if (Map::entry_policy::comp(bs[i].first, as[j].first)) {
        i++;
      } else if (Map::entry_policy::comp(as[j].first, bs[i].first)) {
        j++;
      } else {
        i++;
        j++;
      }
      count++;
    }
    return count + (bs.size() - i) + (as.size() - j);
  }

  // The merged, key-ordered change stream: one record per changed key.
  std::vector<map_change<Map>> changes() const {
    using change_t = map_change<Map>;
    auto bs = before.entries();
    auto as = after.entries();
    std::vector<change_t> out;
    out.reserve(bs.size() + as.size());
    size_t i = 0, j = 0;
    auto less = [](const typename Map::K& x, const typename Map::K& y) {
      return Map::entry_policy::comp(x, y);
    };
    while (i < bs.size() && j < as.size()) {
      if (less(bs[i].first, as[j].first)) {
        out.push_back({bs[i].first, change_kind::removed, bs[i].second, {}});
        i++;
      } else if (less(as[j].first, bs[i].first)) {
        out.push_back({as[j].first, change_kind::added, {}, as[j].second});
        j++;
      } else {
        out.push_back(
            {bs[i].first, change_kind::updated, bs[i].second, as[j].second});
        i++;
        j++;
      }
    }
    for (; i < bs.size(); i++)
      out.push_back({bs[i].first, change_kind::removed, bs[i].second, {}});
    for (; j < as.size(); j++)
      out.push_back({as[j].first, change_kind::added, {}, as[j].second});
    return out;
  }
};

}  // namespace pam
