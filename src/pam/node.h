// Tree nodes, reference-counting garbage collection, and the node-level
// helpers (copy-on-share, rotations) that every balancing scheme and every
// algorithm is built from.
//
// PAM's trees are purely functional: operations never mutate a node that any
// other tree can reach. Concretely, a node may be mutated if and only if its
// reference count is 1 and the caller owns that reference. `ensure_owned`
// and `expose_own` enforce this: they either hand back the node (refcount 1,
// the paper's "reuse optimization") or make a fresh copy that shares the
// children. Old versions of a map therefore remain valid forever — this is
// what gives PAM persistence and snapshot-style concurrency for free.
//
// Ownership protocol (used consistently across tree_ops/map_ops/aug_ops):
//   * a `node*` argument passed to a *consuming* function transfers one
//     reference; the function returns an owned reference;
//   * read-only queries take `const node*` and never touch counts;
//   * the public map wrappers translate C++ value semantics (copy = refcount
//     bump) into this protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "alloc/type_allocator.h"
#include "parallel/parallel.h"

namespace pam {

// Empty placeholder for "no value" (sets) and "no augmentation" (plain maps).
struct unit {
  friend constexpr bool operator==(unit, unit) { return true; }
};

// Normalized view of an Entry policy. An Entry always provides:
//   key_t, val_t, static bool comp(key_t, key_t)
// and, for augmented maps, additionally (paper Section 3):
//   aug_t                                  the augmented value type A
//   static aug_t identity()                I, the identity of f
//   static aug_t base(key_t, val_t)        g, entry -> augmented value
//   static aug_t combine(aug_t, aug_t)     f, associative combine
template <typename Entry, typename = void>
struct entry_traits {
  static constexpr bool has_aug = false;
  using aug_t = unit;
  static unit identity() { return {}; }
  template <typename K, typename V>
  static unit base(const K&, const V&) {
    return {};
  }
  static unit combine(unit, unit) { return {}; }
};

template <typename Entry>
struct entry_traits<Entry, std::void_t<typename Entry::aug_t>> {
  static constexpr bool has_aug = true;
  using aug_t = typename Entry::aug_t;
  static aug_t identity() { return Entry::identity(); }
  template <typename K, typename V>
  static aug_t base(const K& k, const V& v) {
    return Entry::base(k, v);
  }
  static aug_t combine(const aug_t& a, const aug_t& b) { return Entry::combine(a, b); }
};

// Runtime toggle for the refcount==1 in-place reuse optimization (paper §4,
// "Persistence"). Disabling it forces full path copying; the ablation tests
// verify both modes produce identical maps. Toggle only while quiescent.
inline std::atomic<bool>& reuse_flag() {
  static std::atomic<bool> f{true};
  return f;
}
inline bool reuse_enabled() { return reuse_flag().load(std::memory_order_relaxed); }
inline void set_reuse_enabled(bool on) { reuse_flag().store(on); }

// A tree node. With 64-bit keys/values/augmentation and the (empty)
// weight-balanced metadata this is exactly 48 bytes, matching the node size
// the paper reports in Table 4 (40 bytes un-augmented + 8 for the sum).
template <typename Entry, typename BalData>
struct tree_node {
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename entry_traits<Entry>::aug_t;

  std::atomic<uint32_t> ref_cnt;
  uint32_t size;  // subtree entry count (bounds maps to 2^32-1 entries)
  tree_node* left;
  tree_node* right;
  K key;
  [[no_unique_address]] V value;
  [[no_unique_address]] A aug;
  [[no_unique_address]] BalData bal;
};

template <typename Entry, typename Balance>
struct node_manager {
  using entry = Entry;
  using traits = entry_traits<Entry>;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename traits::aug_t;
  using node = tree_node<Entry, typename Balance::data>;
  using allocator = type_allocator<node>;

  // Subtrees smaller than this are collected sequentially.
  static constexpr size_t kParallelGcCutoff = size_t{1} << 12;

  static bool less(const K& a, const K& b) { return Entry::comp(a, b); }
  static bool keys_equal(const K& a, const K& b) { return !less(a, b) && !less(b, a); }
  static size_t size(const node* t) { return t == nullptr ? 0 : t->size; }
  static A aug_of(const node* t) { return t == nullptr ? traits::identity() : t->aug; }

  // ------------------------------------------------- reference counting --

  static node* inc(node* t) {
    if (t != nullptr) t->ref_cnt.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  static uint32_t ref_count(const node* t) {
    return t->ref_cnt.load(std::memory_order_relaxed);
  }

  // Release one reference; frees the node (and recursively its subtrees, in
  // parallel when large) when the count reaches zero.
  static void dec(node* t) {
    while (t != nullptr) {
      if (t->ref_cnt.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      node* l = t->left;
      node* r = t->right;
      destroy_node(t);
      if (l != nullptr && r != nullptr &&
          l->size + r->size >= kParallelGcCutoff) {
        par_do([l] { dec(l); }, [r] { dec(r); });
        return;
      }
      if (l != nullptr) dec(l);  // bounded by tree height
      t = r;
    }
  }

  // -------------------------------------------- construction / copying --

  // Recompute the cached subtree metadata of t from its children: size, the
  // augmented value (A(t) = f(A(l), f(g(k,v), A(r))), paper §4), and the
  // balance scheme's own bookkeeping. Called whenever children change, which
  // keeps every algorithm except the aug_* family oblivious of augmentation.
  static void update(node* t) {
    t->size = static_cast<uint32_t>(1 + size(t->left) + size(t->right));
    if constexpr (traits::has_aug) {
      t->aug = traits::combine(
          aug_of(t->left),
          traits::combine(traits::base(t->key, t->value), aug_of(t->right)));
    }
    Balance::template update_data<node_manager>(t);
  }

  static node* make_single(const K& k, const V& v) {
    node* t = allocator::allocate();
    new (&t->ref_cnt) std::atomic<uint32_t>(1);
    t->left = nullptr;
    t->right = nullptr;
    new (&t->key) K(k);
    new (&t->value) V(v);
    if constexpr (traits::has_aug) {
      new (&t->aug) A(traits::base(k, v));
    } else {
      new (&t->aug) A();
    }
    new (&t->bal) typename Balance::data();
    update(t);
    return t;
  }

  static void destroy_node(node* t) {
    t->key.~K();
    t->value.~V();
    t->aug.~A();
    using BD = typename Balance::data;
    t->bal.~BD();
    allocator::deallocate(t);
  }

  // A fresh refcount-1 copy of t sharing t's children (whose counts are
  // bumped). Borrow-style: t's own count is untouched.
  static node* copy_node(const node* t) {
    node* c = allocator::allocate();
    new (&c->ref_cnt) std::atomic<uint32_t>(1);
    c->size = t->size;
    c->left = inc(t->left);
    c->right = inc(t->right);
    new (&c->key) K(t->key);
    new (&c->value) V(t->value);
    new (&c->aug) A(t->aug);
    new (&c->bal) typename Balance::data(t->bal);
    return c;
  }

  // Make t safe to mutate: hand it back if we hold the only reference (the
  // reuse optimization), otherwise replace our reference with a copy.
  static node* ensure_owned(node* t) {
    if (t == nullptr) return t;
    if (reuse_enabled() && ref_count(t) == 1) return t;
    node* c = copy_node(t);
    dec(t);
    return c;
  }

  // Decompose an owned tree into (left child, singleton middle, right
  // child), transferring ownership of all three to the caller. The middle
  // node carries t's entry and has null children; it is what the join-based
  // algorithms thread back into JOIN.
  static void expose_own(node* t, node*& l, node*& m, node*& r) {
    if (reuse_enabled() && ref_count(t) == 1) {
      l = t->left;
      r = t->right;
      t->left = nullptr;
      t->right = nullptr;
      t->size = 1;
      m = t;
    } else {
      l = inc(t->left);
      r = inc(t->right);
      m = make_single(t->key, t->value);
      dec(t);
    }
  }

  // ------------------------------------------------------- rebalancing --

  // Wire l and r under m and refresh metadata. m must be owned.
  static node* attach(node* l, node* m, node* r) {
    m->left = l;
    m->right = r;
    update(m);
    return m;
  }

  // Standard rotations on owned nodes. The child being promoted is made
  // unique first, so rotations are persistence-safe. Colors/priorities move
  // with their nodes; per-scheme metadata is refreshed by update().
  static node* rotate_left(node* x) {
    node* y = ensure_owned(x->right);
    x->right = y->left;
    y->left = x;
    update(x);
    update(y);
    return y;
  }

  static node* rotate_right(node* x) {
    node* y = ensure_owned(x->left);
    x->left = y->right;
    y->right = x;
    update(x);
    update(y);
    return y;
  }

  // Live node count across all maps of this instantiated type (Table 4).
  static int64_t used_nodes() { return allocator::used(); }
};

}  // namespace pam
