// Tree nodes, blocked leaves, reference-counting garbage collection, and the
// node-level helpers (copy-on-share, rotations) that every balancing scheme
// and every algorithm is built from.
//
// PAM's trees are purely functional: operations never mutate a node that any
// other tree can reach. Concretely, a node may be mutated if and only if its
// reference count is 1 and the caller owns that reference. `ensure_owned`
// and `expose_own` enforce this: they either hand back the node (refcount 1,
// the paper's "reuse optimization") or make a fresh copy that shares the
// children. Old versions of a map therefore remain valid forever — this is
// what gives PAM persistence and snapshot-style concurrency for free.
//
// Blocked leaves (the PaC-tree layout of Dhulipala & Blelloch 2022): a node
// may carry, instead of one inline entry, a pointer to a refcounted *leaf
// block* — a flat sorted array of up to `leaf_block_size()` entries with a
// precomputed augmented value. Such a "chunk" node still has ordinary
// left/right child pointers (its block's keys sit between the two subtrees
// in key order), `size` still counts every entry below it, and its balance
// metadata describes it as a single node — so the four balancing schemes
// operate on chunk nodes without knowing they exist. Rotations inside a
// scheme's join may hand a chunk node interior children; that is fine: every
// algorithm in tree_ops/map_ops/aug_ops treats "node" as "1..B sorted
// entries plus two subtrees". Blocks are immutable once sealed and shared
// whole (their own refcount), so copy_node on a chunk is O(1) and snapshots
// keep sharing storage across re-packs.
//
// Ownership protocol (used consistently across tree_ops/map_ops/aug_ops):
//   * a `node*` argument passed to a *consuming* function transfers one
//     reference; the function returns an owned reference;
//   * read-only queries take `const node*` and never touch counts;
//   * the public map wrappers translate C++ value semantics (copy = refcount
//     bump) into this protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/leaf_pool.h"
#include "alloc/type_allocator.h"
#include "pam/block_fold.h"
#include "pam/coded_block.h"
#include "pam/delta_block.h"
#include "pam/entry_traits.h"
#include "parallel/parallel.h"
#include "util/env.h"
#include "util/thread_annotations.h"

namespace pam {

// Runtime toggle for the refcount==1 in-place reuse optimization (paper §4,
// "Persistence"). Disabling it forces full path copying; the ablation tests
// verify both modes produce identical maps. Toggle only while quiescent.
inline std::atomic<bool>& reuse_flag() {
  static std::atomic<bool> f{true};
  return f;
}
inline bool reuse_enabled() { return reuse_flag().load(std::memory_order_relaxed); }
inline void set_reuse_enabled(bool on) { reuse_flag().store(on); }

// ------------------------------------------------------- leaf block knob --

// Maximum entries per leaf block. 0 selects the classic one-entry-per-node
// layout; >= 1 packs subtrees of up to this many entries into blocks.
// Both layouts coexist in one process (existing blocks stay valid when the
// knob changes), so benchmarks can ablate blocked vs. unblocked at runtime.
//
// Interplay with the key_layout trait (entry_traits.h): the knob selects
// *whether* runs are blocked; the Entry's layout selects *how* a block is
// encoded (flat fixed-width array, front-coded strings, or delta-coded
// integers). B = 0 is valid for every layout — the tree degrades to classic
// nodes holding one inline key each, blocks are simply never built, and
// used_leaf_blocks() stays 0. Invalid layout/type combinations (front_coded
// with a non-string key, delta with a non-integral key, or either with a
// non-trivially-copyable value) are rejected at compile time by the
// contracted static_asserts in node_manager / coded_store / delta_store.
inline constexpr size_t kMaxLeafBlock = 2048;

inline std::atomic<uint32_t>& leaf_block_knob() {
  static std::atomic<uint32_t> knob{[] {
    long v = env_long("PAM_LEAF_BLOCK", 32);
    if (v < 0) v = 0;
    if (v > static_cast<long>(kMaxLeafBlock)) v = static_cast<long>(kMaxLeafBlock);
    return static_cast<uint32_t>(v);
  }()};
  return knob;
}
inline size_t leaf_block_size() {
  return leaf_block_knob().load(std::memory_order_relaxed);
}
inline void set_leaf_block_size(size_t b) {
  if (b > kMaxLeafBlock) b = kMaxLeafBlock;
  leaf_block_knob().store(static_cast<uint32_t>(b));
}

// ------------------------------------------------------------ leaf blocks --

// A refcounted flat run of sorted entries with its augmented value cached.
// Immutable once sealed: re-packs build new blocks, so any number of tree
// versions may share one block. The entry array lives in the same pool slot
// right after the header; `capacity` (a power of two) names the slot class.
template <typename Entry>
struct leaf_block {
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename entry_traits<Entry>::aug_t;
  using entry_t = std::pair<K, V>;

  std::atomic<uint32_t> ref_cnt;
  uint32_t count;
  uint32_t capacity;
  [[no_unique_address]] A aug;

  static constexpr size_t entries_offset() {
    size_t a = alignof(entry_t);
    return (sizeof(leaf_block) + a - 1) / a * a;
  }
  static constexpr size_t slot_bytes(size_t cap) {
    return entries_offset() + cap * sizeof(entry_t);
  }
  static constexpr size_t slot_align() {
    return alignof(leaf_block) > alignof(entry_t) ? alignof(leaf_block)
                                                  : alignof(entry_t);
  }

  entry_t* entries() {
    return reinterpret_cast<entry_t*>(reinterpret_cast<char*>(this) +
                                      entries_offset());
  }
  const entry_t* entries() const {
    return reinterpret_cast<const entry_t*>(reinterpret_cast<const char*>(this) +
                                            entries_offset());
  }
};

// Leaf-block storage for one Entry type: a raw_pool per power-of-two
// capacity class, plus live accounting for the space experiments. Shared by
// every balancing scheme instantiated over the Entry.
template <typename Entry>
struct leaf_store {
  using block = leaf_block<Entry>;
  using entry_t = typename block::entry_t;
  using A = typename block::A;
  using traits = entry_traits<Entry>;

  static constexpr int kClasses = 12;  // capacities 1, 2, 4, ..., 2048

  static int class_of(size_t cap) {
    int c = 0;
    while ((size_t{1} << c) < cap) c++;
    return c;
  }

  // Storage for `count` entries (1 <= count <= kMaxLeafBlock). The header is
  // initialized; entries are raw and the augmented value is unconstructed —
  // placement-new the entries in key order, then call seal().
  static block* allocate(uint32_t count) {
    int cls = class_of(count);
    block* b = static_cast<block*>(pool(cls).allocate());
    new (&b->ref_cnt) std::atomic<uint32_t>(1);
    b->count = count;
    b->capacity = static_cast<uint32_t>(size_t{1} << cls);
    return b;
  }

  // Compute and cache the block's augmented value from its entries: the
  // vectorized value-lane reduction for hinted integer monoids, the grouped
  // associativity-only fold (entry_traits.h) for everything else.
  static void seal(block* b) {
    if constexpr (traits::has_aug) {
      new (&b->aug)
          A(fold_entries_fast<traits, Entry>(b->entries(), 0, b->count));
    } else {
      new (&b->aug) A();
    }
  }

  // One-shot construction seam shared with coded_store: encode n sorted
  // entries (here: copy them flat) into a fresh sealed block.
  static block* build(const entry_t* es, uint32_t n) {
    block* b = allocate(n);
    entry_t* out = b->entries();
    for (uint32_t i = 0; i < n; i++) new (&out[i]) entry_t(es[i]);
    seal(b);
    return b;
  }

  // ------------------------------------------------- serialization hooks --
  // Sealed flat blocks with trivially copyable entries round-trip as one
  // memcpy of the entry array — the near-memcpy checkpoint path used by
  // pam/serialize.h. Blocks whose entries own heap state (std::string keys
  // forced flat) take the per-entry encoded path instead and never reach
  // these hooks. Integrity is the caller's problem (the durability layer
  // wraps payloads in CRC32C-checked pages); the augmented value is always
  // recomputed by seal(), never trusted from the payload.
  static constexpr bool raw_payload = std::is_trivially_copyable_v<entry_t>;

  static size_t payload_bytes(const block* b) {
    return size_t{b->count} * sizeof(entry_t);
  }

  static void write_payload(const block* b, char* dst) {
    static_assert(raw_payload);
    std::memcpy(dst, b->entries(), payload_bytes(b));
  }

  // Rebuild a sealed block from a raw entry payload. The caller validates
  // the frame (1 <= count <= kMaxLeafBlock, payload spans exactly count
  // entries) before handing bytes over.
  static block* from_payload(const char* src, uint32_t count) {
    static_assert(raw_payload);
    block* b = allocate(count);
    std::memcpy(static_cast<void*>(b->entries()), src,
                size_t{count} * sizeof(entry_t));
    seal(b);
    return b;
  }

  static block* retain(block* b) {
    b->ref_cnt.fetch_add(1, std::memory_order_relaxed);
    return b;
  }

  static void release(block* b) {
    if (b->ref_cnt.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    entry_t* e = b->entries();
    for (uint32_t i = 0; i < b->count; i++) e[i].~entry_t();
    b->aug.~A();
    pool(class_of(b->capacity)).deallocate(b);
  }

  // Live blocks / bytes across all maps of this Entry type (Table 4).
  static int64_t used_blocks() {
    int64_t total = 0;
    for (int c = 0; c < kClasses; c++) {
      raw_pool* p = table().pools[c].load(std::memory_order_acquire);
      if (p != nullptr) total += p->used();
    }
    return total;
  }

  static int64_t used_bytes() {
    int64_t total = 0;
    for (int c = 0; c < kClasses; c++) {
      raw_pool* p = table().pools[c].load(std::memory_order_acquire);
      if (p != nullptr) total += p->used() * static_cast<int64_t>(p->slot_bytes());
    }
    return total;
  }

 private:
  struct pool_table {
    // pam-lint: allow(unguarded-mutex) — mu serializes pool *creation*
    // only; the pools themselves are published through the atomics and
    // read lock-free (double-checked init in pool() below), so there is
    // no member for GUARDED_BY to name.
    mutex mu;
    std::array<std::atomic<raw_pool*>, kClasses> pools{};
  };

  static pool_table& table() {
    // pam-lint: allow(naked-new) — immortal process-wide singleton.
    static pool_table* t = new pool_table();  // immortal
    return *t;
  }

  static raw_pool& pool(int cls) {
    pool_table& t = table();
    raw_pool* p = t.pools[cls].load(std::memory_order_acquire);
    if (p == nullptr) {
      mutex_guard lock(t.mu);
      p = t.pools[cls].load(std::memory_order_relaxed);
      if (p == nullptr) {
        // pam-lint: allow(naked-new) — immortal pool singleton per class.
        p = new raw_pool(block::slot_bytes(size_t{1} << cls), block::slot_align());
        t.pools[cls].store(p, std::memory_order_release);
      }
    }
    return *p;
  }
};

// ------------------------------------------------------------- tree node --

// A tree node: either one inline entry (blk == nullptr) or a leaf block of
// blk->count entries (key/value then mirror the block's first entry so
// key-based heuristics like treap priorities stay well-defined). With 64-bit
// keys/values/augmentation this is 56 bytes — 8 more than the paper's Table 4
// node for the block pointer; the blocked layout wins it back ~20x over.
// Which block type an Entry's chunks carry follows its key_layout trait.
template <typename Entry>
using leaf_block_of = std::conditional_t<
    entry_layout_v<Entry> == key_layout::flat, leaf_block<Entry>,
    std::conditional_t<entry_layout_v<Entry> == key_layout::front_coded,
                       coded_block<Entry>, delta_block<Entry>>>;

template <typename Entry, typename BalData>
struct tree_node {
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename entry_traits<Entry>::aug_t;

  std::atomic<uint32_t> ref_cnt;
  uint32_t size;  // subtree entry count (bounds maps to 2^32-1 entries)
  tree_node* left;
  tree_node* right;
  leaf_block_of<Entry>* blk;  // non-null => this node carries a leaf block
  K key;
  [[no_unique_address]] V value;
  [[no_unique_address]] A aug;
  [[no_unique_address]] BalData bal;
};

// Uniform read access to one block's sorted entries, switched by layout:
// the flat view is a zero-copy pointer into the sealed array; the coded
// view owns a materialized decode (used by the cold multi-entry paths —
// point searches go through the coded store's native in-block search).
template <typename Entry>
struct flat_block_view {
  using entry_t = std::pair<typename Entry::key_t, typename Entry::val_t>;
  const entry_t* es;
  size_t n;
  const entry_t* data() const { return es; }
  size_t size() const { return n; }
};

template <typename Entry>
struct coded_block_view {
  using entry_t = std::pair<typename Entry::key_t, typename Entry::val_t>;
  std::vector<entry_t> buf;
  const entry_t* data() const { return buf.data(); }
  size_t size() const { return buf.size(); }
};

template <typename Entry, typename Balance>
struct node_manager {
  using entry = Entry;
  using traits = entry_traits<Entry>;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename traits::aug_t;
  using node = tree_node<Entry, typename Balance::data>;
  using allocator = type_allocator<node>;
  using entry_t = std::pair<K, V>;

  // The Entry's key_layout trait selects the block encoding; everything
  // above this seam (tree_ops and up) is layout-generic.
  static constexpr key_layout layout = entry_layout_v<Entry>;
  static constexpr bool flat_layout = layout == key_layout::flat;
  using lblock = leaf_block_of<Entry>;
  using lstore = std::conditional_t<
      flat_layout, leaf_store<Entry>,
      std::conditional_t<layout == key_layout::front_coded, coded_store<Entry>,
                         delta_store<Entry>>>;
  using block_view =
      std::conditional_t<flat_layout, flat_block_view<Entry>, coded_block_view<Entry>>;

  // The layout/type contract, stated where every map instantiation passes.
  static_assert(layout != key_layout::front_coded ||
                    std::is_same_v<K, std::string>,
                "PAM leaf-layout contract: key_layout::front_coded requires "
                "key_t = std::string; fixed-width keys must use "
                "key_layout::flat or key_layout::delta");
  static_assert(layout != key_layout::delta || std::is_integral_v<K>,
                "PAM leaf-layout contract: key_layout::delta requires an "
                "integral key_t; string keys must use "
                "key_layout::front_coded");
  static_assert(flat_layout || std::is_trivially_copyable_v<V>,
                "PAM leaf-layout contract: coded leaf layouts require a "
                "trivially copyable val_t (values are stored raw inside "
                "sealed blocks)");

  // Comparisons are heterogeneous: string-keyed policies take string_views,
  // so lookups and in-block decoding compare without materializing keys.
  template <typename KA, typename KB>
  static bool less(const KA& a, const KB& b) { return Entry::comp(a, b); }
  template <typename KA, typename KB>
  static bool keys_equal(const KA& a, const KB& b) {
    return !less(a, b) && !less(b, a);
  }

  // Materialize (flat: point at) the entries of a sealed block.
  static block_view read_block(const lblock* b) {
    if constexpr (flat_layout) {
      return {b->entries(), b->count};
    } else {
      block_view v;
      v.buf.reserve(b->count);
      lstore::decode_all(b, v.buf);
      return v;
    }
  }
  static size_t size(const node* t) { return t == nullptr ? 0 : t->size; }
  static A aug_of(const node* t) { return t == nullptr ? traits::identity() : t->aug; }

  // Is t a chunk node (carries a leaf block instead of one inline entry)?
  static bool is_chunk(const node* t) { return t != nullptr && t->blk != nullptr; }

  // Entries stored at t itself (not counting subtrees).
  static uint32_t cnt(const node* t) { return t->blk != nullptr ? t->blk->count : 1; }

  // Augmented value of t's own entries (cached in the block for chunks).
  static A own_aug(const node* t) {
    if constexpr (traits::has_aug) {
      return t->blk != nullptr ? t->blk->aug : traits::base(t->key, t->value);
    } else {
      return A{};
    }
  }

  // ------------------------------------------------- reference counting --

  static node* inc(node* t) {
    if (t != nullptr) t->ref_cnt.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  static uint32_t ref_count(const node* t) {
    return t->ref_cnt.load(std::memory_order_relaxed);
  }

  // Release one reference; frees the node (and recursively its subtrees, in
  // parallel when large — the cutoff follows the runtime gc_par_cutoff()
  // knob) when the count reaches zero. This is also the teardown that epoch
  // limbo drains run (alloc/arena.h): a displaced snapshot_box version is a
  // retained root, and destroying it lands here with the same parallelism.
  static void dec(node* t) {
    while (t != nullptr) {
      if (t->ref_cnt.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      node* l = t->left;
      node* r = t->right;
      destroy_node(t);
      if (l != nullptr && r != nullptr &&
          l->size + r->size >= gc_par_cutoff()) {
        par_do([l] { dec(l); }, [r] { dec(r); });
        return;
      }
      if (l != nullptr) dec(l);  // bounded by tree height
      t = r;
    }
  }

  // -------------------------------------------- construction / copying --

  // Recompute the cached subtree metadata of t from its children: size, the
  // augmented value (A(t) = f(A(l), f(g(k,v), A(r))), paper §4), and the
  // balance scheme's own bookkeeping. Called whenever children change, which
  // keeps every algorithm except the aug_* family oblivious of augmentation.
  static void update(node* t) {
    t->size = static_cast<uint32_t>(cnt(t) + size(t->left) + size(t->right));
    if constexpr (traits::has_aug) {
      t->aug = traits::combine(aug_of(t->left),
                               traits::combine(own_aug(t), aug_of(t->right)));
    }
    Balance::template update_data<node_manager>(t);
  }

  static node* make_single(const K& k, const V& v) {
    node* t = allocator::allocate();
    new (&t->ref_cnt) std::atomic<uint32_t>(1);
    t->left = nullptr;
    t->right = nullptr;
    t->blk = nullptr;
    new (&t->key) K(k);
    new (&t->value) V(v);
    if constexpr (traits::has_aug) {
      new (&t->aug) A(traits::base(k, v));
    } else {
      new (&t->aug) A();
    }
    new (&t->bal) typename Balance::data();
    update(t);
    return t;
  }

  // Wrap a sealed leaf block (ownership transfers) into a fresh leaf-chunk
  // node. key/value mirror the first entry.
  static node* make_chunk(lblock* b) {
    node* t = allocator::allocate();
    new (&t->ref_cnt) std::atomic<uint32_t>(1);
    t->left = nullptr;
    t->right = nullptr;
    t->blk = b;
    if constexpr (flat_layout) {
      const entry_t* e = b->entries();
      new (&t->key) K(e[0].first);
      new (&t->value) V(e[0].second);
    } else {
      new (&t->key) K(lstore::first_key(b));
      new (&t->value) V(lstore::first_val(b));
    }
    new (&t->aug) A(b->aug);
    new (&t->bal) typename Balance::data();
    update(t);
    return t;
  }

  static void destroy_node(node* t) {
    if (t->blk != nullptr) lstore::release(t->blk);
    t->key.~K();
    t->value.~V();
    t->aug.~A();
    using BD = typename Balance::data;
    t->bal.~BD();
    allocator::deallocate(t);
  }

  // A fresh refcount-1 copy of t sharing t's children and leaf block (whose
  // counts are bumped). Borrow-style: t's own count is untouched.
  static node* copy_node(const node* t) {
    node* c = allocator::allocate();
    new (&c->ref_cnt) std::atomic<uint32_t>(1);
    c->size = t->size;
    c->left = inc(t->left);
    c->right = inc(t->right);
    c->blk = t->blk != nullptr ? lstore::retain(t->blk) : nullptr;
    new (&c->key) K(t->key);
    new (&c->value) V(t->value);
    new (&c->aug) A(t->aug);
    new (&c->bal) typename Balance::data(t->bal);
    return c;
  }

  // Make t safe to mutate: hand it back if we hold the only reference (the
  // reuse optimization), otherwise replace our reference with a copy.
  static node* ensure_owned(node* t) {
    if (t == nullptr) return t;
    if (reuse_enabled() && ref_count(t) == 1) return t;
    node* c = copy_node(t);
    dec(t);
    return c;
  }

  // Decompose an owned single-entry tree into (left child, singleton middle,
  // right child), transferring ownership of all three to the caller. Chunk
  // nodes are decomposed by tree_ops::expose_own, which shadows this.
  static void expose_own(node* t, node*& l, node*& m, node*& r) {
    if (reuse_enabled() && ref_count(t) == 1) {
      l = t->left;
      r = t->right;
      t->left = nullptr;
      t->right = nullptr;
      t->size = 1;
      m = t;
    } else {
      l = inc(t->left);
      r = inc(t->right);
      m = make_single(t->key, t->value);
      dec(t);
    }
  }

  // ------------------------------------------------------- rebalancing --

  // Wire l and r under m and refresh metadata. m must be owned.
  static node* attach(node* l, node* m, node* r) {
    m->left = l;
    m->right = r;
    update(m);
    return m;
  }

  // Standard rotations on owned nodes. The child being promoted is made
  // unique first, so rotations are persistence-safe. Colors/priorities move
  // with their nodes; per-scheme metadata is refreshed by update(). A chunk
  // node may be promoted to an interior position here — its block's keys
  // stay between its (new) subtrees, so in-order semantics are unchanged.
  //
  // A weight-driven scheme can ask for a rotation whose promoted child does
  // not exist: a chunk node weighs its whole block, so a "heavy" subtree may
  // be a single shapeless leaf. Such a rotation is an order-preserving no-op
  // (the weight is irreducible); the local weight-balance slack this leaves
  // behind is bounded by the block size.
  static node* rotate_left(node* x) {
    if (x->right == nullptr) {
      update(x);
      return x;
    }
    node* y = ensure_owned(x->right);
    x->right = y->left;
    y->left = x;
    update(x);
    update(y);
    return y;
  }

  static node* rotate_right(node* x) {
    if (x->left == nullptr) {
      update(x);
      return x;
    }
    node* y = ensure_owned(x->left);
    x->left = y->right;
    y->right = x;
    update(x);
    update(y);
    return y;
  }

  // Live node count across all maps of this instantiated type (Table 4).
  static int64_t used_nodes() { return allocator::used(); }
  // Live leaf-block storage for this Entry type (shared across schemes).
  static int64_t used_leaf_blocks() { return lstore::used_blocks(); }
  static int64_t used_leaf_bytes() { return lstore::used_bytes(); }
};

}  // namespace pam
