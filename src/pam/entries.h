// Ready-made Entry policies for the common augmentations, used by the
// applications, tests and benchmarks. Defining a new augmented map type is
// a matter of writing one of these little structs (paper Figure 3).
#pragma once

#include <functional>
#include <limits>

namespace pam {

// Plain ordered-map entry: no augmentation.
template <typename K, typename V, typename Less = std::less<K>>
struct map_entry {
  using key_t = K;
  using val_t = V;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
};

// Augmentation by the sum of values (the paper's Equation 1: the running
// example "augmented sum" map).
template <typename K, typename V, typename Less = std::less<K>>
struct sum_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
  static aug_t identity() { return V{}; }
  static aug_t base(const K&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a + b; }
};

// Augmentation by the maximum of values (interval trees, inverted index).
template <typename K, typename V, typename Less = std::less<K>>
struct max_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
  static aug_t identity() { return std::numeric_limits<V>::lowest(); }
  static aug_t base(const K&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a > b ? a : b; }
};

// Augmentation by the minimum of values.
template <typename K, typename V, typename Less = std::less<K>>
struct min_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
  static aug_t identity() { return std::numeric_limits<V>::max(); }
  static aug_t base(const K&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a < b ? a : b; }
};

}  // namespace pam
