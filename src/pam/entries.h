// Ready-made Entry policies for the common augmentations, used by the
// applications, tests and benchmarks. Defining a new augmented map type is
// a matter of writing one of these little structs (paper Figure 3).
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>

#include "pam/entry_traits.h"

namespace pam {

// Identity elements for the max/min augmentations. Numeric value types get
// the true extremes from std::numeric_limits; any other type falls back to
// a value-initialized V{} — or to a user specialization of this trait when
// V{} is not a valid identity. For max over std::string, V{} ("") *is* the
// identity under lexicographic order (every string compares >= ""); for min
// over a type with no greatest element there is no true identity, so either
// treat V{} as a +infinity sentinel in `combine` or specialize
// `extreme_values<V>::highest()`.
template <typename V, typename = void>
struct extreme_values {
  static V lowest() {
    if constexpr (std::numeric_limits<V>::is_specialized) {
      return std::numeric_limits<V>::lowest();
    } else {
      return V{};
    }
  }
  static V highest() {
    if constexpr (std::numeric_limits<V>::is_specialized) {
      return std::numeric_limits<V>::max();
    } else {
      return V{};
    }
  }
};

// Plain ordered-map entry: no augmentation.
template <typename K, typename V, typename Less = std::less<K>>
struct map_entry {
  using key_t = K;
  using val_t = V;
  // True iff keys order by the default operator< — the licence for the
  // in-block vector search to compare raw key bits (pam/block_search.h).
  static constexpr bool default_compare = std::is_same_v<Less, std::less<K>>;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
};

// Augmentation by the sum of values (the paper's Equation 1: the running
// example "augmented sum" map).
template <typename K, typename V, typename Less = std::less<K>>
struct sum_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static constexpr bool default_compare = std::is_same_v<Less, std::less<K>>;
  // combine is integer/float addition: the hint licenses the vectorized
  // block fold (pam/block_fold.h), which additionally requires a 64-bit
  // *integral* aug_t before taking the data-parallel path — float sums keep
  // the grouped scalar fold, so regrouping never changes a float result.
  static constexpr aug_fold_kind fold_hint = aug_fold_kind::sum;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
  static aug_t identity() { return V{}; }
  static aug_t base(const K&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a + b; }
};

// Augmentation by the maximum of values (interval trees, inverted index).
// Works for non-numeric value types too: the identity dispatches through
// extreme_values<V> (std::string maps get "" — the true identity for max).
template <typename K, typename V, typename Less = std::less<K>>
struct max_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static constexpr bool default_compare = std::is_same_v<Less, std::less<K>>;
  static constexpr aug_fold_kind fold_hint = aug_fold_kind::max;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
  static aug_t identity() { return extreme_values<V>::lowest(); }
  static aug_t base(const K&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a > b ? a : b; }
};

// Augmentation by the minimum of values. For value types with no greatest
// element (see extreme_values) the fallback identity is V{}; only use such a
// min map if V{} can serve as a top sentinel, or specialize the trait.
template <typename K, typename V, typename Less = std::less<K>>
struct min_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static constexpr bool default_compare = std::is_same_v<Less, std::less<K>>;
  static constexpr aug_fold_kind fold_hint = aug_fold_kind::min;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
  static aug_t identity() { return extreme_values<V>::highest(); }
  static aug_t base(const K&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a < b ? a : b; }
};

// ------------------------------------------------- string-keyed policies --
// Entry policies whose keys are std::string, stored front-coded (shared
// prefix + suffix) inside sealed leaf blocks (key_layout::front_coded; see
// pam/coded_block.h). comp takes string_views so lookups, splitters and the
// in-block decoder can compare without materializing std::string keys.

// Plain string-keyed map entry.
template <typename V>
struct str_map_entry {
  using key_t = std::string;
  using val_t = V;
  static constexpr key_layout layout = key_layout::front_coded;
  static bool comp(std::string_view a, std::string_view b) { return a < b; }
};

// String keys, value-sum augmentation.
template <typename V>
struct str_sum_entry {
  using key_t = std::string;
  using val_t = V;
  using aug_t = V;
  static constexpr key_layout layout = key_layout::front_coded;
  static bool comp(std::string_view a, std::string_view b) { return a < b; }
  static aug_t identity() { return V{}; }
  static aug_t base(const key_t&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a + b; }
};

// String keys, value-max augmentation.
template <typename V>
struct str_max_entry {
  using key_t = std::string;
  using val_t = V;
  using aug_t = V;
  static constexpr key_layout layout = key_layout::front_coded;
  static constexpr aug_fold_kind fold_hint = aug_fold_kind::max;
  static bool comp(std::string_view a, std::string_view b) { return a < b; }
  static aug_t identity() { return extreme_values<V>::lowest(); }
  static aug_t base(const key_t&, const V& v) { return v; }
  static aug_t combine(const aug_t& a, const aug_t& b) { return a > b ? a : b; }
};

// ------------------------------------------------- delta-coded policies --
// The same policies with integral keys stored delta-coded (base key +
// zigzag-varint differences, integral values varint-packed) inside sealed
// leaf blocks (key_layout::delta; see pam/delta_block.h). Inherit the flat
// policy and override only the layout: the entry_layout trait detects the
// member through the base-class lookup.

template <typename K, typename V, typename Less = std::less<K>>
struct delta_map_entry : map_entry<K, V, Less> {
  static constexpr key_layout layout = key_layout::delta;
};

template <typename K, typename V, typename Less = std::less<K>>
struct delta_sum_entry : sum_entry<K, V, Less> {
  static constexpr key_layout layout = key_layout::delta;
};

template <typename K, typename V, typename Less = std::less<K>>
struct delta_max_entry : max_entry<K, V, Less> {
  static constexpr key_layout layout = key_layout::delta;
};

template <typename K, typename V, typename Less = std::less<K>>
struct delta_min_entry : min_entry<K, V, Less> {
  static constexpr key_layout layout = key_layout::delta;
};

}  // namespace pam
