// Sequential core algorithms on join-based trees: split, join2, insert,
// delete, search, order statistics, and range extraction. Everything here is
// expressed purely in terms of JOIN (paper §4), so it works unchanged for
// all four balancing schemes.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "pam/node.h"

namespace pam {

template <typename Entry, typename Balance>
struct tree_ops : node_manager<Entry, Balance> {
  using NM = node_manager<Entry, Balance>;
  using node = typename NM::node;
  using BO = typename Balance::template ops<NM>;
  using K = typename NM::K;
  using V = typename NM::V;
  using A = typename NM::A;
  using traits = typename NM::traits;
  using entry_t = std::pair<K, V>;

  using NM::attach;
  using NM::aug_of;
  using NM::dec;
  using NM::expose_own;
  using NM::inc;
  using NM::less;
  using NM::make_single;
  using NM::size;

  // JOIN(l, m, r): the single balancing primitive everything is built from.
  // Consumes all three owned references; max(l) < m->key < min(r).
  static node* join(node* l, node* m, node* r) { return BO::node_join(l, m, r); }

  // ------------------------------------------------------ split / join2 --

  struct split_t {
    node* left = nullptr;
    node* mid = nullptr;  // singleton node holding k's entry, or null
    node* right = nullptr;
  };

  // SPLIT(t, k): partition into keys < k, the entry at k (if present, as an
  // owned singleton), and keys > k. Consumes t. O(log n).
  static split_t split(node* t, const K& k) {
    if (t == nullptr) return {};
    node *l, *m, *r;
    expose_own(t, l, m, r);
    if (less(k, m->key)) {
      split_t s = split(l, k);
      s.right = join(s.right, m, r);
      return s;
    }
    if (less(m->key, k)) {
      split_t s = split(r, k);
      s.left = join(l, m, s.left);
      return s;
    }
    return {l, m, r};
  }

  // Remove and return the last (maximum) entry: (rest, last-as-singleton).
  static std::pair<node*, node*> split_last(node* t) {
    node *l, *m, *r;
    expose_own(t, l, m, r);
    if (r == nullptr) return {l, m};
    auto [rest, last] = split_last(r);
    return {join(l, m, rest), last};
  }

  // JOIN2(l, r): concatenation without a middle entry; max(l) < min(r).
  static node* join2(node* l, node* r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    auto [rest, last] = split_last(l);
    return join(rest, last, r);
  }

  // --------------------------------------------------- insert / delete --

  // INSERT with a combine function: if k is already present the stored
  // value becomes comb(old, v). Consumes t. O(log n).
  template <typename Comb>
  static node* insert(node* t, const K& k, const V& v, const Comb& comb) {
    if (t == nullptr) return make_single(k, v);
    node *l, *m, *r;
    expose_own(t, l, m, r);
    if (less(k, m->key)) return join(insert(l, k, v, comb), m, r);
    if (less(m->key, k)) return join(l, m, insert(r, k, v, comb));
    m->value = comb(m->value, v);
    return join(l, m, r);
  }

  // Plain insert: a later value replaces an earlier one.
  static node* insert(node* t, const K& k, const V& v) {
    return insert(t, k, v, [](const V&, const V& nv) { return nv; });
  }

  static node* remove(node* t, const K& k) {
    if (t == nullptr) return nullptr;
    node *l, *m, *r;
    expose_own(t, l, m, r);
    if (less(k, m->key)) return join(remove(l, k), m, r);
    if (less(m->key, k)) return join(l, m, remove(r, k));
    dec(m);
    return join2(l, r);
  }

  // ------------------------------------------------------------ search --

  static const node* find_node(const node* t, const K& k) {
    while (t != nullptr) {
      if (less(k, t->key)) {
        t = t->left;
      } else if (less(t->key, k)) {
        t = t->right;
      } else {
        return t;
      }
    }
    return nullptr;
  }

  static std::optional<V> find(const node* t, const K& k) {
    const node* n = find_node(t, k);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  static const node* first_node(const node* t) {
    if (t == nullptr) return nullptr;
    while (t->left != nullptr) t = t->left;
    return t;
  }

  static const node* last_node(const node* t) {
    if (t == nullptr) return nullptr;
    while (t->right != nullptr) t = t->right;
    return t;
  }

  // Greatest entry with key < k (the paper's `previous`).
  static const node* previous_node(const node* t, const K& k) {
    const node* best = nullptr;
    while (t != nullptr) {
      if (less(t->key, k)) {
        best = t;
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return best;
  }

  // Least entry with key > k (the paper's `next`).
  static const node* next_node(const node* t, const K& k) {
    const node* best = nullptr;
    while (t != nullptr) {
      if (less(k, t->key)) {
        best = t;
        t = t->left;
      } else {
        t = t->right;
      }
    }
    return best;
  }

  // ---------------------------------------------------- order statistics --

  // Number of entries with key < k.
  static size_t rank(const node* t, const K& k) {
    size_t acc = 0;
    while (t != nullptr) {
      if (less(t->key, k)) {
        acc += size(t->left) + 1;
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return acc;
  }

  // Number of entries with key <= k (one descent).
  static size_t rank_leq(const node* t, const K& k) {
    size_t acc = 0;
    while (t != nullptr) {
      if (!less(k, t->key)) {
        acc += size(t->left) + 1;
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return acc;
  }

  // Number of entries with lo <= key <= hi (null = unbounded): two rank
  // descents. Shared by aug_map::count_range and range_view::size.
  static size_t count_in_range(const node* t, const K* lo, const K* hi) {
    if (t == nullptr) return 0;
    size_t upto_hi = hi != nullptr ? rank_leq(t, *hi) : size(t);
    size_t below_lo = lo != nullptr ? rank(t, *lo) : 0;
    return upto_hi > below_lo ? upto_hi - below_lo : 0;
  }

  // The i-th entry in key order (0-based); null if i >= size.
  static const node* select(const node* t, size_t i) {
    while (t != nullptr) {
      size_t ls = size(t->left);
      if (i < ls) {
        t = t->left;
      } else if (i == ls) {
        return t;
      } else {
        i -= ls + 1;
        t = t->right;
      }
    }
    return nullptr;
  }

  // --------------------------------------------------- range extraction --

  // All entries with key <= k (the paper's upTo). Borrows t, returns an
  // owned tree that shares whole subtrees with t — O(log n) new nodes.
  static node* take_leq(const node* t, const K& k) {
    if (t == nullptr) return nullptr;
    if (less(k, t->key)) return take_leq(t->left, k);
    return join(inc(t->left), make_single(t->key, t->value), take_leq(t->right, k));
  }

  // All entries with key >= k (the paper's downTo).
  static node* take_geq(const node* t, const K& k) {
    if (t == nullptr) return nullptr;
    if (less(t->key, k)) return take_geq(t->right, k);
    return join(take_geq(t->left, k), make_single(t->key, t->value), inc(t->right));
  }

  // All entries with lo <= key <= hi. Borrows t.
  static node* range_copy(const node* t, const K& lo, const K& hi) {
    if (t == nullptr) return nullptr;
    if (less(t->key, lo)) return range_copy(t->right, lo, hi);
    if (less(hi, t->key)) return range_copy(t->left, lo, hi);
    return join(take_geq(t->left, lo), make_single(t->key, t->value),
                take_leq(t->right, hi));
  }

  // ---------------------------------------------------------- validation --

  // Full structural validation: balance-scheme invariant, size fields, key
  // ordering, and (when A is equality-comparable) cached augmented values.
  static bool check_valid(const node* t) {
    if (!BO::check(t)) return false;
    if (!check_sizes(t)) return false;
    const K* prev = nullptr;
    if (!check_order(t, prev)) return false;
    if constexpr (traits::has_aug && requires(const A& a, const A& b) {
                    { a == b } -> std::convertible_to<bool>;
                  }) {
      if (!check_aug(t)) return false;
    }
    return true;
  }

 private:
  static bool check_sizes(const node* t) {
    if (t == nullptr) return true;
    if (t->size != 1 + size(t->left) + size(t->right)) return false;
    return check_sizes(t->left) && check_sizes(t->right);
  }

  static bool check_order(const node* t, const K*& prev) {
    if (t == nullptr) return true;
    if (!check_order(t->left, prev)) return false;
    if (prev != nullptr && !less(*prev, t->key)) return false;
    prev = &t->key;
    return check_order(t->right, prev);
  }

  static bool check_aug(const node* t) {
    if (t == nullptr) return true;
    A expect = traits::combine(
        aug_of(t->left),
        traits::combine(traits::base(t->key, t->value), aug_of(t->right)));
    if (!(t->aug == expect)) return false;
    return check_aug(t->left) && check_aug(t->right);
  }
};

}  // namespace pam
