// Sequential core algorithms on join-based trees: split, join2, insert,
// delete, search, order statistics, and range extraction. Everything here is
// expressed purely in terms of JOIN (paper §4), so it works unchanged for
// all four balancing schemes.
//
// This layer is also the seam where the blocked-leaf layouts (node.h) are
// integrated: JOIN re-packs results of up to leaf_block_size() entries into
// one chunk, and split/expose/insert/delete materialize chunk contents
// back into trees at the boundary they touch. The balance schemes above
// never see a block: a chunk node is an ordinary node to them. Every
// algorithm below treats a node as "1..B sorted entries plus two subtrees",
// which is exactly the generalized invariant chunk nodes satisfy.
//
// Two block encodings live behind this seam (selected per Entry policy by
// the key_layout trait): flat fixed-width arrays, read zero-copy and point-
// searched by the vectorized kernels of pam/block_search.h, and front-coded
// string blocks (pam/coded_block.h), point-searched by incremental decode
// and materialized through NM::read_block on the multi-entry paths. The
// blk_* helpers below are the only places that dispatch on the layout;
// everything else works on materialized entry runs.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "pam/block_search.h"
#include "pam/node.h"

namespace pam {

template <typename Entry, typename Balance>
struct tree_ops : node_manager<Entry, Balance> {
  using NM = node_manager<Entry, Balance>;
  using node = typename NM::node;
  using BO = typename Balance::template ops<NM>;
  using K = typename NM::K;
  using V = typename NM::V;
  using A = typename NM::A;
  using traits = typename NM::traits;
  using entry_t = std::pair<K, V>;
  using lblock = typename NM::lblock;
  using lstore = typename NM::lstore;

  using NM::attach;
  using NM::aug_of;
  using NM::cnt;
  using NM::dec;
  using NM::inc;
  using NM::is_chunk;
  using NM::less;
  using NM::make_single;
  using NM::size;

  // First index in es[0, n) whose key is >= k (all keys before it are < k).
  // Dispatches to the branch-free/SIMD counting kernel for short integral-key
  // runs (pam/block_search.h), classic binary search otherwise.
  template <typename Key>
  static size_t lower_idx(const entry_t* es, size_t n, const Key& k) {
    return block_lower_idx<Entry>(es, n, k);
  }

  // First index in es[0, n) whose key is > k.
  template <typename Key>
  static size_t upper_idx(const entry_t* es, size_t n, const Key& k) {
    return block_upper_idx<Entry>(es, n, k);
  }

  // ------------------------------------------- layout-dispatched block ops --
  // The only functions below tree_ops that look inside a sealed block. Flat
  // blocks answer zero-copy; front-coded and delta blocks search by
  // incremental decode (coded_store / delta_store) without materializing
  // more than a scratch key.

  // First slot with key >= k; *eq (optional) reports an exact hit.
  template <typename Key>
  static size_t blk_lower(const lblock* b, const Key& k, bool* eq) {
    if constexpr (NM::flat_layout) {
      size_t pos = block_lower_idx<Entry>(b->entries(), b->count, k);
      if (eq != nullptr) {
        *eq = pos < b->count && !less(k, b->entries()[pos].first);
      }
      return pos;
    } else if constexpr (NM::layout == key_layout::front_coded) {
      return lstore::lower_idx(b, std::string_view(k), eq);
    } else {
      return lstore::lower_idx(b, k, eq);
    }
  }

  // First slot with key > k.
  template <typename Key>
  static size_t blk_upper(const lblock* b, const Key& k) {
    if constexpr (NM::flat_layout) {
      return block_upper_idx<Entry>(b->entries(), b->count, k);
    } else if constexpr (NM::layout == key_layout::front_coded) {
      return lstore::upper_idx(b, std::string_view(k));
    } else {
      return lstore::upper_idx(b, k);
    }
  }

  static V blk_value(const lblock* b, size_t i) {
    if constexpr (NM::flat_layout) {
      return b->entries()[i].second;
    } else {
      return lstore::value_at(b, static_cast<uint32_t>(i));
    }
  }

  // Slot i as a materialized entry (coded blocks decode the prefix chain).
  static entry_t blk_entry(const lblock* b, size_t i) {
    if constexpr (NM::flat_layout) {
      return b->entries()[i];
    } else {
      return lstore::entry_at(b, static_cast<uint32_t>(i));
    }
  }

  // Is t a leaf chunk (block with no subtrees) — the fast-path shape?
  static bool is_chunk_leaf(const node* t) {
    return is_chunk(t) && t->left == nullptr && t->right == nullptr;
  }

  // Do a and b denote byte-identical trees by construction? True for the
  // same node (path copying shares whole subtrees across versions by
  // pointer) and for two leaf chunks over one sealed block (re-packs share
  // blocks even when the wrapping nodes differ). O(1); this is the pruning
  // test the structural diff (pam/diff.h) descends by, which is what makes
  // diffing two versions cost O(changes), not O(size).
  static bool shares_storage(const node* a, const node* b) {
    if (a == b) return true;
    if (a == nullptr || b == nullptr) return false;
    return a->blk != nullptr && a->blk == b->blk && is_chunk_leaf(a) &&
           is_chunk_leaf(b);
  }

  // --------------------------------------------------- chunk construction --

  // In-order copy of every entry under t (borrowed) into out via placement
  // new, advancing i. Used to fill freshly allocated flat leaf blocks (the
  // coded layout collects into a vector instead; see collect_entries).
  static void write_entries(const node* t, entry_t* out, size_t& i) {
    if (t == nullptr) return;
    write_entries(t->left, out, i);
    if (is_chunk(t)) {
      const entry_t* es = t->blk->entries();
      for (uint32_t j = 0; j < t->blk->count; j++) new (&out[i++]) entry_t(es[j]);
    } else {
      new (&out[i++]) entry_t(t->key, t->value);
    }
    write_entries(t->right, out, i);
  }

  // In-order append of every entry under t (borrowed) onto out; the
  // layout-generic sibling of write_entries.
  static void collect_entries(const node* t, std::vector<entry_t>& out) {
    if (t == nullptr) return;
    collect_entries(t->left, out);
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      for (size_t j = 0; j < bv.size(); j++) out.push_back(es[j]);
    } else {
      out.emplace_back(t->key, t->value);
    }
    collect_entries(t->right, out);
  }

  // A fresh leaf-chunk node over es[0, n), 1 <= n <= kMaxLeafBlock. The
  // store's build() encodes per the Entry's layout (flat copy / front-coded).
  static node* make_chunk_leaf(const entry_t* es, size_t n) {
    return NM::make_chunk(lstore::build(es, static_cast<uint32_t>(n)));
  }

  // Sequential balanced build from sorted unique entries. With blocking on,
  // leaves are chunks and the left recursion takes whole blocks so most
  // blocks come out full (the space experiments depend on this density).
  static node* build_sorted_seq(const entry_t* es, size_t n) {
    if (n == 0) return nullptr;
    size_t B = leaf_block_size();
    if (B >= 1 && n <= B) return make_chunk_leaf(es, n);
    size_t mid = build_pivot(n, B);
    node* m = make_single(es[mid].first, es[mid].second);
    node* l = build_sorted_seq(es, mid);
    node* r = build_sorted_seq(es + mid + 1, n - mid - 1);
    return join(l, m, r);
  }

  // Pivot index for balanced construction: plain halving unblocked; with
  // blocking, the left side gets a whole number of full blocks.
  static size_t build_pivot(size_t n, size_t B) {
    if (B < 1) return n / 2;
    size_t nb = (n + B - 1) / B;
    size_t mid = (nb / 2) * B;
    if (mid == 0 || mid >= n) mid = n / 2;
    return mid;
  }

  // Reassemble l ++ es[a, b) ++ r into one owned tree (consumes l and r,
  // borrows es). The workhorse of every "open up a chunk" path.
  static node* rebuild(node* l, const entry_t* es, size_t a, size_t b, node* r) {
    node* mid = b > a ? build_sorted_seq(es + a, b - a) : nullptr;
    return join2(join2(l, mid), r);
  }

  // An O(1) leaf node sharing t's (sealed, immutable) block — used when a
  // range bound covers the whole block, so extraction shares storage with
  // the source exactly like copy_node does.
  static node* share_block(const node* t) {
    return NM::make_chunk(lstore::retain(t->blk));
  }

  // JOIN(l, m, r): the single balancing primitive everything is built from.
  // Consumes all three owned references; max(l) < m->key < min(r); m is a
  // singleton. Results of at most leaf_block_size() entries are re-packed
  // into one flat chunk — this is where blocks are (re)formed.
  static node* join(node* l, node* m, node* r) {
    size_t B = leaf_block_size();
    if (B >= 1) {
      size_t total = size(l) + 1 + size(r);
      if (total <= B) return pack_chunk(l, m, r);
    }
    return BO::node_join(l, m, r);
  }

  // Flatten l ++ m ++ r (all owned, m singleton) into one leaf chunk. Flat
  // blocks are filled in place; coded blocks encode from a collected run.
  static node* pack_chunk(node* l, node* m, node* r) {
    uint32_t total = static_cast<uint32_t>(size(l) + 1 + size(r));
    node* c;
    if constexpr (NM::flat_layout) {
      lblock* b = lstore::allocate(total);
      entry_t* out = b->entries();
      size_t i = 0;
      write_entries(l, out, i);
      new (&out[i++]) entry_t(m->key, m->value);
      write_entries(r, out, i);
      lstore::seal(b);
      c = NM::make_chunk(b);
    } else {
      std::vector<entry_t> tmp;
      tmp.reserve(total);
      collect_entries(l, tmp);
      tmp.emplace_back(m->key, m->value);
      collect_entries(r, tmp);
      c = NM::make_chunk(lstore::build(tmp.data(), total));
    }
    dec(l);
    dec(m);
    dec(r);
    return c;
  }

  // Decompose an owned tree into (left, singleton middle, right). For chunk
  // nodes the block is opened around its middle entry; the halves re-pack
  // into smaller blocks via join. Generic algorithms (union, filter, ...)
  // rely on this to stay oblivious of the leaf layout.
  static void expose_own(node* t, node*& l, node*& m, node*& r) {
    if (!is_chunk(t)) {
      NM::expose_own(t, l, m, r);
      return;
    }
    auto bv = NM::read_block(t->blk);
    const entry_t* es = bv.data();
    size_t c = bv.size();
    size_t j = c / 2;
    node* cl = inc(t->left);
    node* cr = inc(t->right);
    m = make_single(es[j].first, es[j].second);
    l = rebuild(cl, es, 0, j, nullptr);
    r = rebuild(nullptr, es, j + 1, c, cr);
    dec(t);  // after the copies: a flat view's es points into t's block
  }

  // ------------------------------------------------------ split / join2 --

  struct split_t {
    node* left = nullptr;
    node* mid = nullptr;  // singleton node holding k's entry, or null
    node* right = nullptr;
  };

  // SPLIT(t, k): partition into keys < k, the entry at k (if present, as an
  // owned singleton), and keys > k. Consumes t. O(log n + B).
  static split_t split(node* t, const K& k) {
    if (t == nullptr) return {};
    if (is_chunk(t)) return split_chunk(t, k);
    node *l, *m, *r;
    NM::expose_own(t, l, m, r);
    if (less(k, m->key)) {
      split_t s = split(l, k);
      s.right = join(s.right, m, r);
      return s;
    }
    if (less(m->key, k)) {
      split_t s = split(r, k);
      s.left = join(l, m, s.left);
      return s;
    }
    return {l, m, r};
  }

  static split_t split_chunk(node* t, const K& k) {
    auto bv = NM::read_block(t->blk);
    const entry_t* es = bv.data();
    size_t c = bv.size();
    node* cl = inc(t->left);
    node* cr = inc(t->right);
    split_t s;
    if (less(k, es[0].first)) {
      split_t sub = split(cl, k);
      s.left = sub.left;
      s.mid = sub.mid;
      s.right = rebuild(sub.right, es, 0, c, cr);
    } else if (less(es[c - 1].first, k)) {
      split_t sub = split(cr, k);
      s.right = sub.right;
      s.mid = sub.mid;
      s.left = rebuild(cl, es, 0, c, sub.left);
    } else {
      size_t pos = lower_idx(es, c, k);
      bool hit = pos < c && !less(k, es[pos].first);
      s.left = rebuild(cl, es, 0, pos, nullptr);
      if (hit) {
        s.mid = make_single(es[pos].first, es[pos].second);
        s.right = rebuild(nullptr, es, pos + 1, c, cr);
      } else {
        s.right = rebuild(nullptr, es, pos, c, cr);
      }
    }
    dec(t);
    return s;
  }

  // Remove and return the last (maximum) entry: (rest, last-as-singleton).
  static std::pair<node*, node*> split_last(node* t) {
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      node* cl = inc(t->left);
      node* cr = inc(t->right);
      if (cr != nullptr) {
        auto [rest, last] = split_last(cr);
        node* whole = rebuild(cl, es, 0, c, rest);
        dec(t);
        return {whole, last};
      }
      node* last = make_single(es[c - 1].first, es[c - 1].second);
      node* rest = rebuild(cl, es, 0, c - 1, nullptr);
      dec(t);
      return {rest, last};
    }
    node *l, *m, *r;
    NM::expose_own(t, l, m, r);
    if (r == nullptr) return {l, m};
    auto [rest, last] = split_last(r);
    return {join(l, m, rest), last};
  }

  // JOIN2(l, r): concatenation without a middle entry; max(l) < min(r).
  static node* join2(node* l, node* r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    auto [rest, last] = split_last(l);
    return join(rest, last, r);
  }

  // --------------------------------------------------- insert / delete --

  // INSERT with a combine function: if k is already present the stored
  // value becomes comb(old, v). Consumes t. O(log n + B).
  template <typename Comb>
  static node* insert(node* t, const K& k, const V& v, const Comb& comb) {
    if (t == nullptr) {
      if (leaf_block_size() >= 1) {
        entry_t e(k, v);
        return make_chunk_leaf(&e, 1);
      }
      return make_single(k, v);
    }
    if (is_chunk_leaf(t)) return chunk_leaf_insert(t, k, v, comb);
    node *l, *m, *r;
    expose_own(t, l, m, r);
    if (less(k, m->key)) return join(insert(l, k, v, comb), m, r);
    if (less(m->key, k)) return join(l, m, insert(r, k, v, comb));
    m->value = comb(m->value, v);
    return join(l, m, r);
  }

  // Plain insert: a later value replaces an earlier one.
  static node* insert(node* t, const K& k, const V& v) {
    return insert(t, k, v, [](const V&, const V& nv) { return nv; });
  }

  template <typename Comb>
  static node* chunk_leaf_insert(node* t, const K& k, const V& v, const Comb& comb) {
    auto bv = NM::read_block(t->blk);
    const entry_t* es = bv.data();
    size_t c = bv.size();
    size_t pos = lower_idx(es, c, k);
    bool hit = pos < c && !less(k, es[pos].first);
    size_t nc = hit ? c : c + 1;
    size_t B = leaf_block_size();
    if constexpr (NM::flat_layout) {
      if (B >= 1 && nc <= B) {
        // Block-at-a-time rebuild: one new block, no tree surgery.
        lblock* nb = lstore::allocate(static_cast<uint32_t>(nc));
        entry_t* out = nb->entries();
        size_t i = 0;
        for (; i < pos; i++) new (&out[i]) entry_t(es[i]);
        if (hit) {
          new (&out[i++]) entry_t(k, comb(es[pos].second, v));
        } else {
          new (&out[i++]) entry_t(k, v);
        }
        for (size_t j = pos + (hit ? 1 : 0); j < c; j++) new (&out[i++]) entry_t(es[j]);
        lstore::seal(nb);
        node* nn = NM::make_chunk(nb);
        dec(t);
        return nn;
      }
    }
    // Coded blocks, overflow, or blocking now disabled: materialize and
    // rebuild — build_sorted_seq re-encodes one block when nc <= B and
    // splits into correctly sized blocks (or plain nodes) otherwise.
    std::vector<entry_t> tmp;
    tmp.reserve(nc);
    for (size_t i = 0; i < pos; i++) tmp.push_back(es[i]);
    if (hit) {
      tmp.emplace_back(k, comb(es[pos].second, v));
    } else {
      tmp.emplace_back(k, v);
    }
    for (size_t j = pos + (hit ? 1 : 0); j < c; j++) tmp.push_back(es[j]);
    node* nn = build_sorted_seq(tmp.data(), tmp.size());
    dec(t);
    return nn;
  }

  static node* remove(node* t, const K& k) {
    if (t == nullptr) return nullptr;
    if (is_chunk_leaf(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      size_t pos = lower_idx(es, c, k);
      if (pos == c || less(k, es[pos].first)) return t;  // absent: unchanged
      if (c == 1) {
        dec(t);
        return nullptr;
      }
      size_t B = leaf_block_size();
      node* nn = nullptr;
      bool direct = false;
      if constexpr (NM::flat_layout) {
        if (B >= 1 && c - 1 <= B) {
          lblock* nb = lstore::allocate(static_cast<uint32_t>(c - 1));
          entry_t* out = nb->entries();
          size_t i = 0;
          for (size_t j = 0; j < c; j++) {
            if (j != pos) new (&out[i++]) entry_t(es[j]);
          }
          lstore::seal(nb);
          nn = NM::make_chunk(nb);
          direct = true;
        }
      }
      if (!direct) {
        std::vector<entry_t> tmp;
        tmp.reserve(c - 1);
        for (size_t j = 0; j < c; j++) {
          if (j != pos) tmp.push_back(es[j]);
        }
        nn = build_sorted_seq(tmp.data(), tmp.size());
      }
      dec(t);
      return nn;
    }
    node *l, *m, *r;
    expose_own(t, l, m, r);
    if (less(k, m->key)) return join(remove(l, k), m, r);
    if (less(m->key, k)) return join(l, m, remove(r, k));
    dec(m);
    return join2(l, r);
  }

  // ------------------------------------------------------------ search --

  // Point lookup. Key is heterogeneous: string-keyed maps accept anything
  // comparable through Entry::comp (string_view, const char*) without
  // materializing a std::string.
  template <typename Key>
  static std::optional<V> find(const node* t, const Key& k) {
    while (t != nullptr) {
      if (is_chunk(t)) {
        const lblock* b = t->blk;
        bool eq = false;
        size_t pos = blk_lower(b, k, &eq);
        if (eq) return blk_value(b, pos);
        if (pos == 0) {
          t = t->left;
          continue;
        }
        if (pos == b->count) {
          t = t->right;
          continue;
        }
        return std::nullopt;  // k falls strictly between two block entries
      }
      if (less(k, t->key)) {
        t = t->left;
      } else if (less(t->key, k)) {
        t = t->right;
      } else {
        return t->value;
      }
    }
    return std::nullopt;
  }

  template <typename Key>
  static bool contains(const node* t, const Key& k) { return find(t, k).has_value(); }

  static std::optional<entry_t> first_entry(const node* t) {
    if (t == nullptr) return std::nullopt;
    while (t->left != nullptr) t = t->left;
    if (is_chunk(t)) return blk_entry(t->blk, 0);
    return entry_t(t->key, t->value);
  }

  static std::optional<entry_t> last_entry(const node* t) {
    if (t == nullptr) return std::nullopt;
    while (t->right != nullptr) t = t->right;
    if (is_chunk(t)) return blk_entry(t->blk, t->blk->count - 1);
    return entry_t(t->key, t->value);
  }

  // Greatest entry with key < k (the paper's `previous`).
  static std::optional<entry_t> previous_entry(const node* t, const K& k) {
    std::optional<entry_t> best;
    while (t != nullptr) {
      if (is_chunk(t)) {
        const lblock* b = t->blk;
        size_t c = b->count;
        size_t pos = blk_lower(b, k, nullptr);  // entries [0, pos) are < k
        if (pos == 0) {
          t = t->left;
          continue;
        }
        best = blk_entry(b, pos - 1);
        if (pos < c) return best;  // everything further right is >= k
        t = t->right;
        continue;
      }
      if (less(t->key, k)) {
        best = entry_t(t->key, t->value);
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return best;
  }

  // Least entry with key > k (the paper's `next`).
  static std::optional<entry_t> next_entry(const node* t, const K& k) {
    std::optional<entry_t> best;
    while (t != nullptr) {
      if (is_chunk(t)) {
        const lblock* b = t->blk;
        size_t c = b->count;
        size_t pos = blk_upper(b, k);  // entries [pos, c) are > k
        if (pos == c) {
          t = t->right;
          continue;
        }
        best = blk_entry(b, pos);
        if (pos > 0) return best;  // everything further left is <= k
        t = t->left;
        continue;
      }
      if (less(k, t->key)) {
        best = entry_t(t->key, t->value);
        t = t->left;
      } else {
        t = t->right;
      }
    }
    return best;
  }

  // ---------------------------------------------------- order statistics --

  // Number of entries with key < k.
  static size_t rank(const node* t, const K& k) {
    size_t acc = 0;
    while (t != nullptr) {
      if (is_chunk(t)) {
        const lblock* b = t->blk;
        size_t c = b->count;
        size_t pos = blk_lower(b, k, nullptr);
        if (pos == 0) {
          t = t->left;
          continue;
        }
        acc += size(t->left) + pos;
        if (pos < c) return acc;
        t = t->right;
        continue;
      }
      if (less(t->key, k)) {
        acc += size(t->left) + 1;
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return acc;
  }

  // Number of entries with key <= k (one descent).
  static size_t rank_leq(const node* t, const K& k) {
    size_t acc = 0;
    while (t != nullptr) {
      if (is_chunk(t)) {
        const lblock* b = t->blk;
        size_t c = b->count;
        size_t pos = blk_upper(b, k);
        if (pos == 0) {
          t = t->left;
          continue;
        }
        acc += size(t->left) + pos;
        if (pos < c) return acc;
        t = t->right;
        continue;
      }
      if (!less(k, t->key)) {
        acc += size(t->left) + 1;
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return acc;
  }

  // Number of entries with lo <= key <= hi (null = unbounded): two rank
  // descents. Shared by aug_map::count_range and range_view::size.
  static size_t count_in_range(const node* t, const K* lo, const K* hi) {
    if (t == nullptr) return 0;
    size_t upto_hi = hi != nullptr ? rank_leq(t, *hi) : size(t);
    size_t below_lo = lo != nullptr ? rank(t, *lo) : 0;
    return upto_hi > below_lo ? upto_hi - below_lo : 0;
  }

  // The i-th entry in key order (0-based); nullopt if i >= size.
  static std::optional<entry_t> select(const node* t, size_t i) {
    while (t != nullptr) {
      size_t ls = size(t->left);
      size_t c = cnt(t);
      if (i < ls) {
        t = t->left;
      } else if (i < ls + c) {
        if (is_chunk(t)) return blk_entry(t->blk, i - ls);
        return entry_t(t->key, t->value);
      } else {
        i -= ls + c;
        t = t->right;
      }
    }
    return std::nullopt;
  }

  // --------------------------------------------------- range extraction --

  // All entries with key <= k (the paper's upTo). Borrows t, returns an
  // owned tree that shares whole subtrees with t — O(log n) new nodes plus
  // at most one re-packed boundary block.
  static node* take_leq(const node* t, const K& k) {
    if (t == nullptr) return nullptr;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(k, es[0].first)) return take_leq(t->left, k);
      size_t pos = upper_idx(es, c, k);  // entries [0, pos) are <= k
      if (pos == c) {
        return join2(join2(inc(t->left), share_block(t)), take_leq(t->right, k));
      }
      return rebuild(inc(t->left), es, 0, pos, nullptr);
    }
    if (less(k, t->key)) return take_leq(t->left, k);
    return join(inc(t->left), make_single(t->key, t->value),
                take_leq(t->right, k));
  }

  // All entries with key >= k (the paper's downTo).
  static node* take_geq(const node* t, const K& k) {
    if (t == nullptr) return nullptr;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(es[c - 1].first, k)) return take_geq(t->right, k);
      size_t pos = lower_idx(es, c, k);  // entries [pos, c) are >= k
      if (pos == 0) {
        return join2(join2(take_geq(t->left, k), share_block(t)), inc(t->right));
      }
      return rebuild(nullptr, es, pos, c, inc(t->right));
    }
    if (less(t->key, k)) return take_geq(t->right, k);
    return join(take_geq(t->left, k), make_single(t->key, t->value),
                inc(t->right));
  }

  // All entries with lo <= key <= hi. Borrows t.
  static node* range_copy(const node* t, const K& lo, const K& hi) {
    if (t == nullptr) return nullptr;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      size_t c = bv.size();
      if (less(es[c - 1].first, lo)) return range_copy(t->right, lo, hi);
      if (less(hi, es[0].first)) return range_copy(t->left, lo, hi);
      size_t i = lower_idx(es, c, lo);
      size_t j = upper_idx(es, c, hi);
      if (j < i) return nullptr;  // lo > hi can straddle a block: empty range
      node* l = i == 0 ? take_geq(t->left, lo) : nullptr;
      node* r = j == c ? take_leq(t->right, hi) : nullptr;
      if (i == 0 && j == c) return join2(join2(l, share_block(t)), r);
      return rebuild(l, es, i, j, r);
    }
    if (less(t->key, lo)) return range_copy(t->right, lo, hi);
    if (less(hi, t->key)) return range_copy(t->left, lo, hi);
    return join(take_geq(t->left, lo), make_single(t->key, t->value),
                take_leq(t->right, hi));
  }

  // ---------------------------------------------------------- validation --

  // Full structural validation: size fields, key ordering, chunk-node
  // integrity, cached augmented values (when A is equality-comparable), and
  // — for trees with no chunk nodes — the balance-scheme invariant. The
  // scheme invariants are defined for unit-weight nodes; a chunk node
  // weighs its whole block, so a blocked tree checks the generalized
  // structure instead (joins still keep depth logarithmic in the number of
  // blocks; the differential fuzz sweeps verify semantics at every B).
  static bool check_valid(const node* t) {
    if (!check_chunks(t)) return false;
    if (!check_sizes(t)) return false;
    std::optional<K> prev;
    if (!check_order(t, prev)) return false;
    if constexpr (traits::has_aug && requires(const A& a, const A& b) {
                    { a == b } -> std::convertible_to<bool>;
                  }) {
      if (!check_aug(t)) return false;
    }
    if (!contains_chunk(t) && !BO::check(t)) return false;
    return true;
  }

  static bool contains_chunk(const node* t) {
    if (t == nullptr) return false;
    if (is_chunk(t)) return true;
    return contains_chunk(t->left) || contains_chunk(t->right);
  }

 private:
  static bool check_chunks(const node* t) {
    if (t == nullptr) return true;
    if (is_chunk(t)) {
      const lblock* b = t->blk;
      if (b->ref_cnt.load(std::memory_order_relaxed) == 0) return false;
      if constexpr (NM::flat_layout) {
        if (b->count == 0 || b->count > b->capacity) return false;
        // The node's inline key/value mirror the first block entry.
        if (!NM::keys_equal(t->key, b->entries()[0].first)) return false;
      } else if constexpr (NM::layout == key_layout::front_coded) {
        if (b->count == 0) return false;
        if (!NM::keys_equal(std::string_view(t->key), lstore::first_key(b)))
          return false;
      } else {
        if (b->count == 0) return false;
        if (!NM::keys_equal(t->key, lstore::first_key(b))) return false;
      }
    }
    return check_chunks(t->left) && check_chunks(t->right);
  }

  static bool check_sizes(const node* t) {
    if (t == nullptr) return true;
    if (t->size != cnt(t) + size(t->left) + size(t->right)) return false;
    return check_sizes(t->left) && check_sizes(t->right);
  }

  // prev is an owning copy, not a pointer: for front-coded blocks the
  // decoded view dies at scope exit, so a pointer into it would dangle.
  static bool check_order(const node* t, std::optional<K>& prev) {
    if (t == nullptr) return true;
    if (!check_order(t->left, prev)) return false;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      for (size_t i = 0; i < bv.size(); i++) {
        if (prev.has_value() && !less(*prev, es[i].first)) return false;
        prev = es[i].first;
      }
    } else {
      if (prev.has_value() && !less(*prev, t->key)) return false;
      prev = t->key;
    }
    return check_order(t->right, prev);
  }

  static bool check_aug(const node* t) {
    if (t == nullptr) return true;
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      // Must agree with the stores' fold (seal/build): hinted integer
      // monoids are exact under any grouping, and everything else takes the
      // same grouped fold, so floats compare equal too.
      A block_expect = fold_entries_fast<traits, Entry>(bv.data(), 0, bv.size());
      if (!(t->blk->aug == block_expect)) return false;
    }
    A expect = traits::combine(aug_of(t->left),
                               traits::combine(NM::own_aug(t), aug_of(t->right)));
    if (!(t->aug == expect)) return false;
    return check_aug(t->left) && check_aug(t->right);
  }
};

}  // namespace pam
