// Vectorized aug folds over the entries of sealed leaf blocks.
//
// Sealing a block, checking its cached augmented value, and the partial-
// block boundary cases of aug_left/aug_right/aug_range all reduce a run of
// entries with the Entry's monoid. The grouped fold_entries_assoc
// (entry_traits.h) already breaks the serial dependency chain, but it still
// calls base/combine per entry through the policy. For the ubiquitous
// integer monoids — sum/max/min over 64-bit values, declared via the
// aug_fold_kind hint — the whole reduction is a data-parallel loop over the
// value lanes of the entry array, which AVX2 turns into 4-wide combines
// (sum: add; max/min: compare+blend, sign-biased for unsigned order like the
// in-block search).
//
// Eligibility is deliberately narrow and checked at compile time:
//   * the Entry declares a fold hint (the semantic claim that combine IS the
//     named monoid, base(k, v) == v, and identity() is its neutral element);
//   * val_t and aug_t are the same 64-bit integral type;
//   * the entry array is 16-byte {key, value} slots (flat leaf blocks and
//     materialized block views both qualify).
// Integer sum/max/min are exactly associative AND commutative, so any
// regrouping or lane permutation gives the bit-identical answer — which is
// why seal() and check_aug can disagree on *how* they fold and still agree
// on the value. Float monoids never declare a hint and always take the
// grouped fold, preserving the stores' grouping agreement.
//
// Runtime toggle: PAM_SIMD_FOLD (default on), the ablation knob the
// bench_leaf_encodings fold experiment flips to measure the scalar baseline.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "pam/entry_traits.h"
#include "util/env.h"

namespace pam {

// Runtime toggle for the vectorized block fold. Toggle only while quiescent
// (a process-wide knob read per fold, like simd_search_flag).
inline std::atomic<bool>& simd_fold_flag() {
  static std::atomic<bool> f{env_long("PAM_SIMD_FOLD", 1) != 0};
  return f;
}
inline bool simd_fold_enabled() {
  return simd_fold_flag().load(std::memory_order_relaxed);
}
inline void set_simd_fold_enabled(bool on) { simd_fold_flag().store(on); }

namespace detail {

// May Entry's fold over ET runs take the data-parallel path?
template <typename Entry, typename ET>
inline constexpr bool simd_foldable_v =
    entry_fold_hint_v<Entry> != aug_fold_kind::none &&
    entry_traits<Entry>::has_aug &&
    std::is_integral_v<typename Entry::val_t> &&
    sizeof(typename Entry::val_t) == 8 &&
    std::is_same_v<typename entry_traits<Entry>::aug_t,
                   typename Entry::val_t> &&
    std::is_trivially_copyable_v<ET> && sizeof(ET) == 16;

// The named monoid applied to two values, in the value's native domain.
// u64 arithmetic for sum keeps signed overflow defined (two's-complement
// wrap, the same bits AVX2's add_epi64 produces).
template <typename V, aug_fold_kind KIND>
inline V scalar_op(V a, V b) {
  if constexpr (KIND == aug_fold_kind::sum) {
    return static_cast<V>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
  } else if constexpr (KIND == aug_fold_kind::max) {
    return a > b ? a : b;
  } else {
    return a < b ? a : b;
  }
}

// Monoid fold over the value lanes of es[a, b): 16-byte {key, value} slots,
// values at qword offset 1. Exact for the hinted integer monoids under any
// grouping, so the vector and scalar variants are interchangeable.
template <typename Entry, typename ET>
typename Entry::val_t fold_vals(const ET* es, size_t a, size_t b) {
  using V = typename Entry::val_t;
  constexpr aug_fold_kind kind = entry_fold_hint_v<Entry>;
  const size_t n = b - a;
  const char* base = reinterpret_cast<const char*>(es + a);
  V acc = entry_traits<Entry>::identity();
  size_t i = 0;

#if defined(__AVX2__)
  if (n >= 8) {
    // Unsigned max/min order via the signed compare: bias both sides by
    // 2^63 (sign flip), exactly like avx2_count_less_u64.
    constexpr bool bias_lanes =
        kind != aug_fold_kind::sum && std::is_unsigned_v<V>;
    const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
    auto op4 = [](__m256i x, __m256i y) {
      if constexpr (kind == aug_fold_kind::sum) {
        return _mm256_add_epi64(x, y);
      } else if constexpr (kind == aug_fold_kind::max) {
        return _mm256_blendv_epi8(x, y, _mm256_cmpgt_epi64(y, x));
      } else {
        return _mm256_blendv_epi8(x, y, _mm256_cmpgt_epi64(x, y));
      }
    };
    uint64_t init_bits = static_cast<uint64_t>(acc);
    if constexpr (bias_lanes) init_bits ^= 1ull << 63;
    __m256i vacc = _mm256_set1_epi64x(static_cast<long long>(init_bits));
    for (; i + 4 <= n; i += 4) {
      // Two entry loads merge their value qwords: [v_i v_{i+2} v_{i+1}
      // v_{i+3}] — permuted, which a commutative monoid allows.
      __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + i * sizeof(ET)));
      __m256i y = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + (i + 2) * sizeof(ET)));
      __m256i vals = _mm256_unpackhi_epi64(x, y);
      if constexpr (bias_lanes) vals = _mm256_xor_si256(vals, bias);
      vacc = op4(vacc, vals);
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vacc);
    for (uint64_t lane : lanes) {
      if constexpr (bias_lanes) lane ^= 1ull << 63;
      acc = scalar_op<V, kind>(acc, static_cast<V>(lane));
    }
  }
#endif
  for (; i < n; i++) {
    V v;
    std::memcpy(&v, base + i * sizeof(ET) + sizeof(uint64_t), sizeof(v));
    acc = scalar_op<V, kind>(acc, v);
  }
  return acc;
}

}  // namespace detail

// The fold every block-sealing and block-boundary site calls: data-parallel
// over value lanes when the Entry's hint and types allow it and the runtime
// knob is on, the grouped associativity-only fold otherwise. For hinted
// integer monoids both paths are bit-identical, so the knob may flip
// between a block's seal and its later audits.
template <typename Traits, typename Entry, typename ET>
typename Traits::aug_t fold_entries_fast(const ET* es, size_t a, size_t b) {
  if constexpr (detail::simd_foldable_v<Entry, ET>) {
    if (b > a && simd_fold_enabled()) {
      return detail::fold_vals<Entry>(es, a, b);
    }
  }
  return fold_entries_assoc<Traits>(es, a, b);
}

}  // namespace pam
