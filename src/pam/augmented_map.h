// The public PAM map types.
//
//   aug_map<Entry, Balance>   an augmented ordered map (paper Section 3)
//   pam_map<Entry, Balance>   an ordered map without augmentation
//   pam_set<K, Less, Balance> an ordered set
//
// An Entry policy describes the map type exactly as in the paper's Figure 3:
//
//   struct entry {
//     using key_t = ...;                         // K
//     using val_t = ...;                         // V
//     static bool comp(key_t a, key_t b);        // <, total order on keys
//     // augmented maps additionally provide:
//     using aug_t = ...;                         // A
//     static aug_t identity();                   // I
//     static aug_t base(key_t k, val_t v);       // g
//     static aug_t combine(aug_t a, aug_t b);    // f (associative)
//   };
//
// Maps are immutable values backed by shared, refcounted functional trees:
// copying a map is O(1), and every "update" (insert, union, filter, ...)
// returns a new map while all previously-obtained maps remain valid — this
// is the persistence the paper's range-tree and inverted-index applications
// rely on. The static functions take their map arguments *by value*: pass a
// copy to keep the input alive, or std::move it to let the library recycle
// nodes in place (the refcount==1 reuse optimization).
//
// Maps are also C++ forward ranges: begin()/end() iterate in key order
// lazily, view(lo, hi)/view_all() give non-materializing range views, and
// root_cursor() offers read-only structural traversal (see pam/iterator.h).
//
// Thread safety: any number of threads may run read-only queries on (their
// copies of) maps concurrently, and bulk operations internally use all
// workers. Distinct map handles may be updated from distinct threads; a
// single handle must not be mutated concurrently (wrap it in snapshot_box
// for the shared-instance pattern of paper §4 "Concurrency").
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <utility>
#include <vector>

#include "pam/aug_ops.h"
#include "pam/balance/weight_balanced.h"
#include "pam/diff.h"
#include "pam/iterator.h"

namespace pam {

// Byte-stream codec for maps (pam/serialize.h); befriended so it can walk
// roots and rebuild maps without widening the public node surface.
template <typename Map>
struct map_codec;

template <typename Entry, typename Balance = weight_balanced>
class aug_map {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename ops::A;
  using entry_t = std::pair<K, V>;
  using entry_policy = Entry;
  using balance_policy = Balance;
  using const_iterator = map_iterator<Entry, Balance>;
  using iterator = const_iterator;
  using view_type = range_view<Entry, Balance>;
  using cursor = tree_cursor<Entry, Balance>;

  static constexpr bool has_aug = ops::traits::has_aug;

  // ------------------------------------------------- lifecycle (O(1)) ----

  aug_map() = default;

  aug_map(const aug_map& o) : root_(ops::inc(o.root_)) {}

  aug_map(aug_map&& o) noexcept : root_(o.root_) { o.root_ = nullptr; }

  aug_map& operator=(const aug_map& o) {
    if (this != &o) {
      node* old = root_;
      root_ = ops::inc(o.root_);
      ops::dec(old);
    }
    return *this;
  }

  aug_map& operator=(aug_map&& o) noexcept {
    std::swap(root_, o.root_);
    return *this;
  }

  ~aug_map() { ops::dec(root_); }

  // ------------------------------------------------------ construction ----

  // Parallel build from (key, value) pairs; duplicate keys are folded
  // left-to-right with comb (default: the last value wins).
  explicit aug_map(std::vector<entry_t> entries)
      : root_(ops::build(std::move(entries))) {}

  template <typename Comb>
  aug_map(std::vector<entry_t> entries, const Comb& comb)
      : root_(ops::build(std::move(entries), comb)) {}

  aug_map(std::initializer_list<entry_t> entries)
      : aug_map(std::vector<entry_t>(entries)) {}

  static aug_map singleton(const K& k, const V& v) {
    return aug_map(ops::make_single(k, v));
  }

  // Balanced O(n) construction from entries that are already sorted by key
  // and duplicate-free (skips the sort + fold of the vector constructor).
  static aug_map from_sorted(const std::vector<entry_t>& entries) {
    return aug_map(ops::from_sorted_unique(entries.data(), entries.size()));
  }

  // --------------------------------------------------------- observers ----

  size_t size() const { return ops::size(root_); }
  bool empty() const { return root_ == nullptr; }

  // Heterogeneous: any Key the entry policy can compare against works —
  // string-keyed maps look up by std::string_view with zero materialization.
  template <typename Key = K>
  std::optional<V> find(const Key& k) const {
    return ops::find(root_, k);
  }
  template <typename Key = K>
  bool contains(const Key& k) const {
    return ops::contains(root_, k);
  }

  std::optional<entry_t> first() const { return ops::first_entry(root_); }
  std::optional<entry_t> last() const { return ops::last_entry(root_); }

  // Greatest entry with key strictly less than k.
  std::optional<entry_t> previous(const K& k) const {
    return ops::previous_entry(root_, k);
  }
  // Least entry with key strictly greater than k.
  std::optional<entry_t> next(const K& k) const {
    return ops::next_entry(root_, k);
  }

  // Number of entries with key < k.
  size_t rank(const K& k) const { return ops::rank(root_, k); }
  // The i-th entry in key order (0-based).
  std::optional<entry_t> select(size_t i) const { return ops::select(root_, i); }

  // -------------------------------------- persistent functional updates ----

  // All of these return a new map; inputs passed by value (copy to keep,
  // move to allow in-place node reuse).

  template <typename Comb>
  static aug_map insert(aug_map m, const K& k, const V& v, const Comb& comb) {
    return aug_map(ops::insert(m.release(), k, v, comb));
  }
  static aug_map insert(aug_map m, const K& k, const V& v) {
    return aug_map(ops::insert(m.release(), k, v));
  }

  static aug_map remove(aug_map m, const K& k) {
    return aug_map(ops::remove(m.release(), k));
  }

  template <typename Comb>
  static aug_map map_union(aug_map a, aug_map b, const Comb& comb) {
    return aug_map(ops::union_(a.release(), b.release(), comb));
  }
  static aug_map map_union(aug_map a, aug_map b) {
    return aug_map(ops::union_(a.release(), b.release()));
  }

  template <typename Comb>
  static aug_map map_intersect(aug_map a, aug_map b, const Comb& comb) {
    return aug_map(ops::intersect(a.release(), b.release(), comb));
  }

  static aug_map map_difference(aug_map a, aug_map b) {
    return aug_map(ops::difference(a.release(), b.release()));
  }

  template <typename Pred>  // pred(key, value) -> bool
  static aug_map filter(aug_map m, const Pred& pred) {
    return aug_map(ops::filter(m.release(), pred));
  }

  template <typename Comb>
  static aug_map multi_insert(aug_map m, std::vector<entry_t> updates,
                              const Comb& comb) {
    return aug_map(ops::multi_insert(m.release(), std::move(updates), comb));
  }
  static aug_map multi_insert(aug_map m, std::vector<entry_t> updates) {
    return aug_map(ops::multi_insert(m.release(), std::move(updates)));
  }

  static aug_map multi_delete(aug_map m, std::vector<K> keys) {
    return aug_map(ops::multi_delete(m.release(), std::move(keys)));
  }

  // Parallel batch lookup: result[i] is the value at keys[i], if present.
  std::vector<std::optional<V>> multi_find(const std::vector<K>& keys) const {
    std::vector<std::optional<V>> out(keys.size());
    ops::multi_find(root_, keys.data(), keys.size(), out.data());
    return out;
  }

  // A new map with the same keys and value' = f(key, value) (the paper's
  // map function). Non-consuming; parallel; augmentation recomputed.
  template <typename F>
  static aug_map map_values(const aug_map& m, const F& f) {
    return aug_map(ops::map_values(m.root_, f));
  }

  struct split_result {
    aug_map left;
    std::optional<V> value;  // value at the split key, if present
    aug_map right;
  };

  static split_result split(aug_map m, const K& k) {
    auto s = ops::split(m.release(), k);
    split_result out;
    out.left = aug_map(s.left);
    out.right = aug_map(s.right);
    if (s.mid != nullptr) {
      out.value = s.mid->value;
      ops::dec(s.mid);
    }
    return out;
  }

  // Concatenate two maps with max(a) < min(b) (the paper's join2).
  static aug_map concat(aug_map a, aug_map b) {
    return aug_map(ops::join2(a.release(), b.release()));
  }

  // ------------------------------------------------------ version diffing --
  // Structural diff between two versions (pam/diff.h): pointer-shared
  // subtrees and shared leaf blocks prune in O(1), so the cost is
  // O(d log(n/d + 1)) for d changed entries when `from` and `to` descend
  // from one another by path-copying updates.

  using diff_ops_t = diff_ops<Entry, Balance>;
  using diff_type = map_diff<aug_map>;
  using change_t = map_change<aug_map>;

  // Partition the difference: `before` = entries of `from` removed or
  // overwritten in `to` (old values); `after` = entries of `to` added or
  // changed (new values). Non-consuming; results share subtrees with the
  // inputs wherever a whole region is one-sided.
  static diff_type diff(const aug_map& from, const aug_map& to) {
    auto r = diff_ops_t::diff(ops::inc(from.root_), ops::inc(to.root_));
    diff_type d;
    d.before = aug_map(r.before);
    d.after = aug_map(r.after);
    return d;
  }

  // Fold an arbitrary monoid (g2(k, v) per entry, associative f2, identity
  // id) over exactly the changed regions, without materializing the diff:
  // returns {fold of the before-side, fold of the after-side}. For a
  // group-like aggregate this is the whole incremental-maintenance story:
  // new_total = old_total - fold(before) + fold(after), in O(d log(n/d+1)).
  template <typename B, typename G2, typename F2>
  static std::pair<B, B> diff_fold(const aug_map& from, const aug_map& to,
                                   const G2& g2, const F2& f2, const B& id) {
    return diff_ops_t::diff_fold(ops::inc(from.root_), ops::inc(to.root_), g2,
                                 f2, id);
  }

  // The merged, key-ordered change stream between two versions.
  static std::vector<change_t> diff_changes(const aug_map& from,
                                            const aug_map& to) {
    return diff(from, to).changes();
  }

  // Do two handles denote the same tree? O(1). Two versions with equal
  // roots are identical; map-valued Entry policies use this as `val_equal`
  // so outer-map diffs prune unchanged inner maps without descending.
  bool same_root(const aug_map& o) const { return root_ == o.root_; }

  // ----------------------------------------------------- range extraction --

  // Entries with key <= k (paper upTo). Non-consuming; O(log n) new nodes.
  static aug_map up_to(const aug_map& m, const K& k) {
    return aug_map(ops::take_leq(m.root_, k));
  }
  // Entries with key >= k (paper downTo).
  static aug_map down_to(const aug_map& m, const K& k) {
    return aug_map(ops::take_geq(m.root_, k));
  }
  // Entries with lo <= key <= hi.
  static aug_map range(const aug_map& m, const K& lo, const K& hi) {
    return aug_map(ops::range_copy(m.root_, lo, hi));
  }

  // ----------------------------------------------------------- lazy views --
  // Non-materializing alternatives to up_to/down_to/range for read paths: a
  // view is an O(1) snapshot of the tree (one refcount bump, zero node
  // allocation) restricted to a key range. It offers size() and aug_val()
  // in O(log n) and iteration / for_each in O(k + log n), and remains valid
  // even if this map handle is reassigned afterwards.

  // Entries with lo <= key <= hi.
  view_type view(const K& lo, const K& hi) const {
    return view_type(root_, lo, hi);
  }
  // The whole map as a view.
  view_type view_all() const {
    return view_type(root_, std::nullopt, std::nullopt);
  }
  // Entries with key <= k (lazy upTo).
  view_type view_up_to(const K& k) const {
    return view_type(root_, std::nullopt, k);
  }
  // Entries with key >= k (lazy downTo).
  view_type view_down_to(const K& k) const {
    return view_type(root_, k, std::nullopt);
  }

  // ------------------------------------------------- augmented queries ----
  // (Only for augmented entries; see paper Figure 1, below the dashed line.)

  // A(m): the augmented value of the whole map. O(1).
  A aug_val() const {
    static_assert(has_aug, "aug_val requires an augmented Entry");
    return ops::aug_val(root_);
  }

  // Augmented value over keys <= k. O(log n).
  A aug_left(const K& k) const {
    static_assert(has_aug, "aug_left requires an augmented Entry");
    return ops::aug_left(root_, k);
  }

  // Augmented value over lo <= key <= hi. O(log n).
  A aug_range(const K& lo, const K& hi) const {
    static_assert(has_aug, "aug_range requires an augmented Entry");
    return ops::aug_range(root_, lo, hi);
  }

  // Pruned filter by a predicate on augmented values; requires
  // h(a) || h(b) == h(f(a, b)). O(k log(n/k + 1)) work for k survivors.
  template <typename Pred>  // pred(aug) -> bool
  static aug_map aug_filter(aug_map m, const Pred& pred) {
    static_assert(has_aug, "aug_filter requires an augmented Entry");
    return aug_map(ops::aug_filter(m.release(), pred));
  }

  // g2-projected f2-sum over [lo, hi]; requires f2(g2(a), g2(b)) == g2(f(a,b)).
  template <typename B, typename G2, typename F2>
  B aug_project(const G2& g2, const F2& f2, const B& id, const K& lo,
                const K& hi) const {
    static_assert(has_aug, "aug_project requires an augmented Entry");
    return ops::template aug_project<G2, F2, B>(root_, g2, f2, id, lo, hi);
  }

  // ------------------------------------------------- bulk read / iterate --

  // In-order forward iteration: O(log n) begin(), amortized O(1) ++, and a
  // {key, value} reference proxy supporting structured bindings, so a map
  // is a range:  for (auto [k, v] : m) ...   Iterators borrow the map and
  // must not outlive this handle (take a view_all() for a self-owning
  // snapshot to iterate).
  const_iterator begin() const { return const_iterator(root_); }
  const_iterator end() const { return const_iterator(); }
  // Iterator to the least entry with key >= k (end() if none). O(log n).
  const_iterator lower_bound(const K& k) const {
    return const_iterator(root_, &k, nullptr);
  }

  // Read-only structural cursor at the root: key/value/aug of each subtree
  // plus left()/right() navigation. The safe replacement for raw node
  // access — used for best-first searches and canonical decompositions.
  cursor root_cursor() const { return cursor(root_); }

  // Parallel g2/f2 fold over all entries (paper mapReduce).
  template <typename B, typename M, typename R>
  B map_reduce(const M& g2, const R& f2, const B& id) const {
    return ops::map_reduce(root_, g2, f2, id);
  }

  // All entries in key order (parallel materialization).
  std::vector<entry_t> entries() const {
    std::vector<entry_t> out(size());
    ops::to_array(root_, out.data());
    return out;
  }

  // Sequential in-order traversal: f(key, value).
  template <typename F>
  void for_each(const F& f) const {
    ops::foreach_inorder(root_, f);
  }

  // All keys / all values, in key order: one parallel projection pass
  // straight out of the tree (no intermediate entry materialization).
  std::vector<K> keys() const {
    std::vector<K> out(size());
    ops::project_to_array(root_, out.data(),
                          [](const K& k, const V&) { return k; });
    return out;
  }
  std::vector<V> values() const {
    std::vector<V> out(size());
    ops::project_to_array(root_, out.data(),
                          [](const K&, const V& v) { return v; });
    return out;
  }

  // Number of entries with lo <= key <= hi, via two rank queries (O(log n)).
  size_t count_range(const K& lo, const K& hi) const {
    return ops::count_in_range(root_, &lo, &hi);
  }

  // ------------------------------------------- in-place conveniences ----
  // Sugar for m = op(std::move(m), ...): updates only this handle; other
  // copies of the old version remain untouched.

  void insert_inplace(const K& k, const V& v) {
    root_ = ops::insert(release(), k, v);
  }
  template <typename Comb>
  void insert_inplace(const K& k, const V& v, const Comb& comb) {
    root_ = ops::insert(release(), k, v, comb);
  }
  void remove_inplace(const K& k) { root_ = ops::remove(release(), k); }

  // ------------------------------------------------------ serialization --
  // Byte-exact snapshot codec (pam/serialize.h): append this map's entries
  // to `out` as a self-framing record stream — sealed leaf blocks travel as
  // raw payloads (flat: one memcpy; front-coded: the encoded region) — and
  // rebuild a map from such bytes. Integrity of the bytes is the caller's
  // contract: the durability layer (src/store/) wraps streams in
  // CRC32C-checked pages, and deserialize throws pam::wire::error on any
  // framing it cannot prove consistent. Rebuilt blocks recompute their
  // augmented values; they are never trusted from the payload.
  void serialize(std::vector<char>& out) const {
    map_codec<aug_map>::serialize(*this, out);
  }
  static aug_map deserialize(const char* data, size_t n) {
    return map_codec<aug_map>::deserialize(data, n);
  }

  // ------------------------------------------------------ introspection --

  // Full structural validation (balance invariant, sizes, order, cached
  // augmented values). Intended for tests.
  bool check_valid() const { return ops::check_valid(root_); }

  // Live node count across all maps of this type (paper Table 4).
  static int64_t used_nodes() { return ops::used_nodes(); }
  // Live leaf-block count / bytes for this Entry type (shared by every
  // balance scheme instantiated over it; zero in the unblocked layout).
  static int64_t used_leaf_blocks() { return ops::used_leaf_blocks(); }
  static int64_t used_leaf_bytes() { return ops::used_leaf_bytes(); }
  // Total live heap bytes across all maps of this type: tree nodes plus
  // leaf-block storage. The space experiments report this per entry.
  static int64_t used_bytes() {
    return used_nodes() * static_cast<int64_t>(sizeof(node)) + used_leaf_bytes();
  }
  static constexpr size_t node_bytes() { return sizeof(node); }
  static const char* balance_name() { return Balance::name; }

 private:
  template <typename M>
  friend struct map_codec;

  explicit aug_map(node* owned_root) : root_(owned_root) {}

  node* release() {
    node* t = root_;
    root_ = nullptr;
    return t;
  }

  node* root_ = nullptr;
};

// An ordered map without augmentation: same Entry policy minus the aug_*
// members. All functions above the dashed line of Figure 1 are available;
// the aug_* family is compiled out.
template <typename Entry, typename Balance = weight_balanced>
using pam_map = aug_map<Entry, Balance>;

// Entry policy for sets.
template <typename K, typename Less = std::less<K>>
struct set_entry {
  using key_t = K;
  using val_t = unit;
  static bool comp(const K& a, const K& b) { return Less()(a, b); }
};

// An ordered set, represented as a map to unit values.
template <typename K, typename Less = std::less<K>, typename Balance = weight_balanced>
class pam_set : public aug_map<set_entry<K, Less>, Balance> {
 public:
  using base = aug_map<set_entry<K, Less>, Balance>;
  using base::base;

  pam_set() = default;
  pam_set(const base& b) : base(b) {}
  pam_set(base&& b) : base(std::move(b)) {}

  explicit pam_set(const std::vector<K>& keys) : base(to_entries(keys)) {}

  static pam_set insert(pam_set s, const K& k) {
    return pam_set(base::insert(std::move(s), k, unit{}));
  }
  void insert_inplace(const K& k) { base::insert_inplace(k, unit{}); }

 private:
  static std::vector<typename base::entry_t> to_entries(const std::vector<K>& keys) {
    std::vector<typename base::entry_t> es;
    es.reserve(keys.size());
    for (const K& k : keys) es.emplace_back(k, unit{});
    return es;
  }
};

}  // namespace pam
