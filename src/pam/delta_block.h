// Delta-coded leaf blocks for integral keys.
//
// A sealed block stores n sorted entries as:
//
//   [ header | key varints | (pad) | value stream ]
//
// The key stream is PaC-tree difference encoding for the fixed-width case:
// varint 0 is the full base key (plain varint for unsigned key types, zigzag
// for signed), and varint i >= 1 is the zigzag encoding of the difference
// key_i - key_{i-1}, computed in the key's unsigned width and sign-extended —
// so ascending runs of nearby keys cost one or two bytes each, and a custom
// (e.g. descending) comparator still round-trips exactly through the
// two's-complement wrap. Integral values are varint-packed into the trailing
// stream the same way (zigzag iff signed); any other trivially copyable
// value type is stored as a raw aligned array at val_off, exactly like the
// flat and front-coded layouts. Against a flat 16-byte {u64, u64} pair slot,
// dense keys with small values collapse to ~2-4 bytes per entry.
//
// Blocks are refcounted and immutable once sealed — the sharing contract of
// the flat leaf_block — and draw from the quarter-stepped byte capacity
// classes of alloc/leaf_pool.h, with larger blocks overflowing to
// individually counted aligned heap allocations. This file is part of the
// sanctioned allocation surface (tools/pam_lint.py).
//
// Keys must be integral (the difference encoding is defined on unsigned
// wrap-around arithmetic); values must be trivially copyable. Both
// constraints carry contracted diagnostics — see the static_asserts in
// delta_store and node_manager (tests/compile_fail/delta_string_key.cpp pins
// the message).
//
// delta_store deliberately mirrors coded_store's whole surface (build /
// payload hooks / retain / release / first_key / decode_all / entry_at /
// lower_idx / upper_idx / accounting) plus value_at, so node_manager,
// tree_ops, the iterator and map_codec dispatch to either store through one
// `lstore` alias and the serializer's kCodedRaw record kind carries both.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/leaf_pool.h"
#include "pam/block_fold.h"
#include "pam/entry_traits.h"
#include "util/thread_annotations.h"

namespace pam {

// LEB128-style varints with zigzag mapping for signed differences. The
// checked decoder is only used on untrusted (deserialized) bytes; in-memory
// blocks are validated once at from_payload and walked unchecked after.
namespace vint {

inline constexpr size_t kMaxLen = 10;  // 64 payload bits / 7 bits per byte

constexpr uint64_t zigzag(int64_t v) {
  return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

constexpr int64_t unzigzag(uint64_t u) {
  return int64_t(u >> 1) ^ -int64_t(u & 1);
}

constexpr size_t length(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

inline char* put(char* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

// Trusted decode: the stream was validated when the block was sealed or
// rebuilt, so no bounds checks on the hot read path.
inline const char* get(const char* p, uint64_t& out) {
  uint64_t v = uint64_t(uint8_t(*p++));
  if (v < 0x80) {
    out = v;
    return p;
  }
  v &= 0x7F;
  for (int shift = 7;; shift += 7) {
    uint64_t byte = uint64_t(uint8_t(*p++));
    v |= (byte & 0x7F) << shift;
    if (byte < 0x80) break;
  }
  out = v;
  return p;
}

// Untrusted decode: nullptr on truncation, on a varint longer than ten
// bytes, or on bits past the 64th — so a corrupted stream can never walk
// the decoder outside the frame or round-trip to different bytes.
inline const char* get_checked(const char* p, const char* end, uint64_t& out) {
  uint64_t v = 0;
  for (size_t i = 0; i < kMaxLen; i++) {
    if (p == end) return nullptr;
    uint64_t byte = uint64_t(uint8_t(*p++));
    if (i == 9 && byte > 0x01) return nullptr;  // overflow past bit 63
    v |= (byte & 0x7F) << (7 * i);
    if (byte < 0x80) {
      // Reject non-canonical zero padding ("overlong" encodings) so every
      // value has exactly one byte representation and payload_bytes stays
      // a pure function of the entries.
      if (byte == 0 && i > 0) return nullptr;
      out = v;
      return p;
    }
  }
  return nullptr;
}

}  // namespace vint

template <typename Entry>
struct delta_block {
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename entry_traits<Entry>::aug_t;
  using entry_t = std::pair<K, V>;

  std::atomic<uint32_t> ref_cnt;
  uint32_t count;
  int32_t cls;       // byte class; kOverflowClass for heap-allocated blocks
  uint32_t bytes;    // exact encoded footprint (accounting for overflow)
  uint32_t val_off;  // byte offset of the value stream from the block start
  [[no_unique_address]] A aug;

  static constexpr int32_t kOverflowClass = -1;

  static constexpr size_t dir_offset() {
    return (sizeof(delta_block) + 3) / 4 * 4;
  }

  // Base of the key varint stream (immediately after the header).
  const char* keys() const {
    return reinterpret_cast<const char*>(this) + dir_offset();
  }
  char* keys() { return reinterpret_cast<char*>(this) + dir_offset(); }

  const char* val_stream() const {
    return reinterpret_cast<const char*>(this) + val_off;
  }
  char* val_stream() { return reinterpret_cast<char*>(this) + val_off; }
};

// Storage and codec for delta-coded blocks of one Entry type: build/seal,
// retain/release, in-block search and decoding, plus live accounting for
// the space experiments (shared by every balance scheme over the Entry).
template <typename Entry>
struct delta_store {
  using block = delta_block<Entry>;
  using K = typename block::K;
  using V = typename block::V;
  using A = typename block::A;
  using entry_t = typename block::entry_t;
  using traits = entry_traits<Entry>;

  static_assert(std::is_integral_v<K>,
                "PAM leaf-layout contract: key_layout::delta requires an "
                "integral key_t (the difference encoding is defined on "
                "unsigned wrap-around arithmetic); string keys must use "
                "key_layout::front_coded");
  static_assert(std::is_trivially_copyable_v<V>,
                "PAM leaf-layout contract: key_layout::delta requires a "
                "trivially copyable val_t (values are stored raw inside "
                "sealed blocks)");
  static_assert(alignof(block) <= alignof(std::max_align_t) &&
                    alignof(V) <= alignof(std::max_align_t),
                "PAM leaf-layout contract: delta block and value alignment "
                "must not exceed max_align_t");

  static constexpr size_t kSlotAlign = alignof(std::max_align_t);

  using UK = std::make_unsigned_t<K>;
  using SK = std::make_signed_t<K>;
  // Integral values ride the varint stream; anything else is a raw array.
  static constexpr bool kPackedVals = std::is_integral_v<V>;
  static constexpr size_t kValAlign = kPackedVals ? 1 : alignof(V);

  // Varint code for key i: the base key whole, then successor differences
  // in the key's unsigned width, sign-extended into zigzag — close keys
  // yield small codes under ascending *or* descending comparators.
  static uint64_t key_code(const entry_t* es, uint32_t i) {
    if (i == 0) {
      if constexpr (std::is_signed_v<K>) {
        return vint::zigzag(int64_t(es[0].first));
      } else {
        return uint64_t(UK(es[0].first));
      }
    }
    UK d = UK(UK(es[i].first) - UK(es[i - 1].first));
    return vint::zigzag(int64_t(SK(d)));
  }

  static uint64_t val_code(const V& v) {
    if constexpr (std::is_signed_v<V>) {
      return vint::zigzag(int64_t(v));
    } else {
      return uint64_t(v);
    }
  }

  static V val_decode(uint64_t u) {
    if constexpr (std::is_signed_v<V>) {
      return static_cast<V>(vint::unzigzag(u));
    } else {
      return static_cast<V>(u);
    }
  }

  // Advance the running key by one decoded delta (entry 0 = the base key).
  static K key_step(UK prev, uint64_t code, uint32_t i) {
    if (i == 0) {
      if constexpr (std::is_signed_v<K>) {
        return static_cast<K>(vint::unzigzag(code));
      } else {
        return static_cast<K>(UK(code));
      }
    }
    return static_cast<K>(UK(prev + UK(vint::unzigzag(code))));
  }

  // Encode n sorted unique entries (1 <= n) into a fresh sealed block.
  static block* build(const entry_t* es, uint32_t n) {
    // Pass 1: stream sizes.
    size_t key_bytes = 0;
    for (uint32_t i = 0; i < n; i++) key_bytes += vint::length(key_code(es, i));
    size_t key_off = block::dir_offset();
    size_t val_off = (key_off + key_bytes + kValAlign - 1) / kValAlign * kValAlign;
    size_t val_bytes;
    if constexpr (kPackedVals) {
      val_bytes = 0;
      for (uint32_t i = 0; i < n; i++) {
        val_bytes += vint::length(val_code(es[i].second));
      }
    } else {
      val_bytes = size_t{n} * sizeof(V);
    }
    size_t total = val_off + val_bytes;

    block* b = allocate(total);
    new (&b->ref_cnt) std::atomic<uint32_t>(1);
    b->count = n;
    b->bytes = static_cast<uint32_t>(total);
    b->val_off = static_cast<uint32_t>(val_off);

    // Pass 2: fill the streams (plus the alignment pad, so the serialized
    // raw region is deterministic).
    char* p = b->keys();
    for (uint32_t i = 0; i < n; i++) p = vint::put(p, key_code(es, i));
    while (p != b->val_stream()) *p++ = 0;
    if constexpr (kPackedVals) {
      for (uint32_t i = 0; i < n; i++) p = vint::put(p, val_code(es[i].second));
    } else {
      V* vs = reinterpret_cast<V*>(b->val_stream());
      for (uint32_t i = 0; i < n; i++) vs[i] = es[i].second;
    }

    if constexpr (traits::has_aug) {
      new (&b->aug) A(fold_entries_fast<traits, Entry>(es, 0, n));
    } else {
      new (&b->aug) A();
    }
    return b;
  }

  // ------------------------------------------------- serialization hooks --
  // A sealed delta block serializes as its raw encoded region — key stream,
  // pad and value stream exactly as laid out in memory, [dir_offset, bytes)
  // — because the encoding is position-independent past the header. The
  // header fields {count, bytes, val_off} travel in the frame; the augmented
  // value is recomputed on rebuild, never trusted from disk.
  static size_t payload_bytes(const block* b) {
    return size_t{b->bytes} - block::dir_offset();
  }

  static void write_payload(const block* b, char* dst) {
    std::memcpy(dst, reinterpret_cast<const char*>(b) + block::dir_offset(),
                payload_bytes(b));
  }

  // Rebuild a sealed block from its encoded region (`region` holds
  // bytes - dir_offset() bytes). Returns nullptr when the framing is
  // internally inconsistent — a truncated or overlong varint, streams that
  // do not consume exactly their regions, a misaligned raw value array — so
  // a decoder can never be walked outside the slot. Key *ordering* is the
  // serializer's check (map_codec re-compares decoded keys); this guards
  // the in-memory decode paths.
  static block* from_payload(const char* region, uint32_t count,
                             uint32_t bytes, uint32_t val_off) {
    const size_t dir_off = block::dir_offset();
    if (count == 0 || size_t{val_off} < dir_off + count || val_off > bytes ||
        val_off % kValAlign != 0) {
      return nullptr;
    }
    if constexpr (!kPackedVals) {
      if (size_t{bytes} - val_off != size_t{count} * sizeof(V)) return nullptr;
    }
    // Walk the key stream: count varints, then only zero padding up to the
    // value offset (and strictly less than one alignment step of it).
    const char* p = region;
    const char* key_end = region + (val_off - dir_off);
    for (uint32_t i = 0; i < count; i++) {
      uint64_t u;
      p = vint::get_checked(p, key_end, u);
      if (p == nullptr) return nullptr;
    }
    if (size_t(key_end - p) >= kValAlign) return nullptr;
    for (; p != key_end; p++) {
      if (*p != 0) return nullptr;
    }
    if constexpr (kPackedVals) {
      const char* val_end = region + (bytes - dir_off);
      for (uint32_t i = 0; i < count; i++) {
        uint64_t u;
        p = vint::get_checked(p, val_end, u);
        if (p == nullptr) return nullptr;
      }
      if (p != val_end) return nullptr;
    }

    block* b = allocate(bytes);
    new (&b->ref_cnt) std::atomic<uint32_t>(1);
    b->count = count;
    b->bytes = bytes;
    b->val_off = val_off;
    std::memcpy(reinterpret_cast<char*>(b) + dir_off, region,
                size_t{bytes} - dir_off);
    if constexpr (traits::has_aug) {
      std::vector<entry_t> es;
      es.reserve(count);
      decode_all(b, es);
      new (&b->aug) A(fold_entries_fast<traits, Entry>(es.data(), 0, count));
    } else {
      new (&b->aug) A();
    }
    return b;
  }

  static block* retain(block* b) {
    b->ref_cnt.fetch_add(1, std::memory_order_relaxed);
    return b;
  }

  static void release(block* b) {
    if (b->ref_cnt.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    b->aug.~A();  // keys are encoded bytes and values trivially copyable
    if (b->cls != block::kOverflowClass) {
      pool(b->cls).deallocate(b);
    } else {
      size_t total = b->bytes;
      ::operator delete(b, std::align_val_t{kSlotAlign});
      table().overflow_blocks.fetch_sub(1, std::memory_order_relaxed);
      table().overflow_bytes.fetch_sub(static_cast<int64_t>(total),
                                       std::memory_order_relaxed);
    }
  }

  // ------------------------------------------------------------- reading --

  // The base key — varint 0 decoded, no chain walk.
  static K first_key(const block* b) {
    uint64_t u;
    vint::get(b->keys(), u);
    return key_step(UK{0}, u, 0);
  }

  static V first_val(const block* b) { return value_at(b, 0); }

  // Value of slot i (walks the packed stream; indexes the raw array).
  static V value_at(const block* b, uint32_t i) {
    if constexpr (kPackedVals) {
      const char* p = b->val_stream();
      uint64_t u = 0;
      for (uint32_t j = 0; j <= i; j++) p = vint::get(p, u);
      return val_decode(u);
    } else {
      return reinterpret_cast<const V*>(b->val_stream())[i];
    }
  }

  // Append all n entries, keys and values materialized, onto out.
  static void decode_all(const block* b, std::vector<entry_t>& out) {
    const char* kp = b->keys();
    UK cur = 0;
    if constexpr (kPackedVals) {
      const char* vp = b->val_stream();
      for (uint32_t i = 0; i < b->count; i++) {
        uint64_t ku, vu;
        kp = vint::get(kp, ku);
        vp = vint::get(vp, vu);
        cur = UK(key_step(cur, ku, i));
        out.emplace_back(static_cast<K>(cur), val_decode(vu));
      }
    } else {
      const V* vs = reinterpret_cast<const V*>(b->val_stream());
      for (uint32_t i = 0; i < b->count; i++) {
        uint64_t ku;
        kp = vint::get(kp, ku);
        cur = UK(key_step(cur, ku, i));
        out.emplace_back(static_cast<K>(cur), vs[i]);
      }
    }
  }

  // Entry i, decoding the delta chain up to i.
  static entry_t entry_at(const block* b, uint32_t i) {
    const char* kp = b->keys();
    UK cur = 0;
    for (uint32_t j = 0; j <= i; j++) {
      uint64_t ku;
      kp = vint::get(kp, ku);
      cur = UK(key_step(cur, ku, j));
    }
    return {static_cast<K>(cur), value_at(b, i)};
  }

  // First slot i with !(key_i < k); *eq reports key_i == k. Incremental
  // decode: each step adds one delta to the running key.
  static uint32_t lower_idx(const block* b, const K& k, bool* eq) {
    const char* kp = b->keys();
    UK cur = 0;
    for (uint32_t i = 0; i < b->count; i++) {
      uint64_t ku;
      kp = vint::get(kp, ku);
      cur = UK(key_step(cur, ku, i));
      K key = static_cast<K>(cur);
      if (!Entry::comp(key, k)) {
        if (eq != nullptr) *eq = !Entry::comp(k, key);
        return i;
      }
    }
    if (eq != nullptr) *eq = false;
    return b->count;
  }

  // First slot i with k < key_i.
  static uint32_t upper_idx(const block* b, const K& k) {
    const char* kp = b->keys();
    UK cur = 0;
    for (uint32_t i = 0; i < b->count; i++) {
      uint64_t ku;
      kp = vint::get(kp, ku);
      cur = UK(key_step(cur, ku, i));
      if (Entry::comp(k, static_cast<K>(cur))) return i;
    }
    return b->count;
  }

  // -------------------------------------------------------- accounting --

  // Live blocks / bytes across all maps of this Entry type (Table 4). Bytes
  // count full slot footprints, the same accounting basis as leaf_store.
  static int64_t used_blocks() {
    int64_t total = table().overflow_blocks.load(std::memory_order_relaxed);
    for (int c = 0; c < kByteClasses; c++) {
      raw_pool* p = table().pools[c].load(std::memory_order_acquire);
      if (p != nullptr) total += p->used();
    }
    return total;
  }

  static int64_t used_bytes() {
    int64_t total = table().overflow_bytes.load(std::memory_order_relaxed);
    for (int c = 0; c < kByteClasses; c++) {
      raw_pool* p = table().pools[c].load(std::memory_order_acquire);
      if (p != nullptr) total += p->used() * static_cast<int64_t>(p->slot_bytes());
    }
    return total;
  }

 private:
  // Pool slot or counted overflow allocation for a `total`-byte block; sets
  // cls (the only header field tied to the allocation).
  static block* allocate(size_t total) {
    int cls = byte_class_of(total);
    block* b;
    if (cls < kByteClasses) {
      b = static_cast<block*>(pool(cls).allocate());
    } else {
      b = static_cast<block*>(
          ::operator new(total, std::align_val_t{kSlotAlign}));
      table().overflow_blocks.fetch_add(1, std::memory_order_relaxed);
      table().overflow_bytes.fetch_add(static_cast<int64_t>(total),
                                       std::memory_order_relaxed);
    }
    b->cls = cls < kByteClasses ? cls : block::kOverflowClass;
    return b;
  }

  struct pool_table {
    // pam-lint: allow(unguarded-mutex) — mu serializes pool *creation*
    // only; the pools themselves are published through the atomics and
    // read lock-free (double-checked init in pool() below), so there is
    // no member for GUARDED_BY to name.
    mutex mu;
    std::array<std::atomic<raw_pool*>, kByteClasses> pools{};
    std::atomic<int64_t> overflow_blocks{0};
    std::atomic<int64_t> overflow_bytes{0};
  };

  static pool_table& table() {
    static pool_table* t = new pool_table();  // immortal
    return *t;
  }

  static raw_pool& pool(int cls) {
    pool_table& t = table();
    raw_pool* p = t.pools[cls].load(std::memory_order_acquire);
    if (p == nullptr) {
      mutex_guard lock(t.mu);
      p = t.pools[cls].load(std::memory_order_relaxed);
      if (p == nullptr) {
        p = new raw_pool(byte_class_slot(cls), kSlotAlign);  // immortal
        t.pools[cls].store(p, std::memory_order_release);
      }
    }
    return *p;
  }
};

}  // namespace pam
