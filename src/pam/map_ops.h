// Parallel bulk algorithms: union / intersect / difference, filter, build,
// multi-insert / multi-delete, mapReduce, and parallel tree <-> array
// conversion. These are the operations the paper parallelizes with
// fork-join over the tree structure (Figure 2); the work/span bounds are
// those of Table 2.
//
// With blocked leaves enabled the bulk operations work block-at-a-time:
// when a recursion bottoms out at two flat leaf blocks the result is a
// plain sorted-array merge into fresh blocks, and the traversal/projection
// passes stream whole blocks instead of chasing per-entry pointers.
//
// The fork-join granularity knob (par_cutoff) lives in parallel/parallel.h
// with the rest of the runtime knob family.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "pam/tree_ops.h"
#include "parallel/merge_sort.h"
#include "parallel/parallel.h"
#include "parallel/sequence_ops.h"

namespace pam {

template <typename Entry, typename Balance>
struct map_ops : tree_ops<Entry, Balance> {
  using TO = tree_ops<Entry, Balance>;
  using NM = typename TO::NM;
  using node = typename TO::node;
  using K = typename TO::K;
  using V = typename TO::V;
  using entry_t = typename TO::entry_t;
  using lblock = typename TO::lblock;
  using lstore = typename TO::lstore;

  using TO::cnt;
  using TO::dec;
  using TO::expose_own;
  using TO::is_chunk;
  using TO::is_chunk_leaf;
  using TO::join;
  using TO::join2;
  using TO::less;
  using TO::make_single;
  using TO::size;
  using TO::split;

  // --------------------------------------------------------- set algebra --

  // UNION(a, b, comb): all keys of either map; a key in both gets
  // comb(value_in_a, value_in_b). Consumes both. Work O(m log(n/m + 1)).
  template <typename Comb>
  static node* union_(node* a, node* b, const Comb& comb) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (is_chunk_leaf(a) && is_chunk_leaf(b)) return union_blocks(a, b, comb);
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        total >= par_cutoff(), [&] { l = union_(sp.left, l2, comb); },
        [&] { r = union_(sp.right, r2, comb); });
    if (sp.mid != nullptr) {
      m2->value = comb(sp.mid->value, m2->value);
      dec(sp.mid);
    }
    return join(l, m2, r);
  }

  // Plain union: on a duplicate key the second map's value wins.
  static node* union_(node* a, node* b) {
    return union_(a, b, [](const V&, const V& vb) { return vb; });
  }

  // One two-pointer merge over sorted unique runs, shared by every
  // block-at-a-time base case: `a` is a run of entries, `b` a run of any
  // sorted type keyed by key_of_b; each element lands in exactly one of
  // on_a (key only in a), on_b (key only in b), on_both (key in both).
  template <typename BT, typename KeyOfB, typename OnA, typename OnB,
            typename OnBoth>
  static void merge_runs(const entry_t* a, size_t na, const BT* b, size_t nb,
                         const KeyOfB& key_of_b, const OnA& on_a, const OnB& on_b,
                         const OnBoth& on_both) {
    size_t i = 0, j = 0;
    while (i < na && j < nb) {
      if (less(a[i].first, key_of_b(b[j]))) {
        on_a(a[i++]);
      } else if (less(key_of_b(b[j]), a[i].first)) {
        on_b(b[j++]);
      } else {
        on_both(a[i], b[j]);
        i++;
        j++;
      }
    }
    for (; i < na; i++) on_a(a[i]);
    for (; j < nb; j++) on_b(b[j]);
  }

  static const K& entry_key(const entry_t& e) { return e.first; }

  // Block-at-a-time union base case: one sorted-array merge, then a
  // balanced rebuild into fresh blocks.
  template <typename Comb>
  static node* union_blocks(node* a, node* b, const Comb& comb) {
    auto av = NM::read_block(a->blk);
    auto bv = NM::read_block(b->blk);
    std::vector<entry_t> out;
    out.reserve(av.size() + bv.size());
    merge_runs(
        av.data(), av.size(), bv.data(), bv.size(), entry_key,
        [&](const entry_t& e) { out.push_back(e); },
        [&](const entry_t& e) { out.push_back(e); },
        [&](const entry_t& ea, const entry_t& eb) {
          out.emplace_back(ea.first, comb(ea.second, eb.second));
        });
    node* r = TO::build_sorted_seq(out.data(), out.size());
    dec(a);
    dec(b);
    return r;
  }

  // INTERSECT(a, b, comb): keys in both maps, values combined by comb.
  template <typename Comb>
  static node* intersect(node* a, node* b, const Comb& comb) {
    if (a == nullptr || b == nullptr) {
      dec(a);
      dec(b);
      return nullptr;
    }
    if (is_chunk_leaf(a) && is_chunk_leaf(b)) return intersect_blocks(a, b, comb);
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        total >= par_cutoff(), [&] { l = intersect(sp.left, l2, comb); },
        [&] { r = intersect(sp.right, r2, comb); });
    if (sp.mid != nullptr) {
      m2->value = comb(sp.mid->value, m2->value);
      dec(sp.mid);
      return join(l, m2, r);
    }
    dec(m2);
    return join2(l, r);
  }

  template <typename Comb>
  static node* intersect_blocks(node* a, node* b, const Comb& comb) {
    auto av = NM::read_block(a->blk);
    auto bv = NM::read_block(b->blk);
    std::vector<entry_t> out;
    merge_runs(
        av.data(), av.size(), bv.data(), bv.size(), entry_key,
        [](const entry_t&) {}, [](const entry_t&) {},
        [&](const entry_t& ea, const entry_t& eb) {
          out.emplace_back(ea.first, comb(ea.second, eb.second));
        });
    node* r = TO::build_sorted_seq(out.data(), out.size());
    dec(a);
    dec(b);
    return r;
  }

  // DIFFERENCE(a, b): entries of a whose key is not in b.
  static node* difference(node* a, node* b) {
    if (a == nullptr) {
      dec(b);
      return nullptr;
    }
    if (b == nullptr) return a;
    if (is_chunk_leaf(a) && is_chunk_leaf(b)) return difference_blocks(a, b);
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        total >= par_cutoff(), [&] { l = difference(sp.left, l2); },
        [&] { r = difference(sp.right, r2); });
    if (sp.mid != nullptr) dec(sp.mid);
    dec(m2);
    return join2(l, r);
  }

  static node* difference_blocks(node* a, node* b) {
    auto av = NM::read_block(a->blk);
    auto bv = NM::read_block(b->blk);
    std::vector<entry_t> out;
    out.reserve(av.size());
    merge_runs(
        av.data(), av.size(), bv.data(), bv.size(), entry_key,
        [&](const entry_t& e) { out.push_back(e); },
        [](const entry_t&) {}, [](const entry_t&, const entry_t&) {});
    node* r = TO::build_sorted_seq(out.data(), out.size());
    dec(a);
    dec(b);
    return r;
  }

  // -------------------------------------------------------------- filter --

  // FILTER(t, pred): entries satisfying pred(k, v). Consumes t.
  // Work O(n), span O(log^2 n) (paper Figure 2).
  template <typename Pred>
  static node* filter(node* t, const Pred& pred) {
    if (t == nullptr) return nullptr;
    if (is_chunk_leaf(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      std::vector<entry_t> keep;
      for (size_t i = 0; i < bv.size(); i++) {
        if (pred(es[i].first, es[i].second)) keep.push_back(es[i]);
      }
      node* r = TO::build_sorted_seq(keep.data(), keep.size());
      dec(t);
      return r;
    }
    size_t n = t->size;
    node *l, *m, *r;
    expose_own(t, l, m, r);
    node* l2 = nullptr;
    node* r2 = nullptr;
    par_do_if(
        n >= par_cutoff(), [&] { l2 = filter(l, pred); },
        [&] { r2 = filter(r, pred); });
    if (pred(m->key, m->value)) return join(l2, m, r2);
    dec(m);
    return join2(l2, r2);
  }

  // --------------------------------------------------------------- build --

  // Balanced divide-and-conquer construction from sorted, duplicate-free
  // entries (paper Figure 2, BUILD'). O(n) work after sorting. Bottoms out
  // in whole leaf blocks when blocking is enabled.
  static node* from_sorted_unique(const entry_t* a, size_t n) {
    if (n == 0) return nullptr;
    size_t B = leaf_block_size();
    if (B >= 1 && n <= B) return TO::make_chunk_leaf(a, n);
    size_t mid = TO::build_pivot(n, B);
    node* m = make_single(a[mid].first, a[mid].second);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        n >= par_cutoff(), [&] { l = from_sorted_unique(a, mid); },
        [&] { r = from_sorted_unique(a + mid + 1, n - mid - 1); });
    return join(l, m, r);
  }

  // BUILD(seq, comb): parallel sort by key, fold duplicate keys
  // left-to-right with comb, then balanced construction.
  // Work O(n log n), span O(log n) given the sort (paper Table 2).
  template <typename Comb>
  static node* build(std::vector<entry_t> v, const Comb& comb) {
    parallel_sort(v.data(), v.size(),
                  [](const entry_t& x, const entry_t& y) { return less(x.first, y.first); });
    std::vector<entry_t> u = combine_sorted_runs(
        v, [](const K& x, const K& y) { return less(x, y); }, comb);
    return from_sorted_unique(u.data(), u.size());
  }

  static node* build(std::vector<entry_t> v) {
    return build(std::move(v), [](const V&, const V& nv) { return nv; });
  }

  // ---------------------------------------------- multi-insert / delete --

  // MULTIINSERT over a sorted duplicate-free update array: split the array
  // around the root key and recurse on both sides in parallel.
  // Work O(m log(n/m + 1)) like union. A leaf block absorbs its updates in
  // one array merge.
  template <typename Comb>
  static node* multi_insert_sorted(node* t, const entry_t* a, size_t n,
                                   const Comb& comb) {
    if (n == 0) return t;
    if (t == nullptr) return from_sorted_unique(a, n);
    if (is_chunk_leaf(t)) {
      auto tv = NM::read_block(t->blk);
      std::vector<entry_t> out;
      out.reserve(tv.size() + n);
      merge_runs(
          tv.data(), tv.size(), a, n, entry_key,
          [&](const entry_t& e) { out.push_back(e); },
          [&](const entry_t& e) { out.push_back(e); },
          [&](const entry_t& old, const entry_t& upd) {
            out.emplace_back(old.first, comb(old.second, upd.second));
          });
      node* r = from_sorted_unique(out.data(), out.size());
      dec(t);
      return r;
    }
    node *l, *m, *r;
    expose_own(t, l, m, r);
    size_t idx = std::lower_bound(a, a + n, m->key,
                                  [](const entry_t& e, const K& k) {
                                    return less(e.first, k);
                                  }) -
                 a;
    bool hit = idx < n && !less(m->key, a[idx].first);
    node* nl = nullptr;
    node* nr = nullptr;
    par_do_if(
        size(l) + size(r) + n >= par_cutoff(),
        [&] { nl = multi_insert_sorted(l, a, idx, comb); },
        [&] { nr = multi_insert_sorted(r, a + idx + hit, n - idx - hit, comb); });
    if (hit) m->value = comb(m->value, a[idx].second);
    return join(nl, m, nr);
  }

  // MULTIINSERT(t, updates, comb): duplicate update keys are folded
  // left-to-right first, then merged into the map; an existing entry gets
  // comb(old_in_map, folded_update).
  template <typename Comb>
  static node* multi_insert(node* t, std::vector<entry_t> updates, const Comb& comb) {
    parallel_sort(updates.data(), updates.size(),
                  [](const entry_t& x, const entry_t& y) { return less(x.first, y.first); });
    std::vector<entry_t> u = combine_sorted_runs(
        updates, [](const K& x, const K& y) { return less(x, y); }, comb);
    return multi_insert_sorted(t, u.data(), u.size(), comb);
  }

  static node* multi_insert(node* t, std::vector<entry_t> updates) {
    return multi_insert(t, std::move(updates),
                        [](const V&, const V& nv) { return nv; });
  }

  static node* multi_delete_sorted(node* t, const K* keys, size_t n) {
    if (n == 0 || t == nullptr) return t;
    if (is_chunk_leaf(t)) {
      auto tv = NM::read_block(t->blk);
      std::vector<entry_t> out;
      out.reserve(tv.size());
      merge_runs(
          tv.data(), tv.size(), keys, n,
          [](const K& k) -> const K& { return k; },
          [&](const entry_t& e) { out.push_back(e); }, [](const K&) {},
          [](const entry_t&, const K&) {});  // key present in both: deleted
      node* r = TO::build_sorted_seq(out.data(), out.size());
      dec(t);
      return r;
    }
    node *l, *m, *r;
    expose_own(t, l, m, r);
    size_t idx = std::lower_bound(keys, keys + n, m->key,
                                  [](const K& a, const K& b) { return less(a, b); }) -
                 keys;
    bool hit = idx < n && !less(m->key, keys[idx]);
    node* nl = nullptr;
    node* nr = nullptr;
    par_do_if(
        size(l) + size(r) + n >= par_cutoff(),
        [&] { nl = multi_delete_sorted(l, keys, idx); },
        [&] { nr = multi_delete_sorted(r, keys + idx + hit, n - idx - hit); });
    if (hit) {
      dec(m);
      return join2(nl, nr);
    }
    return join(nl, m, nr);
  }

  static node* multi_delete(node* t, std::vector<K> keys) {
    parallel_sort(keys.data(), keys.size(),
                  [](const K& a, const K& b) { return less(a, b); });
    keys.erase(std::unique(keys.begin(), keys.end(),
                           [](const K& a, const K& b) {
                             return !less(a, b) && !less(b, a);
                           }),
               keys.end());
    return multi_delete_sorted(t, keys.data(), keys.size());
  }

  // ----------------------------------------------------------- mapReduce --

  // MAPREDUCE(t, g', f', id): fold g'(k, v) over all entries with the
  // associative f', in parallel over the tree structure (paper Figure 2).
  // Leaf blocks fold with a tight sequential scan.
  template <typename M, typename R, typename B>
  static B map_reduce(const node* t, const M& g2, const R& f2, const B& id) {
    if (t == nullptr) return id;
    if (t->size < par_cutoff()) {
      B lv = map_reduce(t->left, g2, f2, id);
      lv = fold_own(t, g2, f2, std::move(lv));
      B rv = map_reduce(t->right, g2, f2, id);
      return f2(lv, rv);
    }
    B lv = id;
    B rv = id;
    par_do([&] { lv = map_reduce(t->left, g2, f2, id); },
           [&] { rv = map_reduce(t->right, g2, f2, id); });
    lv = fold_own(t, g2, f2, std::move(lv));
    return f2(lv, rv);
  }

  // Batch lookup: out[i] = value at keys[i] (or nullopt), all lookups in
  // parallel. Borrows t; O(m log n) work, O(log n) span. Honors the same
  // granularity knob as the tree recursions so the ablation sweep covers it.
  static void multi_find(const node* t, const K* keys, size_t m,
                         std::optional<V>* out) {
    parallel_for(0, m, [&](size_t i) { out[i] = TO::find(t, keys[i]); },
                 par_cutoff());
  }

  // Same-shape value transform (the paper's `map`): a new tree with
  // identical keys and structure, value' = f(k, v), augmented values
  // recomputed bottom-up. Borrows t; O(n) work, O(log n) span. Chunk nodes
  // map onto fresh blocks of the same count.
  template <typename F>
  static node* map_values(const node* t, const F& f) {
    if (t == nullptr) return nullptr;
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        t->size >= par_cutoff(), [&] { l = map_values(t->left, f); },
        [&] { r = map_values(t->right, f); });
    node* m;
    if (is_chunk(t)) {
      if constexpr (NM::flat_layout) {
        const entry_t* es = t->blk->entries();
        uint32_t c = t->blk->count;
        lblock* nb = lstore::allocate(c);
        entry_t* out = nb->entries();
        for (uint32_t i = 0; i < c; i++) {
          new (&out[i]) entry_t(es[i].first, f(es[i].first, es[i].second));
        }
        lstore::seal(nb);
        m = NM::make_chunk(nb);
      } else {
        auto bv = NM::read_block(t->blk);
        std::vector<entry_t> tmp(bv.data(), bv.data() + bv.size());
        for (entry_t& e : tmp) e.second = f(e.first, e.second);
        m = NM::make_chunk(
            lstore::build(tmp.data(), static_cast<uint32_t>(tmp.size())));
      }
    } else {
      m = make_single(t->key, f(t->key, t->value));
    }
    m->bal = t->bal;  // identical shape => identical balance metadata
    m->left = l;
    m->right = r;
    NM::update(m);
    return m;
  }

  // ----------------------------------------------------------- traversal --

  // Sequential in-order visit: f(key, value).
  template <typename F>
  static void foreach_inorder(const node* t, const F& f) {
    if (t == nullptr) return;
    foreach_inorder(t->left, f);
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      for (size_t i = 0; i < bv.size(); i++) f(es[i].first, es[i].second);
    } else {
      f(t->key, t->value);
    }
    foreach_inorder(t->right, f);
  }

  // Parallel in-order projection into out[0, size(t)): out[i] = f(k_i, v_i)
  // for the i-th entry in key order. One pass, no intermediate entry array;
  // leaf blocks stream straight into the output.
  template <typename Out, typename F>
  static void project_to_array(const node* t, Out* out, const F& f) {
    if (t == nullptr) return;
    size_t ls = size(t->left);
    size_t c = cnt(t);
    par_do_if(
        t->size >= par_cutoff(), [&] { project_to_array(t->left, out, f); },
        [&] { project_to_array(t->right, out + ls + c, f); });
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      for (size_t i = 0; i < c; i++) out[ls + i] = f(es[i].first, es[i].second);
    } else {
      out[ls] = f(t->key, t->value);
    }
  }

  // Parallel in-order materialization into out[0, size(t)).
  static void to_array(const node* t, entry_t* out) {
    project_to_array(t, out,
                     [](const K& k, const V& v) { return entry_t(k, v); });
  }

 private:
  // Fold t's own entries (1 for a plain node, the whole block for a chunk)
  // into acc with f2(acc, g2(k, v)).
  template <typename M, typename R, typename B>
  static B fold_own(const node* t, const M& g2, const R& f2, B acc) {
    if (is_chunk(t)) {
      auto bv = NM::read_block(t->blk);
      const entry_t* es = bv.data();
      for (size_t i = 0; i < bv.size(); i++) {
        acc = f2(acc, g2(es[i].first, es[i].second));
      }
      return acc;
    }
    return f2(acc, g2(t->key, t->value));
  }
};

}  // namespace pam
