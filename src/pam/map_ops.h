// Parallel bulk algorithms: union / intersect / difference, filter, build,
// multi-insert / multi-delete, mapReduce, and parallel tree <-> array
// conversion. These are the operations the paper parallelizes with
// fork-join over the tree structure (Figure 2); the work/span bounds are
// those of Table 2.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "pam/tree_ops.h"
#include "parallel/merge_sort.h"
#include "parallel/parallel.h"
#include "parallel/sequence_ops.h"

namespace pam {

// Sequential-cutoff (granularity) knob for all bulk tree recursions: trees
// smaller than this run sequentially (the paper: "parallelism is not used
// on very small trees"). Runtime-tunable for the granularity ablation
// (bench_ablation_granularity); the read is one relaxed load, negligible
// against the subtree work it gates.
inline std::atomic<size_t>& par_cutoff_knob() {
  static std::atomic<size_t> cutoff{512};
  return cutoff;
}
inline size_t par_cutoff() { return par_cutoff_knob().load(std::memory_order_relaxed); }
inline void set_par_cutoff(size_t c) { par_cutoff_knob().store(c); }

template <typename Entry, typename Balance>
struct map_ops : tree_ops<Entry, Balance> {
  using TO = tree_ops<Entry, Balance>;
  using node = typename TO::node;
  using K = typename TO::K;
  using V = typename TO::V;
  using entry_t = typename TO::entry_t;

  using TO::dec;
  using TO::expose_own;
  using TO::join;
  using TO::join2;
  using TO::less;
  using TO::make_single;
  using TO::size;
  using TO::split;

  // --------------------------------------------------------- set algebra --

  // UNION(a, b, comb): all keys of either map; a key in both gets
  // comb(value_in_a, value_in_b). Consumes both. Work O(m log(n/m + 1)).
  template <typename Comb>
  static node* union_(node* a, node* b, const Comb& comb) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        total >= par_cutoff(), [&] { l = union_(sp.left, l2, comb); },
        [&] { r = union_(sp.right, r2, comb); });
    if (sp.mid != nullptr) {
      m2->value = comb(sp.mid->value, m2->value);
      dec(sp.mid);
    }
    return join(l, m2, r);
  }

  // Plain union: on a duplicate key the second map's value wins.
  static node* union_(node* a, node* b) {
    return union_(a, b, [](const V&, const V& vb) { return vb; });
  }

  // INTERSECT(a, b, comb): keys in both maps, values combined by comb.
  template <typename Comb>
  static node* intersect(node* a, node* b, const Comb& comb) {
    if (a == nullptr || b == nullptr) {
      dec(a);
      dec(b);
      return nullptr;
    }
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        total >= par_cutoff(), [&] { l = intersect(sp.left, l2, comb); },
        [&] { r = intersect(sp.right, r2, comb); });
    if (sp.mid != nullptr) {
      m2->value = comb(sp.mid->value, m2->value);
      dec(sp.mid);
      return join(l, m2, r);
    }
    dec(m2);
    return join2(l, r);
  }

  // DIFFERENCE(a, b): entries of a whose key is not in b.
  static node* difference(node* a, node* b) {
    if (a == nullptr) {
      dec(b);
      return nullptr;
    }
    if (b == nullptr) return a;
    size_t total = size(a) + size(b);
    node *l2, *m2, *r2;
    expose_own(b, l2, m2, r2);
    auto sp = split(a, m2->key);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        total >= par_cutoff(), [&] { l = difference(sp.left, l2); },
        [&] { r = difference(sp.right, r2); });
    if (sp.mid != nullptr) dec(sp.mid);
    dec(m2);
    return join2(l, r);
  }

  // -------------------------------------------------------------- filter --

  // FILTER(t, pred): entries satisfying pred(k, v). Consumes t.
  // Work O(n), span O(log^2 n) (paper Figure 2).
  template <typename Pred>
  static node* filter(node* t, const Pred& pred) {
    if (t == nullptr) return nullptr;
    size_t n = t->size;
    node *l, *m, *r;
    expose_own(t, l, m, r);
    node* l2 = nullptr;
    node* r2 = nullptr;
    par_do_if(
        n >= par_cutoff(), [&] { l2 = filter(l, pred); },
        [&] { r2 = filter(r, pred); });
    if (pred(m->key, m->value)) return join(l2, m, r2);
    dec(m);
    return join2(l2, r2);
  }

  // --------------------------------------------------------------- build --

  // Balanced divide-and-conquer construction from sorted, duplicate-free
  // entries (paper Figure 2, BUILD'). O(n) work after sorting.
  static node* from_sorted_unique(const entry_t* a, size_t n) {
    if (n == 0) return nullptr;
    size_t mid = n / 2;
    node* m = make_single(a[mid].first, a[mid].second);
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        n >= par_cutoff(), [&] { l = from_sorted_unique(a, mid); },
        [&] { r = from_sorted_unique(a + mid + 1, n - mid - 1); });
    return join(l, m, r);
  }

  // BUILD(seq, comb): parallel sort by key, fold duplicate keys
  // left-to-right with comb, then balanced construction.
  // Work O(n log n), span O(log n) given the sort (paper Table 2).
  template <typename Comb>
  static node* build(std::vector<entry_t> v, const Comb& comb) {
    parallel_sort(v.data(), v.size(),
                  [](const entry_t& x, const entry_t& y) { return less(x.first, y.first); });
    std::vector<entry_t> u = combine_sorted_runs(
        v, [](const K& x, const K& y) { return less(x, y); }, comb);
    return from_sorted_unique(u.data(), u.size());
  }

  static node* build(std::vector<entry_t> v) {
    return build(std::move(v), [](const V&, const V& nv) { return nv; });
  }

  // ---------------------------------------------- multi-insert / delete --

  // MULTIINSERT over a sorted duplicate-free update array: split the array
  // around the root key and recurse on both sides in parallel.
  // Work O(m log(n/m + 1)) like union.
  template <typename Comb>
  static node* multi_insert_sorted(node* t, const entry_t* a, size_t n,
                                   const Comb& comb) {
    if (n == 0) return t;
    if (t == nullptr) return from_sorted_unique(a, n);
    node *l, *m, *r;
    expose_own(t, l, m, r);
    size_t idx = std::lower_bound(a, a + n, m->key,
                                  [](const entry_t& e, const K& k) {
                                    return less(e.first, k);
                                  }) -
                 a;
    bool hit = idx < n && !less(m->key, a[idx].first);
    node* nl = nullptr;
    node* nr = nullptr;
    par_do_if(
        size(l) + size(r) + n >= par_cutoff(),
        [&] { nl = multi_insert_sorted(l, a, idx, comb); },
        [&] { nr = multi_insert_sorted(r, a + idx + hit, n - idx - hit, comb); });
    if (hit) m->value = comb(m->value, a[idx].second);
    return join(nl, m, nr);
  }

  // MULTIINSERT(t, updates, comb): duplicate update keys are folded
  // left-to-right first, then merged into the map; an existing entry gets
  // comb(old_in_map, folded_update).
  template <typename Comb>
  static node* multi_insert(node* t, std::vector<entry_t> updates, const Comb& comb) {
    parallel_sort(updates.data(), updates.size(),
                  [](const entry_t& x, const entry_t& y) { return less(x.first, y.first); });
    std::vector<entry_t> u = combine_sorted_runs(
        updates, [](const K& x, const K& y) { return less(x, y); }, comb);
    return multi_insert_sorted(t, u.data(), u.size(), comb);
  }

  static node* multi_insert(node* t, std::vector<entry_t> updates) {
    return multi_insert(t, std::move(updates),
                        [](const V&, const V& nv) { return nv; });
  }

  static node* multi_delete_sorted(node* t, const K* keys, size_t n) {
    if (n == 0 || t == nullptr) return t;
    node *l, *m, *r;
    expose_own(t, l, m, r);
    size_t idx = std::lower_bound(keys, keys + n, m->key,
                                  [](const K& a, const K& b) { return less(a, b); }) -
                 keys;
    bool hit = idx < n && !less(m->key, keys[idx]);
    node* nl = nullptr;
    node* nr = nullptr;
    par_do_if(
        size(l) + size(r) + n >= par_cutoff(),
        [&] { nl = multi_delete_sorted(l, keys, idx); },
        [&] { nr = multi_delete_sorted(r, keys + idx + hit, n - idx - hit); });
    if (hit) {
      dec(m);
      return join2(nl, nr);
    }
    return join(nl, m, nr);
  }

  static node* multi_delete(node* t, std::vector<K> keys) {
    parallel_sort(keys.data(), keys.size(),
                  [](const K& a, const K& b) { return less(a, b); });
    keys.erase(std::unique(keys.begin(), keys.end(),
                           [](const K& a, const K& b) {
                             return !less(a, b) && !less(b, a);
                           }),
               keys.end());
    return multi_delete_sorted(t, keys.data(), keys.size());
  }

  // ----------------------------------------------------------- mapReduce --

  // MAPREDUCE(t, g', f', id): fold g'(k, v) over all entries with the
  // associative f', in parallel over the tree structure (paper Figure 2).
  template <typename M, typename R, typename B>
  static B map_reduce(const node* t, const M& g2, const R& f2, const B& id) {
    if (t == nullptr) return id;
    if (t->size < par_cutoff()) {
      B lv = map_reduce(t->left, g2, f2, id);
      B rv = map_reduce(t->right, g2, f2, id);
      return f2(f2(lv, g2(t->key, t->value)), rv);
    }
    B lv = id;
    B rv = id;
    par_do([&] { lv = map_reduce(t->left, g2, f2, id); },
           [&] { rv = map_reduce(t->right, g2, f2, id); });
    return f2(f2(lv, g2(t->key, t->value)), rv);
  }

  // Batch lookup: out[i] = value at keys[i] (or nullopt), all lookups in
  // parallel. Borrows t; O(m log n) work, O(log n) span. Honors the same
  // granularity knob as the tree recursions so the ablation sweep covers it.
  static void multi_find(const node* t, const K* keys, size_t m,
                         std::optional<V>* out) {
    parallel_for(0, m, [&](size_t i) { out[i] = TO::find(t, keys[i]); },
                 par_cutoff());
  }

  // Same-shape value transform (the paper's `map`): a new tree with
  // identical keys and structure, value' = f(k, v), augmented values
  // recomputed bottom-up. Borrows t; O(n) work, O(log n) span.
  template <typename F>
  static node* map_values(const node* t, const F& f) {
    if (t == nullptr) return nullptr;
    node* l = nullptr;
    node* r = nullptr;
    par_do_if(
        t->size >= par_cutoff(), [&] { l = map_values(t->left, f); },
        [&] { r = map_values(t->right, f); });
    node* m = TO::make_single(t->key, f(t->key, t->value));
    m->bal = t->bal;  // identical shape => identical balance metadata
    m->left = l;
    m->right = r;
    TO::NM::update(m);
    return m;
  }

  // ----------------------------------------------------------- traversal --

  // Sequential in-order visit: f(key, value).
  template <typename F>
  static void foreach_inorder(const node* t, const F& f) {
    if (t == nullptr) return;
    foreach_inorder(t->left, f);
    f(t->key, t->value);
    foreach_inorder(t->right, f);
  }

  // Parallel in-order projection into out[0, size(t)): out[i] = f(k_i, v_i)
  // for the i-th entry in key order. One pass, no intermediate entry array.
  template <typename Out, typename F>
  static void project_to_array(const node* t, Out* out, const F& f) {
    if (t == nullptr) return;
    size_t ls = size(t->left);
    par_do_if(
        t->size >= par_cutoff(), [&] { project_to_array(t->left, out, f); },
        [&] { project_to_array(t->right, out + ls + 1, f); });
    out[ls] = f(t->key, t->value);
  }

  // Parallel in-order materialization into out[0, size(t)).
  static void to_array(const node* t, entry_t* out) {
    project_to_array(t, out,
                     [](const K& k, const V& v) { return entry_t(k, v); });
  }
};

}  // namespace pam
