// Umbrella header for the PAM library: augmented ordered maps with
// join-based parallel bulk operations, full persistence, and four
// interchangeable balancing schemes.
//
//   #include "pam/pam.h"
//
//   struct entry {                       // paper Figure 3
//     using key_t = long; using val_t = long; using aug_t = long;
//     static bool comp(long a, long b) { return a < b; }
//     static long identity() { return 0; }
//     static long base(long, long v) { return v; }
//     static long combine(long a, long b) { return a + b; }
//   };
//   using sum_map = pam::aug_map<entry>;
//
// See README.md for the full tour and DESIGN.md for the architecture.
#pragma once

#include "pam/augmented_map.h"
#include "pam/balance/avl.h"
#include "pam/diff.h"
#include "pam/balance/red_black.h"
#include "pam/balance/treap.h"
#include "pam/balance/weight_balanced.h"
#include "pam/entries.h"
#include "pam/iterator.h"
#include "pam/serialize.h"
#include "pam/snapshot.h"
#include "parallel/parallel.h"
