// Lazy traversal over PAM trees: STL-compatible in-order iterators,
// non-materializing range views, and read-only structural cursors.
//
// Three abstractions, all borrowing the tree instead of copying it:
//
//   map_iterator<Entry, Balance>   an in-order forward iterator with an
//       explicit ancestor stack: O(log n) to construct, amortized O(1) per
//       ++. Dereferencing yields a lightweight {key, value} reference proxy
//       that works with structured bindings:
//
//           for (auto [k, v] : m) ...
//
//   range_view<Entry, Balance>     a lazy sub-range [lo, hi] of a map (or
//       the whole map). Holds its own reference to the tree root, so it
//       stays valid — a consistent snapshot — even if the map handle it
//       came from is reassigned afterwards. Exposes size() and aug_val()
//       as O(log n) queries and iteration / for_each in O(k + log n),
//       without allocating a single tree node (contrast with
//       aug_map::range, which path-copies O(log n) nodes).
//
//   tree_cursor<Entry, Balance>    a read-only cursor over tree structure:
//       key/value/aug of the current subtree root plus navigation to
//       left/right children. This replaces the old internal_root() raw-node
//       escape hatch: applications that need structural traversal (e.g.
//       best-first search over augmented values, range-tree canonical
//       decomposition) get the shape of the tree without the ability to
//       touch reference counts or mutate nodes.
//
// Lifetime rules: an iterator or cursor borrows from the map (or view) that
// produced it and must not outlive it. A range_view owns a reference to its
// snapshot of the tree and has no lifetime tie to the originating map.
#pragma once

#include <cstddef>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "pam/aug_ops.h"

namespace pam {

// ---------------------------------------------------------------- iterator --

template <typename Entry, typename Balance>
class map_iterator {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;

  // The reference proxy: two references into the tree node, destructurable
  // as `auto [k, v]` and convertible to a materialized std::pair.
  struct entry_ref {
    const K& key;
    const V& value;
    operator std::pair<K, V>() const { return {key, value}; }
    friend bool operator==(const entry_ref& a, const std::pair<K, V>& b) {
      return !Entry::comp(a.key, b.first) && !Entry::comp(b.first, a.key) &&
             a.value == b.value;
    }
  };

  struct arrow_proxy {
    entry_ref ref;
    const entry_ref* operator->() const { return &ref; }
  };

  using iterator_category = std::forward_iterator_tag;
  using value_type = std::pair<K, V>;
  using difference_type = std::ptrdiff_t;
  using reference = entry_ref;
  using pointer = arrow_proxy;

  // Tag selecting the seek-to-last constructor.
  struct seek_last_t {};

  // The end (and default) iterator: an empty ancestor stack.
  map_iterator() = default;

  // Begin of an in-order walk over the whole tree rooted at t. Internal:
  // obtained via aug_map::begin() / range_view::begin().
  explicit map_iterator(const node* t) {
    path_.reserve(kTypicalHeight);
    push_left(t);
  }

  // Begin at the least key >= *lo (or the least key if lo is null), walking
  // no further than *hi (inclusive; null = unbounded). `hi` is borrowed and
  // must outlive the iterator — range_view stores it for exactly this.
  map_iterator(const node* t, const K* lo, const K* hi) : hi_(hi) {
    path_.reserve(kTypicalHeight);
    if (lo == nullptr) {
      push_left(t);
    } else {
      while (t != nullptr) {
        if (ops::less(t->key, *lo)) {
          t = t->right;  // everything here is below the range
        } else {
          path_.push_back(t);
          t = t->left;
        }
      }
    }
    clamp();
  }

  // Seek to the greatest key <= *hi that is also >= *lo (either bound may be
  // null = unbounded): one O(log n) descent from the high bound. The stack is
  // left in the normal in-order state, so ++ from here walks to the in-order
  // successor and then clamps to end() — this is how range_view::last() gets
  // its entry without touching the O(k) forward walk.
  map_iterator(const node* t, const K* lo, const K* hi, seek_last_t) : hi_(hi) {
    path_.reserve(kTypicalHeight);
    const node* best = nullptr;
    size_t best_depth = 0;
    while (t != nullptr) {
      if (hi != nullptr && ops::less(*hi, t->key)) {
        path_.push_back(t);  // a future in-order successor of the result
        t = t->left;
      } else {
        best = t;
        best_depth = path_.size();
        t = t->right;
      }
    }
    if (best == nullptr || (lo != nullptr && ops::less(best->key, *lo))) {
      path_.clear();  // range is empty
      return;
    }
    // Nodes pushed while exploring best->right are > *hi and sit above the
    // result in in-order; drop them so best is the current node.
    path_.resize(best_depth);
    path_.push_back(best);
  }

  entry_ref operator*() const {
    const node* t = path_.back();
    return {t->key, t->value};
  }
  arrow_proxy operator->() const { return {**this}; }

  map_iterator& operator++() {
    const node* t = path_.back();
    path_.pop_back();
    push_left(t->right);
    clamp();
    return *this;
  }
  map_iterator operator++(int) {
    map_iterator old = *this;
    ++*this;
    return old;
  }

  // Iterators over the same tree are equal iff they sit on the same node;
  // all exhausted iterators (including the default) are equal.
  friend bool operator==(const map_iterator& a, const map_iterator& b) {
    return a.current() == b.current();
  }
  friend bool operator!=(const map_iterator& a, const map_iterator& b) {
    return !(a == b);
  }

 private:
  // Deep enough for every balanced scheme at the 2^32-entry size cap; the
  // stack grows past it only for degenerate treap draws.
  static constexpr size_t kTypicalHeight = 64;

  const node* current() const { return path_.empty() ? nullptr : path_.back(); }

  void push_left(const node* t) {
    while (t != nullptr) {
      path_.push_back(t);
      t = t->left;
    }
  }

  // Enforce the inclusive upper bound: once the next in-order key exceeds
  // *hi_, the iterator becomes end().
  void clamp() {
    if (hi_ != nullptr && !path_.empty() && ops::less(*hi_, path_.back()->key)) {
      path_.clear();
    }
  }

  // Ancestor stack: back() is the current node; the nodes below it are the
  // ancestors whose entries (and right subtrees) are still to be visited.
  std::vector<const node*> path_;
  const K* hi_ = nullptr;
};

// ------------------------------------------------------------ tree cursor --

// A read-only view of a subtree: the entry and augmented value cached at
// its root, and navigation to the child subtrees. Borrows the tree — no
// refcount traffic, so it is as cheap as a raw pointer but cannot violate
// the persistence invariants. An empty cursor tests false.
template <typename Entry, typename Balance>
class tree_cursor {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename ops::A;

  tree_cursor() = default;
  // Internal: obtained via aug_map::root_cursor().
  explicit tree_cursor(const node* t) : t_(t) {}

  bool empty() const { return t_ == nullptr; }
  explicit operator bool() const { return t_ != nullptr; }

  // Entry stored at the subtree root.
  const K& key() const { return t_->key; }
  const V& value() const { return t_->value; }
  // Cached augmented value of the whole subtree (identity for plain maps).
  const A& aug() const { return t_->aug; }
  // Number of entries in the subtree. O(1).
  size_t size() const { return ops::size(t_); }

  tree_cursor left() const { return tree_cursor(t_ == nullptr ? nullptr : t_->left); }
  tree_cursor right() const { return tree_cursor(t_ == nullptr ? nullptr : t_->right); }

  friend bool operator==(const tree_cursor& a, const tree_cursor& b) {
    return a.t_ == b.t_;
  }
  friend bool operator!=(const tree_cursor& a, const tree_cursor& b) {
    return !(a == b);
  }

 private:
  const node* t_ = nullptr;
};

// ------------------------------------------------------------- range view --

// A lazy, non-materializing view of the entries with lo <= key <= hi
// (either bound optional). The view owns one reference to the tree root, so
// it is an O(1) snapshot: reassigning or destroying the originating map
// afterwards does not invalidate it. Nothing is copied or allocated beyond
// that single refcount bump — iteration, for_each, size() and aug_val() all
// run directly against the shared tree.
template <typename Entry, typename Balance>
class range_view {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename ops::A;
  using entry_t = std::pair<K, V>;
  using const_iterator = map_iterator<Entry, Balance>;
  using iterator = const_iterator;

  range_view() = default;

  // Internal: borrows t and takes its own reference; obtained via
  // aug_map::view / view_all / view_up_to / view_down_to.
  range_view(const node* t, std::optional<K> lo, std::optional<K> hi)
      : root_(ops::inc(const_cast<node*>(t))), lo_(std::move(lo)), hi_(std::move(hi)) {}

  range_view(const range_view& o)
      : root_(ops::inc(o.root_)), lo_(o.lo_), hi_(o.hi_) {}
  range_view(range_view&& o) noexcept
      : root_(o.root_), lo_(std::move(o.lo_)), hi_(std::move(o.hi_)) {
    o.root_ = nullptr;
  }
  range_view& operator=(const range_view& o) {
    if (this != &o) {
      node* old = root_;
      root_ = ops::inc(o.root_);
      lo_ = o.lo_;
      hi_ = o.hi_;
      ops::dec(old);
    }
    return *this;
  }
  range_view& operator=(range_view&& o) noexcept {
    std::swap(root_, o.root_);
    std::swap(lo_, o.lo_);
    std::swap(hi_, o.hi_);
    return *this;
  }
  ~range_view() { ops::dec(root_); }

  // ------------------------------------------------------------- queries --

  // Number of entries in the range: two rank descents. O(log n).
  size_t size() const {
    return ops::count_in_range(root_, lo_.has_value() ? &*lo_ : nullptr,
                               hi_.has_value() ? &*hi_ : nullptr);
  }

  bool empty() const { return begin() == end(); }  // O(log n)

  // Least / greatest entry in the range. O(log n).
  std::optional<entry_t> first() const {
    const_iterator it = begin();
    if (it == end()) return std::nullopt;
    return entry_t(*it);
  }

  std::optional<entry_t> last() const {
    const_iterator it(root_, lo_.has_value() ? &*lo_ : nullptr,
                      hi_.has_value() ? &*hi_ : nullptr,
                      typename const_iterator::seek_last_t{});
    if (it == const_iterator()) return std::nullopt;
    return entry_t(*it);
  }

  // Augmented value over the range: exactly aug_range / aug_left /
  // aug_right / aug_val depending on which bounds are set. O(log n),
  // allocation-free.
  A aug_val() const {
    static_assert(ops::traits::has_aug, "aug_val requires an augmented Entry");
    if (lo_.has_value() && hi_.has_value()) return ops::aug_range(root_, *lo_, *hi_);
    if (lo_.has_value()) return ops::aug_right(root_, *lo_);
    if (hi_.has_value()) return ops::aug_left(root_, *hi_);
    return ops::aug_val(root_);
  }

  // ----------------------------------------------------------- traversal --

  const_iterator begin() const {
    return const_iterator(root_, lo_.has_value() ? &*lo_ : nullptr,
                          hi_.has_value() ? &*hi_ : nullptr);
  }
  const_iterator end() const { return const_iterator(); }

  // Sequential in-order visit of the range: f(key, value).
  // O(k + log n) for k entries, no allocation.
  template <typename F>
  void for_each(const F& f) const {
    foreach_bounded(root_, lo_.has_value() ? &*lo_ : nullptr,
                    hi_.has_value() ? &*hi_ : nullptr, f);
  }

  // Materialize the range when a vector is genuinely wanted. O(k + log n).
  std::vector<entry_t> to_entries() const {
    std::vector<entry_t> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

 private:
  // In-order traversal with pruning at the bounds. Once the recursion
  // enters a subtree known to be inside a bound, that bound check is
  // dropped, so total work is O(k + log n).
  template <typename F>
  static void foreach_bounded(const node* t, const K* lo, const K* hi, const F& f) {
    if (t == nullptr) return;
    if (lo != nullptr && ops::less(t->key, *lo))
      return foreach_bounded(t->right, lo, hi, f);
    if (hi != nullptr && ops::less(*hi, t->key))
      return foreach_bounded(t->left, lo, hi, f);
    foreach_bounded(t->left, lo, nullptr, f);  // keys < t->key <= *hi
    f(t->key, t->value);
    foreach_bounded(t->right, nullptr, hi, f);  // keys > t->key >= *lo
  }

  node* root_ = nullptr;
  std::optional<K> lo_;
  std::optional<K> hi_;
};

}  // namespace pam
