// Lazy traversal over PAM trees: STL-compatible in-order iterators,
// non-materializing range views, and read-only structural cursors.
//
// Three abstractions, all borrowing the tree instead of copying it:
//
//   map_iterator<Entry, Balance>   an in-order forward iterator with an
//       explicit ancestor stack: O(log n) to construct, amortized O(1) per
//       ++. Dereferencing yields a lightweight {key, value} reference proxy
//       that works with structured bindings:
//
//           for (auto [k, v] : m) ...
//
//       With blocked leaves the stack holds (node, in-block index) frames,
//       so stepping through a leaf block is one index bump over a flat
//       array — the fast path the blocked layout exists for. Front-coded
//       blocks cannot hand out references into their compressed bytes, so
//       a chunk frame additionally carries a shared decoded copy of its
//       block (filled once when the frame is pushed); stepping is still an
//       index bump, and copying the iterator shares the cache.
//
//   range_view<Entry, Balance>     a lazy sub-range [lo, hi] of a map (or
//       the whole map). Holds its own reference to the tree root, so it
//       stays valid — a consistent snapshot — even if the map handle it
//       came from is reassigned afterwards. Exposes size() and aug_val()
//       as O(log n) queries and iteration / for_each in O(k + log n),
//       without allocating a single tree node (contrast with
//       aug_map::range, which path-copies O(log n) nodes).
//
//   tree_cursor<Entry, Balance>    a read-only cursor over tree structure:
//       the entries stored at the current subtree root (one for a plain
//       node, a whole block for a chunk node — see entry_count()/key(i)/
//       value(i)), the subtree's cached augmented value, and navigation to
//       left/right children. This replaces the old internal_root() raw-node
//       escape hatch: applications that need structural traversal (e.g.
//       best-first search over augmented values, range-tree canonical
//       decomposition) get the shape of the tree without the ability to
//       touch reference counts or mutate nodes.
//
// Lifetime rules: an iterator or cursor borrows from the map (or view) that
// produced it and must not outlive it. A range_view owns a reference to its
// snapshot of the tree and has no lifetime tie to the originating map.
#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "pam/aug_ops.h"

namespace pam {

// ---------------------------------------------------------------- iterator --

template <typename Entry, typename Balance>
class map_iterator {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using entry_t = std::pair<K, V>;

  // The reference proxy: two references into the tree (node or leaf block),
  // destructurable as `auto [k, v]` and convertible to a materialized pair.
  struct entry_ref {
    const K& key;
    const V& value;
    operator std::pair<K, V>() const { return {key, value}; }
    friend bool operator==(const entry_ref& a, const std::pair<K, V>& b) {
      return !Entry::comp(a.key, b.first) && !Entry::comp(b.first, a.key) &&
             a.value == b.value;
    }
  };

  struct arrow_proxy {
    entry_ref ref;
    const entry_ref* operator->() const { return &ref; }
  };

  using iterator_category = std::forward_iterator_tag;
  using value_type = std::pair<K, V>;
  using difference_type = std::ptrdiff_t;
  using reference = entry_ref;
  using pointer = arrow_proxy;

  // Tag selecting the seek-to-last constructor.
  struct seek_last_t {};

  // The end (and default) iterator: an empty ancestor stack.
  map_iterator() = default;

  // Begin of an in-order walk over the whole tree rooted at t. Internal:
  // obtained via aug_map::begin() / range_view::begin().
  explicit map_iterator(const node* t) {
    path_.reserve(kTypicalHeight);
    push_left(t);
  }

  // Begin at the least key >= *lo (or the least key if lo is null), walking
  // no further than *hi (inclusive; null = unbounded). `hi` is borrowed and
  // must outlive the iterator — range_view stores it for exactly this.
  map_iterator(const node* t, const K* lo, const K* hi) : hi_(hi) {
    path_.reserve(kTypicalHeight);
    if (lo == nullptr) {
      push_left(t);
    } else {
      while (t != nullptr) {
        if (ops::is_chunk(t)) {
          size_t c = t->blk->count;
          size_t pos = ops::blk_lower(t->blk, *lo, nullptr);  // first >= *lo
          if (pos == c) {
            t = t->right;  // whole block (and left subtree) below the range
          } else if (pos == 0) {
            path_.push_back(make_frame(t, 0));
            t = t->left;  // left subtree may still hold keys >= *lo
          } else {
            path_.push_back(make_frame(t, static_cast<uint32_t>(pos)));
            break;  // entries before pos are < *lo, so the left side is too
          }
        } else if (ops::less(t->key, *lo)) {
          t = t->right;  // everything here is below the range
        } else {
          path_.push_back(make_frame(t, 0));
          t = t->left;
        }
      }
    }
    clamp();
  }

  // Seek to the greatest key <= *hi that is also >= *lo (either bound may be
  // null = unbounded): one O(log n) descent from the high bound. The stack is
  // left in the normal in-order state, so ++ from here walks to the in-order
  // successor and then clamps to end() — this is how range_view::last() gets
  // its entry without touching the O(k) forward walk.
  map_iterator(const node* t, const K* lo, const K* hi, seek_last_t) : hi_(hi) {
    path_.reserve(kTypicalHeight);
    const node* best = nullptr;
    uint32_t best_idx = 0;
    size_t best_depth = 0;
    while (t != nullptr) {
      if (ops::is_chunk(t)) {
        size_t c = t->blk->count;
        size_t pos = hi != nullptr ? ops::blk_upper(t->blk, *hi) : c;  // first > *hi
        if (pos == 0) {
          path_.push_back(make_frame(t, 0));  // block entries are future successors
          t = t->left;
        } else {
          best = t;
          best_idx = static_cast<uint32_t>(pos - 1);
          best_depth = path_.size();
          if (pos < c) break;  // the right subtree is > *hi as well
          t = t->right;
        }
      } else if (hi != nullptr && ops::less(*hi, t->key)) {
        path_.push_back(make_frame(t, 0));  // a future in-order successor
        t = t->left;
      } else {
        best = t;
        best_idx = 0;
        best_depth = path_.size();
        t = t->right;
      }
    }
    if (best == nullptr ||
        (lo != nullptr && ops::less(entry_key_copy(best, best_idx), *lo))) {
      path_.clear();  // range is empty
      return;
    }
    // Nodes pushed while exploring best's right side are > *hi and sit above
    // the result in in-order; drop them so best is the current node.
    path_.resize(best_depth);
    path_.push_back(make_frame(best, best_idx));
  }

  entry_ref operator*() const {
    const frame& f = path_.back();
    if (ops::is_chunk(f.n)) {
      const entry_t& e = frame_entry(f);
      return {e.first, e.second};
    }
    return {f.n->key, f.n->value};
  }
  arrow_proxy operator->() const { return {**this}; }

  map_iterator& operator++() {
    frame& f = path_.back();
    if (ops::is_chunk(f.n) && f.idx + 1 < f.n->blk->count) {
      f.idx++;  // step within the flat block: the hot path
      clamp();
      return *this;
    }
    const node* t = f.n;
    path_.pop_back();
    push_left(t->right);
    clamp();
    return *this;
  }
  map_iterator operator++(int) {
    map_iterator old = *this;
    ++*this;
    return old;
  }

  // Iterators over the same tree are equal iff they sit on the same entry;
  // all exhausted iterators (including the default) are equal.
  friend bool operator==(const map_iterator& a, const map_iterator& b) {
    if (a.path_.empty() || b.path_.empty()) return a.path_.empty() == b.path_.empty();
    return a.path_.back().n == b.path_.back().n &&
           a.path_.back().idx == b.path_.back().idx;
  }
  friend bool operator!=(const map_iterator& a, const map_iterator& b) {
    return !(a == b);
  }

 private:
  static constexpr bool kCoded = !ops::NM::flat_layout;

  // Shared decoded copy of a front-coded block; an empty tag type when the
  // layout is flat (no storage, no decode).
  using block_cache =
      std::conditional_t<kCoded, std::shared_ptr<const std::vector<entry_t>>,
                         unit>;

  // Ancestor stack frame: a node plus (for chunk nodes) the index of the
  // current/next-to-visit entry inside its block, plus (coded layout only)
  // the decoded block.
  struct frame {
    const node* n;
    uint32_t idx;
    block_cache cache;
  };

  // Deep enough for every balanced scheme at the 2^32-entry size cap; the
  // stack grows past it only for degenerate treap draws.
  static constexpr size_t kTypicalHeight = 64;

  static frame make_frame(const node* t, uint32_t idx) {
    if constexpr (kCoded) {
      if (ops::is_chunk(t)) {
        auto bv = ops::NM::read_block(t->blk);
        return {t, idx,
                std::make_shared<const std::vector<entry_t>>(std::move(bv.buf))};
      }
      return {t, idx, nullptr};
    } else {
      return {t, idx, {}};
    }
  }

  // The frame's current entry; only valid for chunk frames.
  static const entry_t& frame_entry(const frame& f) {
    if constexpr (kCoded) {
      return (*f.cache)[f.idx];
    } else {
      return f.n->blk->entries()[f.idx];
    }
  }

  static const K& frame_key(const frame& f) {
    return ops::is_chunk(f.n) ? frame_entry(f).first : f.n->key;
  }

  // Key at (t, idx) as an owned copy — for bound checks before a frame (and
  // its decode cache) exists.
  static K entry_key_copy(const node* t, uint32_t idx) {
    return ops::is_chunk(t) ? ops::blk_entry(t->blk, idx).first : t->key;
  }

  void push_left(const node* t) {
    while (t != nullptr) {
      path_.push_back(make_frame(t, 0));
      t = t->left;
    }
  }

  // Enforce the inclusive upper bound: once the next in-order key exceeds
  // *hi_, the iterator becomes end().
  void clamp() {
    if (hi_ != nullptr && !path_.empty()) {
      if (ops::less(*hi_, frame_key(path_.back()))) path_.clear();
    }
  }

  // Ancestor stack: back() is the current frame; the frames below it are the
  // ancestors whose remaining entries (and right subtrees) are still to be
  // visited.
  std::vector<frame> path_;
  const K* hi_ = nullptr;
};

// ------------------------------------------------------------ tree cursor --

// A read-only view of a subtree: the entries and augmented value cached at
// its root, and navigation to the child subtrees. With blocked leaves a
// subtree root may carry a whole run of entries: entry_count() gives the
// run length and key(i)/value(i) index into it (keys sorted; the left
// subtree is below key(0), the right above key(entry_count()-1)). key() and
// value() are the first entry, which keeps single-entry callers working.
// Borrows the tree — no refcount traffic, so it is as cheap as a raw
// pointer but cannot violate the persistence invariants. An empty cursor
// tests false.
template <typename Entry, typename Balance>
class tree_cursor {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename ops::A;
  using entry_t = std::pair<K, V>;

  tree_cursor() = default;
  // Internal: obtained via aug_map::root_cursor(). A cursor on a coded
  // chunk decodes the block once, up front; key(i)/value(i) then hand out
  // references into that owned copy.
  explicit tree_cursor(const node* t) : t_(t) {
    if constexpr (kCoded) {
      if (t_ != nullptr && ops::is_chunk(t_)) {
        auto bv = ops::NM::read_block(t_->blk);
        cache_ = std::make_shared<const std::vector<entry_t>>(std::move(bv.buf));
      }
    }
  }

  bool empty() const { return t_ == nullptr; }
  explicit operator bool() const { return t_ != nullptr; }

  // Number of entries stored at the subtree root itself (1 for a plain
  // node, the block length for a chunk node).
  size_t entry_count() const { return ops::cnt(t_); }

  // The i-th entry stored at the root, in key order. i < entry_count().
  const K& key(size_t i) const {
    if (ops::is_chunk(t_)) {
      if constexpr (kCoded) return (*cache_)[i].first;
      else return t_->blk->entries()[i].first;
    }
    return t_->key;
  }
  const V& value(size_t i) const {
    if (ops::is_chunk(t_)) {
      if constexpr (kCoded) return (*cache_)[i].second;
      else return t_->blk->entries()[i].second;
    }
    return t_->value;
  }

  // First entry stored at the subtree root.
  const K& key() const { return key(0); }
  const V& value() const { return value(0); }
  // Cached augmented value of the whole subtree (identity for plain maps).
  const A& aug() const { return t_->aug; }
  // Number of entries in the subtree. O(1).
  size_t size() const { return ops::size(t_); }

  tree_cursor left() const { return tree_cursor(t_ == nullptr ? nullptr : t_->left); }
  tree_cursor right() const { return tree_cursor(t_ == nullptr ? nullptr : t_->right); }

  friend bool operator==(const tree_cursor& a, const tree_cursor& b) {
    return a.t_ == b.t_;
  }
  friend bool operator!=(const tree_cursor& a, const tree_cursor& b) {
    return !(a == b);
  }

 private:
  static constexpr bool kCoded = !ops::NM::flat_layout;
  using block_cache =
      std::conditional_t<kCoded, std::shared_ptr<const std::vector<entry_t>>,
                         unit>;

  const node* t_ = nullptr;
  [[no_unique_address]] block_cache cache_{};
};

// ------------------------------------------------------------- range view --

// A lazy, non-materializing view of the entries with lo <= key <= hi
// (either bound optional). The view owns one reference to the tree root, so
// it is an O(1) snapshot: reassigning or destroying the originating map
// afterwards does not invalidate it. Nothing is copied or allocated beyond
// that single refcount bump — iteration, for_each, size() and aug_val() all
// run directly against the shared tree.
template <typename Entry, typename Balance>
class range_view {
 public:
  using ops = aug_ops<Entry, Balance>;
  using node = typename ops::node;
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename ops::A;
  using entry_t = std::pair<K, V>;
  using const_iterator = map_iterator<Entry, Balance>;
  using iterator = const_iterator;

  range_view() = default;

  // Internal: borrows t and takes its own reference; obtained via
  // aug_map::view / view_all / view_up_to / view_down_to.
  range_view(const node* t, std::optional<K> lo, std::optional<K> hi)
      : root_(ops::inc(const_cast<node*>(t))), lo_(std::move(lo)), hi_(std::move(hi)) {}

  range_view(const range_view& o)
      : root_(ops::inc(o.root_)), lo_(o.lo_), hi_(o.hi_) {}
  range_view(range_view&& o) noexcept
      : root_(o.root_), lo_(std::move(o.lo_)), hi_(std::move(o.hi_)) {
    o.root_ = nullptr;
  }
  range_view& operator=(const range_view& o) {
    if (this != &o) {
      node* old = root_;
      root_ = ops::inc(o.root_);
      lo_ = o.lo_;
      hi_ = o.hi_;
      ops::dec(old);
    }
    return *this;
  }
  range_view& operator=(range_view&& o) noexcept {
    std::swap(root_, o.root_);
    std::swap(lo_, o.lo_);
    std::swap(hi_, o.hi_);
    return *this;
  }
  ~range_view() { ops::dec(root_); }

  // ------------------------------------------------------------- queries --

  // Number of entries in the range: two rank descents. O(log n).
  size_t size() const {
    return ops::count_in_range(root_, lo_.has_value() ? &*lo_ : nullptr,
                               hi_.has_value() ? &*hi_ : nullptr);
  }

  bool empty() const { return begin() == end(); }  // O(log n)

  // Least / greatest entry in the range. O(log n).
  std::optional<entry_t> first() const {
    const_iterator it = begin();
    if (it == end()) return std::nullopt;
    return entry_t(*it);
  }

  std::optional<entry_t> last() const {
    const_iterator it(root_, lo_.has_value() ? &*lo_ : nullptr,
                      hi_.has_value() ? &*hi_ : nullptr,
                      typename const_iterator::seek_last_t{});
    if (it == const_iterator()) return std::nullopt;
    return entry_t(*it);
  }

  // Augmented value over the range: exactly aug_range / aug_left /
  // aug_right / aug_val depending on which bounds are set. O(log n),
  // allocation-free.
  A aug_val() const {
    static_assert(ops::traits::has_aug, "aug_val requires an augmented Entry");
    if (lo_.has_value() && hi_.has_value()) return ops::aug_range(root_, *lo_, *hi_);
    if (lo_.has_value()) return ops::aug_right(root_, *lo_);
    if (hi_.has_value()) return ops::aug_left(root_, *hi_);
    return ops::aug_val(root_);
  }

  // ----------------------------------------------------------- traversal --

  const_iterator begin() const {
    return const_iterator(root_, lo_.has_value() ? &*lo_ : nullptr,
                          hi_.has_value() ? &*hi_ : nullptr);
  }
  const_iterator end() const { return const_iterator(); }

  // Sequential in-order visit of the range: f(key, value).
  // O(k + log n) for k entries, no allocation; whole leaf blocks stream as
  // flat array scans.
  template <typename F>
  void for_each(const F& f) const {
    foreach_bounded(root_, lo_.has_value() ? &*lo_ : nullptr,
                    hi_.has_value() ? &*hi_ : nullptr, f);
  }

  // Materialize the range when a vector is genuinely wanted. O(k + log n).
  std::vector<entry_t> to_entries() const {
    std::vector<entry_t> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

 private:
  // In-order traversal with pruning at the bounds. Once the recursion
  // enters a subtree known to be inside a bound, that bound check is
  // dropped, so total work is O(k + log n).
  template <typename F>
  static void foreach_bounded(const node* t, const K* lo, const K* hi, const F& f) {
    if (t == nullptr) return;
    if (ops::is_chunk(t)) {
      auto bv = ops::NM::read_block(t->blk);
      const auto* es = bv.data();
      size_t c = bv.size();
      if (lo != nullptr && ops::less(es[c - 1].first, *lo))
        return foreach_bounded(t->right, lo, hi, f);
      if (hi != nullptr && ops::less(*hi, es[0].first))
        return foreach_bounded(t->left, lo, hi, f);
      size_t i0 = lo != nullptr ? ops::lower_idx(es, c, *lo) : 0;
      size_t i1 = hi != nullptr ? ops::upper_idx(es, c, *hi) : c;
      if (i0 == 0) foreach_bounded(t->left, lo, nullptr, f);
      for (size_t i = i0; i < i1; i++) f(es[i].first, es[i].second);
      if (i1 == c) foreach_bounded(t->right, nullptr, hi, f);
      return;
    }
    if (lo != nullptr && ops::less(t->key, *lo))
      return foreach_bounded(t->right, lo, hi, f);
    if (hi != nullptr && ops::less(*hi, t->key))
      return foreach_bounded(t->left, lo, hi, f);
    foreach_bounded(t->left, lo, nullptr, f);  // keys < t->key <= *hi
    f(t->key, t->value);
    foreach_bounded(t->right, nullptr, hi, f);  // keys > t->key >= *lo
  }

  node* root_ = nullptr;
  std::optional<K> lo_;
  std::optional<K> hi_;
};

}  // namespace pam
