// AVL balancing scheme (Adelson-Velsky & Landis 1962), join-based.
//
// Nodes store the subtree height (one byte; heights are <= 1.44 log2 n).
// The join algorithm is joinRightAVL from Blelloch, Ferizovic & Sun
// (SPAA 2016): walk down the taller tree's spine to a subtree whose height
// is within one of the shorter tree, attach there, and fix any +2 imbalance
// on the way back up with at most one (single or double) rotation per level.
#pragma once

#include <cstdint>

namespace pam {

struct avl_tree {
  static constexpr const char* name = "avl";

  struct data {
    uint8_t height = 1;
  };

  template <typename NM>
  static int height_of(const typename NM::node* t) {
    return t == nullptr ? 0 : t->bal.height;
  }

  template <typename NM>
  static void update_data(typename NM::node* t) {
    int hl = height_of<NM>(t->left), hr = height_of<NM>(t->right);
    t->bal.height = static_cast<uint8_t>(1 + (hl > hr ? hl : hr));
  }

  template <typename NM>
  struct ops {
    using node = typename NM::node;

    static int h(const node* t) { return height_of<NM>(t); }

    static node* node_join(node* l, node* m, node* r) {
      if (h(l) > h(r) + 1) return join_taller_left(l, m, r);
      if (h(r) > h(l) + 1) return join_taller_right(l, m, r);
      return NM::attach(l, m, r);
    }

    static bool check(const node* t) {
      if (t == nullptr) return true;
      int hl = h(t->left), hr = h(t->right);
      int diff = hl - hr;
      if (diff < -1 || diff > 1) return false;
      if (t->bal.height != 1 + (hl > hr ? hl : hr)) return false;
      return check(t->left) && check(t->right);
    }

   private:
    static node* join_taller_left(node* tl, node* m, node* tr) {
      // pre: h(tl) > h(tr) + 1
      node* t = NM::ensure_owned(tl);
      if (h(t->right) <= h(tr) + 1) {
        node* t1 = NM::attach(t->right, m, tr);
        t->right = t1;
        if (h(t1) <= h(t->left) + 1) {
          NM::update(t);
          return t;
        }
        t->right = NM::rotate_right(t1);
        return NM::rotate_left(t);
      }
      node* t1 = join_taller_left(t->right, m, tr);
      t->right = t1;
      if (h(t1) <= h(t->left) + 1) {
        NM::update(t);
        return t;
      }
      return NM::rotate_left(t);
    }

    static node* join_taller_right(node* tl, node* m, node* tr) {
      // pre: h(tr) > h(tl) + 1
      node* t = NM::ensure_owned(tr);
      if (h(t->left) <= h(tl) + 1) {
        node* t1 = NM::attach(tl, m, t->left);
        t->left = t1;
        if (h(t1) <= h(t->right) + 1) {
          NM::update(t);
          return t;
        }
        t->left = NM::rotate_left(t1);
        return NM::rotate_right(t);
      }
      node* t1 = join_taller_right(tl, m, t->left);
      t->left = t1;
      if (h(t1) <= h(t->right) + 1) {
        NM::update(t);
        return t;
      }
      return NM::rotate_right(t);
    }
  };
};

}  // namespace pam
