// Treap balancing scheme (Seidel & Aragon 1996), join-based.
//
// Priorities are not stored: they are recomputed as a strong hash of the
// key, which makes every treap over a given key set structurally unique and
// reproducible (important for the deterministic tests and benchmarks), and
// keeps the node as small as the weight-balanced one. Join walks down
// whichever input root has the higher priority, so the expected join depth
// is O(log n).
//
// Keys must be hashable: either the Entry provides
//   static uint64_t hash(const key_t&)
// or std::hash<key_t> must be well-formed.
#pragma once

#include <cstdint>
#include <functional>

#include "util/random.h"

namespace pam {

struct treap {
  static constexpr const char* name = "treap";

  struct data {};

  template <typename NM>
  static void update_data(typename NM::node*) {}

  template <typename NM>
  struct ops {
    using node = typename NM::node;
    using K = typename NM::K;

    static uint64_t prio(const K& k) {
      if constexpr (requires(const K& key) { NM::entry::hash(key); }) {
        return hash64(NM::entry::hash(k));
      } else {
        return hash64(std::hash<K>{}(k));
      }
    }

    static node* node_join(node* l, node* m, node* r) {
      uint64_t pm = prio(m->key);
      uint64_t pl = l == nullptr ? 0 : prio(l->key);
      uint64_t pr = r == nullptr ? 0 : prio(r->key);
      if ((l == nullptr || pl <= pm) && (r == nullptr || pr <= pm)) {
        return NM::attach(l, m, r);
      }
      if (pl >= pr) {  // l is non-null here: pl > pm >= 0
        node* t = NM::ensure_owned(l);
        t->right = node_join(t->right, m, r);
        NM::update(t);
        return t;
      }
      node* t = NM::ensure_owned(r);
      t->left = node_join(l, m, t->left);
      NM::update(t);
      return t;
    }

    static bool check(const node* t) {
      if (t == nullptr) return true;
      uint64_t p = prio(t->key);
      if (t->left != nullptr && prio(t->left->key) > p) return false;
      if (t->right != nullptr && prio(t->right->key) > p) return false;
      return check(t->left) && check(t->right);
    }
  };
};

}  // namespace pam
