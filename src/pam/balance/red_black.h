// Red-black balancing scheme (Bayer 1972), join-based.
//
// Nodes store their color and black height (the number of black nodes on
// every path from the node down to a null leaf, counting the node itself if
// black; null trees have black height 0). The join follows the black-height
// formulation of Blelloch, Ferizovic & Sun (SPAA 2016): descend the right
// spine of the taller (by black height) tree to the topmost black node with
// the shorter tree's black height, insert a red joining node there, and
// repair the possible red-red chain on the way up with one recolor+rotation
// per level. Both inputs are blackened first, which keeps the invariant
// reasoning simple at a cost of at most one extra black level per join.
#pragma once

#include <cstdint>

namespace pam {

struct red_black {
  static constexpr const char* name = "red-black";

  struct data {
    uint8_t black_height = 1;
    bool red = false;
  };

  // Recompute black height from the left child (children agree by
  // invariant); the color is state, not derived, so update keeps it.
  template <typename NM>
  static void update_data(typename NM::node* t) {
    uint8_t ch = t->left == nullptr ? 0 : t->left->bal.black_height;
    t->bal.black_height = static_cast<uint8_t>(ch + (t->bal.red ? 0 : 1));
  }

  template <typename NM>
  struct ops {
    using node = typename NM::node;

    static int bh(const node* t) { return t == nullptr ? 0 : t->bal.black_height; }
    static bool is_red(const node* t) { return t != nullptr && t->bal.red; }

    static node* node_join(node* l, node* m, node* r) {
      l = blacken(l);
      r = blacken(r);
      if (bh(l) > bh(r)) {
        node* t = join_taller_left(l, m, r);
        if (is_red(t) && is_red(t->right)) make_black(t);
        return t;
      }
      if (bh(r) > bh(l)) {
        node* t = join_taller_right(l, m, r);
        if (is_red(t) && is_red(t->left)) make_black(t);
        return t;
      }
      // Equal black heights with two black (possibly null) roots: a red
      // joining node preserves every path's black count.
      m->bal.red = true;
      return NM::attach(l, m, r);
    }

    static bool check(const node* t) { return check_rec(t) >= 0; }

   private:
    // t is owned by the caller throughout these helpers.
    static void make_black(node* t) {
      t->bal.red = false;
      t->bal.black_height++;
    }

    static node* blacken(node* t) {
      if (!is_red(t)) return t;
      t = NM::ensure_owned(t);
      make_black(t);
      return t;
    }

    static node* join_taller_left(node* tl, node* m, node* tr) {
      // pre: bh(tl) >= bh(tr), tr black
      if (bh(tl) == bh(tr) && !is_red(tl)) {
        m->bal.red = true;
        return NM::attach(tl, m, tr);
      }
      node* t = NM::ensure_owned(tl);
      t->right = join_taller_left(t->right, m, tr);
      NM::update(t);
      // The recursion may return a red node with a red right child directly
      // under a black t; recolor the grandchild and rotate it up.
      if (!t->bal.red && is_red(t->right) && is_red(t->right->right)) {
        t->right = NM::ensure_owned(t->right);
        t->right->right = NM::ensure_owned(t->right->right);
        make_black(t->right->right);
        return NM::rotate_left(t);
      }
      return t;
    }

    static node* join_taller_right(node* tl, node* m, node* tr) {
      // pre: bh(tr) >= bh(tl), tl black
      if (bh(tr) == bh(tl) && !is_red(tr)) {
        m->bal.red = true;
        return NM::attach(tl, m, tr);
      }
      node* t = NM::ensure_owned(tr);
      t->left = join_taller_right(tl, m, t->left);
      NM::update(t);
      if (!t->bal.red && is_red(t->left) && is_red(t->left->left)) {
        t->left = NM::ensure_owned(t->left);
        t->left->left = NM::ensure_owned(t->left->left);
        make_black(t->left->left);
        return NM::rotate_right(t);
      }
      return t;
    }

    // Returns the black height, or -1 on any invariant violation.
    static int check_rec(const node* t) {
      if (t == nullptr) return 0;
      int hl = check_rec(t->left);
      int hr = check_rec(t->right);
      if (hl < 0 || hr < 0 || hl != hr) return -1;
      if (t->bal.red && (is_red(t->left) || is_red(t->right))) return -1;
      int mine = hl + (t->bal.red ? 0 : 1);
      if (mine != t->bal.black_height) return -1;
      return mine;
    }
  };
};

}  // namespace pam
