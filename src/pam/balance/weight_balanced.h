// Weight-balanced (BB[alpha]) balancing scheme, PAM's default.
//
// The paper defaults to weight-balanced trees because they need no balance
// metadata at all beyond the subtree size, which every node already stores
// (it also serves rank/select and the parallel grain decisions) — so the
// weight-balanced node is the smallest of the four schemes.
//
// The join algorithm is the joinRightWB of Blelloch, Ferizovic & Sun, "Just
// Join for Parallel Ordered Sets" (SPAA 2016), which proves that for a
// suitable alpha the algorithm restores the BB[alpha] invariant with single
// and double rotations along the join spine. We use alpha = 2/7 (inside the
// valid (2/11, 1 - 1/sqrt(2)) range), for which the balance test reduces to
// integer arithmetic: a node with subtree weights (wl, wr), w = size + 1,
// satisfies the invariant iff 5*wl >= 2*wr and 5*wr >= 2*wl.
#pragma once

#include <cstddef>

namespace pam {

struct weight_balanced {
  static constexpr const char* name = "weight-balanced";

  struct data {};  // weight = size + 1 lives in the node already

  template <typename NM>
  static void update_data(typename NM::node*) {}

  template <typename NM>
  struct ops {
    using node = typename NM::node;

    static size_t weight(const node* t) { return NM::size(t) + 1; }

    // True iff the left weight is too heavy for the pair to be a node.
    static bool left_heavy(size_t wl, size_t wr) { return 5 * wr < 2 * wl; }

    static bool balanced_pair(size_t wl, size_t wr) {
      return !left_heavy(wl, wr) && !left_heavy(wr, wl);
    }

    // JOIN(l, m, r): all three owned, returns the owned joined root.
    static node* node_join(node* l, node* m, node* r) {
      size_t wl = weight(l), wr = weight(r);
      if (left_heavy(wl, wr)) return join_heavier_left(l, m, r);
      if (left_heavy(wr, wl)) return join_heavier_right(l, m, r);
      return NM::attach(l, m, r);
    }

    static bool check(const node* t) {
      if (t == nullptr) return true;
      if (!balanced_pair(weight(t->left), weight(t->right))) return false;
      return check(t->left) && check(t->right);
    }

   private:
    // l is too heavy: descend its right spine until balanced with r, attach,
    // then fix the balance on the way back up (SPAA'16 joinRightWB).
    static node* join_heavier_left(node* tl, node* m, node* tr) {
      if (!left_heavy(weight(tl), weight(tr))) return NM::attach(tl, m, tr);
      node* t = NM::ensure_owned(tl);
      node* t1 = join_heavier_left(t->right, m, tr);
      t->right = t1;
      size_t wl = weight(t->left), w1 = weight(t1);
      if (balanced_pair(wl, w1)) {
        NM::update(t);
        return t;
      }
      size_t wl1 = weight(t1->left), wr1 = weight(t1->right);
      if (balanced_pair(wl, wl1) && balanced_pair(wl + wl1, wr1)) {
        return NM::rotate_left(t);  // single rotation restores balance
      }
      t->right = NM::rotate_right(t1);  // double rotation
      return NM::rotate_left(t);
    }

    static node* join_heavier_right(node* tl, node* m, node* tr) {
      if (!left_heavy(weight(tr), weight(tl))) return NM::attach(tl, m, tr);
      node* t = NM::ensure_owned(tr);
      node* t1 = join_heavier_right(tl, m, t->left);
      t->left = t1;
      size_t wr = weight(t->right), w1 = weight(t1);
      if (balanced_pair(w1, wr)) {
        NM::update(t);
        return t;
      }
      size_t wr1 = weight(t1->right), wl1 = weight(t1->left);
      if (balanced_pair(wr, wr1) && balanced_pair(wr + wr1, wl1)) {
        return NM::rotate_right(t);
      }
      t->left = NM::rotate_left(t1);
      return NM::rotate_right(t);
    }
  };
};

}  // namespace pam
