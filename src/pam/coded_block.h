// Front-coded leaf blocks for variable-length (string) keys.
//
// A sealed block stores n sorted entries as:
//
//   [ header | u32 end[n] | records | V vals[n] ]
//
// where record i is { u16 prefix_len, suffix bytes }: key_i equals the first
// prefix_len bytes of key_{i-1} plus the suffix (record 0 stores the full
// key, prefix_len == 0). end[i] is the offset one past record i inside the
// record region, so record i spans [end[i-1], end[i]) and random access
// costs one directory probe plus a prefix re-derivation. This is the
// PaC-tree difference encoding: consecutive sorted keys share long prefixes
// (URLs, composite keys), so the per-entry cost collapses to
// 4 (dir) + 2 (plen) + |suffix| + sizeof(V) bytes, typically a small
// fraction of a std::string's 32-byte handle alone.
//
// Blocks are refcounted and immutable once sealed — exactly the sharing
// contract of the flat leaf_block — and are allocated from the byte-granular
// quarter-stepped capacity classes of alloc/leaf_pool.h (64 B .. 1 MiB), with
// larger blocks overflowing to individually counted aligned heap
// allocations. This file is part of the sanctioned allocation surface
// (tools/pam_lint.py): the pool-table singletons and the overflow path are
// the only places the encoder touches raw memory.
//
// Values must be trivially copyable (they are stored raw and released
// without destruction); keys must be std::string. Both constraints carry
// contracted diagnostics — see the static_asserts in coded_store and
// node_manager (tests/compile_fail/front_coded_fixed_key.cpp pins the
// message).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/leaf_pool.h"
#include "pam/block_fold.h"
#include "pam/entry_traits.h"
#include "util/thread_annotations.h"

namespace pam {

template <typename Entry>
struct coded_block {
  using K = typename Entry::key_t;
  using V = typename Entry::val_t;
  using A = typename entry_traits<Entry>::aug_t;
  using entry_t = std::pair<K, V>;

  std::atomic<uint32_t> ref_cnt;
  uint32_t count;
  int32_t cls;       // byte class; kOverflowClass for heap-allocated blocks
  uint32_t bytes;    // exact encoded footprint (accounting for overflow)
  uint32_t val_off;  // byte offset of the value array from the block start
  [[no_unique_address]] A aug;

  static constexpr int32_t kOverflowClass = -1;

  static constexpr size_t dir_offset() {
    return (sizeof(coded_block) + 3) / 4 * 4;
  }

  const uint32_t* dir() const {
    return reinterpret_cast<const uint32_t*>(
        reinterpret_cast<const char*>(this) + dir_offset());
  }
  uint32_t* dir() {
    return reinterpret_cast<uint32_t*>(reinterpret_cast<char*>(this) +
                                       dir_offset());
  }
  // Base of the byte-packed record region (immediately after the directory).
  const char* recs() const {
    return reinterpret_cast<const char*>(dir() + count);
  }
  char* recs() { return reinterpret_cast<char*>(dir() + count); }

  const V* vals() const {
    return reinterpret_cast<const V*>(reinterpret_cast<const char*>(this) +
                                      val_off);
  }
  V* vals() { return reinterpret_cast<V*>(reinterpret_cast<char*>(this) + val_off); }

  // Record i's {prefix_len, suffix}; offsets are unaligned, hence memcpy.
  std::pair<uint16_t, std::string_view> record(uint32_t i) const {
    const uint32_t* d = dir();
    uint32_t start = i == 0 ? 0 : d[i - 1];
    uint16_t plen;
    std::memcpy(&plen, recs() + start, sizeof(plen));
    uint32_t suffix_len = d[i] - start - uint32_t{sizeof(uint16_t)};
    return {plen,
            std::string_view(recs() + start + sizeof(uint16_t), suffix_len)};
  }
};

// Storage and codec for front-coded blocks of one Entry type: build/seal,
// retain/release, in-block search and decoding, plus live accounting for
// the space experiments (shared by every balance scheme over the Entry).
template <typename Entry>
struct coded_store {
  using block = coded_block<Entry>;
  using K = typename block::K;
  using V = typename block::V;
  using A = typename block::A;
  using entry_t = typename block::entry_t;
  using traits = entry_traits<Entry>;

  static_assert(std::is_same_v<K, std::string>,
                "PAM leaf-layout contract: key_layout::front_coded requires "
                "key_t = std::string; fixed-width keys must use "
                "key_layout::flat");
  static_assert(std::is_trivially_copyable_v<V>,
                "PAM leaf-layout contract: key_layout::front_coded requires a "
                "trivially copyable val_t (values are stored raw inside "
                "sealed blocks)");
  static_assert(alignof(block) <= alignof(std::max_align_t) &&
                    alignof(V) <= alignof(std::max_align_t),
                "PAM leaf-layout contract: front_coded block and value "
                "alignment must not exceed max_align_t");

  static constexpr size_t kSlotAlign = alignof(std::max_align_t);
  static constexpr uint16_t kMaxPrefix = 0xFFFF;

  // Encode n sorted unique entries (1 <= n) into a fresh sealed block.
  static block* build(const entry_t* es, uint32_t n) {
    // Pass 1: record sizes. The shared prefix is capped at u16 range; a
    // longer common prefix is simply re-stored in the suffix (lossless).
    size_t rec_bytes = 0;
    for (uint32_t i = 0; i < n; i++) {
      rec_bytes += sizeof(uint16_t) + es[i].first.size() - prefix_len(es, i);
    }
    size_t dir_off = block::dir_offset();
    size_t rec_off = dir_off + size_t{n} * sizeof(uint32_t);
    size_t val_off = (rec_off + rec_bytes + alignof(V) - 1) / alignof(V) * alignof(V);
    size_t total = val_off + size_t{n} * sizeof(V);

    int cls = byte_class_of(total);
    block* b;
    if (cls < kByteClasses) {
      b = static_cast<block*>(pool(cls).allocate());
    } else {
      b = static_cast<block*>(
          ::operator new(total, std::align_val_t{kSlotAlign}));
      table().overflow_blocks.fetch_add(1, std::memory_order_relaxed);
      table().overflow_bytes.fetch_add(static_cast<int64_t>(total),
                                       std::memory_order_relaxed);
    }
    new (&b->ref_cnt) std::atomic<uint32_t>(1);
    b->count = n;
    b->cls = cls < kByteClasses ? cls : block::kOverflowClass;
    b->bytes = static_cast<uint32_t>(total);
    b->val_off = static_cast<uint32_t>(val_off);

    // Pass 2: fill directory, records and values.
    uint32_t* d = b->dir();
    char* r = b->recs();
    uint32_t off = 0;
    for (uint32_t i = 0; i < n; i++) {
      uint16_t plen = prefix_len(es, i);
      std::memcpy(r + off, &plen, sizeof(plen));
      off += uint32_t{sizeof(uint16_t)};
      size_t suffix = es[i].first.size() - plen;
      std::memcpy(r + off, es[i].first.data() + plen, suffix);
      off += static_cast<uint32_t>(suffix);
      d[i] = off;
    }
    V* vs = b->vals();
    for (uint32_t i = 0; i < n; i++) vs[i] = es[i].second;

    if constexpr (traits::has_aug) {
      new (&b->aug) A(fold_entries_fast<traits, Entry>(es, 0, n));
    } else {
      new (&b->aug) A();
    }
    return b;
  }

  // ------------------------------------------------- serialization hooks --
  // A sealed coded block serializes as its raw encoded region — directory,
  // records and values exactly as laid out in memory, [dir_offset, bytes) —
  // because the front-coded encoding is position-independent past the
  // header. The header fields {count, bytes, val_off} travel in the frame;
  // the augmented value is recomputed on rebuild, never trusted from disk.
  static size_t payload_bytes(const block* b) {
    return size_t{b->bytes} - block::dir_offset();
  }

  static void write_payload(const block* b, char* dst) {
    std::memcpy(dst, reinterpret_cast<const char*>(b) + block::dir_offset(),
                payload_bytes(b));
  }

  // Rebuild a sealed block from its encoded region (`region` holds
  // bytes - dir_offset() bytes). Returns nullptr when the framing is
  // internally inconsistent — directory not strictly increasing, value
  // array not aligned where the record region ends — so a decoder can
  // never be walked outside the slot. CRC checks at the store layer catch
  // torn media; this guards the in-memory decode paths.
  static block* from_payload(const char* region, uint32_t count,
                             uint32_t bytes, uint32_t val_off) {
    const size_t dir_off = block::dir_offset();
    const size_t rec_off = dir_off + size_t{count} * sizeof(uint32_t);
    if (count == 0 || size_t{bytes} < rec_off || size_t{val_off} < rec_off ||
        val_off > bytes ||
        size_t{bytes} - val_off != size_t{count} * sizeof(V) ||
        val_off % alignof(V) != 0) {
      return nullptr;
    }
    // The directory must be strictly increasing (every record carries at
    // least its u16 prefix_len) and stay inside [rec_off, val_off).
    uint32_t prev = 0;
    for (uint32_t i = 0; i < count; i++) {
      uint32_t d;
      std::memcpy(&d, region + size_t{i} * sizeof(uint32_t), sizeof(d));
      if (d < prev + uint32_t{sizeof(uint16_t)} || rec_off + d > val_off) {
        return nullptr;
      }
      prev = d;
    }

    int cls = byte_class_of(bytes);
    block* b;
    if (cls < kByteClasses) {
      b = static_cast<block*>(pool(cls).allocate());
    } else {
      b = static_cast<block*>(
          ::operator new(bytes, std::align_val_t{kSlotAlign}));
      table().overflow_blocks.fetch_add(1, std::memory_order_relaxed);
      table().overflow_bytes.fetch_add(static_cast<int64_t>(bytes),
                                       std::memory_order_relaxed);
    }
    new (&b->ref_cnt) std::atomic<uint32_t>(1);
    b->count = count;
    b->cls = cls < kByteClasses ? cls : block::kOverflowClass;
    b->bytes = bytes;
    b->val_off = val_off;
    std::memcpy(reinterpret_cast<char*>(b) + dir_off, region,
                size_t{bytes} - dir_off);
    if constexpr (traits::has_aug) {
      std::vector<entry_t> es;
      es.reserve(count);
      decode_all(b, es);
      new (&b->aug) A(fold_entries_fast<traits, Entry>(es.data(), 0, count));
    } else {
      new (&b->aug) A();
    }
    return b;
  }

  static block* retain(block* b) {
    b->ref_cnt.fetch_add(1, std::memory_order_relaxed);
    return b;
  }

  static void release(block* b) {
    if (b->ref_cnt.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    b->aug.~A();  // keys are encoded bytes and values trivially copyable
    if (b->cls != block::kOverflowClass) {
      pool(b->cls).deallocate(b);
    } else {
      size_t total = b->bytes;
      ::operator delete(b, std::align_val_t{kSlotAlign});
      table().overflow_blocks.fetch_sub(1, std::memory_order_relaxed);
      table().overflow_bytes.fetch_sub(static_cast<int64_t>(total),
                                       std::memory_order_relaxed);
    }
  }

  // ------------------------------------------------------------- reading --

  // The first key, zero-copy: record 0 stores it whole.
  static std::string_view first_key(const block* b) {
    return b->record(0).second;
  }

  static const V* vals(const block* b) { return b->vals(); }

  // Positional value accessors shared with delta_store (which has no value
  // array to point at), so tree_ops reads values through one name.
  static V first_val(const block* b) { return b->vals()[0]; }
  static V value_at(const block* b, uint32_t i) { return b->vals()[i]; }

  // Append all n entries, keys materialized, onto out.
  static void decode_all(const block* b, std::vector<entry_t>& out) {
    std::string cur;
    const V* vs = b->vals();
    for (uint32_t i = 0; i < b->count; i++) {
      auto [plen, suffix] = b->record(i);
      cur.resize(plen);
      cur.append(suffix);
      out.emplace_back(cur, vs[i]);
    }
  }

  // Entry i, with the key materialized (decodes the prefix chain up to i).
  static entry_t entry_at(const block* b, uint32_t i) {
    std::string cur;
    for (uint32_t j = 0; j <= i; j++) {
      auto [plen, suffix] = b->record(j);
      cur.resize(plen);
      cur.append(suffix);
    }
    return {std::move(cur), b->vals()[i]};
  }

  // First slot i with !(key_i < k); *eq reports key_i == k. Incremental
  // decode: each step re-derives only the suffix on top of the running key.
  static uint32_t lower_idx(const block* b, std::string_view k, bool* eq) {
    std::string cur;
    for (uint32_t i = 0; i < b->count; i++) {
      auto [plen, suffix] = b->record(i);
      cur.resize(plen);
      cur.append(suffix);
      if (!Entry::comp(std::string_view(cur), k)) {
        if (eq != nullptr) *eq = !Entry::comp(k, std::string_view(cur));
        return i;
      }
    }
    if (eq != nullptr) *eq = false;
    return b->count;
  }

  // First slot i with k < key_i.
  static uint32_t upper_idx(const block* b, std::string_view k) {
    std::string cur;
    for (uint32_t i = 0; i < b->count; i++) {
      auto [plen, suffix] = b->record(i);
      cur.resize(plen);
      cur.append(suffix);
      if (Entry::comp(k, std::string_view(cur))) return i;
    }
    return b->count;
  }

  // -------------------------------------------------------- accounting --

  // Live blocks / bytes across all maps of this Entry type (Table 4). Bytes
  // count full slot footprints, the same accounting basis as leaf_store.
  static int64_t used_blocks() {
    int64_t total = table().overflow_blocks.load(std::memory_order_relaxed);
    for (int c = 0; c < kByteClasses; c++) {
      raw_pool* p = table().pools[c].load(std::memory_order_acquire);
      if (p != nullptr) total += p->used();
    }
    return total;
  }

  static int64_t used_bytes() {
    int64_t total = table().overflow_bytes.load(std::memory_order_relaxed);
    for (int c = 0; c < kByteClasses; c++) {
      raw_pool* p = table().pools[c].load(std::memory_order_acquire);
      if (p != nullptr) total += p->used() * static_cast<int64_t>(p->slot_bytes());
    }
    return total;
  }

 private:
  // Length of the prefix of es[i].first shared with es[i-1].first, capped at
  // the u16 record field (0 for the block's first key).
  static uint16_t prefix_len(const entry_t* es, uint32_t i) {
    if (i == 0) return 0;
    const std::string& prev = es[i - 1].first;
    const std::string& cur = es[i].first;
    size_t lim = prev.size() < cur.size() ? prev.size() : cur.size();
    if (lim > kMaxPrefix) lim = kMaxPrefix;
    size_t p = 0;
    while (p < lim && prev[p] == cur[p]) p++;
    return static_cast<uint16_t>(p);
  }

  struct pool_table {
    // pam-lint: allow(unguarded-mutex) — mu serializes pool *creation*
    // only; the pools themselves are published through the atomics and
    // read lock-free (double-checked init in pool() below), so there is
    // no member for GUARDED_BY to name.
    mutex mu;
    std::array<std::atomic<raw_pool*>, kByteClasses> pools{};
    std::atomic<int64_t> overflow_blocks{0};
    std::atomic<int64_t> overflow_bytes{0};
  };

  static pool_table& table() {
    static pool_table* t = new pool_table();  // immortal
    return *t;
  }

  static raw_pool& pool(int cls) {
    pool_table& t = table();
    raw_pool* p = t.pools[cls].load(std::memory_order_acquire);
    if (p == nullptr) {
      mutex_guard lock(t.mu);
      p = t.pools[cls].load(std::memory_order_relaxed);
      if (p == nullptr) {
        p = new raw_pool(byte_class_slot(cls), kSlotAlign);  // immortal
        t.pools[cls].store(p, std::memory_order_release);
      }
    }
    return *p;
  }
};

}  // namespace pam
