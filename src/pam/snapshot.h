// snapshot_box: the shared-instance concurrency pattern of paper §4, with a
// lock-free read path.
//
// Any number of reader threads atomically take O(1) snapshots of a shared
// map and work on them without locks; writers update the shared instance by
// swapping in a new version. The paper swaps the root pointer with a CAS;
// here a writer publishes an immutable heap payload {map, size, version}
// through one atomic pointer, and a reader acquires a snapshot with an
// epoch-protected load plus a root refcount bump:
//
//   reader   epoch::guard g;                    // pins reclamation
//            payload* p = current_.load(acq);   // the published version
//            Map snap = p->map;                 // O(1): inc(root)
//
// No reader-side mutex anywhere: snapshot(), version(), size() and the
// zero-copy with_current() are wait-free. Writers remain serialized on a
// writer mutex (the paper's CAS loop serializes them just the same), and a
// displaced payload is never freed inline — it is retired onto the epoch
// limbo lists (alloc/arena.h) and destroyed only once every reader that
// could have seen it has moved on. The payload destructor drops the root
// reference, so big displaced versions are torn down by the existing
// parallel GC when the limbo list drains.
//
// The serving layer (src/server/) builds consistent cuts across many boxes
// by optimistic versioned re-validation (read every shard's payload, then
// confirm no shard's version moved — see sharded_map::snapshot_all), with
// writer_lock() as the writer-blocking fallback; the old protocol of holding
// every box's reader mutex is gone along with the reader mutex itself.
// The protocol is machine-checked (clang -Wthread-safety, see
// util/thread_annotations.h): payload dereferences require the epoch_domain
// capability (shared — an epoch::guard) or the writer lock; publication
// requires writer_mu_; retirement is EXCLUDES(writer_mu_), so moving a
// retire back inside the writer critical section fails to compile.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>

#include "alloc/arena.h"
#include "util/thread_annotations.h"

namespace pam {

template <typename Map>
class snapshot_box {
 public:
  // pam-lint: allow(naked-new) — the initial payload, before any sharing.
  snapshot_box() : current_(new payload{Map{}, 0, 0}) {}
  explicit snapshot_box(Map initial) {
    size_t sz = initial.size();
    // pam-lint: allow(naked-new) — the initial payload, before any sharing.
    current_.store(new payload{std::move(initial), sz, 0},
                   std::memory_order_relaxed);
  }

  // No readers or writers may be in flight at destruction (standard object
  // lifetime); payloads already retired are self-contained and drain later.
  // pam-lint: allow(naked-delete) — the final payload, after all sharing.
  ~snapshot_box() { delete current_.load(std::memory_order_relaxed); }

  snapshot_box(const snapshot_box&) = delete;
  snapshot_box& operator=(const snapshot_box&) = delete;

  // An O(1) atomic snapshot; the caller owns an immutable version that no
  // concurrent update can perturb. Wait-free: an epoch guard, one pointer
  // load, one refcount bump.
  Map snapshot() const {
    epoch::guard g;
    return payload_ref()->map;
  }

  // Snapshot plus the version it corresponds to, from one payload read (the
  // pair is atomic by construction — both fields live in the same published
  // object).
  std::pair<Map, uint64_t> snapshot_versioned() const {
    epoch::guard g;
    const payload* p = payload_ref();
    return {p->map, p->version};
  }

  // Run f against the current version without taking a snapshot: no
  // refcount traffic at all. f must not retain references into the map
  // beyond its own return — the version is only pinned while f runs.
  // Keep f short (point lookups, O(log n) queries): the epoch guard it
  // runs under pins reclamation *process-wide*, so a long scan inside f
  // parks every concurrently displaced version on the limbo lists for its
  // whole duration. Long reads should take snapshot() — one refcount bump
  // buys a private version that pins nothing.
  template <typename F>
  auto with_current(const F& f) const {
    epoch::guard g;
    return f(payload_ref()->map);
  }

  // Zero-cost access to the published instance for a caller already inside
  // an epoch::guard — the multi-box form of with_current (one guard, many
  // boxes). The returned reference is valid only while that guard is held;
  // retaining it past the guard is a use-after-free the version counter
  // cannot save you from. Enforced: calling this without holding
  // epoch_domain (shared) is a compile error under clang -Wthread-safety.
  const Map& current_map() const PAM_REQUIRES_SHARED(epoch_domain) {
    return payload_ref()->map;
  }

  // Number of commits (store / update) ever applied. Monotonic; a reader
  // can compare versions from two reads to detect intervening writes.
  uint64_t version() const {
    epoch::guard g;
    return payload_ref()->version;
  }

  // Entry count of the current instance, computed at commit time so a size
  // query is one payload read — no snapshot copy, no refcount traffic.
  size_t size() const {
    epoch::guard g;
    return payload_ref()->size;
  }

  // (version, size) of one committed instance, read atomically — the
  // primitive behind sharded_map's validated cuts and size().
  std::pair<uint64_t, size_t> version_size() const {
    epoch::guard g;
    const payload* p = payload_ref();
    return {p->version, p->size};
  }

  // Replace the shared instance.
  void store(Map m) {
    payload* displaced;
    {
      mutex_guard serialize(writer_mu_);
      displaced = publish(std::move(m));
    }
    retire(displaced);
  }

  // Atomically apply f : Map -> Map to the shared instance. Writers are
  // fully serialized by the writer lock (no update can be lost); readers
  // never wait — they keep acquiring whichever version is published while f
  // runs on the writer's private copy.
  template <typename F>
  void update(const F& f) {
    payload* displaced;
    {
      mutex_guard serialize(writer_mu_);
      // Holding the writer lock, current_ cannot change and the payload it
      // points at cannot be retired: copying the map here needs no guard.
      Map working = payload_locked()->map;
      displaced = publish(f(std::move(working)));
    }
    retire(displaced);
  }

  // update(), but gated: f runs and publishes only if cond() holds, checked
  // AFTER the writer lock is won. Returns whether f was applied. This is
  // the primitive behind sharded_map's rebalance protocol — cond re-checks
  // the shard's retirement flag under the lock, so a writer that lost the
  // race to a rebalance (which marks shards retired while holding every
  // writer lock) aborts here and re-routes through the successor directory
  // instead of committing into a box the rebalance already drained.
  template <typename Cond, typename F>
  bool update_if(const Cond& cond, const F& f) {
    payload* displaced;
    {
      mutex_guard serialize(writer_mu_);
      if (!cond()) return false;
      Map working = payload_locked()->map;
      displaced = publish(f(std::move(working)));
    }
    retire(displaced);
    return true;
  }

  // --------------------------------------------- multi-box consistent cut --
  // Readers no longer hold any lock, so a cut across several boxes is built
  // optimistically (snapshot every box, re-validate every version — see
  // sharded_map). The fallback for writer-churn starvation is to block the
  // writers themselves: writer_lock() each box in one global order, peek()
  // each, drop the locks. peek()/peek_version()/peek_size() must only be
  // called while the lock returned by writer_lock() on the same box is held
  // — with the writer excluded, the published payload is pinned. That
  // requirement is annotated: peek* declare PAM_REQUIRES(writer_mu_), so an
  // unlocked peek is a compile error under clang -Wthread-safety. The
  // analysis cannot follow the lock through the std::unique_lock handle
  // (writer_lock() keeps the dynamic, movable form the multi-box fallback
  // needs — a vector of held locks), so the fallback loop itself carries
  // PAM_NO_THREAD_SAFETY_ANALYSIS and TSan covers it; every *other* caller
  // of peek* gets checked.
  std::unique_lock<mutex> writer_lock() const {
    return std::unique_lock<mutex>(writer_mu_);
  }
  const Map& peek() const PAM_REQUIRES(writer_mu_) {
    return payload_locked()->map;
  }
  uint64_t peek_version() const PAM_REQUIRES(writer_mu_) {
    return payload_locked()->version;
  }
  size_t peek_size() const PAM_REQUIRES(writer_mu_) {
    return payload_locked()->size;
  }

 private:
  // One committed version: everything a reader observes about it lives in
  // one immutable heap object behind one atomic pointer.
  struct payload {
    Map map;
    size_t size;
    uint64_t version;
  };

  // The two checked dereference paths to the published payload. A reader
  // must hold epoch_domain (shared): the guard pins reclamation, so the
  // pointer stays alive across the dereference. A writer must hold
  // writer_mu_: with writers excluded, nothing can displace (and hence
  // retire) the payload. Every dereference of a published payload goes
  // through one of these (publish's swap and the lifecycle edges in
  // ctor/dtor touch only the pointer), so the protocol has exactly two
  // doors and both are capability-checked.
  const payload* payload_ref() const PAM_REQUIRES_SHARED(epoch_domain) {
    return current_.load(std::memory_order_acquire);
  }
  const payload* payload_locked() const PAM_REQUIRES(writer_mu_) {
    return current_.load(std::memory_order_acquire);
  }

  // Swap the new version in and hand the displaced payload back for
  // retirement.
  payload* publish(Map next) PAM_REQUIRES(writer_mu_) {
    size_t sz = next.size();
    payload* old = current_.load(std::memory_order_relaxed);
    // pam-lint: allow(naked-new) — payloads are commit-rate objects owned
    // by the box, freed exclusively through the epoch limbo (retire below).
    payload* fresh = new payload{std::move(next), sz, old->version + 1};
    current_.store(fresh, std::memory_order_release);
    return old;
  }

  // Retire a displaced payload onto the epoch limbo list — never freed
  // inline, because a concurrent reader may be mid-acquisition on it.
  // Called *after* the writer lock drops, and annotated so (EXCLUDES):
  // retire occasionally runs a limbo drain (amortized, every
  // kDrainThreshold-th retirement), and a large displaced-version teardown
  // must not stall this shard's commits or a fallback cut waiting on
  // writer_lock(). Moving this call back inside the writer critical
  // section is a compile error under clang -Wthread-safety.
  void retire(payload* displaced) const PAM_EXCLUDES(writer_mu_) {
    // pam-lint: allow(naked-delete) — the limbo deleter is the single
    // reclamation point for payloads published by this box.
    epoch::retire(displaced, [](void* q) { delete static_cast<payload*>(q); });
  }

  mutable mutex writer_mu_;  // serializes whole read-modify-write updates
  std::atomic<payload*> current_{nullptr};
};

}  // namespace pam
