// snapshot_box: the shared-instance concurrency pattern of paper §4.
//
// Any number of reader threads atomically take O(1) snapshots of a shared
// map and work on them without locks; writers update the shared instance by
// swapping in a new version. The paper swaps the root pointer with a CAS
// (serializing writers); we serialize through a mutex, which is the same
// protocol — writers are sequentialized either way, and the critical
// sections here are O(1) refcount bumps. Batched updates (the recommended
// pattern) go through update() with a multi_insert inside.
#pragma once

#include <mutex>
#include <utility>

namespace pam {

template <typename Map>
class snapshot_box {
 public:
  snapshot_box() = default;
  explicit snapshot_box(Map initial) : current_(std::move(initial)) {}

  // An O(1) atomic snapshot; the caller owns an immutable version that no
  // concurrent update can perturb.
  Map snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Replace the shared instance.
  void store(Map m) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(m);
  }

  // Atomically apply f : Map -> Map to the shared instance. Writers are
  // fully serialized by a dedicated writer lock (no update can be lost),
  // while readers only ever contend on the O(1) snapshot swap — f itself
  // runs on a private copy with no reader-visible lock held.
  template <typename F>
  void update(const F& f) {
    std::lock_guard<std::mutex> serialize(writer_mu_);
    Map working;
    {
      std::lock_guard<std::mutex> lock(mu_);
      working = current_;
    }
    Map next = f(std::move(working));
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = std::move(next);
    }
  }

 private:
  mutable std::mutex mu_;  // guards current_ (held only for O(1) copies)
  std::mutex writer_mu_;   // serializes whole read-modify-write updates
  Map current_;
};

}  // namespace pam
