// snapshot_box: the shared-instance concurrency pattern of paper §4.
//
// Any number of reader threads atomically take O(1) snapshots of a shared
// map and work on them without locks; writers update the shared instance by
// swapping in a new version. The paper swaps the root pointer with a CAS
// (serializing writers); we serialize through a mutex, which is the same
// protocol — writers are sequentialized either way, and the critical
// sections here are O(1) refcount bumps. Batched updates (the recommended
// pattern) go through update() with a multi_insert inside.
//
// The serving layer (src/server/) builds on two small extensions: a
// monotonic version counter (bumped on every committed store/update), and
// an external-lock protocol (lock() + peek()) that lets sharded_map take a
// consistent cut across many boxes by holding all their snapshot mutexes
// for the O(S) duration of S refcount bumps.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>

namespace pam {

template <typename Map>
class snapshot_box {
 public:
  snapshot_box() = default;
  explicit snapshot_box(Map initial)
      : current_(std::move(initial)), size_(current_.size()) {}

  // An O(1) atomic snapshot; the caller owns an immutable version that no
  // concurrent update can perturb.
  Map snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Snapshot plus the version it corresponds to.
  std::pair<Map, uint64_t> snapshot_versioned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {current_, version_};
  }

  // Number of commits (store / update) ever applied. Monotonic; a reader
  // can compare versions from two snapshots to detect intervening writes.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  // Entry count of the current instance, maintained at commit time so a
  // size query is one counter read — no snapshot copy, no refcount traffic.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  // Replace the shared instance.
  void store(Map m) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(m);
    size_ = current_.size();
    ++version_;
  }

  // Atomically apply f : Map -> Map to the shared instance. Writers are
  // fully serialized by a dedicated writer lock (no update can be lost),
  // while readers only ever contend on the O(1) snapshot swap — f itself
  // runs on a private copy with no reader-visible lock held.
  template <typename F>
  void update(const F& f) {
    std::lock_guard<std::mutex> serialize(writer_mu_);
    Map working;
    {
      std::lock_guard<std::mutex> lock(mu_);
      working = current_;
    }
    Map next = f(std::move(working));
    size_t next_size = next.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = std::move(next);
      size_ = next_size;
      ++version_;
    }
  }

  // --------------------------------------------- multi-box consistent cut --
  // For an atomic snapshot across several boxes: lock() each box (always in
  // one global order to avoid deadlock), peek() each while the locks are
  // held, then drop the locks. No update can commit at any locked box in
  // between, so the peeked maps form a consistent cut. peek() must only be
  // called while the lock returned by lock() on the same box is alive.
  std::unique_lock<std::mutex> lock() const {
    return std::unique_lock<std::mutex>(mu_);
  }
  const Map& peek() const { return current_; }
  uint64_t peek_version() const { return version_; }
  size_t peek_size() const { return size_; }

 private:
  mutable std::mutex mu_;  // guards current_/size_/version_ (O(1) sections)
  std::mutex writer_mu_;   // serializes whole read-modify-write updates
  Map current_;
  size_t size_ = 0;        // current_.size(), maintained at commit
  uint64_t version_ = 0;
};

}  // namespace pam
