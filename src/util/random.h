// Deterministic pseudo-random utilities used across the library, tests and
// benchmarks. Everything here is seeded explicitly so that all experiments
// are reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"

namespace pam {

// splitmix64 (Steele, Lea, Flood; JEA 2014). A tiny, statistically strong
// mixer. We use it both as a PRNG and as the hash that drives treap
// priorities, so trees built from the same keys are always identical.
// Wraparound mod 2^64 is the whole point of the mixing arithmetic, so the
// clang -fsanitize=integer CI job is told to look away here (and only here:
// unsigned wrap anywhere else in the tree is a bug worth flagging).
PAM_NO_SANITIZE_UNSIGNED_WRAP
inline constexpr uint64_t hash64(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A small value-type PRNG: `random(seed)` is a pure function of the seed, and
// `fork(i)` derives an independent stream, which lets parallel loops draw
// per-index randomness without sharing state.
class random_gen {
 public:
  explicit constexpr random_gen(uint64_t seed = 0) noexcept : state_(seed) {}

  // The i-th value of this stream, without advancing. state_ + i wraps by
  // design: the sum is just a stream position fed to the mixer.
  PAM_NO_SANITIZE_UNSIGNED_WRAP
  constexpr uint64_t ith(uint64_t i) const noexcept { return hash64(state_ + i); }

  // An independent generator derived from this one.
  PAM_NO_SANITIZE_UNSIGNED_WRAP
  constexpr random_gen fork(uint64_t i) const noexcept {
    return random_gen(hash64(state_ + i));
  }

  constexpr uint64_t next() noexcept {
    state_ = hash64(state_);
    return state_;
  }

  // Uniform in [0, bound). bound must be nonzero.
  constexpr uint64_t next_bounded(uint64_t bound) noexcept { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

// n uniform keys in [0, range). With range >> n the keys are distinct with
// high probability; benchmark builders dedupe where needed.
inline std::vector<uint64_t> random_keys(size_t n, uint64_t range, uint64_t seed) {
  std::vector<uint64_t> out(n);
  random_gen g(seed);
  for (size_t i = 0; i < n; i++) out[i] = g.ith(i) % range;
  return out;
}

// A random permutation of [0, n) (Fisher-Yates, sequential).
inline std::vector<uint64_t> random_permutation(size_t n, uint64_t seed) {
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; i++) out[i] = i;
  random_gen g(seed);
  for (size_t i = n; i > 1; i--) {
    size_t j = g.next_bounded(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace pam
