// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace pam {

// A simple start/elapsed wall-clock timer (seconds, double precision).
class timer {
 public:
  timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pam
