// Environment-variable knobs shared by tests and benchmarks.
//
//   PAM_NUM_WORKERS  number of scheduler workers (default: all hardware threads)
//   PAM_BENCH_SCALE  multiplies every default benchmark size (default 1.0);
//                    the paper's 10^8..10^10-scale experiments are scaled to
//                    laptop sizes by default and can be grown back with this.
//
// Every PAM_* knob in the tree is listed in env_knobs() below — the central
// catalogue benches dump for config provenance (a BENCH_*.json row is
// meaningless without the knob values that produced it). Adding a knob
// anywhere in the tree means adding its row here: pam_lint's env-catalogue
// rule greps every source for PAM_* reads and fails on any knob missing
// from this table; test_util asserts the table's own invariants.
#pragma once

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace pam {

namespace internal {
// A parse consumed the whole value iff the end pointer moved past the last
// non-whitespace character; "12abc" or "abc" must fall back rather than
// silently becoming 12 or 0.
inline bool env_fully_parsed(const char* s, const char* end) {
  if (end == s) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}
}  // namespace internal

inline long env_long(const char* name, long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s, &end, 10);
  if (errno == ERANGE || !internal::env_fully_parsed(s, end)) return fallback;
  return v;
}

inline double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s, &end);
  if (errno == ERANGE || !internal::env_fully_parsed(s, end)) return fallback;
  return v;
}

// Scales a paper-sized workload down to the default local size. `paper_n` is
// what the paper used; `local_n` is our default; PAM_BENCH_SCALE multiplies.
inline size_t scaled_size(size_t local_n) {
  double s = env_double("PAM_BENCH_SCALE", 1.0);
  double v = static_cast<double>(local_n) * s;
  return v < 1.0 ? 1 : static_cast<size_t>(v);
}

// ------------------------------------------------------ knob introspection --

// One row of the knob catalogue: where the knob acts and what it means. The
// default is recorded as text — knobs are parsed at their point of use with
// their own clamps, so the catalogue describes rather than duplicates them.
struct env_knob {
  const char* name;
  const char* layer;    // subsystem the knob steers
  const char* fallback; // default when unset/unparsable, as documentation
  const char* what;
};

// Every PAM_* environment knob in the tree. Kept sorted by name.
inline const std::array<env_knob, 24>& env_knobs() {
  static const std::array<env_knob, 24> knobs{{
      {"PAM_BENCH_JSON", "bench", "(unset)",
       "append one JSON line per benchmark row to this file"},
      {"PAM_BENCH_SCALE", "bench", "1.0",
       "multiply every default benchmark size"},
      {"PAM_CKPT_INCR_RATIO", "checkpoint", "0.5",
       "escalate a delta to a full checkpoint past this fraction of the "
       "last full's bytes"},
      {"PAM_CKPT_MAX_CHAIN", "checkpoint", "8",
       "max incremental checkpoints before a forced full"},
      {"PAM_CKPT_PAGE_BYTES", "checkpoint", "1048576",
       "checkpoint data file page size"},
      {"PAM_DIFF_GATE", "bench", "5.0",
       "fail bench_diff_incremental when the incremental diff is not this "
       "many times faster than a full rebuild"},
      {"PAM_DURABILITY_GATE", "bench", "0.30",
       "fail bench_durability when the 1% churn incremental checkpoint "
       "exceeds this fraction of the full checkpoint's bytes"},
      {"PAM_LEAF_BLOCK", "tree", "32",
       "entries per leaf block of the blocked tree"},
      {"PAM_METRICS_DUMP", "obs", "(unset)",
       "write the Prometheus-text metrics scrape to this file at bench exit"},
      {"PAM_NUM_WORKERS", "scheduler", "hardware threads",
       "scheduler worker count"},
      {"PAM_PERF_GATE", "bench", "0",
       "enforce the perf-smoke acceptance gates by exit code"},
      {"PAM_READ_GATE", "bench", "derated by machine size",
       "fail YCSB read scaling below this speedup"},
      {"PAM_REBALANCE_GATE", "bench", "derated by machine size",
       "fail the skewed-YCSB bench when rebalanced throughput is not this "
       "many times the static-directory baseline"},
      {"PAM_REBALANCE_INTERVAL_MS", "server", "0 (off)",
       "kv_store rebalance policy tick period; positive enables the thread"},
      {"PAM_REBALANCE_MIN_OPS", "server", "4096",
       "min routed write ops per policy window before skew is judged"},
      {"PAM_REBALANCE_RATIO", "server", "2.0",
       "rebalance when the hottest shard exceeds this multiple of the mean "
       "per-shard load"},
      {"PAM_SIMD_FOLD", "tree", "1",
       "use the vectorized block fold path for hinted integer aug monoids"},
      {"PAM_SIMD_SEARCH", "tree", "1",
       "use the branch-free in-block search path"},
      {"PAM_TRACE", "obs", "0", "enable trace-span recording at startup"},
      {"PAM_TRACE_JSON", "obs", "(unset)",
       "write the Chrome-trace JSON dump to this file at bench exit"},
      {"PAM_TRACE_RING", "obs", "4096",
       "per-thread trace ring capacity in spans"},
      {"PAM_WAL_SEGMENT_BYTES", "wal", "4194304",
       "rotate the active WAL segment past this size"},
      {"PAM_WAL_SYNC_EVERY", "wal", "1", "group-fsync once every N appends"},
      {"PAM_YCSB_GATE", "bench", "5.0",
       "fail YCSB when sharded write throughput is not this many times the "
       "single-box baseline"},
  }};
  return knobs;
}

// The knob's current setting, or `fallback_text` when unset. (Unparsable
// values also fall back at the point of use; here we report what the
// environment literally says.)
inline std::string env_knob_value(const env_knob& k) {
  const char* s = std::getenv(k.name);
  return s != nullptr ? std::string(s) : std::string(k.fallback);
}

}  // namespace pam
