// Environment-variable knobs shared by tests and benchmarks.
//
//   PAM_NUM_WORKERS  number of scheduler workers (default: all hardware threads)
//   PAM_BENCH_SCALE  multiplies every default benchmark size (default 1.0);
//                    the paper's 10^8..10^10-scale experiments are scaled to
//                    laptop sizes by default and can be grown back with this.
#pragma once

#include <cstdlib>
#include <string>

namespace pam {

inline long env_long(const char* name, long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtol(s, nullptr, 10);
}

inline double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtod(s, nullptr);
}

// Scales a paper-sized workload down to the default local size. `paper_n` is
// what the paper used; `local_n` is our default; PAM_BENCH_SCALE multiplies.
inline size_t scaled_size(size_t local_n) {
  double s = env_double("PAM_BENCH_SCALE", 1.0);
  double v = static_cast<double>(local_n) * s;
  return v < 1.0 ? 1 : static_cast<size_t>(v);
}

}  // namespace pam
