// Environment-variable knobs shared by tests and benchmarks.
//
//   PAM_NUM_WORKERS  number of scheduler workers (default: all hardware threads)
//   PAM_BENCH_SCALE  multiplies every default benchmark size (default 1.0);
//                    the paper's 10^8..10^10-scale experiments are scaled to
//                    laptop sizes by default and can be grown back with this.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace pam {

namespace internal {
// A parse consumed the whole value iff the end pointer moved past the last
// non-whitespace character; "12abc" or "abc" must fall back rather than
// silently becoming 12 or 0.
inline bool env_fully_parsed(const char* s, const char* end) {
  if (end == s) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}
}  // namespace internal

inline long env_long(const char* name, long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s, &end, 10);
  if (errno == ERANGE || !internal::env_fully_parsed(s, end)) return fallback;
  return v;
}

inline double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s, &end);
  if (errno == ERANGE || !internal::env_fully_parsed(s, end)) return fallback;
  return v;
}

// Scales a paper-sized workload down to the default local size. `paper_n` is
// what the paper used; `local_n` is our default; PAM_BENCH_SCALE multiplies.
inline size_t scaled_size(size_t local_n) {
  double s = env_double("PAM_BENCH_SCALE", 1.0);
  double v = static_cast<double>(local_n) * s;
  return v < 1.0 ? 1 : static_cast<size_t>(v);
}

}  // namespace pam
