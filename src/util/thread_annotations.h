// Clang Thread Safety Analysis support: the concurrency contract as code.
//
// Every lock protocol in this repository (DESIGN.md "The concurrency
// contract") is expressed with the macros below so that a clang build with
// -Wthread-safety (promoted to -Werror=thread-safety in CI) rejects code
// that breaks it: touching a guarded member without its mutex, calling a
// REQUIRES function without the capability, retiring a payload while the
// writer lock is still held. On GCC — which has no capability analysis —
// every macro compiles away to nothing, so the annotations cost zero and
// the portable build is unchanged.
//
// Three kinds of capability appear in the codebase:
//
//   * plain mutexes (pam::mutex / pam::shared_mutex below): annotated
//     wrappers over the std types, lockable through the scoped guards or
//     std::unique_lock;
//   * the EBR domain (alloc/arena.h `epoch_domain`): a process-global
//     capability held *shared* by every epoch::guard. Dereferencing
//     epoch-published state is REQUIRES_SHARED(epoch_domain); reclamation
//     entry points are EXCLUDES(epoch_domain) so driving the epoch forward
//     from inside a guard — a self-deadlock on reclamation progress — is a
//     compile error;
//   * per-object writer locks (pam/snapshot.h `writer_mu_`): publication is
//     REQUIRES(writer_mu_), retirement is EXCLUDES(writer_mu_), which is
//     the "retire only after the writer lock drops" rule of PR 5.
//
// The analysis is lexical and intra-procedural. Protocols it cannot
// express — hand-over-hand latch crabbing (baselines/concurrent_bptree.h),
// dynamic lock sets (sharded_map's writer-lock fallback cut) — carry
// PAM_NO_THREAD_SAFETY_ANALYSIS with a one-line justification and remain
// covered by the TSan CI job instead. Static checking and dynamic checking
// are complements here, not substitutes.
//
// Macro set and semantics follow the clang documentation
// (clang.llvm.org/docs/ThreadSafetyAnalysis.html) and the Abseil naming.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PAM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PAM_THREAD_ANNOTATION
#define PAM_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

// A type that acts as a capability (a lock). The string names the kind in
// diagnostics ("mutex", "shared_mutex", "epoch_domain").
#define PAM_CAPABILITY(x) PAM_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define PAM_SCOPED_CAPABILITY PAM_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads/writes require the capability (shared suffices for
// reads). PT_ variant protects the data a pointer member points to.
#define PAM_GUARDED_BY(x) PAM_THREAD_ANNOTATION(guarded_by(x))
#define PAM_PT_GUARDED_BY(x) PAM_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must hold the capability (exclusively / at least
// shared) when calling.
#define PAM_REQUIRES(...) \
  PAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PAM_REQUIRES_SHARED(...) \
  PAM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions that acquire / release a capability themselves.
#define PAM_ACQUIRE(...) PAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PAM_ACQUIRE_SHARED(...) \
  PAM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PAM_RELEASE(...) PAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PAM_RELEASE_SHARED(...) \
  PAM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PAM_RELEASE_GENERIC(...) \
  PAM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define PAM_TRY_ACQUIRE(...) \
  PAM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PAM_TRY_ACQUIRE_SHARED(...) \
  PAM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability: the function acquires it itself, or
// — the EBR rules — must run outside the critical section entirely.
#define PAM_EXCLUDES(...) PAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function returns a reference to the named capability.
#define PAM_RETURN_CAPABILITY(x) PAM_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Every use must say why the protocol is beyond the
// analysis's lexical model and what covers it instead (usually TSan).
#define PAM_NO_THREAD_SAFETY_ANALYSIS \
  PAM_THREAD_ANNOTATION(no_thread_safety_analysis)

// Runtime assertion that a capability is held (for code reachable from
// both locked and lock-free contexts).
#define PAM_ASSERT_CAPABILITY(x) PAM_THREAD_ANNOTATION(assert_capability(x))

// ---------------------------------------------------------------------------
// Intentional-wraparound marker for the UBSan CI job: clang's
// -fsanitize=integer flags unsigned wraparound, which is well-defined and
// deliberate in hash mixers and striping functions. GCC has no such
// sanitizer group, so the attribute is clang-only like the ones above.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(no_sanitize)
#define PAM_NO_SANITIZE_UNSIGNED_WRAP \
  __attribute__((no_sanitize("unsigned-integer-overflow")))
#endif
#endif
#ifndef PAM_NO_SANITIZE_UNSIGNED_WRAP
#define PAM_NO_SANITIZE_UNSIGNED_WRAP
#endif

namespace pam {

// Annotated std::mutex. BasicLockable + Lockable, so std::unique_lock and
// std::condition_variable_any work with it; prefer the scoped guards below,
// which participate in the analysis.
class PAM_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() PAM_ACQUIRE() { mu_.lock(); }
  void unlock() PAM_RELEASE() { mu_.unlock(); }
  bool try_lock() PAM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Annotated std::shared_mutex.
class PAM_CAPABILITY("shared_mutex") shared_mutex {
 public:
  shared_mutex() = default;
  shared_mutex(const shared_mutex&) = delete;
  shared_mutex& operator=(const shared_mutex&) = delete;

  void lock() PAM_ACQUIRE() { mu_.lock(); }
  void unlock() PAM_RELEASE() { mu_.unlock(); }
  bool try_lock() PAM_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() PAM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() PAM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() PAM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// std::lock_guard, annotated: acquires at construction, releases at scope
// exit, and the analysis credits the critical section in between.
class PAM_SCOPED_CAPABILITY mutex_guard {
 public:
  explicit mutex_guard(mutex& mu) PAM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~mutex_guard() PAM_RELEASE() { mu_.unlock(); }
  mutex_guard(const mutex_guard&) = delete;
  mutex_guard& operator=(const mutex_guard&) = delete;

 private:
  mutex& mu_;
};

// Scoped exclusive lock over pam::shared_mutex (the writer side).
class PAM_SCOPED_CAPABILITY exclusive_guard {
 public:
  explicit exclusive_guard(shared_mutex& mu) PAM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~exclusive_guard() PAM_RELEASE() { mu_.unlock(); }
  exclusive_guard(const exclusive_guard&) = delete;
  exclusive_guard& operator=(const exclusive_guard&) = delete;

 private:
  shared_mutex& mu_;
};

// Scoped shared lock over pam::shared_mutex (the reader side).
class PAM_SCOPED_CAPABILITY shared_guard {
 public:
  explicit shared_guard(shared_mutex& mu) PAM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~shared_guard() PAM_RELEASE() { mu_.unlock_shared(); }
  shared_guard(const shared_guard&) = delete;
  shared_guard& operator=(const shared_guard&) = delete;

 private:
  shared_mutex& mu_;
};

// std::unique_lock over pam::mutex, annotated and re-lockable: the shape
// condition-variable wait loops need (see write_combiner::flusher_loop).
// Pair with std::condition_variable_any, which accepts any lockable.
class PAM_SCOPED_CAPABILITY unique_guard {
 public:
  explicit unique_guard(mutex& mu) PAM_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~unique_guard() PAM_RELEASE() {
    if (owned_) mu_.unlock();
  }
  unique_guard(const unique_guard&) = delete;
  unique_guard& operator=(const unique_guard&) = delete;

  void lock() PAM_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() PAM_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }

 private:
  mutex& mu_;
  bool owned_;
};

}  // namespace pam
