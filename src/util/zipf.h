// Zipf-distributed sampling, used by the synthetic corpus that stands in for
// the paper's Wikipedia dump (Section 6.4). Word frequencies in natural
// language corpora are famously Zipfian, which is exactly the property that
// drives inverted-index posting-list skew.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace pam {

// Samples ranks in [0, n) with P(rank = r) proportional to 1 / (r+1)^s.
// Uses a precomputed cumulative table + binary search: O(n) setup,
// O(log n) per sample, fully deterministic given the seed.
class zipf_generator {
 public:
  zipf_generator(size_t n, double s, uint64_t seed)
      : cdf_(n), rng_(seed) {
    double acc = 0.0;
    for (size_t r = 0; r < n; r++) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = acc;
    }
    total_ = acc;
  }

  size_t operator()() {
    double u = rng_.next_double() * total_;
    // First index with cdf >= u; clamp so u == total_ (possible at the edge
    // of floating-point rounding) still yields a valid rank.
    size_t idx = static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return idx < cdf_.size() ? idx : cdf_.size() - 1;
  }

  size_t universe() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  double total_;
  random_gen rng_;
};

}  // namespace pam
