// Zipf-distributed sampling, used by the synthetic corpus that stands in for
// the paper's Wikipedia dump (Section 6.4). Word frequencies in natural
// language corpora are famously Zipfian, which is exactly the property that
// drives inverted-index posting-list skew.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/random.h"

namespace pam {

namespace zipf_internal {

// The cumulative table depends only on (n, s), is immutable once built,
// and costs O(n) doubles — so a YCSB bench spinning up one generator per
// client thread at n = millions would otherwise pay setup time and memory
// per instance. Shared via an interned pool keyed by (n, s); entries are
// shared_ptr-owned so the pool can be consulted cheaply while generators
// keep their table alive independently of pool lifetime.
struct cdf_table {
  std::vector<double> cdf;
  double total;

  cdf_table(size_t n, double s) : cdf(n) {
    double acc = 0.0;
    for (size_t r = 0; r < n; r++) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf[r] = acc;
    }
    total = acc;
  }
};

inline std::shared_ptr<const cdf_table> shared_cdf(size_t n, double s) {
  static std::mutex mu;
  static std::vector<std::pair<std::pair<size_t, double>,
                               std::weak_ptr<const cdf_table>>> pool;
  const std::pair<size_t, double> key{n, s};
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto it = pool.begin(); it != pool.end();) {
      if (auto sp = it->second.lock()) {
        if (it->first == key) return sp;
        ++it;
      } else {
        it = pool.erase(it);  // all generators for this (n, s) are gone
      }
    }
  }
  // Build outside the lock: O(n) and possibly concurrent with other keys.
  auto built = std::make_shared<const cdf_table>(n, s);
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& [k, weak] : pool) {
    if (k == key) {
      if (auto sp = weak.lock()) return sp;  // lost the race; reuse theirs
    }
  }
  pool.emplace_back(key, built);
  return built;
}

}  // namespace zipf_internal

// Samples ranks in [0, n) with P(rank = r) proportional to 1 / (r+1)^s.
// Uses a precomputed cumulative table + binary search: O(log n) per
// sample, fully deterministic given the seed. The table is immutable and
// interned per (n, s), so N generators over the same distribution (one
// per bench client) share one table instead of paying O(n) setup and
// memory each.
class zipf_generator {
 public:
  zipf_generator(size_t n, double s, uint64_t seed)
      : table_(zipf_internal::shared_cdf(n, s)), rng_(seed) {}

  size_t operator()() {
    double u = rng_.next_double() * table_->total;
    // First index with cdf >= u; clamp so u == total (possible at the edge
    // of floating-point rounding) still yields a valid rank.
    const auto& cdf = table_->cdf;
    size_t idx = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    return idx < cdf.size() ? idx : cdf.size() - 1;
  }

  size_t universe() const { return table_->cdf.size(); }

 private:
  std::shared_ptr<const zipf_internal::cdf_table> table_;
  random_gen rng_;
};

}  // namespace pam
