// A concurrent fixed-size block allocator, one pool per node type.
//
// PAM allocates and frees tree nodes at enormous rates from all workers at
// once (every bulk operation both builds new paths and collects garbage), so
// the allocator is on the critical path of every experiment. The design
// follows the classic two-level pool:
//
//   * each thread keeps a local free list (a vector of raw blocks); the hot
//     path — allocate/deallocate against the local list — touches no shared
//     state at all;
//   * when the local list runs dry the thread grabs a batch from the global
//     pool (or carves a fresh chunk) under a mutex; when it overflows it
//     returns half. The mutex is amortized over kBatch blocks and is not
//     measurable in practice;
//   * live-block counts are kept in cache-line-striped counters so the space
//     experiments (paper Table 4) can report exact node counts without
//     serializing the hot path.
//
// Memory is returned to the OS only at process exit (the pools are immortal
// for the same static-destruction-order reasons as the scheduler).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "parallel/scheduler.h"

namespace pam {

template <typename T>
class type_allocator {
 public:
  // Allocate raw, uninitialized, correctly aligned storage for one T.
  static T* allocate() {
    local_state& ls = local();
    if (ls.cache.empty()) refill(ls);
    void* p = ls.cache.back();
    ls.cache.pop_back();
    count_delta(+1);
    return static_cast<T*>(p);
  }

  // Return storage previously obtained from allocate(). T must already be
  // destroyed by the caller.
  static void deallocate(T* p) {
    local_state& ls = local();
    ls.cache.push_back(p);
    count_delta(-1);
    if (ls.cache.size() >= kLocalCap) overflow(ls);
  }

  template <typename... Args>
  static T* create(Args&&... args) {
    T* p = allocate();
    new (p) T(std::forward<Args>(args)...);
    return p;
  }

  static void destroy(T* p) {
    p->~T();
    deallocate(p);
  }

  // Number of blocks currently live (allocated minus freed). Exact when the
  // system is quiescent; approximate while threads are mid-operation.
  static int64_t used() {
    int64_t total = 0;
    for (const auto& s : counters()) total += s.net.load(std::memory_order_relaxed);
    return total;
  }

  // Number of blocks ever carved from the OS (capacity, not usage).
  static int64_t reserved() {
    return global().reserved.load(std::memory_order_relaxed);
  }

  static constexpr size_t block_size() { return sizeof(T); }

 private:
  static constexpr size_t kBatch = 2048;     // blocks moved global<->local at once
  static constexpr size_t kLocalCap = 8192;  // local cache high-water mark

  struct global_state {
    std::mutex mu;
    std::vector<void*> free_blocks;
    std::atomic<int64_t> reserved{0};
  };

  struct alignas(64) stripe {
    std::atomic<int64_t> net{0};
  };
  using stripe_array = std::array<stripe, 64>;

  struct local_state {
    std::vector<void*> cache;
    ~local_state() {
      // Thread exit: hand everything back so blocks are never stranded.
      if (cache.empty()) return;
      global_state& g = global();
      std::lock_guard<std::mutex> lock(g.mu);
      for (void* p : cache) g.free_blocks.push_back(p);
    }
  };

  static global_state& global() {
    static global_state* g = new global_state();  // immortal
    return *g;
  }

  static stripe_array& counters() {
    static stripe_array* c = new stripe_array();  // immortal
    return *c;
  }

  static local_state& local() {
    static thread_local local_state ls;
    return ls;
  }

  static void count_delta(int64_t d) {
    int id = internal::scheduler::worker_id();
    size_t idx = id >= 0 ? static_cast<size_t>(id) % 64
                         : 63;  // foreign threads share the last stripe
    counters()[idx].net.fetch_add(d, std::memory_order_relaxed);
  }

  static void refill(local_state& ls) {
    global_state& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.free_blocks.size() >= kBatch) {
      ls.cache.assign(g.free_blocks.end() - kBatch, g.free_blocks.end());
      g.free_blocks.resize(g.free_blocks.size() - kBatch);
      return;
    }
    // Carve a fresh chunk. The chunk pointer itself is never reclaimed.
    size_t bytes = kBatch * sizeof(T);
    char* chunk = static_cast<char*>(::operator new(bytes, std::align_val_t{alignof(T)}));
    ls.cache.reserve(kBatch);
    for (size_t i = 0; i < kBatch; i++) ls.cache.push_back(chunk + i * sizeof(T));
    g.reserved.fetch_add(static_cast<int64_t>(kBatch), std::memory_order_relaxed);
  }

  static void overflow(local_state& ls) {
    global_state& g = global();
    size_t keep = kLocalCap / 2;
    std::lock_guard<std::mutex> lock(g.mu);
    for (size_t i = keep; i < ls.cache.size(); i++) g.free_blocks.push_back(ls.cache[i]);
    ls.cache.resize(keep);
  }
};

}  // namespace pam
