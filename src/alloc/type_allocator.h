// A concurrent fixed-size block allocator, one pool per node type.
//
// PAM allocates and frees tree nodes at enormous rates from all workers at
// once (every bulk operation both builds new paths and collects garbage), so
// the allocator is on the critical path of every experiment. The pool design
// itself — thread-local free lists over a batched global list over carved
// chunks — lives in alloc/arena.h (block_pool); this header is the typed
// facade: one immortal block_pool per node type, sized and aligned for T,
// with placement construction helpers layered on top.
//
// Long-lived servers can interrogate and shrink the footprint:
// reserved_bytes() reports the exact OS footprint of T's pool, and trim()
// returns fully-free chunks to the OS (see block_pool::trim for the
// thread-cache caveats). Everything else about the old allocator's contract
// — O(1) hot paths touching no shared state, striped exact live counts,
// blocks handed back at thread exit — is unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "alloc/arena.h"

namespace pam {

template <typename T>
class type_allocator {
 public:
  // Allocate raw, uninitialized, correctly aligned storage for one T.
  static T* allocate() { return static_cast<T*>(pool().allocate()); }

  // Return storage previously obtained from allocate(). T must already be
  // destroyed by the caller.
  static void deallocate(T* p) { pool().deallocate(p); }

  template <typename... Args>
  static T* create(Args&&... args) {
    T* p = allocate();
    new (p) T(std::forward<Args>(args)...);
    return p;
  }

  static void destroy(T* p) {
    p->~T();
    deallocate(p);
  }

  // Number of blocks currently live (allocated minus freed). Exact when the
  // system is quiescent; approximate while threads are mid-operation.
  static int64_t used() { return pool().used(); }

  // Number of blocks carved from the OS and not yet trimmed.
  static int64_t reserved() { return pool().reserved(); }

  // Exact OS footprint of this type's pool, in bytes.
  static size_t reserved_bytes() { return pool().reserved_bytes(); }

  // Return fully-free chunks of this type's pool to the OS. Reports bytes
  // released; most effective after epoch::drain() at a quiescent point.
  static size_t trim() { return pool().trim(); }

  static constexpr size_t block_size() { return sizeof(T); }

 private:
  static block_pool& pool() {
    static block_pool* p = new block_pool(sizeof(T), alignof(T));  // immortal
    return *p;
  }
};

}  // namespace pam
