// Runtime-sized pool storage for the blocked-leaf layer.
//
// Leaf blocks are `header + capacity * sizeof(entry)` bytes where the
// capacity follows the env-tunable PAM_LEAF_BLOCK knob, so their size cannot
// be a template parameter. raw_pool is the runtime-sized face of the one
// unified pool implementation (alloc/arena.h): historically this header held
// a second copy of the two-level design, which is now block_pool — the same
// class type_allocator instantiates per node type. One pool per leaf
// capacity class is created lazily (see pam/node.h leaf_store) and is
// immortal; all pools share the arena's chunk-provenance accounting, so
// reserved_bytes()/trim() work uniformly across node and leaf storage.
#pragma once

#include "alloc/arena.h"

namespace pam {

using raw_pool = block_pool;

}  // namespace pam
