// Runtime-sized pool storage for the blocked-leaf layer.
//
// Leaf blocks are `header + capacity * sizeof(entry)` bytes where the
// capacity follows the env-tunable PAM_LEAF_BLOCK knob, so their size cannot
// be a template parameter. raw_pool is the runtime-sized face of the one
// unified pool implementation (alloc/arena.h): historically this header held
// a second copy of the two-level design, which is now block_pool — the same
// class type_allocator instantiates per node type. One pool per leaf
// capacity class is created lazily (see pam/node.h leaf_store) and is
// immortal; all pools share the arena's chunk-provenance accounting, so
// reserved_bytes()/trim() work uniformly across node and leaf storage.
//
// Fixed-width (flat) blocks use *entry-count* capacity classes: the slot for
// capacity 2^c is slot_bytes(2^c). Variable-length front-coded blocks
// (pam/coded_block.h) have no per-entry slot width at all, so they draw from
// *byte-granular* capacity classes instead: one pool per power-of-two byte
// size between kMinByteClassLog and kMaxByteClassLog, with larger blocks
// overflowing to individually counted aligned heap allocations. The helpers
// below define that class geometry; the encoder owns the pool table (it is
// part of the sanctioned allocation surface, see tools/pam_lint.py).
#pragma once

#include <cstddef>

#include "alloc/arena.h"

namespace pam {

using raw_pool = block_pool;

// Byte-granular capacity classes for variable-length blocks: 64 B .. 1 MiB
// slots in quarter-stepped sizes — four classes per power-of-two octave,
// 64, 80, 96, 112, 128, 160, ... (2^k + j * 2^(k-2), j in 0..3). Pure
// power-of-two slots wasted up to 50% of every variable-length block, and
// since used_bytes() accounts full slot footprints that slack showed up
// directly in the Table 4 space experiments; quarter steps bound internal
// fragmentation at 25% while every slot stays a multiple of 16 bytes
// (max_align_t), so the alignment contract of the encoders is unchanged.
// class_of(bytes) returns kByteClasses for anything larger — the caller's
// overflow path.
inline constexpr int kMinByteClassLog = 6;
inline constexpr int kMaxByteClassLog = 20;
inline constexpr int kByteSubClasses = 4;
inline constexpr int kByteClasses =
    (kMaxByteClassLog - kMinByteClassLog) * kByteSubClasses + 1;

constexpr size_t byte_class_slot(int cls) {
  size_t base = size_t{1} << (kMinByteClassLog + cls / kByteSubClasses);
  return base + (base / kByteSubClasses) * (size_t(cls) % kByteSubClasses);
}

constexpr int byte_class_of(size_t bytes) {
  int cls = 0;
  while (cls < kByteClasses && byte_class_slot(cls) < bytes) cls++;
  return cls;  // == kByteClasses when bytes exceeds the largest slot
}

}  // namespace pam
