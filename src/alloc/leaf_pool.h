// A concurrent pool allocator whose slot size is chosen at *runtime*: the
// companion of type_allocator for the blocked-leaf layer.
//
// Leaf blocks are `header + capacity * sizeof(entry)` bytes where the
// capacity follows the env-tunable PAM_LEAF_BLOCK knob, so their size cannot
// be a template parameter. raw_pool keeps type_allocator's two-level design
// (thread-local free lists refilled in batches from a mutex-protected global
// pool, cache-line-striped live counters) but as ordinary instances: one
// pool per leaf capacity class, created lazily and immortal.
//
// Thread-local caches are indexed by a global pool id so a thread's blocks
// can be handed back to the right pool at thread exit; the id directory is
// leaked on purpose, like every other immortal allocator structure.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "parallel/scheduler.h"

namespace pam {

class raw_pool {
 public:
  // The slot stride is rounded up to the alignment so every slot in a
  // carved chunk stays aligned, not just the first.
  raw_pool(size_t slot_bytes, size_t alignment)
      : align_(alignment < alignof(std::max_align_t) ? alignof(std::max_align_t)
                                                     : alignment),
        slot_bytes_((slot_bytes + align_ - 1) / align_ * align_),
        batch_(batch_for(slot_bytes_)),
        id_(directory_register(this)) {}

  raw_pool(const raw_pool&) = delete;
  raw_pool& operator=(const raw_pool&) = delete;

  void* allocate() {
    std::vector<void*>& cache = local_cache(id_);
    if (cache.empty()) refill(cache);
    void* p = cache.back();
    cache.pop_back();
    count_delta(+1);
    return p;
  }

  void deallocate(void* p) {
    std::vector<void*>& cache = local_cache(id_);
    cache.push_back(p);
    count_delta(-1);
    if (cache.size() >= 4 * batch_) overflow(cache);
  }

  // Live slots (allocated minus freed). Exact when quiescent.
  int64_t used() const {
    int64_t total = 0;
    for (const auto& s : counters_) total += s.net.load(std::memory_order_relaxed);
    return total;
  }

  // Slots ever carved from the OS (capacity, not usage).
  int64_t reserved() const { return reserved_.load(std::memory_order_relaxed); }

  size_t slot_bytes() const { return slot_bytes_; }

 private:
  struct alignas(64) stripe {
    std::atomic<int64_t> net{0};
  };

  // Amortize the global mutex over ~64KB of slots, but never fewer than 8.
  static size_t batch_for(size_t slot_bytes) {
    size_t b = (size_t{1} << 16) / slot_bytes;
    if (b < 8) b = 8;
    if (b > 2048) b = 2048;
    return b;
  }

  void count_delta(int64_t d) {
    int id = internal::scheduler::worker_id();
    size_t idx =
        id >= 0 ? static_cast<size_t>(id) % counters_.size() : counters_.size() - 1;
    counters_[idx].net.fetch_add(d, std::memory_order_relaxed);
  }

  void refill(std::vector<void*>& cache) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_slots_.size() >= batch_) {
      cache.assign(free_slots_.end() - static_cast<ptrdiff_t>(batch_),
                   free_slots_.end());
      free_slots_.resize(free_slots_.size() - batch_);
      return;
    }
    // Carve a fresh chunk; the chunk pointer itself is never reclaimed.
    char* chunk = static_cast<char*>(
        ::operator new(batch_ * slot_bytes_, std::align_val_t{align_}));
    cache.reserve(batch_);
    for (size_t i = 0; i < batch_; i++) cache.push_back(chunk + i * slot_bytes_);
    reserved_.fetch_add(static_cast<int64_t>(batch_), std::memory_order_relaxed);
  }

  void overflow(std::vector<void*>& cache) {
    size_t keep = 2 * batch_;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = keep; i < cache.size(); i++) free_slots_.push_back(cache[i]);
    cache.resize(keep);
  }

  void take_back(std::vector<void*>& blocks) {
    std::lock_guard<std::mutex> lock(mu_);
    for (void* p : blocks) free_slots_.push_back(p);
  }

  // ------------------------------------------------- pool id directory --

  struct directory_t {
    std::mutex mu;
    std::vector<raw_pool*> pools;
  };

  static directory_t& directory() {
    static directory_t* d = new directory_t();  // immortal
    return *d;
  }

  static int directory_register(raw_pool* p) {
    directory_t& d = directory();
    std::lock_guard<std::mutex> lock(d.mu);
    d.pools.push_back(p);
    return static_cast<int>(d.pools.size()) - 1;
  }

  // Per-thread free lists for every pool, indexed by pool id. On thread
  // exit everything is handed back so slots are never stranded.
  struct tl_caches {
    std::vector<std::vector<void*>> by_pool;
    ~tl_caches() {
      directory_t& d = directory();
      for (size_t i = 0; i < by_pool.size(); i++) {
        if (by_pool[i].empty()) continue;
        raw_pool* owner;
        {
          std::lock_guard<std::mutex> lock(d.mu);
          owner = d.pools[i];
        }
        owner->take_back(by_pool[i]);
      }
    }
  };

  static std::vector<void*>& local_cache(int id) {
    static thread_local tl_caches tl;
    if (tl.by_pool.size() <= static_cast<size_t>(id)) {
      tl.by_pool.resize(static_cast<size_t>(id) + 1);
    }
    return tl.by_pool[static_cast<size_t>(id)];
  }

  const size_t align_;
  const size_t slot_bytes_;
  const size_t batch_;
  const int id_;
  std::mutex mu_;
  std::vector<void*> free_slots_;
  std::atomic<int64_t> reserved_{0};
  std::array<stripe, 16> counters_{};
};

}  // namespace pam
