// The unified memory layer: one concurrent pool design shared by every
// allocator in the system, plus the epoch-based deferred-reclamation
// machinery that the lock-free read path (pam/snapshot.h) is built on.
//
// Before this layer existed, type_allocator (fixed compile-time slot size)
// and raw_pool (runtime slot size) each carried their own copy of the same
// two-level pool: thread-local free lists refilled in batches from a
// mutex-protected global list, cache-line-striped live counters, chunks
// carved from the OS and never returned. Both are now thin shims over one
// class, block_pool, which additionally
//
//   * records the provenance of every carved chunk, so reserved/used
//     accounting is exact and reserved_bytes() reports the true footprint;
//   * can give fully-free chunks back to the OS (trim()), instead of
//     "memory is returned only at process exit";
//   * stripes its live counters by a hashed thread id for *all* threads —
//     scheduler workers and foreign server threads alike — instead of
//     funneling every non-worker thread onto one shared stripe.
//
// --------------------------------------------------------------------------
// Epoch-based reclamation (EBR), the classic three-epoch scheme:
//
//   * a reader wraps any access to epoch-published state in an epoch::guard:
//     it announces the current global epoch in its thread slot, and the
//     announcement pins reclamation — nothing retired while the reader could
//     still hold a reference is freed until the guard drops;
//   * a writer that unlinks an object (e.g. snapshot_box swapping out the
//     displaced root payload) calls epoch::retire(p, deleter) instead of
//     deleting inline. The object lands on the limbo list of the current
//     epoch;
//   * the global epoch advances from E to E+1 only when every active reader
//     has announced E; at that moment everything retired in epoch E-2 is
//     unreachable by construction and its limbo list is drained.
//
// Draining runs the retired objects' deleters outside the limbo mutex; for
// tree payloads the deleter is a root refcount drop, which tears the tree
// down with the existing parallel GC (node_manager::dec forks once subtree
// sizes pass gc_par_cutoff()) — limbo drains therefore parallelize exactly
// like every other bulk free in the system.
//
// Guarantees: guard entry/exit are wait-free (two seq_cst accesses plus a
// validation loop that only retries while a concurrent advance is in
// flight); retire is O(1) amortized; try_advance is lock-free for readers
// (it never blocks them) and mutual-exclusive among reclaimers.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "parallel/scheduler.h"
#include "util/thread_annotations.h"

namespace pam {

namespace alloc_internal {

// Reclamation + footprint instrumentation, shared by the process-wide epoch
// and every block_pool. Global: the epoch is process-global anyway, and
// pools are immortal-by-convention, so per-instance registration would only
// multiply identical series.
struct alloc_metrics_t {
  obs::counter epoch_advances{"pam_epoch_advances_total"};
  obs::counter epoch_retired{"pam_epoch_retired_total"};
  obs::gauge limbo_depth{"pam_epoch_limbo_depth"};
  obs::gauge reserved_bytes{"pam_arena_reserved_bytes"};
  obs::counter trimmed_bytes{"pam_arena_trimmed_bytes_total"};
};

inline alloc_metrics_t& alloc_metrics() {
  // pam-lint: allow(naked-new) — immortal process-wide metric block, same
  // lifetime rule as the epoch/limbo singletons below.
  static alloc_metrics_t* m = new alloc_metrics_t();
  return *m;
}

}  // namespace alloc_internal

// ------------------------------------------------------------------ epoch --

// The EBR protocol expressed as a capability (see util/thread_annotations.h
// for the contract overview). `epoch_domain` is a process-global phantom
// capability with no runtime state: epoch::guard acquires it *shared* and
// functions that dereference epoch-published pointers declare
// PAM_REQUIRES_SHARED(epoch_domain), so "read a published payload without a
// guard" fails to compile under clang -Wthread-safety. Reclamation entry
// points (retire / try_advance / drain) declare PAM_EXCLUDES(epoch_domain):
// calling them from inside a guard would try to advance past the caller's
// own pin — a reclamation-progress self-deadlock — and is likewise rejected
// at compile time. The capability is shared, never exclusive: guards only
// pin reclamation, they do not exclude each other.
class PAM_CAPABILITY("epoch_domain") epoch_domain_t {};
inline epoch_domain_t epoch_domain;

class epoch {
 public:
  // RAII reader protection. Re-entrant at runtime: nested guards on one
  // thread are free (only the outermost announces). While any guard is
  // alive on any thread, no object retired after that guard's entry can be
  // freed. To the static analysis a guard is a scoped *shared* hold of
  // `epoch_domain`; nest across function boundaries (the analysis is
  // intra-procedural), not lexically in one function, or clang reports a
  // double acquire.
  class PAM_SCOPED_CAPABILITY guard {
   public:
    guard() PAM_ACQUIRE_SHARED(epoch_domain) { enter(); }
    ~guard() PAM_RELEASE() { exit(); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
  };

  // Hand an unlinked object to the reclamation layer. `deleter(p)` runs once
  // no reader that could have seen p remains; it may run on any thread that
  // happens to advance the epoch. The caller must have already unlinked p
  // from all shared state.
  //
  // Retirement is per *commit* (one displaced payload per snapshot_box
  // publication), not per node, so one process-wide limbo list suffices at
  // current commit rates; if profiles ever show this mutex on a write path,
  // the standard evolution is per-thread retire lists folded in at advance
  // time. Amortized drains (every kDrainThreshold-th retire) run on the
  // retiring thread, outside any snapshot_box writer lock (see
  // snapshot_box::retire).
  //
  // EXCLUDES(epoch_domain): must not run inside an epoch::guard — the
  // amortized try_advance below could never move past the caller's own pin.
  static void retire(void* p, void (*deleter)(void*))
      PAM_EXCLUDES(epoch_domain) {
    limbo_state& L = limbo();
    size_t bucket_fill;
    {
      mutex_guard lock(L.mu);
      uint64_t e = global_epoch().load(std::memory_order_relaxed);
      auto& bucket = L.buckets[e % 3];
      bucket.push_back({p, deleter});
      L.pending.fetch_add(1, std::memory_order_relaxed);
      bucket_fill = bucket.size();
    }
    alloc_internal::alloc_metrics().epoch_retired.inc();
    alloc_internal::alloc_metrics().limbo_depth.add(1);
    // Amortized housekeeping: every kDrainThreshold-th retirement into a
    // bucket attempts to turn the epoch over so old limbo drains. The
    // modulus (not >=) matters when a long-lived guard pins the epoch: the
    // bucket then grows without bound, and attempting on every retire would
    // add a limbo-mutex + slot-scan to every commit exactly while the
    // system is already degraded. Never blocks readers.
    if (bucket_fill % kDrainThreshold == 0) try_advance();
  }

  // Attempt one epoch turn. Returns true if the epoch advanced (draining the
  // bucket that became safe); false if a pinned reader prevented it. Takes
  // the limbo mutex blocking: retire/advance critical sections are O(1)-ish
  // (deleters run outside the lock), and drain()'s contract — advance until
  // limbo is empty or a pinned reader blocks progress — must not be
  // defeated by transient lock contention from concurrent commits.
  //
  // EXCLUDES(epoch_domain): a caller inside a guard is pinned at the
  // current epoch and the advance it requests can never succeed.
  static bool try_advance() PAM_EXCLUDES(epoch_domain) {
    limbo_state& L = limbo();
    std::vector<retired> to_free;
    {
      mutex_guard lock(L.mu);
      uint64_t e = global_epoch().load(std::memory_order_seq_cst);
      for (thread_slot* s = slot_head().load(std::memory_order_acquire);
           s != nullptr; s = s->next) {
        uint64_t se = s->announced.load(std::memory_order_seq_cst);
        if (se != kIdle && se != e) return false;  // reader pinned at e-1
      }
      // Every active reader has announced e: advance, and free the bucket
      // now two epochs stale (retired at e-2; any guard that could hold one
      // of those objects was pinned at <= e-1 and has provably exited).
      global_epoch().store(e + 1, std::memory_order_seq_cst);
      to_free.swap(L.buckets[(e + 1) % 3]);
    }
    alloc_internal::alloc_metrics().epoch_advances.inc();
    if (!to_free.empty()) {
      // Deleters run outside the mutex: a tree teardown may fork into the
      // scheduler, and other threads must be able to keep retiring.
      for (const retired& r : to_free) r.deleter(r.p);
      L.pending.fetch_sub(to_free.size(), std::memory_order_relaxed);
      alloc_internal::alloc_metrics().limbo_depth.add(
          -static_cast<int64_t>(to_free.size()));
    }
    return true;
  }

  // Drive the epoch forward until limbo is empty or a pinned reader blocks
  // progress. With no guards active, three turns clear every bucket. Returns
  // the number of objects still pending. Tests and long-lived servers call
  // this at quiescent points before checking pool baselines or trimming.
  static size_t drain() PAM_EXCLUDES(epoch_domain) {
    for (int i = 0; i < 3 && pending() > 0; i++) {
      if (!try_advance()) break;
    }
    return pending();
  }

  // Objects retired but not yet freed.
  static size_t pending() {
    return limbo().pending.load(std::memory_order_relaxed);
  }

  // Threads currently inside a guard (diagnostic; racy by nature).
  static size_t active_readers() {
    size_t n = 0;
    for (thread_slot* s = slot_head().load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
      if (s->announced.load(std::memory_order_relaxed) != kIdle) n++;
    }
    return n;
  }

  static uint64_t current() {
    return global_epoch().load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr size_t kDrainThreshold = 64;

  struct retired {
    void* p;
    void (*deleter)(void*);
  };

  // One slot per thread that has ever taken a guard. Slots are recycled
  // across thread lifetimes (owned flag) and the list only grows to the peak
  // concurrent thread count; it is intentionally immortal.
  struct thread_slot {
    std::atomic<uint64_t> announced{kIdle};
    std::atomic<bool> owned{true};
    uint32_t depth = 0;  // guard nesting; touched only by the owning thread
    thread_slot* next = nullptr;
  };

  struct limbo_state {
    mutex mu;
    std::array<std::vector<retired>, 3> buckets PAM_GUARDED_BY(mu);
    std::atomic<size_t> pending{0};
  };

  static std::atomic<uint64_t>& global_epoch() {
    static std::atomic<uint64_t>* e = new std::atomic<uint64_t>(0);  // immortal
    return *e;
  }

  static std::atomic<thread_slot*>& slot_head() {
    static std::atomic<thread_slot*>* h =
        new std::atomic<thread_slot*>(nullptr);  // immortal
    return *h;
  }

  static limbo_state& limbo() {
    static limbo_state* L = new limbo_state();  // immortal
    return *L;
  }

  static thread_slot* acquire_slot() {
    for (thread_slot* s = slot_head().load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
      bool free = false;
      if (s->owned.compare_exchange_strong(free, true,
                                           std::memory_order_acq_rel)) {
        return s;
      }
    }
    thread_slot* s = new thread_slot();
    thread_slot* head = slot_head().load(std::memory_order_relaxed);
    do {
      s->next = head;
    } while (!slot_head().compare_exchange_weak(head, s,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
    return s;
  }

  // The slot is bound to the thread for its lifetime and released (marked
  // quiescent, ownership dropped) when the thread exits.
  struct slot_binding {
    thread_slot* slot;
    slot_binding() : slot(acquire_slot()) {}
    ~slot_binding() {
      slot->announced.store(kIdle, std::memory_order_release);
      slot->owned.store(false, std::memory_order_release);
    }
  };

  static thread_slot* my_slot() {
    static thread_local slot_binding binding;
    return binding.slot;
  }

  static void enter() {
    thread_slot* s = my_slot();
    if (s->depth++ > 0) return;
    // Announce-and-validate: publish the epoch we observed, then confirm it
    // is still current. If an advance slipped between load and store our
    // announcement might be one behind the objects we are about to read, so
    // re-announce; the loop only iterates while advances are in flight.
    uint64_t e = global_epoch().load(std::memory_order_seq_cst);
    for (;;) {
      s->announced.store(e, std::memory_order_seq_cst);
      uint64_t now = global_epoch().load(std::memory_order_seq_cst);
      if (now == e) break;
      e = now;
    }
  }

  static void exit() {
    thread_slot* s = my_slot();
    if (--s->depth > 0) return;
    s->announced.store(kIdle, std::memory_order_release);
  }
};

// ------------------------------------------------------------- block_pool --

// The one two-level pool. Slot size and alignment are chosen at
// construction; instances are expected to be immortal (type_allocator and
// leaf_store both leak theirs on purpose, matching the scheduler's
// static-destruction discipline).
//
//   * allocate/deallocate hit a thread-local free list — no shared state;
//   * the local list refills from / overflows to a mutex-protected global
//     list in batches sized to ~64KB of slots, so the mutex is amortized
//     to invisibility;
//   * when the global list is dry a chunk of `batch` slots is carved from
//     the OS and recorded in the chunk table (provenance: base, slot count),
//     which is what makes reserved_bytes() exact and trim() possible;
//   * live counts are striped across cache lines, indexed by scheduler
//     worker id or, for foreign threads, a hashed thread-local id.
class block_pool {
 public:
  // The slot stride is rounded up to the alignment so every slot in a
  // carved chunk stays aligned, not just the first — and no further: a
  // typed pool over a 56-byte node must stride 56 bytes, not a
  // max_align_t-rounded 64 (that padding would silently inflate every node
  // pool's footprint ~14%).
  block_pool(size_t slot_bytes, size_t alignment)
      : align_(alignment),
        slot_bytes_((slot_bytes + align_ - 1) / align_ * align_),
        batch_(batch_for(slot_bytes_)),
        id_(directory_register(this)) {}

  // The process-wide pools (type_allocator, leaf_store) are immortal and
  // never reach this; it exists so scoped pools (tests, short-lived tools)
  // are leak-clean. Destruction requires quiescence: no thread may touch
  // the pool afterwards. Slots still parked in other threads' caches become
  // dangling-but-unused; the directory entry is cleared so thread-exit
  // hand-back skips them.
  ~block_pool() {
    directory_unregister(id_);
    for (const chunk& c : chunks_) {
      alloc_internal::alloc_metrics().reserved_bytes.add(
          -static_cast<int64_t>(c.slots * slot_bytes_));
      ::operator delete(c.base, std::align_val_t{align_});
    }
  }

  block_pool(const block_pool&) = delete;
  block_pool& operator=(const block_pool&) = delete;

  void* allocate() {
    std::vector<void*>& cache = local_cache(id_);
    if (cache.empty()) refill(cache);
    void* p = cache.back();
    cache.pop_back();
    count_delta(+1);
    return p;
  }

  void deallocate(void* p) {
    std::vector<void*>& cache = local_cache(id_);
    cache.push_back(p);
    count_delta(-1);
    if (cache.size() >= 4 * batch_) overflow(cache);
  }

  // Live slots (allocated minus freed). Exact when quiescent.
  int64_t used() const {
    int64_t total = 0;
    for (const auto& s : counters_) total += s.net.load(std::memory_order_relaxed);
    return total;
  }

  // Slots ever carved from the OS and not yet trimmed (capacity, not usage).
  int64_t reserved() const { return reserved_.load(std::memory_order_relaxed); }

  // Exact OS footprint of this pool: every live chunk's slots times the slot
  // stride. reserved_bytes() == reserved() * slot_bytes() by construction —
  // the chunk table is the ground truth both derive from.
  size_t reserved_bytes() const {
    return static_cast<size_t>(reserved_.load(std::memory_order_relaxed)) *
           slot_bytes_;
  }

  size_t slot_bytes() const { return slot_bytes_; }

  // Return fully-free chunks to the OS; reports the bytes released.
  //
  // The calling thread's local cache is handed back first, so a quiescent
  // single-threaded "free everything then trim" round-trips memory to the
  // OS. Slots parked in *other* threads' caches conservatively pin their
  // chunks (they are in use from the pool's point of view); a long-lived
  // server gets the best results by trimming from its maintenance thread
  // after an epoch::drain(). This is an explicit maintenance operation: it
  // sorts the global free list under the pool mutex (O(F log F)), so
  // allocation misses in other threads stall for its duration — schedule
  // trims off the serving path.
  size_t trim() {
    // Pointers from distinct chunks are compared throughout with std::less,
    // the standard's total order over raw pointers (built-in < between
    // unrelated allocations is unspecified).
    const std::less<const void*> before{};
    std::vector<void*>& cache = local_cache(id_);
    std::vector<std::pair<char*, char*>> released;  // [base, end) per chunk
    size_t released_bytes = 0;
    {
      mutex_guard lock(mu_);
      for (void* p : cache) free_slots_.push_back(p);
      cache.clear();
      if (chunks_.empty() || free_slots_.empty()) return 0;

      std::sort(free_slots_.begin(), free_slots_.end(), before);
      // Chunks are kept sorted by base; count each chunk's slots present in
      // the free list with one sweep of lower_bound pairs.
      for (size_t c = 0; c < chunks_.size();) {
        const chunk& ch = chunks_[c];
        char* lo = ch.base;
        char* hi = ch.base + ch.slots * slot_bytes_;
        auto first = std::lower_bound(free_slots_.begin(), free_slots_.end(),
                                      static_cast<void*>(lo), before);
        auto last = std::lower_bound(free_slots_.begin(), free_slots_.end(),
                                     static_cast<void*>(hi), before);
        if (static_cast<size_t>(last - first) == ch.slots) {
          released.emplace_back(lo, hi);
          released_bytes += ch.slots * slot_bytes_;
          reserved_.fetch_sub(static_cast<int64_t>(ch.slots),
                              std::memory_order_relaxed);
          chunks_.erase(chunks_.begin() + static_cast<ptrdiff_t>(c));
        } else {
          c++;
        }
      }
      if (released.empty()) return 0;
      // Drop the released slots from the free list in one merge pass: both
      // sides are sorted and the ranges are disjoint, so this is O(F + R)
      // rather than a per-slot range scan — it runs under the pool mutex.
      std::vector<void*> kept;
      kept.reserve(free_slots_.size() -
                   released_bytes / slot_bytes_);
      size_t r = 0;
      for (void* p : free_slots_) {
        while (r < released.size() && !before(p, released[r].second)) r++;
        if (r < released.size() && !before(p, released[r].first)) continue;
        kept.push_back(p);
      }
      free_slots_.swap(kept);
    }
    alloc_internal::alloc_metrics().reserved_bytes.add(
        -static_cast<int64_t>(released_bytes));
    alloc_internal::alloc_metrics().trimmed_bytes.inc(released_bytes);
    // The OS handback happens after the mutex drops: concurrent refills and
    // overflows need not wait on the kernel.
    for (const auto& range : released) {
      ::operator delete(range.first, std::align_val_t{align_});
    }
    return released_bytes;
  }

  // ---------------------------------------------- directory-wide rollups --

  // Total OS footprint across every pool in the process (typed node pools
  // and leaf-block pools alike — they all register here). The directory
  // mutex is held across the walk: a pool cannot be destroyed mid-visit
  // (its destructor serializes on the same mutex to unregister).
  static size_t reserved_bytes_all() {
    directory_t& d = directory();
    mutex_guard lock(d.mu);
    size_t total = 0;
    for (block_pool* p : d.pools) {
      if (p != nullptr) total += p->reserved_bytes();
    }
    return total;
  }

  // Trim every pool; returns the total bytes released. Best preceded by
  // epoch::drain() so limbo-held trees have actually been freed. Holds the
  // directory mutex across the walk (see reserved_bytes_all); the lock
  // order directory.mu -> pool.mu_ is the same everywhere.
  static size_t trim_all() {
    directory_t& d = directory();
    mutex_guard lock(d.mu);
    size_t total = 0;
    for (block_pool* p : d.pools) {
      if (p != nullptr) total += p->trim();
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 64;

  struct alignas(64) stripe {
    std::atomic<int64_t> net{0};
  };

  struct chunk {
    char* base;
    size_t slots;
  };

  // Amortize the global mutex over ~64KB of slots, but never fewer than 8.
  static size_t batch_for(size_t slot_bytes) {
    size_t b = (size_t{1} << 16) / slot_bytes;
    if (b < 8) b = 8;
    if (b > 2048) b = 2048;
    return b;
  }

  // Counter stripe for the calling thread. Scheduler workers map by id;
  // foreign threads (server clients, test drivers) get a sequentially
  // assigned thread-local id spread over the stripes by a Fibonacci hash —
  // previously they all shared one stripe, which turned the counters into a
  // contention hotspot exactly on the serving read path.
  static size_t stripe_of() {
    int wid = internal::scheduler::worker_id();
    if (wid >= 0) return static_cast<size_t>(wid) % kStripes;
    static std::atomic<uint32_t> next_foreign{0};
    static thread_local uint32_t fid =
        next_foreign.fetch_add(1, std::memory_order_relaxed);
    return (static_cast<size_t>(fid) * 2654435761u >> 16) % kStripes;
  }

  void count_delta(int64_t d) {
    counters_[stripe_of()].net.fetch_add(d, std::memory_order_relaxed);
  }

  void refill(std::vector<void*>& cache) {
    mutex_guard lock(mu_);
    if (free_slots_.size() >= batch_) {
      cache.assign(free_slots_.end() - static_cast<ptrdiff_t>(batch_),
                   free_slots_.end());
      free_slots_.resize(free_slots_.size() - batch_);
      return;
    }
    // Carve a fresh chunk and record its provenance.
    char* base = static_cast<char*>(
        ::operator new(batch_ * slot_bytes_, std::align_val_t{align_}));
    auto pos = std::lower_bound(
        chunks_.begin(), chunks_.end(), base,
        [](const chunk& c, const char* b) {
          return std::less<const char*>{}(c.base, b);
        });
    chunks_.insert(pos, {base, batch_});
    cache.reserve(batch_);
    for (size_t i = 0; i < batch_; i++) cache.push_back(base + i * slot_bytes_);
    reserved_.fetch_add(static_cast<int64_t>(batch_), std::memory_order_relaxed);
    alloc_internal::alloc_metrics().reserved_bytes.add(
        static_cast<int64_t>(batch_ * slot_bytes_));
  }

  void overflow(std::vector<void*>& cache) {
    size_t keep = 2 * batch_;
    mutex_guard lock(mu_);
    for (size_t i = keep; i < cache.size(); i++) free_slots_.push_back(cache[i]);
    cache.resize(keep);
  }

  void take_back(std::vector<void*>& blocks) {
    mutex_guard lock(mu_);
    for (void* p : blocks) free_slots_.push_back(p);
  }

  // ------------------------------------------------- pool id directory --

  struct directory_t {
    mutex mu;
    std::vector<block_pool*> pools PAM_GUARDED_BY(mu);
  };

  static directory_t& directory() {
    static directory_t* d = new directory_t();  // immortal
    return *d;
  }

  static int directory_register(block_pool* p) {
    directory_t& d = directory();
    mutex_guard lock(d.mu);
    d.pools.push_back(p);
    return static_cast<int>(d.pools.size()) - 1;
  }

  // Ids are never reused: a dead pool's slot goes null and stays null, so
  // stale thread caches indexed by it are skipped rather than misdirected.
  static void directory_unregister(int id) {
    directory_t& d = directory();
    mutex_guard lock(d.mu);
    d.pools[static_cast<size_t>(id)] = nullptr;
  }

  // Per-thread free lists for every pool, indexed by pool id. On thread
  // exit everything is handed back so slots are never stranded.
  struct tl_caches {
    std::vector<std::vector<void*>> by_pool;
    ~tl_caches() {
      directory_t& d = directory();
      // The directory mutex is held across the hand-back itself, not just
      // the lookup: a pool destructor unregisters under the same mutex, so
      // an owner observed non-null here cannot be destroyed before its
      // take_back completes. A null owner is a pool already destroyed (its
      // chunks are released); just drop the stale slot pointers.
      mutex_guard lock(d.mu);
      for (size_t i = 0; i < by_pool.size(); i++) {
        if (by_pool[i].empty() || i >= d.pools.size()) continue;
        block_pool* owner = d.pools[i];
        if (owner != nullptr) owner->take_back(by_pool[i]);
      }
    }
  };

  static std::vector<void*>& local_cache(int id) {
    static thread_local tl_caches tl;
    if (tl.by_pool.size() <= static_cast<size_t>(id)) {
      tl.by_pool.resize(static_cast<size_t>(id) + 1);
    }
    return tl.by_pool[static_cast<size_t>(id)];
  }

  const size_t align_;
  const size_t slot_bytes_;
  const size_t batch_;
  const int id_;
  mutex mu_;
  std::vector<void*> free_slots_ PAM_GUARDED_BY(mu_);
  std::vector<chunk> chunks_ PAM_GUARDED_BY(mu_);  // sorted by base
  std::atomic<int64_t> reserved_{0};
  std::array<stripe, kStripes> counters_{};
};

}  // namespace pam
