// A classic static sequential 2D range tree: the stand-in for CGAL's
// Range_tree_2 (paper Table 5 and Figure 6(e)).
//
// Like the CGAL structure it is: built once (no updates), sequential, and
// its native query reports all points in the window (CGAL cannot return
// sums without enumerating). Build is a mergesort-style bottom-up
// construction of per-node y-sorted arrays, O(n log n) time and space;
// report queries are O(log^2 n + k). A weight-sum query (binary searches
// over per-node prefix sums) is included for completeness of comparisons,
// marked as an extension over what CGAL offers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace pam::baselines {

template <typename Coord = double, typename W = int64_t>
class static_range_tree {
 public:
  struct point {
    Coord x, y;
    W w;
  };

  static_range_tree() = default;

  explicit static_range_tree(std::vector<point> pts) {
    std::sort(pts.begin(), pts.end(), [](const point& a, const point& b) {
      if (a.x != b.x) return a.x < b.x;
      return a.y < b.y;
    });
    if (!pts.empty()) root_ = build(pts.data(), pts.size());
  }

  size_t size() const { return root_ ? root_->by_y.size() : 0; }

  // All points with xlo <= x <= xhi and ylo <= y <= yhi.
  std::vector<point> query_report(Coord xlo, Coord xhi, Coord ylo, Coord yhi) const {
    std::vector<point> out;
    if (root_) report(root_.get(), xlo, xhi, ylo, yhi, out);
    return out;
  }

  // Sum of weights in the window (extension; CGAL would enumerate).
  W query_sum(Coord xlo, Coord xhi, Coord ylo, Coord yhi) const {
    return root_ ? sum(root_.get(), xlo, xhi, ylo, yhi) : W{};
  }

 private:
  struct node {
    Coord xmin, xmax;            // x-extent of the points below
    std::vector<point> by_y;     // all points below, sorted by (y, x)
    std::vector<W> prefix;       // prefix[i] = sum of by_y[0..i).w
    std::unique_ptr<node> l, r;
  };

  static std::unique_ptr<node> build(const point* a, size_t n) {
    auto t = std::make_unique<node>();
    t->xmin = a[0].x;
    t->xmax = a[n - 1].x;
    if (n == 1) {
      t->by_y = {a[0]};
    } else {
      size_t half = n / 2;
      t->l = build(a, half);
      t->r = build(a + half, n - half);
      t->by_y.resize(n);
      std::merge(t->l->by_y.begin(), t->l->by_y.end(), t->r->by_y.begin(),
                 t->r->by_y.end(), t->by_y.begin(),
                 [](const point& p, const point& q) {
                   if (p.y != q.y) return p.y < q.y;
                   return p.x < q.x;
                 });
    }
    t->prefix.resize(t->by_y.size() + 1);
    t->prefix[0] = W{};
    for (size_t i = 0; i < t->by_y.size(); i++)
      t->prefix[i + 1] = t->prefix[i] + t->by_y[i].w;
    return t;
  }

  static size_t y_lower(const node* t, Coord y) {
    return std::lower_bound(t->by_y.begin(), t->by_y.end(), y,
                            [](const point& p, Coord v) { return p.y < v; }) -
           t->by_y.begin();
  }
  static size_t y_upper(const node* t, Coord y) {
    return std::upper_bound(t->by_y.begin(), t->by_y.end(), y,
                            [](Coord v, const point& p) { return v < p.y; }) -
           t->by_y.begin();
  }

  static void report(const node* t, Coord xlo, Coord xhi, Coord ylo, Coord yhi,
                     std::vector<point>& out) {
    if (t->xmax < xlo || t->xmin > xhi) return;
    if (xlo <= t->xmin && t->xmax <= xhi) {  // canonical: scan the y slab
      size_t lo = y_lower(t, ylo), hi = y_upper(t, yhi);
      for (size_t i = lo; i < hi; i++) out.push_back(t->by_y[i]);
      return;
    }
    if (t->l) report(t->l.get(), xlo, xhi, ylo, yhi, out);
    if (t->r) report(t->r.get(), xlo, xhi, ylo, yhi, out);
    if (!t->l && !t->r) {  // leaf not fully covered: check the point
      const point& p = t->by_y[0];
      if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) out.push_back(p);
    }
  }

  static W sum(const node* t, Coord xlo, Coord xhi, Coord ylo, Coord yhi) {
    if (t->xmax < xlo || t->xmin > xhi) return W{};
    if (xlo <= t->xmin && t->xmax <= xhi) {
      size_t lo = y_lower(t, ylo), hi = y_upper(t, yhi);
      return t->prefix[hi] - t->prefix[lo];
    }
    W s{};
    if (t->l) s += sum(t->l.get(), xlo, xhi, ylo, yhi);
    if (t->r) s += sum(t->r.get(), xlo, xhi, ylo, yhi);
    if (!t->l && !t->r) {
      const point& p = t->by_y[0];
      if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) s += p.w;
    }
    return s;
  }

  std::unique_ptr<node> root_;
};

}  // namespace pam::baselines
