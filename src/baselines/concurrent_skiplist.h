// A lock-free concurrent skiplist (insert + lookup), Herlihy-Shavit style.
//
// One of the concurrent comparison-based structures PAM's multi-insert and
// parallel reads are compared against in Figure 6(a)/(b) (the paper uses
// the skiplist from the Wang et al. benchmark suite). Supports fully
// concurrent insert (CAS per level, bottom-up linking) and wait-free-ish
// lookup; updates of an existing key store the new value atomically.
// Deletion is not needed by the benchmark and is not provided.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "alloc/type_allocator.h"
#include "util/random.h"

namespace pam::baselines {

class concurrent_skiplist {
 public:
  using K = uint64_t;
  using V = uint64_t;
  static constexpr int kMaxLevel = 20;

  concurrent_skiplist() {
    head_ = node_alloc::allocate();
    head_->key = 0;  // never compared: head is before everything by construction
    head_->value.store(0, std::memory_order_relaxed);
    head_->top_level = kMaxLevel - 1;
    for (int i = 0; i < kMaxLevel; i++)
      head_->next[i].store(nullptr, std::memory_order_relaxed);
  }

  ~concurrent_skiplist() {
    node_t* n = head_;
    while (n != nullptr) {
      node_t* nx = n->next[0].load(std::memory_order_relaxed);
      node_alloc::deallocate(n);
      n = nx;
    }
  }

  concurrent_skiplist(const concurrent_skiplist&) = delete;
  concurrent_skiplist& operator=(const concurrent_skiplist&) = delete;

  // Insert or update. Thread-safe against concurrent inserts and finds.
  void insert(K key, V value) {
    int top = level_of(key);
    node_t* preds[kMaxLevel];
    node_t* succs[kMaxLevel];
    while (true) {
      if (node_t* hit = find_position(key, preds, succs)) {
        hit->value.store(value, std::memory_order_release);
        return;
      }
      node_t* n = node_alloc::allocate();
      n->key = key;
      n->value.store(value, std::memory_order_relaxed);
      n->top_level = top;
      for (int i = 0; i <= top; i++)
        n->next[i].store(succs[i], std::memory_order_relaxed);
      // Linearize at the bottom-level CAS.
      if (!preds[0]->next[0].compare_exchange_strong(
              succs[0], n, std::memory_order_acq_rel, std::memory_order_relaxed)) {
        node_alloc::deallocate(n);
        continue;  // raced; retry from scratch
      }
      // Link the upper levels, refreshing predecessors as needed.
      for (int i = 1; i <= top; i++) {
        while (true) {
          node_t* expected = succs[i];
          if (preds[i]->next[i].compare_exchange_strong(
                  expected, n, std::memory_order_acq_rel, std::memory_order_relaxed)) {
            break;
          }
          find_position(key, preds, succs);
          n->next[i].store(succs[i], std::memory_order_relaxed);
        }
      }
      return;
    }
  }

  bool find(K key, V& out) const {
    const node_t* pred = head_;
    for (int i = kMaxLevel - 1; i >= 0; i--) {
      const node_t* cur = pred->next[i].load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = cur->next[i].load(std::memory_order_acquire);
      }
      if (cur != nullptr && cur->key == key) {
        out = cur->value.load(std::memory_order_acquire);
        return true;
      }
    }
    return false;
  }

  bool contains(K key) const {
    V v;
    return find(key, v);
  }

  size_t size_slow() const {  // sequential; for tests only
    size_t n = 0;
    const node_t* cur = head_->next[0].load(std::memory_order_acquire);
    while (cur != nullptr) {
      n++;
      cur = cur->next[0].load(std::memory_order_acquire);
    }
    return n;
  }

  // In-order key check for tests.
  bool is_sorted() const {
    const node_t* cur = head_->next[0].load(std::memory_order_acquire);
    while (cur != nullptr) {
      const node_t* nx = cur->next[0].load(std::memory_order_acquire);
      if (nx != nullptr && !(cur->key < nx->key)) return false;
      cur = nx;
    }
    return true;
  }

 private:
  struct node_t {
    K key;
    std::atomic<V> value;
    int top_level;
    std::atomic<node_t*> next[kMaxLevel];
  };
  using node_alloc = type_allocator<node_t>;

  // Fills preds/succs at every level; returns the node if key is present.
  node_t* find_position(K key, node_t** preds, node_t** succs) const {
    node_t* found = nullptr;
    node_t* pred = head_;
    for (int i = kMaxLevel - 1; i >= 0; i--) {
      node_t* cur = pred->next[i].load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = cur->next[i].load(std::memory_order_acquire);
      }
      preds[i] = pred;
      succs[i] = cur;
      if (found == nullptr && cur != nullptr && cur->key == key) found = cur;
    }
    return found;
  }

  // Tower height as a pure hash of the key (geometric, p = 1/2): the same
  // key always gets the same height, making the structure deterministic
  // and retry-friendly (a lost CAS race re-inserts an identical tower).
  static int level_of(K key) {
    uint64_t bits = hash64(key ^ 0x5bd1e995u);
    int lvl = 0;
    while ((bits & 1) && lvl < kMaxLevel - 1) {
      lvl++;
      bits >>= 1;
    }
    return lvl;
  }

  node_t* head_;
};

}  // namespace pam::baselines
