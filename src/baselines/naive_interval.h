// A naive interval store: linear-scan stabbing queries over a flat vector.
//
// The paper's only available comparison for the interval tree was an
// interpreted Python library ~1000x slower; the asymptotic point it makes
// (a generic O(log n) structure crushes per-query linear work) is what this
// baseline demonstrates in the Table 5 benchmark.
#pragma once

#include <utility>
#include <vector>

namespace pam::baselines {

template <typename P = double>
class naive_interval_store {
 public:
  using interval = std::pair<P, P>;  // closed [first, second]

  naive_interval_store() = default;
  explicit naive_interval_store(std::vector<interval> xs) : xs_(std::move(xs)) {}

  void insert(const interval& x) { xs_.push_back(x); }
  size_t size() const { return xs_.size(); }

  bool stab(P p) const {
    for (const auto& [l, r] : xs_) {
      if (l <= p && p <= r) return true;
    }
    return false;
  }

  std::vector<interval> report_all(P p) const {
    std::vector<interval> out;
    for (const auto& x : xs_) {
      if (x.first <= p && p <= x.second) out.push_back(x);
    }
    return out;
  }

 private:
  std::vector<interval> xs_;
};

}  // namespace pam::baselines
