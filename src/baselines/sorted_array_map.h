// A bulk-parallel sorted-array map: the stand-in for MCSTL's parallel bulk
// dictionary insertion (Table 3, MCSTL rows). MCSTL implements multi-insert
// as sort-updates + parallel merge into the dictionary; this class has the
// same algorithmic structure (parallel sort, parallel merge, rebuild), so
// its scaling profile matches the role MCSTL plays in the paper's
// comparison: good bulk throughput, O(n + m) work per batch (vs PAM's
// O(m log(n/m + 1))), no persistence.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/merge_sort.h"
#include "parallel/parallel.h"
#include "parallel/sequence_ops.h"

namespace pam::baselines {

template <typename K, typename V>
class sorted_array_map {
 public:
  using entry_t = std::pair<K, V>;

  sorted_array_map() = default;

  explicit sorted_array_map(std::vector<entry_t> entries) {
    normalize(entries);
    data_ = std::move(entries);
  }

  size_t size() const { return data_.size(); }

  bool find(const K& k, V& out) const {
    size_t lo = 0, hi = data_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (data_[mid].first < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < data_.size() && data_[lo].first == k) {
      out = data_[lo].second;
      return true;
    }
    return false;
  }

  // Bulk insert: sort the batch in parallel, then parallel-merge with the
  // existing array into a fresh array (later values win on duplicates).
  void multi_insert(std::vector<entry_t> batch) {
    normalize(batch);
    if (data_.empty()) {
      data_ = std::move(batch);
      return;
    }
    if (batch.empty()) return;
    std::vector<entry_t> merged(data_.size() + batch.size());
    internal::parallel_merge(
        data_.data(), data_.size(), batch.data(), batch.size(), merged.data(),
        [](const entry_t& a, const entry_t& b) { return a.first < b.first; });
    // Collapse duplicates: stability put the old value first, so keep-last.
    data_ = combine_sorted_runs(
        merged, [](const K& a, const K& b) { return a < b; },
        [](const V&, const V& nv) { return nv; });
  }

  const std::vector<entry_t>& entries() const { return data_; }

 private:
  static void normalize(std::vector<entry_t>& v) {
    parallel_sort(v.data(), v.size(),
                  [](const entry_t& a, const entry_t& b) { return a.first < b.first; });
    v = combine_sorted_runs(
        v, [](const K& a, const K& b) { return a < b; },
        [](const V&, const V& nv) { return nv; });
  }

  std::vector<entry_t> data_;
};

}  // namespace pam::baselines
