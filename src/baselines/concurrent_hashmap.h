// A concurrent open-addressing hash map (insert + lookup) over a
// pre-allocated table: the stand-in for the Intel TBB concurrent_hash_map
// data point in Section 6.1 ("inserting n entries into a pre-allocated
// table of appropriate size").
//
// Linear probing; slots are claimed with a CAS on the key word, values are
// published with a release store and read with an acquire load (readers
// spin across the claim->publish window, which is a few instructions).
// Keys may not be kEmptyKey (2^64-1); the table does not grow.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "util/random.h"

namespace pam::baselines {

class concurrent_hashmap {
 public:
  using K = uint64_t;
  using V = uint64_t;
  static constexpr K kEmptyKey = ~0ull;
  static constexpr V kNoValue = ~0ull;

  // Capacity for n entries with a fixed load factor (~50%).
  explicit concurrent_hashmap(size_t n) {
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    mask_ = cap - 1;
    keys_ = std::make_unique<std::atomic<K>[]>(cap);
    vals_ = std::make_unique<std::atomic<V>[]>(cap);
    for (size_t i = 0; i < cap; i++) {
      keys_[i].store(kEmptyKey, std::memory_order_relaxed);
      vals_[i].store(kNoValue, std::memory_order_relaxed);
    }
  }

  concurrent_hashmap(const concurrent_hashmap&) = delete;
  concurrent_hashmap& operator=(const concurrent_hashmap&) = delete;

  // Insert or update. key != kEmptyKey, value != kNoValue.
  void insert(K key, V value) {
    assert(key != kEmptyKey && value != kNoValue);
    size_t i = hash64(key) & mask_;
    while (true) {
      K cur = keys_[i].load(std::memory_order_acquire);
      if (cur == key) {
        vals_[i].store(value, std::memory_order_release);
        return;
      }
      if (cur == kEmptyKey) {
        K expect = kEmptyKey;
        if (keys_[i].compare_exchange_strong(expect, key,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          vals_[i].store(value, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (expect == key) {  // lost the race to the same key
          vals_[i].store(value, std::memory_order_release);
          return;
        }
      }
      i = (i + 1) & mask_;
    }
  }

  bool find(K key, V& out) const {
    size_t i = hash64(key) & mask_;
    while (true) {
      K cur = keys_[i].load(std::memory_order_acquire);
      if (cur == kEmptyKey) return false;
      if (cur == key) {
        // Spin across the claim->publish window of a racing inserter.
        V v;
        do {
          v = vals_[i].load(std::memory_order_acquire);
        } while (v == kNoValue);
        out = v;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<std::atomic<K>[]> keys_;
  std::unique_ptr<std::atomic<V>[]> vals_;
  size_t mask_;
  std::atomic<size_t> size_{0};
};

}  // namespace pam::baselines
