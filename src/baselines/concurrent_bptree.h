// A concurrent B+-tree with hand-over-hand (crab) latching and proactive
// splits: readers take shared locks down the tree, writers take exclusive
// locks and split any full child while still holding the parent, so a
// parent lock can always be released as soon as the child is latched.
//
// This is the B+-tree point in the paper's Figure 6(a)/(b) comparison (the
// paper uses the OLC B+-tree from Wang et al.); lock coupling is the
// simpler-but-honest member of the same design family: excellent read
// scaling, writer scaling limited by latch traffic near the root — exactly
// the qualitative profile the figure shows.
//
// Static checking note: hand-over-hand latching is the textbook protocol
// the clang capability model cannot express — which lock is held is a
// *positional* fact (the current rung of the descent), not a lexical one,
// and per-node latches are addressed through pointers the analysis cannot
// name. The lock types are still the annotated pam wrappers (so misuse in
// non-crabbing code is caught) and the root pointer is GUARDED_BY the
// anchor latch; the descent routines themselves carry
// PAM_NO_THREAD_SAFETY_ANALYSIS and are covered by the TSan CI job.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "util/thread_annotations.h"

namespace pam::baselines {

class concurrent_bptree {
 public:
  using K = uint64_t;
  using V = uint64_t;

  // pam-lint: allow(naked-new) — the baseline allocates a node per split
  // by design; the contrast with the pooled PAM layout is the point.
  concurrent_bptree() { root_ = new node_t(/*leaf=*/true); }

  ~concurrent_bptree() { destroy(root_); }

  concurrent_bptree(const concurrent_bptree&) = delete;
  concurrent_bptree& operator=(const concurrent_bptree&) = delete;

  void insert(K key, V value) PAM_NO_THREAD_SAFETY_ANALYSIS {
    // Fast path: shared-lock crabbing down to the leaf, exclusive lock only
    // on the leaf itself. Succeeds unless the leaf is full (~1/(fanout/2)
    // of inserts), keeping writers mostly parallel.
    if (insert_fast(key, value)) return;
    // Slow path: exclusive descent with proactive splits.
    anchor_.lock();
    node_t* r = root_;
    r->mu.lock();
    if (r->count == kFanout) {  // split the root under the anchor lock
      // pam-lint: allow(naked-new) — baseline per-node allocation.
      node_t* nr = new node_t(/*leaf=*/false);
      nr->kids[0] = r;
      nr->count = 1;
      split_child(nr, 0);
      root_ = nr;
      height_.fetch_add(1, std::memory_order_release);
      r->mu.unlock();
      r = nr;
      r->mu.lock();
    }
    anchor_.unlock();
    insert_descend(r, key, value);  // consumes r's exclusive lock
  }

  bool find(K key, V& out) const PAM_NO_THREAD_SAFETY_ANALYSIS {
    anchor_.lock_shared();
    node_t* n = root_;
    n->mu.lock_shared();
    anchor_.unlock_shared();
    while (!n->leaf) {
      node_t* child = n->kids[child_index(n, key)];
      child->mu.lock_shared();
      n->mu.unlock_shared();
      n = child;
    }
    bool found = false;
    int i = lower_bound(n, key);
    if (i < n->count && n->keys[i] == key) {
      out = n->vals[i];
      found = true;
    }
    n->mu.unlock_shared();
    return found;
  }

  bool contains(K key) const {
    V v;
    return find(key, v);
  }

  // Sequential, tests only: reads root_ without the anchor latch, which is
  // sound only in quiescence — hence the analysis opt-out.
  size_t size_slow() const PAM_NO_THREAD_SAFETY_ANALYSIS {
    return count(root_);
  }

  // Sequential in-order key extraction for tests (quiescent, see size_slow).
  void keys_inorder(std::vector<K>& out) const PAM_NO_THREAD_SAFETY_ANALYSIS {
    collect(root_, out);
  }

 private:
  static constexpr int kFanout = 32;  // max keys per leaf / kids per inner

  // Node fields are protected by the node's own latch `mu`, but
  // positionally (whoever holds this rung of the descent), so they carry no
  // GUARDED_BY — the crabbing routines own the whole protocol.
  struct node_t {
    // pam-lint: allow(unguarded-mutex) — positional latch, see above.
    mutable shared_mutex mu;
    bool leaf;
    int count;  // #keys in a leaf; #kids in an inner node
    K keys[kFanout];
    union {
      V vals[kFanout];
      node_t* kids[kFanout];
    };
    explicit node_t(bool is_leaf) : leaf(is_leaf), count(0) {}
  };

  // Key routing in an inner node: kids[i] holds keys < keys[i]; the last
  // child holds the rest. An inner node with c kids stores c-1 separators.
  static int child_index(const node_t* n, K key) {
    int i = 0;
    while (i < n->count - 1 && key >= n->keys[i]) i++;
    return i;
  }

  static int lower_bound(const node_t* n, K key) {
    int lo = 0, hi = n->count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (n->keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Split full child kids[ci] of the exclusively-locked inner node p.
  static void split_child(node_t* p, int ci) {
    node_t* c = p->kids[ci];
    // pam-lint: allow(naked-new) — baseline per-node allocation.
    node_t* s = new node_t(c->leaf);
    int half = kFanout / 2;
    K sep;
    if (c->leaf) {
      // Move the upper half of the keys to the sibling.
      s->count = kFanout - half;
      for (int i = 0; i < s->count; i++) {
        s->keys[i] = c->keys[half + i];
        s->vals[i] = c->vals[half + i];
      }
      c->count = half;
      sep = s->keys[0];
    } else {
      s->count = kFanout - half;
      for (int i = 0; i < s->count; i++) s->kids[i] = c->kids[half + i];
      for (int i = 0; i + 1 < s->count; i++) s->keys[i] = c->keys[half + i];
      sep = c->keys[half - 1];
      c->count = half;
    }
    // Insert sibling after ci in p.
    for (int i = p->count; i > ci + 1; i--) p->kids[i] = p->kids[i - 1];
    for (int i = p->count - 1; i > ci; i--) p->keys[i] = p->keys[i - 1];
    p->kids[ci + 1] = s;
    p->keys[ci] = sep;
    p->count++;
  }

  // Shared-lock descent with exclusive locks only on the leaf's parent and
  // the leaf, so concurrent inserts under different parents never collide
  // and leaf splits stay parallel. Falls back (false) to the fully
  // exclusive path only when the parent itself is full (~fanout^-2 of
  // inserts) or when a concurrent root split made our height stale.
  bool insert_fast(K key, V value) PAM_NO_THREAD_SAFETY_ANALYSIS {
    int h = height_.load(std::memory_order_acquire);
    anchor_.lock_shared();
    node_t* n = root_;
    if (h == 1) {  // root is a leaf: lock it while still holding the anchor
                   // so a concurrent root split cannot slip in
      n->mu.lock();
      anchor_.unlock_shared();
      bool ok = n->leaf && n->count < kFanout;
      if (ok) leaf_insert(n, key, value);
      n->mu.unlock();
      return ok;
    }
    // Depth of the leaf-parent level; lock that level exclusively.
    int depth = 0;
    if (h == 2) {
      n->mu.lock();
      anchor_.unlock_shared();
    } else {
      n->mu.lock_shared();
      anchor_.unlock_shared();
      while (depth + 1 < h - 2) {
        node_t* c = n->kids[child_index(n, key)];
        c->mu.lock_shared();
        n->mu.unlock_shared();
        n = c;
        depth++;
      }
      node_t* c = n->kids[child_index(n, key)];
      c->mu.lock();
      n->mu.unlock_shared();
      n = c;
      depth++;
    }
    // n is exclusively locked and should be the parent of leaves.
    int ci = child_index(n, key);
    if (n->leaf || n->count == 0) {  // stale height; bail out
      n->mu.unlock();
      return false;
    }
    node_t* c = n->kids[ci];
    c->mu.lock();
    if (!c->leaf) {  // a root split deepened the tree under us
      c->mu.unlock();
      n->mu.unlock();
      return false;
    }
    if (c->count == kFanout) {
      int i = lower_bound(c, key);
      if (i < c->count && c->keys[i] == key) {  // update-in-place still fits
        c->vals[i] = value;
        c->mu.unlock();
        n->mu.unlock();
        return true;
      }
      if (n->count == kFanout) {  // parent full too: cascade to slow path
        c->mu.unlock();
        n->mu.unlock();
        return false;
      }
      split_child(n, ci);
      if (ci < n->count - 1 && key >= n->keys[ci]) {  // re-route to sibling
        node_t* s = n->kids[ci + 1];
        s->mu.lock();
        c->mu.unlock();
        c = s;
      }
    }
    n->mu.unlock();
    leaf_insert(c, key, value);
    c->mu.unlock();
    return true;
  }

  static void leaf_insert(node_t* n, K key, V value) {
    int i = lower_bound(n, key);
    if (i < n->count && n->keys[i] == key) {
      n->vals[i] = value;
      return;
    }
    for (int j = n->count; j > i; j--) {
      n->keys[j] = n->keys[j - 1];
      n->vals[j] = n->vals[j - 1];
    }
    n->keys[i] = key;
    n->vals[i] = value;
    n->count++;
  }

  // n is exclusively locked and not full; descend, splitting full children
  // proactively, and insert at the leaf. Releases all locks it takes.
  static void insert_descend(node_t* n, K key, V value)
      PAM_NO_THREAD_SAFETY_ANALYSIS {
    while (!n->leaf) {
      int ci = child_index(n, key);
      node_t* c = n->kids[ci];
      c->mu.lock();
      if (c->count == kFanout) {
        split_child(n, ci);
        // Re-route: the new separator may send us to the sibling.
        if (ci < n->count - 1 && key >= n->keys[ci]) {
          node_t* s = n->kids[ci + 1];
          s->mu.lock();
          c->mu.unlock();
          c = s;
        }
      }
      n->mu.unlock();
      n = c;
    }
    int i = lower_bound(n, key);
    if (i < n->count && n->keys[i] == key) {
      n->vals[i] = value;  // update in place
    } else {
      for (int j = n->count; j > i; j--) {
        n->keys[j] = n->keys[j - 1];
        n->vals[j] = n->vals[j - 1];
      }
      n->keys[i] = key;
      n->vals[i] = value;
      n->count++;
    }
    n->mu.unlock();
  }

  static void destroy(node_t* n) {
    if (!n->leaf) {
      for (int i = 0; i < n->count; i++) destroy(n->kids[i]);
    }
    // pam-lint: allow(naked-delete) — baseline teardown, sequential.
    delete n;
  }

  static size_t count(const node_t* n) {
    if (n->leaf) return static_cast<size_t>(n->count);
    size_t s = 0;
    for (int i = 0; i < n->count; i++) s += count(n->kids[i]);
    return s;
  }

  static void collect(const node_t* n, std::vector<K>& out) {
    if (n->leaf) {
      for (int i = 0; i < n->count; i++) out.push_back(n->keys[i]);
      return;
    }
    for (int i = 0; i < n->count; i++) collect(n->kids[i], out);
  }

  mutable shared_mutex anchor_;
  node_t* root_ PAM_GUARDED_BY(anchor_);
  std::atomic<int> height_{1};  // levels incl. the leaf level; grows only
};

}  // namespace pam::baselines
