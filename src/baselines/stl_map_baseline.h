// Sequential STL baselines for Table 3: the paper compares PAM's UNION
// against std::map ("Union-Tree": results inserted into a new red-black
// tree, i.e. persistent like PAM) and against std::set_union over sorted
// vectors ("Union-Array"), plus repeated std::map::insert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace pam::baselines {

using kv = std::pair<uint64_t, uint64_t>;

// Union producing a new std::map (inputs untouched). On duplicate keys the
// second argument wins, matching PAM's default.
inline std::map<uint64_t, uint64_t> stl_union_tree(
    const std::map<uint64_t, uint64_t>& a, const std::map<uint64_t, uint64_t>& b) {
  std::map<uint64_t, uint64_t> out(a);
  for (const auto& e : b) out.insert_or_assign(e.first, e.second);
  return out;
}

// Union of two sorted duplicate-free vectors into a new vector
// (std::set_union keeps the first range's element on ties; we merge with
// second-wins to match PAM).
inline std::vector<kv> stl_union_array(const std::vector<kv>& a,
                                       const std::vector<kv>& b) {
  std::vector<kv> out;
  out.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      out.push_back(a[i++]);
    } else if (b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.push_back(b[j++]);
      i++;
    }
  }
  out.insert(out.end(), a.begin() + i, a.end());
  out.insert(out.end(), b.begin() + j, b.end());
  return out;
}

// n sequential insertions into an initially empty std::map.
inline std::map<uint64_t, uint64_t> stl_insert_n(const std::vector<kv>& entries) {
  std::map<uint64_t, uint64_t> m;
  for (const auto& e : entries) m.insert_or_assign(e.first, e.second);
  return m;
}

}  // namespace pam::baselines
