// write_combiner: a batched ingest queue in front of a sharded_map.
//
// The paper's Table 2 makes the case: m point inserts cost O(m log n)
// committed one at a time, but one multi_insert of the same m keys costs
// O(m log(n/m + 1)) — and a per-op commit through snapshot_box additionally
// pays a root copy-path and two lock handshakes per key. The combiner turns
// the per-op client API (upsert / erase) back into the bulk path: ops are
// appended to a small per-shard pending buffer, and a buffer is flushed as
// one multi_insert + multi_delete batch when it reaches `batch_size`, when
// the background flusher's `flush_interval` tick fires, or on an explicit
// flush_all().
//
// Semantics:
//   * Per-key last-writer-wins within a batch: before applying, a batch is
//     coalesced so only the most recent op on each key survives (an upsert
//     followed by an erase deletes; duplicates fold away). Coalescing is
//     stable with respect to enqueue order.
//   * No lost updates: enqueue appends under the shard's buffer lock, and a
//     per-shard flush lock is held across [swap buffer out → commit], so
//     batches of one shard commit in enqueue order and a later batch can
//     never overtake an earlier one.
//   * Visibility: reads through the sharded_map see committed state only;
//     each per-shard slice of a flushed batch becomes visible in one atomic
//     epoch-protected root publication (snapshot_box::update_if), so
//     readers never see a slice half-applied. flush_all() is the barrier —
//     every op enqueued happens-before a flush_all() call is committed when
//     it returns.
//   * Rebalance-stable queues: ops are bucketed into queues by the splitter
//     directory pinned at construction (a shared handle that outlives any
//     number of rebalances), so a key's ops always ride the same queue and
//     the per-queue flush lock keeps them in enqueue order even while the
//     target's live directory changes underneath. At the flush boundary a
//     batch is applied through the target's bulk write path, which
//     partitions against the *live* directory and re-routes around any
//     concurrent rebalance — queue index and live shard index are decoupled
//     on purpose (the WAL replayer never trusted the queue index either).
//   * Shutdown drains: shutdown() (also run by the destructor) stops the
//     flusher thread and then flushes every remaining op, so the final
//     drain is guaranteed to land in the target sharded_map before the
//     combiner — and therefore before any sharded_map constructed earlier
//     than it — is torn down. An op enqueued concurrently with shutdown is
//     never stranded: it either lands in a buffer before the closed flag is
//     set (the final flush_all commits it) or observes the flag and commits
//     directly to the target. shutdown() is idempotent; after it returns,
//     every later upsert/erase bypasses the (now permanently drained)
//     buffers and commits as a point write.
//
// Thread safety: upsert / erase / flush_all / shutdown / stats may be
// called from any number of threads concurrently. Only the destructor
// itself must be externally synchronized with other member calls (standard
// C++ object lifetime), which is why kv_store declares the combiner after
// its sharded_map: members destroy in reverse order, so the drain always
// precedes the target's destruction.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/sharded_map.h"
#include "util/thread_annotations.h"

namespace pam {

template <typename Map>
class write_combiner {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using entry_t = typename Map::entry_t;
  using entry_policy = typename Map::entry_policy;

  struct config {
    // Flush a shard's buffer once it holds this many pending ops.
    size_t batch_size = 1024;
    // Background flusher period; zero disables the flusher thread (flushes
    // then happen only on batch_size overflow and explicit flush_all).
    std::chrono::milliseconds flush_interval{2};
    // Durability hook: called with each coalesced batch under the shard's
    // flush lock, BEFORE the batch is applied to the target — so a batch is
    // never visible to readers unless it was offered to the log first. A
    // throwing sink aborts the commit (the batch is dropped, the exception
    // propagates to whoever drove the flush): crash semantics, exercised by
    // the fault-injection tests. Empty = no durability (the default).
    std::function<void(size_t shard, const std::vector<entry_t>& upserts,
                       const std::vector<K>& deletes)>
        batch_sink{};
  };

  struct stats_snapshot {
    uint64_t ops_enqueued;    // upserts + erases accepted
    uint64_t ops_committed;   // ops surviving coalescing, applied to shards
    uint64_t batches_flushed; // non-empty batch commits
    uint64_t sink_failures;   // batches dropped because batch_sink threw
  };

  explicit write_combiner(sharded_map<Map>& target, config cfg = {})
      : target_(target), cfg_(cfg), routing_(target.splitters_handle()),
        queues_(routing_->size() + 1) {
    for (auto& q : queues_) q = std::make_unique<shard_queue>();
    if (cfg_.flush_interval.count() > 0)
      flusher_ = std::thread([this] { flusher_loop(); });
  }

  ~write_combiner() {
    try {
      shutdown();
    } catch (...) {
      // The final drain hit a batch_sink failure: the undrained ops were
      // never acked, and a destructor must not throw.
    }
  }

  // Stop the background flusher and drain every queued batch into the
  // target. Safe to call repeatedly and from any thread; the first call
  // closes the buffers (subsequent enqueues commit directly), every call
  // acts as a flush_all() barrier for ops already enqueued.
  void shutdown() {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      if (flusher_.joinable()) {
        {
          mutex_guard lock(flusher_mu_);
          stop_ = true;
        }
        flusher_cv_.notify_all();
        flusher_.join();
      }
    }
    flush_all();
  }

  write_combiner(const write_combiner&) = delete;
  write_combiner& operator=(const write_combiner&) = delete;

  // Enqueue a point upsert; committed by a later flush.
  void upsert(const K& k, const V& v) { enqueue(k, std::optional<V>(v)); }

  // Enqueue a point delete.
  void erase(const K& k) { enqueue(k, std::nullopt); }

  // Commit every pending op. On return, all ops enqueued before this call
  // are visible to sharded_map readers.
  void flush_all() {
    for (size_t s = 0; s < queues_.size(); s++) flush_shard(s);
  }

  // Flush every shard, then run `fn` while ALL shard flush locks are held.
  // While `fn` runs no batch can sit between its batch_sink call (the WAL
  // append) and its apply to the target — the two happen under the same
  // per-shard flush lock — and no new batch can commit until it returns.
  // This is the consistency fence kv_store::save_checkpoint cuts its
  // durable checkpoint on: inside `fn`, the target reflects exactly the
  // batches the sink has seen. Locks are taken in shard-index order (the
  // only place more than one flush lock is ever held); `fn` must not
  // re-enter the combiner.
  template <typename Fn>
  void quiesced(Fn&& fn) {
    quiesce_from(0, fn);
  }

  // A point-in-time view over this instance's registry counters: the
  // registry is the single source of truth (PR 9), this struct is the
  // compatibility surface older callers keep using. With PAM_METRICS=0 the
  // counters are no-ops and every field reads zero.
  stats_snapshot stats() const {
    return {ops_enqueued_.value(), ops_committed_.value(),
            batches_flushed_.value(), sink_failures_.value()};
  }

 private:
  // An op is (key, new value) for upsert or (key, nullopt) for erase.
  using op_t = std::pair<K, std::optional<V>>;

  struct shard_queue {
    mutex buffer_mu;            // held only for a push/swap
    std::vector<op_t> pending PAM_GUARDED_BY(buffer_mu);
    // Enqueue time of the oldest op in `pending` (0 = empty): the flush
    // that drains the buffer records now - oldest_ns as the worst-case
    // enqueue→flush latency of the batch.
    uint64_t oldest_ns PAM_GUARDED_BY(buffer_mu) = 0;
    mutex flush_mu;             // orders [swap → commit] sections per shard
  };

  void enqueue(const K& k, std::optional<V> v) {
    // Routed by the pinned construction-time splitters, NOT the live
    // directory: the queue index must be stable across rebalances so both
    // ops of a same-key pair always serialize on one flush lock.
    size_t s = server_internal::shard_index(*routing_, k, entry_policy::comp);
    shard_queue& q = *queues_[s];
    bool buffered = false;
    bool overflow = false;
    {
      mutex_guard lock(q.buffer_mu);
      // The closed check is under the buffer lock: an op either lands in
      // the buffer before shutdown() closes (its final flush_all takes this
      // same lock and drains it) or sees closed and takes the direct path
      // below — no op can be stranded in a dead buffer.
      if (!closed_.load(std::memory_order_acquire)) {
        if (q.pending.empty()) q.oldest_ns = obs::now_ns();
        q.pending.emplace_back(k, std::move(v));
        overflow = q.pending.size() >= cfg_.batch_size;
        buffered = true;
      }
    }
    ops_enqueued_.inc();
    if (buffered) queue_depth_.add(1);
    if (!buffered) {
      // Post-shutdown: drain whatever is still pending for this shard and
      // commit this op behind it, all under the flush lock — an older
      // buffered write can never overtake it.
      mutex_guard serialize(q.flush_mu);
      auto [batch, oldest] = swap_out(q);
      batch.emplace_back(k, std::move(v));
      commit_batch(q, s, std::move(batch), oldest);
      return;
    }
    if (overflow) flush_shard(s);
  }

  // Drain the shard's buffer; returns (batch, enqueue time of its oldest
  // op — 0 when the batch is empty).
  std::pair<std::vector<op_t>, uint64_t> swap_out(shard_queue& q) {
    std::vector<op_t> batch;
    batch.reserve(cfg_.batch_size);
    uint64_t oldest = 0;
    {
      mutex_guard lock(q.buffer_mu);
      batch.swap(q.pending);
      oldest = q.oldest_ns;
      q.oldest_ns = 0;
    }
    queue_depth_.add(-static_cast<int64_t>(batch.size()));
    return {std::move(batch), oldest};
  }

  // Coalesce and apply one batch to shard s. The caller-holds-q.flush_mu
  // contract is an annotation, not just this comment: calling it unlocked
  // (which would let a later batch overtake this one) fails to compile
  // under clang -Wthread-safety.
  void commit_batch(shard_queue& q, size_t s, std::vector<op_t> batch,
                    uint64_t oldest_ns = 0) PAM_REQUIRES(q.flush_mu) {
    (void)q;
    if (batch.empty()) return;
    obs::span flush_span("combiner.flush");
    batch_ops_.record(batch.size());
    if (oldest_ns != 0) {
      enqueue_to_flush_ns_.record(obs::now_ns() - oldest_ns);
    }
    auto [upserts, deletes] = coalesce(std::move(batch));
    if (cfg_.batch_sink) {
      // Still under q.flush_mu: the log sees this shard's batches in the
      // same order readers will, and a sink failure keeps the batch out of
      // the target entirely — it was never acked, so losing it is correct.
      try {
        cfg_.batch_sink(s, upserts, deletes);
      } catch (...) {
        sink_failures_.inc();
        throw;
      }
    }
    ops_committed_.inc(upserts.size() + deletes.size());
    batches_flushed_.inc();
    // Apply through the live-directory bulk path: the target partitions
    // each list against whatever directory is current and transparently
    // re-routes around a concurrent rebalance. Coalescing put each key in
    // exactly one of the two lists, so the apply order between them is
    // immaterial.
    if (!upserts.empty()) target_.multi_insert(std::move(upserts));
    if (!deletes.empty()) target_.multi_delete(std::move(deletes));
  }

  // quiesced()'s lock-accumulating walk: flush shard s under its flush
  // lock, keep the lock, recurse to s+1, and run fn once every shard's
  // lock is held. Recursion keeps each acquisition lexical, so clang's
  // thread-safety analysis tracks the whole dynamic lock set.
  template <typename Fn>
  void quiesce_from(size_t s, Fn& fn) {
    if (s == queues_.size()) {
      fn();
      return;
    }
    shard_queue& q = *queues_[s];
    mutex_guard serialize(q.flush_mu);
    auto [batch, oldest] = swap_out(q);
    commit_batch(q, s, std::move(batch), oldest);
    quiesce_from(s + 1, fn);
  }

  void flush_shard(size_t s) {
    shard_queue& q = *queues_[s];
    // flush_mu spans swap-out and commit: batches of this shard apply in
    // enqueue order, which is what makes last-writer-wins hold across
    // batch boundaries (no later batch overtakes an earlier one).
    mutex_guard serialize(q.flush_mu);
    auto [batch, oldest] = swap_out(q);
    commit_batch(q, s, std::move(batch), oldest);
  }

  // Keep only the latest op per key (stable sort by key preserves enqueue
  // order within equal keys), then split survivors into the multi_insert
  // and multi_delete arguments. Each key ends up in exactly one of the two,
  // so the flush may apply them in either order.
  static std::pair<std::vector<entry_t>, std::vector<K>> coalesce(
      std::vector<op_t> batch) {
    std::stable_sort(batch.begin(), batch.end(),
                     [](const op_t& a, const op_t& b) {
                       return entry_policy::comp(a.first, b.first);
                     });
    std::vector<entry_t> upserts;
    std::vector<K> deletes;
    for (size_t i = 0; i < batch.size(); i++) {
      if (i + 1 < batch.size() &&
          !entry_policy::comp(batch[i].first, batch[i + 1].first))
        continue;  // a later op on the same key supersedes this one
      if (batch[i].second.has_value())
        upserts.emplace_back(std::move(batch[i].first), std::move(*batch[i].second));
      else
        deletes.push_back(std::move(batch[i].first));
    }
    return {std::move(upserts), std::move(deletes)};
  }

  void flusher_loop() {
    unique_guard lock(flusher_mu_);
    while (!stop_) {
      flusher_cv_.wait_for(lock, cfg_.flush_interval);
      if (stop_) break;
      lock.unlock();
      try {
        flush_all();
      } catch (...) {
        // A batch_sink failure on the background thread must not terminate
        // the process: the batch was dropped (counted in sink_failures_),
        // the WAL writer is dead, and the owner observes it via failed().
      }
      lock.lock();
    }
  }

  sharded_map<Map>& target_;
  const config cfg_;
  // The construction-time splitter directory, pinned: the stable bucketing
  // for queues_ (whose count never changes) while the target's live
  // directory rebalances freely.
  std::shared_ptr<const std::vector<K>> routing_;
  std::vector<std::unique_ptr<shard_queue>> queues_;

  // Registry-backed instrumentation (PR 9). These are per-instance members
  // — two combiners register under the same names and the scrape sums them
  // Prometheus-style — and the source of truth behind stats().
  obs::counter ops_enqueued_{"pam_combiner_ops_enqueued_total"};
  obs::counter ops_committed_{"pam_combiner_ops_committed_total"};
  obs::counter batches_flushed_{"pam_combiner_batches_flushed_total"};
  obs::counter sink_failures_{"pam_combiner_sink_failures_total"};
  obs::gauge queue_depth_{"pam_combiner_queue_depth"};
  obs::histogram batch_ops_{"pam_combiner_batch_ops"};
  obs::histogram enqueue_to_flush_ns_{"pam_combiner_enqueue_to_flush_ns"};

  std::thread flusher_;
  mutex flusher_mu_;
  // _any: waits on the annotated pam::unique_guard (std::condition_variable
  // is hardwired to std::unique_lock<std::mutex>, which the analysis cannot
  // see through).
  std::condition_variable_any flusher_cv_;
  bool stop_ PAM_GUARDED_BY(flusher_mu_) = false;
  // Set (once) by shutdown() before its final drain; read by enqueue under
  // the buffer lock to route post-shutdown ops onto the direct path.
  std::atomic<bool> closed_{false};
};

}  // namespace pam
