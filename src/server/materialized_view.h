// materialized_view: derived state over a version_store, refreshed by
// applying snapshot diffs instead of recomputing from scratch.
//
// A view is a Policy (what the derived state is and how one change moves
// it) driven by a change_feed subscription:
//
//   * rebuild()   recompute the state from the latest captured snapshot —
//                 O(n), the only full pass a view ever needs;
//   * refresh()   advance to the latest captured version by draining the
//                 subscription and applying the ordered change stream —
//                 O(d log n) for d changed entries, which is the point:
//                 1% churn refreshes ~100x less work than a rebuild. On
//                 lag (the store trimmed the view's version) refresh falls
//                 back to rebuild and reports it.
//
// Policy interface:
//
//   struct policy {
//     using state_t = ...;
//     state_t build(const sharded_snapshot<Map>& snap) const;
//     void apply(state_t& st, const map_change<Map>& c) const;
//     // optional — preferred by the driver when present:
//     void apply_batch(state_t& st, const std::vector<map_change<Map>>&) const;
//   };
//
// apply() sees each change exactly once, in key order, with both the old
// and new value — enough to maintain any group-like aggregate (subtract
// old, add new) and any keyed mirror (remove old, insert new). A policy
// whose state is itself a PAM map should provide apply_batch and ride the
// O(d log(n/d + 1)) multi_insert/multi_delete bulk path instead of 2d
// point updates. Two
// ready-made policies cover the common shapes:
//
//   * group_aggregate_policy   Σ g(k, v) under invertible combine
//                              (sums, counts, per-bucket histograms);
//   * value_index_policy       a value-ordered mirror set of (value, key)
//                              pairs — top-k reads in O(k + log n), the
//                              incremental form of the inverted index's
//                              heaviest-postings queries.
//
// Thread safety: a view owns mutable state and a feed cursor; calls on one
// view must be externally serialized (one refresher per view). Distinct
// views over one store never contend — the store itself is thread-safe.
// Like change_feed's subscription, this is the "externally serialized" row
// of the concurrency contract (DESIGN.md): the view intentionally has no
// mutex, so there is nothing to annotate — every checked capability lives
// in the version_store/sharded_map layers it reads through.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "pam/augmented_map.h"
#include "parallel/parallel.h"
#include "server/change_feed.h"
#include "server/version_store.h"

namespace pam {

template <typename Map, typename Policy>
class materialized_view {
 public:
  using state_t = typename Policy::state_t;
  using change_t = map_change<Map>;

  explicit materialized_view(version_store<Map>& store, Policy policy = {})
      : feed_(store), policy_(std::move(policy)) {}

  struct refresh_stats {
    bool rebuilt = false;       // fell back to (or was) a full rebuild
    size_t changes_applied = 0; // incremental changes consumed
    uint64_t version = 0;       // view's version after the call
  };

  // Recompute from the latest captured snapshot; moves the view there.
  refresh_stats rebuild() {
    auto [snap, v] = feed_.rebase(sub_);
    state_ = policy_.build(snap);
    rebuilds_++;
    return {true, 0, v};
  }

  // Advance to the latest captured version, incrementally when the view's
  // current version is still retained, by rebuild otherwise.
  refresh_stats refresh() {
    auto b = feed_.poll(sub_);
    if (b.lagged) return rebuild();
    apply_changes(policy_, state_, b.changes);
    changes_applied_ += b.changes.size();
    return {false, b.changes.size(), sub_.version()};
  }

  // Apply one drained delta to a policy state, taking the policy's bulk
  // path when it has one. Exposed so external refresh loops (benchmarks,
  // custom drivers) apply deltas exactly the way the view does.
  static void apply_changes(const Policy& p, state_t& st,
                            const std::vector<change_t>& changes) {
    if constexpr (requires { p.apply_batch(st, changes); }) {
      p.apply_batch(st, changes);
    } else {
      for (const change_t& c : changes) p.apply(st, c);
    }
  }

  const state_t& state() const { return state_; }
  uint64_t version() const { return sub_.version(); }
  uint64_t total_rebuilds() const { return rebuilds_; }
  uint64_t total_changes_applied() const { return changes_applied_; }
  const Policy& policy() const { return policy_; }

 private:
  change_feed<Map> feed_;
  typename change_feed<Map>::subscription sub_;
  Policy policy_;
  state_t state_{};
  uint64_t rebuilds_ = 0;
  uint64_t changes_applied_ = 0;
};

// ------------------------------------------------------ aggregate policy --

// Σ g(k, v) over the whole store under an invertible combine: add folds a
// projected entry in, sub takes one out. build is a parallel per-shard
// map_reduce; apply is O(1) per change.
template <typename Map, typename B, typename G, typename Add, typename Sub>
struct group_aggregate_policy {
  using state_t = B;

  G g;
  Add add;
  Sub sub;
  B id{};

  state_t build(const sharded_snapshot<Map>& snap) const {
    B acc = id;
    for (size_t s = 0; s < snap.num_shards(); s++)
      acc = add(acc, snap.shard(s).map_reduce(g, add, id));
    return acc;
  }

  void apply(state_t& st, const map_change<Map>& c) const {
    if (c.before.has_value()) st = sub(st, g(c.key, *c.before));
    if (c.after.has_value()) st = add(st, g(c.key, *c.after));
  }
};

template <typename Map, typename B, typename G, typename Add, typename Sub>
group_aggregate_policy<Map, B, G, Add, Sub> make_group_aggregate(
    G g, Add add, Sub sub, B id) {
  return {std::move(g), std::move(add), std::move(sub), std::move(id)};
}

// The range_sum shape: per-bucket (fixed-width key ranges) entry counts and
// value sums, the incremental form of aug_range sweeps over a dashboard of
// disjoint ranges. Requires integral-convertible keys and group values.
template <typename Map>
struct bucketed_sum_policy {
  using K = typename Map::K;
  using V = typename Map::V;

  struct bucket {
    size_t count = 0;
    V sum{};
    friend bool operator==(const bucket& a, const bucket& b) {
      return a.count == b.count && a.sum == b.sum;
    }
  };
  using state_t = std::vector<bucket>;

  uint64_t bucket_width = 1024;
  size_t num_buckets = 64;  // keys at/beyond the last edge clamp into it

  size_t bucket_of(const K& k) const {
    uint64_t b = static_cast<uint64_t>(k) / bucket_width;
    return b < num_buckets ? static_cast<size_t>(b) : num_buckets - 1;
  }

  state_t build(const sharded_snapshot<Map>& snap) const {
    std::vector<state_t> partial(snap.num_shards(),
                                 state_t(num_buckets));
    parallel_for(
        0, snap.num_shards(),
        [&](size_t s) {
          snap.shard(s).for_each([&](const K& k, const V& v) {
            bucket& b = partial[s][bucket_of(k)];
            b.count++;
            b.sum += v;
          });
        },
        1);
    state_t out(num_buckets);
    for (const state_t& p : partial) {
      for (size_t i = 0; i < num_buckets; i++) {
        out[i].count += p[i].count;
        out[i].sum += p[i].sum;
      }
    }
    return out;
  }

  void apply(state_t& st, const map_change<Map>& c) const {
    bucket& b = st[bucket_of(c.key)];
    if (c.before.has_value()) {
      b.count--;
      b.sum -= *c.before;
    }
    if (c.after.has_value()) {
      b.count++;
      b.sum += *c.after;
    }
  }
};

// ---------------------------------------------------- value-index policy --

// A value-ordered mirror: the base map's entries re-keyed as (value, key)
// in an ordered set. Maintained at O(log n) per change; top_k reads the k
// largest values (ties broken by key) in O(k log n) without touching the
// base store — the materialized form of "heaviest postings first".
template <typename Map>
struct value_index_policy {
  using K = typename Map::K;
  using V = typename Map::V;
  using ranked = std::pair<V, K>;  // value first: the index order

  struct index_entry {
    using key_t = ranked;
    using val_t = unit;
    static bool comp(const ranked& a, const ranked& b) {
      if (a.first < b.first) return true;
      if (b.first < a.first) return false;
      return Map::entry_policy::comp(a.second, b.second);
    }
  };
  using state_t = pam_map<index_entry>;

  state_t build(const sharded_snapshot<Map>& snap) const {
    std::vector<typename state_t::entry_t> es;
    es.reserve(snap.size());
    for (size_t s = 0; s < snap.num_shards(); s++)
      snap.shard(s).for_each([&](const K& k, const V& v) {
        es.push_back({{v, k}, unit{}});
      });
    return state_t(std::move(es));
  }

  void apply(state_t& st, const map_change<Map>& c) const {
    if (c.before.has_value())
      st = state_t::remove(std::move(st), {*c.before, c.key});
    if (c.after.has_value())
      st.insert_inplace({*c.after, c.key}, unit{});
  }

  // Bulk refresh: one multi_delete + one multi_insert over the whole delta
  // — O(d log(n/d + 1)) instead of 2d point updates of O(log n) each.
  void apply_batch(state_t& st,
                   const std::vector<map_change<Map>>& changes) const {
    std::vector<ranked> dels;
    std::vector<typename state_t::entry_t> ins;
    for (const auto& c : changes) {
      if (c.before.has_value()) dels.push_back({*c.before, c.key});
      if (c.after.has_value()) ins.push_back({{*c.after, c.key}, unit{}});
    }
    if (!dels.empty()) st = state_t::multi_delete(std::move(st), std::move(dels));
    if (!ins.empty()) st = state_t::multi_insert(std::move(st), std::move(ins));
  }

  // The k largest (value, key) pairs, heaviest first.
  static std::vector<ranked> top_k(const state_t& st, size_t k) {
    std::vector<ranked> out;
    size_t n = st.size();
    if (k > n) k = n;
    out.reserve(k);
    for (size_t i = 0; i < k; i++) out.push_back(st.select(n - 1 - i)->first);
    return out;
  }
};

}  // namespace pam
