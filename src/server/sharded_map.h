// sharded_map: the key space partitioned across S independent snapshot_box
// shards behind a shard directory (sorted splitter keys).
//
// The paper's §4 concurrency pattern serializes all writers of one map on a
// single writer lock. Sharding recovers write parallelism at the serving
// layer: shard s owns keys in [splitter[s-1], splitter[s]), each shard is
// its own snapshot_box, and writers touching disjoint ranges commit
// concurrently. Readers keep the O(1)-snapshot property, now without ever
// taking a lock (snapshot_box's epoch-protected read path):
//
//   * snapshot_shard(s)   one shard, O(1), wait-free;
//   * snapshot_all()      a *consistent cut* across every shard by
//                         versioned re-validation: snapshot every shard
//                         (payload + commit counter), then re-read every
//                         counter. If none moved, each shard held its
//                         snapshotted version for the entire window, and in
//                         particular all of them simultaneously at the
//                         instant between the two passes — a consistent
//                         cut, taken without blocking a single writer. If a
//                         counter moved, retry; after kCutRetries failures
//                         fall back to briefly excluding writers
//                         (writer_lock() per box, in index order), which
//                         bounds cut latency under pathological churn.
//
// Bulk writes (multi_insert / multi_delete) partition the batch by shard in
// O(m) and run the per-shard merges in parallel, so the paper's
// O(m log(n/m + 1)) bulk path applies within every shard. Range and
// augmented queries stitch per-shard range_views in shard order: shard
// ranges tile the key space, so concatenating per-shard in-order walks is a
// global in-order walk.
//
// Thread safety: every public member is safe to call from any thread, with
// one re-entrancy rule: an update functor passed to update_shard / insert /
// erase / multi_* runs while holding that shard's writer lock, and the cut
// fallback acquires *every* shard's writer lock — so cut-based reads of the
// same sharded_map (snapshot_all*, versions, size, multi_find) must not be
// called from inside an update functor. Per-shard reads (find,
// snapshot_shard) are lock-free and remain safe anywhere. The splitter
// directory is immutable after construction (resharding = build a new
// sharded_map), which is what lets shard_of run lock-free.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "pam/snapshot.h"
#include "parallel/parallel.h"
#include "util/thread_annotations.h"

namespace pam {

namespace server_internal {

// Cut/read instrumentation, shared by every sharded_map instance. Global
// rather than per-instance because sharded_map is built through value paths
// (kv_store::recover's RVO chain) that per-instance registered members would
// pin; what the exposition wants here is the process-wide retry/fallback
// picture anyway.
struct cut_metrics_t {
  obs::counter attempts{"pam_cut_attempts_total"};
  obs::counter retries{"pam_cut_retries_total"};
  obs::counter fallbacks{"pam_cut_writer_fallbacks_total"};
  obs::counter finds{"pam_read_finds_total"};
};

inline cut_metrics_t& cut_metrics() {
  // pam-lint: allow(naked-new) — immortal process-wide metric block, same
  // lifetime rule as the registry it registers into.
  static cut_metrics_t* m = new cut_metrics_t();
  return *m;
}

// Index of the shard owning key k under a sorted splitter directory: the
// number of splitters <= k (a splitter key belongs to the shard on its
// right). O(log S), lock-free — the directory is immutable.
template <typename K, typename Comp>
size_t shard_index(const std::vector<K>& splitters, const K& k, const Comp& comp) {
  size_t lo = 0, hi = splitters.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (comp(k, splitters[mid])) hi = mid; else lo = mid + 1;
  }
  return lo;
}
}  // namespace server_internal

// A consistent cut of a sharded_map: one immutable Map per shard plus the
// shared splitter directory. Value type — copies are O(S) refcount bumps —
// with read-only queries that stitch the shards back into one key space.
template <typename Map>
class sharded_snapshot {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using A = typename Map::A;
  using entry_t = typename Map::entry_t;
  using view_type = typename Map::view_type;
  using entry_policy = typename Map::entry_policy;

  // The default snapshot is empty (no shards): every query answers as the
  // empty map rather than touching a null directory.
  sharded_snapshot() = default;
  sharded_snapshot(std::vector<Map> shards,
                   std::shared_ptr<const std::vector<K>> splitters)
      : shards_(std::move(shards)), splitters_(std::move(splitters)) {}

  size_t num_shards() const { return shards_.size(); }
  const Map& shard(size_t s) const { return shards_[s]; }

  // Index of the shard owning key k: the first splitter greater than k.
  size_t shard_of(const K& k) const {
    if (splitters_ == nullptr) return 0;
    return server_internal::shard_index(*splitters_, k, entry_policy::comp);
  }

  size_t size() const {
    size_t total = 0;
    for (const Map& m : shards_) total += m.size();
    return total;
  }
  bool empty() const { return size() == 0; }

  std::optional<V> find(const K& k) const {
    if (shards_.empty()) return std::nullopt;
    return shards_[shard_of(k)].find(k);
  }
  bool contains(const K& k) const {
    return !shards_.empty() && shards_[shard_of(k)].contains(k);
  }

  // Sharded batch lookup: group the keys by owning shard, run the per-shard
  // parallel multi_finds concurrently, scatter results back to input order.
  std::vector<std::optional<V>> multi_find(const std::vector<K>& keys) const {
    const size_t S = shards_.size();
    if (S == 0) return std::vector<std::optional<V>>(keys.size());
    std::vector<std::vector<K>> by_shard(S);
    std::vector<std::vector<size_t>> idx(S);
    for (size_t i = 0; i < keys.size(); i++) {
      size_t s = shard_of(keys[i]);
      by_shard[s].push_back(keys[i]);
      idx[s].push_back(i);
    }
    std::vector<std::optional<V>> out(keys.size());
    parallel_for(
        0, S,
        [&](size_t s) {
          if (by_shard[s].empty()) return;
          auto found = shards_[s].multi_find(by_shard[s]);
          for (size_t j = 0; j < found.size(); j++) out[idx[s][j]] = std::move(found[j]);
        },
        1);
    return out;
  }

  // Lazy per-shard views of [lo, hi], in shard (= key) order. Shards tile
  // the key space, so iterating the views back-to-back is a global in-order
  // walk of the range; each view is allocation-free (pam/iterator.h).
  std::vector<view_type> range_views(const K& lo, const K& hi) const {
    std::vector<view_type> views;
    if (shards_.empty() || entry_policy::comp(hi, lo)) return views;
    size_t last = shard_of(hi);
    for (size_t s = shard_of(lo); s <= last; s++)
      views.push_back(shards_[s].view(lo, hi));
    return views;
  }

  // In-order visit of every entry with lo <= key <= hi: f(key, value).
  template <typename F>
  void for_each_range(const K& lo, const K& hi, const F& f) const {
    for (const view_type& v : range_views(lo, hi)) v.for_each(f);
  }

  // In-order visit of the whole store.
  template <typename F>
  void for_each(const F& f) const {
    for (const Map& m : shards_) m.for_each(f);
  }

  // Number of entries with lo <= key <= hi: one O(log n) count per
  // overlapping shard.
  size_t count_range(const K& lo, const K& hi) const {
    size_t total = 0;
    for (const view_type& v : range_views(lo, hi)) total += v.size();
    return total;
  }

  // Augmented value over lo <= key <= hi: per-shard aug_range stitched with
  // the entry's combine (associativity makes shard order the only
  // requirement). O(S log n), allocation-free.
  A aug_range(const K& lo, const K& hi) const {
    static_assert(Map::has_aug, "aug_range requires an augmented Entry");
    A acc = entry_policy::identity();
    for (const view_type& v : range_views(lo, hi))
      acc = entry_policy::combine(acc, v.aug_val());
    return acc;
  }

  // Every entry in key order, materialized.
  std::vector<entry_t> entries() const {
    std::vector<entry_t> out;
    out.reserve(size());
    for (const Map& m : shards_) {
      auto part = m.entries();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  std::vector<Map> shards_;
  std::shared_ptr<const std::vector<K>> splitters_;
};

template <typename Map>
class sharded_map {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using entry_t = typename Map::entry_t;
  using entry_policy = typename Map::entry_policy;
  using snapshot_type = sharded_snapshot<Map>;

  // Partition the key space with explicit sorted, duplicate-free splitter
  // keys: S-1 splitters make S shards, shard s owning
  // [splitter[s-1], splitter[s]). All shards start empty.
  explicit sharded_map(std::vector<K> splitters)
      : splitters_(std::make_shared<const std::vector<K>>(std::move(splitters))),
        boxes_(make_boxes(splitters_->size() + 1)) {}

  // Partition an initial map into `num_shards` shards of near-equal size:
  // splitters are taken at the size quantiles of the initial key
  // distribution. The directory can only be inferred from existing keys —
  // duplicate quantile keys collapse, so very small or very skewed maps
  // yield fewer shards than requested, and an *empty* initial map yields a
  // single shard (no write parallelism). For a fresh or tiny store, supply
  // explicit splitters instead.
  sharded_map(Map initial, size_t num_shards)
      : splitters_(std::make_shared<const std::vector<K>>(
            quantile_splitters(initial, num_shards))),
        boxes_(make_boxes(splitters_->size() + 1)) {
    distribute(std::move(initial));
  }

  // Explicit splitters plus initial contents, distributed along them.
  sharded_map(Map initial, std::vector<K> splitters)
      : splitters_(std::make_shared<const std::vector<K>>(std::move(splitters))),
        boxes_(make_boxes(splitters_->size() + 1)) {
    distribute(std::move(initial));
  }

  size_t num_shards() const { return boxes_.size(); }

  // The (immutable) shard boundaries, S-1 keys for S shards. The durability
  // layer persists these in every checkpoint manifest so recovery rebuilds
  // the exact same partitioning.
  const std::vector<K>& splitters() const { return *splitters_; }

  // Index of the shard owning key k.
  size_t shard_of(const K& k) const {
    return server_internal::shard_index(*splitters_, k, entry_policy::comp);
  }

  // ------------------------------------------------------------- writes --

  // Atomically apply f : Map -> Map to one shard. Writers of distinct
  // shards run concurrently; writers of one shard serialize on its box.
  template <typename F>
  void update_shard(size_t s, const F& f) {
    boxes_[s]->update(f);
  }

  // Per-op point upsert/erase: one O(log n) committed write to the owning
  // shard. This is the slow path that write_combiner batches around.
  void insert(const K& k, const V& v) {
    boxes_[shard_of(k)]->update([&](Map m) {
      return Map::insert(std::move(m), k, v);
    });
  }
  void erase(const K& k) {
    boxes_[shard_of(k)]->update([&](Map m) {
      return Map::remove(std::move(m), k);
    });
  }

  // Bulk upsert: partition the batch by shard in O(m), then merge each
  // shard's slice on the O(m_s log(n_s/m_s + 1)) bulk path, all shards in
  // parallel. Duplicate keys in `updates`: the last one wins.
  void multi_insert(std::vector<entry_t> updates) {
    auto buckets = partition_entries(std::move(updates));
    parallel_for(
        0, boxes_.size(),
        [&](size_t s) {
          if (buckets[s].empty()) return;
          boxes_[s]->update([&](Map m) {
            return Map::multi_insert(std::move(m), std::move(buckets[s]));
          });
        },
        1);
  }

  void multi_delete(std::vector<K> keys) {
    std::vector<std::vector<K>> buckets(boxes_.size());
    for (K& k : keys) buckets[shard_of(k)].push_back(std::move(k));
    parallel_for(
        0, boxes_.size(),
        [&](size_t s) {
          if (buckets[s].empty()) return;
          boxes_[s]->update([&](Map m) {
            return Map::multi_delete(std::move(m), std::move(buckets[s]));
          });
        },
        1);
  }

  // -------------------------------------------------------------- reads --

  // O(1) wait-free snapshot of one shard.
  Map snapshot_shard(size_t s) const { return boxes_[s]->snapshot(); }

  // A consistent cut together with the per-shard commit counters it
  // corresponds to — the capture primitive of the version store. Any two
  // validated cuts correspond to two instants in time, so their version
  // vectors are componentwise comparable, and an unchanged counter means
  // the shard's root is the identical tree (so retaining it costs nothing
  // beyond a bump).
  struct versioned_snapshot {
    snapshot_type snapshot;
    std::vector<uint64_t> versions;
  };

  // Optimistic versioned re-validation. Pass 1 snapshots every shard's
  // (map, version) pair — each pair is internally atomic (one payload read).
  // Pass 2 re-reads every shard's current version. If shard s's version is
  // unchanged, its snapshot was the published version for the whole interval
  // [its pass-1 read, its pass-2 read]; all those intervals contain the
  // instant between the end of pass 1 and the start of pass 2, so the S
  // snapshots were simultaneously current — a consistent cut that blocked
  // nobody. On validation failure the stale snapshots are dropped (O(S)
  // refcount decs; displaced trees are shared, so no teardown) and the cut
  // retries; after kCutRetries failures it takes every shard's *writer*
  // lock in index order and peeks, bounding latency under extreme churn.
  versioned_snapshot snapshot_all_versioned() const {
    // The pinned lambdas run only on the fallback path, under every shard's
    // writer lock held through std::unique_lock handles the analysis cannot
    // follow (see validated_cut) — hence the opt-out on the lambda alone.
    auto [shards, versions] = validated_cut(
        [](const box_t& b) { return b.snapshot_versioned(); },
        [](const box_t& b) PAM_NO_THREAD_SAFETY_ANALYSIS { return b.peek(); });
    return {snapshot_type(std::move(shards), splitters_), std::move(versions)};
  }

  // A consistent cut across all shards (see snapshot_all_versioned).
  snapshot_type snapshot_all() const {
    return snapshot_all_versioned().snapshot;
  }

  // Per-shard commit counters, validated the same way: re-read until a full
  // pass observes no movement, so the vector corresponds to one instant.
  std::vector<uint64_t> versions() const {
    return validated_cut(
               [](const box_t& b) {
                 uint64_t v = b.version();
                 return std::pair<uint64_t, uint64_t>(v, v);
               },
               [](const box_t& b) PAM_NO_THREAD_SAFETY_ANALYSIS {
                 return b.peek_version();  // fallback path: writer locks held
               })
        .second;
  }

  // Single-key committed read: run the lookup against the owning shard's
  // current version in place — no lock, no snapshot copy, no refcount
  // traffic (snapshot_box::with_current).
  std::optional<V> find(const K& k) const {
    // One striped relaxed fetch_add: the counted read path stays wait-free
    // (the ISSUE 9 contract; the YCSB read-scaling gate enforces the cost).
    server_internal::cut_metrics().finds.inc();
    return boxes_[shard_of(k)]->with_current(
        [&](const Map& m) { return m.find(k); });
  }

  // Batch lookup against one consistent cut.
  std::vector<std::optional<V>> multi_find(const std::vector<K>& keys) const {
    return snapshot_all().multi_find(keys);
  }

  // Total entry count across one consistent cut, from the per-shard size
  // counters snapshot_box maintains at commit time: (version, size) pairs
  // are read per shard and the version vector re-validated — no root
  // copies, no refcount traffic, no tree teardown, no locks.
  size_t size() const {
    auto sizes = validated_cut(
                     [](const box_t& b) {
                       auto vs = b.version_size();
                       return std::pair<size_t, uint64_t>(vs.second, vs.first);
                     },
                     [](const box_t& b) PAM_NO_THREAD_SAFETY_ANALYSIS {
                       return b.peek_size();  // fallback: writer locks held
                     })
                     .first;
    size_t total = 0;
    for (size_t s : sizes) total += s;
    return total;
  }

  // Entry count of one shard, from its commit-time size counter: wait-free,
  // no cut, no validation (the value is exact for whichever version the
  // shard held at the read). Feeds kv_store's per-shard size gauges.
  size_t shard_size(size_t s) const { return boxes_[s]->version_size().second; }

 private:
  using box_t = snapshot_box<Map>;

  // Optimistic cut attempts before falling back to blocking writers. Each
  // failed attempt costs O(S) pointer reads and refcount churn, so a small
  // budget keeps worst-case cut latency bounded without giving up the
  // lock-free common case.
  static constexpr int kCutRetries = 8;

  // The one validated-cut engine behind snapshot_all_versioned / versions /
  // size. `optimistic(box)` reads a (value, version) pair from one
  // published payload; a pass over all shards re-validates every version
  // and retries on movement; after kCutRetries failures `pinned(box)` reads
  // the value under all writer locks (taken in index order — the one global
  // order, so concurrent fallback cuts cannot deadlock), which pins every
  // published payload for the duration of the peeks.
  //
  // NO_THREAD_SAFETY_ANALYSIS: the fallback holds a *dynamic* lock set — a
  // vector of S writer locks through std::unique_lock handles — which the
  // lexical capability model cannot express. The TSan job exercises this
  // path (cut-starvation tests); everything the fallback calls (peek*,
  // writer_lock) is itself annotated, so the opt-out is confined to this
  // one engine.
  template <typename Optimistic, typename Pinned>
  auto validated_cut(const Optimistic& optimistic, const Pinned& pinned) const
      PAM_NO_THREAD_SAFETY_ANALYSIS {
    using T = decltype(optimistic(*boxes_[0]).first);
    server_internal::cut_metrics().attempts.inc();
    std::vector<T> values;
    std::vector<uint64_t> versions;
    for (int attempt = 0; attempt < kCutRetries; attempt++) {
      values.clear();
      versions.clear();
      values.reserve(boxes_.size());
      versions.reserve(boxes_.size());
      for (const auto& b : boxes_) {
        auto vv = optimistic(*b);
        values.push_back(std::move(vv.first));
        versions.push_back(vv.second);
      }
      if (revalidate(versions))
        return std::pair(std::move(values), std::move(versions));
      server_internal::cut_metrics().retries.inc();
    }
    server_internal::cut_metrics().fallbacks.inc();
    std::vector<std::unique_lock<mutex>> locks;
    locks.reserve(boxes_.size());
    for (const auto& b : boxes_) locks.push_back(b->writer_lock());
    values.clear();
    versions.clear();
    for (const auto& b : boxes_) {
      values.push_back(pinned(*b));
      versions.push_back(b->peek_version());
    }
    return std::pair(std::move(values), std::move(versions));
  }

  // Pass 2 of a validated cut: true iff no shard's commit counter moved
  // since `observed` was collected.
  bool revalidate(const std::vector<uint64_t>& observed) const {
    for (size_t s = 0; s < boxes_.size(); s++) {
      if (boxes_[s]->version() != observed[s]) return false;
    }
    return true;
  }

  static std::vector<std::unique_ptr<snapshot_box<Map>>> make_boxes(size_t n) {
    std::vector<std::unique_ptr<snapshot_box<Map>>> boxes(n);
    for (auto& b : boxes) b = std::make_unique<snapshot_box<Map>>();
    return boxes;
  }

  static std::vector<K> quantile_splitters(const Map& m, size_t num_shards) {
    std::vector<K> sp;
    if (num_shards < 2 || m.empty()) return sp;
    size_t n = m.size();
    for (size_t s = 1; s < num_shards; s++) {
      auto e = m.select(s * n / num_shards);
      if (!e.has_value()) break;
      if (sp.empty() || entry_policy::comp(sp.back(), e->first))
        sp.push_back(e->first);
    }
    return sp;
  }

  std::vector<std::vector<entry_t>> partition_entries(std::vector<entry_t> v) {
    std::vector<std::vector<entry_t>> buckets(boxes_.size());
    for (entry_t& e : v) buckets[shard_of(e.first)].push_back(std::move(e));
    return buckets;
  }

  // Split the initial map along the splitters and store each piece. A
  // splitter key itself belongs to the shard on its right.
  void distribute(Map initial) {
    const std::vector<K>& sp = *splitters_;
    Map rest = std::move(initial);
    for (size_t s = 0; s < sp.size(); s++) {
      auto parts = Map::split(std::move(rest), sp[s]);
      boxes_[s]->store(std::move(parts.left));
      rest = std::move(parts.right);
      if (parts.value.has_value())
        rest = Map::insert(std::move(rest), sp[s], *parts.value);
    }
    boxes_[sp.size()]->store(std::move(rest));
  }

  std::shared_ptr<const std::vector<K>> splitters_;
  std::vector<std::unique_ptr<snapshot_box<Map>>> boxes_;
};

}  // namespace pam
