// sharded_map: the key space partitioned across S independent snapshot_box
// shards behind a shard directory (sorted splitter keys).
//
// The paper's §4 concurrency pattern serializes all writers of one map on a
// single writer lock. Sharding recovers write parallelism at the serving
// layer: shard s owns keys in [splitter[s-1], splitter[s]), each shard is
// its own snapshot_box, and writers touching disjoint ranges commit
// concurrently. Readers keep the O(1)-snapshot property, now without ever
// taking a lock (snapshot_box's epoch-protected read path):
//
//   * snapshot_shard(s)   one shard, O(1), wait-free;
//   * snapshot_all()      a *consistent cut* across every shard by
//                         versioned re-validation: snapshot every shard
//                         (payload + commit counter), then re-read every
//                         counter. If none moved, each shard held its
//                         snapshotted version for the entire window, and in
//                         particular all of them simultaneously at the
//                         instant between the two passes — a consistent
//                         cut, taken without blocking a single writer. If a
//                         counter moved, retry; after kCutRetries failures
//                         fall back to briefly excluding writers
//                         (writer_lock() per box, in index order), which
//                         bounds cut latency under pathological churn.
//
// Bulk writes (multi_insert / multi_delete) partition the batch by shard in
// O(m) and run the per-shard merges in parallel, so the paper's
// O(m log(n/m + 1)) bulk path applies within every shard. Range and
// augmented queries stitch per-shard range_views in shard order: shard
// ranges tile the key space, so concatenating per-shard in-order walks is a
// global in-order walk.
//
// Skew-adaptive resharding (ISSUE 10): the splitter directory is no longer
// frozen at construction. The whole directory — splitters plus shard
// handles — lives in one immutable heap object published through an atomic
// pointer and reclaimed through the epoch (exactly snapshot_box's payload
// discipline, one level up). rebalance() repartitions the key space along
// the observed per-shard write load — hot shards shrink in key range,
// cold neighbours absorb the slack — and installs a successor directory:
//
//   1. take every shard's writer lock, in index order (the same global
//      order as the cut fallback, so the two can never deadlock);
//   2. mark every shard `retired` — a writer that wins a shard lock after
//      this point observes the flag (snapshot_box::update_if) and re-routes
//      through the successor directory instead of committing into a box no
//      future reader will consult;
//   3. peek the frozen shards, concatenate them (O(S log n) joins on shared
//      subtrees — no entry is copied), cut equal-load splitters, and
//      distribute into fresh shards;
//   4. publish the successor directory, drop the locks, epoch-retire the
//      predecessor (a concurrent reader may still be routing through it).
//
// Content is never lost or duplicated: writers either committed before the
// rebalance took their shard's lock (their write is inside the peeked map)
// or abort on the retired flag and retry against the successor. Validated
// cuts additionally re-check the directory generation after their version
// pass: a cut that straddles an install restarts against the successor, so
// snapshots always carry the directory they were actually taken under.
//
// Thread safety: every public member is safe to call from any thread, with
// one re-entrancy rule: an update functor passed to update_shard / insert /
// erase / multi_* runs while holding that shard's writer lock, and the cut
// fallback (and rebalance()) acquires *every* shard's writer lock — so
// cut-based reads of the same sharded_map (snapshot_all*, versions, size,
// multi_find) must not be called from inside an update functor. Per-shard
// reads (find, snapshot_shard) are lock-free and remain safe anywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pam/snapshot.h"
#include "parallel/parallel.h"
#include "util/thread_annotations.h"

namespace pam {

namespace server_internal {

// Cut/read instrumentation, shared by every sharded_map instance. Global
// rather than per-instance because sharded_map is built through value paths
// (kv_store::recover's RVO chain) that per-instance registered members would
// pin; what the exposition wants here is the process-wide retry/fallback
// picture anyway.
struct cut_metrics_t {
  obs::counter attempts{"pam_cut_attempts_total"};
  obs::counter retries{"pam_cut_retries_total"};
  obs::counter fallbacks{"pam_cut_writer_fallbacks_total"};
  obs::counter finds{"pam_read_finds_total"};
};

inline cut_metrics_t& cut_metrics() {
  // pam-lint: allow(naked-new) — immortal process-wide metric block, same
  // lifetime rule as the registry it registers into.
  static cut_metrics_t* m = new cut_metrics_t();
  return *m;
}

// Rebalance instrumentation, global for the same reason.
struct rebalance_metrics_t {
  obs::counter attempts{"pam_rebalance_attempts_total"};
  obs::counter installs{"pam_rebalance_installs_total"};
  obs::counter writer_reroutes{"pam_rebalance_writer_reroutes_total"};
  obs::counter cut_restarts{"pam_rebalance_cut_restarts_total"};
};

inline rebalance_metrics_t& rebalance_metrics() {
  // pam-lint: allow(naked-new) — immortal process-wide metric block.
  static rebalance_metrics_t* m = new rebalance_metrics_t();
  return *m;
}

// Index of the shard owning key k under a sorted splitter directory: the
// number of splitters <= k (a splitter key belongs to the shard on its
// right). O(log S), lock-free — a directory is immutable once published.
template <typename K, typename Comp>
size_t shard_index(const std::vector<K>& splitters, const K& k, const Comp& comp) {
  size_t lo = 0, hi = splitters.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (comp(k, splitters[mid])) hi = mid; else lo = mid + 1;
  }
  return lo;
}
}  // namespace server_internal

// A consistent cut of a sharded_map: one immutable Map per shard plus the
// shared splitter directory. Value type — copies are O(S) refcount bumps —
// with read-only queries that stitch the shards back into one key space.
template <typename Map>
class sharded_snapshot {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using A = typename Map::A;
  using entry_t = typename Map::entry_t;
  using view_type = typename Map::view_type;
  using entry_policy = typename Map::entry_policy;

  // The default snapshot is empty (no shards): every query answers as the
  // empty map rather than touching a null directory.
  sharded_snapshot() = default;
  sharded_snapshot(std::vector<Map> shards,
                   std::shared_ptr<const std::vector<K>> splitters)
      : shards_(std::move(shards)), splitters_(std::move(splitters)) {}

  size_t num_shards() const { return shards_.size(); }
  const Map& shard(size_t s) const { return shards_[s]; }

  // The splitter directory this cut was taken under, shared with the
  // directory object that produced it. Two cuts of one sharded_map compare
  // equal here iff no rebalance installed a new directory between them —
  // the identity check the incremental checkpoint / diff paths use to
  // decide whether per-shard pairing is meaningful.
  std::shared_ptr<const std::vector<K>> splitters_handle() const {
    return splitters_;
  }

  // The cut's splitter keys (S-1 keys for S shards; empty for a default
  // cut). Persisted in checkpoint manifests so recovery rebuilds the exact
  // partitioning the cut was taken under.
  std::vector<K> splitter_keys() const {
    return splitters_ == nullptr ? std::vector<K>{} : *splitters_;
  }

  // Index of the shard owning key k: the first splitter greater than k.
  size_t shard_of(const K& k) const {
    if (splitters_ == nullptr) return 0;
    return server_internal::shard_index(*splitters_, k, entry_policy::comp);
  }

  size_t size() const {
    size_t total = 0;
    for (const Map& m : shards_) total += m.size();
    return total;
  }
  bool empty() const { return size() == 0; }

  std::optional<V> find(const K& k) const {
    if (shards_.empty()) return std::nullopt;
    return shards_[shard_of(k)].find(k);
  }
  bool contains(const K& k) const {
    return !shards_.empty() && shards_[shard_of(k)].contains(k);
  }

  // Sharded batch lookup: group the keys by owning shard, run the per-shard
  // parallel multi_finds concurrently, scatter results back to input order.
  std::vector<std::optional<V>> multi_find(const std::vector<K>& keys) const {
    const size_t S = shards_.size();
    if (S == 0) return std::vector<std::optional<V>>(keys.size());
    std::vector<std::vector<K>> by_shard(S);
    std::vector<std::vector<size_t>> idx(S);
    for (size_t i = 0; i < keys.size(); i++) {
      size_t s = shard_of(keys[i]);
      by_shard[s].push_back(keys[i]);
      idx[s].push_back(i);
    }
    std::vector<std::optional<V>> out(keys.size());
    parallel_for(
        0, S,
        [&](size_t s) {
          if (by_shard[s].empty()) return;
          auto found = shards_[s].multi_find(by_shard[s]);
          for (size_t j = 0; j < found.size(); j++) out[idx[s][j]] = std::move(found[j]);
        },
        1);
    return out;
  }

  // Lazy per-shard views of [lo, hi], in shard (= key) order. Shards tile
  // the key space, so iterating the views back-to-back is a global in-order
  // walk of the range; each view is allocation-free (pam/iterator.h).
  std::vector<view_type> range_views(const K& lo, const K& hi) const {
    std::vector<view_type> views;
    if (shards_.empty() || entry_policy::comp(hi, lo)) return views;
    size_t last = shard_of(hi);
    for (size_t s = shard_of(lo); s <= last; s++)
      views.push_back(shards_[s].view(lo, hi));
    return views;
  }

  // In-order visit of every entry with lo <= key <= hi: f(key, value).
  template <typename F>
  void for_each_range(const K& lo, const K& hi, const F& f) const {
    for (const view_type& v : range_views(lo, hi)) v.for_each(f);
  }

  // In-order visit of the whole store.
  template <typename F>
  void for_each(const F& f) const {
    for (const Map& m : shards_) m.for_each(f);
  }

  // Number of entries with lo <= key <= hi: one O(log n) count per
  // overlapping shard.
  size_t count_range(const K& lo, const K& hi) const {
    size_t total = 0;
    for (const view_type& v : range_views(lo, hi)) total += v.size();
    return total;
  }

  // Augmented value over lo <= key <= hi: per-shard aug_range stitched with
  // the entry's combine (associativity makes shard order the only
  // requirement). O(S log n), allocation-free.
  A aug_range(const K& lo, const K& hi) const {
    static_assert(Map::has_aug, "aug_range requires an augmented Entry");
    A acc = entry_policy::identity();
    for (const view_type& v : range_views(lo, hi))
      acc = entry_policy::combine(acc, v.aug_val());
    return acc;
  }

  // All shards concatenated back into one map: O(S log n) joins on shared
  // subtrees — no entry is copied, the result shares every node with the
  // cut. The directory-agnostic view the diff / checkpoint paths fall back
  // to when two cuts were taken under different splitter directories.
  Map merged() const {
    Map whole;
    for (const Map& m : shards_) whole = Map::concat(std::move(whole), m);
    return whole;
  }

  // Every entry in key order, materialized.
  std::vector<entry_t> entries() const {
    std::vector<entry_t> out;
    out.reserve(size());
    for (const Map& m : shards_) {
      auto part = m.entries();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  std::vector<Map> shards_;
  std::shared_ptr<const std::vector<K>> splitters_;
};

template <typename Map>
class sharded_map {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using entry_t = typename Map::entry_t;
  using entry_policy = typename Map::entry_policy;
  using snapshot_type = sharded_snapshot<Map>;

  // Partition the key space with explicit sorted, duplicate-free splitter
  // keys: S-1 splitters make S shards, shard s owning
  // [splitter[s-1], splitter[s]). All shards start empty.
  explicit sharded_map(std::vector<K> splitters)
      : target_shards_(splitters.size() + 1) {
    install_initial(std::move(splitters), Map{});
  }

  // Partition an initial map into `num_shards` shards of near-equal size:
  // splitters are taken at the size quantiles of the initial key
  // distribution. The directory can only be inferred from existing keys —
  // duplicate quantile keys collapse, so very small or very skewed maps
  // yield fewer shards than requested, and an *empty* initial map yields a
  // single shard (no write parallelism until a rebalance observes keys).
  // For a fresh or tiny store, supply explicit splitters instead.
  sharded_map(Map initial, size_t num_shards)
      : target_shards_(num_shards == 0 ? 1 : num_shards) {
    // Splitters must be cut before install_initial's by-value Map parameter
    // is move-constructed (argument evaluation order is indeterminate).
    std::vector<K> sp = quantile_splitters(initial, target_shards_);
    install_initial(std::move(sp), std::move(initial));
  }

  // Explicit splitters plus initial contents, distributed along them.
  sharded_map(Map initial, std::vector<K> splitters)
      : target_shards_(splitters.size() + 1) {
    install_initial(std::move(splitters), std::move(initial));
  }

  // No readers or writers may be in flight at destruction (standard object
  // lifetime); directories already retired are self-contained and drain
  // later. pam-lint: allow(naked-delete) — the final directory, after all
  // sharing.
  ~sharded_map() { delete dir_.load(std::memory_order_relaxed); }

  sharded_map(const sharded_map&) = delete;
  sharded_map& operator=(const sharded_map&) = delete;

  size_t num_shards() const {
    epoch::guard g;
    return dir_ref()->shards.size();
  }

  // The current shard boundaries, S-1 keys for S shards, copied out of the
  // published directory (which a concurrent rebalance may replace — callers
  // needing identity across calls use splitters_handle()).
  std::vector<K> splitters() const {
    epoch::guard g;
    return *dir_ref()->splitters;
  }

  // The current directory's splitter vector, shared: survives the directory
  // itself being retired. write_combiner pins one of these at construction
  // as its stable queue-routing table.
  std::shared_ptr<const std::vector<K>> splitters_handle() const {
    epoch::guard g;
    return dir_ref()->splitters;
  }

  // Monotone directory generation: bumped by every rebalance install.
  uint64_t directory_gen() const {
    epoch::guard g;
    return dir_ref()->gen;
  }

  // Index of the shard owning key k under the current directory. The index
  // is only meaningful against the same directory generation — a concurrent
  // rebalance may re-home k. The write paths below re-route internally;
  // index-addressed callers (tests, gauges) get best-effort routing.
  size_t shard_of(const K& k) const {
    epoch::guard g;
    const directory* d = dir_ref();
    return server_internal::shard_index(*d->splitters, k, entry_policy::comp);
  }

  // ------------------------------------------------------------- writes --

  // Atomically apply f : Map -> Map to shard s of the current directory.
  // Writers of distinct shards run concurrently; writers of one shard
  // serialize on its box. If a rebalance retires the directory mid-flight
  // the update retries against the successor's shard s (indices are
  // directory-relative; key-routed callers use insert/erase/multi_*).
  template <typename F>
  void update_shard(size_t s, const F& f) {
    for (;;) {
      std::shared_ptr<shard_t> sh;
      {
        epoch::guard g;
        const directory* d = dir_ref();
        sh = d->shards[s < d->shards.size() ? s : d->shards.size() - 1];
      }
      sh->write_ops.fetch_add(1, std::memory_order_relaxed);
      if (sh->box.update_if([&] { return !sh->retired(); }, f)) return;
      server_internal::rebalance_metrics().writer_reroutes.inc();
    }
  }

  // Per-op point upsert/erase: one O(log n) committed write to the owning
  // shard. This is the slow path that write_combiner batches around.
  void insert(const K& k, const V& v) {
    route_write(k, [&](Map m) { return Map::insert(std::move(m), k, v); });
  }
  void erase(const K& k) {
    route_write(k, [&](Map m) { return Map::remove(std::move(m), k); });
  }

  // Bulk upsert: partition the batch by shard in O(m), then merge each
  // shard's slice on the O(m_s log(n_s/m_s + 1)) bulk path, all shards in
  // parallel. Duplicate keys in `updates`: the last one wins. Buckets that
  // lose a race to a rebalance are re-partitioned against the successor
  // directory (each key is applied exactly once — a rejected bucket was
  // never applied).
  void multi_insert(std::vector<entry_t> updates) {
    bulk_write(
        std::move(updates),
        [](const entry_t& e) -> const K& { return e.first; },
        [](Map m, std::vector<entry_t> b) {
          return Map::multi_insert(std::move(m), std::move(b));
        });
  }

  void multi_delete(std::vector<K> keys) {
    bulk_write(
        std::move(keys), [](const K& k) -> const K& { return k; },
        [](Map m, std::vector<K> b) {
          return Map::multi_delete(std::move(m), std::move(b));
        });
  }

  // ---------------------------------------------------------- rebalance --

  // Per-shard load picture of the current directory: write ops routed to
  // each shard since its directory was installed, and the commit-time entry
  // counts. Wait-free reads; feeds the rebalance policy, kv_store's gauges,
  // and the bench imbalance reports.
  struct load_stats {
    std::vector<uint64_t> write_ops;
    std::vector<size_t> entries;
    uint64_t total_ops = 0;
    uint64_t directory_gen = 0;
  };

  load_stats shard_loads() const {
    dir_view d = view_dir();
    load_stats out;
    out.directory_gen = d.gen;
    out.write_ops.reserve(d.shards.size());
    out.entries.reserve(d.shards.size());
    for (const auto& sh : d.shards) {
      uint64_t o = sh->write_ops.load(std::memory_order_relaxed);
      out.write_ops.push_back(o);
      out.total_ops += o;
      out.entries.push_back(sh->box.version_size().second);
    }
    return out;
  }

  // The policy entry point the background rebalancer drives: install a new
  // equal-load directory iff the observed write skew warrants it. Returns
  // whether a new directory was installed.
  //
  //   * at least `min_ops` write ops must have been routed since the last
  //     policy window (the window's counters are consumed either way);
  //   * trigger when the hottest shard carries more than `hot_ratio` times
  //     the mean per-shard load — or when the directory is under-provisioned
  //     (fewer shards than the construction target, e.g. a store that
  //     started empty) and enough keys now exist to split.
  bool maybe_rebalance(double hot_ratio, uint64_t min_ops) {
    mutex_guard serialize(rebalance_mu_);
    dir_view d = view_dir();
    const size_t S = d.shards.size();
    uint64_t total = 0, hottest = 0;
    size_t entries = 0;
    for (const auto& sh : d.shards) {
      uint64_t o = sh->write_ops.load(std::memory_order_relaxed);
      total += o;
      if (o > hottest) hottest = o;
      entries += sh->box.version_size().second;
    }
    if (total < min_ops) return false;
    if (hot_ratio < 1.0) hot_ratio = 1.0;
    bool under_provisioned =
        S < target_shards_ && entries >= target_shards_ * 8;
    bool skewed =
        S > 1 && static_cast<double>(hottest) >
                     hot_ratio * (static_cast<double>(total) /
                                  static_cast<double>(S));
    bool installed = false;
    if (under_provisioned || skewed) installed = install_balanced_locked();
    if (!installed) {
      // Consume the window so the next policy check starts a fresh
      // measurement instead of re-judging process-lifetime totals. An
      // install consumed it implicitly (fresh shards start at zero); the
      // counters must stay live until then — install_balanced_locked reads
      // them as the load weights for the new splitters.
      for (const auto& sh : d.shards) {
        sh->write_ops.store(0, std::memory_order_relaxed);
      }
    }
    return installed;
  }

  // Unconditional repartition along the observed load (entry counts when no
  // ops were recorded). Exposed for tests and manual operation; returns
  // whether a new directory was installed (false = the balanced splitters
  // equal the current ones).
  bool rebalance_now() {
    mutex_guard serialize(rebalance_mu_);
    return install_balanced_locked();
  }

  // -------------------------------------------------------------- reads --

  // O(1) wait-free snapshot of one shard of the current directory.
  Map snapshot_shard(size_t s) const {
    epoch::guard g;
    const directory* d = dir_ref();
    if (s >= d->shards.size()) return Map{};
    return d->shards[s]->box.snapshot();
  }

  // A consistent cut together with the per-shard commit counters it
  // corresponds to — the capture primitive of the version store. Any two
  // validated cuts of one directory generation correspond to two instants
  // in time, so their version vectors are componentwise comparable; across
  // generations the vectors are incomparable (fresh shards restart their
  // counters), which is what `dir_gen` disambiguates.
  struct versioned_snapshot {
    snapshot_type snapshot;
    std::vector<uint64_t> versions;
    uint64_t dir_gen = 0;
  };

  // Optimistic versioned re-validation. Pass 1 snapshots every shard's
  // (map, version) pair — each pair is internally atomic (one payload read).
  // Pass 2 re-reads every shard's current version. If shard s's version is
  // unchanged, its snapshot was the published version for the whole interval
  // [its pass-1 read, its pass-2 read]; all those intervals contain the
  // instant between the end of pass 1 and the start of pass 2, so the S
  // snapshots were simultaneously current — a consistent cut that blocked
  // nobody. On validation failure the stale snapshots are dropped (O(S)
  // refcount decs; displaced trees are shared, so no teardown) and the cut
  // retries; after kCutRetries failures it takes every shard's *writer*
  // lock in index order and peeks, bounding latency under extreme churn.
  // Pass 3 re-checks the directory generation: a cut that straddled a
  // rebalance install restarts against the successor directory.
  versioned_snapshot snapshot_all_versioned() const {
    // The pinned lambdas run only on the fallback path, under every shard's
    // writer lock held through std::unique_lock handles the analysis cannot
    // follow (see validated_cut) — hence the opt-out on the lambda alone.
    auto [d, shards, versions] = stable_cut(
        [](const box_t& b) { return b.snapshot_versioned(); },
        [](const box_t& b) PAM_NO_THREAD_SAFETY_ANALYSIS { return b.peek(); });
    return {snapshot_type(std::move(shards), std::move(d.splitters)),
            std::move(versions), d.gen};
  }

  // A consistent cut across all shards (see snapshot_all_versioned).
  snapshot_type snapshot_all() const {
    return snapshot_all_versioned().snapshot;
  }

  // Per-shard commit counters, validated the same way: re-read until a full
  // pass observes no movement, so the vector corresponds to one instant.
  std::vector<uint64_t> versions() const {
    auto [d, vals, vers] = stable_cut(
        [](const box_t& b) {
          uint64_t v = b.version();
          return std::pair<uint64_t, uint64_t>(v, v);
        },
        [](const box_t& b) PAM_NO_THREAD_SAFETY_ANALYSIS {
          return b.peek_version();  // fallback path: writer locks held
        });
    (void)d;
    (void)vals;
    return vers;
  }

  // Single-key committed read: run the lookup against the owning shard's
  // current version in place — no lock, no snapshot copy, no refcount
  // traffic (snapshot_box::with_current). The epoch guard spans the
  // directory load and the lookup, so a concurrent rebalance cannot
  // reclaim either from under the read.
  std::optional<V> find(const K& k) const {
    // One striped relaxed fetch_add: the counted read path stays wait-free
    // (the ISSUE 9 contract; the YCSB read-scaling gate enforces the cost).
    server_internal::cut_metrics().finds.inc();
    epoch::guard g;
    const directory* d = dir_ref();
    size_t s = server_internal::shard_index(*d->splitters, k, entry_policy::comp);
    return d->shards[s]->box.with_current(
        [&](const Map& m) { return m.find(k); });
  }

  // Batch lookup against one consistent cut.
  std::vector<std::optional<V>> multi_find(const std::vector<K>& keys) const {
    return snapshot_all().multi_find(keys);
  }

  // Total entry count across one consistent cut, from the per-shard size
  // counters snapshot_box maintains at commit time: (version, size) pairs
  // are read per shard and the version vector re-validated — no root
  // copies, no refcount traffic, no tree teardown, no locks.
  size_t size() const {
    auto [d, sizes, vers] = stable_cut(
        [](const box_t& b) {
          auto vs = b.version_size();
          return std::pair<size_t, uint64_t>(vs.second, vs.first);
        },
        [](const box_t& b) PAM_NO_THREAD_SAFETY_ANALYSIS {
          return b.peek_size();  // fallback: writer locks held
        });
    (void)d;
    (void)vers;
    size_t total = 0;
    for (size_t s : sizes) total += s;
    return total;
  }

  // Entry count of one shard, from its commit-time size counter: wait-free,
  // no cut, no validation (the value is exact for whichever version the
  // shard held at the read). Feeds kv_store's per-shard size gauges. Zero
  // for an index beyond the current directory (it may have shrunk).
  size_t shard_size(size_t s) const {
    epoch::guard g;
    const directory* d = dir_ref();
    if (s >= d->shards.size()) return 0;
    return d->shards[s]->box.version_size().second;
  }

 private:
  using box_t = snapshot_box<Map>;

  // One shard of one directory: the box plus the rebalance-protocol state.
  // Shards are owned by their directory via shared_ptr so a writer can pin
  // one past the epoch guard it resolved the directory under (the box's
  // writer mutex may have to be waited on, and reclamation must not be
  // pinned process-wide for that wait).
  struct shard_t {
    // Seeded through the box constructor, not store(): a shard's contents
    // at directory install are its version-0 state — commit counters count
    // writes *under this directory*, starting at zero.
    explicit shard_t(Map initial) : box(std::move(initial)) {}

    box_t box;
    // Set under the box's writer lock by a rebalance that drained this
    // shard into a successor directory; checked under the same lock by
    // update_if's condition, so the flag and the peeked content can never
    // disagree.
    std::atomic<bool> retired_{false};
    // Write ops routed here since this directory was installed — the
    // rebalance policy's skew signal (consumed per policy window).
    std::atomic<uint64_t> write_ops{0};

    bool retired() const { return retired_.load(std::memory_order_acquire); }
  };

  // One published partitioning of the key space. Immutable after publish;
  // replaced wholesale by rebalance and reclaimed through the epoch, so a
  // reader mid-route can never observe a half-installed directory.
  struct directory {
    std::shared_ptr<const std::vector<K>> splitters;
    std::vector<std::shared_ptr<shard_t>> shards;
    uint64_t gen = 0;
  };

  // A pinned copy of the published directory, safe to use after the epoch
  // guard it was taken under has dropped (shared_ptrs keep the splitters
  // and shards alive even once the directory object itself is reclaimed).
  struct dir_view {
    std::shared_ptr<const std::vector<K>> splitters;
    std::vector<std::shared_ptr<shard_t>> shards;
    uint64_t gen = 0;
  };

  // Optimistic cut attempts before falling back to blocking writers. Each
  // failed attempt costs O(S) pointer reads and refcount churn, so a small
  // budget keeps worst-case cut latency bounded without giving up the
  // lock-free common case.
  static constexpr int kCutRetries = 8;
  // Directory-generation restarts before a cut pins the directory by
  // holding rebalance_mu_ (installs are rare; two mid-cut installs in a row
  // already means the policy thread is misconfigured).
  static constexpr int kDirRetries = 4;

  // The two checked dereference paths to the published directory, mirroring
  // snapshot_box's payload discipline: readers hold the epoch (the guard
  // pins reclamation across the dereference), the rebalancer holds
  // rebalance_mu_ (only rebalance ever replaces or retires a directory, so
  // holding its lock pins the pointer).
  const directory* dir_ref() const PAM_REQUIRES_SHARED(epoch_domain) {
    return dir_.load(std::memory_order_acquire);
  }
  directory* dir_locked() const PAM_REQUIRES(rebalance_mu_) {
    return dir_.load(std::memory_order_acquire);
  }

  dir_view view_dir() const {
    epoch::guard g;
    const directory* d = dir_ref();
    return {d->splitters, d->shards, d->gen};
  }

  // Key-routed conditional write: resolve the owning shard under the epoch,
  // pin it, commit under its writer lock unless a rebalance retired it —
  // then re-resolve against the successor directory.
  template <typename F>
  void route_write(const K& k, const F& f) {
    for (;;) {
      std::shared_ptr<shard_t> sh;
      {
        epoch::guard g;
        const directory* d = dir_ref();
        sh = d->shards[server_internal::shard_index(*d->splitters, k,
                                                    entry_policy::comp)];
      }
      sh->write_ops.fetch_add(1, std::memory_order_relaxed);
      if (sh->box.update_if([&] { return !sh->retired(); }, f)) return;
      server_internal::rebalance_metrics().writer_reroutes.inc();
    }
  }

  // Bulk engine behind multi_insert / multi_delete: partition against the
  // current directory, apply per-shard buckets in parallel, re-partition
  // any bucket whose shard a concurrent rebalance retired. A rejected
  // bucket was never applied (update_if's condition runs before its
  // functor), so each item commits exactly once.
  template <typename Item, typename KeyOf, typename Apply>
  void bulk_write(std::vector<Item> items, const KeyOf& key_of,
                  const Apply& apply) {
    while (!items.empty()) {
      dir_view d = view_dir();
      std::vector<std::vector<Item>> buckets(d.shards.size());
      for (Item& it : items) {
        size_t s = server_internal::shard_index(*d.splitters, key_of(it),
                                                entry_policy::comp);
        buckets[s].push_back(std::move(it));
      }
      std::vector<uint8_t> rejected(d.shards.size(), 0);
      parallel_for(
          0, d.shards.size(),
          [&](size_t s) {
            if (buckets[s].empty()) return;
            shard_t& sh = *d.shards[s];
            sh.write_ops.fetch_add(buckets[s].size(),
                                   std::memory_order_relaxed);
            bool applied = sh.box.update_if(
                [&] { return !sh.retired(); },
                [&](Map m) { return apply(std::move(m), std::move(buckets[s])); });
            if (!applied) rejected[s] = 1;
          },
          1);
      items.clear();
      for (size_t s = 0; s < buckets.size(); s++) {
        if (rejected[s] == 0) continue;
        server_internal::rebalance_metrics().writer_reroutes.inc();
        for (Item& it : buckets[s]) items.push_back(std::move(it));
      }
    }
  }

  // The validated-cut engine over one pinned directory's shards (see
  // snapshot_all_versioned for the protocol).
  //
  // NO_THREAD_SAFETY_ANALYSIS: the fallback holds a *dynamic* lock set — a
  // vector of S writer locks through std::unique_lock handles — which the
  // lexical capability model cannot express. The TSan job exercises this
  // path (cut-starvation tests); everything the fallback calls (peek*,
  // writer_lock) is itself annotated, so the opt-out is confined to this
  // one engine.
  template <typename Optimistic, typename Pinned>
  auto validated_cut(const std::vector<std::shared_ptr<shard_t>>& shards,
                     const Optimistic& optimistic, const Pinned& pinned) const
      PAM_NO_THREAD_SAFETY_ANALYSIS {
    using T = decltype(optimistic(shards[0]->box).first);
    server_internal::cut_metrics().attempts.inc();
    std::vector<T> values;
    std::vector<uint64_t> versions;
    for (int attempt = 0; attempt < kCutRetries; attempt++) {
      values.clear();
      versions.clear();
      values.reserve(shards.size());
      versions.reserve(shards.size());
      for (const auto& sh : shards) {
        auto vv = optimistic(sh->box);
        values.push_back(std::move(vv.first));
        versions.push_back(vv.second);
      }
      if (revalidate(shards, versions))
        return std::pair(std::move(values), std::move(versions));
      server_internal::cut_metrics().retries.inc();
    }
    server_internal::cut_metrics().fallbacks.inc();
    std::vector<std::unique_lock<mutex>> locks;
    locks.reserve(shards.size());
    for (const auto& sh : shards) locks.push_back(sh->box.writer_lock());
    values.clear();
    versions.clear();
    for (const auto& sh : shards) {
      values.push_back(pinned(sh->box));
      versions.push_back(sh->box.peek_version());
    }
    return std::pair(std::move(values), std::move(versions));
  }

  // validated_cut plus directory stability: re-run a cut that straddled a
  // rebalance install against the successor directory; after kDirRetries
  // such restarts, pin the directory by excluding installs outright
  // (rebalance_mu_ before box locks — the same order install_balanced
  // uses, so the fallbacks compose without deadlock).
  template <typename Optimistic, typename Pinned>
  auto stable_cut(const Optimistic& optimistic, const Pinned& pinned) const {
    for (int attempt = 0; attempt < kDirRetries; attempt++) {
      dir_view d = view_dir();
      auto cut = validated_cut(d.shards, optimistic, pinned);
      if (directory_gen() == d.gen) {
        return std::tuple(std::move(d), std::move(cut.first),
                          std::move(cut.second));
      }
      server_internal::rebalance_metrics().cut_restarts.inc();
    }
    mutex_guard pin_directory(rebalance_mu_);
    dir_view d = view_dir();
    auto cut = validated_cut(d.shards, optimistic, pinned);
    return std::tuple(std::move(d), std::move(cut.first),
                      std::move(cut.second));
  }

  // Pass 2 of a validated cut: true iff no shard's commit counter moved
  // since `observed` was collected.
  bool revalidate(const std::vector<std::shared_ptr<shard_t>>& shards,
                  const std::vector<uint64_t>& observed) const {
    for (size_t s = 0; s < shards.size(); s++) {
      if (shards[s]->box.version() != observed[s]) return false;
    }
    return true;
  }

  // Split `whole` along sorted splitters into S = |sp| + 1 fresh shards,
  // each seeded at version 0 with its slice. A splitter key itself belongs
  // to the shard on its right. O(S log n) splits on shared subtrees.
  static std::vector<std::shared_ptr<shard_t>> shards_from(
      const std::vector<K>& sp, Map whole) {
    std::vector<std::shared_ptr<shard_t>> shards;
    shards.reserve(sp.size() + 1);
    Map rest = std::move(whole);
    for (size_t s = 0; s < sp.size(); s++) {
      auto parts = Map::split(std::move(rest), sp[s]);
      shards.push_back(std::make_shared<shard_t>(std::move(parts.left)));
      rest = std::move(parts.right);
      if (parts.value.has_value())
        rest = Map::insert(std::move(rest), sp[s], *parts.value);
    }
    shards.push_back(std::make_shared<shard_t>(std::move(rest)));
    return shards;
  }

  static std::vector<K> quantile_splitters(const Map& m, size_t num_shards) {
    std::vector<K> sp;
    if (num_shards < 2 || m.empty()) return sp;
    size_t n = m.size();
    for (size_t s = 1; s < num_shards; s++) {
      auto e = m.select(s * n / num_shards);
      if (!e.has_value()) break;
      if (sp.empty() || entry_policy::comp(sp.back(), e->first))
        sp.push_back(e->first);
    }
    return sp;
  }

  // Build and publish the first directory (construction only: no readers,
  // no writers, no predecessor to retire).
  void install_initial(std::vector<K> splitters, Map initial) {
    // pam-lint: allow(naked-new) — the initial directory, before any
    // sharing; reclaimed through the epoch once replaced.
    directory* d = new directory{
        std::make_shared<const std::vector<K>>(std::move(splitters)), {}, 1};
    d->shards = shards_from(*d->splitters, std::move(initial));
    dir_.store(d, std::memory_order_release);
  }

  // Equal-load splitters over the frozen shards: each shard's observed
  // write ops (falling back to its entry count on a quiet window) spread
  // uniformly over its entries, then the cumulative load is cut at the
  // target quantiles and mapped back to entry ranks — a hot shard
  // contributes many cuts (its range shrinks), a cold run of shards may
  // contribute none (their ranges merge).
  static std::vector<K> balanced_splitters(const Map& whole,
                                           const std::vector<size_t>& counts,
                                           std::vector<double> loads,
                                           size_t target) {
    std::vector<K> sp;
    size_t n = whole.size();
    if (target < 2 || n == 0) return sp;
    double total = 0.0;
    for (size_t s = 0; s < loads.size(); s++) {
      if (counts[s] == 0) loads[s] = 0.0;  // nothing to cut inside
      total += loads[s];
    }
    if (total <= 0.0) return quantile_splitters_of(whole, target);
    std::vector<size_t> rank_before(loads.size(), 0);
    for (size_t s = 1; s < loads.size(); s++)
      rank_before[s] = rank_before[s - 1] + counts[s - 1];
    size_t s = 0;
    double cum = 0.0;
    for (size_t j = 1; j < target; j++) {
      double t = total * static_cast<double>(j) / static_cast<double>(target);
      while (s + 1 < loads.size() && cum + loads[s] <= t) cum += loads[s++];
      double frac = loads[s] > 0.0 ? (t - cum) / loads[s] : 0.0;
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      size_t rank = rank_before[s] +
                    static_cast<size_t>(frac * static_cast<double>(counts[s]));
      if (rank >= n) rank = n - 1;
      auto e = whole.select(rank);
      if (!e.has_value()) break;
      if (sp.empty() || entry_policy::comp(sp.back(), e->first))
        sp.push_back(e->first);
    }
    return sp;
  }

  static std::vector<K> quantile_splitters_of(const Map& m, size_t target) {
    return quantile_splitters(m, target);
  }

  // The install engine behind maybe_rebalance / rebalance_now. Excludes
  // every writer of the current directory (box locks in index order — the
  // same global order as the cut fallback), retires the shards, cuts
  // equal-load splitters over the frozen content, distributes into a fresh
  // directory, publishes it, and epoch-retires the predecessor.
  //
  // NO_THREAD_SAFETY_ANALYSIS: holds the dynamic writer-lock set (vector of
  // unique_locks) the lexical model cannot express — same opt-out and TSan
  // coverage as validated_cut's fallback.
  bool install_balanced_locked() PAM_REQUIRES(rebalance_mu_)
      PAM_NO_THREAD_SAFETY_ANALYSIS {
    server_internal::rebalance_metrics().attempts.inc();
    obs::span span("sharded.rebalance");
    directory* old = dir_locked();
    std::vector<std::unique_lock<mutex>> locks;
    locks.reserve(old->shards.size());
    for (const auto& sh : old->shards) locks.push_back(sh->box.writer_lock());
    // All writers excluded: the shards are frozen. Peek (no refcount bump
    // needed for the reads below, but parts are retained across the joins).
    std::vector<double> loads;
    std::vector<size_t> counts;
    Map whole;
    loads.reserve(old->shards.size());
    counts.reserve(old->shards.size());
    for (const auto& sh : old->shards) {
      Map part = sh->box.peek();
      loads.push_back(static_cast<double>(
          sh->write_ops.load(std::memory_order_relaxed)));
      counts.push_back(part.size());
      whole = Map::concat(std::move(whole), std::move(part));
    }
    std::vector<K> nsp =
        balanced_splitters(whole, counts, std::move(loads), target_shards_);
    if (same_splitters(nsp, *old->splitters)) return false;
    // Commit point: retire the old shards (writers queued on the locks we
    // hold will observe the flag and re-route), install the successor.
    for (const auto& sh : old->shards) {
      sh->retired_.store(true, std::memory_order_release);
    }
    // pam-lint: allow(naked-new) — directories are install-rate objects
    // owned by the map, freed exclusively through the epoch limbo below.
    directory* fresh = new directory{
        std::make_shared<const std::vector<K>>(std::move(nsp)), {},
        old->gen + 1};
    fresh->shards = shards_from(*fresh->splitters, std::move(whole));
    dir_.store(fresh, std::memory_order_release);
    server_internal::rebalance_metrics().installs.inc();
    locks.clear();  // release every writer before the (possibly slow) retire
    // pam-lint: allow(naked-delete) — the limbo deleter is the single
    // reclamation point for directories published by this map.
    epoch::retire(old, [](void* p) { delete static_cast<directory*>(p); });
    return true;
  }

  static bool same_splitters(const std::vector<K>& a, const std::vector<K>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); i++) {
      if (entry_policy::comp(a[i], b[i]) || entry_policy::comp(b[i], a[i]))
        return false;
    }
    return true;
  }

  // Shard count every rebalance aims for (the construction-time request);
  // the live directory may hold fewer when quantiles or balanced cuts
  // collapse duplicate keys.
  size_t target_shards_ = 1;
  // Serializes directory replacement; held (before any box lock) by
  // rebalance and by the cut fallback that needs a pinned directory.
  mutable mutex rebalance_mu_;
  std::atomic<directory*> dir_{nullptr};
};

}  // namespace pam
