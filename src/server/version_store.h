// version_store: a retained chain of consistent-cut versions over a
// sharded_map, with parallel snapshot diffing between any two retained
// versions.
//
// The serving layer so far throws old versions away the moment the next
// commit lands. Path copying makes retention nearly free — an unchanged
// shard between two versions is the *same root pointer* — so the store
// keeps a ring of (version, consistent cut) pairs:
//
//   * capture()            take one consistent cut (sharded_map's
//                          lock-free versioned re-validation protocol,
//                          snapshot_all_versioned) and retain it as the
//                          next version. A capture with no intervening
//                          commit is deduplicated: the per-shard commit
//                          counters are compared and the existing version
//                          id is returned.
//   * snapshot_at(v)       time-travel read: the full sharded_snapshot of
//                          any retained version, O(S) refcount bumps.
//   * diff(v_from, v_to)   the ordered change stream between two retained
//                          versions, stitched across shards in shard (=
//                          key) order. Per-shard diffs run in parallel and
//                          prune on shared subtrees (pam/diff.h), so an
//                          unchanged shard costs O(1) and the total is
//                          O(d log(n/d + 1)) for d changed entries.
//
// Trimming: the ring keeps at most `max_versions` entries (count trim, on
// every capture) and drops entries older than `max_age` when it is nonzero
// (age trim, on capture and via trim_older_than). Trimming drops refcounts;
// tree storage is reclaimed when the last snapshot holding it goes away.
//
// Thread safety: every public member may be called from any thread. The
// ring has its own mutex, held only for O(S) handle copies — never across
// diff computation or tree work.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "pam/diff.h"
#include "parallel/parallel.h"
#include "server/sharded_map.h"
#include "util/thread_annotations.h"

namespace pam {

template <typename Map>
class version_store {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using snapshot_type = sharded_snapshot<Map>;
  using change_t = map_change<Map>;
  using diff_type = map_diff<Map>;
  using clock = std::chrono::steady_clock;

  struct config {
    // Count trim: the ring retains at most this many versions.
    size_t max_versions = 64;
    // Age trim: versions older than this are dropped at the next capture;
    // zero disables age-based trimming.
    std::chrono::milliseconds max_age{0};
  };

  explicit version_store(sharded_map<Map>& target, config cfg = {})
      : target_(target), cfg_(cfg) {
    if (cfg_.max_versions == 0) cfg_.max_versions = 1;
  }

  version_store(const version_store&) = delete;
  version_store& operator=(const version_store&) = delete;

  // Retain the current consistent cut as a new version and return its id
  // (ids are assigned 1, 2, ... and never reused). If no shard committed
  // since the last capture, the existing latest id is returned and nothing
  // is retained — capture is idempotent on a quiescent store.
  uint64_t capture() { return capture_snapshot().version; }

  // What a captured version retains: its id and the exact consistent cut.
  struct captured {
    uint64_t version;
    snapshot_type snapshot;
  };

  // capture(), but hands back the retained cut itself. The durability layer
  // uses this so the cut it serializes into a checkpoint is byte-for-byte
  // the version the ring retained — not a second snapshot racing with
  // concurrent flushes.
  captured capture_snapshot() {
    auto cut = target_.snapshot_all_versioned();
    std::vector<entry> dropped;  // destroyed outside the lock (GC can fork)
    mutex_guard lock(mu_);
    if (!ring_.empty() && ring_.back().dir_gen == cut.dir_gen) {
      // Within one directory generation every validated cut corresponds to
      // one instant at which all shards simultaneously held its version
      // vector, so any two cuts are totally ordered and componentwise
      // comparable. A cut that does not advance past the newest retained
      // one is either identical (quiescent dedup) or lost a race to a
      // concurrent capture that took a newer cut but reached this mutex
      // first — in both cases the retained version already covers it, so
      // return that id rather than pushing a version whose id order would
      // invert its cut order. Across generations the vectors are
      // incomparable — a rebalance re-shards the space and fresh shards
      // restart their counters — so a cut under a new directory is always
      // retained (the gen check above).
      const std::vector<uint64_t>& back = ring_.back().shard_versions;
      bool advanced = false;
      for (size_t s = 0; s < cut.versions.size() && !advanced; s++)
        advanced = cut.versions[s] > back[s];
      if (!advanced) return {ring_.back().version, ring_.back().cut};
    }
    uint64_t v = next_version_++;
    ring_.push_back({v, std::move(cut.snapshot), std::move(cut.versions),
                     cut.dir_gen, clock::now()});
    trim_locked(clock::now(), dropped);
    return {v, ring_.back().cut};
  }

  // 0 when nothing has been captured yet.
  uint64_t latest_version() const {
    mutex_guard lock(mu_);
    return ring_.empty() ? 0 : ring_.back().version;
  }
  uint64_t oldest_version() const {
    mutex_guard lock(mu_);
    return ring_.empty() ? 0 : ring_.front().version;
  }
  size_t retained() const {
    mutex_guard lock(mu_);
    return ring_.size();
  }

  // The cut retained for version v; nullopt if v was trimmed (or never
  // assigned). O(S) refcount bumps.
  std::optional<snapshot_type> snapshot_at(uint64_t v) const {
    mutex_guard lock(mu_);
    const entry* e = find_locked(v);
    if (e == nullptr) return std::nullopt;
    return e->cut;
  }

  // Latest retained cut plus its version id; {empty, 0} before any capture.
  std::pair<snapshot_type, uint64_t> snapshot_latest() const {
    mutex_guard lock(mu_);
    if (ring_.empty()) return {snapshot_type{}, 0};
    return {ring_.back().cut, ring_.back().version};
  }

  // The ordered change stream transforming version v_from into v_to:
  // per-shard structural diffs computed in parallel outside the ring lock,
  // stitched in shard order (shards tile the key space, so the result is
  // globally key-ordered). nullopt if either version is not retained.
  // v_from == v_to yields an empty stream.
  std::optional<std::vector<change_t>> diff(uint64_t v_from,
                                            uint64_t v_to) const {
    snapshot_type from, to;
    {
      mutex_guard lock(mu_);
      const entry* ef = find_locked(v_from);
      const entry* et = find_locked(v_to);
      if (ef == nullptr || et == nullptr) return std::nullopt;
      from = ef->cut;
      to = et->cut;
    }
    return diff_snapshots(from, to);
  }

  // The same stream computed from two already-obtained cuts (they need not
  // be retained). Per-shard pairing is only meaningful when both cuts were
  // taken under the same splitter directory — shard s then covers the same
  // key range on both sides, and an unchanged shard is the same root
  // pointer (O(1) prune). Cuts straddling a rebalance have incomparable
  // shard boundaries: pairing by index would report a key that merely moved
  // shards as a remove in one pair and an insert in another, which a
  // downstream consumer applying inserts before deletes (checkpoint
  // apply_delta) would net to *deleting* the key. Those diff the merged
  // maps instead — correct by construction, at the cost of the structural
  // sharing between shards of different directories (which is mostly gone
  // anyway: a rebalance rebuilds shard roots via concat/split).
  static std::vector<change_t> diff_snapshots(const snapshot_type& from,
                                              const snapshot_type& to) {
    if (from.splitters_handle() != to.splitters_handle()) {
      return Map::diff(from.merged(), to.merged()).changes();
    }
    size_t S = std::max(from.num_shards(), to.num_shards());
    std::vector<std::vector<change_t>> per_shard(S);
    parallel_for(
        0, S,
        [&](size_t s) {
          Map a = s < from.num_shards() ? from.shard(s) : Map{};
          Map b = s < to.num_shards() ? to.shard(s) : Map{};
          per_shard[s] = Map::diff(a, b).changes();
        },
        1);
    size_t total = 0;
    for (const auto& v : per_shard) total += v.size();
    std::vector<change_t> out;
    out.reserve(total);
    for (auto& v : per_shard)
      out.insert(out.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
    return out;
  }

  // Drop retained versions beyond the newest keep_count.
  void trim_to(size_t keep_count) {
    std::vector<entry> dropped;  // destroyed outside the lock
    mutex_guard lock(mu_);
    while (ring_.size() > keep_count) {
      dropped.push_back(std::move(ring_.front()));
      ring_.pop_front();
    }
  }

  // Drop retained versions captured more than `age` ago.
  void trim_older_than(std::chrono::milliseconds age) {
    std::vector<entry> dropped;
    auto cutoff = clock::now() - age;
    mutex_guard lock(mu_);
    while (!ring_.empty() && ring_.front().at < cutoff) {
      dropped.push_back(std::move(ring_.front()));
      ring_.pop_front();
    }
  }

 private:
  struct entry {
    uint64_t version;
    snapshot_type cut;
    std::vector<uint64_t> shard_versions;  // dedups quiescent captures
    uint64_t dir_gen;  // generation the vector is comparable within
    clock::time_point at;
  };

  // Versions are assigned in ring order, so a binary search by id works.
  const entry* find_locked(uint64_t v) const PAM_REQUIRES(mu_) {
    size_t lo = 0, hi = ring_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (ring_[mid].version < v) lo = mid + 1; else hi = mid;
    }
    if (lo < ring_.size() && ring_[lo].version == v) return &ring_[lo];
    return nullptr;
  }

  void trim_locked(clock::time_point now, std::vector<entry>& dropped)
      PAM_REQUIRES(mu_) {
    while (ring_.size() > cfg_.max_versions) {
      dropped.push_back(std::move(ring_.front()));
      ring_.pop_front();
    }
    if (cfg_.max_age.count() > 0) {
      auto cutoff = now - cfg_.max_age;
      while (ring_.size() > 1 && ring_.front().at < cutoff) {
        dropped.push_back(std::move(ring_.front()));
        ring_.pop_front();
      }
    }
  }

  sharded_map<Map>& target_;
  config cfg_;
  mutable mutex mu_;
  std::deque<entry> ring_ PAM_GUARDED_BY(mu_);
  uint64_t next_version_ PAM_GUARDED_BY(mu_) = 1;
};

}  // namespace pam
