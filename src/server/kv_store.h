// kv_store: the serving-layer facade — a sharded_map fronted by a
// write_combiner, wired together with one options struct.
//
// This is the deployment shape the paper's §4 sketches for a query server:
// many client threads issue point puts/erases and reads; writes ride the
// combiner onto the O(m log(n/m + 1)) bulk path per shard, reads run
// against immutable snapshots and never block writers (or each other).
//
//     kv_store<Map> store(initial_map, {.num_shards = 16});
//     store.put(k, v);            // buffered; durable after the next flush
//     store.flush();              // barrier: all prior puts are committed
//     store.get(k);               // committed read, one shard snapshot
//     auto snap = store.snapshot();          // consistent cut, O(S)
//     snap.for_each_range(lo, hi, f);        // stitched in-order walk
//
// Writes are eventually visible (bounded by batch_size / flush_interval);
// flush() is the barrier when read-your-writes is needed. All members are
// safe to call from any thread.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "server/sharded_map.h"
#include "server/write_combiner.h"

namespace pam {

template <typename Map>
class kv_store {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using A = typename Map::A;
  using entry_t = typename Map::entry_t;
  using snapshot_type = sharded_snapshot<Map>;

  struct options {
    // Shard count for quantile partitioning of `initial`. Quantiles can
    // only be inferred from existing keys: an empty initial map collapses
    // to ONE shard (no write parallelism) — a fresh store should set
    // `splitters` instead.
    size_t num_shards = 16;
    // Explicit shard splitters; when non-empty they take precedence over
    // num_shards (S-1 splitters make S shards).
    std::vector<K> splitters{};
    typename write_combiner<Map>::config combiner{};
  };

  explicit kv_store(Map initial = Map{}, options opt = {})
      : shards_(opt.splitters.empty()
                    ? sharded_map<Map>(std::move(initial), opt.num_shards)
                    : sharded_map<Map>(std::move(initial),
                                       std::move(opt.splitters))),
        combiner_(shards_, opt.combiner) {}

  // ------------------------------------------------------------- writes --

  // Buffered point upsert / delete (see write_combiner for the batching
  // contract). Visible after the next flush of the owning shard.
  void put(const K& k, const V& v) { combiner_.upsert(k, v); }
  void erase(const K& k) { combiner_.erase(k); }

  // Barrier: every put/erase issued before this call is committed on return.
  void flush() { combiner_.flush_all(); }

  // Bulk writes bypass the combiner: they are already batches, and commit
  // before returning. Mixing bulk and buffered writes to the same key is
  // racy by construction — flush() first if ordering matters.
  void put_batch(std::vector<entry_t> updates) {
    shards_.multi_insert(std::move(updates));
  }
  void erase_batch(std::vector<K> keys) { shards_.multi_delete(std::move(keys)); }

  // -------------------------------------------------------------- reads --
  // All reads see committed state only (pending buffered writes excluded).

  std::optional<V> get(const K& k) const { return shards_.find(k); }

  std::vector<std::optional<V>> multi_get(const std::vector<K>& keys) const {
    return shards_.multi_find(keys);
  }

  // A consistent cut across every shard; all stitched range/aug queries
  // (for_each_range, count_range, aug_range, entries) live on the snapshot.
  snapshot_type snapshot() const { return shards_.snapshot_all(); }

  size_t size() const { return shards_.size(); }

  // ------------------------------------------------------ introspection --

  sharded_map<Map>& shards() { return shards_; }
  const sharded_map<Map>& shards() const { return shards_; }
  typename write_combiner<Map>::stats_snapshot ingest_stats() const {
    return combiner_.stats();
  }

 private:
  sharded_map<Map> shards_;
  write_combiner<Map> combiner_;
};

}  // namespace pam
