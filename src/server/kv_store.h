// kv_store: the serving-layer facade — a sharded_map fronted by a
// write_combiner, wired together with one options struct.
//
// This is the deployment shape the paper's §4 sketches for a query server:
// many client threads issue point puts/erases and reads; writes ride the
// combiner onto the O(m log(n/m + 1)) bulk path per shard, reads run
// against immutable snapshots and never block writers (or each other).
//
//     kv_store<Map> store(initial_map, {.num_shards = 16});
//     store.put(k, v);            // buffered; durable after the next flush
//     store.flush();              // barrier: all prior puts are committed
//     store.get(k);               // committed read, one shard snapshot
//     auto snap = store.snapshot();          // consistent cut, O(S)
//     snap.for_each_range(lo, hi, f);        // stitched in-order walk
//
// With options::retain_versions > 0 the store also keeps a version chain
// (server/version_store.h): checkpoint() flushes and retains the cut,
// history() answers time-travel reads and version diffs, and feed() hands
// out pull-based change subscriptions.
//
// Writes are eventually visible (bounded by batch_size / flush_interval);
// flush() is the barrier when read-your-writes is needed. All members are
// safe to call from any thread.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "alloc/arena.h"
#include "server/change_feed.h"
#include "server/sharded_map.h"
#include "server/version_store.h"
#include "server/write_combiner.h"
#include "util/thread_annotations.h"

namespace pam {

template <typename Map>
class kv_store {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using A = typename Map::A;
  using entry_t = typename Map::entry_t;
  using snapshot_type = sharded_snapshot<Map>;

  struct options {
    // Shard count for quantile partitioning of `initial`. Quantiles can
    // only be inferred from existing keys: an empty initial map collapses
    // to ONE shard (no write parallelism) — a fresh store should set
    // `splitters` instead.
    size_t num_shards = 16;
    // Explicit shard splitters; when non-empty they take precedence over
    // num_shards (S-1 splitters make S shards).
    std::vector<K> splitters{};
    typename write_combiner<Map>::config combiner{};
    // Version history: when retain_versions > 0 the store keeps a
    // version_store ring of that capacity — checkpoint() retains versions,
    // history() exposes time-travel reads / diffs / change feeds.
    size_t retain_versions = 0;
    typename version_store<Map>::config history{};
  };

  explicit kv_store(Map initial = Map{}, options opt = {})
      : shards_(opt.splitters.empty()
                    ? sharded_map<Map>(std::move(initial), opt.num_shards)
                    : sharded_map<Map>(std::move(initial),
                                       std::move(opt.splitters))),
        combiner_(shards_, opt.combiner) {
    if (opt.retain_versions > 0) {
      auto hcfg = opt.history;
      hcfg.max_versions = opt.retain_versions;
      history_.emplace(shards_, hcfg);
      history_->capture();  // version 1: the initial contents
    }
  }

  // ------------------------------------------------------------- writes --

  // Buffered point upsert / delete (see write_combiner for the batching
  // contract). Visible after the next flush of the owning shard.
  void put(const K& k, const V& v) { combiner_.upsert(k, v); }
  void erase(const K& k) { combiner_.erase(k); }

  // Barrier: every put/erase issued before this call is committed on return.
  void flush() { combiner_.flush_all(); }

  // Bulk writes bypass the combiner: they are already batches, and commit
  // before returning. Mixing bulk and buffered writes to the same key is
  // racy by construction — flush() first if ordering matters.
  void put_batch(std::vector<entry_t> updates) {
    shards_.multi_insert(std::move(updates));
  }
  void erase_batch(std::vector<K> keys) { shards_.multi_delete(std::move(keys)); }

  // -------------------------------------------------------------- reads --
  // All reads see committed state only (pending buffered writes excluded).

  std::optional<V> get(const K& k) const { return shards_.find(k); }

  std::vector<std::optional<V>> multi_get(const std::vector<K>& keys) const {
    return shards_.multi_find(keys);
  }

  // A consistent cut across every shard; all stitched range/aug queries
  // (for_each_range, count_range, aug_range, entries) live on the snapshot.
  snapshot_type snapshot() const { return shards_.snapshot_all(); }

  size_t size() const { return shards_.size(); }

  // ---------------------------------------------------- version history --
  // Available when options::retain_versions > 0; calling any of these on a
  // store constructed without history throws std::logic_error.

  bool has_history() const { return history_.has_value(); }

  // Flush pending writes and retain the resulting consistent cut as a new
  // version; returns its id. The durable checkpoint primitive: everything
  // put() before this call is inside the captured version.
  uint64_t checkpoint() {
    combiner_.flush_all();
    return require_history().capture();
  }

  // The retained version chain: snapshot_at / diff / trimming.
  version_store<Map>& history() { return require_history(); }
  const version_store<Map>& history() const { return require_history(); }

  // A pull-based feed over the version chain; subscribers drain ordered
  // entry deltas between checkpoints.
  change_feed<Map> feed() { return change_feed<Map>(require_history()); }

  // ------------------------------------------------------ introspection --

  sharded_map<Map>& shards() { return shards_; }
  const sharded_map<Map>& shards() const { return shards_; }
  typename write_combiner<Map>::stats_snapshot ingest_stats() const {
    return combiner_.stats();
  }

  // ------------------------------------------------- memory maintenance --
  // Process-wide (the pools are shared by every map in the process, so the
  // numbers cover all stores, not just this one).

  struct memory_stats {
    size_t reserved_bytes;   // exact OS footprint of all pools
    size_t limbo_retired;    // displaced versions awaiting epoch drain
  };

  static memory_stats memory() {
    return {block_pool::reserved_bytes_all(), epoch::pending()};
  }

  // Reclaim what a long-lived server can: drive the epoch forward so
  // displaced versions in limbo are destroyed (parallel teardown), then
  // return fully-free chunks from every pool to the OS. Returns the bytes
  // released. Readers are never blocked; chunks pinned by other threads'
  // local caches stay resident (see block_pool::trim). EXCLUDES: calling
  // this from inside an epoch::guard could never drain past the caller's
  // own pin — the contract propagates from epoch::drain.
  static size_t trim_memory() PAM_EXCLUDES(epoch_domain) {
    epoch::drain();
    return block_pool::trim_all();
  }

 private:
  version_store<Map>& require_history() {
    check_history();
    return *history_;
  }
  const version_store<Map>& require_history() const {
    check_history();
    return *history_;
  }
  void check_history() const {
    if (!history_.has_value())
      throw std::logic_error(
          "kv_store: version history disabled — construct with "
          "options::retain_versions > 0");
  }

  sharded_map<Map> shards_;
  write_combiner<Map> combiner_;  // declared after shards_: drains first
  std::optional<version_store<Map>> history_;
};

}  // namespace pam
