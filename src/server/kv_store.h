// kv_store: the serving-layer facade — a sharded_map fronted by a
// write_combiner, wired together with one options struct.
//
// This is the deployment shape the paper's §4 sketches for a query server:
// many client threads issue point puts/erases and reads; writes ride the
// combiner onto the O(m log(n/m + 1)) bulk path per shard, reads run
// against immutable snapshots and never block writers (or each other).
//
//     kv_store<Map> store(initial_map, {.num_shards = 16});
//     store.put(k, v);            // buffered; durable after the next flush
//     store.flush();              // barrier: all prior puts are committed
//     store.get(k);               // committed read, one shard snapshot
//     auto snap = store.snapshot();          // consistent cut, O(S)
//     snap.for_each_range(lo, hi, f);        // stitched in-order walk
//
// With options::retain_versions > 0 the store also keeps a version chain
// (server/version_store.h): checkpoint() flushes and retains the cut,
// history() answers time-travel reads and version diffs, and feed() hands
// out pull-based change subscriptions.
//
// Writes are eventually visible (bounded by batch_size / flush_interval);
// flush() is the barrier when read-your-writes is needed. All members are
// safe to call from any thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/arena.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/change_feed.h"
#include "server/sharded_map.h"
#include "server/version_store.h"
#include "server/write_combiner.h"
#include "store/durability.h"
#include "util/env.h"
#include "util/thread_annotations.h"

namespace pam {

template <typename Map>
class kv_store {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using A = typename Map::A;
  using entry_t = typename Map::entry_t;
  using snapshot_type = sharded_snapshot<Map>;

  // Skew-adaptive resharding policy (sharded_map::maybe_rebalance), driven
  // by a background thread. Disabled unless the interval is positive; the
  // env-gated defaults mean an operator can turn it on per process with
  // PAM_REBALANCE_INTERVAL_MS alone, no code change.
  struct rebalance_options {
    // Policy tick period; zero (the default) disables the thread entirely.
    std::chrono::milliseconds interval{0};
    // A policy window must observe at least this many routed write ops
    // before it judges skew (quiet windows are ignored, not accumulated).
    uint64_t min_ops = 4096;
    // Trigger when the hottest shard carries more than this multiple of
    // the mean per-shard load.
    double hot_ratio = 2.0;

    bool enabled() const { return interval.count() > 0; }

    static rebalance_options from_env() {
      rebalance_options o;
      o.interval = std::chrono::milliseconds(
          env_long("PAM_REBALANCE_INTERVAL_MS", 0));
      o.min_ops =
          static_cast<uint64_t>(env_long("PAM_REBALANCE_MIN_OPS", 4096));
      o.hot_ratio = env_double("PAM_REBALANCE_RATIO", 2.0);
      return o;
    }
  };

  struct options {
    // Shard count for quantile partitioning of `initial`. Quantiles can
    // only be inferred from existing keys: an empty initial map collapses
    // to ONE shard (no write parallelism until a rebalance observes enough
    // keys to split; see `rebalance`) — a fresh store should set
    // `splitters` instead, or enable rebalancing. Either way num_shards is
    // recorded as the target the rebalancer re-splits toward.
    size_t num_shards = 16;
    // Explicit shard splitters; when non-empty they take precedence over
    // num_shards (S-1 splitters make S shards).
    std::vector<K> splitters{};
    typename write_combiner<Map>::config combiner{};
    // Version history: when retain_versions > 0 the store keeps a
    // version_store ring of that capacity — checkpoint() retains versions,
    // history() exposes time-travel reads / diffs / change feeds.
    size_t retain_versions = 0;
    typename version_store<Map>::config history{};
    // Durability: when set, the store owns a store::durability manager
    // rooted at durability->dir — every flushed batch is WAL-logged before
    // it becomes visible (write_combiner::config::batch_sink),
    // save_checkpoint() persists consistent cuts, and recover() rebuilds a
    // store from the directory after a crash. Constructing with this set
    // immediately commits a full checkpoint of the initial contents (the
    // splitters are durable from the first instant).
    std::optional<store::durability_options> durability{};
    // Background skew-adaptive resharding. The default reads the
    // PAM_REBALANCE_* knobs (off unless PAM_REBALANCE_INTERVAL_MS > 0).
    rebalance_options rebalance = rebalance_options::from_env();
  };

  explicit kv_store(Map initial = Map{}, options opt = {})
      : shards_(opt.splitters.empty()
                    ? sharded_map<Map>(std::move(initial), opt.num_shards)
                    : sharded_map<Map>(std::move(initial),
                                       std::move(opt.splitters))),
        durable_(opt.durability.has_value()
                     ? std::make_unique<store::durability<Map>>(
                           std::move(*opt.durability), shards_.snapshot_all())
                     : nullptr),
        combiner_(shards_, wire_sink(std::move(opt.combiner))) {
    init_history(opt);
    init_rebalancer(opt.rebalance);
  }

  // Stops the rebalancer before any member tears down (the thread holds a
  // reference to shards_); the members then destroy in declaration-reverse
  // order per the teardown contract below.
  ~kv_store() { stop_rebalancer(); }

  // ------------------------------------------------------------- writes --

  // Buffered point upsert / delete (see write_combiner for the batching
  // contract). Visible after the next flush of the owning shard.
  void put(const K& k, const V& v) { combiner_.upsert(k, v); }
  void erase(const K& k) { combiner_.erase(k); }

  // Barrier: every put/erase issued before this call is committed on
  // return — and, on a durable store, on the medium (WAL group-sync flushed).
  void flush() {
    combiner_.flush_all();
    if (durable_) durable_->sync_wal();
  }

  // Bulk writes bypass the combiner: they are already batches, and commit
  // before returning. Mixing bulk and buffered writes to the same key is
  // racy by construction — flush() first if ordering matters. On a durable
  // store each bulk call is one WAL record, logged before it is applied.
  void put_batch(std::vector<entry_t> updates) PAM_EXCLUDES(cut_mu_) {
    shared_guard fence(cut_mu_);
    log_bulk(updates, {});
    shards_.multi_insert(std::move(updates));
  }
  void erase_batch(std::vector<K> keys) PAM_EXCLUDES(cut_mu_) {
    shared_guard fence(cut_mu_);
    log_bulk({}, keys);
    shards_.multi_delete(std::move(keys));
  }

  // -------------------------------------------------------------- reads --
  // All reads see committed state only (pending buffered writes excluded).

  std::optional<V> get(const K& k) const { return shards_.find(k); }

  std::vector<std::optional<V>> multi_get(const std::vector<K>& keys) const {
    return shards_.multi_find(keys);
  }

  // A consistent cut across every shard; all stitched range/aug queries
  // (for_each_range, count_range, aug_range, entries) live on the snapshot.
  snapshot_type snapshot() const { return shards_.snapshot_all(); }

  size_t size() const { return shards_.size(); }

  // ---------------------------------------------------- version history --
  // Available when options::retain_versions > 0; calling any of these on a
  // store constructed without history throws std::logic_error.

  bool has_history() const { return history_.has_value(); }

  // Flush pending writes and retain the resulting consistent cut as a new
  // version; returns its id. The durable checkpoint primitive: everything
  // put() before this call is inside the captured version.
  uint64_t checkpoint() {
    combiner_.flush_all();
    return require_history().capture();
  }

  // The retained version chain: snapshot_at / diff / trimming.
  version_store<Map>& history() { return require_history(); }
  const version_store<Map>& history() const { return require_history(); }

  // A pull-based feed over the version chain; subscribers drain ordered
  // entry deltas between checkpoints.
  change_feed<Map> feed() { return change_feed<Map>(require_history()); }

  // ---------------------------------------------------------- durability --
  // Available when options::durability is set; the others throw
  // std::logic_error on a store constructed without it.

  bool has_durability() const { return durable_ != nullptr; }

  // True once the WAL writer died (an append threw mid-record): later
  // batches are silently unacked and the store should be replaced — by
  // recover(), which replays only what actually reached the medium.
  bool failed() const { return durable_ != nullptr && durable_->failed(); }

  // Flush every pending write, make the WAL durable, then persist the
  // resulting consistent cut — full or incremental per ckpt_config policy
  // (a committed checkpoint truncates the WAL prefix it covers). When
  // version history is on, the persisted cut is byte-identical to the
  // version retained by the ring (version_store::capture_snapshot).
  //
  // The (sync → read covered → snapshot) triple runs inside a writer
  // fence: every shard flush lock is held (write_combiner::quiesced) and
  // cut_mu_ is held exclusive, so no batch — combiner or bulk — can sit
  // between its WAL append and its apply while the cut is taken. Without
  // the fence a record with seq <= covered could be durable but not yet
  // applied, and the committed checkpoint would claim coverage of a batch
  // it lacks — wal_replay skips seq <= covered, silently losing the acked
  // batch after the next crash. Writers are only blocked for the cut
  // itself (O(shards) root grabs + one group fsync); serialization and
  // commit run outside the fence, concurrent with new writes.
  typename store::durability<Map>::ckpt_result save_checkpoint()
      PAM_EXCLUDES(cut_mu_, ckpt_mu_) {
    require_durable();
    // Serializing checkpoints end-to-end keeps covered_wal_seq monotone
    // across the durability manager's commits: were two cuts to commit in
    // opposite order, the later cut's truncate could unlink WAL records
    // the finally-current (earlier) manifest does not cover.
    mutex_guard order(ckpt_mu_);
    combiner_.flush_all();  // drain the bulk of the backlog outside the fence
    uint64_t covered = 0;
    std::optional<snapshot_type> cut;
    {
      exclusive_guard fence(cut_mu_);
      combiner_.quiesced([&] {
        durable_->sync_wal();
        covered = durable_->durable_seq();
        cut.emplace(history_.has_value()
                        ? history_->capture_snapshot().snapshot
                        : shards_.snapshot_all());
      });
    }
    return durable_->save_checkpoint(*cut, covered);
  }

  store::durability<Map>& durable() {
    require_durable();
    return *durable_;
  }

  struct recovery_stats {
    bool recovered = false;  // false: fresh directory, nothing durable yet
    uint64_t checkpoint_files = 0;
    uint64_t wal_records = 0;
    bool wal_tail_truncated = false;
  };

  // Rebuild a store from a durability directory: load the committed
  // checkpoint chain, replay the WAL tail (repairing any torn tail in
  // place), then open for serving with durability resumed — the recovered
  // state is immediately re-checkpointed in full, so a second crash cannot
  // lose it. Shard splitters come from the manifest; opt.splitters /
  // opt.num_shards are ignored unless the directory is fresh.
  static kv_store recover(store::durability_options dopts, options opt = {},
                          recovery_stats* stats = nullptr) {
    auto rec = store::durability<Map>::recover(dopts);
    if (!rec.has_value()) {
      if (stats != nullptr) *stats = {};
      opt.durability = std::move(dopts);
      return kv_store(Map{}, std::move(opt));
    }
    if (stats != nullptr) {
      *stats = {true, rec->checkpoint_files, rec->wal_records,
                rec->wal_tail_truncated};
    }
    return kv_store(recovered_tag{}, std::move(*rec), std::move(dopts),
                    std::move(opt));
  }

  // ------------------------------------------------------ introspection --

  sharded_map<Map>& shards() { return shards_; }
  const sharded_map<Map>& shards() const { return shards_; }
  typename write_combiner<Map>::stats_snapshot ingest_stats() const {
    return combiner_.stats();
  }

  // The full observability scrape (PR 9): every registered metric in the
  // process — this store's combiner/WAL/checkpoint series, the global
  // cut/epoch/arena/scheduler series — merged by (name, label), plus this
  // store's per-shard entry counts refreshed as pam_shard_entries{shard="s"}
  // gauges. With PAM_METRICS=0 the snapshot is empty.
  obs::registry_snapshot metrics() const {
    refresh_shard_gauges();
    return obs::registry::get().scrape();
  }

  // Prometheus text exposition of metrics().
  std::string metrics_text() const {
    std::ostringstream os;
    obs::prometheus_text(metrics(), os);
    return os.str();
  }

  // One-object JSON exposition of metrics().
  std::string metrics_json() const {
    std::ostringstream os;
    obs::metrics_json(metrics(), os);
    return os.str();
  }

  // ------------------------------------------------- memory maintenance --
  // Process-wide (the pools are shared by every map in the process, so the
  // numbers cover all stores, not just this one).

  struct memory_stats {
    size_t reserved_bytes;   // exact OS footprint of all pools
    size_t limbo_retired;    // displaced versions awaiting epoch drain
  };

  static memory_stats memory() {
    return {block_pool::reserved_bytes_all(), epoch::pending()};
  }

  // Reclaim what a long-lived server can: drive the epoch forward so
  // displaced versions in limbo are destroyed (parallel teardown), then
  // return fully-free chunks from every pool to the OS. Returns the bytes
  // released. Readers are never blocked; chunks pinned by other threads'
  // local caches stay resident (see block_pool::trim). EXCLUDES: calling
  // this from inside an epoch::guard could never drain past the caller's
  // own pin — the contract propagates from epoch::drain.
  static size_t trim_memory() PAM_EXCLUDES(epoch_domain) {
    epoch::drain();
    return block_pool::trim_all();
  }

 private:
  struct recovered_tag {};

  kv_store(recovered_tag, typename store::durability<Map>::recovered_t rec,
           store::durability_options dopts, options opt)
      : shards_(std::move(rec.contents), std::move(rec.splitters)),
        durable_(std::make_unique<store::durability<Map>>(
            std::move(dopts), shards_.snapshot_all(), rec.next_seq - 1,
            rec.next_seq)),
        combiner_(shards_, wire_sink(std::move(opt.combiner))) {
    init_history(opt);
    init_rebalancer(opt.rebalance);
  }

  void init_rebalancer(const rebalance_options& ro) {
    if (!ro.enabled()) return;
    reb_opts_ = ro;
    rebalancer_ = std::thread([this] { rebalancer_loop(); });
  }

  void stop_rebalancer() {
    if (!rebalancer_.joinable()) return;
    {
      mutex_guard lock(reb_mu_);
      reb_stop_ = true;
    }
    reb_cv_.notify_all();
    rebalancer_.join();
  }

  void rebalancer_loop() {
    unique_guard lock(reb_mu_);
    while (!reb_stop_) {
      reb_cv_.wait_for(lock, reb_opts_.interval);
      if (reb_stop_) break;
      lock.unlock();
      shards_.maybe_rebalance(reb_opts_.hot_ratio, reb_opts_.min_ops);
      lock.lock();
    }
  }

  void init_history(const options& opt) {
    if (opt.retain_versions > 0) {
      auto hcfg = opt.history;
      hcfg.max_versions = opt.retain_versions;
      history_.emplace(shards_, hcfg);
      history_->capture();  // version 1: the initial contents
    }
  }

  // Chain the WAL onto the combiner's pre-visibility hook: a batch that
  // cannot be logged is never applied (the sink throws, the combiner drops
  // it and counts a sink_failure). A user-supplied sink still runs, before
  // the log — its failure also keeps the batch out of both.
  typename write_combiner<Map>::config wire_sink(
      typename write_combiner<Map>::config cfg) {
    if (durable_) {
      auto prior = std::move(cfg.batch_sink);
      auto* d = durable_.get();
      cfg.batch_sink = [d, prior = std::move(prior)](
                           size_t s, const std::vector<entry_t>& ups,
                           const std::vector<K>& dels) {
        if (prior) prior(s, ups, dels);
        if (d->log_batch(static_cast<uint32_t>(s), ups, dels) == 0) {
          throw store::io_error("kv_store: WAL writer is dead, batch unacked");
        }
      };
    }
    return cfg;
  }

  // Bulk writes don't ride the combiner, so they log their own record
  // (shard field = ~0: routing is rederived from splitters at recovery).
  void log_bulk(const std::vector<entry_t>& ups, const std::vector<K>& dels) {
    if (!durable_) return;
    if (durable_->log_batch(~uint32_t{0}, ups, dels) == 0) {
      throw store::io_error("kv_store: WAL writer is dead, batch unacked");
    }
  }

  // Create (lazily, growing on demand) and refresh the
  // pam_shard_entries{shard="s"} gauges from the shards' commit-time size
  // counters — wait-free reads, no cut. The shard count is dynamic under
  // rebalancing: the gauge vector grows to the widest directory ever
  // scraped, and indices beyond the current directory read zero
  // (shard_size is bounds-safe), so a shrunk directory zeroes its stale
  // tail instead of exporting ghost counts.
  void refresh_shard_gauges() const {
    if constexpr (obs::kEnabled) {
      mutex_guard lock(gauges_mu_);
      size_t S = shards_.num_shards();
      shard_gauges_.reserve(S);
      while (shard_gauges_.size() < S) {
        shard_gauges_.push_back(std::make_unique<obs::gauge>(
            "pam_shard_entries",
            "shard=\"" + std::to_string(shard_gauges_.size()) + "\""));
      }
      for (size_t s = 0; s < shard_gauges_.size(); s++) {
        shard_gauges_[s]->set(static_cast<int64_t>(shards_.shard_size(s)));
      }
    }
  }

  void require_durable() const {
    if (!durable_) {
      throw std::logic_error(
          "kv_store: durability disabled — construct with "
          "options::durability set");
    }
  }

  version_store<Map>& require_history() {
    check_history();
    return *history_;
  }
  const version_store<Map>& require_history() const {
    check_history();
    return *history_;
  }
  void check_history() const {
    if (!history_.has_value())
      throw std::logic_error(
          "kv_store: version history disabled — construct with "
          "options::retain_versions > 0");
  }

  sharded_map<Map> shards_;
  // The checkpoint-cut writer fence. Bulk writes hold it shared across
  // their [WAL log → apply] pair; save_checkpoint holds it exclusive while
  // it reads durable_seq and snapshots (combiner batches need no share —
  // their log→apply pair lives under the shard flush locks, which the
  // exclusive section also holds via write_combiner::quiesced). Ordered
  // before the flush locks; nothing is PAM_GUARDED_BY it — it fences an
  // ordering, not data.
  mutable shared_mutex cut_mu_;
  // Serializes save_checkpoint callers so coverage claims reach the
  // durability manager in monotone order (see save_checkpoint).
  mutex ckpt_mu_;
  // Declaration order is the teardown contract run in reverse: history_
  // releases its retained cuts, combiner_ drains (its final batches still
  // logging through durable_), then durable_ closes the WAL, then shards_.
  std::unique_ptr<store::durability<Map>> durable_;
  write_combiner<Map> combiner_;
  std::optional<version_store<Map>> history_;

  // Per-shard size gauges, created lazily by the first metrics() call
  // (mutable: scraping a const store is still a read).
  mutable mutex gauges_mu_;
  mutable std::vector<std::unique_ptr<obs::gauge>> shard_gauges_
      PAM_GUARDED_BY(gauges_mu_);

  // Background rebalance policy thread, declared last: the dtor body joins
  // it before any member above begins teardown.
  rebalance_options reb_opts_{};
  mutex reb_mu_;
  std::condition_variable_any reb_cv_;
  bool reb_stop_ PAM_GUARDED_BY(reb_mu_) = false;
  std::thread rebalancer_;
};

}  // namespace pam
