// change_feed: pull-based change subscriptions over a version_store.
//
// A subscriber holds a cursor (the last version it consumed) and drains
// ordered entry deltas with poll(): everything committed between its cursor
// and the store's latest captured version, as one key-ordered stream
// stitched across shards (version_store::diff). Draining is pull-based and
// per-subscriber — any number of subscribers at different positions share
// the same retained versions, and a subscriber that stops polling costs
// nothing but the retention its cursor's version already has.
//
// Lag: the ring trims old versions, so a subscriber that falls behind may
// find its cursor no longer retained. poll() then reports `lagged` with an
// empty delta (the cursor does not advance); the subscriber recovers with
// rebase(), which hands it the latest full snapshot and moves the cursor
// there — the standard "resync then stream" protocol of replication feeds.
//
// Thread safety: the feed itself is stateless over the store and may be
// shared freely. A single subscription is a cursor owned by its subscriber:
// poll/rebase on one subscription must be externally serialized (each
// subscriber polls its own), while distinct subscriptions never contend.
// This is the "externally serialized" row of the concurrency contract
// (DESIGN.md): no mutex to annotate — the store underneath carries the
// checked capabilities, and a subscription is deliberately lock-free state
// owned by exactly one driver.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "server/version_store.h"

namespace pam {

template <typename Map>
class change_feed {
 public:
  using store_type = version_store<Map>;
  using snapshot_type = typename store_type::snapshot_type;
  using change_t = typename store_type::change_t;

  class subscription {
   public:
    subscription() = default;
    // The last version this subscriber has consumed (0 = nothing yet).
    uint64_t version() const { return cursor_; }

   private:
    friend class change_feed;
    explicit subscription(uint64_t cursor) : cursor_(cursor) {}
    uint64_t cursor_ = 0;
  };

  struct batch {
    uint64_t from = 0;  // cursor before the poll
    uint64_t to = 0;    // cursor after the poll (== from when empty/lagged)
    bool lagged = false;  // cursor trimmed: rebase() required
    std::vector<change_t> changes;

    bool empty() const { return changes.empty(); }
  };

  explicit change_feed(store_type& store) : store_(store) {}

  // Start consuming at the latest captured version: the subscriber sees
  // only changes committed (and captured) after this point. Pair with
  // store().snapshot_latest() when the subscriber also needs the base
  // state — or just call rebase() on a fresh subscription.
  subscription subscribe() const {
    return subscription(store_.latest_version());
  }

  // Drain everything captured since sub's cursor. Advances the cursor on
  // success; on lag the cursor stays and the batch says so.
  batch poll(subscription& sub) const {
    batch out;
    out.from = out.to = sub.cursor_;
    uint64_t latest = store_.latest_version();
    if (latest == sub.cursor_) return out;  // caught up
    if (sub.cursor_ == 0) {
      out.lagged = true;  // never rebased: no base version to diff from
      return out;
    }
    auto changes = store_.diff(sub.cursor_, latest);
    if (!changes.has_value()) {
      out.lagged = true;
      return out;
    }
    out.changes = std::move(*changes);
    out.to = latest;
    sub.cursor_ = latest;
    return out;
  }

  // Recover (or bootstrap) a subscriber: the latest full snapshot plus its
  // version; the cursor moves there, so the next poll streams only changes
  // committed after this snapshot.
  std::pair<snapshot_type, uint64_t> rebase(subscription& sub) const {
    auto [snap, v] = store_.snapshot_latest();
    sub.cursor_ = v;
    return {std::move(snap), v};
  }

  store_type& store() const { return store_; }

 private:
  store_type& store_;
};

}  // namespace pam
