// The durability manager: glues the WAL and the checkpoint writer into one
// object the server owns.
//
//   log_batch        encode one write-combiner batch as a WAL record and
//                    append it (group fsync per wal_config); the returned
//                    seq is what "acked" means
//   save_checkpoint  persist a consistent cut — full or incremental per
//                    policy — commit it, then truncate WAL segments the
//                    new checkpoint covers
//   recover          static: load the committed checkpoint chain, replay
//                    the WAL tail (repairing torn records), return the
//                    reconstructed contents + splitters + resume seqs
//
// Incremental policy: a checkpoint is a delta (aug_map::diff against the
// previous cut, so only changed blocks are serialized) unless (a) there is
// no previous cut, (b) the chain already has max_chain deltas, (c) the
// delta stream's bytes exceed incr_max_ratio of the last full checkpoint —
// the decision is made on the actual encoded delta, so the byte-footprint
// guarantee tests assert on is exact, not an estimate — or (d) the cut was
// taken under a different splitter directory than the previous one (a
// rebalance installed new shard boundaries between checkpoints).
// Case (d) is a correctness rule, not a policy choice: build_delta_stream
// diffs shard s against shard s, which is only meaningful when both cuts
// partition the key space identically. Across a rebalance, a key that
// moved shards would appear as a remove in one pair and an insert in
// another, and load()'s apply order (inserts, then deletes) would net to
// deleting it. Each manifest records the splitters of the cut it
// serializes, so recovery always redistributes along the boundaries the
// committed checkpoint was actually taken under.
//
// Crash safety: every mutation of manager state happens only after
// commit_current() returns. An injected crash anywhere inside
// save_checkpoint leaves the previous checkpoint current and the manager's
// in-memory chain state untouched; the dead attempt's files are garbage
// that the next successful commit's GC pass sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/checkpoint.h"
#include "store/file.h"
#include "store/wal.h"
#include "util/thread_annotations.h"

namespace pam::store {

namespace store_internal {

// Recovery instrumentation. Global, not per-manager: recover() is a static
// path that runs before any durability instance exists, and the exposition
// wants process-lifetime "what did startup replay" numbers.
struct recovery_metrics_t {
  obs::counter runs{"pam_recovery_runs_total"};
  obs::counter replayed_records{"pam_recovery_replayed_records_total"};
  obs::gauge replay_ns{"pam_recovery_replay_ns"};
};

inline recovery_metrics_t& recovery_metrics() {
  // pam-lint: allow(naked-new) — immortal process-wide metric block, same
  // lifetime rule as the obs registry it registers into.
  static recovery_metrics_t* m = new recovery_metrics_t();
  return *m;
}

}  // namespace store_internal

struct durability_options {
  std::string dir;
  wal_config wal = wal_config::from_env();
  ckpt_config ckpt = ckpt_config::from_env();
  std::shared_ptr<file_system> io = posix_fs();
};

template <typename Map>
class durability {
 public:
  using K = typename Map::K;
  using V = typename Map::V;
  using entry_t = typename Map::entry_t;
  using snapshot_t = sharded_snapshot<Map>;
  using cio = checkpoint_io<Map>;
  using manifest_t = typename cio::manifest_t;

  // Open a durable store rooted at opts.dir and immediately commit a full
  // checkpoint of `cut` covering `covered_seq` — a fresh store passes the
  // (possibly empty) initial cut with covered_seq 0 / next_seq 1, recovery
  // passes the reconstructed cut with the seqs wal_replay reported. Either
  // way the cut's splitters are durable from the first commit onward, and
  // any WAL prefix the checkpoint covers is truncated.
  durability(durability_options opts, const snapshot_t& cut,
             uint64_t covered_seq = 0, uint64_t next_seq = 1)
      : opts_(std::move(opts)) {
    opts_.io->mkdirs(opts_.dir);
    wal_ = std::make_unique<wal_writer>(opts_.io, opts_.dir, opts_.wal,
                                        next_seq);
    mutex_guard g(mu_);
    commit_locked(cut, covered_seq, /*force_full=*/true);
  }

  durability(const durability&) = delete;
  durability& operator=(const durability&) = delete;

  // ------------------------------------------------------------- logging --

  // WAL record payload for one batch:
  //   [ u32 shard | u32 n_ups | u32 n_dels | entries... | keys... ]
  // Returns the record's seq, or 0 when the writer is dead (batch unacked).
  uint64_t log_batch(uint32_t shard, const std::vector<entry_t>& upserts,
                     const std::vector<K>& deletes) {
    std::vector<char> buf;
    wire::put_u32(buf, shard);
    wire::put_u32(buf, static_cast<uint32_t>(upserts.size()));
    wire::put_u32(buf, static_cast<uint32_t>(deletes.size()));
    for (const entry_t& e : upserts) {
      wire::field_codec<entry_t>::write(e, buf);
    }
    for (const K& k : deletes) wire::field_codec<K>::write(k, buf);
    return wal_->append(buf.data(), buf.size());
  }

  // Durability barrier over everything logged so far.
  void sync_wal() { wal_->sync(); }

  uint64_t last_seq() const { return wal_->last_seq(); }
  uint64_t durable_seq() const { return wal_->durable_seq(); }

  // True once a WAL append has thrown: further batches are silently
  // unacked and the store should be considered failed.
  bool failed() const { return wal_->dead(); }

  // --------------------------------------------------------- checkpoints --

  struct ckpt_result {
    uint64_t id = 0;
    bool full = false;
    uint64_t bytes = 0;  // data file bytes written (pages + headers)
  };

  // Persist `cut`, which must reflect every record with seq <= covered_seq.
  // The caller is responsible for making that true under concurrency: the
  // (sync, read durable_seq, snapshot) triple must be fenced against
  // writers so no record with seq <= covered_seq is still between its WAL
  // append and its apply when the cut is taken — kv_store::save_checkpoint
  // does this by quiescing the combiner's flush locks and excluding bulk
  // writes. Replay of any seq in (covered, last] is idempotent because
  // records carry absolute upserts/deletes. covered_seq must be monotone
  // across calls (a regressing claim would follow a truncate that already
  // unlinked records the older manifest needs).
  ckpt_result save_checkpoint(const snapshot_t& cut, uint64_t covered_seq)
      PAM_EXCLUDES(mu_) {
    mutex_guard g(mu_);
    return commit_locked(cut, covered_seq, /*force_full=*/false);
  }

  // ------------------------------------------------------------ recovery --

  struct recovered_t {
    Map contents;
    std::vector<K> splitters;
    uint64_t covered_seq = 0;     // what the checkpoint chain covered
    uint64_t next_seq = 1;        // seq the resumed writer should assign
    uint64_t wal_records = 0;     // WAL records replayed past the chain
    uint64_t checkpoint_files = 0;
    bool wal_tail_truncated = false;
  };

  // Load the committed chain and replay the WAL tail (repairing torn
  // records in place). Returns nullopt when the directory has no committed
  // checkpoint — i.e. nothing durable ever existed there.
  static std::optional<recovered_t> recover(const durability_options& opts) {
    file_system& fs = *opts.io;
    if (!fs.exists(opts.dir)) return std::nullopt;
    std::optional<typename cio::loaded_t> loaded = cio::load(fs, opts.dir);
    if (!loaded.has_value()) return std::nullopt;
    recovered_t out;
    out.contents = std::move(loaded->contents);
    out.splitters = std::move(loaded->manifest.splitters);
    out.covered_seq = loaded->manifest.covered_wal_seq;
    out.checkpoint_files = loaded->files_applied;
    store_internal::recovery_metrics().runs.inc();
    uint64_t t0 = obs::now_ns();
    wal_replay_stats st;
    {
      obs::span replay_span("recover.replay");
      st = wal_replay(
          fs, opts.dir, out.covered_seq,
          [&](uint64_t, const char* payload, size_t n) {
            apply_record(out.contents, payload, n);
          },
          /*repair=*/true);
    }
    store_internal::recovery_metrics().replayed_records.inc(st.records);
    store_internal::recovery_metrics().replay_ns.set(
        static_cast<int64_t>(obs::now_ns() - t0));
    out.next_seq = st.next_seq;
    out.wal_records = st.records;
    out.wal_tail_truncated = st.tail_truncated;
    return out;
  }

  // Decode one WAL batch record and apply it (absolute ops → idempotent).
  static void apply_record(Map& m, const char* payload, size_t n) {
    wire::reader r(payload, n);
    r.u32();  // shard routing is rederived from splitters on reload
    uint32_t n_ups = r.u32();
    uint32_t n_dels = r.u32();
    std::vector<entry_t> ups;
    ups.reserve(n_ups);
    for (uint32_t i = 0; i < n_ups; i++) {
      ups.push_back(wire::field_codec<entry_t>::read(r));
    }
    std::vector<K> dels;
    dels.reserve(n_dels);
    for (uint32_t i = 0; i < n_dels; i++) {
      dels.push_back(wire::field_codec<K>::read(r));
    }
    if (r.remaining() != 0) {
      throw wire::error("wal: batch record length mismatch");
    }
    if (!ups.empty()) m = Map::multi_insert(std::move(m), std::move(ups));
    if (!dels.empty()) m = Map::multi_delete(std::move(m), std::move(dels));
  }

 private:
  ckpt_result commit_locked(const snapshot_t& cut, uint64_t covered_seq,
                            bool force_full) PAM_REQUIRES(mu_) {
    if (covered_seq < cur_manifest_.covered_wal_seq) {
      // A cut older than the committed one: committing it would move
      // CURRENT backwards past a truncate that may already have unlinked
      // the WAL records bridging the gap. kv_store serializes its callers
      // (ckpt_mu_), so only a direct misuse of this API can get here.
      throw std::logic_error(
          "durability: checkpoint coverage must be monotone");
    }
    obs::span commit_span("ckpt.commit");
    ckpt_result res;
    res.id = next_id_++;
    // Splitter-handle identity: two cuts share a handle iff no rebalance
    // installed a new directory between them — the exact condition under
    // which per-shard delta pairing is meaningful (rule (d) above).
    bool resharded =
        prev_cut_.has_value() &&
        prev_cut_->splitters_handle() != cut.splitters_handle();
    res.full = force_full || resharded || !prev_cut_.has_value() ||
               chain_len_ >= opts_.ckpt.max_chain;
    std::vector<char> delta;
    if (!res.full) {
      delta = cio::build_delta_stream(*prev_cut_, cut);
      if (static_cast<double>(delta.size()) >
          opts_.ckpt.incr_max_ratio * static_cast<double>(last_full_bytes_)) {
        res.full = true;
        // A delta that outgrew its budget forced a full checkpoint.
        ckpt_escalations_.inc();
      }
    }
    manifest_t m;
    std::string data_name = ckpt_file_name(res.id, res.full);
    if (res.full) {
      std::vector<std::vector<char>> streams = cio::build_full_streams(cut);
      std::vector<std::pair<uint32_t, const std::vector<char>*>> sp;
      sp.reserve(streams.size());
      for (size_t s = 0; s < streams.size(); s++) {
        sp.emplace_back(static_cast<uint32_t>(s), &streams[s]);
      }
      res.bytes = cio::write_data_file(*opts_.io, opts_.dir, data_name, sp,
                                       opts_.ckpt.page_bytes);
      m.files.emplace_back(uint8_t{0}, data_name);
    } else {
      res.bytes = cio::write_data_file(*opts_.io, opts_.dir, data_name,
                                       {{kDeltaShard, &delta}},
                                       opts_.ckpt.page_bytes);
      m = cur_manifest_;
      m.files.emplace_back(uint8_t{1}, data_name);
    }
    m.id = res.id;
    m.covered_wal_seq = covered_seq;
    m.splitters = cut.splitter_keys();
    cio::write_manifest(*opts_.io, opts_.dir, m);
    opts_.io->sync_dir(opts_.dir);
    cio::commit_current(*opts_.io, opts_.dir, manifest_file_name(res.id));
    // -- commit point passed: only now may manager state change. --
    ckpt_total_.inc();
    if (res.full) {
      ckpt_full_.inc();
    } else {
      ckpt_delta_.inc();
    }
    ckpt_bytes_.inc(res.bytes);
    cur_manifest_ = std::move(m);
    prev_cut_ = cut;
    if (res.full) {
      last_full_bytes_ = res.bytes;
      chain_len_ = 0;
    } else {
      chain_len_++;
    }
    wal_->truncate_through(covered_seq);
    gc_locked();
    return res;
  }

  // Sweep checkpoint/manifest files not referenced by the live chain —
  // superseded checkpoints and partial files from crashed attempts.
  void gc_locked() PAM_REQUIRES(mu_) {
    std::set<std::string> live;
    live.insert(manifest_file_name(cur_manifest_.id));
    for (const auto& [kind, name] : cur_manifest_.files) {
      (void)kind;
      live.insert(name);
    }
    for (const std::string& name : opts_.io->list(opts_.dir)) {
      bool sweepable = name.rfind("ckpt-", 0) == 0 ||
                       name.rfind("manifest-", 0) == 0;
      if (sweepable && live.count(name) == 0) {
        opts_.io->remove(opts_.dir + "/" + name);
      }
    }
  }

  durability_options opts_;
  std::unique_ptr<wal_writer> wal_;

  mutable mutex mu_;
  std::optional<snapshot_t> prev_cut_ PAM_GUARDED_BY(mu_);
  manifest_t cur_manifest_ PAM_GUARDED_BY(mu_);
  uint64_t next_id_ PAM_GUARDED_BY(mu_) = 1;
  uint64_t last_full_bytes_ PAM_GUARDED_BY(mu_) = 0;
  long chain_len_ PAM_GUARDED_BY(mu_) = 0;

  // Registry-backed checkpoint instrumentation (PR 9); per-instance,
  // summed at scrape across managers.
  obs::counter ckpt_total_{"pam_ckpt_total"};
  obs::counter ckpt_full_{"pam_ckpt_full_total"};
  obs::counter ckpt_delta_{"pam_ckpt_delta_total"};
  obs::counter ckpt_bytes_{"pam_ckpt_bytes_total"};
  obs::counter ckpt_escalations_{"pam_ckpt_escalations_total"};
};

}  // namespace pam::store
