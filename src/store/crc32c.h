// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// WAL record, checkpoint page and manifest in the durability layer.
//
// Software slice-by-8: eight 256-entry tables generated once at first use,
// processing 8 input bytes per step (~1 GB/s on commodity cores — ample for
// a durability path that is fsync-bound, and portable with no ISA
// dependency). The choice of CRC32C over plain CRC32 follows what storage
// systems standardized on (iSCSI, ext4, LevelDB/RocksDB): better burst
// error detection and hardware assist available if this ever needs it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pam::store {

namespace detail {

struct crc32c_tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  crc32c_tables() {
    constexpr uint32_t kPoly = 0x82F63B78;  // 0x1EDC6F41 bit-reflected
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = t[0][i];
      for (size_t s = 1; s < 8; s++) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

inline const crc32c_tables& crc_tables() {
  static const crc32c_tables tables;
  return tables;
}

}  // namespace detail

// CRC32C of `n` bytes. `seed` chains incremental computation: pass the
// previous result to extend a running checksum over multiple spans.
inline uint32_t crc32c(const void* data, size_t n, uint32_t seed = 0) {
  const auto& t = detail::crc_tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

}  // namespace pam::store
