// The durability layer's I/O seam: a minimal file/file-system interface
// with a POSIX implementation and a fault-injecting wrapper.
//
// Everything the WAL and checkpoint writers touch goes through store::file
// and store::file_system — append-only writes, positional reads, fsync,
// truncate, atomic rename, directory listing. That narrow seam is what
// makes crash testing honest: faulty_fs wraps any base file system and
// injects the classic storage failure modes at the Nth operation —
//
//   short write    the tail of an append never reaches the medium
//   torn page      the tail is replaced with garbage (a page torn across
//                  a power cut)
//   fsync failure  the barrier itself dies before the data is durable
//   rename crash   the process dies just before the atomic commit rename
//
// — each followed by a store::crash_error, which models the process dying
// at exactly that point. Tests run a workload against a mutexed oracle,
// arm one failpoint, catch the crash, then recover from the surviving
// bytes and compare (tests/test_crash_recovery.cpp).
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <dirent.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace pam::store {

// A real I/O failure (POSIX errno paths).
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// An injected crash point: the simulated process death thrown by faulty_fs
// after a failpoint fires. Distinct from io_error so tests can tell "the
// fault we armed" from "the environment actually broke".
class crash_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// One open file. Writers treat it append-only; readers are positional.
// Instances are NOT thread-safe — callers serialize (the WAL writer holds
// its mutex across every touch of the segment handle).
class file {
 public:
  virtual ~file() = default;
  file() = default;
  file(const file&) = delete;
  file& operator=(const file&) = delete;

  virtual void append(const void* data, size_t n) = 0;
  // Bytes actually read (short at EOF).
  virtual size_t read_at(uint64_t off, void* buf, size_t n) const = 0;
  virtual uint64_t size() const = 0;
  virtual void sync() = 0;
  virtual void truncate(uint64_t new_size) = 0;
};

class file_system {
 public:
  virtual ~file_system() = default;
  file_system() = default;
  file_system(const file_system&) = delete;
  file_system& operator=(const file_system&) = delete;

  virtual std::unique_ptr<file> create(const std::string& path) = 0;
  virtual std::unique_ptr<file> open_append(const std::string& path) = 0;
  virtual std::unique_ptr<file> open_read(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  virtual void remove(const std::string& path) = 0;
  // Atomic within a directory: the commit primitive of the manifest.
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void mkdirs(const std::string& path) = 0;
  // Plain (non-directory) entry names, unsorted.
  virtual std::vector<std::string> list(const std::string& dir) = 0;
  // Make a completed rename/create durable.
  virtual void sync_dir(const std::string& dir) = 0;
};

// ------------------------------------------------------------- POSIX impl --

namespace detail {

class posix_file final : public file {
 public:
  posix_file(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~posix_file() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw io_error("write(" + path_ + "): " + std::strerror(errno));
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
  }

  size_t read_at(uint64_t off, void* buf, size_t n) const override {
    char* p = static_cast<char*>(buf);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, p + got, n - got,
                          static_cast<off_t>(off + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        throw io_error("pread(" + path_ + "): " + std::strerror(errno));
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    return got;
  }

  uint64_t size() const override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      throw io_error("fstat(" + path_ + "): " + std::strerror(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  void sync() override {
    if (::fsync(fd_) != 0) {
      throw io_error("fsync(" + path_ + "): " + std::strerror(errno));
    }
  }

  void truncate(uint64_t new_size) override {
    if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
      throw io_error("ftruncate(" + path_ + "): " + std::strerror(errno));
    }
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace detail

class posix_file_system final : public file_system {
 public:
  std::unique_ptr<file> create(const std::string& path) override {
    return open_fd(path, O_CREAT | O_TRUNC | O_WRONLY);
  }
  std::unique_ptr<file> open_append(const std::string& path) override {
    return open_fd(path, O_CREAT | O_WRONLY | O_APPEND);
  }
  std::unique_ptr<file> open_read(const std::string& path) override {
    return open_fd(path, O_RDONLY);
  }

  bool exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  void remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw io_error("unlink(" + path + "): " + std::strerror(errno));
    }
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      throw io_error("rename(" + from + " -> " + to + "): " +
                     std::strerror(errno));
    }
  }

  void mkdirs(const std::string& path) override {
    std::string cur;
    for (size_t i = 0; i <= path.size(); i++) {
      if (i < path.size() && path[i] != '/') continue;
      cur = path.substr(0, i == path.size() ? i : i + 1);
      if (cur.empty() || cur == "/") continue;
      if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) {
        throw io_error("mkdir(" + cur + "): " + std::strerror(errno));
      }
    }
  }

  std::vector<std::string> list(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      throw io_error("opendir(" + dir + "): " + std::strerror(errno));
    }
    std::vector<std::string> out;
    while (dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      out.push_back(std::move(name));
    }
    ::closedir(d);
    return out;
  }

  void sync_dir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      throw io_error("open(" + dir + "): " + std::strerror(errno));
    }
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      throw io_error("fsync(" + dir + "): " + std::strerror(errno));
    }
  }

 private:
  static std::unique_ptr<file> open_fd(const std::string& path, int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      throw io_error("open(" + path + "): " + std::strerror(errno));
    }
    return std::make_unique<detail::posix_file>(fd, path);
  }
};

inline std::shared_ptr<file_system> posix_fs() {
  return std::make_shared<posix_file_system>();
}

// -------------------------------------------------------- fault injection --

// Armed counters: a value N > 0 means "the Nth subsequent operation of that
// kind trips the fault"; 0 or negative means disarmed. Counters are
// atomics so a test can arm them while a flusher thread is running.
struct failpoints {
  std::atomic<long> writes_until_short{0};
  std::atomic<long> writes_until_torn{0};
  std::atomic<long> fsyncs_until_fail{0};
  std::atomic<long> renames_until_crash{0};
  std::atomic<long> crashes_injected{0};

  void disarm() {
    writes_until_short.store(0);
    writes_until_torn.store(0);
    fsyncs_until_fail.store(0);
    renames_until_crash.store(0);
  }

  // Decrement an armed counter; true exactly when it hits zero (the Nth op).
  bool trip(std::atomic<long>& c) {
    long v = c.load(std::memory_order_relaxed);
    while (v > 0) {
      if (c.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) {
        if (v == 1) {
          crashes_injected.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        return false;
      }
    }
    return false;
  }
};

namespace detail {

class faulty_file final : public file {
 public:
  faulty_file(std::unique_ptr<file> base, std::shared_ptr<failpoints> fp)
      : base_(std::move(base)), fp_(std::move(fp)) {}

  void append(const void* data, size_t n) override {
    if (fp_->trip(fp_->writes_until_short)) {
      // Half the bytes reach the medium, then the process dies.
      base_->append(data, n / 2);
      throw crash_error("injected short write");
    }
    if (fp_->trip(fp_->writes_until_torn)) {
      // The first half lands, the rest is a torn page of garbage.
      size_t half = n / 2;
      base_->append(data, half);
      std::vector<char> junk(n - half, '\xA5');
      base_->append(junk.data(), junk.size());
      throw crash_error("injected torn write");
    }
    base_->append(data, n);
  }

  size_t read_at(uint64_t off, void* buf, size_t n) const override {
    return base_->read_at(off, buf, n);
  }
  uint64_t size() const override { return base_->size(); }

  void sync() override {
    if (fp_->trip(fp_->fsyncs_until_fail)) {
      throw crash_error("injected fsync failure");
    }
    base_->sync();
  }

  void truncate(uint64_t new_size) override { base_->truncate(new_size); }

 private:
  std::unique_ptr<file> base_;
  std::shared_ptr<failpoints> fp_;
};

}  // namespace detail

// Wraps a base file system and injects the armed faults on every file it
// opens. Reads are never failed — recovery always runs against a clean fs.
class faulty_fs final : public file_system {
 public:
  faulty_fs(std::shared_ptr<file_system> base, std::shared_ptr<failpoints> fp)
      : base_(std::move(base)), fp_(std::move(fp)) {}

  std::unique_ptr<file> create(const std::string& path) override {
    return wrap(base_->create(path));
  }
  std::unique_ptr<file> open_append(const std::string& path) override {
    return wrap(base_->open_append(path));
  }
  std::unique_ptr<file> open_read(const std::string& path) override {
    return base_->open_read(path);
  }
  bool exists(const std::string& path) override { return base_->exists(path); }
  void remove(const std::string& path) override { base_->remove(path); }

  void rename(const std::string& from, const std::string& to) override {
    if (fp_->trip(fp_->renames_until_crash)) {
      throw crash_error("injected crash before rename");
    }
    base_->rename(from, to);
  }

  void mkdirs(const std::string& path) override { base_->mkdirs(path); }
  std::vector<std::string> list(const std::string& dir) override {
    return base_->list(dir);
  }
  void sync_dir(const std::string& dir) override { base_->sync_dir(dir); }

 private:
  std::unique_ptr<file> wrap(std::unique_ptr<file> f) {
    return std::make_unique<detail::faulty_file>(std::move(f), fp_);
  }

  std::shared_ptr<file_system> base_;
  std::shared_ptr<failpoints> fp_;
};

}  // namespace pam::store
