// Checkpoint files: CRC32C-checksummed pages, an atomic rename-to-commit
// manifest, and full/incremental snapshot streams.
//
// A checkpoint persists one consistent cut (sharded_map's
// snapshot_all_versioned) as data files plus a manifest:
//
//   ckpt-<id>-full.pam    one map_codec stream per shard, paged
//   ckpt-<id>-delta.pam   one change stream (aug_map::diff against the
//                         previous cut), paged — only blocks that changed
//                         since the last cut contribute, which is the whole
//                         point of diffing two path-copied versions
//   manifest-<id>         the chain: splitters, covered WAL seq, and the
//                         data files to apply in order (full, then deltas)
//   CURRENT               the name of the committed manifest
//
// Page framing (native byte order — see the wire note in pam/serialize.h;
// checkpoint files are not portable across hosts of different endianness,
// and a cross-endian load fails closed on the manifest CRC / the map
// codec's byte-order stamp):
//
//   [ u32 magic | u32 shard | u32 index | u32 len | u8 last | u32 crc |
//     payload(len) ]
//
// crc is CRC32C over (shard, index, len, last, payload). A stream larger
// than page_bytes spans consecutive pages with increasing index; `last`
// closes it. Readers reject any page that fails its checksum or breaks
// the index chain, and any stream that never saw its last page — so a
// checkpoint interrupted mid-write is never loadable, even though it is
// also never referenced (its manifest was never committed).
//
// Commit protocol: data file(s) written and fsynced -> manifest written and
// fsynced -> directory synced -> CURRENT.tmp written, fsynced, renamed
// onto CURRENT, directory synced. The rename is the commit point: a crash
// anywhere before it leaves the previous checkpoint current, and partial
// files from the dead attempt are garbage that recovery never reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pam/pam.h"
#include "server/sharded_map.h"
#include "store/crc32c.h"
#include "store/file.h"
#include "util/env.h"

namespace pam::store {

// ------------------------------------------------------------ env config --

// All knobs ride the validated env parsers (util/env.h): trailing garbage
// and ERANGE fall back to the default, then clamp to the sane range.
struct ckpt_config {
  // Target page payload size (PAM_CKPT_PAGE_BYTES, clamped to
  // [4 KiB, 64 MiB]): bounds how much data one torn page can poison.
  size_t page_bytes = size_t{1} << 20;
  // Force a full checkpoint after this many incrementals
  // (PAM_CKPT_MAX_CHAIN, >= 1): bounds recovery's apply chain.
  long max_chain = 8;
  // Write a full checkpoint when the delta stream exceeds this fraction of
  // the last full checkpoint's bytes (PAM_CKPT_INCR_RATIO, in [0, 1]):
  // past that point replaying the delta saves nothing.
  double incr_max_ratio = 0.5;

  static ckpt_config from_env() {
    ckpt_config c;
    long pb = env_long("PAM_CKPT_PAGE_BYTES", static_cast<long>(c.page_bytes));
    if (pb < 4 * 1024) pb = 4 * 1024;
    if (pb > 64 * 1024 * 1024) pb = 64 * 1024 * 1024;
    c.page_bytes = static_cast<size_t>(pb);
    long mc = env_long("PAM_CKPT_MAX_CHAIN", c.max_chain);
    if (mc < 1) mc = 1;
    c.max_chain = mc;
    double r = env_double("PAM_CKPT_INCR_RATIO", c.incr_max_ratio);
    if (r < 0.0) r = 0.0;
    if (r > 1.0) r = 1.0;
    c.incr_max_ratio = r;
    return c;
  }
};

// ---------------------------------------------------------- page framing --

inline constexpr uint32_t kCkptMagic = 0x54504B43;   // "CKPT"
inline constexpr uint32_t kManifestMagic = 0x464E4D50;  // "PMNF"
inline constexpr uint32_t kDeltaShard = 0xFFFFFFFF;
inline constexpr size_t kCkptPageHeader = 4 + 4 + 4 + 4 + 1 + 4;

inline std::string ckpt_file_name(uint64_t id, bool full) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "ckpt-%016llx-%s.pam",
                static_cast<unsigned long long>(id), full ? "full" : "delta");
  return buf;
}

inline std::string manifest_file_name(uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "manifest-%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// Append `stream` to `out` as checksummed pages of <= page_bytes payload.
inline void append_pages(std::vector<char>& out, uint32_t shard,
                         const std::vector<char>& stream, size_t page_bytes) {
  size_t off = 0;
  uint32_t index = 0;
  do {
    size_t len = stream.size() - off < page_bytes ? stream.size() - off
                                                  : page_bytes;
    uint8_t last = off + len == stream.size() ? 1 : 0;
    uint32_t len32 = static_cast<uint32_t>(len);
    uint32_t crc = crc32c(&shard, sizeof(shard));
    crc = crc32c(&index, sizeof(index), crc);
    crc = crc32c(&len32, sizeof(len32), crc);
    crc = crc32c(&last, sizeof(last), crc);
    crc = crc32c(stream.data() + off, len, crc);
    wire::put_u32(out, kCkptMagic);
    wire::put_u32(out, shard);
    wire::put_u32(out, index);
    wire::put_u32(out, len32);
    wire::put_u8(out, last);
    wire::put_u32(out, crc);
    wire::put_bytes(out, stream.data() + off, len);
    off += len;
    index++;
  } while (off < stream.size());
}

// Parse a paged file back into complete (shard, stream) pairs, in order of
// first appearance. Throws wire::error on any checksum or chain violation,
// or if a stream never saw its closing page.
inline std::vector<std::pair<uint32_t, std::vector<char>>> read_page_streams(
    file_system& fs, const std::string& path) {
  std::unique_ptr<file> f = fs.open_read(path);
  uint64_t fsize = f->size();
  std::vector<char> buf(fsize);
  if (fsize > 0 && f->read_at(0, buf.data(), buf.size()) != fsize) {
    throw io_error("checkpoint file shrank mid-read: " + path);
  }
  std::vector<std::pair<uint32_t, std::vector<char>>> streams;
  std::map<uint32_t, size_t> stream_of;  // shard -> index into streams
  std::map<uint32_t, uint32_t> next_index;
  std::map<uint32_t, bool> closed;
  wire::reader r(buf.data(), buf.size());
  while (r.remaining() > 0) {
    if (r.remaining() < kCkptPageHeader) {
      throw wire::error("checkpoint: truncated page header");
    }
    uint32_t magic = r.u32();
    uint32_t shard = r.u32();
    uint32_t index = r.u32();
    uint32_t len = r.u32();
    uint8_t last = r.u8();
    uint32_t crc = r.u32();
    if (magic != kCkptMagic) throw wire::error("checkpoint: bad page magic");
    const char* payload = r.skip(len);
    uint32_t actual = crc32c(&shard, sizeof(shard));
    actual = crc32c(&index, sizeof(index), actual);
    actual = crc32c(&len, sizeof(len), actual);
    actual = crc32c(&last, sizeof(last), actual);
    actual = crc32c(payload, len, actual);
    if (actual != crc) throw wire::error("checkpoint: page checksum mismatch");
    auto it = stream_of.find(shard);
    if (it == stream_of.end()) {
      it = stream_of.emplace(shard, streams.size()).first;
      streams.emplace_back(shard, std::vector<char>());
      next_index[shard] = 0;
      closed[shard] = false;
    }
    if (closed[shard] || index != next_index[shard]) {
      throw wire::error("checkpoint: page chain violation");
    }
    next_index[shard] = index + 1;
    if (last != 0) closed[shard] = true;
    auto& dst = streams[it->second].second;
    dst.insert(dst.end(), payload, payload + len);
  }
  for (const auto& [shard, idx] : stream_of) {
    if (!closed[shard]) {
      throw wire::error("checkpoint: stream missing its final page");
    }
    (void)idx;
  }
  return streams;
}

// ------------------------------------------------------------- manifests --

// The per-Map checkpoint codec: manifests (which embed splitter keys),
// full-cut streams, delta streams, and the load path.
template <typename Map>
struct checkpoint_io {
  using K = typename Map::K;
  using V = typename Map::V;
  using entry_t = typename Map::entry_t;
  using change_t = typename Map::change_t;
  using snapshot_t = sharded_snapshot<Map>;

  struct manifest_t {
    uint64_t id = 0;
    uint64_t covered_wal_seq = 0;
    std::vector<K> splitters;
    // Data files in apply order: kind 0 = full, 1 = delta.
    std::vector<std::pair<uint8_t, std::string>> files;
  };

  static void write_manifest(file_system& fs, const std::string& dir,
                             const manifest_t& m) {
    std::vector<char> out;
    wire::put_u32(out, kManifestMagic);
    wire::put_u32(out, 1);  // format version
    wire::put_u64(out, m.id);
    wire::put_u64(out, m.covered_wal_seq);
    wire::put_u32(out, static_cast<uint32_t>(m.splitters.size()));
    for (const K& k : m.splitters) wire::field_codec<K>::write(k, out);
    wire::put_u32(out, static_cast<uint32_t>(m.files.size()));
    for (const auto& [kind, name] : m.files) {
      wire::put_u8(out, kind);
      wire::field_codec<std::string>::write(name, out);
    }
    wire::put_u32(out, crc32c(out.data(), out.size()));
    std::unique_ptr<file> f = fs.create(dir + "/" + manifest_file_name(m.id));
    f->append(out.data(), out.size());
    f->sync();
  }

  static manifest_t read_manifest(file_system& fs, const std::string& dir,
                                  const std::string& name) {
    std::unique_ptr<file> f = fs.open_read(dir + "/" + name);
    uint64_t fsize = f->size();
    std::vector<char> buf(fsize);
    if (fsize > 0 && f->read_at(0, buf.data(), buf.size()) != fsize) {
      throw io_error("manifest shrank mid-read: " + name);
    }
    if (fsize < 4) throw wire::error("manifest: too short");
    uint32_t crc;
    std::memcpy(&crc, buf.data() + fsize - 4, 4);
    if (crc != crc32c(buf.data(), fsize - 4)) {
      throw wire::error("manifest: checksum mismatch");
    }
    wire::reader r(buf.data(), fsize - 4);
    if (r.u32() != kManifestMagic) throw wire::error("manifest: bad magic");
    if (r.u32() != 1) throw wire::error("manifest: unknown format version");
    manifest_t m;
    m.id = r.u64();
    m.covered_wal_seq = r.u64();
    uint32_t nsp = r.u32();
    m.splitters.reserve(nsp);
    for (uint32_t i = 0; i < nsp; i++) {
      m.splitters.push_back(wire::field_codec<K>::read(r));
    }
    uint32_t nf = r.u32();
    m.files.reserve(nf);
    for (uint32_t i = 0; i < nf; i++) {
      uint8_t kind = r.u8();
      m.files.emplace_back(kind, wire::field_codec<std::string>::read(r));
    }
    return m;
  }

  // The commit point: publish `manifest_name` as CURRENT via write-temp,
  // fsync, atomic rename, directory sync.
  static void commit_current(file_system& fs, const std::string& dir,
                             const std::string& manifest_name) {
    const std::string tmp = dir + "/CURRENT.tmp";
    std::unique_ptr<file> f = fs.create(tmp);
    f->append(manifest_name.data(), manifest_name.size());
    f->sync();
    f.reset();
    fs.rename(tmp, dir + "/CURRENT");
    fs.sync_dir(dir);
  }

  static std::optional<std::string> read_current(file_system& fs,
                                                 const std::string& dir) {
    const std::string path = dir + "/CURRENT";
    if (!fs.exists(path)) return std::nullopt;
    std::unique_ptr<file> f = fs.open_read(path);
    uint64_t fsize = f->size();
    std::string name(fsize, '\0');
    if (fsize > 0 && f->read_at(0, name.data(), fsize) != fsize) {
      throw io_error("CURRENT shrank mid-read");
    }
    return name;
  }

  // --------------------------------------------------------- cut streams --

  // Serialize every shard of a cut (one map_codec stream per shard).
  static std::vector<std::vector<char>> build_full_streams(
      const snapshot_t& cut) {
    std::vector<std::vector<char>> streams(cut.num_shards());
    for (size_t s = 0; s < cut.num_shards(); s++) {
      cut.shard(s).serialize(streams[s]);
    }
    return streams;
  }

  // The change stream between two cuts over the same splitters: per-shard
  // aug_map::diff, concatenated in shard (= key) order. Only subtrees and
  // leaf blocks that actually changed are visited — shared regions prune in
  // O(1) — which is what makes incremental checkpoints proportional to the
  // churn, not the map.
  static std::vector<char> build_delta_stream(const snapshot_t& prev,
                                              const snapshot_t& cur) {
    std::vector<char> out;
    size_t count_at = out.size();
    wire::put_u32(out, 0);  // change count, patched below
    uint32_t n = 0;
    for (size_t s = 0; s < cur.num_shards(); s++) {
      std::vector<change_t> cs = Map::diff_changes(prev.shard(s), cur.shard(s));
      for (const change_t& c : cs) {
        wire::put_u8(out, c.after.has_value() ? 1 : 0);
        wire::field_codec<K>::write(c.key, out);
        if (c.after.has_value()) wire::field_codec<V>::write(*c.after, out);
        n++;
      }
    }
    std::memcpy(out.data() + count_at, &n, sizeof(n));
    return out;
  }

  // Write a data file of checksummed pages; returns bytes written. The
  // file is complete and fsynced on return but unreferenced until a
  // manifest naming it commits.
  static uint64_t write_data_file(
      file_system& fs, const std::string& dir, const std::string& name,
      const std::vector<std::pair<uint32_t, const std::vector<char>*>>& streams,
      size_t page_bytes) {
    std::vector<char> out;
    for (const auto& [shard, stream] : streams) {
      append_pages(out, shard, *stream, page_bytes);
    }
    std::unique_ptr<file> f = fs.create(dir + "/" + name);
    f->append(out.data(), out.size());
    f->sync();
    return out.size();
  }

  // ------------------------------------------------------------ loading --

  struct loaded_t {
    manifest_t manifest;
    Map contents;
    uint64_t files_applied = 0;
  };

  // Load the committed checkpoint chain: full streams deserialized per
  // shard and concatenated (shard ranges tile the key space), then each
  // delta's change stream applied in order. Returns nullopt when no
  // checkpoint has ever committed. Throws wire::error on corruption in
  // committed files (which the crash model says cannot happen — every
  // committed file was fsynced before its manifest was referenced).
  static std::optional<loaded_t> load(file_system& fs,
                                      const std::string& dir) {
    std::optional<std::string> current = read_current(fs, dir);
    if (!current.has_value()) return std::nullopt;
    loaded_t out;
    out.manifest = read_manifest(fs, dir, *current);
    for (const auto& [kind, name] : out.manifest.files) {
      auto streams = read_page_streams(fs, dir + "/" + name);
      if (kind == 0) {
        Map contents;
        for (size_t i = 0; i < streams.size(); i++) {
          if (streams[i].first != i) {
            throw wire::error("checkpoint: full file shard order violation");
          }
          Map shard = Map::deserialize(streams[i].second.data(),
                                       streams[i].second.size());
          contents = Map::concat(std::move(contents), std::move(shard));
        }
        out.contents = std::move(contents);
      } else {
        if (streams.size() != 1 || streams[0].first != kDeltaShard) {
          throw wire::error("checkpoint: malformed delta file");
        }
        apply_delta(out.contents, streams[0].second);
      }
      out.files_applied++;
    }
    return out;
  }

  static void apply_delta(Map& m, const std::vector<char>& stream) {
    wire::reader r(stream.data(), stream.size());
    uint32_t n = r.u32();
    std::vector<entry_t> ups;
    std::vector<K> dels;
    for (uint32_t i = 0; i < n; i++) {
      uint8_t has_after = r.u8();
      K k = wire::field_codec<K>::read(r);
      if (has_after != 0) {
        ups.emplace_back(std::move(k), wire::field_codec<V>::read(r));
      } else {
        dels.push_back(std::move(k));
      }
    }
    if (r.remaining() != 0) {
      throw wire::error("checkpoint: delta stream length mismatch");
    }
    // One delta's keys are distinct (a diff of two versions), so the two
    // bulk passes commute with nothing.
    if (!ups.empty()) m = Map::multi_insert(std::move(m), std::move(ups));
    if (!dels.empty()) m = Map::multi_delete(std::move(m), std::move(dels));
  }
};

}  // namespace pam::store
