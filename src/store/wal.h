// Write-ahead log: checksummed, length-prefixed records in rotating
// segments, with group fsync and truncation once a checkpoint covers them.
//
// Record framing (native byte order — see the wire note in pam/serialize.h;
// WAL files are not portable across hosts of different endianness):
//
//   [ u32 magic | u64 seq | u32 len | u32 crc | payload(len) ]
//
// `crc` is CRC32C over (seq, len, payload), so a record is valid only if
// its header and payload both survived. Sequence numbers are global and
// dense (1, 2, 3, ...); a valid record whose seq breaks the expected chain
// is treated as corruption. Segments are named wal-<hex first seq>.log and
// rotate once the active one exceeds segment_bytes; truncate_through()
// unlinks whole segments proven covered by a committed checkpoint.
//
// Replay scans segments in seq order and stops at the first record that
// fails any check — short header, bad magic, bad length, bad CRC, broken
// chain. Under the append-only crash model every torn/short tail is one of
// those, so recovery "tolerates torn trailing records by truncating at the
// first bad checksum" (wal_replay with repair=true also physically
// truncates the tail and removes any later segments).
//
// Crash semantics of the writer: the first exception out of the I/O layer
// (store::crash_error from a failpoint, io_error from the real fs) marks
// the writer dead and rethrows; every later append/sync is a silent no-op
// that reports "not logged". A dead WAL models the process after its death
// — nothing it "writes" was ever acked, so dropping the bytes is exactly
// what recovery expects (and it keeps destructor-path flushes from
// throwing). kv_store surfaces the state via failed().
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pam/pam.h"
#include "store/crc32c.h"
#include "store/file.h"
#include "util/env.h"
#include "util/thread_annotations.h"

namespace pam::store {

// ------------------------------------------------------------ env config --

// Both knobs ride the validated env parsers (util/env.h): trailing garbage
// and out-of-range values fall back to the default, then clamp.
struct wal_config {
  // Rotate the active segment past this many bytes (PAM_WAL_SEGMENT_BYTES,
  // clamped to >= 64 KiB so rotation stays off the hot path).
  size_t segment_bytes = size_t{4} << 20;
  // Group fsync: sync once every N appends (PAM_WAL_SYNC_EVERY, >= 1).
  // Callers needing a hard ack call sync() themselves; 1 means every
  // record is durable before append returns.
  long sync_every = 1;

  static wal_config from_env() {
    wal_config c;
    long seg = env_long("PAM_WAL_SEGMENT_BYTES",
                        static_cast<long>(c.segment_bytes));
    if (seg < 64 * 1024) seg = 64 * 1024;
    c.segment_bytes = static_cast<size_t>(seg);
    long n = env_long("PAM_WAL_SYNC_EVERY", c.sync_every);
    if (n < 1) n = 1;
    c.sync_every = n;
    return c;
  }
};

// ----------------------------------------------------------- wal framing --

inline constexpr uint32_t kWalMagic = 0x4C415750;  // "PWAL"
inline constexpr size_t kWalHeaderBytes = 4 + 8 + 4 + 4;
inline constexpr size_t kWalMaxRecord = size_t{64} << 20;

inline std::string wal_segment_name(uint64_t start_seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%016llx.log",
                static_cast<unsigned long long>(start_seq));
  return buf;
}

// Parses "wal-<16 hex>.log"; returns false for anything else.
inline bool parse_wal_segment_name(const std::string& name, uint64_t* seq) {
  if (name.size() != 24 || name.rfind("wal-", 0) != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 20; i++) {
    char ch = name[i];
    uint64_t d;
    if (ch >= '0' && ch <= '9') {
      d = static_cast<uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      d = static_cast<uint64_t>(ch - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *seq = v;
  return true;
}

// Sorted (by first seq) wal segments present in dir.
inline std::vector<std::pair<uint64_t, std::string>> wal_segments(
    file_system& fs, const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const std::string& name : fs.list(dir)) {
    uint64_t s;
    if (parse_wal_segment_name(name, &s)) out.emplace_back(s, name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// -------------------------------------------------------------- wal_writer --

class wal_writer {
 public:
  // Opens for appending at `next_seq`: resumes the newest existing segment
  // in `dir` if there is one (recovery repaired its tail first), otherwise
  // starts a fresh segment named after next_seq.
  wal_writer(std::shared_ptr<file_system> fs, std::string dir, wal_config cfg,
             uint64_t next_seq)
      : fs_(std::move(fs)), dir_(std::move(dir)), cfg_(cfg) {
    unique_guard lock(mu_);
    next_seq_ = next_seq;
    auto segs = wal_segments(*fs_, dir_);
    if (!segs.empty()) {
      seg_start_ = segs.back().first;
      seg_ = fs_->open_append(dir_ + "/" + segs.back().second);
      seg_written_ = seg_->size();
    } else {
      open_fresh_segment_locked();
    }
  }

  wal_writer(const wal_writer&) = delete;
  wal_writer& operator=(const wal_writer&) = delete;

  // Append one record; returns its seq, or 0 when the writer is dead (the
  // record was NOT logged — the caller's batch is unacked by definition).
  // Group fsync: the record is durable when this returns only if the
  // configured sync cadence (or an explicit sync()) says so.
  uint64_t append(const void* payload, size_t n) PAM_EXCLUDES(mu_) {
    unique_guard lock(mu_);
    if (dead_) return 0;
    return append_locked(payload, n);
  }

  // Durability barrier: every appended record is on the medium when this
  // returns (no-op once dead; the caller sees durable_seq() unchanged).
  void sync() PAM_EXCLUDES(mu_) {
    unique_guard lock(mu_);
    if (dead_) return;
    sync_locked();
  }

  // The segment-handle protocol, exposed for the durability manager (and
  // pinned by tests/compile_fail/wal_append_unlocked.cpp): seg_ is only
  // valid under mu_ — rotation closes and replaces the handle, so an
  // unlocked append could write into a closed segment file. Clang's
  // thread-safety analysis rejects any call made without the lock.
  uint64_t append_locked(const void* payload, size_t n) PAM_REQUIRES(mu_) {
    obs::span append_span("wal.append");
    obs::scoped_timer append_timer(append_ns_);
    try {
      if (seg_written_ >= cfg_.segment_bytes) rotate_locked();
      std::vector<char> rec;
      rec.reserve(kWalHeaderBytes + n);
      wire::put_u32(rec, kWalMagic);
      uint64_t seq = next_seq_;
      wire::put_u64(rec, seq);
      wire::put_u32(rec, static_cast<uint32_t>(n));
      uint32_t crc = crc32c(&seq, sizeof(seq));
      uint32_t len32 = static_cast<uint32_t>(n);
      crc = crc32c(&len32, sizeof(len32), crc);
      crc = crc32c(payload, n, crc);
      wire::put_u32(rec, crc);
      wire::put_bytes(rec, payload, n);
      seg_->append(rec.data(), rec.size());
      seg_written_ += rec.size();
      next_seq_ = seq + 1;
      last_seq_.store(seq, std::memory_order_release);
      records_total_.inc();
      bytes_total_.inc(rec.size());
      if (++appends_since_sync_ >= cfg_.sync_every) sync_locked();
      return seq;
    } catch (...) {
      dead_ = true;
      throw;
    }
  }

  void sync_locked() PAM_REQUIRES(mu_) {
    try {
      if (appends_since_sync_ == 0 &&
          durable_seq_.load(std::memory_order_relaxed) ==
              last_seq_.load(std::memory_order_relaxed)) {
        return;
      }
      obs::span sync_span("wal.sync");
      obs::scoped_timer fsync_timer(fsync_ns_);
      // Group-commit fan-in: how many appends this one fsync makes durable.
      group_commit_ops_.record(
          static_cast<uint64_t>(appends_since_sync_ > 0 ? appends_since_sync_
                                                        : 0));
      seg_->sync();
      appends_since_sync_ = 0;
      durable_seq_.store(last_seq_.load(std::memory_order_relaxed),
                         std::memory_order_release);
    } catch (...) {
      dead_ = true;
      throw;
    }
  }

  // Unlink every segment all of whose records have seq <= `seq` (they are
  // covered by a committed checkpoint). The active segment always stays.
  void truncate_through(uint64_t seq) PAM_EXCLUDES(mu_) {
    unique_guard lock(mu_);
    if (dead_) return;
    auto segs = wal_segments(*fs_, dir_);
    for (size_t i = 0; i + 1 < segs.size(); i++) {
      // Segment i spans [segs[i].first, segs[i+1].first).
      if (segs[i + 1].first <= seq + 1 && segs[i].first != seg_start_) {
        fs_->remove(dir_ + "/" + segs[i].second);
      }
    }
    fs_->sync_dir(dir_);
  }

  // Highest seq appended / proven durable. 0 = none.
  uint64_t last_seq() const {
    return last_seq_.load(std::memory_order_acquire);
  }
  uint64_t durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }

  // True after the first I/O failure: the log is frozen, appends no-op.
  bool dead() const PAM_EXCLUDES(mu_) {
    unique_guard lock(mu_);
    return dead_;
  }

 private:
  void open_fresh_segment_locked() PAM_REQUIRES(mu_) {
    seg_start_ = next_seq_;
    seg_ = fs_->create(dir_ + "/" + wal_segment_name(next_seq_));
    seg_written_ = 0;
    fs_->sync_dir(dir_);
  }

  void rotate_locked() PAM_REQUIRES(mu_) {
    sync_locked();
    seg_.reset();
    open_fresh_segment_locked();
    appends_since_sync_ = 0;
    rotations_total_.inc();
  }

  std::shared_ptr<file_system> fs_;
  const std::string dir_;
  const wal_config cfg_;

  mutable mutex mu_;
  std::unique_ptr<file> seg_ PAM_GUARDED_BY(mu_);
  uint64_t seg_start_ PAM_GUARDED_BY(mu_) = 0;
  uint64_t seg_written_ PAM_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ PAM_GUARDED_BY(mu_) = 1;
  long appends_since_sync_ PAM_GUARDED_BY(mu_) = 0;
  bool dead_ PAM_GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> last_seq_{0};
  std::atomic<uint64_t> durable_seq_{0};

  // Registry-backed instrumentation (PR 9); per-instance members, summed at
  // scrape across writers. Recording happens under mu_, so the histograms'
  // striping is idle here — what matters is that scrapes never take mu_.
  obs::histogram append_ns_{"pam_wal_append_ns"};
  obs::histogram fsync_ns_{"pam_wal_fsync_ns"};
  obs::histogram group_commit_ops_{"pam_wal_group_commit_ops"};
  obs::counter records_total_{"pam_wal_records_total"};
  obs::counter bytes_total_{"pam_wal_bytes_total"};
  obs::counter rotations_total_{"pam_wal_rotations_total"};
};

// ------------------------------------------------------------ wal replay --

struct wal_replay_stats {
  uint64_t next_seq = 1;        // seq the writer should assign next
  uint64_t records = 0;         // valid records delivered
  bool tail_truncated = false;  // a torn/short/corrupt tail was cut
};

// Scan every record after `after_seq` in seq order, calling
// fn(seq, payload, len) for each. Stops at the first invalid record; with
// repair=true the bad tail is physically truncated and any later segments
// are unlinked, leaving the directory ready for a resuming wal_writer.
// Records with seq <= after_seq are validated and skipped (a checkpoint
// may cover a prefix of a segment that cannot be unlinked whole).
//
// Contiguity holds across segment boundaries too: a segment whose first
// seq jumps past the next seq recovery still needs (a lost or manually
// deleted middle segment) is corruption, not splice material — replay
// stops there exactly like a bad record. A boundary gap lying entirely
// within the covered prefix (every missing seq <= after_seq) is tolerated,
// since nothing the checkpoint chain needs is absent.
template <typename Fn>
wal_replay_stats wal_replay(file_system& fs, const std::string& dir,
                            uint64_t after_seq, Fn&& fn, bool repair) {
  wal_replay_stats st;
  auto segs = wal_segments(fs, dir);
  // The next seq replay must deliver: starts right past the covered
  // prefix, advances only on delivery. Any segment starting beyond it has
  // a hole in needed history in front of it.
  uint64_t next_needed = after_seq + 1;
  bool stopped = false;
  for (size_t si = 0; si < segs.size(); si++) {
    const std::string path = dir + "/" + segs[si].second;
    if (!stopped && segs[si].first > next_needed) {
      st.tail_truncated = true;  // broken seq chain at a segment boundary
      stopped = true;
    }
    if (stopped) {
      if (repair) fs.remove(path);
      continue;
    }
    uint64_t expect = segs[si].first;
    std::unique_ptr<file> f = fs.open_read(path);
    uint64_t fsize = f->size();
    std::vector<char> buf(fsize);
    if (fsize > 0 && f->read_at(0, buf.data(), buf.size()) != fsize) {
      throw io_error("wal segment shrank mid-read: " + path);
    }
    size_t off = 0;
    size_t good = 0;
    while (off + kWalHeaderBytes <= fsize) {
      wire::reader r(buf.data() + off, fsize - off);
      uint32_t magic = r.u32();
      uint64_t seq = r.u64();
      uint32_t len = r.u32();
      uint32_t crc = r.u32();
      if (magic != kWalMagic || len > kWalMaxRecord ||
          r.remaining() < len || seq != expect) {
        break;
      }
      const char* payload = r.skip(len);
      uint32_t actual = crc32c(&seq, sizeof(seq));
      actual = crc32c(&len, sizeof(len), actual);
      actual = crc32c(payload, len, actual);
      if (actual != crc) break;
      // The in-segment chain starts at first <= next_needed and steps by
      // one, so seq can never jump past next_needed — records below it are
      // covered (or already delivered by an earlier segment) and skipped.
      if (seq >= next_needed) {
        fn(seq, payload, size_t{len});
        st.records++;
        next_needed = seq + 1;
      }
      off += kWalHeaderBytes + len;
      good = off;
      expect = seq + 1;
    }
    if (good < fsize) {
      st.tail_truncated = true;
      stopped = true;  // everything after the first bad record is dropped
      if (repair) {
        f.reset();
        std::unique_ptr<file> w = fs.open_append(path);
        w->truncate(good);
        w->sync();
      }
    }
  }
  st.next_seq = next_needed;
  if (repair && !segs.empty()) fs.sync_dir(dir);
  return st;
}

}  // namespace pam::store
