// pam::obs exposition — render a registry scrape as Prometheus text format
// or as a single JSON object. Both operate on a registry_snapshot, so they
// work identically (producing empty documents) when PAM_METRICS=0.
//
//   obs::prometheus_text(obs::registry::get().scrape(), std::cout);
//   obs::metrics_json(obs::registry::get().scrape(), std::cout);
//
// Prometheus text: counters and gauges render as `name{label} value`;
// histograms render as the conventional `_count` / `_sum` series plus
// quantile series (`name{quantile="0.5"} v`) in summary style — the
// log-bucket layout is an implementation detail we do not expose.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace pam::obs {

namespace export_internal {

// `label` is stored as 'key="value"'; wrap for the exposition, merging with
// an extra label when both are present.
inline std::string braced(const std::string& label, const std::string& extra = "") {
  if (label.empty() && extra.empty()) return "";
  if (label.empty()) return "{" + extra + "}";
  if (extra.empty()) return "{" + label + "}";
  return "{" + label + "," + extra + "}";
}

inline void json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace export_internal

inline void prometheus_text(const registry_snapshot& snap, std::ostream& os) {
  using export_internal::braced;
  for (const auto& c : snap.counters) {
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << braced(c.label) << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << braced(g.label) << " " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    os << "# TYPE " << h.name << " summary\n";
    os << h.name << braced(h.label, "quantile=\"0.5\"") << " " << h.p50 << "\n";
    os << h.name << braced(h.label, "quantile=\"0.99\"") << " " << h.p99
       << "\n";
    os << h.name << braced(h.label, "quantile=\"0.999\"") << " " << h.p999
       << "\n";
    os << h.name << "_count" << braced(h.label) << " " << h.count << "\n";
    os << h.name << "_sum" << braced(h.label) << " " << h.sum << "\n";
  }
}

inline void metrics_json(const registry_snapshot& snap, std::ostream& os) {
  using export_internal::json_escaped;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escaped(os, c.label.empty() ? c.name : c.name + "{" + c.label + "}");
    os << "\":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escaped(os, g.label.empty() ? g.name : g.name + "{" + g.label + "}");
    os << "\":" << g.value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escaped(os, h.label.empty() ? h.name : h.name + "{" + h.label + "}");
    os << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << h.p50 << ",\"p99\":" << h.p99 << ",\"p999\":" << h.p999
       << "}";
  }
  os << "}}\n";
}

}  // namespace pam::obs
