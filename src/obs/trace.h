// pam::obs tracing — fixed-capacity per-thread event rings and RAII scoped
// spans, dumpable as Chrome-trace JSON (chrome://tracing / Perfetto).
//
// A span is two timestamps and a name:
//
//   { obs::span s("wal.sync"); seg_->sync(); }   // records [t0, t1)
//
// Each thread owns a ring of kDefaultRing completed spans (override with
// PAM_TRACE_RING); when the ring wraps, the oldest spans are overwritten —
// tracing is a flight recorder, not a log. Recording is wait-free and
// thread-local: a span's destructor writes one slot of its own thread's
// ring, no atomics, no sharing. The only cross-thread traffic is (a) ring
// registration, once per thread, under a mutex, and (b) dump_chrome_json,
// which locks each ring briefly while copying it out.
//
// Runtime gate: spans record only when tracing is enabled — either
// PAM_TRACE=1 in the environment (read once) or trace::set_enabled(true).
// Disabled spans skip the clock reads entirely, so always-on span sites in
// the serving stack cost two predictable branches.
//
// Compile-time gate: like metrics.h, building with -DPAM_METRICS=0 turns
// span into an empty type and the dump into a no-op, in a distinct inline
// namespace so mixed builds stay ODR-clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace pam::obs {

#if PAM_METRICS

inline namespace metrics_on {

struct trace_event {
  const char* name = nullptr;  // static string — span names are literals
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

namespace trace_internal {

inline constexpr size_t kDefaultRing = 4096;

struct ring {
  explicit ring(uint32_t tid_, size_t cap) : tid(tid_) { events.resize(cap); }

  uint32_t tid;
  mutable mutex mu;
  std::vector<trace_event> events PAM_GUARDED_BY(mu);  // capacity-sized
  size_t next PAM_GUARDED_BY(mu) = 0;                  // monotone write index
};

struct ring_list {
  // Immortal, same reasoning as registry::get: thread-local ring owners may
  // be torn down in any order, and dump can run from atexit paths.
  static ring_list& get() {
    // pam-lint: allow(naked-new) — immortal process-wide singleton, rings
    // are never reclaimed (threads are few and rings are bounded).
    static ring_list* rl = new ring_list();
    return *rl;
  }

  ring& ring_for_this_thread() PAM_EXCLUDES(mu) {
    thread_local ring* mine = nullptr;
    if (mine == nullptr) {
      mutex_guard lock(mu);
      // pam-lint: allow(naked-new) — ring lives in the immortal list.
      mine = new ring(next_tid++, ring_capacity());
      rings.push_back(mine);
    }
    return *mine;
  }

  static size_t ring_capacity() {
    static size_t cap = [] {
      const char* s = std::getenv("PAM_TRACE_RING");
      if (s != nullptr) {
        long v = std::atol(s);
        if (v > 0) return static_cast<size_t>(v);
      }
      return kDefaultRing;
    }();
    return cap;
  }

  mutex mu;
  std::vector<ring*> rings PAM_GUARDED_BY(mu);
  uint32_t next_tid PAM_GUARDED_BY(mu) = 0;
};

}  // namespace trace_internal

// Runtime enable switch: PAM_TRACE=1 seeds it, set_enabled overrides.
inline std::atomic<bool>& trace_enabled_flag() {
  static std::atomic<bool> on = [] {
    const char* s = std::getenv("PAM_TRACE");
    return s != nullptr && s[0] == '1';
  }();
  return on;
}

inline bool trace_enabled() {
  return trace_enabled_flag().load(std::memory_order_relaxed);
}

inline void set_trace_enabled(bool on) {
  trace_enabled_flag().store(on, std::memory_order_relaxed);
}

// Record a completed span directly (what ~span does; exposed for tests and
// for call sites that already hold both timestamps).
inline void record_span(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  auto& r = trace_internal::ring_list::get().ring_for_this_thread();
  mutex_guard lock(r.mu);
  r.events[r.next % r.events.size()] = {name, start_ns, dur_ns};
  r.next++;
}

// RAII scoped span. `name` must be a string literal (or otherwise outlive
// the dump) — rings store the pointer, not a copy.
class span {
 public:
  explicit span(const char* name)
      : name_(trace_enabled() ? name : nullptr),
        t0_(name_ != nullptr ? now_ns() : 0) {}
  ~span() {
    if (name_ != nullptr) record_span(name_, t0_, now_ns() - t0_);
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  const char* name_;
  uint64_t t0_;
};

// Dump every thread's ring as one Chrome-trace JSON document
// ({"traceEvents":[...]} with "ph":"X" complete events, microsecond units).
// Oldest-to-newest within each ring; wrapped-over slots are gone by design.
inline void dump_chrome_json(std::ostream& os) {
  auto& rl = trace_internal::ring_list::get();
  std::vector<trace_internal::ring*> rings;
  {
    mutex_guard lock(rl.mu);
    rings = rl.rings;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (trace_internal::ring* r : rings) {
    std::vector<trace_event> events;
    size_t next = 0;
    {
      mutex_guard lock(r->mu);
      events = r->events;
      next = r->next;
    }
    size_t cap = events.size();
    size_t n = next < cap ? next : cap;
    size_t begin = next < cap ? 0 : next % cap;
    for (size_t i = 0; i < n; i++) {
      const trace_event& e = events[(begin + i) % cap];
      if (e.name == nullptr) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << r->tid << ",\"ts\":" << (e.start_ns / 1000) << "."
         << (e.start_ns % 1000) << ",\"dur\":" << (e.dur_ns / 1000) << "."
         << (e.dur_ns % 1000) << "}";
    }
  }
  os << "]}\n";
}

// Total completed spans across all rings (test hook; counts wrapped-over
// spans too since `next` is monotone).
inline uint64_t trace_span_count() {
  auto& rl = trace_internal::ring_list::get();
  std::vector<trace_internal::ring*> rings;
  {
    mutex_guard lock(rl.mu);
    rings = rl.rings;
  }
  uint64_t total = 0;
  for (trace_internal::ring* r : rings) {
    mutex_guard lock(r->mu);
    total += r->next;
  }
  return total;
}

}  // namespace metrics_on

#else  // PAM_METRICS == 0

inline namespace metrics_off {

class span {
 public:
  explicit span(const char*) {}
};

inline bool trace_enabled() { return false; }
inline void set_trace_enabled(bool) {}
inline void record_span(const char*, uint64_t, uint64_t) {}
inline void dump_chrome_json(std::ostream& os) {
  os << "{\"traceEvents\":[]}\n";
}
inline uint64_t trace_span_count() { return 0; }

}  // namespace metrics_off

#endif  // PAM_METRICS

}  // namespace pam::obs
