// pam::obs — the metrics layer: named counters, gauges, and log-bucketed
// latency histograms behind one process-wide registry.
//
// Design, in one breath: recording must cost (almost) nothing on the paths
// the paper's asymptotic claims are about, so every counter and histogram
// cell is striped across cache lines by a hashed thread id — the same idiom
// block_pool uses for its live counters (alloc/arena.h) — and a recording
// site is one relaxed fetch_add on the calling thread's stripe: wait-free,
// no CAS loop, no shared hot line. All cross-stripe work (summing, bucket
// merging, quantile estimation) happens on the scrape path, under the
// registry mutex, where nobody is latency-sensitive.
//
//   obs::counter ops{"pam_combiner_ops_enqueued_total"};   // registers
//   ops.inc();                                             // wait-free
//   auto snap = obs::registry::get().scrape();             // merged view
//
// Instances vs. names: a metric object registers itself under its name (plus
// an optional Prometheus-style label) on construction and unregisters on
// destruction. Two live instances with the same (name, label) — e.g. the
// combiners of two kv_stores — are summed at scrape time, so the exposition
// aggregates across instances exactly like Prometheus aggregates across
// processes, while each owner can still read its own instance exactly
// (write_combiner::stats is such a per-instance view).
//
// Histograms are log-bucketed nanosecond recorders: values below 8 get exact
// buckets, larger values get 8 sub-buckets per power of two (<= 12.5%
// relative quantile error), capped at 2^40 ns (~18 minutes) with one
// overflow bucket. p50/p99/p999 are estimated by linear interpolation inside
// the winning bucket of the merged distribution.
//
// Compile-time switch: building with -DPAM_METRICS=0 replaces every type in
// this header (and obs/trace.h) with an empty no-op — recording sites
// compile to nothing, verified by static_asserts in tests/test_obs_off.cpp.
// The on/off variants live in distinct inline namespaces so a mixed build
// (one TU off, the rest on) cannot silently violate the ODR. With metrics
// off, stats surfaces that are views over registry counters (e.g.
// write_combiner::stats) read as zero — the trade documented in DESIGN.md.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

#ifndef PAM_METRICS
#define PAM_METRICS 1
#endif

namespace pam::obs {

inline constexpr bool kEnabled = (PAM_METRICS != 0);

// ------------------------------------------------------- scrape value types --
// Shared by both modes: export.h formats these, and an off-mode scrape is
// simply empty.

struct counter_value {
  std::string name;
  std::string label;  // 'key="value"' or empty
  uint64_t value = 0;
};

struct gauge_value {
  std::string name;
  std::string label;
  int64_t value = 0;
};

struct histogram_value {
  std::string name;
  std::string label;
  uint64_t count = 0;
  uint64_t sum = 0;  // of recorded values (ns, bytes, ...)
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

struct registry_snapshot {
  std::vector<counter_value> counters;
  std::vector<gauge_value> gauges;
  std::vector<histogram_value> histograms;
};

#if PAM_METRICS

inline namespace metrics_on {

// Nanoseconds on the monotonic clock — the time base every histogram and
// trace span records in.
inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The hashed-stripe id, block_pool::stripe_of's idiom without the scheduler
// dependency (this header must stay includable from parallel/scheduler.h):
// every thread — worker or foreign — draws a sequential id on first use and
// a Fibonacci hash spreads the ids over the stripes. The 64-bit cast keeps
// the multiply wrap-free under -fsanitize=integer.
inline size_t stripe_id() {
  static std::atomic<uint32_t> next{0};
  static thread_local uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<size_t>(id) * 2654435761u >> 16;
}

enum class metric_kind : uint8_t { counter, gauge, histogram };

class registry;

// Intrusive registration node. Registration happens at the END of the
// derived constructor (never here), so a concurrent scrape can only observe
// fully-constructed cells; deregistration happens at the START of the
// derived destructor under the same registry mutex scrape holds.
class metric {
 public:
  metric(const metric&) = delete;
  metric& operator=(const metric&) = delete;

  const std::string& name() const { return name_; }
  const std::string& label() const { return label_; }
  metric_kind kind() const { return kind_; }

 protected:
  metric(const char* name, std::string label, metric_kind kind)
      : name_(name), label_(std::move(label)), kind_(kind) {}
  ~metric() = default;

 private:
  std::string name_;
  std::string label_;
  metric_kind kind_;
};

class counter;
class gauge;
class histogram;

// The process-wide metric directory. add/remove are cold (object
// construction); scrape walks every registered metric under the mutex and
// merges instances that share (kind, name, label). Recording never touches
// the registry at all — the mutex fences membership, not the cells.
class registry {
 public:
  // Immortal, like every process-wide singleton in this tree (scheduler,
  // epoch state): metrics owned by static-storage objects may unregister
  // during static destruction, so the registry must outlive them all.
  static registry& get() {
    // pam-lint: allow(naked-new) — immortal process-wide singleton, never
    // reclaimed by design (see scheduler::get).
    static registry* r = new registry();
    return *r;
  }

  void add(const metric* m) PAM_EXCLUDES(mu_) {
    mutex_guard lock(mu_);
    metrics_.push_back(m);
  }

  void remove(const metric* m) PAM_EXCLUDES(mu_) {
    mutex_guard lock(mu_);
    metrics_.erase(std::remove(metrics_.begin(), metrics_.end(), m),
                   metrics_.end());
  }

  // Merged view of every live metric, sorted by (name, label). Defined
  // after counter/gauge/histogram below.
  registry_snapshot scrape() const PAM_EXCLUDES(mu_);

 private:
  registry() = default;

  mutable mutex mu_;
  std::vector<const metric*> metrics_ PAM_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------- counter --

// Monotone event count. inc() is wait-free: one relaxed fetch_add on the
// calling thread's stripe. value() sums the stripes (exact once writers
// quiesce; monotone under load since every stripe is monotone).
class counter : public metric {
 public:
  explicit counter(const char* name, std::string label = "")
      : metric(name, std::move(label), metric_kind::counter) {
    registry::get().add(this);
  }
  ~counter() { registry::get().remove(this); }

  void inc(uint64_t n = 1) {
    cells_[stripe_id() % kStripes].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t total = 0;
    for (const cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kStripes = 64;
  struct alignas(64) cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<cell, kStripes> cells_{};
};

// ------------------------------------------------------------------ gauge --

// A settable level (queue depth, limbo depth, reserved bytes). One atomic:
// gauges sit on maintenance/flush paths, not per-op hot paths — anything
// per-op should be two counters whose difference is the level.
class gauge : public metric {
 public:
  explicit gauge(const char* name, std::string label = "")
      : metric(name, std::move(label), metric_kind::gauge) {
    registry::get().add(this);
  }
  ~gauge() { registry::get().remove(this); }

  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// -------------------------------------------------------------- histogram --

// Log-bucketed distribution recorder. record() is wait-free: two relaxed
// fetch_adds (bucket count + running sum) on the calling thread's stripe.
class histogram : public metric {
 public:
  // 8 exact buckets for values < 8, then 8 sub-buckets per power of two up
  // to 2^40 (~18 min in ns), one overflow bucket at the top. Relative
  // quantile error is bounded by the sub-bucket width: 1/8 = 12.5%.
  static constexpr int kSubBits = 3;
  static constexpr uint64_t kSub = uint64_t{1} << kSubBits;
  static constexpr int kMaxOctave = 40;
  static constexpr size_t kBuckets =
      static_cast<size_t>(kSub) +
      static_cast<size_t>(kMaxOctave - kSubBits) * static_cast<size_t>(kSub);

  explicit histogram(const char* name, std::string label = "")
      : metric(name, std::move(label), metric_kind::histogram) {
    registry::get().add(this);
  }
  ~histogram() { registry::get().remove(this); }

  void record(uint64_t v) {
    stripe& s = stripes_[stripe_id() % kStripes];
    s.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const stripe& s : stripes_) {
      for (const auto& c : s.counts) {
        total += c.load(std::memory_order_relaxed);
      }
    }
    return total;
  }

  uint64_t sum() const {
    uint64_t total = 0;
    for (const stripe& s : stripes_) {
      total += s.sum.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Merge the stripes into one bucket array (the scrape-side representation
  // every estimate is computed from).
  std::array<uint64_t, kBuckets> merged() const {
    std::array<uint64_t, kBuckets> out{};
    for (const stripe& s : stripes_) {
      for (size_t b = 0; b < kBuckets; b++) {
        out[b] += s.counts[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  double quantile(double q) const { return quantile_from(merged(), q); }

  // q in [0, 1] over a merged bucket array: find the bucket holding the
  // rank-q sample and interpolate linearly inside its [lo, hi) value range.
  static double quantile_from(const std::array<uint64_t, kBuckets>& buckets,
                              double q) {
    uint64_t total = 0;
    for (uint64_t c : buckets) total += c;
    if (total == 0) return 0.0;
    double rank = q * static_cast<double>(total);
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; b++) {
      if (buckets[b] == 0) continue;
      uint64_t next = seen + buckets[b];
      if (static_cast<double>(next) >= rank) {
        auto [lo, hi] = bucket_bounds(b);
        double within =
            (rank - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
        return static_cast<double>(lo) +
               within * static_cast<double>(hi - lo);
      }
      seen = next;
    }
    auto [lo, hi] = bucket_bounds(kBuckets - 1);
    (void)lo;
    return static_cast<double>(hi);
  }

  // [lo, hi) of values landing in bucket idx.
  static std::pair<uint64_t, uint64_t> bucket_bounds(size_t idx) {
    if (idx < kSub) return {idx, idx + 1};
    size_t g = idx - static_cast<size_t>(kSub);
    int o = kSubBits + static_cast<int>(g / kSub);
    uint64_t sub = g % kSub;
    uint64_t lo = (uint64_t{1} << o) + (sub << (o - kSubBits));
    uint64_t hi = lo + (uint64_t{1} << (o - kSubBits));
    return {lo, hi};
  }

  static size_t bucket_of(uint64_t v) {
    if (v < kSub) return static_cast<size_t>(v);
    int o = 63 - std::countl_zero(v);
    if (o >= kMaxOctave) return kBuckets - 1;
    uint64_t sub = (v >> (o - kSubBits)) & (kSub - 1);
    return static_cast<size_t>(kSub) +
           static_cast<size_t>(o - kSubBits) * static_cast<size_t>(kSub) +
           static_cast<size_t>(sub);
  }

 private:
  // Fewer stripes than counters: a histogram stripe is ~2.4KB of buckets,
  // and histograms sit on flush/fsync paths, not per-op read paths.
  static constexpr size_t kStripes = 8;
  struct stripe {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<stripe, kStripes> stripes_{};
};

// ------------------------------------------------------------ scoped_timer --

// RAII nanosecond timer: records the scope's duration into a histogram on
// destruction.
class scoped_timer {
 public:
  explicit scoped_timer(histogram& h) : h_(h), t0_(now_ns()) {}
  ~scoped_timer() { h_.record(now_ns() - t0_); }
  scoped_timer(const scoped_timer&) = delete;
  scoped_timer& operator=(const scoped_timer&) = delete;

 private:
  histogram& h_;
  uint64_t t0_;
};

// ----------------------------------------------------------------- scrape --

inline registry_snapshot registry::scrape() const {
  mutex_guard lock(mu_);
  registry_snapshot out;
  using key_t = std::pair<std::string, std::string>;
  std::map<key_t, uint64_t> counters;
  std::map<key_t, int64_t> gauges;
  std::map<key_t, std::pair<std::array<uint64_t, histogram::kBuckets>,
                            uint64_t>>
      histograms;  // merged buckets + sum
  for (const metric* m : metrics_) {
    key_t key{m->name(), m->label()};
    switch (m->kind()) {
      case metric_kind::counter:
        counters[key] += static_cast<const counter*>(m)->value();
        break;
      case metric_kind::gauge:
        gauges[key] += static_cast<const gauge*>(m)->value();
        break;
      case metric_kind::histogram: {
        const auto* h = static_cast<const histogram*>(m);
        auto& slot = histograms[key];
        auto merged = h->merged();
        for (size_t b = 0; b < histogram::kBuckets; b++) {
          slot.first[b] += merged[b];
        }
        slot.second += h->sum();
        break;
      }
    }
  }
  for (const auto& [key, v] : counters) {
    out.counters.push_back({key.first, key.second, v});
  }
  for (const auto& [key, v] : gauges) {
    out.gauges.push_back({key.first, key.second, v});
  }
  for (const auto& [key, bs] : histograms) {
    histogram_value hv;
    hv.name = key.first;
    hv.label = key.second;
    for (uint64_t c : bs.first) hv.count += c;
    hv.sum = bs.second;
    hv.p50 = histogram::quantile_from(bs.first, 0.5);
    hv.p99 = histogram::quantile_from(bs.first, 0.99);
    hv.p999 = histogram::quantile_from(bs.first, 0.999);
    out.histograms.push_back(std::move(hv));
  }
  return out;
}

}  // namespace metrics_on

#else  // PAM_METRICS == 0

// Every recording type becomes an empty no-op: a member of one of these
// types contributes no storage ([[no_unique_address]] at use sites is not
// even needed — tests static_assert std::is_empty), and calls inline away.
inline namespace metrics_off {

inline uint64_t now_ns() { return 0; }
inline size_t stripe_id() { return 0; }

class counter {
 public:
  explicit counter(const char*, std::string = {}) {}
  void inc(uint64_t = 1) const {}
  uint64_t value() const { return 0; }
};

class gauge {
 public:
  explicit gauge(const char*, std::string = {}) {}
  void set(int64_t) const {}
  void add(int64_t) const {}
  int64_t value() const { return 0; }
};

class histogram {
 public:
  explicit histogram(const char*, std::string = {}) {}
  void record(uint64_t) const {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  double quantile(double) const { return 0.0; }
};

class scoped_timer {
 public:
  explicit scoped_timer(histogram&) {}
};

class registry {
 public:
  static registry& get() {
    static registry r;
    return r;
  }
  registry_snapshot scrape() const { return {}; }
};

}  // namespace metrics_off

#endif  // PAM_METRICS

}  // namespace pam::obs
