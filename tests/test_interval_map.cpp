// Tests for the interval-tree application (paper Section 5.1) against a
// brute-force scan oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "apps/interval_map.h"
#include "util/random.h"

namespace {

using imap = pam::interval_map<double>;
using interval = imap::interval;

std::vector<interval> random_intervals(size_t n, uint64_t seed, double span,
                                       double max_len) {
  std::vector<interval> xs(n);
  pam::random_gen g(seed);
  for (auto& x : xs) {
    double l = g.next_double() * span;
    double len = g.next_double() * max_len;
    x = {l, l + len};
  }
  return xs;
}

bool brute_stab(const std::vector<interval>& xs, double p) {
  for (auto& [l, r] : xs)
    if (l <= p && p <= r) return true;
  return false;
}

std::vector<interval> brute_report(const std::vector<interval>& xs, double p) {
  std::vector<interval> out;
  for (auto& x : xs)
    if (x.first <= p && p <= x.second) out.push_back(x);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IntervalMap, EmptyMapStabsNothing) {
  imap m;
  EXPECT_FALSE(m.stab(0.0));
  EXPECT_TRUE(m.report_all(0.0).empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(IntervalMap, SingleInterval) {
  imap m(std::vector<interval>{{1.0, 3.0}});
  EXPECT_TRUE(m.stab(1.0));   // closed on the left
  EXPECT_TRUE(m.stab(2.0));
  EXPECT_TRUE(m.stab(3.0));   // closed on the right
  EXPECT_FALSE(m.stab(0.999));
  EXPECT_FALSE(m.stab(3.001));
}

TEST(IntervalMap, StabMatchesBruteForceRandomized) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    auto xs = random_intervals(2000, seed, 1000.0, 5.0);
    imap m(xs);
    ASSERT_TRUE(m.check_valid());
    pam::random_gen g(seed * 100);
    for (int q = 0; q < 2000; q++) {
      double p = g.next_double() * 1100.0 - 50.0;
      ASSERT_EQ(m.stab(p), brute_stab(xs, p)) << "p=" << p;
    }
  }
}

TEST(IntervalMap, ReportAllMatchesBruteForce) {
  auto xs = random_intervals(3000, 7, 500.0, 20.0);
  imap m(xs);
  pam::random_gen g(70);
  for (int q = 0; q < 300; q++) {
    double p = g.next_double() * 500.0;
    auto got = m.report_all(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, brute_report(xs, p)) << "p=" << p;
  }
}

TEST(IntervalMap, DuplicateLeftEndpointsCoexist) {
  imap m(std::vector<interval>{{1.0, 2.0}, {1.0, 5.0}, {1.0, 9.0}});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.report_all(4.0).size(), 2u);
  EXPECT_EQ(m.report_all(1.5).size(), 3u);
  EXPECT_EQ(m.report_all(7.0).size(), 1u);
}

TEST(IntervalMap, DynamicInsertRemove) {
  std::vector<interval> xs;
  imap m;
  pam::random_gen g(11);
  for (int i = 0; i < 500; i++) {
    double l = g.next_double() * 100.0;
    interval x = {l, l + g.next_double() * 10.0};
    m.insert(x);
    xs.push_back(x);
  }
  EXPECT_EQ(m.size(), xs.size());
  // remove a random half
  for (int i = 0; i < 250; i++) {
    size_t j = g.next_bounded(xs.size());
    m.remove(xs[j]);
    xs.erase(xs.begin() + static_cast<long>(j));
  }
  EXPECT_EQ(m.size(), xs.size());
  ASSERT_TRUE(m.check_valid());
  for (int q = 0; q < 500; q++) {
    double p = g.next_double() * 110.0;
    ASSERT_EQ(m.stab(p), brute_stab(xs, p));
  }
}

TEST(IntervalMap, PointIntervals) {
  // Degenerate [p, p] intervals must stab exactly their point.
  imap m(std::vector<interval>{{5.0, 5.0}, {7.0, 7.0}});
  EXPECT_TRUE(m.stab(5.0));
  EXPECT_TRUE(m.stab(7.0));
  EXPECT_FALSE(m.stab(6.0));
  EXPECT_EQ(m.count_stab(5.0), 1u);
}

TEST(IntervalMap, NestedAndOverlappingIntervals) {
  imap m(std::vector<interval>{{0.0, 100.0}, {10.0, 20.0}, {15.0, 17.0}, {50.0, 60.0}});
  EXPECT_EQ(m.count_stab(16.0), 3u);
  EXPECT_EQ(m.count_stab(55.0), 2u);
  EXPECT_EQ(m.count_stab(99.0), 1u);
  EXPECT_FALSE(m.stab(101.0));
}

TEST(IntervalMap, LargeParallelBuild) {
  auto xs = random_intervals(200000, 21, 1e6, 100.0);
  imap m(xs);
  EXPECT_EQ(m.size(), xs.size());
  ASSERT_TRUE(m.check_valid());
  pam::random_gen g(22);
  for (int q = 0; q < 100; q++) {
    double p = g.next_double() * 1e6;
    ASSERT_EQ(m.stab(p), brute_stab(xs, p));
  }
}

}  // namespace

// --- additions: dynamic differential fuzz and integer coordinates ----------
namespace {

TEST(IntervalMap, DynamicDifferentialFuzz) {
  // Interleave inserts, removes, stabs and report_alls against a vector
  // oracle across several seeds.
  for (uint64_t seed : {101ull, 202ull, 303ull}) {
    pam::random_gen g(seed);
    imap m;
    std::vector<interval> oracle;
    for (int step = 0; step < 3000; step++) {
      int op = static_cast<int>(g.next() % 10);
      if (op < 5 || oracle.empty()) {
        double l = g.next_double() * 200.0;
        interval x = {l, l + g.next_double() * 20.0};
        m.insert(x);
        oracle.push_back(x);
      } else if (op < 7) {
        size_t j = g.next_bounded(oracle.size());
        m.remove(oracle[j]);
        oracle.erase(oracle.begin() + static_cast<long>(j));
      } else if (op < 9) {
        double p = g.next_double() * 220.0 - 10.0;
        ASSERT_EQ(m.stab(p), brute_stab(oracle, p)) << "seed " << seed;
      } else {
        double p = g.next_double() * 200.0;
        auto got = m.report_all(p);
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, brute_report(oracle, p)) << "seed " << seed;
      }
    }
    ASSERT_TRUE(m.check_valid());
    ASSERT_EQ(m.size(), oracle.size());
  }
}

TEST(IntervalMap, IntegerCoordinates) {
  pam::interval_map<int64_t> m;
  m.insert({1, 5});
  m.insert({3, 3});
  m.insert({-10, -2});
  EXPECT_TRUE(m.stab(3));
  EXPECT_TRUE(m.stab(-5));
  EXPECT_FALSE(m.stab(0));
  EXPECT_FALSE(m.stab(6));
  EXPECT_EQ(m.report_all(3).size(), 2u);
}

}  // namespace
