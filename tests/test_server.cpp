// Tests for the serving layer (src/server/): sharded_map partitioning and
// consistent cuts, write_combiner batching semantics (coalescing, ordering,
// no lost updates), and the kv_store facade — including multi-threaded
// differential tests against a mutexed std::map.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "server/kv_store.h"
#include "server/sharded_map.h"
#include "server/write_combiner.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;
using map_t = pam::aug_map<pam::sum_entry<K, V>>;
using entry_t = map_t::entry_t;
using sharded_t = pam::sharded_map<map_t>;
using combiner_t = pam::write_combiner<map_t>;
using store_t = pam::kv_store<map_t>;

std::vector<entry_t> random_entries(size_t n, uint64_t seed, uint64_t range) {
  std::vector<entry_t> es(n);
  pam::random_gen g(seed);
  for (auto& e : es) e = {g.next() % range, g.next() % 1000};
  return es;
}

// ------------------------------------------------------------ sharded_map --

TEST(ShardedMap, PartitionsAndFindsLikeOneMap) {
  auto es = random_entries(20000, 1, 1u << 20);
  map_t whole(es);
  auto expect = whole.entries();

  for (size_t S : {size_t{1}, size_t{4}, size_t{16}}) {
    sharded_t sm(whole, S);
    EXPECT_LE(sm.num_shards(), S == 1 ? 1u : S);
    EXPECT_EQ(sm.size(), whole.size());
    auto snap = sm.snapshot_all();
    EXPECT_EQ(snap.entries(), expect);
    // Every shard individually valid, keys within its directory range.
    for (size_t s = 0; s < snap.num_shards(); s++) {
      const map_t& shard = snap.shard(s);
      EXPECT_TRUE(shard.check_valid());
      shard.for_each([&](K k, V) { EXPECT_EQ(sm.shard_of(k), s); });
    }
    // Point lookups agree with the unsharded map.
    pam::random_gen g(7);
    for (int i = 0; i < 2000; i++) {
      K k = g.next() % (1u << 20);
      EXPECT_EQ(sm.find(k), whole.find(k));
    }
  }
}

TEST(ShardedMap, ExplicitSplittersOwnTheRightShards) {
  sharded_t sm(std::vector<K>{100, 200, 300});
  EXPECT_EQ(sm.num_shards(), 4u);
  EXPECT_EQ(sm.shard_of(0), 0u);
  EXPECT_EQ(sm.shard_of(99), 0u);
  EXPECT_EQ(sm.shard_of(100), 1u);  // a splitter key goes right
  EXPECT_EQ(sm.shard_of(250), 2u);
  EXPECT_EQ(sm.shard_of(300), 3u);
  EXPECT_EQ(sm.shard_of(1u << 30), 3u);

  sm.insert(100, 7);
  EXPECT_EQ(sm.snapshot_shard(1).size(), 1u);
  EXPECT_EQ(sm.find(100), std::optional<V>(7));
  sm.erase(100);
  EXPECT_EQ(sm.find(100), std::nullopt);
}

TEST(ShardedMap, BulkOpsMatchStdMap) {
  sharded_t sm(std::vector<K>{1000, 2000, 3000, 4000});
  std::map<K, V> oracle;

  pam::random_gen g(3);
  for (int round = 0; round < 10; round++) {
    std::vector<entry_t> batch;
    for (int i = 0; i < 500; i++) {
      K k = g.next() % 5000;
      V v = g.next() % 1000;
      batch.push_back({k, v});
    }
    for (const auto& [k, v] : batch) oracle[k] = v;  // last wins
    sm.multi_insert(std::move(batch));

    std::vector<K> dels;
    for (int i = 0; i < 100; i++) dels.push_back(g.next() % 5000);
    for (K k : dels) oracle.erase(k);
    sm.multi_delete(std::move(dels));
  }

  auto got = sm.snapshot_all().entries();
  std::vector<entry_t> want(oracle.begin(), oracle.end());
  EXPECT_EQ(got, want);
}

TEST(ShardedMap, StitchedRangeAndAugQueries) {
  auto es = random_entries(30000, 5, 1u << 16);
  map_t whole(es);
  sharded_t sm(whole, 8);
  auto snap = sm.snapshot_all();

  pam::random_gen g(9);
  for (int i = 0; i < 200; i++) {
    K a = g.next() % (1u << 16), b = g.next() % (1u << 16);
    K lo = std::min(a, b), hi = std::max(a, b);
    // count / aug agree with the unsharded map's O(log n) queries.
    EXPECT_EQ(snap.count_range(lo, hi), whole.count_range(lo, hi));
    EXPECT_EQ(snap.aug_range(lo, hi), whole.aug_range(lo, hi));
    // stitched iteration is the in-order walk of the range.
    std::vector<entry_t> got;
    snap.for_each_range(lo, hi, [&](K k, V v) { got.push_back({k, v}); });
    std::vector<entry_t> want = whole.view(lo, hi).to_entries();
    EXPECT_EQ(got, want);
  }
  // Degenerate ranges.
  EXPECT_EQ(snap.count_range(5, 4), 0u);
  EXPECT_EQ(snap.aug_range(5, 4), V{});
}

TEST(ShardedMap, SizeAnswersFromCommitTimeCounters) {
  // size() must agree with the ground truth through every kind of commit —
  // it reads the per-shard counters snapshot_box maintains, not a snapshot.
  sharded_t sm(std::vector<K>{100, 200});
  EXPECT_EQ(sm.size(), 0u);
  sm.insert(5, 1);
  sm.insert(150, 1);
  sm.insert(250, 1);
  EXPECT_EQ(sm.size(), 3u);
  sm.insert(150, 2);  // overwrite: size unchanged
  EXPECT_EQ(sm.size(), 3u);
  sm.erase(5);
  EXPECT_EQ(sm.size(), 2u);
  sm.erase(5);  // absent: unchanged
  EXPECT_EQ(sm.size(), 2u);
  sm.multi_insert({{1, 1}, {2, 2}, {150, 3}, {300, 4}});
  EXPECT_EQ(sm.size(), 5u);
  sm.multi_delete({1, 2, 999});
  EXPECT_EQ(sm.size(), 3u);
  sm.update_shard(0, [](map_t m) { return map_t::insert(std::move(m), 7, 7); });
  EXPECT_EQ(sm.size(), 4u);
  EXPECT_EQ(sm.size(), sm.snapshot_all().size());

  // Initial distribution also seeds the counters.
  auto es = random_entries(5000, 13, 1u << 16);
  map_t whole(es);
  sharded_t sm2(whole, 8);
  EXPECT_EQ(sm2.size(), whole.size());
}

TEST(ShardedMap, SizeIsMonotoneUnderInsertOnlyWriters) {
  // Insert-only load: every cut's size is non-decreasing, so a reader that
  // ever observes a smaller value than before caught a torn counter read.
  sharded_t sm(std::vector<K>{1u << 14, 1u << 15});
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 3; w++) {
    writers.emplace_back([&, w] {
      for (K i = 0; i < 3000; i++) sm.insert(K(w) * 100000 + i, 1);
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&] {
      size_t last = 0;
      while (!stop.load()) {
        size_t s = sm.size();
        if (s < last) violations.fetch_add(1);
        last = s;
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(sm.size(), 9000u);
}

TEST(ShardedMap, CrossShardVersionVectorsNeverRegress) {
  // Concurrent writers bump shards; each reader repeatedly takes the
  // versioned cut and asserts (a) its own successive version vectors are
  // componentwise non-decreasing — cuts are totally ordered, so a regress
  // in any component is a torn cut — and (b) the cut's *contents* match its
  // version vector exactly: the writer commits value == resulting version,
  // so any mismatch means the snapshot and the counters were not taken
  // atomically. Runs under TSan in CI.
  const size_t S = 4;
  sharded_t sm(std::vector<K>{1000, 2000, 3000});
  const K probe_key[S] = {0, 1000, 2000, 3000};

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> writers;
  for (size_t s = 0; s < S; s++) {
    writers.emplace_back([&, s] {
      // Commit r writes value r at the probe key; shard version becomes r.
      for (V r = 1; r <= 2000; r++) {
        sm.update_shard(s, [&](map_t m) {
          return map_t::insert(std::move(m), probe_key[s], r);
        });
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&] {
      std::vector<uint64_t> last(S, 0);
      while (!stop.load()) {
        auto cut = sm.snapshot_all_versioned();
        for (size_t s = 0; s < S; s++) {
          if (cut.versions[s] < last[s]) violations.fetch_add(1);
          auto v = cut.snapshot.find(probe_key[s]);
          uint64_t got = v.has_value() ? *v : 0;
          if (got != cut.versions[s]) violations.fetch_add(1);
        }
        last = std::move(cut.versions);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  auto final_versions = sm.versions();
  for (size_t s = 0; s < S; s++) EXPECT_EQ(final_versions[s], 2000u);
}

TEST(ShardedMap, SnapshotAllIsAConsistentCut) {
  // A writer advances a per-shard counter key round-robin: shard 0 first,
  // then 1, ... so at every instant counter[s] is non-increasing in s and
  // spans at most two consecutive rounds. Any snapshot violating that saw a
  // torn cut.
  const size_t S = 4;
  sharded_t sm(std::vector<K>{1000, 2000, 3000});
  const K counter_key[S] = {0, 1000, 2000, 3000};
  for (size_t s = 0; s < S; s++) sm.insert(counter_key[s], 0);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (V round = 1; round <= 3000; round++) {
      for (size_t s = 0; s < S; s++) {
        sm.update_shard(s, [&](map_t m) {
          return map_t::insert(std::move(m), counter_key[s], round);
        });
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto snap = sm.snapshot_all();
        V c[S];
        for (size_t s = 0; s < S; s++) c[s] = *snap.find(counter_key[s]);
        for (size_t s = 1; s < S; s++)
          if (c[s] > c[s - 1]) violations.fetch_add(1);
        if (c[0] > c[S - 1] + 1) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(ShardedMapDifferential, ConcurrentWritersMatchMutexedStdMap) {
  // N writer threads apply random point upserts/erases; the std::map oracle
  // is updated inside the same per-shard commit section, so commit order and
  // oracle order agree. M readers concurrently validate structural
  // invariants on consistent cuts. Final state must equal the oracle.
  const int kWriters = 4, kReaders = 2, kOpsPerWriter = 4000;
  sharded_t sm(std::vector<K>{2500, 5000, 7500});
  std::map<K, V> oracle;
  std::mutex oracle_mu;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      pam::random_gen g(1000 + w);
      for (int i = 0; i < kOpsPerWriter; i++) {
        K k = g.next() % 10000;
        bool del = g.next() % 4 == 0;
        V v = g.next() % 1000;
        sm.update_shard(sm.shard_of(k), [&](map_t m) {
          {
            std::lock_guard<std::mutex> lock(oracle_mu);
            if (del) oracle.erase(k); else oracle[k] = v;
          }
          return del ? map_t::remove(std::move(m), k)
                     : map_t::insert(std::move(m), k, v);
        });
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto snap = sm.snapshot_all();
        for (size_t s = 0; s < snap.num_shards(); s++) {
          const map_t& shard = snap.shard(s);
          if (!shard.check_valid()) violations.fetch_add(1);
          // The sum augmentation over any committed version must equal the
          // sum of its entries (torn reads would break it).
          V sum = 0;
          shard.for_each([&](K, V v) { sum += v; });
          if (shard.aug_val() != sum) violations.fetch_add(1);
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  auto got = sm.snapshot_all().entries();
  std::vector<entry_t> want(oracle.begin(), oracle.end());
  EXPECT_EQ(got, want);
}

// ------------------------------------------------------------- rebalance --

TEST(ShardedMapRebalance, PolicyRepartitionsSkewAndPreservesContents) {
  // Deterministic policy check: all write traffic lands on the last shard,
  // so maybe_rebalance must install a directory whose splitters shrink the
  // hot range — without disturbing a single entry.
  map_t initial;
  for (K k = 0; k < 4000; k++) initial = map_t::insert(std::move(initial), k, k);
  sharded_t sm(std::move(initial), 4);
  ASSERT_EQ(sm.num_shards(), 4u);
  ASSERT_EQ(sm.directory_gen(), 1u);

  // Below the op floor: the policy must decline however skewed the load.
  sm.insert(3999, 1);
  EXPECT_FALSE(sm.maybe_rebalance(/*hot_ratio=*/1.5, /*min_ops=*/4096));
  EXPECT_EQ(sm.directory_gen(), 1u);

  pam::random_gen g(42);
  for (int i = 0; i < 4096; i++) {
    K k = 3000 + g.next() % 1000;  // all traffic in the last shard
    sm.insert(k, g.next() % 100);
  }
  std::map<K, V> expect;
  for (auto& [k, v] : sm.snapshot_all().entries()) expect[k] = v;

  EXPECT_TRUE(sm.maybe_rebalance(1.5, 4096));
  EXPECT_EQ(sm.directory_gen(), 2u);
  EXPECT_EQ(sm.num_shards(), 4u);
  // The hot range [3000, 4000) must now span multiple shards.
  EXPECT_GT(sm.shard_of(3999), sm.shard_of(3000));

  auto snap = sm.snapshot_all();
  ASSERT_EQ(snap.size(), expect.size());
  auto got = snap.entries();
  size_t i = 0;
  for (auto& [k, v] : expect) {
    ASSERT_EQ(got[i].first, k);
    ASSERT_EQ(got[i].second, v);
    i++;
  }
  EXPECT_TRUE(snap.merged().check_valid());
}

TEST(ShardedMapRebalance, InstallsRacingWritersLoseNoUpdates) {
  // Writers own disjoint key ranges, so each can keep a private oracle in
  // program order while rebalance_now() repartitions the directory under
  // them nonstop. Every committed write must survive every install: the
  // final merged contents must equal the union of the oracles exactly.
  const int kWriters = 4, kOps = 3000;
  sharded_t sm(std::vector<K>{100000, 200000, 300000});
  std::atomic<bool> stop{false};

  std::thread balancer([&] {
    while (!stop.load()) {
      sm.rebalance_now();
      sm.maybe_rebalance(/*hot_ratio=*/1.2, /*min_ops=*/64);
      std::this_thread::yield();
    }
  });

  std::vector<std::map<K, V>> oracles(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      pam::random_gen g(7000 + w);
      auto& oracle = oracles[w];
      for (int i = 0; i < kOps; i++) {
        K k = K(w) * 100000 + g.next() % 2000;
        if (g.next() % 5 == 0) {
          sm.erase(k);
          oracle.erase(k);
        } else {
          V v = g.next() % 100000;
          sm.insert(k, v);
          oracle[k] = v;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  balancer.join();

  // Installs actually raced the writers (the balancer ran throughout).
  EXPECT_GE(sm.directory_gen(), 2u);

  std::map<K, V> expect;
  for (auto& o : oracles) expect.insert(o.begin(), o.end());
  auto snap = sm.snapshot_all();
  EXPECT_TRUE(snap.merged().check_valid());
  auto got = snap.entries();
  std::vector<entry_t> want(expect.begin(), expect.end());
  EXPECT_EQ(got, want);
}

TEST(ShardedMapRebalance, CutsRacingInstallsKeepTheCutInvariant) {
  // The consistent-cut invariant of SnapshotAllIsAConsistentCut, with an
  // unconditional rebalancer racing the cuts: counters are advanced in key
  // order 0..3, so any cut — whatever directory generation it lands on —
  // must see c[s] non-increasing and spanning at most two rounds. Filler
  // inserts keep the entry distribution shifting so installs keep landing.
  const size_t S = 4;
  sharded_t sm(std::vector<K>{1000, 2000, 3000});
  const K counter_key[S] = {0, 1000, 2000, 3000};
  for (size_t s = 0; s < S; s++) sm.insert(counter_key[s], 0);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread balancer([&] {
    while (!stop.load()) {
      sm.rebalance_now();
      std::this_thread::yield();
    }
  });
  std::thread writer([&] {
    pam::random_gen g(9);
    for (V round = 1; round <= 2000; round++) {
      for (size_t s = 0; s < S; s++) sm.insert(counter_key[s], round);
      if (round % 8 == 0) sm.insert(4000 + g.next() % 5000, round);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto cut = sm.snapshot_all_versioned();
        if (cut.versions.size() != cut.snapshot.num_shards()) {
          violations.fetch_add(1);
          continue;
        }
        V c[S];
        bool ok = true;
        for (size_t s = 0; s < S; s++) {
          auto got = cut.snapshot.find(counter_key[s]);
          if (!got.has_value()) {
            violations.fetch_add(1);
            ok = false;
            break;
          }
          c[s] = *got;
        }
        if (!ok) continue;
        for (size_t s = 1; s < S; s++)
          if (c[s] > c[s - 1]) violations.fetch_add(1);
        if (c[0] > c[S - 1] + 1) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  balancer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(SnapshotBoxDifferential, ConcurrentPointWritersMatchMutexedStdMap) {
  // The single-box analogue: all writers serialize on one snapshot_box.
  const int kWriters = 4, kOpsPerWriter = 2500;
  pam::snapshot_box<map_t> box(map_t{});
  std::map<K, V> oracle;
  std::mutex oracle_mu;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      pam::random_gen g(2000 + w);
      for (int i = 0; i < kOpsPerWriter; i++) {
        K k = g.next() % 4000;
        bool del = g.next() % 4 == 0;
        V v = g.next() % 1000;
        box.update([&](map_t m) {
          {
            std::lock_guard<std::mutex> lock(oracle_mu);
            if (del) oracle.erase(k); else oracle[k] = v;
          }
          return del ? map_t::remove(std::move(m), k)
                     : map_t::insert(std::move(m), k, v);
        });
      }
    });
  }

  std::thread reader([&] {
    uint64_t last_version = 0;
    while (!stop.load()) {
      auto [snap, version] = box.snapshot_versioned();
      if (version < last_version) violations.fetch_add(1);
      last_version = version;
      if (!snap.check_valid()) violations.fetch_add(1);
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(box.version(), uint64_t(kWriters) * kOpsPerWriter);
  auto got = box.snapshot().entries();
  std::vector<entry_t> want(oracle.begin(), oracle.end());
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------- write_combiner --

TEST(WriteCombiner, CoalescesLastWriterWinsWithinABatch) {
  sharded_t sm(std::vector<K>{});
  {
    combiner_t wc(sm, {.batch_size = 1u << 20,
                       .flush_interval = std::chrono::milliseconds(0)});
    wc.upsert(1, 10);
    wc.erase(1);
    wc.upsert(1, 30);  // survives
    wc.upsert(2, 20);
    wc.erase(2);       // survives: 2 absent
    wc.upsert(3, 5);
    wc.upsert(3, 6);   // survives
    wc.flush_all();

    auto st = wc.stats();
    EXPECT_EQ(st.ops_enqueued, 7u);
    EXPECT_EQ(st.ops_committed, 3u);  // one survivor per distinct key
    EXPECT_EQ(st.batches_flushed, 1u);
  }
  EXPECT_EQ(sm.find(1), std::optional<V>(30));
  EXPECT_EQ(sm.find(2), std::nullopt);
  EXPECT_EQ(sm.find(3), std::optional<V>(6));
}

TEST(WriteCombiner, OrderHoldsAcrossBatchBoundaries) {
  // batch_size 1 forces every op into its own batch; the per-shard flush
  // lock must still apply them in enqueue order.
  sharded_t sm(std::vector<K>{});
  combiner_t wc(sm, {.batch_size = 1,
                     .flush_interval = std::chrono::milliseconds(0)});
  for (V v = 0; v < 100; v++) wc.upsert(42, v);
  wc.erase(42);
  wc.upsert(42, 777);
  wc.flush_all();
  EXPECT_EQ(sm.find(42), std::optional<V>(777));
}

TEST(WriteCombiner, NoLostUpdatesAcrossThreads) {
  // Each thread owns a disjoint key range and writes a deterministic final
  // value per key (several overwrites, some keys deleted). After drain,
  // every key must hold its thread's final value — a lost batch, a torn
  // swap, or reordered flushes would all surface here.
  const int kThreads = 8;
  const K kKeysPerThread = 2000;
  sharded_t sm(std::vector<K>{4000, 8000, 12000});
  {
    combiner_t wc(sm, {.batch_size = 256,
                       .flush_interval = std::chrono::milliseconds(1)});
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        K base = K(t) * kKeysPerThread;
        for (K i = 0; i < kKeysPerThread; i++) {
          K k = base + i;
          wc.upsert(k, 1);
          if (i % 3 == 0) wc.erase(k);       // deleted...
          wc.upsert(k, k + 100);             // ...then resurrected
          if (i % 5 == 0) wc.erase(k);       // final: deleted
        }
      });
    }
    for (auto& t : threads) t.join();
  }  // destructor drains

  auto snap = sm.snapshot_all();
  EXPECT_EQ(snap.size(), size_t(kThreads) * kKeysPerThread * 4 / 5);
  for (int t = 0; t < kThreads; t++) {
    K base = K(t) * kKeysPerThread;
    for (K i = 0; i < kKeysPerThread; i++) {
      K k = base + i;
      auto v = snap.find(k);
      if (i % 5 == 0) {
        ASSERT_EQ(v, std::nullopt) << "key " << k;
      } else {
        ASSERT_EQ(v, std::optional<V>(k + 100)) << "key " << k;
      }
    }
  }
}

TEST(WriteCombiner, ShutdownDrainsAndKeepsAccepting) {
  // shutdown() must commit everything enqueued before it — including ops
  // sitting in buffers the background flusher never got to — and ops issued
  // after shutdown must still land (direct path), never strand in a dead
  // buffer. This is the no-lost-updates-at-shutdown regression test.
  sharded_t sm(std::vector<K>{1000, 2000});
  combiner_t wc(sm, {.batch_size = 1u << 20,  // never overflows
                     .flush_interval = std::chrono::hours(1)});  // never ticks
  for (K k = 0; k < 500; k++) wc.upsert(k, k + 1);
  EXPECT_EQ(sm.size(), 0u);  // all buffered
  wc.shutdown();
  EXPECT_EQ(sm.size(), 500u);
  for (K k = 0; k < 500; k++) ASSERT_EQ(sm.find(k), std::optional<V>(k + 1));

  // Idempotent, and later ops commit immediately.
  wc.shutdown();
  wc.upsert(5000, 55);
  wc.erase(3);
  EXPECT_EQ(sm.find(5000), std::optional<V>(55));
  EXPECT_EQ(sm.find(3), std::nullopt);
  EXPECT_EQ(sm.size(), 500u);
  auto st = wc.stats();
  EXPECT_EQ(st.ops_enqueued, 502u);
  EXPECT_EQ(st.ops_committed, 502u);
}

TEST(WriteCombiner, ShutdownRacingEnqueuesLosesNothing) {
  // Threads enqueue while another thread shuts the combiner down midway:
  // every op acknowledged by upsert() must be committed once the combiner
  // is gone — whether it rode the final drain or the direct path.
  const int kThreads = 6;
  const K kKeysPerThread = 1500;
  sharded_t sm(std::vector<K>{3000, 6000});
  {
    combiner_t wc(sm, {.batch_size = 64,
                       .flush_interval = std::chrono::milliseconds(1)});
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        while (!go.load()) std::this_thread::yield();
        K base = K(t) * kKeysPerThread;
        for (K i = 0; i < kKeysPerThread; i++) wc.upsert(base + i, base + i + 7);
      });
    }
    std::thread closer([&] {
      while (!go.load()) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      wc.shutdown();
    });
    go.store(true);
    for (auto& t : threads) t.join();
    closer.join();
  }  // destructor: second shutdown, must be a no-op drain

  auto snap = sm.snapshot_all();
  ASSERT_EQ(snap.size(), size_t(kThreads) * kKeysPerThread);
  for (int t = 0; t < kThreads; t++) {
    K base = K(t) * kKeysPerThread;
    for (K i = 0; i < kKeysPerThread; i++)
      ASSERT_EQ(snap.find(base + i), std::optional<V>(base + i + 7))
          << "key " << base + i;
  }
}

TEST(WriteCombiner, BackgroundFlusherCommitsWithoutExplicitFlush) {
  sharded_t sm(std::vector<K>{});
  combiner_t wc(sm, {.batch_size = 1u << 20,
                     .flush_interval = std::chrono::milliseconds(1)});
  wc.upsert(9, 99);
  // Poll: the flusher thread must commit it within the deadline.
  for (int i = 0; i < 2000 && !sm.find(9).has_value(); i++)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(sm.find(9), std::optional<V>(99));
}

TEST(ShardedSnapshot, DefaultConstructedAnswersAsEmpty) {
  pam::sharded_snapshot<map_t> snap;
  EXPECT_EQ(snap.num_shards(), 0u);
  EXPECT_EQ(snap.size(), 0u);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.find(42), std::nullopt);
  EXPECT_FALSE(snap.contains(42));
  auto found = snap.multi_find({1, 2, 3});
  EXPECT_EQ(found, std::vector<std::optional<V>>(3));
  EXPECT_EQ(snap.count_range(0, 100), 0u);
  size_t visited = 0;
  snap.for_each_range(0, 100, [&](K, V) { visited++; });
  EXPECT_EQ(visited, 0u);
  EXPECT_TRUE(snap.entries().empty());
}

// --------------------------------------------------------------- kv_store --

TEST(KvStore, FreshStoreShardsViaExplicitSplitters) {
  // An empty initial map has no quantiles, so num_shards alone would
  // collapse to one shard; explicit splitters keep the fresh-server case
  // parallel.
  store_t store(map_t{}, {.splitters = {1000, 2000, 3000}});
  EXPECT_EQ(store.shards().num_shards(), 4u);
  for (K k : {K{5}, K{1500}, K{2500}, K{9999}}) store.put(k, k + 1);
  store.flush();
  EXPECT_EQ(store.size(), 4u);
  for (size_t s = 0; s < 4; s++)
    EXPECT_EQ(store.shards().snapshot_shard(s).size(), 1u);
  EXPECT_EQ(store.get(1500), std::optional<V>(1501));
}

TEST(KvStore, EndToEnd) {
  auto es = random_entries(10000, 21, 1u << 18);
  map_t initial(es);
  store_t store(initial, {.num_shards = 8});

  store.put(1, 11);
  store.put(2, 22);
  store.erase(1);
  store.flush();
  EXPECT_EQ(store.get(1), std::nullopt);
  EXPECT_EQ(store.get(2), std::optional<V>(22));

  store.put_batch({{5, 50}, {6, 60}});
  EXPECT_EQ(store.get(5), std::optional<V>(50));
  store.erase_batch({5});
  EXPECT_EQ(store.get(5), std::nullopt);

  auto got = store.multi_get({1, 2, 6});
  EXPECT_EQ(got[0], std::nullopt);
  EXPECT_EQ(got[1], std::optional<V>(22));
  EXPECT_EQ(got[2], std::optional<V>(60));

  auto snap = store.snapshot();
  EXPECT_EQ(snap.size(), store.size());
  // Snapshot isolation: later writes don't perturb the cut.
  store.put_batch({{123456789, 1}});
  EXPECT_EQ(snap.find(123456789), std::nullopt);

  auto st = store.ingest_stats();
  EXPECT_EQ(st.ops_enqueued, 3u);
  EXPECT_GE(st.batches_flushed, 1u);
}

}  // namespace
