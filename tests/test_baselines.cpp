// Tests for the baseline comparators (src/baselines): correctness of each
// structure, including multi-threaded stress for the concurrent ones, so
// the benchmark numbers in Figure 6 / Tables 3 & 5 compare against code
// that demonstrably works.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "baselines/concurrent_bptree.h"
#include "baselines/concurrent_hashmap.h"
#include "baselines/concurrent_skiplist.h"
#include "baselines/naive_interval.h"
#include "baselines/sorted_array_map.h"
#include "baselines/static_range_tree.h"
#include "baselines/stl_map_baseline.h"
#include "util/random.h"

namespace {

std::vector<std::pair<uint64_t, uint64_t>> random_kvs(size_t n, uint64_t seed,
                                                      uint64_t range) {
  std::vector<std::pair<uint64_t, uint64_t>> v(n);
  pam::random_gen g(seed);
  for (auto& e : v) e = {g.next() % range, g.next() % 100000 + 1};
  return v;
}

// ------------------------------------------------------------- STL glue --

TEST(StlBaselines, UnionTreeAndArrayAgree) {
  auto ea = random_kvs(5000, 1, 20000);
  auto eb = random_kvs(5000, 2, 20000);
  std::map<uint64_t, uint64_t> ma(ea.begin(), ea.end()), mb(eb.begin(), eb.end());
  auto tree_u = pam::baselines::stl_union_tree(ma, mb);
  std::vector<std::pair<uint64_t, uint64_t>> va(ma.begin(), ma.end()),
      vb(mb.begin(), mb.end());
  auto arr_u = pam::baselines::stl_union_array(va, vb);
  ASSERT_EQ(tree_u.size(), arr_u.size());
  size_t i = 0;
  for (auto& [k, v] : tree_u) {
    ASSERT_EQ(arr_u[i].first, k);
    ASSERT_EQ(arr_u[i].second, v);
    i++;
  }
}

// ------------------------------------------------------ sorted-array map --

TEST(SortedArrayMap, BuildFindMultiInsert) {
  auto es = random_kvs(20000, 3, 1u << 16);
  pam::baselines::sorted_array_map<uint64_t, uint64_t> m(es);
  std::map<uint64_t, uint64_t> oracle;
  for (auto& e : es) oracle[e.first] = e.second;
  ASSERT_EQ(m.size(), oracle.size());
  auto batch = random_kvs(7000, 4, 1u << 16);
  m.multi_insert(batch);
  for (auto& e : batch) oracle[e.first] = e.second;
  ASSERT_EQ(m.size(), oracle.size());
  for (auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(m.find(k, got));
    ASSERT_EQ(got, v);
  }
  uint64_t sink;
  EXPECT_FALSE(m.find(1ull << 40, sink));
}

TEST(SortedArrayMap, EmptyAndSingleBatch) {
  pam::baselines::sorted_array_map<uint64_t, uint64_t> m;
  EXPECT_EQ(m.size(), 0u);
  m.multi_insert({{5, 50}});
  uint64_t v = 0;
  EXPECT_TRUE(m.find(5, v));
  EXPECT_EQ(v, 50u);
  m.multi_insert({});
  EXPECT_EQ(m.size(), 1u);
}

// ---------------------------------------------------------- skiplist ----

TEST(Skiplist, SequentialInsertFind) {
  pam::baselines::concurrent_skiplist sl;
  auto es = random_kvs(20000, 5, 1u << 20);
  std::map<uint64_t, uint64_t> oracle;
  for (auto& [k, v] : es) {
    sl.insert(k, v);
    oracle[k] = v;
  }
  EXPECT_EQ(sl.size_slow(), oracle.size());
  EXPECT_TRUE(sl.is_sorted());
  for (auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(sl.find(k, got));
    ASSERT_EQ(got, v);
  }
  EXPECT_FALSE(sl.contains(1ull << 40));
}

TEST(Skiplist, ConcurrentInsertsAllLand) {
  pam::baselines::concurrent_skiplist sl;
  const int threads = 8, per = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&sl, t] {
      pam::random_gen g(t);
      for (int i = 0; i < per; i++) {
        uint64_t k = (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
        sl.insert(k, k + 1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(sl.size_slow(), static_cast<size_t>(threads) * per);
  EXPECT_TRUE(sl.is_sorted());
  // spot check across all threads' ranges
  for (int t = 0; t < threads; t++) {
    for (int i = 0; i < per; i += 997) {
      uint64_t k = (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
      uint64_t v = 0;
      ASSERT_TRUE(sl.find(k, v));
      ASSERT_EQ(v, k + 1);
    }
  }
}

TEST(Skiplist, ConcurrentInsertsOnContendedKeys) {
  // All threads hammer the same small key range; the list must stay sorted
  // and contain exactly the distinct keys.
  pam::baselines::concurrent_skiplist sl;
  const int threads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&sl, t] {
      pam::random_gen g(1000 + t);
      for (int i = 0; i < 20000; i++) sl.insert(g.next() % 512, t + 1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_LE(sl.size_slow(), 512u);
  EXPECT_TRUE(sl.is_sorted());
}

// ------------------------------------------------------------ B+-tree ----

TEST(BPTree, SequentialInsertFindOrdered) {
  pam::baselines::concurrent_bptree bt;
  auto es = random_kvs(50000, 6, 1u << 24);
  std::map<uint64_t, uint64_t> oracle;
  for (auto& [k, v] : es) {
    bt.insert(k, v);
    oracle[k] = v;
  }
  EXPECT_EQ(bt.size_slow(), oracle.size());
  std::vector<uint64_t> keys;
  bt.keys_inorder(keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), oracle.size());
  for (auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(bt.find(k, got));
    ASSERT_EQ(got, v);
  }
  EXPECT_FALSE(bt.contains(1ull << 50));
}

TEST(BPTree, SequentialAndReverseKeys) {
  pam::baselines::concurrent_bptree bt;
  for (uint64_t k = 0; k < 10000; k++) bt.insert(k, k);
  for (uint64_t k = 30000; k > 20000; k--) bt.insert(k, k);
  EXPECT_EQ(bt.size_slow(), 20000u);
  std::vector<uint64_t> keys;
  bt.keys_inorder(keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BPTree, ConcurrentInsertsAllLand) {
  pam::baselines::concurrent_bptree bt;
  const int threads = 8, per = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&bt, t] {
      for (int i = 0; i < per; i++) {
        uint64_t k = (static_cast<uint64_t>(i) << 8) | static_cast<uint64_t>(t);
        bt.insert(k, k + 1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(bt.size_slow(), static_cast<size_t>(threads) * per);
  std::vector<uint64_t> keys;
  bt.keys_inorder(keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BPTree, ConcurrentMixedReadWrite) {
  pam::baselines::concurrent_bptree bt;
  for (uint64_t k = 0; k < 50000; k += 2) bt.insert(k, k);
  std::atomic<int> failures{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([&, t] {  // writers fill odd keys
      for (uint64_t k = 1 + 2 * t; k < 50000; k += 8) bt.insert(k, k);
    });
    ts.emplace_back([&, t] {  // readers verify even keys never vanish
      pam::random_gen g(t);
      for (int i = 0; i < 30000; i++) {
        uint64_t k = (g.next() % 25000) * 2;
        uint64_t v = 0;
        if (!bt.find(k, v) || v != k) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(bt.size_slow(), 50000u);
}

// ----------------------------------------------------------- hash map ----

TEST(HashMap, SequentialInsertFind) {
  pam::baselines::concurrent_hashmap hm(100000);
  auto es = random_kvs(100000, 7, ~0ull - 1);
  std::map<uint64_t, uint64_t> oracle;
  for (auto& [k, v] : es) {
    hm.insert(k, v);
    oracle[k] = v;
  }
  EXPECT_EQ(hm.size(), oracle.size());
  for (auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(hm.find(k, got));
    ASSERT_EQ(got, v);
  }
  uint64_t sink;
  EXPECT_FALSE(hm.find(123456789, sink) && oracle.count(123456789) == 0);
}

TEST(HashMap, ConcurrentInsertsDistinctKeys) {
  const int threads = 8, per = 50000;
  pam::baselines::concurrent_hashmap hm(static_cast<size_t>(threads) * per);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&hm, t] {
      for (int i = 0; i < per; i++) {
        uint64_t k = (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i + 1);
        hm.insert(k, k * 2);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(hm.size(), static_cast<size_t>(threads) * per);
  for (int t = 0; t < threads; t++) {
    for (int i = 0; i < per; i += 991) {
      uint64_t k = (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i + 1);
      uint64_t v = 0;
      ASSERT_TRUE(hm.find(k, v));
      ASSERT_EQ(v, k * 2);
    }
  }
}

TEST(HashMap, ConcurrentSameKeyRace) {
  pam::baselines::concurrent_hashmap hm(1024);
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; t++) {
    ts.emplace_back([&hm, t] {
      for (int i = 0; i < 10000; i++) hm.insert(42, static_cast<uint64_t>(t + 1));
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(hm.size(), 1u);
  uint64_t v = 0;
  ASSERT_TRUE(hm.find(42, v));
  EXPECT_GE(v, 1u);
  EXPECT_LE(v, 8u);
}

// --------------------------------------------------- static range tree ----

TEST(StaticRangeTree, MatchesBruteForce) {
  using srt = pam::baselines::static_range_tree<double, int64_t>;
  std::vector<srt::point> ps(3000);
  pam::random_gen g(8);
  for (auto& p : ps) {
    p.x = g.next_double() * 1000;
    p.y = g.next_double() * 1000;
    p.w = static_cast<int64_t>(g.next() % 50);
  }
  srt t(ps);
  EXPECT_EQ(t.size(), ps.size());
  for (int q = 0; q < 300; q++) {
    double x1 = g.next_double() * 1000, x2 = g.next_double() * 1000;
    double y1 = g.next_double() * 1000, y2 = g.next_double() * 1000;
    double xlo = std::min(x1, x2), xhi = std::max(x1, x2);
    double ylo = std::min(y1, y2), yhi = std::max(y1, y2);
    int64_t bsum = 0;
    size_t bcount = 0;
    for (auto& p : ps) {
      if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) {
        bsum += p.w;
        bcount++;
      }
    }
    auto rep = t.query_report(xlo, xhi, ylo, yhi);
    ASSERT_EQ(rep.size(), bcount);
    ASSERT_EQ(t.query_sum(xlo, xhi, ylo, yhi), bsum);
    int64_t rep_sum = 0;
    for (auto& p : rep) rep_sum += p.w;
    ASSERT_EQ(rep_sum, bsum);
  }
}

TEST(StaticRangeTree, EmptyAndSingle) {
  using srt = pam::baselines::static_range_tree<double, int64_t>;
  srt empty;
  EXPECT_EQ(empty.query_sum(0, 1, 0, 1), 0);
  EXPECT_TRUE(empty.query_report(0, 1, 0, 1).empty());
  srt one(std::vector<srt::point>{{5, 5, 7}});
  EXPECT_EQ(one.query_sum(5, 5, 5, 5), 7);
  EXPECT_EQ(one.query_sum(6, 7, 5, 5), 0);
}

// -------------------------------------------------------- naive interval --

TEST(NaiveInterval, AgreesWithDefinition) {
  pam::baselines::naive_interval_store<double> s;
  s.insert({1.0, 3.0});
  s.insert({2.0, 6.0});
  EXPECT_TRUE(s.stab(2.5));
  EXPECT_FALSE(s.stab(0.5));
  EXPECT_EQ(s.report_all(2.5).size(), 2u);
  EXPECT_EQ(s.report_all(5.0).size(), 1u);
}

}  // namespace
