// Tests for the durability layer (src/store/): CRC32C vectors, the file
// shim and its failpoints, WAL append/replay/rotation/repair, checkpoint
// pages and manifest commit, the map wire codec across every balance
// scheme and leaf layout, and the incremental-checkpoint byte footprint.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "pam/pam.h"
#include "store/durability.h"
#include "util/random.h"

namespace {

using u64_map = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>>;
using str_map = pam::aug_map<pam::str_sum_entry<uint64_t>>;

// A fresh scratch directory per test, removed on destruction.
struct temp_dir {
  std::string path;
  explicit temp_dir(const std::string& tag) {
    path = ::testing::TempDir() + "pam_store_" + tag + "_" +
           std::to_string(::getpid());
    std::string cmd = "rm -rf " + path;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
  }
  ~temp_dir() {
    std::string cmd = "rm -rf " + path;
    (void)std::system(cmd.c_str());
  }
};

// ----------------------------------------------------------------- crc32c --

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 appendix / every storage
  // system's self-test): "123456789" -> 0xE3069283.
  EXPECT_EQ(pam::store::crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(pam::store::crc32c("", 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  unsigned char zeros[32] = {};
  EXPECT_EQ(pam::store::crc32c(zeros, sizeof zeros), 0x8A9136AAu);
}

TEST(Crc32c, SeedChainingMatchesOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  size_t n = std::strlen(data);
  uint32_t whole = pam::store::crc32c(data, n);
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, n}) {
    uint32_t a = pam::store::crc32c(data, split);
    uint32_t chained = pam::store::crc32c(data + split, n - split, a);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<char> buf(256);
  pam::random_gen g(7);
  for (auto& c : buf) c = static_cast<char>(g.next());
  uint32_t base = pam::store::crc32c(buf.data(), buf.size());
  for (size_t bit : {size_t{0}, size_t{77}, size_t{2047}}) {
    buf[bit / 8] = static_cast<char>(buf[bit / 8] ^ (1 << (bit % 8)));
    EXPECT_NE(pam::store::crc32c(buf.data(), buf.size()), base);
    buf[bit / 8] = static_cast<char>(buf[bit / 8] ^ (1 << (bit % 8)));
  }
}

// -------------------------------------------------------------- file shim --

TEST(FileShim, PosixRoundTrip) {
  temp_dir td("posix");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path + "/a/b");
  EXPECT_TRUE(fs->exists(td.path + "/a/b"));

  auto f = fs->create(td.path + "/a/b/x");
  f->append("hello ", 6);
  f->append("world", 5);
  f->sync();
  EXPECT_EQ(f->size(), 11u);
  f.reset();

  auto r = fs->open_read(td.path + "/a/b/x");
  char buf[16] = {};
  EXPECT_EQ(r->read_at(0, buf, sizeof buf), 11u);  // short at EOF
  EXPECT_EQ(std::string(buf, 11), "hello world");
  EXPECT_EQ(r->read_at(6, buf, 5), 5u);
  EXPECT_EQ(std::string(buf, 5), "world");

  auto w = fs->open_append(td.path + "/a/b/x");
  w->truncate(5);
  EXPECT_EQ(w->size(), 5u);
  w.reset();

  fs->rename(td.path + "/a/b/x", td.path + "/a/b/y");
  EXPECT_FALSE(fs->exists(td.path + "/a/b/x"));
  EXPECT_TRUE(fs->exists(td.path + "/a/b/y"));
  fs->sync_dir(td.path + "/a/b");
  auto names = fs->list(td.path + "/a/b");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "y");
  fs->remove(td.path + "/a/b/y");
  fs->remove(td.path + "/a/b/y");  // ENOENT-tolerant
  EXPECT_FALSE(fs->exists(td.path + "/a/b/y"));
}

TEST(FileShim, FailpointsTripOnNthOperation) {
  temp_dir td("faults");
  auto fp = std::make_shared<pam::store::failpoints>();
  auto fs = std::make_shared<pam::store::faulty_fs>(pam::store::posix_fs(), fp);
  fs->mkdirs(td.path);

  // Third write trips a short write: half the bytes land, then crash.
  fp->writes_until_short.store(3);
  auto f = fs->create(td.path + "/f");
  f->append("aaaa", 4);
  f->append("bbbb", 4);
  EXPECT_THROW(f->append("cccc", 4), pam::store::crash_error);
  EXPECT_EQ(f->size(), 10u);  // 4 + 4 + 2
  EXPECT_EQ(fp->crashes_injected.load(), 1);
  fp->disarm();
  f->append("dddd", 4);  // disarmed: full write goes through
  EXPECT_EQ(f->size(), 14u);

  // Torn write: all bytes present but the tail is garbage.
  fp->writes_until_torn.store(1);
  auto g = fs->create(td.path + "/g");
  EXPECT_THROW(g->append("ABCDEFGH", 8), pam::store::crash_error);
  EXPECT_EQ(g->size(), 8u);
  char buf[8];
  ASSERT_EQ(fs->open_read(td.path + "/g")->read_at(0, buf, 8), 8u);
  EXPECT_EQ(std::memcmp(buf, "ABCD", 4), 0);
  EXPECT_EQ(std::memcmp(buf + 4, "\xA5\xA5\xA5\xA5", 4), 0);
  fp->disarm();

  // fsync failure and rename crash.
  fp->fsyncs_until_fail.store(1);
  EXPECT_THROW(g->sync(), pam::store::crash_error);
  g->sync();  // self-disarms after firing
  fp->renames_until_crash.store(1);
  EXPECT_THROW(fs->rename(td.path + "/g", td.path + "/h"),
               pam::store::crash_error);
  EXPECT_TRUE(fs->exists(td.path + "/g"));  // the rename never happened
  fp->disarm();
}

// -------------------------------------------------------------------- wal --

pam::store::wal_config small_wal(size_t segment_bytes = 64 * 1024) {
  pam::store::wal_config cfg;
  cfg.segment_bytes = segment_bytes;
  cfg.sync_every = 1;
  return cfg;
}

TEST(Wal, AppendReplayRoundTrip) {
  temp_dir td("wal_rt");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  {
    pam::store::wal_writer w(fs, td.path, small_wal(), 1);
    for (int i = 0; i < 100; i++) {
      std::string payload = "record-" + std::to_string(i);
      EXPECT_EQ(w.append(payload.data(), payload.size()),
                static_cast<uint64_t>(i + 1));
    }
    EXPECT_EQ(w.last_seq(), 100u);
    EXPECT_EQ(w.durable_seq(), 100u);  // sync_every = 1
    EXPECT_FALSE(w.dead());
  }
  uint64_t next = 0;
  auto st = pam::store::wal_replay(
      *fs, td.path, 0,
      [&](uint64_t seq, const char* p, size_t n) {
        EXPECT_EQ(seq, ++next);
        EXPECT_EQ(std::string(p, n), "record-" + std::to_string(seq - 1));
      },
      /*repair=*/false);
  EXPECT_EQ(st.records, 100u);
  EXPECT_EQ(st.next_seq, 101u);
  EXPECT_FALSE(st.tail_truncated);

  // after_seq skips the covered prefix.
  uint64_t seen = 0;
  auto st2 = pam::store::wal_replay(
      *fs, td.path, 90, [&](uint64_t, const char*, size_t) { seen++; }, false);
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(st2.next_seq, 101u);
}

TEST(Wal, RotationAndTruncateThrough) {
  temp_dir td("wal_rot");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  std::vector<char> big(8 * 1024, 'x');
  pam::store::wal_writer w(fs, td.path, small_wal(16 * 1024), 1);
  for (int i = 0; i < 20; i++) w.append(big.data(), big.size());
  auto segs = pam::store::wal_segments(*fs, td.path);
  ASSERT_GE(segs.size(), 3u) << "rotation never happened";
  for (size_t i = 1; i < segs.size(); i++) {
    EXPECT_GT(segs[i].first, segs[i - 1].first);
  }

  // Truncating through a mid-log seq unlinks fully-covered segments only;
  // the active segment always survives.
  w.truncate_through(10);
  auto after = pam::store::wal_segments(*fs, td.path);
  EXPECT_LT(after.size(), segs.size());
  ASSERT_FALSE(after.empty());
  // Replay of what remains still yields every record after the cut.
  uint64_t seen = 0;
  auto st = pam::store::wal_replay(
      *fs, td.path, 10, [&](uint64_t, const char*, size_t) { seen++; }, false);
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(st.next_seq, 21u);
}

TEST(Wal, TornTailStopsReplayAndRepairTruncates) {
  temp_dir td("wal_torn");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  {
    pam::store::wal_writer w(fs, td.path, small_wal(), 1);
    for (int i = 0; i < 10; i++) {
      std::string payload = "payload-" + std::to_string(i);
      w.append(payload.data(), payload.size());
    }
  }
  // Corrupt the last record's payload byte on disk.
  auto segs = pam::store::wal_segments(*fs, td.path);
  ASSERT_EQ(segs.size(), 1u);
  const std::string path = td.path + "/" + segs[0].second;
  uint64_t fsize = fs->open_read(path)->size();
  {
    auto f = fs->open_append(path);
    std::vector<char> all(fsize);
    fs->open_read(path)->read_at(0, all.data(), all.size());
    all.back() = static_cast<char>(all.back() ^ 0xFF);
    f->truncate(0);
    f->append(all.data(), all.size());
  }
  // Replay: 9 good records, the corrupted tail cut; repair truncates it.
  uint64_t seen = 0;
  auto st = pam::store::wal_replay(
      *fs, td.path, 0, [&](uint64_t, const char*, size_t) { seen++; }, true);
  EXPECT_EQ(seen, 9u);
  EXPECT_TRUE(st.tail_truncated);
  EXPECT_EQ(st.next_seq, 10u);
  EXPECT_LT(fs->open_read(path)->size(), fsize);

  // A writer resumed at next_seq appends over the repaired tail seamlessly.
  pam::store::wal_writer w2(fs, td.path, small_wal(), st.next_seq);
  std::string payload = "after-repair";
  EXPECT_EQ(w2.append(payload.data(), payload.size()), 10u);
  seen = 0;
  pam::store::wal_replay(
      *fs, td.path, 0, [&](uint64_t, const char*, size_t) { seen++; }, false);
  EXPECT_EQ(seen, 10u);
}

TEST(Wal, MissingMiddleSegmentIsCorruptionNotSplice) {
  temp_dir td("wal_gap");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  std::vector<char> big(8 * 1024, 'x');
  {
    pam::store::wal_writer w(fs, td.path, small_wal(16 * 1024), 1);
    for (int i = 0; i < 20; i++) w.append(big.data(), big.size());
  }
  auto segs = pam::store::wal_segments(*fs, td.path);
  ASSERT_GE(segs.size(), 3u);
  // Lose a middle segment: records [gap_first, gap_end) vanish from the
  // chain while later segments survive intact.
  const uint64_t gap_first = segs[1].first;
  const uint64_t gap_end = segs[2].first;
  fs->remove(td.path + "/" + segs[1].second);

  // Replay from 0 must stop at the boundary and flag the break — splicing
  // over the hole would present non-contiguous history as contiguous.
  uint64_t last = 0, seen = 0;
  auto st = pam::store::wal_replay(
      *fs, td.path, 0,
      [&](uint64_t seq, const char*, size_t) {
        last = seq;
        seen++;
      },
      /*repair=*/false);
  EXPECT_EQ(seen, gap_first - 1);
  EXPECT_EQ(last, gap_first - 1);
  EXPECT_TRUE(st.tail_truncated);
  EXPECT_EQ(st.next_seq, gap_first);

  // A boundary gap lying entirely inside the covered prefix is fine:
  // nothing the checkpoint chain needs is absent.
  seen = 0;
  auto st2 = pam::store::wal_replay(
      *fs, td.path, gap_end - 1,
      [&](uint64_t, const char*, size_t) { seen++; }, /*repair=*/false);
  EXPECT_EQ(seen, 21 - gap_end);
  EXPECT_FALSE(st2.tail_truncated);
  EXPECT_EQ(st2.next_seq, 21u);

  // Repair mode unlinks the segments stranded past the break.
  auto st3 = pam::store::wal_replay(
      *fs, td.path, 0, [](uint64_t, const char*, size_t) {}, /*repair=*/true);
  EXPECT_TRUE(st3.tail_truncated);
  EXPECT_EQ(st3.next_seq, gap_first);
  auto after = pam::store::wal_segments(*fs, td.path);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].first, segs[0].first);
}

TEST(Wal, DeadWriterUnacksSilently) {
  temp_dir td("wal_dead");
  auto fp = std::make_shared<pam::store::failpoints>();
  auto fs = std::make_shared<pam::store::faulty_fs>(pam::store::posix_fs(), fp);
  fs->mkdirs(td.path);
  pam::store::wal_writer w(fs, td.path, small_wal(), 1);
  EXPECT_EQ(w.append("ok", 2), 1u);
  fp->writes_until_short.store(1);
  EXPECT_THROW(w.append("boom", 4), pam::store::crash_error);
  EXPECT_TRUE(w.dead());
  fp->disarm();
  EXPECT_EQ(w.append("late", 4), 0u);  // dead: unacked, no side effects
  EXPECT_EQ(w.last_seq(), 1u);
}

// ------------------------------------------------- checkpoint page format --

TEST(CheckpointPages, MultiPageStreamsRoundTrip) {
  temp_dir td("pages");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  pam::random_gen g(11);
  std::vector<char> s0(10000), s1(3), s2;  // multi-page, tiny, empty
  for (auto& c : s0) c = static_cast<char>(g.next());
  for (auto& c : s1) c = static_cast<char>(g.next());

  std::vector<char> out;
  pam::store::append_pages(out, 0, s0, 4096);
  pam::store::append_pages(out, 1, s1, 4096);
  pam::store::append_pages(out, 2, s2, 4096);
  auto f = fs->create(td.path + "/p");
  f->append(out.data(), out.size());
  f.reset();

  auto streams = pam::store::read_page_streams(*fs, td.path + "/p");
  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0].first, 0u);
  EXPECT_EQ(streams[0].second, s0);
  EXPECT_EQ(streams[1].second, s1);
  EXPECT_TRUE(streams[2].second.empty());
}

TEST(CheckpointPages, CorruptPageOrMissingTailRejected) {
  temp_dir td("pages_bad");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  std::vector<char> stream(9000, 'q');
  std::vector<char> out;
  pam::store::append_pages(out, 0, stream, 4096);

  // Flip one payload byte: checksum mismatch.
  auto bad = out;
  bad[bad.size() - 1] = static_cast<char>(bad.back() ^ 1);
  auto f = fs->create(td.path + "/bad");
  f->append(bad.data(), bad.size());
  f.reset();
  EXPECT_THROW(pam::store::read_page_streams(*fs, td.path + "/bad"),
               pam::wire::error);

  // Drop the closing page: the stream never completes.
  auto cut = out;
  cut.resize(pam::store::kCkptPageHeader + 4096);  // first page only
  f = fs->create(td.path + "/cut");
  f->append(cut.data(), cut.size());
  f.reset();
  EXPECT_THROW(pam::store::read_page_streams(*fs, td.path + "/cut"),
               pam::wire::error);
}

// ------------------------------------------------------ manifest + commit --

TEST(Manifest, RoundTripAndCommitPoint) {
  temp_dir td("manifest");
  auto fs = pam::store::posix_fs();
  fs->mkdirs(td.path);
  using cio = pam::store::checkpoint_io<str_map>;
  cio::manifest_t m;
  m.id = 42;
  m.covered_wal_seq = 1234;
  m.splitters = {"alpha", "omega"};
  m.files = {{0, "ckpt-000000000000002a-full.pam"},
             {1, "ckpt-000000000000002b-delta.pam"}};
  cio::write_manifest(*fs, td.path, m);

  EXPECT_FALSE(cio::read_current(*fs, td.path).has_value());
  cio::commit_current(*fs, td.path, pam::store::manifest_file_name(42));
  auto cur = cio::read_current(*fs, td.path);
  ASSERT_TRUE(cur.has_value());
  auto back = cio::read_manifest(*fs, td.path, *cur);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.covered_wal_seq, 1234u);
  EXPECT_EQ(back.splitters, m.splitters);
  EXPECT_EQ(back.files, m.files);

  // A corrupted manifest byte fails its trailing CRC.
  const std::string mpath = td.path + "/" + *cur;
  uint64_t fsize = fs->open_read(mpath)->size();
  std::vector<char> all(fsize);
  fs->open_read(mpath)->read_at(0, all.data(), all.size());
  all[8] = static_cast<char>(all[8] ^ 1);
  auto f = fs->create(mpath);
  f->append(all.data(), all.size());
  f.reset();
  EXPECT_THROW(cio::read_manifest(*fs, td.path, *cur), pam::wire::error);
}

// ------------------------------------------------------------ wire codec --

// Round-trip `m` through the wire format and compare against the oracle.
template <typename Map, typename Oracle>
void expect_round_trip(const Map& m, const Oracle& oracle) {
  std::vector<char> wire;
  m.serialize(wire);
  Map rt = Map::deserialize(wire.data(), wire.size());
  ASSERT_TRUE(rt.check_valid());
  ASSERT_EQ(rt.size(), oracle.size());
  auto it = rt.begin();
  for (auto& [k, v] : oracle) {
    ASSERT_TRUE(it != rt.end());
    ASSERT_EQ(it->key, k);
    ASSERT_EQ(it->value, v);
    ++it;
  }
  ASSERT_TRUE(it == rt.end());
  ASSERT_EQ(rt.aug_val(), m.aug_val());  // recomputed, not read from disk
}

template <typename Balance>
void codec_sweep_u64(uint64_t seed) {
  using map_t = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>, Balance>;
  pam::random_gen g(seed);
  map_t m;
  std::map<uint64_t, uint64_t> oracle;
  expect_round_trip(m, oracle);  // empty map
  for (int i = 0; i < 2000; i++) {
    uint64_t k = g.next() % 4096, v = g.next() % 100000;
    m = map_t::insert(std::move(m), k, v);
    oracle[k] = v;
  }
  for (int i = 0; i < 500; i++) {
    uint64_t k = g.next() % 4096;
    m = map_t::remove(std::move(m), k);
    oracle.erase(k);
  }
  expect_round_trip(m, oracle);
}

template <typename Balance>
void codec_sweep_str(uint64_t seed) {
  using map_t = pam::aug_map<pam::str_sum_entry<uint64_t>, Balance>;
  pam::random_gen g(seed);
  map_t m;
  std::map<std::string, uint64_t> oracle;
  for (int i = 0; i < 1500; i++) {
    std::string k = "user/profile/" + std::to_string(g.next() % 2048);
    uint64_t v = g.next() % 100000;
    m = map_t::insert(std::move(m), k, v);
    oracle[k] = v;
  }
  expect_round_trip(m, oracle);
}

// All four balance schemes x flat/front-coded leaves x block sizes 0 (no
// blocks), 1 (degenerate), 32 (default), 256 (multi byte-class).
TEST(WireCodec, AllSchemesAllLayoutsAllBlockSizes) {
  size_t saved_b = pam::leaf_block_size();
  for (size_t b : {size_t{0}, size_t{1}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(b);
    codec_sweep_u64<pam::weight_balanced>(100 + b);
    codec_sweep_u64<pam::red_black>(200 + b);
    codec_sweep_u64<pam::avl_tree>(300 + b);
    codec_sweep_u64<pam::treap>(400 + b);
    codec_sweep_str<pam::weight_balanced>(500 + b);
    codec_sweep_str<pam::red_black>(600 + b);
    codec_sweep_str<pam::avl_tree>(700 + b);
    codec_sweep_str<pam::treap>(800 + b);
  }
  pam::set_leaf_block_size(saved_b);
}

TEST(WireCodec, CorruptStreamsThrowNeverCrash) {
  pam::random_gen g(3);
  u64_map m;
  for (int i = 0; i < 1000; i++) {
    m = u64_map::insert(std::move(m), g.next() % 2048, g.next());
  }
  std::vector<char> wire;
  m.serialize(wire);

  // Truncations at every prefix length of the header region and a sample
  // of interior cuts: must throw wire::error, never crash or misparse.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{10}, size_t{19},
                     wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(u64_map::deserialize(wire.data(), cut), pam::wire::error)
        << "cut " << cut;
  }
  // Bit flips across the stream: either a clean wire::error or (for flips
  // confined to value bytes) a map that still validates.
  for (size_t at = 0; at < wire.size(); at += 97) {
    auto bad = wire;
    bad[at] = static_cast<char>(bad[at] ^ 0x10);
    try {
      u64_map rt = u64_map::deserialize(bad.data(), bad.size());
      EXPECT_TRUE(rt.check_valid());
    } catch (const pam::wire::error&) {
      // rejected — the expected common case
    }
  }
}

TEST(WireCodec, CrossEndianStreamRejected) {
  u64_map m;
  for (uint64_t k = 0; k < 100; k++) {
    m = u64_map::insert(std::move(m), k, k * 3);
  }
  std::vector<char> wire;
  m.serialize(wire);
  // Header: u32 magic | u8 layout | u8 byte_order | ... — the stamp pins
  // the writing host's endianness so a cross-endian load fails loudly
  // instead of misparsing raw block payloads.
  ASSERT_GT(wire.size(), 6u);
  EXPECT_EQ(static_cast<uint8_t>(wire[5]), pam::wire::kHostByteOrder);
  wire[5] = static_cast<char>(wire[5] == 1 ? 2 : 1);
  EXPECT_THROW(u64_map::deserialize(wire.data(), wire.size()),
               pam::wire::error);
}

// -------------------------------------------- durability manager + deltas --

TEST(Durability, IncrementalCheckpointPersistsOnlyChangedBlocks) {
  temp_dir td("incr");
  pam::store::durability_options opts;
  opts.dir = td.path;
  opts.ckpt.page_bytes = 4096;

  std::vector<uint64_t> splitters = {50000};
  pam::sharded_map<u64_map> shards(splitters);
  // The ctor commits a full checkpoint of the (empty) initial contents.
  pam::store::durability<u64_map> d(opts, shards.snapshot_all());

  std::vector<u64_map::entry_t> bulk;
  for (uint64_t i = 0; i < 100000; i++) bulk.emplace_back(i, i);
  shards.multi_insert(std::move(bulk));
  // 100k fresh keys dwarf the empty baseline: the ratio policy forces full.
  auto full = d.save_checkpoint(shards.snapshot_all(), 0);
  EXPECT_TRUE(full.full);

  // Touch 20 of 100k keys: the delta must be proportional to the churn,
  // not the map — the byte-footprint guarantee of diff-driven checkpoints.
  std::vector<u64_map::entry_t> churn;
  for (uint64_t i = 0; i < 20; i++) churn.emplace_back(i * 977, 1);
  shards.multi_insert(std::move(churn));
  auto delta = d.save_checkpoint(shards.snapshot_all(), 0);
  EXPECT_FALSE(delta.full);
  EXPECT_LT(delta.bytes * 100, full.bytes)
      << "delta " << delta.bytes << "B should be <1% of full " << full.bytes
      << "B for 20/100k churn";

  // The chain (full + delta) still loads to the exact contents.
  auto rec = pam::store::durability<u64_map>::recover(opts);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_files, 2u);
  EXPECT_EQ(rec->contents.size(), 100000u);
  for (uint64_t i = 0; i < 20; i++) {
    auto got = rec->contents.find(i * 977);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 1u);
  }
}

TEST(Durability, FullCheckpointForcedPastMaxChainAndGcSweeps) {
  temp_dir td("chain");
  pam::store::durability_options opts;
  opts.dir = td.path;
  opts.ckpt.max_chain = 2;
  opts.ckpt.incr_max_ratio = 1.0;

  pam::sharded_map<u64_map> shards(u64_map{}, size_t{1});
  std::vector<u64_map::entry_t> bulk;
  for (uint64_t i = 0; i < 5000; i++) bulk.emplace_back(i, i);
  shards.multi_insert(std::move(bulk));

  pam::store::durability<u64_map> d(opts, shards.snapshot_all());
  int fulls = 0, deltas = 0;
  for (int round = 0; round < 8; round++) {
    std::vector<u64_map::entry_t> churn = {{uint64_t(round), 99u}};
    shards.multi_insert(std::move(churn));
    auto r = d.save_checkpoint(shards.snapshot_all(), 0);
    (r.full ? fulls : deltas)++;
  }
  EXPECT_GE(fulls, 2) << "max_chain=2 must force periodic fulls";
  EXPECT_GE(deltas, 4);

  // GC: only the live chain (<= 1 full + max_chain deltas + manifest +
  // CURRENT) remains on disk after eight commits.
  auto fs = pam::store::posix_fs();
  size_t ckpt_files = 0, manifests = 0;
  for (const auto& name : fs->list(td.path)) {
    ckpt_files += name.rfind("ckpt-", 0) == 0;
    manifests += name.rfind("manifest-", 0) == 0;
  }
  EXPECT_LE(ckpt_files, size_t{1} + 2);
  EXPECT_EQ(manifests, 1u);

  auto rec = pam::store::durability<u64_map>::recover(opts);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->contents.size(), 5000u);
}

TEST(Durability, RecoverOnEmptyDirectoryIsNullopt) {
  temp_dir td("empty");
  pam::store::durability_options opts;
  opts.dir = td.path;
  EXPECT_FALSE(pam::store::durability<u64_map>::recover(opts).has_value());
}

}  // namespace
