// Blocked-leaf layer tests: the PAM_LEAF_BLOCK knob, block sharing across
// snapshots and re-packs, layout switching mid-life (blocked trees keep
// working after the knob changes), space accounting for the leaf pools,
// and the applications under small block sizes (which maximize the number
// of block boundaries every query crosses).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "apps/interval_map.h"
#include "apps/range_tree.h"
#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;
using map_t = pam::aug_map<pam::sum_entry<K, V>>;
using entry_t = map_t::entry_t;

std::vector<entry_t> sorted_entries(size_t n, uint64_t stride = 3) {
  std::vector<entry_t> es(n);
  for (size_t i = 0; i < n; i++) es[i] = {i * stride, i};
  return es;
}

// RAII guard: every test leaves the global layout knob as it found it.
struct block_size_guard {
  size_t saved = pam::leaf_block_size();
  ~block_size_guard() { pam::set_leaf_block_size(saved); }
};

TEST(LeafBlocks, KnobClampsAndRoundTrips) {
  block_size_guard guard;
  pam::set_leaf_block_size(0);
  EXPECT_EQ(pam::leaf_block_size(), 0u);
  pam::set_leaf_block_size(32);
  EXPECT_EQ(pam::leaf_block_size(), 32u);
  pam::set_leaf_block_size(1 << 20);  // clamped to the supported maximum
  EXPECT_EQ(pam::leaf_block_size(), pam::kMaxLeafBlock);
}

TEST(LeafBlocks, BlockedLayoutUsesFarFewerNodes) {
  block_size_guard guard;
  const size_t n = 20000;
  auto es = sorted_entries(n);

  pam::set_leaf_block_size(0);
  int64_t nodes0 = map_t::used_nodes();
  int64_t bytes0 = map_t::used_bytes();
  {
    map_t plain = map_t::from_sorted(es);
    int64_t plain_nodes = map_t::used_nodes() - nodes0;
    int64_t plain_bytes = map_t::used_bytes() - bytes0;
    EXPECT_GE(plain_nodes, static_cast<int64_t>(n));

    pam::set_leaf_block_size(32);
    map_t blocked = map_t::from_sorted(es);
    int64_t blocked_nodes = map_t::used_nodes() - nodes0 - plain_nodes;
    int64_t blocked_bytes = map_t::used_bytes() - bytes0 - plain_bytes;
    // ~2 nodes per 32-entry block instead of 32.
    EXPECT_LT(blocked_nodes, static_cast<int64_t>(n / 8));
    EXPECT_GT(map_t::used_leaf_blocks(), 0);
    // The headline space win: >= 2x fewer bytes per entry.
    EXPECT_LT(2 * blocked_bytes, plain_bytes);
    EXPECT_TRUE(blocked.check_valid());
    EXPECT_EQ(blocked.entries(), plain.entries());
  }
  EXPECT_EQ(map_t::used_nodes(), nodes0);
  EXPECT_EQ(map_t::used_bytes(), bytes0);
}

TEST(LeafBlocks, SnapshotsShareBlocksAcrossRepacks) {
  block_size_guard guard;
  pam::set_leaf_block_size(32);
  int64_t base_blocks = map_t::used_leaf_blocks();
  {
    map_t m(sorted_entries(10000));
    int64_t built = map_t::used_leaf_blocks() - base_blocks;
    EXPECT_GT(built, 0);

    // An O(1) snapshot shares every node and block: no new storage at all.
    map_t snap = m;
    EXPECT_EQ(map_t::used_leaf_blocks() - base_blocks, built);

    // A point insert re-packs exactly the one block on its path; the other
    // blocks stay shared between the snapshot and the new version.
    map_t v2 = map_t::insert(m, 1, 999);
    int64_t after_insert = map_t::used_leaf_blocks() - base_blocks;
    EXPECT_GT(after_insert, built);
    EXPECT_LT(after_insert, built + 8);

    // A bulk update re-packs many blocks, but far fewer than a full copy.
    std::vector<entry_t> batch;
    for (size_t i = 0; i < 500; i++) batch.push_back({i * 7 + 1, i});
    map_t v3 = map_t::multi_insert(m, std::move(batch));
    int64_t after_bulk = map_t::used_leaf_blocks() - base_blocks;
    EXPECT_LT(after_bulk, 2 * built + 64);

    // All versions stay intact.
    EXPECT_TRUE(snap.check_valid());
    EXPECT_TRUE(v2.check_valid());
    EXPECT_TRUE(v3.check_valid());
    EXPECT_EQ(snap.size(), 10000u);
    EXPECT_EQ(*v2.find(1), 999u);
    EXPECT_FALSE(snap.find(1).has_value());
  }
  EXPECT_EQ(map_t::used_leaf_blocks(), base_blocks);
}

TEST(LeafBlocks, LayoutSwitchMidLifeKeepsTreesValid) {
  // Trees built under one layout must stay fully operational after the knob
  // changes: blocks are structural, the knob only governs new packing.
  block_size_guard guard;
  pam::set_leaf_block_size(64);
  map_t m(sorted_entries(5000));
  std::map<K, V> oracle;
  for (auto [k, v] : m.entries()) oracle[k] = v;

  for (size_t next_b : {size_t{0}, size_t{4}, size_t{256}, size_t{1}}) {
    pam::set_leaf_block_size(next_b);
    pam::random_gen g(next_b + 7);
    for (int i = 0; i < 300; i++) {
      K k = g.next() % 20000;
      V v = g.next() % 1000;
      m = map_t::insert(std::move(m), k, v);
      oracle[k] = v;
      K d = g.next() % 20000;
      m = map_t::remove(std::move(m), d);
      oracle.erase(d);
    }
    ASSERT_TRUE(m.check_valid()) << "B=" << next_b;
    ASSERT_EQ(m.size(), oracle.size());
    auto it = m.begin();
    for (auto& [k, v] : oracle) {
      ASSERT_EQ(it->key, k);
      ASSERT_EQ(it->value, v);
      ++it;
    }
    uint64_t sum = 0;
    for (auto& [k, v] : oracle) sum += v;
    ASSERT_EQ(m.aug_val(), sum);
  }
}

TEST(LeafBlocks, OrderStatisticsAcrossBlockBoundaries) {
  block_size_guard guard;
  for (size_t b : {size_t{1}, size_t{2}, size_t{7}, size_t{32}}) {
    pam::set_leaf_block_size(b);
    const size_t n = 1000;
    map_t m = map_t::from_sorted(sorted_entries(n));  // keys 0, 3, 6, ...
    for (size_t i = 0; i < n; i += 17) {
      auto e = m.select(i);
      ASSERT_TRUE(e.has_value());
      EXPECT_EQ(e->first, i * 3);
      EXPECT_EQ(m.rank(i * 3), i);
      EXPECT_EQ(m.rank(i * 3 + 1), i + 1);
    }
    EXPECT_FALSE(m.select(n).has_value());
    // previous/next across block boundaries (keys are multiples of 3).
    for (K k : {K{1}, K{299}, K{300}, K{2997}}) {
      auto prev = m.previous(k);
      auto next = m.next(k);
      ASSERT_TRUE(prev.has_value());
      EXPECT_EQ(prev->first, (k - 1) / 3 * 3);
      if (next.has_value()) {
        EXPECT_EQ(next->first, k / 3 * 3 + 3);
      }
    }
    EXPECT_FALSE(m.previous(0).has_value());
    EXPECT_FALSE(m.next(3 * (n - 1)).has_value());
  }
}

TEST(LeafBlocks, AppsUnderSmallBlocks) {
  // Interval stabbing and 2D range queries at B=3: every traversal crosses
  // many block boundaries, covering the cursor entry-run protocol.
  block_size_guard guard;
  pam::set_leaf_block_size(3);

  pam::interval_map<double> im;
  std::vector<std::pair<double, double>> iv;
  for (int i = 0; i < 200; i++) iv.push_back({i * 0.5, i * 0.5 + 3.0});
  im = pam::interval_map<double>(iv);
  for (double p : {0.25, 10.0, 50.0, 99.9}) {
    size_t brute = 0;
    for (auto& [l, r] : iv) {
      if (l <= p && p <= r) brute++;
    }
    EXPECT_EQ(im.count_stab(p), brute) << "p=" << p;
    EXPECT_EQ(im.report_all(p).size(), brute);
    EXPECT_EQ(im.stab(p), brute > 0);
  }

  using rt = pam::range_tree<double, int64_t>;
  std::vector<rt::point> pts;
  pam::random_gen g(5);
  for (int i = 0; i < 400; i++) {
    pts.push_back({static_cast<double>(g.next() % 1000),
                   static_cast<double>(g.next() % 1000),
                   static_cast<int64_t>(g.next() % 50)});
  }
  rt tree(pts);
  ASSERT_TRUE(tree.check_valid());
  for (int q = 0; q < 25; q++) {
    double xlo = static_cast<double>(g.next() % 1000), xhi = xlo + 200;
    double ylo = static_cast<double>(g.next() % 1000), yhi = ylo + 200;
    int64_t brute = 0;
    size_t brute_n = 0;
    for (auto& p : pts) {
      if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) {
        brute += p.w;
        brute_n++;
      }
    }
    EXPECT_EQ(tree.query_sum(xlo, xhi, ylo, yhi), brute);
    EXPECT_EQ(tree.query_count(xlo, xhi, ylo, yhi), brute_n);
    EXPECT_EQ(tree.query_points(xlo, xhi, ylo, yhi).size(), brute_n);
  }
}

TEST(LeafBlocks, SetAlgebraAtEveryBlockSize) {
  block_size_guard guard;
  for (size_t b : {size_t{0}, size_t{1}, size_t{2}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(b);
    pam::random_gen g(b * 11 + 1);
    std::map<K, V> oa, ob;
    std::vector<entry_t> ea, eb;
    for (int i = 0; i < 800; i++) {
      K k = g.next() % 2000;
      V v = g.next() % 100;
      oa[k] = v;
      ea.push_back({k, v});
      k = g.next() % 2000;
      v = g.next() % 100;
      ob[k] = v;
      eb.push_back({k, v});
    }
    map_t ma(ea), mb(eb);
    auto u = map_t::map_union(ma, mb, [](V x, V y) { return x + y; });
    auto in = map_t::map_intersect(ma, mb, [](V x, V y) { return x + y; });
    auto d = map_t::map_difference(ma, mb);
    std::map<K, V> ou = oa, oi, od = oa;
    for (auto& [k, v] : ob) {
      if (oa.count(k)) {
        ou[k] = oa[k] + v;
        oi[k] = oa[k] + v;
      } else {
        ou[k] = v;
      }
      od.erase(k);
    }
    ASSERT_EQ(u.size(), ou.size()) << "B=" << b;
    ASSERT_EQ(in.size(), oi.size()) << "B=" << b;
    ASSERT_EQ(d.size(), od.size()) << "B=" << b;
    auto check = [&](const map_t& m, const std::map<K, V>& o) {
      auto it = m.begin();
      for (auto& [k, v] : o) {
        ASSERT_EQ(it->key, k);
        ASSERT_EQ(it->value, v);
        ++it;
      }
      ASSERT_TRUE(m.check_valid());
    };
    check(u, ou);
    check(in, oi);
    check(d, od);
  }
}

// ----------------------------------------------------- front-coded blocks --

using str_map_t = pam::aug_map<pam::str_sum_entry<uint64_t>>;
using str_entry_t = str_map_t::entry_t;

std::vector<str_entry_t> sorted_str_entries(size_t n,
                                            const std::string& prefix) {
  std::vector<str_entry_t> es;
  es.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08zu", i);
    es.push_back({prefix + buf, i});
  }
  return es;
}

TEST(CodedBlocks, SnapshotsShareEncodedBlocksAcrossRepacks) {
  block_size_guard guard;
  pam::set_leaf_block_size(32);
  int64_t base_blocks = str_map_t::used_leaf_blocks();
  {
    str_map_t m(sorted_str_entries(8000, "shard/0042/object/"));
    int64_t built = str_map_t::used_leaf_blocks() - base_blocks;
    EXPECT_GT(built, 0);

    // An O(1) snapshot shares every node and sealed coded block.
    str_map_t snap = m;
    EXPECT_EQ(str_map_t::used_leaf_blocks() - base_blocks, built);

    // A point insert re-encodes exactly the one block on its path; the
    // other sealed blocks stay shared between snapshot and new version.
    str_map_t v2 = str_map_t::insert(m, "shard/0042/object/00000001x", 999);
    int64_t after_insert = str_map_t::used_leaf_blocks() - base_blocks;
    EXPECT_GT(after_insert, built);
    EXPECT_LT(after_insert, built + 8);

    // A bulk update re-encodes many blocks, but far fewer than a copy.
    std::vector<str_entry_t> batch;
    for (size_t i = 0; i < 400; i++) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08zu", i * 7);
      batch.push_back({std::string("shard/0042/object/") + buf + "y", i});
    }
    str_map_t v3 = str_map_t::multi_insert(m, std::move(batch));
    int64_t after_bulk = str_map_t::used_leaf_blocks() - base_blocks;
    EXPECT_LT(after_bulk, 2 * built + 64);

    EXPECT_TRUE(snap.check_valid());
    EXPECT_TRUE(v2.check_valid());
    EXPECT_TRUE(v3.check_valid());
    EXPECT_EQ(snap.size(), 8000u);
    EXPECT_EQ(*v2.find(std::string_view("shard/0042/object/00000001x")), 999u);
    EXPECT_FALSE(snap.find(std::string_view("shard/0042/object/00000001x"))
                     .has_value());
  }
  EXPECT_EQ(str_map_t::used_leaf_blocks(), base_blocks);
}

TEST(CodedBlocks, FrontCodingBeatsFlatStringStorage) {
  // The headline space win for string keys: shared-prefix keys stored
  // front-coded take far fewer leaf bytes than the same entries as flat
  // std::pair<std::string, V> slots would. Compare against the measured
  // per-entry flat slot cost (sizeof(entry) — SSO keeps short keys inline,
  // so that is the true flat footprint here).
  block_size_guard guard;
  pam::set_leaf_block_size(32);
  const size_t n = 20000;
  int64_t bytes0 = str_map_t::used_leaf_bytes();
  str_map_t m(sorted_str_entries(n, "wiki/article/"));
  int64_t coded_bytes = str_map_t::used_leaf_bytes() - bytes0;
  EXPECT_GT(coded_bytes, 0);
  int64_t flat_bytes =
      static_cast<int64_t>(n * sizeof(std::pair<std::string, uint64_t>));
  // The CI perf gate asserts >= 1.5x; keep a softer floor in the unit test.
  EXPECT_GT(flat_bytes, coded_bytes) << "coded=" << coded_bytes
                                     << " flat=" << flat_bytes;
  EXPECT_TRUE(m.check_valid());
}

TEST(CodedBlocks, PrefixClampAt64KiLosslessRoundTrip) {
  // A shared prefix longer than the u16 prefix-length field (65535) must
  // clamp losslessly: the excess is re-stored in each suffix. 70000-char
  // common prefix, differing tails.
  block_size_guard guard;
  pam::set_leaf_block_size(32);
  const std::string huge(70000, 'q');
  std::vector<str_entry_t> es;
  for (int i = 0; i < 64; i++) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    es.push_back({huge + buf, static_cast<uint64_t>(i)});
  }
  str_map_t m = str_map_t::from_sorted(es);
  ASSERT_TRUE(m.check_valid());
  ASSERT_EQ(m.size(), es.size());
  size_t i = 0;
  for (auto [k, v] : m) {
    ASSERT_EQ(k, es[i].first);
    ASSERT_EQ(v, es[i].second);
    i++;
  }
  // Heterogeneous point lookups against the oversized keys.
  EXPECT_EQ(*m.find(std::string_view(es[7].first)), 7u);
  EXPECT_FALSE(m.contains(std::string_view(huge + "zzz")));
  // Range machinery across the clamped records.
  EXPECT_EQ(m.rank(es[32].first), 32u);
  auto sel = m.select(9);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->first, es[9].first);
}

TEST(CodedBlocks, CursorAndViewsOverEncodedBlocks) {
  block_size_guard guard;
  pam::set_leaf_block_size(16);
  auto es = sorted_str_entries(500, "metrics/cpu/");
  str_map_t m = str_map_t::from_sorted(es);

  // Bounded view in lockstep.
  auto view = m.view(es[100].first, es[299].first);
  size_t i = 100;
  view.for_each([&](const std::string& k, uint64_t v) {
    ASSERT_EQ(k, es[i].first);
    ASSERT_EQ(v, es[i].second);
    i++;
  });
  EXPECT_EQ(i, 300u);
  EXPECT_EQ(view.size(), 200u);
  auto last = view.last();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->first, es[299].first);

  // Structural cursor: decoded entry runs at chunk roots.
  auto cur = m.root_cursor();
  ASSERT_TRUE(static_cast<bool>(cur));
  size_t seen = 0;
  // In-order walk counting entries via the cursor protocol.
  std::vector<str_map_t::cursor> stack;
  auto c = cur;
  while (c || !stack.empty()) {
    while (c) {
      stack.push_back(c);
      c = c.left();
    }
    c = stack.back();
    stack.pop_back();
    seen += c.entry_count();
    EXPECT_LT(c.key(0), c.key(c.entry_count() - 1) + "x");
    c = c.right();
  }
  EXPECT_EQ(seen, 500u);
}

}  // namespace
