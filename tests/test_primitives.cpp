// Tests for the parallel sequence primitives (reduce/scan/pack/sort/...).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "parallel/merge_sort.h"
#include "parallel/primitives.h"
#include "parallel/sequence_ops.h"
#include "util/random.h"

namespace {

std::vector<uint64_t> test_data(size_t n, uint64_t seed, uint64_t range) {
  std::vector<uint64_t> v(n);
  pam::random_gen g(seed);
  for (auto& x : v) x = g.next() % range;
  return v;
}

// ---------------------------------------------------------------- reduce --

class ReduceSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(ReduceSizes, MatchesSequentialSum) {
  size_t n = GetParam();
  auto v = test_data(n, n * 7 + 1, 1000);
  uint64_t expect = std::accumulate(v.begin(), v.end(), uint64_t{0});
  uint64_t got = pam::reduce(v.data(), n, [](uint64_t a, uint64_t b) { return a + b; },
                             uint64_t{0});
  EXPECT_EQ(got, expect);
}

TEST_P(ReduceSizes, MatchesSequentialMax) {
  size_t n = GetParam();
  auto v = test_data(n, n * 13 + 5, 1u << 30);
  uint64_t expect = n == 0 ? 0 : *std::max_element(v.begin(), v.end());
  uint64_t got = pam::reduce(v.data(), n,
                             [](uint64_t a, uint64_t b) { return std::max(a, b); },
                             uint64_t{0});
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSizes,
                         ::testing::Values(0, 1, 2, 7, 100, 4096, 4097, 100000,
                                           1 << 20));

// Non-commutative (but associative) combine: string concat on small input,
// checking blocks fold in left-to-right order.
TEST(Reduce, NonCommutativeAssociative) {
  size_t n = 10000;
  std::vector<std::string> v(n);
  for (size_t i = 0; i < n; i++) v[i] = std::string(1, static_cast<char>('a' + i % 26));
  std::string expect;
  for (auto& s : v) expect += s;
  std::string got = pam::reduce(v.data(), n,
                                [](std::string a, const std::string& b) { return a + b; },
                                std::string());
  EXPECT_EQ(got, expect);
}

// ------------------------------------------------------------------ scan --

class ScanSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanSizes, ExclusivePrefixSums) {
  size_t n = GetParam();
  auto v = test_data(n, n + 3, 50);
  auto expect = v;
  uint64_t acc = 0;
  for (size_t i = 0; i < n; i++) {
    uint64_t nxt = acc + expect[i];
    expect[i] = acc;
    acc = nxt;
  }
  auto got = v;
  uint64_t total = pam::scan_exclusive(got.data(), n,
                                       [](uint64_t a, uint64_t b) { return a + b; },
                                       uint64_t{0});
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 100, 4096, 4097, 12289, 1 << 20));

// ------------------------------------------------------------- pack etc. --

TEST(Pack, KeepsFlaggedInOrder) {
  size_t n = 100001;
  auto v = test_data(n, 99, 1000000);
  std::vector<unsigned char> flags(n);
  for (size_t i = 0; i < n; i++) flags[i] = (v[i] % 3 == 0);
  auto got = pam::pack(v.data(), flags.data(), n);
  std::vector<uint64_t> expect;
  for (size_t i = 0; i < n; i++)
    if (flags[i]) expect.push_back(v[i]);
  EXPECT_EQ(got, expect);
}

TEST(Filter, MatchesStdCopyIf) {
  size_t n = 54321;
  auto v = test_data(n, 7, 1000);
  auto got = pam::filter_seq(v.data(), n, [](uint64_t x) { return x < 100; });
  std::vector<uint64_t> expect;
  std::copy_if(v.begin(), v.end(), std::back_inserter(expect),
               [](uint64_t x) { return x < 100; });
  EXPECT_EQ(got, expect);
}

TEST(PackIndices, FindsAllFlagPositions) {
  size_t n = 70000;
  std::vector<unsigned char> flags(n);
  for (size_t i = 0; i < n; i++) flags[i] = (pam::hash64(i) % 7 == 0);
  auto got = pam::pack_indices(flags.data(), n);
  std::vector<size_t> expect;
  for (size_t i = 0; i < n; i++)
    if (flags[i]) expect.push_back(i);
  EXPECT_EQ(got, expect);
}

TEST(Tabulate, ProducesFunctionValues) {
  auto got = pam::tabulate<uint64_t>(100000, [](size_t i) { return i * i; });
  ASSERT_EQ(got.size(), 100000u);
  EXPECT_EQ(got[333], 333u * 333u);
  EXPECT_EQ(got[99999], 99999ull * 99999ull);
}

// ------------------------------------------------------------------ sort --

class SortSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SortSizes, MatchesStdStableSort) {
  size_t n = GetParam();
  auto v = test_data(n, n * 31 + 7, std::max<size_t>(n, 16));
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end());
  pam::parallel_sort(v, std::less<uint64_t>());
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 3, 100, 8192, 8193, 100000,
                                           1 << 21));

TEST(Sort, StableOnEqualKeys) {
  // Sort (key, original_index) pairs by key only; equal keys must preserve
  // index order.
  size_t n = 200000;
  std::vector<std::pair<uint32_t, uint32_t>> v(n);
  pam::random_gen g(5);
  for (size_t i = 0; i < n; i++)
    v[i] = {static_cast<uint32_t>(g.next() % 64), static_cast<uint32_t>(i)};
  pam::parallel_sort(v.data(), n,
                     [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < n; i++) {
    ASSERT_LE(v[i - 1].first, v[i].first);
    if (v[i - 1].first == v[i].first) {
      ASSERT_LT(v[i - 1].second, v[i].second);
    }
  }
}

TEST(Sort, AlreadySortedAndReversed) {
  size_t n = 300000;
  std::vector<uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  pam::parallel_sort(v, std::less<uint64_t>());
  for (size_t i = 0; i < n; i++) ASSERT_EQ(v[i], i);
  std::reverse(v.begin(), v.end());
  pam::parallel_sort(v, std::less<uint64_t>());
  for (size_t i = 0; i < n; i++) ASSERT_EQ(v[i], i);
}

TEST(Sort, AllEqualKeys) {
  std::vector<uint64_t> v(100000, 7);
  pam::parallel_sort(v, std::less<uint64_t>());
  for (auto x : v) ASSERT_EQ(x, 7u);
}

// --------------------------------------------------- combine_sorted_runs --

TEST(CombineSortedRuns, SumsDuplicateKeys) {
  std::vector<std::pair<int, int>> a = {{1, 1}, {1, 2}, {2, 5}, {3, 1}, {3, 1},
                                        {3, 1}, {9, 4}};
  auto out = pam::combine_sorted_runs(
      a, [](int x, int y) { return x < y; }, [](int x, int y) { return x + y; });
  std::vector<std::pair<int, int>> expect = {{1, 3}, {2, 5}, {3, 3}, {9, 4}};
  EXPECT_EQ(out, expect);
}

TEST(CombineSortedRuns, LeftToRightOrderWithNonCommutativeCombine) {
  // combine = "take left" must keep the first value of each run,
  // combine = "take right" must keep the last.
  std::vector<std::pair<int, int>> a = {{1, 10}, {1, 20}, {1, 30}, {2, 7}};
  auto first = pam::combine_sorted_runs(
      a, [](int x, int y) { return x < y; }, [](int x, int) { return x; });
  auto last = pam::combine_sorted_runs(
      a, [](int x, int y) { return x < y; }, [](int, int y) { return y; });
  EXPECT_EQ(first[0].second, 10);
  EXPECT_EQ(last[0].second, 30);
  EXPECT_EQ(first[1].second, 7);
}

TEST(CombineSortedRuns, LargeRandom) {
  size_t n = 500000;
  std::vector<std::pair<uint64_t, uint64_t>> a(n);
  pam::random_gen g(11);
  for (auto& kv : a) kv = {g.next() % 5000, g.next() % 100};
  pam::parallel_sort(a.data(), n,
                     [](const auto& x, const auto& y) { return x.first < y.first; });
  auto got = pam::combine_sorted_runs(
      a, [](uint64_t x, uint64_t y) { return x < y; },
      [](uint64_t x, uint64_t y) { return x + y; });
  // sequential oracle
  std::vector<std::pair<uint64_t, uint64_t>> expect;
  for (auto& kv : a) {
    if (!expect.empty() && expect.back().first == kv.first)
      expect.back().second += kv.second;
    else
      expect.push_back(kv);
  }
  EXPECT_EQ(got, expect);
}

TEST(CombineSortedRuns, EmptyInput) {
  std::vector<std::pair<int, int>> a;
  auto out = pam::combine_sorted_runs(
      a, [](int x, int y) { return x < y; }, [](int x, int y) { return x + y; });
  EXPECT_TRUE(out.empty());
}

TEST(RunBoundaries, GroupsByKey) {
  std::vector<int> a = {5, 5, 5, 7, 9, 9, 12};
  auto idx = pam::run_boundaries(a, [](int x) { return x; },
                                 [](int x, int y) { return x < y; });
  std::vector<size_t> expect = {0, 3, 4, 6};
  EXPECT_EQ(idx, expect);
}

}  // namespace
