// Tests for the version-history subsystem (src/server/version_store.h,
// change_feed.h, materialized_view.h): capture/dedup/trim semantics,
// time-travel snapshots, cross-shard stitched diffs against std::map
// oracles, feed subscription / lag / rebase protocol, incremental view
// maintenance vs full recompute, and a concurrent writers-vs-subscriber
// mirror test (runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "server/change_feed.h"
#include "server/kv_store.h"
#include "server/materialized_view.h"
#include "server/version_store.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;
using map_t = pam::aug_map<pam::sum_entry<K, V>>;
using entry_t = map_t::entry_t;
using sharded_t = pam::sharded_map<map_t>;
using store_t = pam::version_store<map_t>;
using feed_t = pam::change_feed<map_t>;
using change_t = pam::map_change<map_t>;

void apply_change(std::map<K, V>& m, const change_t& c) {
  if (c.after.has_value()) {
    m[c.key] = *c.after;
  } else {
    m.erase(c.key);
  }
}

std::vector<entry_t> to_entries(const std::map<K, V>& m) {
  return std::vector<entry_t>(m.begin(), m.end());
}

// ------------------------------------------------------------- capture --

TEST(VersionStore, CaptureDedupsQuiescentCuts) {
  sharded_t sm(std::vector<K>{100, 200});
  store_t vs(sm, {.max_versions = 8});
  EXPECT_EQ(vs.latest_version(), 0u);

  uint64_t v1 = vs.capture();
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(vs.capture(), v1);  // nothing committed: same version
  EXPECT_EQ(vs.retained(), 1u);

  sm.insert(5, 50);
  uint64_t v2 = vs.capture();
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(vs.retained(), 2u);
  EXPECT_EQ(vs.oldest_version(), v1);
  EXPECT_EQ(vs.latest_version(), v2);
}

TEST(VersionStore, SnapshotAtTimeTravels) {
  sharded_t sm(std::vector<K>{1000});
  store_t vs(sm);
  sm.insert(1, 10);
  uint64_t v1 = vs.capture();
  sm.insert(1, 11);
  sm.insert(2000, 20);
  uint64_t v2 = vs.capture();

  auto s1 = vs.snapshot_at(v1);
  auto s2 = vs.snapshot_at(v2);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s1->find(1), std::optional<V>(10));
  EXPECT_EQ(s1->find(2000), std::nullopt);
  EXPECT_EQ(s2->find(1), std::optional<V>(11));
  EXPECT_EQ(s2->find(2000), std::optional<V>(20));
  EXPECT_FALSE(vs.snapshot_at(99).has_value());
  EXPECT_FALSE(vs.snapshot_at(0).has_value());
}

TEST(VersionStore, CountTrimEvictsOldest) {
  sharded_t sm(std::vector<K>{});
  store_t vs(sm, {.max_versions = 3});
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; i++) {
    sm.insert(static_cast<K>(i), 1);
    ids.push_back(vs.capture());
  }
  EXPECT_EQ(vs.retained(), 3u);
  EXPECT_EQ(vs.oldest_version(), ids[3]);
  EXPECT_FALSE(vs.snapshot_at(ids[0]).has_value());
  EXPECT_TRUE(vs.snapshot_at(ids[5]).has_value());

  vs.trim_to(1);
  EXPECT_EQ(vs.retained(), 1u);
  EXPECT_EQ(vs.oldest_version(), ids[5]);
}

TEST(VersionStore, AgeTrimKeepsLatest) {
  sharded_t sm(std::vector<K>{});
  store_t vs(sm);
  sm.insert(1, 1);
  vs.capture();
  sm.insert(2, 2);
  vs.capture();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  vs.trim_older_than(std::chrono::milliseconds(1));
  // Age trim may drop everything it was asked to; the store still answers.
  EXPECT_LE(vs.retained(), 2u);
  sm.insert(3, 3);
  uint64_t v = vs.capture();
  EXPECT_TRUE(vs.snapshot_at(v).has_value());
}

// ----------------------------------------------------------------- diff --

TEST(VersionStore, DiffMatchesOracleAcrossShards) {
  pam::random_gen g(11);
  sharded_t sm(std::vector<K>{2500, 5000, 7500});
  store_t vs(sm, {.max_versions = 16});
  std::map<K, V> oracle;

  uint64_t prev_v = vs.capture();
  std::map<K, V> prev_oracle = oracle;

  for (int round = 0; round < 8; round++) {
    // Mixed bulk churn.
    std::vector<entry_t> batch;
    for (int i = 0; i < 400; i++) batch.push_back({g.next() % 10000, g.next() % 1000});
    for (auto& [k, v] : batch) oracle[k] = v;
    sm.multi_insert(std::move(batch));
    std::vector<K> dels;
    for (int i = 0; i < 120; i++) dels.push_back(g.next() % 10000);
    for (K k : dels) oracle.erase(k);
    sm.multi_delete(std::move(dels));

    uint64_t v = vs.capture();
    auto changes = vs.diff(prev_v, v);
    ASSERT_TRUE(changes.has_value());

    // Applying the stream to the previous oracle must reproduce the new.
    std::map<K, V> replay = prev_oracle;
    K last_key = 0;
    bool first = true;
    for (const auto& c : *changes) {
      if (!first) {
        EXPECT_LT(last_key, c.key);  // globally key-ordered
      }
      last_key = c.key;
      first = false;
      apply_change(replay, c);
    }
    EXPECT_EQ(replay, oracle) << "round " << round;

    // And the classification agrees with the values.
    for (const auto& c : *changes) {
      bool in_prev = prev_oracle.count(c.key) > 0;
      bool in_cur = oracle.count(c.key) > 0;
      switch (c.kind) {
        case pam::change_kind::added:
          EXPECT_TRUE(!in_prev && in_cur);
          break;
        case pam::change_kind::removed:
          EXPECT_TRUE(in_prev && !in_cur);
          break;
        case pam::change_kind::updated:
          EXPECT_TRUE(in_prev && in_cur);
          EXPECT_NE(prev_oracle[c.key], oracle[c.key]);
          break;
      }
    }
    prev_v = v;
    prev_oracle = oracle;
  }

  // Self-diff is empty; trimmed versions report nullopt.
  EXPECT_TRUE(vs.diff(prev_v, prev_v)->empty());
  vs.trim_to(1);
  EXPECT_FALSE(vs.diff(1, prev_v).has_value());
}

// ----------------------------------------------------------------- feed --

TEST(ChangeFeed, PollDrainsBetweenCheckpoints) {
  sharded_t sm(std::vector<K>{500});
  store_t vs(sm);
  feed_t feed(vs);
  sm.insert(1, 1);
  vs.capture();

  auto sub = feed.subscribe();
  auto b0 = feed.poll(sub);
  EXPECT_TRUE(b0.empty());
  EXPECT_FALSE(b0.lagged);

  sm.insert(2, 2);
  sm.insert(700, 7);
  vs.capture();
  auto b1 = feed.poll(sub);
  EXPECT_FALSE(b1.lagged);
  ASSERT_EQ(b1.changes.size(), 2u);
  EXPECT_EQ(b1.changes[0].key, 2u);
  EXPECT_EQ(b1.changes[1].key, 700u);
  EXPECT_EQ(sub.version(), vs.latest_version());

  // Nothing new: the next poll is empty.
  EXPECT_TRUE(feed.poll(sub).empty());
}

TEST(ChangeFeed, LagAndRebase) {
  sharded_t sm(std::vector<K>{});
  store_t vs(sm, {.max_versions = 2});
  feed_t feed(vs);

  sm.insert(1, 1);
  vs.capture();
  auto sub = feed.subscribe();

  // Push the subscriber's version out of the ring.
  for (K k = 2; k < 6; k++) {
    sm.insert(k, k);
    vs.capture();
  }
  auto b = feed.poll(sub);
  EXPECT_TRUE(b.lagged);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(sub.version(), 1u);  // cursor unchanged on lag

  auto [snap, v] = feed.rebase(sub);
  EXPECT_EQ(v, vs.latest_version());
  EXPECT_EQ(snap.size(), 5u);
  sm.insert(100, 100);
  vs.capture();
  auto b2 = feed.poll(sub);
  EXPECT_FALSE(b2.lagged);
  ASSERT_EQ(b2.changes.size(), 1u);
  EXPECT_EQ(b2.changes[0].key, 100u);
}

TEST(ChangeFeed, FreshSubscriptionMustRebaseFirst) {
  sharded_t sm(std::vector<K>{});
  store_t vs(sm);
  feed_t feed(vs);
  feed_t::subscription sub;  // default: version 0
  sm.insert(1, 1);
  vs.capture();
  auto b = feed.poll(sub);
  EXPECT_TRUE(b.lagged);  // no base version: must rebase
  feed.rebase(sub);
  EXPECT_TRUE(feed.poll(sub).empty());
}

// ------------------------------------------------------------- kv_store --

TEST(KvStoreHistory, CheckpointDiffFeed) {
  pam::kv_store<map_t> store(map_t{}, {.splitters = {1000},
                                       .retain_versions = 8});
  ASSERT_TRUE(store.has_history());
  uint64_t v1 = store.history().latest_version();
  EXPECT_EQ(v1, 1u);  // initial contents captured at construction

  store.put(1, 10);
  store.put(2000, 20);
  uint64_t v2 = store.checkpoint();
  EXPECT_GT(v2, v1);

  auto changes = store.history().diff(v1, v2);
  ASSERT_TRUE(changes.has_value());
  ASSERT_EQ(changes->size(), 2u);
  EXPECT_EQ((*changes)[0].key, 1u);
  EXPECT_EQ((*changes)[1].key, 2000u);

  // Time-travel read through the facade's history.
  auto old_snap = store.history().snapshot_at(v1);
  ASSERT_TRUE(old_snap.has_value());
  EXPECT_TRUE(old_snap->empty());

  // checkpoint() without new writes dedups.
  EXPECT_EQ(store.checkpoint(), v2);
}

TEST(KvStoreHistory, DisabledHistoryThrowsInsteadOfUB) {
  pam::kv_store<map_t> store;  // default options: retain_versions = 0
  EXPECT_FALSE(store.has_history());
  EXPECT_THROW(store.checkpoint(), std::logic_error);
  EXPECT_THROW(store.history(), std::logic_error);
  EXPECT_THROW(store.feed(), std::logic_error);
  const auto& cstore = store;
  EXPECT_THROW(cstore.history(), std::logic_error);
}

// ---------------------------------------------------- materialized views --

TEST(MaterializedView, GroupAggregateTracksOracle) {
  pam::random_gen g(21);
  sharded_t sm(std::vector<K>{5000});
  store_t vs(sm, {.max_versions = 8});
  std::map<K, V> oracle;

  auto policy = pam::make_group_aggregate<map_t, uint64_t>(
      [](K, V v) { return v; }, [](uint64_t a, uint64_t b) { return a + b; },
      [](uint64_t a, uint64_t b) { return a - b; }, uint64_t{0});
  pam::materialized_view<map_t, decltype(policy)> view(vs, policy);

  std::vector<entry_t> init;
  for (int i = 0; i < 5000; i++) init.push_back({g.next() % 10000, g.next() % 100});
  for (auto& [k, v] : init) oracle[k] = v;
  sm.multi_insert(std::move(init));
  vs.capture();
  view.rebuild();

  for (int round = 0; round < 6; round++) {
    std::vector<entry_t> batch;
    for (int i = 0; i < 300; i++) batch.push_back({g.next() % 10000, g.next() % 100});
    for (auto& [k, v] : batch) oracle[k] = v;
    sm.multi_insert(std::move(batch));
    std::vector<K> dels;
    for (int i = 0; i < 80; i++) dels.push_back(g.next() % 10000);
    for (K k : dels) oracle.erase(k);
    sm.multi_delete(std::move(dels));
    vs.capture();

    auto st = view.refresh();
    EXPECT_FALSE(st.rebuilt) << "round " << round;
    uint64_t want = 0;
    for (auto& [k, v] : oracle) want += v;
    EXPECT_EQ(view.state(), want) << "round " << round;
  }
  EXPECT_EQ(view.total_rebuilds(), 1u);
  EXPECT_GT(view.total_changes_applied(), 0u);
}

TEST(MaterializedView, BucketedSumsMatchRecompute) {
  pam::random_gen g(31);
  sharded_t sm(std::vector<K>{});
  store_t vs(sm);
  using policy_t = pam::bucketed_sum_policy<map_t>;
  pam::materialized_view<map_t, policy_t> view(
      vs, {.bucket_width = 1000, .num_buckets = 16});

  std::map<K, V> oracle;
  std::vector<entry_t> init;
  for (int i = 0; i < 8000; i++) init.push_back({g.next() % 20000, g.next() % 50});
  for (auto& [k, v] : init) oracle[k] = v;
  sm.multi_insert(std::move(init));
  vs.capture();
  view.rebuild();

  for (int round = 0; round < 4; round++) {
    std::vector<entry_t> batch;
    for (int i = 0; i < 200; i++) batch.push_back({g.next() % 20000, g.next() % 50});
    for (auto& [k, v] : batch) oracle[k] = v;
    sm.multi_insert(std::move(batch));
    std::vector<K> dels;
    for (int i = 0; i < 60; i++) dels.push_back(g.next() % 20000);
    for (K k : dels) oracle.erase(k);
    sm.multi_delete(std::move(dels));
    vs.capture();
    view.refresh();

    // Recompute the expected buckets from the oracle.
    policy_t p{.bucket_width = 1000, .num_buckets = 16};
    std::vector<policy_t::bucket> want(16);
    for (auto& [k, v] : oracle) {
      auto& b = want[p.bucket_of(k)];
      b.count++;
      b.sum += v;
    }
    EXPECT_EQ(view.state(), want) << "round " << round;
  }
}

TEST(MaterializedView, ValueIndexTopKMatchesSort) {
  pam::random_gen g(41);
  sharded_t sm(std::vector<K>{100000});
  store_t vs(sm);
  using policy_t = pam::value_index_policy<map_t>;
  pam::materialized_view<map_t, policy_t> view(vs);

  std::map<K, V> oracle;
  std::vector<entry_t> init;
  for (int i = 0; i < 6000; i++) init.push_back({g.next() % 200000, g.next() % 100000});
  for (auto& [k, v] : init) oracle[k] = v;
  sm.multi_insert(std::move(init));
  vs.capture();
  view.rebuild();

  for (int round = 0; round < 4; round++) {
    std::vector<entry_t> batch;
    for (int i = 0; i < 250; i++) batch.push_back({g.next() % 200000, g.next() % 100000});
    for (auto& [k, v] : batch) oracle[k] = v;
    sm.multi_insert(std::move(batch));
    std::vector<K> dels;
    for (int i = 0; i < 70; i++) dels.push_back(g.next() % 200000);
    for (K k : dels) oracle.erase(k);
    sm.multi_delete(std::move(dels));
    vs.capture();
    auto st = view.refresh();
    EXPECT_FALSE(st.rebuilt);

    ASSERT_EQ(view.state().size(), oracle.size());
    auto got = policy_t::top_k(view.state(), 10);
    std::vector<std::pair<V, K>> want;
    for (auto& [k, v] : oracle) want.push_back({v, k});
    std::sort(want.begin(), want.end(), std::greater<>());
    want.resize(std::min<size_t>(10, want.size()));
    EXPECT_EQ(got, want) << "round " << round;
  }
}

TEST(MaterializedView, LaggedViewFallsBackToRebuild) {
  sharded_t sm(std::vector<K>{});
  store_t vs(sm, {.max_versions = 2});
  auto policy = pam::make_group_aggregate<map_t, uint64_t>(
      [](K, V v) { return v; }, [](uint64_t a, uint64_t b) { return a + b; },
      [](uint64_t a, uint64_t b) { return a - b; }, uint64_t{0});
  pam::materialized_view<map_t, decltype(policy)> view(vs, policy);

  sm.insert(1, 5);
  vs.capture();
  view.rebuild();
  for (K k = 2; k < 8; k++) {
    sm.insert(k, 5);
    vs.capture();  // evicts the view's version
  }
  auto st = view.refresh();
  EXPECT_TRUE(st.rebuilt);
  EXPECT_EQ(view.state(), 35u);
  EXPECT_EQ(view.total_rebuilds(), 2u);
}

// ------------------------------------------------------------ concurrency --

// Writers commit batches while a checkpointer captures versions and a
// subscriber replays the change stream into a local std::map mirror. At the
// end, one final checkpoint + drain must make the mirror equal the store —
// any torn cut, unordered stream, or missed change surfaces here. A second
// validation thread hammers time-travel snapshots. Runs under TSan in CI.
TEST(VersionStoreConcurrent, SubscriberMirrorsWriters) {
  const int kWriters = 4, kRoundsPerWriter = 60, kBatch = 50;
  sharded_t sm(std::vector<K>{4000, 8000, 12000});
  store_t vs(sm, {.max_versions = 4096});  // deep ring: no lag in this test
  feed_t feed(vs);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      pam::random_gen g(5000 + w);
      for (int r = 0; r < kRoundsPerWriter; r++) {
        std::vector<entry_t> batch;
        for (int i = 0; i < kBatch; i++)
          batch.push_back({g.next() % 16000, g.next() % 1000});
        sm.multi_insert(std::move(batch));
        if (g.next() % 3 == 0) {
          std::vector<K> dels;
          for (int i = 0; i < 10; i++) dels.push_back(g.next() % 16000);
          sm.multi_delete(std::move(dels));
        }
      }
    });
  }

  std::thread checkpointer([&] {
    while (!stop.load()) {
      vs.capture();
      std::this_thread::yield();
    }
  });

  std::map<K, V> mirror;
  std::thread subscriber([&] {
    auto sub = feed.subscribe();
    // Bootstrap: base state at the subscription version.
    auto [snap, v] = feed.rebase(sub);
    snap.for_each([&](K k, V val) { mirror[k] = val; });
    while (!stop.load()) {
      auto b = feed.poll(sub);
      if (b.lagged) {
        violations.fetch_add(1);  // ring is deep enough: lag is a bug here
        return;
      }
      for (const auto& c : b.changes) apply_change(mirror, c);
    }
    // Final drain after writers and checkpointer stopped.
    auto b = feed.poll(sub);
    if (b.lagged) violations.fetch_add(1);
    for (const auto& c : b.changes) apply_change(mirror, c);
  });

  std::thread time_traveler([&] {
    while (!stop.load()) {
      uint64_t latest = vs.latest_version();
      if (latest == 0) continue;
      auto snap = vs.snapshot_at(latest);
      if (snap.has_value()) {
        // A retained cut must be internally consistent.
        for (size_t s = 0; s < snap->num_shards(); s++) {
          const map_t& shard = snap->shard(s);
          V sum = 0;
          shard.for_each([&](K, V val) { sum += val; });
          if (shard.aug_val() != sum) violations.fetch_add(1);
        }
      }
    }
  });

  for (auto& t : writers) t.join();
  vs.capture();  // final cut covers every committed batch
  stop.store(true);
  checkpointer.join();
  time_traveler.join();
  subscriber.join();

  EXPECT_EQ(violations.load(), 0);
  auto final_entries = sm.snapshot_all().entries();
  EXPECT_EQ(final_entries, to_entries(mirror));
}

}  // namespace
