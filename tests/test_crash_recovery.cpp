// Fault-injected crash recovery: the durability layer's contract, verified
// differentially against an oracle.
//
// The harness runs a deterministic workload of acked batches against a
// durable kv_store whose I/O rides store::faulty_fs, arms exactly one
// failpoint (short write / torn page / fsync failure / crash-before-rename)
// at the Nth operation of its kind, catches the injected crash_error, then
// recovers from the surviving bytes and checks:
//
//   * the recovered state equals the oracle at SOME prefix of committed
//     batches — never a torn half-batch, never an interleaving;
//   * the prefix is at least everything acked before the crash (an acked
//     batch is never lost) — it may extend past the ack point, matching
//     real storage semantics where bytes can land without their barrier;
//   * recovery itself is clean: a second recover of the repaired directory
//     yields the identical state.
//
// Sweeping the arm count N drags the crash point across the whole
// lifecycle: mid-WAL-append, mid-checkpoint-write, mid-fsync, mid-rename.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "server/kv_store.h"
#include "util/random.h"

namespace {

using map_t = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>>;
using store_t = pam::kv_store<map_t>;
using oracle_t = std::map<uint64_t, uint64_t>;

struct temp_dir {
  std::string path;
  explicit temp_dir(const std::string& tag) {
    path = ::testing::TempDir() + "pam_crash_" + tag;
    std::string cmd = "rm -rf " + path;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
  }
  ~temp_dir() {
    std::string cmd = "rm -rf " + path;
    (void)std::system(cmd.c_str());
  }
};

// The deterministic workload, expressed as the durability layer sees it: a
// flat sequence of batches, each one WAL record logged-then-applied
// synchronously. Batch 2r upserts round r's keys (plus a rotating overwrite
// of a shared key so every prefix state is distinct); batch 2r+1 deletes
// one of them. The atomicity unit of the crash contract is the BATCH — a
// crash may land between a round's two batches, and recovering that state
// is correct.
struct batch_t {
  std::vector<map_t::entry_t> ups;
  std::vector<uint64_t> dels;
};

std::vector<batch_t> make_batches(uint64_t rounds) {
  std::vector<batch_t> out;
  for (uint64_t r = 0; r < rounds; r++) {
    batch_t puts;
    for (uint64_t k = 0; k < 10; k++) {
      puts.ups.emplace_back(1000 + r * 10 + k, r * 1000 + k);
    }
    puts.ups.emplace_back(7, r);  // distinguishes prefixes
    out.push_back(std::move(puts));
    batch_t dels;
    dels.dels.push_back(1000 + r * 10);
    out.push_back(std::move(dels));
  }
  return out;
}

void oracle_apply(oracle_t& o, const batch_t& b) {
  for (const auto& [k, v] : b.ups) o[k] = v;
  for (uint64_t k : b.dels) o.erase(k);
}

// Throws crash_error when the armed failpoint fires mid-batch.
void store_apply(store_t& s, const batch_t& b) {
  if (!b.ups.empty()) s.put_batch(b.ups);
  if (!b.dels.empty()) s.erase_batch(b.dels);
}

void expect_equals(const store_t& s, const oracle_t& o, const char* what) {
  ASSERT_EQ(s.size(), o.size()) << what;
  auto entries = s.snapshot().entries();
  size_t i = 0;
  for (const auto& [k, v] : o) {
    ASSERT_EQ(entries[i].first, k) << what;
    ASSERT_EQ(entries[i].second, v) << what;
    i++;
  }
}

bool snapshot_equals(const pam::sharded_snapshot<map_t>& snap,
                     const oracle_t& o) {
  if (snap.size() != o.size()) return false;
  auto entries = snap.entries();
  size_t i = 0;
  for (const auto& [k, v] : o) {
    if (entries[i].first != k || entries[i].second != v) return false;
    i++;
  }
  return true;
}

// One crash experiment: arm `counter` at N, run rounds (checkpoint every
// third) until the injected crash (or workload end), recover, and verify
// the prefix contract. Returns false when N exceeded the total number of
// ops of that kind (the sweep's stop condition).
bool run_crash_case(const std::string& tag,
                    std::atomic<long> pam::store::failpoints::* counter,
                    long n) {
  constexpr uint64_t kRounds = 12;
  temp_dir td(tag + "_" + std::to_string(n));
  auto fp = std::make_shared<pam::store::failpoints>();
  auto fs = std::make_shared<pam::store::faulty_fs>(pam::store::posix_fs(), fp);

  // Every oracle prefix state: prefix_states[i] = oracle after i batches.
  std::vector<batch_t> batches = make_batches(kRounds);
  std::vector<oracle_t> prefix_states(1);
  for (const batch_t& b : batches) {
    oracle_t next = prefix_states.back();
    oracle_apply(next, b);
    prefix_states.push_back(std::move(next));
  }

  uint64_t acked = 0;      // batches fully acked before the crash
  uint64_t attempted = 0;  // batches started (the crashed one may surface)
  bool crashed = false;
  {
    store_t::options opt;
    opt.splitters = {1040, 1080};
    opt.combiner.flush_interval = std::chrono::milliseconds(0);
    pam::store::durability_options dopts;
    dopts.dir = td.path;
    dopts.io = fs;
    opt.durability = dopts;
    store_t store(map_t{}, opt);

    (fp.get()->*counter).store(n);
    try {
      for (uint64_t i = 0; i < batches.size(); i++) {
        attempted = i + 1;
        store_apply(store, batches[i]);
        acked = i + 1;
        if (i % 5 == 4) store.save_checkpoint();
      }
    } catch (const pam::store::crash_error&) {
      crashed = true;
    }
    fp->disarm();
    // Tear down with the dead writer still in place — the destructor path
    // must not throw even though the final drain cannot log.
  }

  if (!crashed) {
    // N was larger than the number of ops of this kind in the whole run:
    // nothing fired, the store must simply equal the full oracle.
    EXPECT_EQ(fp->crashes_injected.load(), 0) << tag << " N=" << n;
  }

  pam::store::durability_options dopts;
  dopts.dir = td.path;
  dopts.io = fs;  // disarmed; recovery reads are never failed anyway
  store_t::recovery_stats rs;
  store_t recovered = store_t::recover(dopts, {}, &rs);
  EXPECT_TRUE(rs.recovered) << tag << " N=" << n;

  // The contract: the recovered state is the oracle at some round count j
  // with acked <= j <= attempted. Nothing else is acceptable — not a torn
  // record, not a lost acked batch, not a half-applied round.
  auto snap = recovered.snapshot();
  bool matched = false;
  uint64_t matched_j = 0;
  for (uint64_t j = acked; j <= attempted && j < prefix_states.size(); j++) {
    if (snapshot_equals(snap, prefix_states[j])) {
      matched = true;
      matched_j = j;
      break;
    }
  }
  EXPECT_TRUE(matched) << tag << " N=" << n << ": recovered state matches no "
                       << "prefix in [" << acked << ", " << attempted << "]"
                       << " (crashed=" << crashed << ")";

  // Recovery is deterministic: recovering the repaired directory again
  // (fresh store each time) reproduces the same state.
  {
    store_t again = store_t::recover(dopts);
    if (matched) {
      expect_equals(again, prefix_states[matched_j], "second recover");
    }
  }

  // The recovered store serves writes durably.
  recovered.put(424242, 1);
  recovered.flush();
  EXPECT_FALSE(recovered.failed());
  return crashed;
}

class CrashMatrix : public ::testing::Test {};

// Sweep each fault kind's arm count until the workload completes without
// tripping — every N in between lands the crash at a different point in
// the WAL-append / checkpoint-write / fsync / rename lifecycle.
void sweep(const std::string& tag,
           std::atomic<long> pam::store::failpoints::* counter, long step,
           long max_n) {
  int fired = 0;
  for (long n = 1; n <= max_n; n += step) {
    if (run_crash_case(tag, counter, n)) {
      fired++;
    } else {
      break;  // N exceeded the op count: later arms cannot fire either
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(fired, 0) << tag << ": no arm count ever fired";
}

TEST_F(CrashMatrix, ShortWriteMidWalAppendOrCheckpoint) {
  sweep("short", &pam::store::failpoints::writes_until_short, 7, 120);
}

TEST_F(CrashMatrix, TornPageMidWalAppendOrCheckpoint) {
  sweep("torn", &pam::store::failpoints::writes_until_torn, 9, 120);
}

TEST_F(CrashMatrix, FsyncFailure) {
  sweep("fsync", &pam::store::failpoints::fsyncs_until_fail, 5, 90);
}

TEST_F(CrashMatrix, CrashBeforeCommitRename) {
  // Renames only happen at checkpoint commit points, so every N lands
  // exactly on a CURRENT publication.
  sweep("rename", &pam::store::failpoints::renames_until_crash, 1, 8);
}

// The mutexed-oracle differential under real concurrency: many writer
// threads race buffered puts through the combiner (every flushed batch
// WAL-logged before it becomes visible), a clean shutdown drains, and
// recovery must reproduce exactly the oracle. Runs under TSan in CI.
TEST(CrashRecovery, ConcurrentWritersCleanShutdownRecoverExactly) {
  temp_dir td("concurrent");
  std::mutex oracle_mu;
  oracle_t oracle;
  {
    store_t::options opt;
    opt.splitters = {2500, 5000, 7500};
    opt.combiner.batch_size = 64;
    opt.combiner.flush_interval = std::chrono::milliseconds(1);
    pam::store::durability_options dopts;
    dopts.dir = td.path;
    opt.durability = dopts;
    store_t store(map_t{}, opt);

    constexpr int kThreads = 4;
    constexpr uint64_t kOps = 800;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
      workers.emplace_back([&, t] {
        pam::random_gen g(uint64_t(t) + 1);
        for (uint64_t i = 0; i < kOps; i++) {
          // Disjoint per-thread key space: the oracle needs no cross-thread
          // ordering, only that every acked op lands.
          uint64_t k = uint64_t(t) * 10000 + (g.next() % 2500);
          uint64_t v = g.next();
          store.put(k, v);
          std::lock_guard<std::mutex> lk(oracle_mu);
          oracle[k] = v;
        }
      });
    }
    for (auto& w : workers) w.join();
    store.flush();
    store.save_checkpoint();
    ASSERT_FALSE(store.failed());
    expect_equals(store, oracle, "pre-shutdown");
  }
  pam::store::durability_options dopts;
  dopts.dir = td.path;
  store_t recovered = store_t::recover(dopts);
  expect_equals(recovered, oracle, "post-recovery");
}

// Checkpoints racing live writers: a batch whose WAL record lands with
// seq <= covered but whose apply had not yet happened when the cut was
// snapshotted would be absent from the checkpoint AND skipped by replay —
// an acked batch silently lost after recovery. save_checkpoint fences the
// (sync, read covered, snapshot) triple against both writer paths (the
// combiner's flush locks via quiesced, bulk writes via the cut fence);
// this test hammers continuous checkpoints against concurrent put() and
// put_batch() traffic and requires exact oracle equality after recovery.
// Runs under TSan in CI.
TEST(CrashRecovery, CheckpointsRacingWritersNeverLoseAckedBatches) {
  temp_dir td("ckpt_race");
  std::mutex oracle_mu;
  oracle_t oracle;
  {
    store_t::options opt;
    opt.splitters = {2500, 5000, 7500};
    opt.combiner.batch_size = 8;  // small batches: many sink/apply windows
    opt.combiner.flush_interval = std::chrono::milliseconds(1);
    pam::store::durability_options dopts;
    dopts.dir = td.path;
    opt.durability = dopts;
    store_t store(map_t{}, opt);

    // The checkpointer stops FIRST, while writers are still going: a batch
    // lost by a racy cut stays lost only if no later checkpoint re-covers
    // its effects, so the last checkpoint must be the one racing traffic.
    std::atomic<bool> ckpts_done{false};
    std::thread checkpointer([&] {
      for (int k = 0; k < 15; k++) store.save_checkpoint();
      ckpts_done.store(true, std::memory_order_release);
    });

    constexpr int kThreads = 4;
    constexpr uint64_t kMinOps = 400;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
      workers.emplace_back([&, t] {
        pam::random_gen g(uint64_t(t) + 99);
        for (uint64_t i = 0;
             i < kMinOps || !ckpts_done.load(std::memory_order_acquire);
             i++) {
          uint64_t v = g.next();
          uint64_t k;
          if (i % 4 == 3) {
            // Bulk path — logs and applies outside the combiner locks.
            // Disjoint from the buffered key range: mixing the two paths
            // on one key is racy by the kv_store contract.
            k = uint64_t(t) * 10000 + 5000 + (g.next() % 1500);
            store.put_batch({{k, v}});
          } else {
            k = uint64_t(t) * 10000 + (g.next() % 1500);
            store.put(k, v);
          }
          std::lock_guard<std::mutex> lk(oracle_mu);
          oracle[k] = v;
        }
      });
    }
    checkpointer.join();
    for (auto& w : workers) w.join();
    store.flush();
    ASSERT_FALSE(store.failed());
    expect_equals(store, oracle, "pre-shutdown");
  }
  pam::store::durability_options dopts;
  dopts.dir = td.path;
  store_t recovered = store_t::recover(dopts);
  expect_equals(recovered, oracle, "post-recovery: no acked batch lost");
}

// Recovery leaves an audit trail in the metrics registry: runs, replayed
// records, and the WAL/checkpoint counters the recovered store touched. The
// fault-injected matrix above exercises recovery dozens of times before this
// test runs; here we take a scrape delta around one more recovery and assert
// the counters moved (ISSUE 9 acceptance: a crash-recovery run shows
// recovery counters in the exposition).
TEST(CrashRecovery, RecoveryCountersAppearInScrape) {
  if (!pam::obs::kEnabled) GTEST_SKIP() << "built with PAM_METRICS=0";
  temp_dir td("obs_counters");
  constexpr uint64_t kOps = 300;
  {
    store_t::options opt;
    opt.splitters = {100, 200};
    pam::store::durability_options dopts;
    dopts.dir = td.path;
    opt.durability = dopts;
    store_t store(map_t{}, opt);
    // WAL-only tail: no checkpoint after these, so recovery must replay.
    for (uint64_t i = 0; i < kOps; i++) store.put(i, i * 3);
    store.flush();
    ASSERT_FALSE(store.failed());
  }

  auto counter_of = [](const pam::obs::registry_snapshot& s,
                       const std::string& name) -> uint64_t {
    for (const auto& c : s.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  auto before = pam::obs::registry::get().scrape();

  pam::store::durability_options dopts;
  dopts.dir = td.path;
  store_t recovered = store_t::recover(dopts);
  ASSERT_EQ(recovered.size(), kOps);
  // One durable write post-recovery: feeds the recovered store's own WAL
  // series (the crashed store's instance counters left the registry with it).
  recovered.put(999999, 1);
  recovered.flush();

  auto after = recovered.metrics();
  EXPECT_EQ(counter_of(after, "pam_recovery_runs_total") -
                counter_of(before, "pam_recovery_runs_total"),
            1u);
  // Every op above was WAL-tail-only, so replay saw at least that many
  // records (batching may pack several ops per record, hence >= batches).
  EXPECT_GT(counter_of(after, "pam_recovery_replayed_records_total"),
            counter_of(before, "pam_recovery_replayed_records_total"));
  // The writing store fed the WAL series too.
  EXPECT_GT(counter_of(after, "pam_wal_records_total"), 0u);
  EXPECT_GT(counter_of(after, "pam_ckpt_total"), 0u);
  // And the text exposition carries them for operators.
  std::string text = recovered.metrics_text();
  EXPECT_NE(text.find("pam_recovery_runs_total"), std::string::npos);
  EXPECT_NE(text.find("pam_recovery_replay_ns"), std::string::npos);
}

}  // namespace
