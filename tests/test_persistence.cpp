// Tests for persistence (functional path copying), reference-counting GC,
// node sharing, the refcount==1 reuse optimization, and the snapshot_box
// concurrency pattern (paper §4 "Persistence" and "Concurrency").
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;
using map_t = pam::aug_map<pam::sum_entry<K, V>>;
using entry_t = map_t::entry_t;

std::vector<entry_t> random_entries(size_t n, uint64_t seed, uint64_t range) {
  std::vector<entry_t> es(n);
  pam::random_gen g(seed);
  for (auto& e : es) e = {g.next() % range, g.next() % 1000};
  return es;
}

// -------------------------------------------------------------- GC ------

TEST(GarbageCollection, NodesFreedWhenMapsDie) {
  int64_t base = map_t::used_nodes();
  int64_t blk_base = map_t::used_leaf_blocks();
  {
    map_t m(random_entries(50000, 1, 1u << 30));
    if (pam::leaf_block_size() >= 2) {
      // Blocked layout: ~n/B blocks hold the entries; far fewer nodes.
      EXPECT_GE(map_t::used_leaf_blocks(), blk_base + 1);
      EXPECT_LT(map_t::used_nodes() - base, 50000);
    } else {
      EXPECT_GE(map_t::used_nodes(), base + 49000);  // ~n minus rare dup keys
    }
  }
  EXPECT_EQ(map_t::used_nodes(), base);
  EXPECT_EQ(map_t::used_leaf_blocks(), blk_base);
}

TEST(GarbageCollection, SharedSubtreesFreedOnce) {
  int64_t base = map_t::used_nodes();
  {
    map_t a(random_entries(20000, 2, 1u << 30));
    map_t b = a;                                   // O(1) copy, full sharing
    map_t c = map_t::insert(a, 12345, 1);          // shares all but one path
    EXPECT_GT(map_t::used_nodes(), base);
    a = map_t();  // b and c keep everything alive
    EXPECT_TRUE(b.check_valid());
    EXPECT_TRUE(c.check_valid());
  }
  EXPECT_EQ(map_t::used_nodes(), base);
}

TEST(GarbageCollection, LargeParallelCollection) {
  // Destroying a large tree triggers the parallel GC path.
  int64_t base = map_t::used_nodes();
  int64_t byte_base = map_t::used_leaf_bytes();
  {
    map_t m(random_entries(1 << 20, 3, ~0ull));
    size_t b = pam::leaf_block_size();
    int64_t floor = b >= 2 ? (1 << 20) / static_cast<int64_t>(b) : (1 << 19);
    EXPECT_GT(map_t::used_nodes(), base + floor);
  }
  EXPECT_EQ(map_t::used_nodes(), base);
  EXPECT_EQ(map_t::used_leaf_bytes(), byte_base);
}

TEST(GarbageCollection, BulkOpsDoNotLeak) {
  int64_t base = map_t::used_nodes();
  {
    map_t a(random_entries(30000, 4, 1u << 16));
    map_t b(random_entries(30000, 5, 1u << 16));
    auto u = map_t::map_union(a, b, [](V x, V y) { return x + y; });
    auto i = map_t::map_intersect(a, b, [](V x, V y) { return x + y; });
    auto d = map_t::map_difference(a, b);
    auto f = map_t::filter(u, [](K k, V) { return k % 2 == 0; });
    auto r = map_t::range(u, 100, 60000);
    auto af = map_t::aug_filter(u, [](V s) { return s > 100; });
  }
  EXPECT_EQ(map_t::used_nodes(), base);
}

// ------------------------------------------------------- persistence ----

TEST(Persistence, OldVersionsSurviveUpdates) {
  auto es = random_entries(10000, 6, 1u << 20);
  map_t v0(es);
  std::map<K, V> oracle;
  for (auto& e : es) oracle[e.first] = e.second;

  // Take 20 versions, each inserting a marker; all versions stay intact.
  std::vector<map_t> versions = {v0};
  for (K i = 0; i < 20; i++) {
    versions.push_back(map_t::insert(versions.back(), ~0ull - i, i));
  }
  for (size_t i = 0; i < versions.size(); i++) {
    EXPECT_EQ(versions[i].size(), oracle.size() + i);
    for (K j = 0; j < 20; j++) {
      EXPECT_EQ(versions[i].find(~0ull - j).has_value(), j < i);
    }
    EXPECT_TRUE(versions[i].check_valid());
  }
}

TEST(Persistence, DestructiveOpsOnCopiesLeaveOriginalIntact) {
  auto es = random_entries(20000, 7, 1u << 20);
  map_t orig(es);
  auto snapshot_entries = orig.entries();
  // Consume *copies* in every destructive op.
  auto u = map_t::map_union(orig, map_t(random_entries(5000, 8, 1u << 20)));
  auto f = map_t::filter(orig, [](K, V) { return false; });
  auto d = map_t::map_difference(orig, orig);
  auto m2 = map_t::multi_delete(orig, {snapshot_entries[0].first});
  EXPECT_EQ(orig.entries(), snapshot_entries);
  EXPECT_TRUE(orig.check_valid());
}

TEST(Persistence, UnionSharesNodesWithLargerInput) {
  // Paper Table 4: persistent union of sizes (1e8, 1e5) re-uses ~half the
  // nodes. At our scale: union(n=100000, m=100) must allocate far fewer
  // than n + m new nodes thanks to subtree sharing.
  int64_t before_all = map_t::used_nodes();
  map_t big(random_entries(100000, 9, ~0ull));
  map_t small(random_entries(100, 10, ~0ull));
  int64_t before = map_t::used_nodes();
  map_t u = map_t::map_union(big, small);  // copies: all inputs stay alive
  int64_t new_nodes = map_t::used_nodes() - before;
  // Theory: m * log2(n/m) ~ 100 * 10 = 1000 new paths; allow generous slack.
  EXPECT_LT(new_nodes, 20000);
  EXPECT_GT(new_nodes, 0);
  u = map_t();
  big = map_t();
  small = map_t();
  EXPECT_EQ(map_t::used_nodes(), before_all);
}

TEST(Persistence, ReuseOptimizationToggleGivesSameResults) {
  // With reuse disabled every mutation path-copies; results must be
  // identical and nothing may leak.
  auto es = random_entries(5000, 11, 1u << 16);
  int64_t base = map_t::used_nodes();
  std::vector<entry_t> with_reuse, without_reuse;
  {
    pam::set_reuse_enabled(true);
    map_t m(es);
    for (int i = 0; i < 1000; i++) m = map_t::insert(std::move(m), i * 3, i);
    with_reuse = m.entries();
  }
  EXPECT_EQ(map_t::used_nodes(), base);
  {
    pam::set_reuse_enabled(false);
    map_t m(es);
    for (int i = 0; i < 1000; i++) m = map_t::insert(std::move(m), i * 3, i);
    without_reuse = m.entries();
    pam::set_reuse_enabled(true);
  }
  EXPECT_EQ(map_t::used_nodes(), base);
  EXPECT_EQ(with_reuse, without_reuse);
}

TEST(Persistence, MoveSemantics) {
  map_t a(random_entries(1000, 12, 1u << 20));
  size_t n = a.size();
  map_t b = std::move(a);
  EXPECT_EQ(b.size(), n);
  EXPECT_TRUE(a.empty());  // moved-from is the empty map
  a = std::move(b);
  EXPECT_EQ(a.size(), n);
}

TEST(Persistence, SelfAssignmentSafe) {
  map_t a(random_entries(100, 13, 1000));
  map_t& ref = a;
  a = ref;
  EXPECT_TRUE(a.check_valid());
  EXPECT_EQ(a.size(), a.entries().size());
}

// ------------------------------------------------------- concurrency ----

TEST(SnapshotBox, ConcurrentReadersSeeConsistentVersions) {
  // Writers batch inserts through update(); readers snapshot and verify a
  // map-wide invariant (aug_val equals the sum over entries) that would
  // break if they observed a torn version.
  pam::snapshot_box<map_t> box(map_t{});
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (K round = 0; round < 50; round++) {
      box.update([&](map_t m) {
        std::vector<entry_t> batch;
        for (K i = 0; i < 200; i++) batch.push_back({round * 200 + i, 1});
        return map_t::multi_insert(std::move(m), std::move(batch));
      });
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; r++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        map_t snap = box.snapshot();
        // Every committed batch has 200 entries each of value 1, so
        // aug_val == size on any committed version.
        if (snap.aug_val() != snap.size()) violations.fetch_add(1);
        if (snap.size() % 200 != 0) violations.fetch_add(1);
        if (!snap.check_valid()) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(box.snapshot().size(), 50u * 200u);
}

TEST(SnapshotBox, SnapshotOutlivesLaterUpdates) {
  pam::snapshot_box<map_t> box(map_t(random_entries(5000, 14, 1u << 20)));
  map_t snap = box.snapshot();
  auto before = snap.entries();
  for (int i = 0; i < 10; i++) {
    box.update([&](map_t m) { return map_t::insert(std::move(m), i, 0); });
  }
  EXPECT_EQ(snap.entries(), before);
  EXPECT_TRUE(snap.check_valid());
}

TEST(Concurrency, IndependentMapsOnUserThreads) {
  // Multiple foreign threads each own and mutate their own maps; the shared
  // allocator and refcount machinery must hold up.
  int64_t base = map_t::used_nodes();
  {
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 8; t++) {
      threads.emplace_back([t, &failures] {
        map_t m;
        std::map<K, V> oracle;
        pam::random_gen g(t);
        for (int i = 0; i < 3000; i++) {
          K k = g.next() % 1000;
          if (g.next() % 3 == 0) {
            m = map_t::remove(std::move(m), k);
            oracle.erase(k);
          } else {
            m = map_t::insert(std::move(m), k, k);
            oracle[k] = k;
          }
        }
        if (m.size() != oracle.size() || !m.check_valid()) failures.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
  }
  EXPECT_EQ(map_t::used_nodes(), base);
}

TEST(Concurrency, SharedReadOnlyMapAcrossThreads) {
  map_t m(random_entries(100000, 15, 1u << 24));
  uint64_t total = m.aug_val();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      pam::random_gen g(t * 7 + 1);
      for (int q = 0; q < 2000; q++) {
        K a = g.next() % (1u << 24), b = g.next() % (1u << 24);
        K lo = std::min(a, b), hi = std::max(a, b);
        uint64_t left = m.aug_range(0, lo == 0 ? 0 : lo - 1);
        uint64_t mid = m.aug_range(lo, hi);
        uint64_t right = m.aug_range(hi + 1, ~0ull);
        if (lo > 0 && left + mid + right != total) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace

// --- addition: concurrent writers must never lose updates ------------------
namespace {

TEST(SnapshotBox, ConcurrentWritersLoseNoUpdates) {
  // Each of 8 writers applies 200 read-modify-write increments to its own
  // key; with serialized updates every increment must land.
  pam::snapshot_box<map_t> box(map_t{});
  std::vector<std::thread> writers;
  const int nw = 8, rounds = 200;
  for (int w = 0; w < nw; w++) {
    writers.emplace_back([&box, w] {
      for (int r = 0; r < rounds; r++) {
        box.update([w](map_t m) {
          return map_t::insert(std::move(m), static_cast<K>(w), 1,
                               [](V oldv, V inc) { return oldv + inc; });
        });
      }
    });
  }
  for (auto& t : writers) t.join();
  map_t final_map = box.snapshot();
  ASSERT_EQ(final_map.size(), static_cast<size_t>(nw));
  for (int w = 0; w < nw; w++) {
    ASSERT_EQ(final_map.find(static_cast<K>(w)).value(),
              static_cast<V>(rounds))
        << "writer " << w << " lost updates";
  }
  EXPECT_EQ(final_map.aug_val(), static_cast<uint64_t>(nw) * rounds);
}

}  // namespace
