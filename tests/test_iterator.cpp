// Iterator & range-view tests: in-order iteration, lower_bound, bounded
// views (contents, size, aug_val), cursors, and iterator validity under
// persistence — cross-checked against entries()/aug_range() on random maps
// for all four balancing schemes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;

template <typename Balance>
class IteratorTest : public ::testing::Test {
 public:
  using map_type = pam::aug_map<pam::sum_entry<K, V>, Balance>;
  using entry_type = typename map_type::entry_t;

  static map_type random_map(size_t n, uint64_t seed, uint64_t key_range) {
    pam::random_gen g(seed);
    std::vector<entry_type> es(n);
    for (auto& e : es) e = {g.next() % key_range, g.next() % 1000};
    return map_type(std::move(es));
  }
};

using BalanceTypes = ::testing::Types<pam::weight_balanced, pam::avl_tree,
                                      pam::red_black, pam::treap>;
TYPED_TEST_SUITE(IteratorTest, BalanceTypes);

TYPED_TEST(IteratorTest, EmptyMap) {
  typename TestFixture::map_type m;
  EXPECT_TRUE(m.begin() == m.end());
  EXPECT_EQ(std::distance(m.begin(), m.end()), 0);
  EXPECT_EQ(m.view_all().size(), 0u);
  EXPECT_TRUE(m.view_all().begin() == m.view_all().end());
  EXPECT_TRUE(m.root_cursor().empty());
}

TYPED_TEST(IteratorTest, InOrderMatchesEntries) {
  for (size_t n : {1u, 2u, 100u, 5000u}) {
    auto m = TestFixture::random_map(n, 42 + n, 3 * n);
    auto es = m.entries();
    size_t i = 0;
    for (auto [k, v] : m) {
      ASSERT_LT(i, es.size());
      EXPECT_EQ(k, es[i].first);
      EXPECT_EQ(v, es[i].second);
      i++;
    }
    EXPECT_EQ(i, es.size());
    EXPECT_EQ(static_cast<size_t>(std::distance(m.begin(), m.end())), m.size());
  }
}

TYPED_TEST(IteratorTest, IteratorProxyAndAlgorithms) {
  auto m = TestFixture::random_map(1000, 7, 500);
  auto es = m.entries();
  // operator-> through the arrow proxy.
  auto it = m.begin();
  EXPECT_EQ(it->key, es[0].first);
  EXPECT_EQ(it->value, es[0].second);
  // Post-increment returns the pre-increment position.
  auto old = it++;
  EXPECT_EQ(old->key, es[0].first);
  EXPECT_EQ(it->key, es[1].first);
  // <algorithm> interop on the forward range.
  size_t big = static_cast<size_t>(
      std::count_if(m.begin(), m.end(), [](auto e) { return e.value >= 500; }));
  size_t expect = 0;
  for (auto& [k, v] : es) expect += v >= 500;
  EXPECT_EQ(big, expect);
  auto found = std::find_if(m.begin(), m.end(),
                            [&](auto e) { return e.key == es.back().first; });
  EXPECT_TRUE(found != m.end());
  EXPECT_EQ(found->value, es.back().second);
}

TYPED_TEST(IteratorTest, LowerBound) {
  auto m = TestFixture::random_map(2000, 11, 1000);
  auto es = m.entries();
  pam::random_gen g(99);
  for (int q = 0; q < 50; q++) {
    K k = g.next() % 1200;
    auto it = m.lower_bound(k);
    auto oit = std::lower_bound(es.begin(), es.end(), k,
                                [](const auto& e, K x) { return e.first < x; });
    if (oit == es.end()) {
      EXPECT_TRUE(it == m.end());
    } else {
      ASSERT_TRUE(it != m.end());
      EXPECT_EQ(it->key, oit->first);
    }
  }
}

TYPED_TEST(IteratorTest, ViewContentsMatchEntries) {
  auto m = TestFixture::random_map(3000, 5, 2000);
  auto es = m.entries();
  pam::random_gen g(17);
  for (int q = 0; q < 40; q++) {
    K a = g.next() % 2200, b = g.next() % 2200;
    K lo = std::min(a, b), hi = std::max(a, b);
    // Oracle: the entries() slice in [lo, hi].
    std::vector<typename TestFixture::entry_type> expect;
    for (auto& e : es)
      if (e.first >= lo && e.first <= hi) expect.push_back(e);

    auto view = m.view(lo, hi);
    // size() via rank queries.
    ASSERT_EQ(view.size(), expect.size()) << "lo=" << lo << " hi=" << hi;
    EXPECT_EQ(view.size(), m.count_range(lo, hi));
    // Iteration.
    size_t i = 0;
    for (auto [k, v] : view) {
      ASSERT_LT(i, expect.size());
      EXPECT_EQ(k, expect[i].first);
      EXPECT_EQ(v, expect[i].second);
      i++;
    }
    EXPECT_EQ(i, expect.size());
    // for_each and to_entries agree with iteration.
    std::vector<typename TestFixture::entry_type> collected;
    view.for_each([&](K k, V v) { collected.emplace_back(k, v); });
    EXPECT_EQ(collected, expect);
    EXPECT_EQ(view.to_entries(), expect);
    // aug_val matches the O(log n) aug_range and a manual sum.
    V manual = 0;
    for (auto& e : expect) manual += e.second;
    EXPECT_EQ(view.aug_val(), m.aug_range(lo, hi));
    EXPECT_EQ(view.aug_val(), manual);
    // first / empty.
    if (expect.empty()) {
      EXPECT_TRUE(view.empty());
      EXPECT_FALSE(view.first().has_value());
    } else {
      EXPECT_FALSE(view.empty());
      EXPECT_EQ(view.first()->first, expect.front().first);
    }
  }
}

TYPED_TEST(IteratorTest, ViewLastMatchesEntries) {
  auto m = TestFixture::random_map(3000, 41, 2000);
  auto es = m.entries();
  pam::random_gen g(43);
  for (int q = 0; q < 60; q++) {
    K a = g.next() % 2200, b = g.next() % 2200;
    K lo = std::min(a, b), hi = std::max(a, b);
    // Oracle: the greatest entry in [lo, hi] per the materialized entries.
    std::optional<typename TestFixture::entry_type> expect;
    for (auto& e : es)
      if (e.first >= lo && e.first <= hi) expect = e;

    auto got = m.view(lo, hi).last();
    ASSERT_EQ(got.has_value(), expect.has_value()) << "lo=" << lo << " hi=" << hi;
    if (expect.has_value()) {
      EXPECT_EQ(got->first, expect->first);
      EXPECT_EQ(got->second, expect->second);
    }
  }

  // One-sided and full views: last() pairs with first() at the extremes.
  EXPECT_EQ(m.view_all().last()->first, es.back().first);
  EXPECT_EQ(m.view_all().first()->first, es.front().first);
  EXPECT_EQ(m.view_up_to(es.back().first).last()->first, es.back().first);
  EXPECT_EQ(m.view_down_to(es.back().first).last()->first, es.back().first);
  // A bound below every key, or an inverted range, has no last entry.
  EXPECT_FALSE(m.view(2001, 3000).last().has_value());
  EXPECT_FALSE(m.view(800, 100).last().has_value());
  // Empty map.
  typename TestFixture::map_type empty;
  EXPECT_FALSE(empty.view_all().last().has_value());
  // Singleton, with bounds exactly on the key.
  auto one = TestFixture::map_type::singleton(7, 70);
  EXPECT_EQ(one.view(7, 7).last()->second, 70u);
  EXPECT_FALSE(one.view(8, 9).last().has_value());
  EXPECT_FALSE(one.view(1, 6).last().has_value());
}

TYPED_TEST(IteratorTest, OneSidedAndFullViews) {
  auto m = TestFixture::random_map(1500, 23, 1000);
  auto es = m.entries();
  K mid = 500;

  auto up = m.view_up_to(mid);
  auto down = m.view_down_to(mid);
  // Both bounds are inclusive: an entry at exactly `mid` is in both views.
  size_t n_leq = 0, n_geq = 0;
  V sum_leq = 0, sum_geq = 0;
  for (auto& [k, v] : es) {
    if (k <= mid) {
      n_leq++;
      sum_leq += v;
    }
    if (k >= mid) {
      n_geq++;
      sum_geq += v;
    }
  }
  EXPECT_EQ(up.size(), n_leq);
  EXPECT_EQ(up.aug_val(), sum_leq);
  EXPECT_EQ(down.size(), n_geq);
  EXPECT_EQ(down.aug_val(), sum_geq);

  auto all = m.view_all();
  EXPECT_EQ(all.size(), m.size());
  EXPECT_EQ(all.aug_val(), m.aug_val());
  EXPECT_TRUE(std::equal(all.begin(), all.end(), es.begin(), es.end(),
                         [](auto a, const auto& b) {
                           return a.key == b.first && a.value == b.second;
                         }));

  // An inverted range is empty.
  auto none = m.view(800, 100);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_TRUE(none.begin() == none.end());
}

TYPED_TEST(IteratorTest, IterationUnderPersistence) {
  // Iterate a snapshot while a derived copy churns: the snapshot's
  // iteration must see exactly the original contents.
  auto m = TestFixture::random_map(4000, 31, 10000);
  auto snapshot = m;  // O(1) copy
  auto expect = snapshot.entries();

  using map_t = typename TestFixture::map_type;
  pam::random_gen g(77);
  auto it = snapshot.begin();  // iterator live across updates to the copy
  size_t i = 0;
  for (int round = 0; round < 200; round++) {
    // Mutate the copy (insert + remove) while mid-iteration on the snapshot.
    m = map_t::insert(std::move(m), g.next() % 20000, g.next() % 1000);
    m = map_t::remove(std::move(m), g.next() % 20000);
    ASSERT_TRUE(it != snapshot.end());
    EXPECT_EQ(it->key, expect[i].first);
    EXPECT_EQ(it->value, expect[i].second);
    ++it;
    i++;
  }
  // Finish the walk and verify the whole snapshot is untouched.
  for (; it != snapshot.end(); ++it, ++i) {
    EXPECT_EQ(it->key, expect[i].first);
    EXPECT_EQ(it->value, expect[i].second);
  }
  EXPECT_EQ(i, expect.size());
  EXPECT_TRUE(snapshot.check_valid());
}

TYPED_TEST(IteratorTest, ViewIsASnapshot) {
  // A view holds its own reference: reassigning the source map does not
  // disturb it.
  using map_t = typename TestFixture::map_type;
  auto m = TestFixture::random_map(1000, 13, 800);
  V total = m.aug_val();
  size_t n = m.size();
  auto view = m.view_all();
  m = map_t();  // drop the only map handle
  EXPECT_EQ(view.size(), n);
  EXPECT_EQ(view.aug_val(), total);
  size_t count = 0;
  for (auto [k, v] : view) count++;
  EXPECT_EQ(count, n);
}

TYPED_TEST(IteratorTest, CursorTraversal) {
  // An explicit in-order cursor walk reproduces entries(); cursor aug()
  // matches the map-level augmentation.
  auto m = TestFixture::random_map(2000, 3, 1500);
  using cursor = typename TestFixture::map_type::cursor;
  std::vector<typename TestFixture::entry_type> walked;
  auto walk = [&](auto&& self, cursor t) -> void {
    if (t.empty()) return;
    self(self, t.left());
    // A subtree root carries 1..B entries (a whole leaf block when the
    // blocked layout is active), all between the two subtrees in key order.
    for (size_t i = 0; i < t.entry_count(); i++) {
      walked.emplace_back(t.key(i), t.value(i));
    }
    self(self, t.right());
  };
  walk(walk, m.root_cursor());
  EXPECT_EQ(walked, m.entries());
  EXPECT_EQ(m.root_cursor().aug(), m.aug_val());
  EXPECT_EQ(m.root_cursor().size(), m.size());
}

TYPED_TEST(IteratorTest, KeysValuesProjection) {
  auto m = TestFixture::random_map(3000, 19, 2500);
  auto es = m.entries();
  auto ks = m.keys();
  auto vs = m.values();
  ASSERT_EQ(ks.size(), es.size());
  ASSERT_EQ(vs.size(), es.size());
  for (size_t i = 0; i < es.size(); i++) {
    EXPECT_EQ(ks[i], es[i].first);
    EXPECT_EQ(vs[i], es[i].second);
  }
}

TYPED_TEST(IteratorTest, LockstepWalkAcrossBlockSizes) {
  // The blocked-leaf sweep of the lockstep walk: for every leaf block size
  // the iterator, the bounded view (contents, size, aug_val, last) and the
  // structural validator must agree with a std::map oracle.
  size_t saved_b = pam::leaf_block_size();
  for (size_t b : {size_t{1}, size_t{2}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(b);
    pam::random_gen g(1000 + b);
    auto m = TestFixture::random_map(3000, 500 + b, 6000);
    std::map<K, V> oracle;
    for (auto [k, v] : m.entries()) oracle[k] = v;
    ASSERT_TRUE(m.check_valid()) << "B=" << b;

    auto it = m.begin();
    for (auto& [k, v] : oracle) {
      ASSERT_TRUE(it != m.end()) << "B=" << b;
      ASSERT_EQ(it->key, k);
      ASSERT_EQ(it->value, v);
      ++it;
    }
    EXPECT_TRUE(it == m.end());

    for (int round = 0; round < 20; round++) {
      K a = g.next() % 6000, c = g.next() % 6000;
      K lo = std::min(a, c), hi = std::max(a, c);
      auto view = m.view(lo, hi);
      auto oit = oracle.lower_bound(lo);
      size_t count = 0;
      uint64_t sum = 0;
      for (auto [k, v] : view) {
        ASSERT_TRUE(oit != oracle.end() && oit->first <= hi) << "B=" << b;
        ASSERT_EQ(k, oit->first);
        ASSERT_EQ(v, oit->second);
        ++oit;
        count++;
        sum += v;
      }
      ASSERT_TRUE(oit == oracle.end() || oit->first > hi);
      EXPECT_EQ(view.size(), count);
      EXPECT_EQ(view.aug_val(), sum);
      auto last = view.last();
      EXPECT_EQ(last.has_value(), count > 0);
      if (count > 0) {
        EXPECT_EQ(last->first, std::prev(oit)->first);
      }
    }
  }
  pam::set_leaf_block_size(saved_b);
}

TYPED_TEST(IteratorTest, PersistenceUnderBlockRepack) {
  // Iterate a snapshot while the live map churns through block re-packs
  // (multi_insert/multi_delete rebuild whole leaf blocks): the snapshot's
  // blocks are shared, not mutated, so the walk must see the old contents.
  using map_t = typename TestFixture::map_type;
  size_t saved_b = pam::leaf_block_size();
  for (size_t b : {size_t{2}, size_t{32}}) {
    pam::set_leaf_block_size(b);
    auto m = TestFixture::random_map(2500, 900 + b, 5000);
    auto snapshot = m;  // O(1) copy: shares every node and leaf block
    auto expect = snapshot.entries();
    pam::random_gen g(41 + b);
    auto it = snapshot.begin();
    size_t i = 0;
    for (int round = 0; round < 50; round++) {
      std::vector<typename TestFixture::entry_type> batch(40);
      for (auto& e : batch) e = {g.next() % 5000, g.next() % 1000};
      m = map_t::multi_insert(std::move(m), std::move(batch));
      std::vector<K> dels(20);
      for (auto& k : dels) k = g.next() % 5000;
      m = map_t::multi_delete(std::move(m), std::move(dels));
      ASSERT_TRUE(it != snapshot.end());
      ASSERT_EQ(it->key, expect[i].first);
      ASSERT_EQ(it->value, expect[i].second);
      ++it;
      i++;
    }
    for (; it != snapshot.end(); ++it, ++i) {
      ASSERT_EQ(it->key, expect[i].first);
      ASSERT_EQ(it->value, expect[i].second);
    }
    EXPECT_EQ(i, expect.size());
    EXPECT_TRUE(snapshot.check_valid());
    EXPECT_TRUE(m.check_valid());
  }
  pam::set_leaf_block_size(saved_b);
}

TEST(IteratorSetTest, PamSetIsARange) {
  pam::pam_set<uint64_t> s(std::vector<uint64_t>{5, 1, 9, 3, 7});
  std::vector<uint64_t> seen;
  for (auto [k, unused] : s) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
  EXPECT_EQ(std::distance(s.begin(), s.end()), 5);
}

TEST(IteratorStringTest, NonTrivialKeyType) {
  // Heap-allocated keys through views and iterators (the proxy hands out
  // references into the tree, not copies).
  using map_t = pam::pam_map<pam::map_entry<std::string, int>>;
  map_t m({{"delta", 4},
           {"alpha", 1},
           {"echo", 5},
           {"bravo", 2},
           {"charlie", 3}});
  auto view = m.view(std::string("bravo"), std::string("delta"));
  std::string joined;
  for (auto [k, v] : view) {
    joined += k;
    joined += ':';
  }
  EXPECT_EQ(joined, "bravo:charlie:delta:");
  EXPECT_EQ(m.lower_bound("cat")->key, "charlie");
}

}  // namespace
