// Tests for the fork-join work-stealing scheduler (src/parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/parallel.h"
#include "util/random.h"

namespace {

TEST(Scheduler, ReportsWorkers) {
  EXPECT_GE(pam::num_workers(), 1);
  EXPECT_EQ(pam::worker_id(), 0);  // the test main thread is worker 0
}

TEST(Scheduler, ParDoRunsBothBranches) {
  int a = 0, b = 0;
  pam::par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, ParDoReturnsAfterBothComplete) {
  // The right branch is slow; par_do must still see its side effect.
  std::atomic<int> order{0};
  int left_saw = -1, right_val = -1;
  pam::par_do(
      [&] { left_saw = order.fetch_add(1); },
      [&] {
        uint64_t sink = 0;
        for (int i = 0; i < 200000; i++) sink += pam::hash64(i) & 1;
        if (sink == 0xdeadbeef) std::abort();  // defeat optimization
        right_val = order.fetch_add(1);
      });
  EXPECT_GE(left_saw, 0);
  EXPECT_GE(right_val, 0);
  EXPECT_EQ(order.load(), 2);
}

// Recursive fib via par_do exercises deeply nested fork-join.
uint64_t par_fib(int n) {
  if (n < 2) return static_cast<uint64_t>(n);
  if (n < 12) return par_fib(n - 1) + par_fib(n - 2);
  uint64_t a = 0, b = 0;
  pam::par_do([&] { a = par_fib(n - 1); }, [&] { b = par_fib(n - 2); });
  return a + b;
}

TEST(Scheduler, NestedForkJoinFib) {
  EXPECT_EQ(par_fib(28), 317811u);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  const size_t n = 1 << 20;
  std::vector<std::atomic<uint8_t>> hits(n);
  pam::parallel_for(0, n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; i += 4097) EXPECT_EQ(hits[i].load(), 1u) << i;
  uint64_t total = 0;
  for (size_t i = 0; i < n; i++) total += hits[i].load();
  EXPECT_EQ(total, n);
}

TEST(Scheduler, ParallelForEmptyAndSingleton) {
  int count = 0;
  pam::parallel_for(5, 5, [&](size_t) { count++; });
  EXPECT_EQ(count, 0);
  pam::parallel_for(7, 8, [&](size_t i) { count += static_cast<int>(i); });
  EXPECT_EQ(count, 7);
}

TEST(Scheduler, ParallelForSum) {
  const size_t n = 1 << 22;
  std::vector<uint64_t> a(n);
  pam::parallel_for(0, n, [&](size_t i) { a[i] = pam::hash64(i) % 1000; });
  std::atomic<uint64_t> par_sum{0};
  pam::parallel_for(0, n, [&](size_t i) {
    par_sum.fetch_add(a[i], std::memory_order_relaxed);
  }, 65536);
  uint64_t seq_sum = std::accumulate(a.begin(), a.end(), uint64_t{0});
  EXPECT_EQ(par_sum.load(), seq_sum);
}

TEST(Scheduler, ParDoIfSequentialPath) {
  int order_check = 0;
  pam::par_do_if(false,
                 [&] { EXPECT_EQ(order_check++, 0); },
                 [&] { EXPECT_EQ(order_check++, 1); });
  EXPECT_EQ(order_check, 2);
}

TEST(Scheduler, ForeignThreadRunsSequentially) {
  // A thread that is not part of the pool must still be able to call par_do.
  int a = 0, b = 0;
  std::thread t([&] {
    EXPECT_EQ(pam::worker_id(), -1);
    pam::par_do([&] { a = 1; }, [&] { b = 2; });
  });
  t.join();
  EXPECT_EQ(a + b, 3);
}

TEST(Scheduler, SetNumWorkersRestartsPool) {
  int before = pam::num_workers();
  pam::set_num_workers(2);
  EXPECT_EQ(pam::num_workers(), 2);
  EXPECT_EQ(par_fib(24), 46368u);
  pam::set_num_workers(1);  // sequential mode
  EXPECT_EQ(par_fib(20), 6765u);
  pam::set_num_workers(before);
  EXPECT_EQ(pam::num_workers(), before);
  EXPECT_EQ(par_fib(24), 46368u);
}

TEST(Scheduler, ManySmallParallelRegions) {
  // Regression guard for deque reuse across many independent regions.
  for (int round = 0; round < 2000; round++) {
    int x = 0, y = 0;
    pam::par_do([&] { x = round; }, [&] { y = round + 1; });
    ASSERT_EQ(x + 1, y);
  }
}

TEST(Scheduler, ParallelSpeedupSmokeCheck) {
  // Not a benchmark: only verifies that the pool actually executes work on
  // more than one thread (distinct worker ids observed inside a big loop).
  if (pam::num_workers() < 2) GTEST_SKIP() << "single-core machine";
  std::vector<std::atomic<uint8_t>> seen(static_cast<size_t>(pam::num_workers()));
  pam::parallel_for(0, 1 << 18, [&](size_t) {
    int id = pam::worker_id();
    ASSERT_GE(id, 0);
    seen[static_cast<size_t>(id)].store(1);
  }, 256);
  int distinct = 0;
  for (auto& s : seen) distinct += s.load();
  EXPECT_GE(distinct, 2);
}

}  // namespace
