// Tests for the concurrent fixed-size pool allocator (src/alloc).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "alloc/leaf_pool.h"
#include "alloc/type_allocator.h"
#include "parallel/parallel.h"

namespace {

struct blob48 {
  uint64_t a, b, c, d, e, f;
};

struct counted {
  static inline std::atomic<int> live{0};
  int payload;
  explicit counted(int p) : payload(p) { live.fetch_add(1); }
  ~counted() { live.fetch_sub(1); }
};

using alloc48 = pam::type_allocator<blob48>;
using alloc_counted = pam::type_allocator<counted>;

TEST(Allocator, AllocateGivesDistinctAlignedBlocks) {
  std::vector<blob48*> ps;
  std::set<void*> seen;
  for (int i = 0; i < 10000; i++) {
    blob48* p = alloc48::allocate();
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(blob48), 0u);
    ASSERT_TRUE(seen.insert(p).second) << "duplicate block";
    p->a = static_cast<uint64_t>(i);
    ps.push_back(p);
  }
  for (int i = 0; i < 10000; i++) ASSERT_EQ(ps[i]->a, static_cast<uint64_t>(i));
  for (auto* p : ps) alloc48::deallocate(p);
}

TEST(Allocator, UsedCountTracksNet) {
  int64_t base = alloc48::used();
  std::vector<blob48*> ps;
  for (int i = 0; i < 5000; i++) ps.push_back(alloc48::allocate());
  EXPECT_EQ(alloc48::used(), base + 5000);
  for (int i = 0; i < 2000; i++) {
    alloc48::deallocate(ps.back());
    ps.pop_back();
  }
  EXPECT_EQ(alloc48::used(), base + 3000);
  for (auto* p : ps) alloc48::deallocate(p);
  EXPECT_EQ(alloc48::used(), base);
}

TEST(Allocator, BlocksAreRecycled) {
  // Freeing then allocating should reuse storage rather than grow the pool.
  std::vector<blob48*> ps;
  for (int i = 0; i < 1000; i++) ps.push_back(alloc48::allocate());
  for (auto* p : ps) alloc48::deallocate(p);
  int64_t reserved = alloc48::reserved();
  for (int i = 0; i < 1000; i++) ps[i] = alloc48::allocate();
  EXPECT_EQ(alloc48::reserved(), reserved);
  for (auto* p : ps) alloc48::deallocate(p);
}

TEST(Allocator, CreateDestroyRunConstructors) {
  int live_before = counted::live.load();
  counted* p = alloc_counted::create(17);
  EXPECT_EQ(p->payload, 17);
  EXPECT_EQ(counted::live.load(), live_before + 1);
  alloc_counted::destroy(p);
  EXPECT_EQ(counted::live.load(), live_before);
}

TEST(Allocator, ParallelAllocFreeStress) {
  // Hammer the pool from all workers; verify no block is handed out twice
  // concurrently by writing a worker-unique stamp and re-reading it.
  const size_t rounds = 200, per_round = 500;
  int64_t base = alloc48::used();
  pam::parallel_for(0, static_cast<size_t>(pam::num_workers()) * 4, [&](size_t lane) {
    std::vector<blob48*> mine;
    mine.reserve(per_round);
    for (size_t r = 0; r < rounds; r++) {
      for (size_t i = 0; i < per_round; i++) {
        blob48* p = alloc48::allocate();
        p->a = lane;
        p->b = i;
        mine.push_back(p);
      }
      for (size_t i = 0; i < per_round; i++) {
        blob48* p = mine[i];
        ASSERT_EQ(p->a, lane);
        ASSERT_EQ(p->b, i);
        alloc48::deallocate(p);
      }
      mine.clear();
    }
  }, 1);
  EXPECT_EQ(alloc48::used(), base);
}

TEST(Allocator, IndependentPoolsPerType) {
  struct other {
    char data[24];
  };
  int64_t used48 = alloc48::used();
  auto* p = pam::type_allocator<other>::allocate();
  EXPECT_EQ(alloc48::used(), used48);  // other type's pool does not affect ours
  pam::type_allocator<other>::deallocate(p);
}

// ---------------------------------------------------------- raw_pool ----
// The runtime-sized pool behind leaf-block storage (src/alloc/leaf_pool.h).

TEST(RawPool, DistinctAlignedSlotsAndCounters) {
  static pam::raw_pool pool(200, 16);  // odd size, explicit alignment
  // The stride is rounded up so every slot in a chunk is aligned.
  EXPECT_GE(pool.slot_bytes(), 200u);
  EXPECT_EQ(pool.slot_bytes() % 16, 0u);
  int64_t base = pool.used();
  std::vector<void*> ps;
  std::set<void*> seen;
  for (int i = 0; i < 5000; i++) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    ASSERT_TRUE(seen.insert(p).second) << "duplicate slot";
    ps.push_back(p);
  }
  EXPECT_EQ(pool.used(), base + 5000);
  for (void* p : ps) pool.deallocate(p);
  EXPECT_EQ(pool.used(), base);
  EXPECT_GE(pool.reserved(), 5000);
}

TEST(RawPool, SlotsAreRecycled) {
  static pam::raw_pool pool(64, 8);
  void* a = pool.allocate();
  pool.deallocate(a);
  // The thread-local cache hands the same slot straight back.
  void* b = pool.allocate();
  EXPECT_EQ(a, b);
  pool.deallocate(b);
}

TEST(RawPool, ParallelAllocFreeStress) {
  static pam::raw_pool pool(96, 8);
  int64_t base = pool.used();
  pam::parallel_for(0, 2000, [&](size_t i) {
    std::vector<void*> mine;
    for (size_t j = 0; j < 1 + i % 17; j++) mine.push_back(pool.allocate());
    for (void* p : mine) *static_cast<char*>(p) = 1;
    for (void* p : mine) pool.deallocate(p);
  }, 1);
  EXPECT_EQ(pool.used(), base);
}

}  // namespace
