// Tests for the unified pool layer (src/alloc/arena.h) and its typed /
// runtime-sized facades (type_allocator, raw_pool): hot-path correctness,
// exact striped accounting from worker and foreign threads alike, chunk
// provenance (reserved_bytes) and trim().
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "alloc/leaf_pool.h"
#include "alloc/type_allocator.h"
#include "parallel/parallel.h"

namespace {

struct blob48 {
  uint64_t a, b, c, d, e, f;
};

struct counted {
  static inline std::atomic<int> live{0};
  int payload;
  explicit counted(int p) : payload(p) { live.fetch_add(1); }
  ~counted() { live.fetch_sub(1); }
};

using alloc48 = pam::type_allocator<blob48>;
using alloc_counted = pam::type_allocator<counted>;

TEST(Allocator, AllocateGivesDistinctAlignedBlocks) {
  std::vector<blob48*> ps;
  std::set<void*> seen;
  for (int i = 0; i < 10000; i++) {
    blob48* p = alloc48::allocate();
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(blob48), 0u);
    ASSERT_TRUE(seen.insert(p).second) << "duplicate block";
    p->a = static_cast<uint64_t>(i);
    ps.push_back(p);
  }
  for (int i = 0; i < 10000; i++) ASSERT_EQ(ps[i]->a, static_cast<uint64_t>(i));
  for (auto* p : ps) alloc48::deallocate(p);
}

TEST(Allocator, UsedCountTracksNet) {
  int64_t base = alloc48::used();
  std::vector<blob48*> ps;
  for (int i = 0; i < 5000; i++) ps.push_back(alloc48::allocate());
  EXPECT_EQ(alloc48::used(), base + 5000);
  for (int i = 0; i < 2000; i++) {
    alloc48::deallocate(ps.back());
    ps.pop_back();
  }
  EXPECT_EQ(alloc48::used(), base + 3000);
  for (auto* p : ps) alloc48::deallocate(p);
  EXPECT_EQ(alloc48::used(), base);
}

TEST(Allocator, BlocksAreRecycled) {
  // Freeing then allocating should reuse storage rather than grow the pool.
  std::vector<blob48*> ps;
  for (int i = 0; i < 1000; i++) ps.push_back(alloc48::allocate());
  for (auto* p : ps) alloc48::deallocate(p);
  int64_t reserved = alloc48::reserved();
  for (int i = 0; i < 1000; i++) ps[i] = alloc48::allocate();
  EXPECT_EQ(alloc48::reserved(), reserved);
  for (auto* p : ps) alloc48::deallocate(p);
}

TEST(Allocator, CreateDestroyRunConstructors) {
  int live_before = counted::live.load();
  counted* p = alloc_counted::create(17);
  EXPECT_EQ(p->payload, 17);
  EXPECT_EQ(counted::live.load(), live_before + 1);
  alloc_counted::destroy(p);
  EXPECT_EQ(counted::live.load(), live_before);
}

TEST(Allocator, ParallelAllocFreeStress) {
  // Hammer the pool from all workers; verify no block is handed out twice
  // concurrently by writing a worker-unique stamp and re-reading it.
  const size_t rounds = 200, per_round = 500;
  int64_t base = alloc48::used();
  pam::parallel_for(0, static_cast<size_t>(pam::num_workers()) * 4, [&](size_t lane) {
    std::vector<blob48*> mine;
    mine.reserve(per_round);
    for (size_t r = 0; r < rounds; r++) {
      for (size_t i = 0; i < per_round; i++) {
        blob48* p = alloc48::allocate();
        p->a = lane;
        p->b = i;
        mine.push_back(p);
      }
      for (size_t i = 0; i < per_round; i++) {
        blob48* p = mine[i];
        ASSERT_EQ(p->a, lane);
        ASSERT_EQ(p->b, i);
        alloc48::deallocate(p);
      }
      mine.clear();
    }
  }, 1);
  EXPECT_EQ(alloc48::used(), base);
}

TEST(Allocator, IndependentPoolsPerType) {
  struct other {
    char data[24];
  };
  int64_t used48 = alloc48::used();
  auto* p = pam::type_allocator<other>::allocate();
  EXPECT_EQ(alloc48::used(), used48);  // other type's pool does not affect ours
  pam::type_allocator<other>::deallocate(p);
}

// ---------------------------------------------------------- raw_pool ----
// The runtime-sized pool behind leaf-block storage (src/alloc/leaf_pool.h).

TEST(RawPool, DistinctAlignedSlotsAndCounters) {
  static pam::raw_pool pool(200, 16);  // odd size, explicit alignment
  // The stride is rounded up so every slot in a chunk is aligned.
  EXPECT_GE(pool.slot_bytes(), 200u);
  EXPECT_EQ(pool.slot_bytes() % 16, 0u);
  int64_t base = pool.used();
  std::vector<void*> ps;
  std::set<void*> seen;
  for (int i = 0; i < 5000; i++) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    ASSERT_TRUE(seen.insert(p).second) << "duplicate slot";
    ps.push_back(p);
  }
  EXPECT_EQ(pool.used(), base + 5000);
  for (void* p : ps) pool.deallocate(p);
  EXPECT_EQ(pool.used(), base);
  EXPECT_GE(pool.reserved(), 5000);
}

TEST(RawPool, SlotsAreRecycled) {
  static pam::raw_pool pool(64, 8);
  void* a = pool.allocate();
  pool.deallocate(a);
  // The thread-local cache hands the same slot straight back.
  void* b = pool.allocate();
  EXPECT_EQ(a, b);
  pool.deallocate(b);
}

TEST(RawPool, ParallelAllocFreeStress) {
  static pam::raw_pool pool(96, 8);
  int64_t base = pool.used();
  pam::parallel_for(0, 2000, [&](size_t i) {
    std::vector<void*> mine;
    for (size_t j = 0; j < 1 + i % 17; j++) mine.push_back(pool.allocate());
    for (void* p : mine) *static_cast<char*>(p) = 1;
    for (void* p : mine) pool.deallocate(p);
  }, 1);
  EXPECT_EQ(pool.used(), base);
}

// ------------------------------------------- provenance, trim, stripes --

TEST(Arena, ReservedBytesTracksChunkProvenance) {
  static pam::block_pool pool(120, 8);
  EXPECT_EQ(pool.reserved_bytes(), 0u);
  std::vector<void*> ps;
  for (int i = 0; i < 3000; i++) ps.push_back(pool.allocate());
  // Exact accounting: the byte footprint is the carved chunk slots times
  // the (alignment-rounded) stride, nothing estimated.
  EXPECT_EQ(pool.reserved_bytes(),
            static_cast<size_t>(pool.reserved()) * pool.slot_bytes());
  EXPECT_GE(pool.reserved(), 3000);
  for (void* p : ps) pool.deallocate(p);
}

TEST(Arena, TrimReleasesFullyFreeChunks) {
  static pam::block_pool pool(256, 16);
  std::vector<void*> ps;
  for (int i = 0; i < 4000; i++) ps.push_back(pool.allocate());
  size_t peak_bytes = pool.reserved_bytes();
  EXPECT_GT(peak_bytes, 0u);
  for (void* p : ps) pool.deallocate(p);
  // Everything was allocated and freed on this thread, so after the local
  // hand-back inside trim() every chunk is fully free and must go back to
  // the OS.
  size_t released = pool.trim();
  EXPECT_EQ(released, peak_bytes);
  EXPECT_EQ(pool.reserved(), 0);
  EXPECT_EQ(pool.reserved_bytes(), 0u);
  EXPECT_EQ(pool.used(), 0);
  // The pool re-carves on demand afterwards.
  void* p = pool.allocate();
  EXPECT_NE(p, nullptr);
  EXPECT_GT(pool.reserved(), 0);
  pool.deallocate(p);
}

TEST(Arena, TrimKeepsChunksWithLiveSlots) {
  static pam::block_pool pool(512, 16);
  std::vector<void*> ps;
  for (int i = 0; i < 300; i++) ps.push_back(pool.allocate());
  // Keep one slot live: every chunk holding it must survive trim, and no
  // live slot may ever be handed back.
  void* survivor = ps.back();
  ps.pop_back();
  for (void* p : ps) pool.deallocate(p);
  pool.trim();
  EXPECT_EQ(pool.used(), 1);
  EXPECT_GT(pool.reserved(), 0);
  *static_cast<char*>(survivor) = 42;  // still mapped
  EXPECT_EQ(*static_cast<char*>(survivor), 42);
  pool.deallocate(survivor);
  size_t released = pool.trim();
  EXPECT_GT(released, 0u);
  EXPECT_EQ(pool.reserved(), 0);
}

TEST(Arena, TypedFacadeExposesTrim) {
  struct trim_blob {
    uint64_t x[6];
  };
  using alloc = pam::type_allocator<trim_blob>;
  std::vector<trim_blob*> ps;
  for (int i = 0; i < 5000; i++) ps.push_back(alloc::allocate());
  // Typed pools stride exactly sizeof(T): no alignment padding is ever
  // added beyond alignof(T) (sizeof is already a multiple of it).
  EXPECT_EQ(alloc::reserved_bytes(),
            static_cast<size_t>(alloc::reserved()) * sizeof(trim_blob));
  for (auto* p : ps) alloc::deallocate(p);
  EXPECT_GT(alloc::trim(), 0u);
  EXPECT_EQ(alloc::used(), 0);
  EXPECT_EQ(alloc::reserved(), 0);
}

TEST(Arena, ForeignThreadsKeepCountsExact) {
  // Server client threads are not scheduler workers; their counter traffic
  // now spreads over hashed stripes instead of all sharing one. The
  // observable contract is that concurrent foreign alloc/free traffic sums
  // to an exact net of zero.
  static pam::block_pool pool(64, 8);
  int64_t base = pool.used();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; round++) {
        std::vector<void*> mine;
        for (int i = 0; i < 200; i++) mine.push_back(pool.allocate());
        for (void* p : mine) pool.deallocate(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.used(), base);
}

}  // namespace
