// Tests for the parallel structural diff (pam/diff.h): correctness against
// brute-force symmetric difference over std::map oracles, the shared-storage
// pruning contract (diffing a version against itself or a lightly-edited
// descendant does O(changes) work, not O(n)), diff_fold equivalence, change
// stream classification, and the map-valued val_equal hook the inverted
// index uses. Randomized sweeps run across all four balance schemes and
// leaf block sizes {1, 2, 32, 256}.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/inverted_index.h"
#include "apps/range_sum.h"
#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;

// Brute-force oracle: classify every key of either map.
template <typename Map>
std::vector<pam::map_change<Map>> oracle_diff(const std::map<K, V>& from,
                                              const std::map<K, V>& to) {
  std::vector<pam::map_change<Map>> out;
  auto i = from.begin();
  auto j = to.begin();
  while (i != from.end() || j != to.end()) {
    if (j == to.end() || (i != from.end() && i->first < j->first)) {
      out.push_back({i->first, pam::change_kind::removed, i->second, {}});
      ++i;
    } else if (i == from.end() || j->first < i->first) {
      out.push_back({j->first, pam::change_kind::added, {}, j->second});
      ++j;
    } else {
      if (i->second != j->second)
        out.push_back({i->first, pam::change_kind::updated, i->second, j->second});
      ++i;
      ++j;
    }
  }
  return out;
}

template <typename Map>
void expect_diff_matches(const Map& a, const Map& b,
                         const std::map<K, V>& oa, const std::map<K, V>& ob,
                         const char* ctx) {
  auto d = Map::diff(a, b);
  ASSERT_TRUE(d.before.check_valid()) << ctx;
  ASSERT_TRUE(d.after.check_valid()) << ctx;
  auto want = oracle_diff<Map>(oa, ob);
  auto got = d.changes();
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (size_t i = 0; i < want.size(); i++) {
    EXPECT_EQ(got[i].key, want[i].key) << ctx << " #" << i;
    EXPECT_EQ(got[i].kind, want[i].kind) << ctx << " #" << i;
    EXPECT_EQ(got[i].before, want[i].before) << ctx << " #" << i;
    EXPECT_EQ(got[i].after, want[i].after) << ctx << " #" << i;
  }
  // diff_fold agrees with folding the materialized partition.
  auto g = [](K, V v) { return v; };
  auto f = [](V x, V y) { return x + y; };
  auto [bf, af] = Map::diff_fold(a, b, g, f, V{0});
  EXPECT_EQ(bf, d.before.map_reduce(g, f, V{0})) << ctx;
  EXPECT_EQ(af, d.after.map_reduce(g, f, V{0})) << ctx;
  // size() counts distinct changed keys.
  EXPECT_EQ(d.size(), want.size()) << ctx;
}

TEST(Diff, BasicPartition) {
  using map_t = pam::range_sum_map;
  map_t a({{1, 10}, {2, 20}, {3, 30}, {5, 50}});
  map_t b = a;
  b = map_t::remove(std::move(b), 1);      // removed
  b = map_t::insert(std::move(b), 2, 21);  // updated
  b = map_t::insert(std::move(b), 4, 40);  // added
  b = map_t::insert(std::move(b), 5, 50);  // same value: not a change

  auto d = map_t::diff(a, b);
  EXPECT_EQ(d.before.entries(),
            (std::vector<map_t::entry_t>{{1, 10}, {2, 20}}));
  EXPECT_EQ(d.after.entries(),
            (std::vector<map_t::entry_t>{{2, 21}, {4, 40}}));
  EXPECT_EQ(d.size(), 3u);
  EXPECT_FALSE(d.empty());

  auto cs = d.changes();
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].kind, pam::change_kind::removed);
  EXPECT_EQ(cs[1].kind, pam::change_kind::updated);
  EXPECT_EQ(cs[2].kind, pam::change_kind::added);
  EXPECT_EQ(cs[1].before, std::optional<V>(20));
  EXPECT_EQ(cs[1].after, std::optional<V>(21));
}

TEST(Diff, IdenticalAndEmptyVersions) {
  using map_t = pam::range_sum_map;
  map_t empty;
  EXPECT_TRUE(map_t::diff(empty, empty).empty());

  std::vector<map_t::entry_t> init;
  for (K k = 0; k < 50000; k++) init.push_back({k, k * 3});
  map_t a(init);
  // Same handle: shares_storage prunes at the root.
  EXPECT_TRUE(map_t::diff(a, a).empty());
  // A copy is the same root.
  map_t a2 = a;
  EXPECT_TRUE(map_t::diff(a, a2).empty());

  // Against empty: everything is one-sided; the result shares the input's
  // subtrees (no rebuild), so node usage must not grow by O(n).
  int64_t nodes_before = map_t::used_nodes();
  auto d = map_t::diff(empty, a);
  int64_t grown = map_t::used_nodes() - nodes_before;
  EXPECT_EQ(d.after.size(), a.size());
  EXPECT_TRUE(d.before.empty());
  EXPECT_LE(grown, 1);  // whole-tree transfer is a refcount bump
}

TEST(Diff, SmallEditOnLargeMapIsCheap) {
  using map_t = pam::range_sum_map;
  std::vector<map_t::entry_t> init;
  for (K k = 0; k < 200000; k++) init.push_back({k * 2, k});
  map_t a(init);
  map_t b = a;
  std::map<K, V> oa, ob;
  for (auto& [k, v] : init) oa[k] = ob[k] = v;
  for (K k : {K{10}, K{77776}, K{399998}}) {
    b = map_t::insert(std::move(b), k + 1, 1);
    ob[k + 1] = 1;
  }
  b = map_t::remove(std::move(b), 40);
  ob.erase(40);
  expect_diff_matches(a, b, oa, ob, "small edit");

  // The diff's node footprint is O(changes), not O(n): building it must
  // not allocate more than a few paths' worth of nodes.
  int64_t nodes_before = map_t::used_nodes();
  auto d = map_t::diff(a, b);
  int64_t grown = map_t::used_nodes() - nodes_before;
  EXPECT_EQ(d.size(), 4u);
  EXPECT_LT(grown, 200);
}

TEST(Diff, ReverseDirectionSwapsSides) {
  using map_t = pam::range_sum_map;
  map_t a({{1, 1}, {2, 2}});
  map_t b({{2, 3}, {4, 4}});
  auto fwd = map_t::diff(a, b);
  auto rev = map_t::diff(b, a);
  EXPECT_EQ(fwd.before.entries(), rev.after.entries());
  EXPECT_EQ(fwd.after.entries(), rev.before.entries());
}

// Unrelated maps (no shared storage at all) still diff correctly — the
// walk degenerates to a full merge.
TEST(Diff, UnrelatedMaps) {
  using map_t = pam::range_sum_map;
  pam::random_gen g(42);
  std::map<K, V> oa, ob;
  std::vector<map_t::entry_t> ea, eb;
  for (int i = 0; i < 30000; i++) {
    K k = g.next() % 60000;
    V v = g.next() % 1000;
    if (oa.emplace(k, v).second) ea.push_back({k, v});
    k = g.next() % 60000;
    v = g.next() % 1000;
    if (ob.emplace(k, v).second) eb.push_back({k, v});
  }
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  map_t a = map_t::from_sorted(ea);
  map_t b = map_t::from_sorted(eb);
  expect_diff_matches(a, b, oa, ob, "unrelated");
}

// Randomized churn between two versions, swept across every balance scheme
// and leaf block size: diff must match the brute-force oracle exactly.
template <typename Balance>
void churn_sweep(uint64_t seed) {
  using map_t = pam::aug_map<pam::sum_entry<K, V>, Balance>;
  using entry_t = typename map_t::entry_t;
  pam::random_gen g(seed);
  constexpr K kKeyRange = 1 << 15;

  std::vector<entry_t> init;
  std::map<K, V> oa;
  for (int i = 0; i < 20000; i++) {
    K k = g.next() % kKeyRange;
    V v = g.next() % 1000;
    oa[k] = v;
  }
  for (auto& [k, v] : oa) init.push_back({k, v});
  map_t a = map_t::from_sorted(init);

  map_t b = a;
  std::map<K, V> ob = oa;
  int edits = 1 + static_cast<int>(g.next() % 2000);
  std::vector<entry_t> batch;
  for (int i = 0; i < edits; i++) {
    switch (g.next() % 3) {
      case 0: {
        K k = g.next() % kKeyRange;
        V v = g.next() % 1000;
        b = map_t::insert(std::move(b), k, v);
        ob[k] = v;
        break;
      }
      case 1: {
        K k = g.next() % kKeyRange;
        b = map_t::remove(std::move(b), k);
        ob.erase(k);
        break;
      }
      case 2: {
        batch.push_back({g.next() % kKeyRange, g.next() % 1000});
        break;
      }
    }
  }
  for (auto& e : batch) ob[e.first] = e.second;
  b = map_t::multi_insert(std::move(b), std::move(batch));

  expect_diff_matches(a, b, oa, ob, "churn");
}

class DiffSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiffSweep, AllSchemesAllBlockSizes) {
  size_t saved_b = pam::leaf_block_size();
  for (size_t blk : {size_t{1}, size_t{2}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(blk);
    churn_sweep<pam::weight_balanced>(GetParam() * 31 + blk);
    churn_sweep<pam::avl_tree>(GetParam() * 37 + blk);
    churn_sweep<pam::red_black>(GetParam() * 41 + blk);
    churn_sweep<pam::treap>(GetParam() * 43 + blk);
  }
  pam::set_leaf_block_size(saved_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffSweep, ::testing::Values(3, 17, 0xbeef));

// A diff across a leaf-block layout switch: versions built at different
// block sizes share nothing structurally, but equality must still be
// detected entry-wise (no false changes).
TEST(Diff, AcrossLayoutSwitch) {
  using map_t = pam::range_sum_map;
  size_t saved = pam::leaf_block_size();
  std::vector<map_t::entry_t> init;
  for (K k = 0; k < 5000; k++) init.push_back({k, k});

  pam::set_leaf_block_size(0);  // classic nodes
  map_t a(init);
  pam::set_leaf_block_size(64);  // blocked
  map_t b(init);
  b = map_t::insert(std::move(b), 9999999, 1);

  auto d = map_t::diff(a, b);
  EXPECT_EQ(d.size(), 1u);
  auto cs = d.changes();
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].key, 9999999u);
  EXPECT_EQ(cs[0].kind, pam::change_kind::added);
  pam::set_leaf_block_size(saved);
}

// Map-valued entries: the inverted index's root-identity val_equal prunes
// unchanged terms, and changed_terms reports exactly the touched ones.
TEST(Diff, InvertedIndexChangedTerms) {
  std::vector<pam::posting> triples;
  pam::random_gen g(7);
  for (uint32_t w = 0; w < 200; w++) {
    for (int d = 0; d < 30; d++)
      triples.push_back({w, static_cast<uint32_t>(g.next() % 1000),
                         static_cast<float>(g.next() % 100) / 10.0f});
  }
  pam::inverted_index idx(triples);
  size_t terms0 = idx.num_terms();

  // Touch exactly three terms (one of them new).
  std::vector<pam::posting> adds = {
      {5, 123456u, 9.5f}, {17, 123457u, 1.5f}, {5000, 1u, 2.0f}};
  pam::inverted_index idx2 = idx.updated(adds);
  EXPECT_EQ(idx2.num_terms(), terms0 + 1);

  auto changed = pam::inverted_index::changed_terms(idx, idx2);
  ASSERT_EQ(changed.size(), 3u);
  std::vector<std::string> got_terms, want_terms = {pam::corpus_word(5),
                                                    pam::corpus_word(17),
                                                    pam::corpus_word(5000)};
  for (auto& c : changed) got_terms.push_back(c.key);
  std::sort(want_terms.begin(), want_terms.end());
  EXPECT_EQ(got_terms, want_terms);  // stream arrives in term order
  for (auto& c : changed) {
    if (c.key == pam::corpus_word(5000)) {
      EXPECT_EQ(c.kind, pam::change_kind::added);
    } else {
      EXPECT_EQ(c.kind, pam::change_kind::updated);
    }
    if (c.key == pam::corpus_word(5)) {
      // The new version's posting map gained the doc; the old lacks it.
      EXPECT_TRUE(c.after->contains(123456u));
      EXPECT_FALSE(c.before->contains(123456u));
    }
  }
  // Unchanged terms kept their identical posting maps (shared roots).
  auto p1 = idx.postings(pam::corpus_word(33));
  auto p2 = idx2.postings(pam::corpus_word(33));
  EXPECT_TRUE(p1.same_root(p2));
}

// Diffs are leak-free across all schemes (node accounting returns to base).
TEST(Diff, NoLeaks) {
  using map_t = pam::range_sum_map;
  int64_t nodes0 = map_t::used_nodes();
  int64_t blocks0 = map_t::used_leaf_blocks();
  {
    pam::random_gen g(5);
    std::vector<map_t::entry_t> init;
    for (int i = 0; i < 30000; i++) init.push_back({g.next() % 100000, 1});
    map_t a(init);
    map_t b = a;
    for (int i = 0; i < 500; i++)
      b = map_t::insert(std::move(b), g.next() % 100000, 2);
    auto d = map_t::diff(a, b);
    auto [x, y] = map_t::diff_fold(
        a, b, [](K, V v) { return v; }, [](V p, V q) { return p + q; }, V{0});
    (void)x;
    (void)y;
    auto cs = d.changes();
    EXPECT_GE(cs.size(), 1u);
  }
  EXPECT_EQ(map_t::used_nodes(), nodes0);
  EXPECT_EQ(map_t::used_leaf_blocks(), blocks0);
}

}  // namespace
