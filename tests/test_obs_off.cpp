// Compiled with PAM_METRICS=0 (see CMakeLists: this one source file gets the
// definition) and linked into the same test_obs binary whose other TUs are
// metrics-on. That linkage IS the test of the inline-namespace ODR design:
// metrics_off::counter and metrics_on::counter mangle differently, so a
// mixed-mode link is legal by construction. Only the obs facade headers may
// be included here — any instrumented type (write_combiner, wal_writer, ...)
// would genuinely change layout between modes.
#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if PAM_METRICS
#error "test_obs_off.cpp must be compiled with PAM_METRICS=0"
#endif

namespace {

using namespace pam;

// The acceptance criterion in executable form: with the switch off, every
// recording type is an empty class — a member costs zero bytes under
// [[no_unique_address]] and every call site inlines to nothing.
static_assert(std::is_empty_v<obs::counter>);
static_assert(std::is_empty_v<obs::gauge>);
static_assert(std::is_empty_v<obs::histogram>);
static_assert(std::is_empty_v<obs::scoped_timer>);
static_assert(std::is_empty_v<obs::span>);
static_assert(!obs::kEnabled);

TEST(ObsOff, RecordersAreInertAndFree) {
  obs::counter c("pam_off_total");
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);

  obs::gauge g("pam_off_depth");
  g.set(7);
  g.add(3);
  EXPECT_EQ(g.value(), 0);

  obs::histogram h("pam_off_ns");
  h.record(123456);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0.0);

  { obs::scoped_timer t(h); }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsOff, RegistryScrapesEmpty) {
  // This TU's registry is metrics_off::registry — constructing metrics above
  // registered nothing, and a scrape is always empty.
  auto snap = obs::registry::get().scrape();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());

  std::ostringstream prom, json;
  obs::prometheus_text(snap, prom);
  obs::metrics_json(snap, json);
  EXPECT_TRUE(prom.str().empty());
  EXPECT_EQ(json.str(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n");
}

TEST(ObsOff, TraceIsInert) {
  obs::set_trace_enabled(true);  // no-op by contract
  EXPECT_FALSE(obs::trace_enabled());
  {
    obs::span s("off.span");
  }
  EXPECT_EQ(obs::trace_span_count(), 0u);
  std::ostringstream os;
  obs::dump_chrome_json(os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}\n");
}

}  // namespace
